// Rollover: the CDS lifecycle of RFC 7344 / RFC 8078 on a generated
// world, using the realistic double-signature procedure:
//
//  1. pick a secured zone (old KSK K1);
//
//  2. the operator introduces a new KSK K2 alongside K1, signs the
//     DNSKEY RRset with BOTH, and publishes CDS for K2;
//
//  3. the registry's Rollover pass verifies the CDS chains through the
//     current DS (via K1) and swaps the DS set to K2 — the chain stays
//     valid throughout;
//
//  4. the operator retires K1;
//
//  5. the operator publishes the CDS DELETE sentinel and the registry
//     removes the DS — the zone becomes a secure island with a
//     deletion request, the population §4.2 found 165 k times.
//
//     go run ./examples/rollover
package main

import (
	"context"
	"fmt"
	"log"

	"dnssecboot/internal/bootstrap"
	"dnssecboot/internal/classify"
	"dnssecboot/internal/core"
	"dnssecboot/internal/dnssec"
	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/ecosystem"
	"dnssecboot/internal/zone"
)

func main() {
	world, err := ecosystem.Generate(ecosystem.Config{Seed: 9, ScaleDivisor: 300_000})
	check(err)
	scanner := core.NewScanner(world, core.Options{Seed: 9})
	classifier := classify.New(world.Now)
	ctx := context.Background()

	// Pick a GoDaddy-operated secured zone with CDS.
	var target string
	for z, tr := range world.Truth {
		if tr.Operator == "GoDaddy" && tr.Spec.State == ecosystem.StateSecured && tr.Spec.CDS == ecosystem.CDSMatch {
			target = z
			break
		}
	}
	if target == "" {
		log.Fatal("no suitable zone in the generated world")
	}
	truth := world.Truth[target]
	registry := &bootstrap.Registry{
		Parent:  world.TLDZone(truth.TLD),
		Scanner: scanner,
		Now:     world.Now,
	}
	z := world.OperatorServer("GoDaddy").Zone(target)
	sign := zone.SignConfig{Now: world.Now, Algorithm: dnswire.AlgEd25519}

	status := func(step string) {
		obs := scanner.ScanZone(ctx, target)
		cl := classifier.Classify(obs)
		tags := ""
		for _, rr := range obs.DS {
			tags += fmt.Sprintf(" %d", rr.Data.(*dnswire.DS).KeyTag)
		}
		fmt.Printf("%-26s status=%-8s chain-valid=%-5v DS-tags=[%s ]\n", step, cl.Status, obs.ChainValid, tags)
	}

	fmt.Printf("zone under maintenance: %s (.%s registry)\n\n", target, truth.TLD)
	status("initial")
	oldKSK, oldZSK := z.Keys[0], z.Keys[1]
	fmt.Printf("  outgoing KSK tag %d\n", oldKSK.KeyTag())

	// 2. Double-signature phase: introduce K2, sign DNSKEY with both
	// SEP keys, and point the CDS at K2.
	newKSK, err := dnssec.GenerateKey(dnswire.AlgEd25519, dnswire.DNSKEYFlagZone|dnswire.DNSKEYFlagSEP, nil)
	check(err)
	z.Keys = []*dnssec.Key{oldKSK, newKSK, oldZSK}
	check(z.PublishCDSFor(newKSK, dnswire.DigestSHA256))
	check(z.Sign(sign))
	fmt.Printf("  incoming KSK tag %d published via CDS\n", newKSK.KeyTag())
	status("double-signature phase")

	// 3. The registry performs the RFC 7344 rollover.
	d, err := registry.Rollover(ctx, target)
	check(err)
	fmt.Printf("\nregistry rollover: eligible=%v installed=%v", d.Eligible, d.Installed)
	if !d.Eligible {
		fmt.Printf(" reasons=%v", d.Reasons)
	}
	fmt.Println()
	status("after DS swap")

	// 4. Retire the old KSK.
	z.Keys = []*dnssec.Key{newKSK, oldZSK}
	check(z.PublishCDSFor(newKSK, dnswire.DigestSHA256))
	check(z.Sign(sign))
	status("old KSK retired")

	// 5. Disable DNSSEC via CDS DELETE.
	z.PublishDeleteCDS()
	check(z.ResignRRset(target, dnswire.TypeCDS, sign))
	check(z.ResignRRset(target, dnswire.TypeCDNSKEY, sign))
	d2, err := registry.ProcessDelete(ctx, target)
	check(err)
	fmt.Printf("\nCDS DELETE processed: eligible=%v installed=%v\n", d2.Eligible, d2.Installed)
	status("after delete")
	fmt.Println("\nthe zone is now a secure island with a published deletion request —")
	fmt.Println("exactly the Cloudflare disable-flow population of the paper's §4.2.")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
