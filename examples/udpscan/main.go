// UDPScan: the same measurement pipeline, but over real UDP/TCP
// sockets on loopback instead of the in-memory network. A miniature
// world (root, a TLD, an operator with signal zones, three customer
// zones) is served from one authoritative listener; the scanner then
// resolves iteratively from the "root" and classifies each zone, and
// the registry bootstraps the island — all through the kernel's
// network stack.
//
//	go run ./examples/udpscan
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"
	"time"

	"dnssecboot/internal/bootstrap"
	"dnssecboot/internal/classify"
	"dnssecboot/internal/dnssec"
	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/resolver"
	"dnssecboot/internal/scan"
	"dnssecboot/internal/server"
	"dnssecboot/internal/transport"
	"dnssecboot/internal/zone"
)

var (
	now      = time.Date(2025, 4, 15, 12, 0, 0, 0, time.UTC)
	loopback = netip.MustParseAddr("127.0.0.1")
	signCfg  = zone.SignConfig{Now: now, Algorithm: dnswire.AlgEd25519}
)

func main() {
	srv := server.New(1)

	// All infrastructure glue points at 127.0.0.1; the resolver's
	// DefaultPort routes everything to our single listener.
	root := zone.New(".")
	root.SetBasics("ns.root.", []string{"ns.root."}, 1)
	root.MustAdd(rr("ns.root.", &dnswire.A{Addr: loopback}))
	root.MustAdd(rr("test.", dnswire.NewNS("ns1.nic.test.")))
	root.MustAdd(rr("ns1.nic.test.", &dnswire.A{Addr: loopback}))
	check(root.GenerateKeys(signCfg, nil))

	tld := zone.New("test.")
	tld.SetBasics("ns1.nic.test.", []string{"ns1.nic.test."}, 1)
	tld.MustAdd(rr("ns1.nic.test.", &dnswire.A{Addr: loopback}))
	check(tld.GenerateKeys(signCfg, nil))
	delegateSecure(root, tld)

	op := zone.New("op.test.")
	op.SetBasics("ns1.op.test.", []string{"ns1.op.test.", "ns2.op.test."}, 1)
	op.MustAdd(rr("ns1.op.test.", &dnswire.A{Addr: loopback}))
	op.MustAdd(rr("ns2.op.test.", &dnswire.A{Addr: loopback}))
	check(op.GenerateKeys(signCfg, nil))
	tld.MustAdd(rr("op.test.", dnswire.NewNS("ns1.op.test.")))
	tld.MustAdd(rr("ns1.op.test.", &dnswire.A{Addr: loopback}))
	addDS(tld, op)

	nsHosts := []string{"ns1.op.test.", "ns2.op.test."}
	signals := map[string]*zone.Zone{}
	for _, h := range nsHosts {
		sz := zone.New(zone.SignalZoneName(h))
		sz.SetBasics(nsHosts[0], nsHosts, 1)
		check(sz.GenerateKeys(signCfg, nil))
		op.MustAdd(rr(sz.Origin, dnswire.NewNS(nsHosts[0])))
		addDS(op, sz)
		signals[h] = sz
	}

	// Three customer zones: secured / island-with-signal / unsigned.
	secured := child("shop.test.", nsHosts)
	check(secured.GenerateKeys(signCfg, nil))
	check(secured.PublishCDS(dnswire.DigestSHA256))
	check(secured.Sign(signCfg))
	delegate(tld, secured)
	addDS(tld, secured)

	island := child("blog.test.", nsHosts)
	check(island.GenerateKeys(signCfg, nil))
	check(island.PublishCDS(dnswire.DigestSHA256))
	check(island.Sign(signCfg))
	delegate(tld, island) // no DS: a secure island
	content := append(island.RRset(island.Origin, dnswire.TypeCDS),
		island.RRset(island.Origin, dnswire.TypeCDNSKEY)...)
	for h, sz := range signals {
		recs, err := zone.SignalRecords(island.Origin, h, content)
		check(err)
		for _, r := range recs {
			sz.MustAdd(r)
		}
	}

	plain := child("cafe.test.", nsHosts)
	delegate(tld, plain)

	for _, sz := range signals {
		check(sz.Sign(signCfg))
	}
	check(op.Sign(signCfg))
	check(tld.Sign(signCfg))
	check(root.Sign(signCfg))
	for _, z := range []*zone.Zone{root, tld, op, secured, island, plain} {
		srv.AddZone(z)
	}
	for _, sz := range signals {
		srv.AddZone(sz)
	}

	l, err := server.Listen("127.0.0.1:0", srv)
	check(err)
	defer l.Close()
	fmt.Printf("authoritative listener on %s (udp+tcp)\n\n", l.Addr())

	rootDS, err := dnssec.DSFromKey(".", root.Keys[0].DNSKEY(), dnswire.DigestSHA256)
	check(err)
	r := &resolver.Resolver{
		Net:         &transport.Client{Timeout: 2 * time.Second, Retries: 1},
		Roots:       []netip.AddrPort{l.Addr()},
		DefaultPort: l.Addr().Port(),
	}
	scanner := scan.New(scan.Config{
		Resolver:     r,
		Now:          now,
		ProbeSignals: true,
		TrustAnchor:  []dnswire.RR{{Name: ".", Class: dnswire.ClassIN, Data: rootDS}},
	})
	classifier := classify.New(now)

	ctx := context.Background()
	for _, name := range []string{"shop.test.", "blog.test.", "cafe.test."} {
		obs := scanner.ScanZone(ctx, name)
		cl := classifier.Classify(obs)
		fmt.Printf("%-12s status=%-8s bucket=%-24q signal=%v queries=%d\n",
			name, cl.Status, cl.Bucket.String(), cl.Signal.HasSignal, obs.Queries)
	}

	registry := &bootstrap.Registry{Parent: tld, Scanner: scanner, Now: now}
	d, err := registry.Bootstrap(ctx, "blog.test.")
	check(err)
	fmt.Printf("\nbootstrap over real UDP: eligible=%v installed=%v reasons=%v\n", d.Eligible, d.Installed, d.Reasons)
	obs := scanner.ScanZone(ctx, "blog.test.")
	fmt.Printf("blog.test. after bootstrap: chain-valid=%v\n", obs.ChainValid)
}

func child(origin string, nsHosts []string) *zone.Zone {
	z := zone.New(origin)
	z.SetBasics(nsHosts[0], nsHosts, 1)
	z.MustAdd(rr(origin, &dnswire.A{Addr: netip.MustParseAddr("203.0.113.80")}))
	return z
}

func delegate(parent, c *zone.Zone) {
	for _, h := range c.NSHosts() {
		parent.MustAdd(rr(c.Origin, dnswire.NewNS(h)))
	}
}

func delegateSecure(parent, c *zone.Zone) {
	delegate(parent, c)
	addDS(parent, c)
}

func addDS(parent, c *zone.Zone) {
	ds, err := dnssec.DSFromKey(c.Origin, c.Keys[0].DNSKEY(), dnswire.DigestSHA256)
	check(err)
	parent.MustAdd(dnswire.RR{Name: c.Origin, Class: dnswire.ClassIN, TTL: 86400, Data: ds})
}

func rr(name string, data dnswire.RData) dnswire.RR {
	return dnswire.RR{Name: name, Class: dnswire.ClassIN, TTL: 3600, Data: data}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
