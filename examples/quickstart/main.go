// Quickstart: generate a small synthetic DNS ecosystem, run the
// measurement scan, and print the paper's headline numbers and the
// Figure-1 breakdown.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"dnssecboot/internal/core"
)

func main() {
	// ScaleDivisor 50000 shrinks the paper's 287.6 M-zone population to
	// ≈6 k zones — a few seconds of scanning.
	study, err := core.Run(context.Background(), core.Options{
		Seed:         42,
		ScaleDivisor: 50_000,
		Concurrency:  8,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(study.Report.Headline())
	fmt.Println()
	fmt.Println(study.Report.Figure1())
	fmt.Println(study.Report.QueryStats())

	// Individual classifications are available too; print one
	// bootstrappable island as a sample.
	for _, r := range study.Results {
		if r.Signal.Potential && r.Signal.Correct {
			fmt.Printf("\nexample AB-ready zone: %s (operator %s)\n", r.Zone, r.Operator.Operator)
			fmt.Printf("  status: %s, bucket: %s\n", r.Status, r.Bucket)
			break
		}
	}
}
