// Zonewalk: enumerate a signed zone's names by walking its NSEC chain
// — the measurement technique behind several of the paper's ccTLD data
// sources (signed zones are enumerable by design; the alternative is
// AXFR, which most registries refuse). The example walks a zone from
// the generated world and cross-checks the result against the
// authoritative copy.
//
//	go run ./examples/zonewalk
package main

import (
	"context"
	"fmt"
	"log"

	"dnssecboot/internal/core"
	"dnssecboot/internal/ecosystem"
)

func main() {
	world, err := ecosystem.Generate(ecosystem.Config{Seed: 5, ScaleDivisor: 500_000})
	check(err)
	scanner := core.NewScanner(world, core.Options{Seed: 5})
	ctx := context.Background()

	// Walk one signed customer zone per state.
	var signed, unsigned string
	for z, tr := range world.Truth {
		if tr.Operator == "OVH" && tr.Spec.State == ecosystem.StateSecured && signed == "" {
			signed = z
		}
		if tr.Operator == "OVH" && tr.Spec.State == ecosystem.StateUnsigned && unsigned == "" {
			unsigned = z
		}
	}
	if signed == "" {
		log.Fatal("no signed OVH zone in the world")
	}

	names, err := scanner.WalkZone(ctx, signed)
	check(err)
	fmt.Printf("NSEC walk of %s enumerated %d names:\n", signed, len(names))
	for _, n := range names {
		fmt.Printf("  %s\n", n)
	}

	// Cross-check against the authoritative zone contents.
	z := world.OperatorServer("OVH").Zone(signed)
	auth := map[string]bool{}
	for _, n := range z.Names() {
		if !z.Occluded(n) {
			auth[n] = true
		}
	}
	missing := 0
	for n := range auth {
		found := false
		for _, w := range names {
			if w == n {
				found = true
			}
		}
		if !found {
			missing++
		}
	}
	fmt.Printf("\nauthoritative zone has %d names; walk missed %d\n", len(auth), missing)

	if unsigned != "" {
		if _, err := scanner.WalkZone(ctx, unsigned); err != nil {
			fmt.Printf("unsigned zone %s is not walkable, as expected: %v\n", unsigned, err)
		} else {
			fmt.Println("BUG: unsigned zone walked")
		}
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
