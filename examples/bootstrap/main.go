// Bootstrap: a hand-built, end-to-end RFC 9615 Authenticated
// Bootstrapping walkthrough on a miniature Internet:
//
//  1. build a signed root, a signed .ch registry, and a DNS operator
//     with secure signal zones;
//
//  2. the operator signs a customer zone (alpen.ch) — a "secure
//     island", since no DS exists at the registry;
//
//  3. the operator publishes CDS/CDNSKEY in the zone and copies them to
//     _dsboot.alpen.ch._signal.<ns> in its signal zones;
//
//  4. the registry scans the zone, runs the RFC 9615 acceptance
//     algorithm, and installs the DS records;
//
//  5. the chain now validates from the root down to alpen.ch.
//
//     go run ./examples/bootstrap
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"
	"time"

	"dnssecboot/internal/bootstrap"
	"dnssecboot/internal/dnssec"
	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/resolver"
	"dnssecboot/internal/scan"
	"dnssecboot/internal/server"
	"dnssecboot/internal/transport"
	"dnssecboot/internal/zone"
)

var now = time.Date(2025, 4, 15, 12, 0, 0, 0, time.UTC)

func main() {
	net := transport.NewMemNetwork(1)
	sign := zone.SignConfig{Now: now, Algorithm: dnswire.AlgEd25519}

	rootAddr := netip.MustParseAddr("198.41.0.4")
	chAddr := netip.MustParseAddr("172.16.1.1")
	netAddr := netip.MustParseAddr("172.16.2.1")
	opAddr1 := netip.MustParseAddr("10.1.0.1")
	opAddr2 := netip.MustParseAddr("10.1.0.2")

	// --- the root zone ---
	root := zone.New(".")
	root.SetBasics("a.root-servers.net.", []string{"a.root-servers.net."}, 1)
	root.MustAdd(rr("a.root-servers.net.", &dnswire.A{Addr: rootAddr}))
	root.MustAdd(rr("ch.", dnswire.NewNS("ns1.nic.ch.")))
	root.MustAdd(rr("ns1.nic.ch.", &dnswire.A{Addr: chAddr}))
	root.MustAdd(rr("net.", dnswire.NewNS("ns1.nic.net.")))
	root.MustAdd(rr("ns1.nic.net.", &dnswire.A{Addr: netAddr}))
	check(root.GenerateKeys(sign, nil))

	// --- the .ch registry (SWITCH, the first AB adopter) ---
	ch := zone.New("ch.")
	ch.SetBasics("ns1.nic.ch.", []string{"ns1.nic.ch."}, 1)
	ch.MustAdd(rr("ns1.nic.ch.", &dnswire.A{Addr: chAddr}))
	check(ch.GenerateKeys(sign, nil))
	mustDelegateSecurely(root, ch)

	// --- .net, hosting the operator's infrastructure ---
	netTLD := zone.New("net.")
	netTLD.SetBasics("ns1.nic.net.", []string{"ns1.nic.net."}, 1)
	netTLD.MustAdd(rr("ns1.nic.net.", &dnswire.A{Addr: netAddr}))
	check(netTLD.GenerateKeys(sign, nil))
	mustDelegateSecurely(root, netTLD)

	// --- the DNS operator: acme-dns.net with two nameservers ---
	opBase := zone.New("acme-dns.net.")
	opBase.SetBasics("ns1.acme-dns.net.", []string{"ns1.acme-dns.net.", "ns2.acme-dns.net."}, 1)
	opBase.MustAdd(rr("ns1.acme-dns.net.", &dnswire.A{Addr: opAddr1}))
	opBase.MustAdd(rr("ns2.acme-dns.net.", &dnswire.A{Addr: opAddr2}))
	check(opBase.GenerateKeys(sign, nil))
	netTLD.MustAdd(rr("acme-dns.net.", dnswire.NewNS("ns1.acme-dns.net.")))
	netTLD.MustAdd(rr("acme-dns.net.", dnswire.NewNS("ns2.acme-dns.net.")))
	netTLD.MustAdd(rr("ns1.acme-dns.net.", &dnswire.A{Addr: opAddr1}))
	netTLD.MustAdd(rr("ns2.acme-dns.net.", &dnswire.A{Addr: opAddr2}))
	mustAddDS(netTLD, opBase)

	// Signal zones: one per nameserver, securely delegated from the
	// operator's base zone (RFC 9615 §3).
	signals := map[string]*zone.Zone{}
	for _, host := range []string{"ns1.acme-dns.net.", "ns2.acme-dns.net."} {
		sz := zone.New(zone.SignalZoneName(host))
		sz.SetBasics("ns1.acme-dns.net.", []string{"ns1.acme-dns.net.", "ns2.acme-dns.net."}, 1)
		check(sz.GenerateKeys(sign, nil))
		opBase.MustAdd(rr(sz.Origin, dnswire.NewNS("ns1.acme-dns.net.")))
		opBase.MustAdd(rr(sz.Origin, dnswire.NewNS("ns2.acme-dns.net.")))
		mustAddDS(opBase, sz)
		signals[host] = sz
	}

	// --- the customer zone: alpen.ch, a secure island ---
	alpen := zone.New("alpen.ch.")
	alpen.SetBasics("ns1.acme-dns.net.", []string{"ns1.acme-dns.net.", "ns2.acme-dns.net."}, 1)
	alpen.MustAdd(rr("alpen.ch.", &dnswire.A{Addr: netip.MustParseAddr("203.0.113.10")}))
	alpen.MustAdd(rr("www.alpen.ch.", &dnswire.A{Addr: netip.MustParseAddr("203.0.113.11")}))
	check(alpen.GenerateKeys(sign, nil))
	check(alpen.PublishCDS(dnswire.DigestSHA256)) // step 3a: in-zone CDS
	check(alpen.Sign(sign))
	// Delegation in .ch WITHOUT DS: the island.
	ch.MustAdd(rr("alpen.ch.", dnswire.NewNS("ns1.acme-dns.net.")))
	ch.MustAdd(rr("alpen.ch.", dnswire.NewNS("ns2.acme-dns.net.")))

	// Step 3b: copy the CDS/CDNSKEY into the signal zones.
	content := append(alpen.RRset("alpen.ch.", dnswire.TypeCDS),
		alpen.RRset("alpen.ch.", dnswire.TypeCDNSKEY)...)
	for host, sz := range signals {
		recs, err := zone.SignalRecords("alpen.ch.", host, content)
		check(err)
		for _, r := range recs {
			sz.MustAdd(r)
		}
	}

	// Sign the infrastructure bottom-up and wire up the servers.
	for _, sz := range signals {
		check(sz.Sign(sign))
	}
	check(opBase.Sign(sign))
	check(ch.Sign(sign))
	check(netTLD.Sign(sign))
	check(root.Sign(sign))

	rootSrv := server.New(1)
	rootSrv.AddZone(root)
	chSrv := server.New(2)
	chSrv.AddZone(ch)
	netSrv := server.New(3)
	netSrv.AddZone(netTLD)
	opSrv := server.New(4)
	opSrv.AddZone(opBase)
	opSrv.AddZone(alpen)
	for _, sz := range signals {
		opSrv.AddZone(sz)
	}
	net.Register(rootAddr, rootSrv)
	net.Register(chAddr, chSrv)
	net.Register(netAddr, netSrv)
	net.Register(opAddr1, opSrv)
	net.Register(opAddr2, opSrv)

	// --- step 4: the registry processes the child ---
	rootDS, err := dnssec.DSFromKey(".", root.Keys[0].DNSKEY(), dnswire.DigestSHA256)
	check(err)
	r := &resolver.Resolver{Net: net, Roots: []netip.AddrPort{netip.AddrPortFrom(rootAddr, 53)}}
	scanner := scan.New(scan.Config{
		Resolver:     r,
		Now:          now,
		ProbeSignals: true,
		TrustAnchor:  []dnswire.RR{{Name: ".", Class: dnswire.ClassIN, Data: rootDS}},
	})
	registry := &bootstrap.Registry{Parent: ch, Scanner: scanner, Now: now}

	ctx := context.Background()
	before := scanner.ScanZone(ctx, "alpen.ch.")
	fmt.Printf("before: signed=%v, DS at parent=%v (a secure island)\n", before.IsSigned(), before.HasDS())
	for _, so := range before.Signals {
		fmt.Printf("  signal under %-22s records=%d secure=%v\n", so.NSHost, len(so.Records), so.Secure)
	}

	decision, err := registry.Bootstrap(ctx, "alpen.ch.")
	check(err)
	fmt.Printf("\nregistry decision: eligible=%v installed=%v\n", decision.Eligible, decision.Installed)
	for _, ds := range decision.DS {
		fmt.Printf("  installed: %s\n", ds)
	}

	// --- step 5: the chain validates from the root ---
	after := scanner.ScanZone(ctx, "alpen.ch.")
	fmt.Printf("\nafter: DS at parent=%v, chain valid=%v\n", after.HasDS(), after.ChainValid)
	keys, err := scanner.Validator().ZoneKeys(ctx, "alpen.ch.")
	check(err)
	fmt.Printf("full-chain validation from the root trust anchor: %d DNSKEY(s) authenticated\n", len(keys))
}

func rr(name string, data dnswire.RData) dnswire.RR {
	return dnswire.RR{Name: name, Class: dnswire.ClassIN, TTL: 3600, Data: data}
}

// mustDelegateSecurely inserts the child's NS and DS into the parent.
func mustDelegateSecurely(parent, child *zone.Zone) {
	for _, h := range child.NSHosts() {
		parent.MustAdd(rr(child.Origin, dnswire.NewNS(h)))
	}
	mustAddDS(parent, child)
}

func mustAddDS(parent, child *zone.Zone) {
	ds, err := dnssec.DSFromKey(child.Origin, child.Keys[0].DNSKEY(), dnswire.DigestSHA256)
	check(err)
	parent.MustAdd(dnswire.RR{Name: child.Origin, Class: dnswire.ClassIN, TTL: 86400, Data: ds})
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
