module dnssecboot

go 1.22
