#!/bin/sh
# serve-smoke: end-to-end gate for the serving path. Builds dnsd and
# dnsblast, starts the daemon on an ephemeral port serving the signed
# smoke zone, drives it with a zipfian UDP+TCP query mix, asserts
# nonzero qps with zero protocol errors, then SIGTERMs the daemon and
# asserts a clean graceful drain (exit 0) and a well-formed final
# metrics snapshot.
set -eu

GO=${GO:-go}
DIR=artifacts/serve
BIN=$DIR/bin

rm -rf "$DIR"
mkdir -p "$BIN"
$GO build -o "$BIN" ./cmd/dnsd ./cmd/dnsblast

"$BIN"/dnsd -listen 127.0.0.1:0 -addr-file "$DIR/addr" -sign \
	-cache-entries 4096 -drain-timeout 10s \
	-metrics-out "$DIR/metrics.json" -metrics-every 500ms \
	cmd/dnsd/testdata/example.com.db 2> "$DIR/dnsd.log" &
DNSD=$!

# The daemon publishes its bound address once it is serving.
i=0
while [ ! -s "$DIR/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "serve-smoke: dnsd never published its address" >&2
		cat "$DIR/dnsd.log" >&2
		kill "$DNSD" 2>/dev/null || true
		exit 1
	fi
	sleep 0.1
done
ADDR=$(cat "$DIR/addr")
echo "serve-smoke: dnsd is serving on $ADDR"

# Blast it: zipfian names, mixed types, 10% TCP, 25% DO, 5% NXDOMAIN.
# Zero tolerance for protocol errors; qps floor is deliberately modest
# so a loaded CI box does not flake.
"$BIN"/dnsblast -server "$ADDR" -zone cmd/dnsd/testdata/example.com.db \
	-duration 2s -concurrency 8 -tcp-frac 0.1 -do-frac 0.25 -nx-frac 0.05 \
	-min-qps 100 -max-error-rate 0 -json "$DIR/blast.json"

# Graceful drain: SIGTERM must finish in-flight work and exit 0.
kill -TERM "$DNSD"
if ! wait "$DNSD"; then
	echo "serve-smoke: dnsd did not drain cleanly" >&2
	cat "$DIR/dnsd.log" >&2
	exit 1
fi
grep -q "drained cleanly" "$DIR/dnsd.log"

# The final metrics snapshot must be well-formed and show the load.
"$BIN"/dnsblast -verify-metrics "$DIR/metrics.json"

echo "serve-smoke: ok (see $DIR/blast.json and $DIR/metrics.json)"
