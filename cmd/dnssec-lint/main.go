// Command dnssec-lint runs the repo's static-analysis suite (see
// internal/lint and docs/LINTS.md) over the module. Findings print as
// "file:line: [check] message" — or as JSONL objects
// {file,line,check,msg} under -json — and any finding exits nonzero,
// so the command gates CI:
//
//	go run ./cmd/dnssec-lint ./...
//	go run ./cmd/dnssec-lint -json -checks poollife,lockdiscipline ./...
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dnssecboot/internal/lint"
)

func main() {
	quiet := flag.Bool("q", false, "suppress the ok summary line")
	asJSON := flag.Bool("json", false, "emit findings as JSONL objects {file,line,check,msg}")
	checks := flag.String("checks", "", "comma-separated subset of checks to report (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dnssec-lint [-q] [-json] [-checks a,b] [packages]\n\npackages default to ./... relative to the module root\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var keep map[string]bool
	if *checks != "" {
		var err error
		if keep, err = lint.ParseCheckList(*checks); err != nil {
			fatal(err)
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	// The source importer resolves module-internal imports through the
	// go tool, which needs a working directory inside the module.
	if err := os.Chdir(root); err != nil {
		fatal(err)
	}
	res, err := lint.Analyze(root, flag.Args(), nil)
	if err != nil {
		fatal(err)
	}
	res.Filter(keep)
	for _, f := range res.Findings {
		if *asJSON {
			line, err := f.JSONLine()
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s\n", line)
			continue
		}
		fmt.Println(f)
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "dnssec-lint: %d finding(s) in %d package(s)\n", len(res.Findings), res.Packages)
		os.Exit(1)
	}
	if !*quiet && !*asJSON {
		fmt.Printf("dnssec-lint: ok (%d packages, 0 findings)\n", res.Packages)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("dnssec-lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
