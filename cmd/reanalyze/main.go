// Command reanalyze re-runs the paper's classification offline over a
// JSONL observation dump produced by `dnssec-scan -dump` — the
// workflow the authors describe in Appendix D (they retained all scan
// data and analysed it after the campaign).
//
// Usage:
//
//	dnssec-scan -scale 20000 -dump obs.jsonl
//	reanalyze -in obs.jsonl -out figure1
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dnssecboot/internal/classify"
	"dnssecboot/internal/report"
	"dnssecboot/internal/scan"
)

func main() {
	var (
		in  = flag.String("in", "-", "JSONL observation dump (- for stdin)")
		out = flag.String("out", "all", "artefact: all|headline|table1|table2|table3|figure1|cds|queries")
		now = flag.String("now", "2025-04-15T12:00:00Z", "validation timestamp (RFC 3339) matching the scan")
	)
	flag.Parse()

	ts, err := time.Parse(time.RFC3339, *now)
	if err != nil {
		fatal(err)
	}
	f := os.Stdin
	if *in != "-" {
		f, err = os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	raw, err := scan.ReadJSONL(f)
	if err != nil {
		fatal(err)
	}
	observations := make([]*scan.ZoneObservation, 0, len(raw))
	for _, o := range raw {
		obs, err := scan.FromJSON(o)
		if err != nil {
			fatal(err)
		}
		observations = append(observations, obs)
	}
	fmt.Fprintf(os.Stderr, "reanalyze: loaded %d observations\n", len(observations))

	results := classify.New(ts).ClassifyAll(observations)
	r := report.Build(results)
	artefacts := map[string]func() string{
		"headline": r.Headline,
		"table1":   func() string { return r.Table1(20) },
		"table2":   func() string { return r.Table2(20) },
		"table3":   r.Table3,
		"figure1":  r.Figure1,
		"cds":      r.CDSFindings,
		"queries":  r.QueryStats,
	}
	if *out != "all" {
		fn, ok := artefacts[*out]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown artefact %q\n", *out)
			os.Exit(2)
		}
		fmt.Println(fn())
		return
	}
	for _, name := range []string{"headline", "figure1", "table1", "table2", "cds", "table3", "queries"} {
		fmt.Println(artefacts[name]())
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reanalyze:", err)
	os.Exit(1)
}
