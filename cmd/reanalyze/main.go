// Command reanalyze re-runs the paper's classification offline over a
// JSONL observation dump produced by `dnssec-scan -dump` — the
// workflow the authors describe in Appendix D (they retained all scan
// data and analysed it after the campaign).
//
// Usage:
//
//	dnssec-scan -scale 20000 -dump obs.jsonl
//	reanalyze -in obs.jsonl -out figure1
//
// With -trace it instead validates and summarises a -trace-out JSONL
// stream (the CI round-trip check for the trace format).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"dnssecboot/internal/classify"
	"dnssecboot/internal/obs"
	"dnssecboot/internal/report"
	"dnssecboot/internal/scan"
)

func main() {
	var (
		in    = flag.String("in", "-", "JSONL observation dump (- for stdin)")
		out   = flag.String("out", "all", "artefact: all|headline|table1|table2|table3|figure1|cds|queries")
		now   = flag.String("now", "2025-04-15T12:00:00Z", "validation timestamp (RFC 3339) matching the scan")
		trace = flag.String("trace", "", "validate and summarise a -trace-out JSONL stream instead of reclassifying")
	)
	flag.Parse()

	if *trace != "" {
		summarizeTrace(*trace)
		return
	}

	ts, err := time.Parse(time.RFC3339, *now)
	if err != nil {
		fatal(err)
	}
	f := os.Stdin
	if *in != "-" {
		f, err = os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	// Stream: decode → reconstruct → classify → fold one record at a
	// time, so a full-scale dump re-analyses in constant memory (the
	// paper's campaign dump would not fit in RAM as a slice).
	classifier := classify.New(ts)
	r := report.NewAggregate()
	count := 0
	err = scan.DecodeJSONL(f, func(o scan.ObservationJSON) error {
		zo, err := scan.FromJSON(o)
		if err != nil {
			return err
		}
		r.Add(classifier.Classify(zo))
		count++
		return nil
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "reanalyze: classified %d observations\n", count)
	artefacts := map[string]func() string{
		"headline": r.Headline,
		"table1":   func() string { return r.Table1(20) },
		"table2":   func() string { return r.Table2(20) },
		"table3":   r.Table3,
		"figure1":  r.Figure1,
		"cds":      r.CDSFindings,
		"queries":  r.QueryStats,
	}
	if *out != "all" {
		fn, ok := artefacts[*out]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown artefact %q\n", *out)
			os.Exit(2)
		}
		fmt.Println(fn())
		return
	}
	for _, name := range []string{"headline", "figure1", "table1", "table2", "cds", "table3", "queries"} {
		fmt.Println(artefacts[name]())
		fmt.Println()
	}
}

// summarizeTrace round-trips a -trace-out artefact through the trace
// reader and prints per-stage/event counts. Any malformed line is fatal,
// so CI can use this as a format check.
func summarizeTrace(path string) {
	f := os.Stdin
	if path != "-" {
		var err error
		f, err = os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	events, err := obs.ReadTrace(f)
	if err != nil {
		fatal(err)
	}
	zones := make(map[string]bool)
	byKind := make(map[string]int)
	for _, ev := range events {
		zones[ev.Zone] = true
		byKind[ev.Stage+"/"+ev.Event]++
	}
	fmt.Printf("trace: %d events across %d zones\n", len(events), len(zones))
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  %-28s %d\n", k, byKind[k])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reanalyze:", err)
	os.Exit(1)
}
