// Command dnssec-scan reproduces the paper's measurement: it generates
// the synthetic DNS ecosystem, runs the YoDNS-style scan over it, and
// prints the evaluation artefacts (the §4.1 headline, Tables 1–3,
// Figure 1, the §4.2 CDS findings and the Appendix-D query
// accounting).
//
// Usage:
//
//	dnssec-scan [-scale 2000] [-seed 1] [-concurrency 16] [-out table3]
//
// -scale divides the paper's population counts; -out selects one
// artefact (default: all).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers on DefaultServeMux
	"os"
	"path/filepath"
	"runtime"
	"time"

	_ "expvar" // registers /debug/vars on DefaultServeMux

	"dnssecboot/internal/core"
	"dnssecboot/internal/ecosystem"
	"dnssecboot/internal/obs"
	"dnssecboot/internal/scan"
)

func main() {
	var (
		seed         = flag.Int64("seed", 1, "deterministic world/scan seed")
		scale        = flag.Int("scale", 2000, "divide the paper's population counts by this")
		concurrency  = flag.Int("concurrency", runtime.NumCPU(), "parallel zone scans")
		out          = flag.String("out", "all", "artefact: all|headline|table1|table2|table3|figure1|cds|queries")
		shortCircuit = flag.Bool("short-circuit", false, "registry short-circuit: probe signals only for candidates (Appendix D)")
		maxZones     = flag.Int("max-zones", 0, "scan at most this many zones (0 = all)")
		rate         = flag.Float64("rate", 0, "queries/second per nameserver (0 = unlimited; the paper used 50)")
		noSignals    = flag.Bool("no-signals", false, "skip RFC 9615 signal probes")
		dump         = flag.String("dump", "", "write raw observations as JSON lines to this file")
		year         = flag.Int("year", 0, "generate a historical epoch instead of the 2025 population (e.g. 2017)")
		csvDir       = flag.String("csv-dir", "", "also write table1/2/3 + figure1 as CSV files into this directory")
		loss         = flag.Float64("loss", 0, "inject this packet-loss probability on every simulated exchange (e.g. 0.02)")
		retries      = flag.Int("retries", 1, "query attempts per server for transient failures (1 = no retries)")
		chaosSeed    = flag.Int64("chaos-seed", 0, "seed for fault-injection and retry jitter (0 = use -seed)")
		cache        = flag.Bool("cache", true, "shared delegation cache + singleflight deduplication (false = re-walk the root per zone)")
		cacheNegTTL  = flag.Duration("cache-neg-ttl", time.Minute, "how long NXDOMAIN/lame results are served from the negative cache")
		metricsOut   = flag.String("metrics-out", "", "write a JSON metrics snapshot (counters, latency histograms) to this file after the scan")
		traceOut     = flag.String("trace-out", "", "write per-zone trace events as JSON lines to this file")
		traceZone    = flag.String("trace-zone", "", "restrict -trace-out to this zone's full decision trace")
		progress     = flag.Bool("progress", false, "print live scan progress (zones/s, ETA, error rate) to stderr")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if *loss > 0 && *retries <= 1 {
		fmt.Fprintln(os.Stderr, "warning: -loss without -retries > 1 will misclassify zones on dropped packets")
	}
	if *traceZone != "" && *traceOut == "" {
		fmt.Fprintln(os.Stderr, "-trace-zone requires -trace-out")
		os.Exit(2)
	}

	var registry *obs.Registry
	if *metricsOut != "" {
		registry = obs.NewRegistry()
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		defer f.Close()
		tracer = obs.NewTracer(f, *traceZone)
	}
	var progressW io.Writer
	if *progress {
		progressW = os.Stderr
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof: serving /debug/pprof and /debug/vars on %s\n", *pprofAddr)
	}

	genStart := time.Now()
	gcfg := ecosystem.Config{Seed: *seed, ScaleDivisor: *scale}
	if *year != 0 {
		gcfg.Profiles = ecosystem.ProfilesForEra(ecosystem.EraForYear(*year))
	}
	world, err := ecosystem.Generate(gcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "generating world:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "generated %d zones across %d operators in %v\n",
		len(world.Targets), len(world.Operators()), time.Since(genStart).Round(time.Millisecond))

	study, err := core.Run(context.Background(), core.Options{
		Seed:                  *seed,
		World:                 world,
		Concurrency:           *concurrency,
		SignalOnlyCandidates:  *shortCircuit,
		DisableSignalProbes:   *noSignals,
		MaxZones:              *maxZones,
		QueriesPerSecondPerNS: *rate,
		LossRate:              *loss,
		RetryAttempts:         *retries,
		ChaosSeed:             *chaosSeed,
		DisableCache:          !*cache,
		CacheNegTTL:           *cacheNegTTL,
		Registry:              registry,
		Tracer:                tracer,
		ProgressWriter:        progressW,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "scan:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "scanned %d zones in %v\n", len(study.Results), study.Elapsed.Round(time.Millisecond))

	if tracer != nil {
		if err := tracer.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d trace events to %s\n", tracer.Events(), *traceOut)
	}
	if registry != nil {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
		if err := registry.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote metrics snapshot to %s\n", *metricsOut)
	}

	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dump:", err)
			os.Exit(1)
		}
		if err := scan.WriteJSONL(f, study.Observations); err != nil {
			fmt.Fprintln(os.Stderr, "dump:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dump:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote observations to %s\n", *dump)
	}

	r := study.Report
	if *csvDir != "" {
		for _, artefact := range []string{"table1", "table2", "table3", "figure1"} {
			f, err := os.Create(filepath.Join(*csvDir, artefact+".csv"))
			if err != nil {
				fmt.Fprintln(os.Stderr, "csv:", err)
				os.Exit(1)
			}
			if err := r.WriteCSV(f, artefact); err != nil {
				fmt.Fprintln(os.Stderr, "csv:", err)
				os.Exit(1)
			}
			_ = f.Close()
		}
		fmt.Fprintf(os.Stderr, "wrote CSV series to %s\n", *csvDir)
	}
	artefacts := map[string]func() string{
		"headline": r.Headline,
		"table1":   func() string { return r.Table1(20) },
		"table2":   func() string { return r.Table2(20) },
		"table3":   r.Table3,
		"figure1":  r.Figure1,
		"cds":      r.CDSFindings,
		"queries":  r.QueryStats,
	}
	if *out != "all" {
		f, ok := artefacts[*out]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown artefact %q\n", *out)
			os.Exit(2)
		}
		fmt.Println(f())
		return
	}
	for _, name := range []string{"headline", "figure1", "table1", "table2", "cds", "table3", "queries"} {
		fmt.Println(artefacts[name]())
		fmt.Println()
	}
}
