// Command dnssec-scan reproduces the paper's measurement: it generates
// the synthetic DNS ecosystem, runs the YoDNS-style scan over it, and
// prints the evaluation artefacts (the §4.1 headline, Tables 1–3,
// Figure 1, the §4.2 CDS findings and the Appendix-D query
// accounting).
//
// Usage:
//
//	dnssec-scan [-scale 2000] [-seed 1] [-concurrency 16] [-out table3]
//
// -scale divides the paper's population counts; -out selects one
// artefact (default: all).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"dnssecboot/internal/core"
	"dnssecboot/internal/ecosystem"
	"dnssecboot/internal/scan"
)

func main() {
	var (
		seed         = flag.Int64("seed", 1, "deterministic world/scan seed")
		scale        = flag.Int("scale", 2000, "divide the paper's population counts by this")
		concurrency  = flag.Int("concurrency", runtime.NumCPU(), "parallel zone scans")
		out          = flag.String("out", "all", "artefact: all|headline|table1|table2|table3|figure1|cds|queries")
		shortCircuit = flag.Bool("short-circuit", false, "registry short-circuit: probe signals only for candidates (Appendix D)")
		maxZones     = flag.Int("max-zones", 0, "scan at most this many zones (0 = all)")
		rate         = flag.Float64("rate", 0, "queries/second per nameserver (0 = unlimited; the paper used 50)")
		noSignals    = flag.Bool("no-signals", false, "skip RFC 9615 signal probes")
		dump         = flag.String("dump", "", "write raw observations as JSON lines to this file")
		year         = flag.Int("year", 0, "generate a historical epoch instead of the 2025 population (e.g. 2017)")
		csvDir       = flag.String("csv-dir", "", "also write table1/2/3 + figure1 as CSV files into this directory")
		loss         = flag.Float64("loss", 0, "inject this packet-loss probability on every simulated exchange (e.g. 0.02)")
		retries      = flag.Int("retries", 1, "query attempts per server for transient failures (1 = no retries)")
		chaosSeed    = flag.Int64("chaos-seed", 0, "seed for fault-injection and retry jitter (0 = use -seed)")
		cache        = flag.Bool("cache", true, "shared delegation cache + singleflight deduplication (false = re-walk the root per zone)")
		cacheNegTTL  = flag.Duration("cache-neg-ttl", time.Minute, "how long NXDOMAIN/lame results are served from the negative cache")
	)
	flag.Parse()
	if *loss > 0 && *retries <= 1 {
		fmt.Fprintln(os.Stderr, "warning: -loss without -retries > 1 will misclassify zones on dropped packets")
	}

	genStart := time.Now()
	gcfg := ecosystem.Config{Seed: *seed, ScaleDivisor: *scale}
	if *year != 0 {
		gcfg.Profiles = ecosystem.ProfilesForEra(ecosystem.EraForYear(*year))
	}
	world, err := ecosystem.Generate(gcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "generating world:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "generated %d zones across %d operators in %v\n",
		len(world.Targets), len(world.Operators()), time.Since(genStart).Round(time.Millisecond))

	study, err := core.Run(context.Background(), core.Options{
		Seed:                  *seed,
		World:                 world,
		Concurrency:           *concurrency,
		SignalOnlyCandidates:  *shortCircuit,
		DisableSignalProbes:   *noSignals,
		MaxZones:              *maxZones,
		QueriesPerSecondPerNS: *rate,
		LossRate:              *loss,
		RetryAttempts:         *retries,
		ChaosSeed:             *chaosSeed,
		DisableCache:          !*cache,
		CacheNegTTL:           *cacheNegTTL,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "scan:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "scanned %d zones in %v\n", len(study.Results), study.Elapsed.Round(time.Millisecond))

	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dump:", err)
			os.Exit(1)
		}
		if err := scan.WriteJSONL(f, study.Observations); err != nil {
			fmt.Fprintln(os.Stderr, "dump:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dump:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote observations to %s\n", *dump)
	}

	r := study.Report
	if *csvDir != "" {
		for _, artefact := range []string{"table1", "table2", "table3", "figure1"} {
			f, err := os.Create(filepath.Join(*csvDir, artefact+".csv"))
			if err != nil {
				fmt.Fprintln(os.Stderr, "csv:", err)
				os.Exit(1)
			}
			if err := r.WriteCSV(f, artefact); err != nil {
				fmt.Fprintln(os.Stderr, "csv:", err)
				os.Exit(1)
			}
			_ = f.Close()
		}
		fmt.Fprintf(os.Stderr, "wrote CSV series to %s\n", *csvDir)
	}
	artefacts := map[string]func() string{
		"headline": r.Headline,
		"table1":   func() string { return r.Table1(20) },
		"table2":   func() string { return r.Table2(20) },
		"table3":   r.Table3,
		"figure1":  r.Figure1,
		"cds":      r.CDSFindings,
		"queries":  r.QueryStats,
	}
	if *out != "all" {
		f, ok := artefacts[*out]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown artefact %q\n", *out)
			os.Exit(2)
		}
		fmt.Println(f())
		return
	}
	for _, name := range []string{"headline", "figure1", "table1", "table2", "cds", "table3", "queries"} {
		fmt.Println(artefacts[name]())
		fmt.Println()
	}
}
