// Command dnssec-scan reproduces the paper's measurement: it generates
// the synthetic DNS ecosystem, runs the YoDNS-style scan over it, and
// prints the evaluation artefacts (the §4.1 headline, Tables 1–3,
// Figure 1, the §4.2 CDS findings and the Appendix-D query
// accounting).
//
// Usage:
//
//	dnssec-scan [-scale 2000] [-seed 1] [-concurrency 16] [-out table3]
//
// -scale divides the paper's population counts; -out selects one
// artefact (default: all).
//
// The scan streams: each zone's observation is classified, folded into
// the report tallies and (with -dump) appended to the JSONL export as
// soon as its turn in the target order arrives, so memory stays bounded
// by the concurrency window regardless of -scale. With -checkpoint the
// durable prefix is recorded periodically; an interrupted run (crash or
// SIGINT, which drains in-flight zones gracefully) continues with
// -resume from exactly where the export stopped.
//
// With -shard i/N the process scans only the i-th of N contiguous
// partitions of the zone space (deterministic in the zone index), which
// is how cmd/scanctl fans one scan out across worker processes; the
// {shard} placeholder in -dump/-checkpoint and friends expands to
// "i-of-N" so one template names per-shard files.
//
// With -zonefile the target list comes from a real zone dump (CZDS
// download / AXFR capture, plain or gzipped) reduced to registrable
// delegated domains by internal/ingest, instead of from the synthetic
// generator; -shard then partitions the ingested list. The -seed/-scale
// world still provides the simulated network the targets are resolved
// against (an ingested name that exists in the world classifies
// normally; unknown names observe NXDOMAIN).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers on DefaultServeMux
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	_ "expvar" // registers /debug/vars on DefaultServeMux

	"dnssecboot/internal/classify"
	"dnssecboot/internal/core"
	"dnssecboot/internal/ecosystem"
	"dnssecboot/internal/ingest"
	"dnssecboot/internal/obs"
	"dnssecboot/internal/report"
	"dnssecboot/internal/scan"
	"dnssecboot/internal/shard"
)

// runConfig is the flag fingerprint embedded in checkpoints. A resume
// with a different fingerprint is refused: these flags change what the
// scan observes, so mixing them in one export would corrupt it.
// Concurrency is deliberately absent — it changes scheduling, never
// per-zone results.
type runConfig struct {
	Seed         int64   `json:"seed"`
	Scale        int     `json:"scale"`
	Year         int     `json:"year,omitempty"`
	MaxZones     int     `json:"max_zones,omitempty"`
	ShortCircuit bool    `json:"short_circuit,omitempty"`
	NoSignals    bool    `json:"no_signals,omitempty"`
	Rate         float64 `json:"rate,omitempty"`
	Loss         float64 `json:"loss,omitempty"`
	Retries      int     `json:"retries,omitempty"`
	ChaosSeed    int64   `json:"chaos_seed,omitempty"`
	Cache        bool    `json:"cache"`
	Stateless    bool    `json:"stateless,omitempty"`
	CacheNegTTL  string  `json:"cache_neg_ttl,omitempty"`
	Dump         bool    `json:"dump,omitempty"`
	ZoneFile     string  `json:"zonefile,omitempty"`
	ZoneOrigin   string  `json:"zonefile_origin,omitempty"`
}

func fatal(prefix string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", prefix, err)
	os.Exit(1)
}

func main() {
	var (
		seed         = flag.Int64("seed", 1, "deterministic world/scan seed")
		scale        = flag.Int("scale", 2000, "divide the paper's population counts by this")
		concurrency  = flag.Int("concurrency", runtime.NumCPU(), "parallel zone scans")
		out          = flag.String("out", "all", "artefact: all|headline|table1|table2|table3|figure1|cds|queries|none")
		shortCircuit = flag.Bool("short-circuit", false, "registry short-circuit: probe signals only for candidates (Appendix D)")
		maxZones     = flag.Int("max-zones", 0, "scan at most this many zones (0 = all)")
		rate         = flag.Float64("rate", 0, "queries/second per nameserver (0 = unlimited; the paper used 50)")
		noSignals    = flag.Bool("no-signals", false, "skip RFC 9615 signal probes")
		dump         = flag.String("dump", "", "stream raw observations as JSON lines to this file")
		year         = flag.Int("year", 0, "generate a historical epoch instead of the 2025 population (e.g. 2017)")
		csvDir       = flag.String("csv-dir", "", "also write table1/2/3 + figure1 as CSV files into this directory")
		loss         = flag.Float64("loss", 0, "inject this packet-loss probability on every simulated exchange (e.g. 0.02)")
		retries      = flag.Int("retries", 1, "query attempts per server for transient failures (1 = no retries)")
		chaosSeed    = flag.Int64("chaos-seed", 0, "seed for fault-injection and retry jitter (0 = use -seed)")
		stateless    = flag.Bool("stateless", false, "pure per-zone resolution: no caches at all, byte-reproducible -dump across runs and resumes")
		cache        = flag.Bool("cache", true, "shared delegation cache + singleflight deduplication (false = re-walk the root per zone)")
		cacheNegTTL  = flag.Duration("cache-neg-ttl", time.Minute, "how long NXDOMAIN/lame results are served from the negative cache")
		metricsOut   = flag.String("metrics-out", "", "write a JSON metrics snapshot (counters, latency histograms) to this file after the scan")
		traceOut     = flag.String("trace-out", "", "write per-zone trace events as JSON lines to this file")
		traceZone    = flag.String("trace-zone", "", "restrict -trace-out to this zone's full decision trace")
		progress     = flag.Bool("progress", false, "print live scan progress (zones/s, ETA, error rate) to stderr")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
		checkpoint   = flag.String("checkpoint", "", "periodically persist resumable scan state to this file")
		cpEvery      = flag.Int("checkpoint-every", 256, "zones between checkpoints (with -checkpoint)")
		resume       = flag.String("resume", "", "resume an interrupted scan from this checkpoint file")
		shardSpec    = flag.String("shard", "", "scan only the i-th of N contiguous zone shards, as \"i/N\" (0-based); partitions are deterministic in the zone index")
		zonefile     = flag.String("zonefile", "", "ingest scan targets from this zone dump (master-file/AXFR dump, plain or gzip) instead of the generator's target list; -seed/-scale still shape the simulated network the targets are scanned against")
		zoneOrigin   = flag.String("zonefile-origin", "", "apex of the -zonefile dump (default: autodetect from $ORIGIN or the first SOA)")
		zoneWorkers  = flag.Int("zonefile-workers", 0, "parallel -zonefile record parsers (0 = auto)")
		zoneStrict   = flag.Bool("zonefile-strict", false, "abort -zonefile ingestion on the first malformed record instead of counting and skipping it")
	)
	flag.Parse()
	if *zonefile != "" && *year != 0 {
		fmt.Fprintln(os.Stderr, "-zonefile and -year are mutually exclusive: the target list comes from the dump, not the synthetic population")
		os.Exit(2)
	}
	shardIdx, shardN, err := shard.Parse(*shardSpec)
	if err != nil {
		fatal("shard", err)
	}
	// Shard-aware file naming: one -dump/-checkpoint/... template can
	// serve every worker — the {shard} placeholder expands to "i-of-N".
	for _, p := range []*string{dump, checkpoint, resume, metricsOut, traceOut} {
		*p = shard.PathFor(*p, shardIdx, shardN)
	}
	if *loss > 0 && *retries <= 1 {
		fmt.Fprintln(os.Stderr, "warning: -loss without -retries > 1 will misclassify zones on dropped packets")
	}
	if *traceZone != "" && *traceOut == "" {
		fmt.Fprintln(os.Stderr, "-trace-zone requires -trace-out")
		os.Exit(2)
	}
	cpPath := *checkpoint
	if cpPath == "" {
		// -resume alone keeps checkpointing to the same file.
		cpPath = *resume
	}

	var registry *obs.Registry
	if *metricsOut != "" {
		registry = obs.NewRegistry()
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal("trace", err)
		}
		defer f.Close()
		tracer = obs.NewTracer(f, *traceZone)
	}
	var progressW io.Writer
	if *progress {
		progressW = os.Stderr
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof: serving /debug/pprof and /debug/vars on %s\n", *pprofAddr)
	}

	genStart := time.Now()
	gcfg := ecosystem.Config{Seed: *seed, ScaleDivisor: *scale}
	if *year != 0 {
		gcfg.Profiles = ecosystem.ProfilesForEra(ecosystem.EraForYear(*year))
	}
	world, err := ecosystem.Generate(gcfg)
	if err != nil {
		fatal("generating world", err)
	}
	targets := world.Targets
	if *zonefile != "" {
		ingStart := time.Now()
		res, err := ingest.File(context.Background(), *zonefile, ingest.Config{
			Origin:   *zoneOrigin,
			Workers:  *zoneWorkers,
			Strict:   *zoneStrict,
			Registry: registry,
		})
		if err != nil {
			fatal("zonefile", err)
		}
		targets = res.Targets
		st := res.Stats
		fmt.Fprintf(os.Stderr, "ingested %s: %d records -> %d targets (origin %s, %d skipped) in %v\n",
			*zonefile, st.Records, st.Targets, st.Origin, st.Records-st.Targets, time.Since(ingStart).Round(time.Millisecond))
		for _, e := range st.FirstErrors {
			fmt.Fprintf(os.Stderr, "zonefile: skipped %s\n", e)
		}
	}
	if *maxZones > 0 && len(targets) > *maxZones {
		targets = targets[:*maxZones]
	}
	// The shard owns the contiguous index range [rng.Lo, rng.Hi);
	// workers derive identical boundaries from (len(targets), N) alone,
	// so the coordinator never has to communicate them.
	rng := shard.Partition(len(targets), shardN)[shardIdx]
	fmt.Fprintf(os.Stderr, "generated %d zones across %d operators in %v\n",
		len(world.Targets), len(world.Operators()), time.Since(genStart).Round(time.Millisecond))
	if shardN > 1 {
		fmt.Fprintf(os.Stderr, "shard %d/%d owns zones [%d, %d)\n", shardIdx, shardN, rng.Lo, rng.Hi)
	}

	cfgFP, err := json.Marshal(runConfig{
		Seed:         *seed,
		Scale:        *scale,
		Year:         *year,
		MaxZones:     *maxZones,
		ShortCircuit: *shortCircuit,
		NoSignals:    *noSignals,
		Rate:         *rate,
		Loss:         *loss,
		Retries:      *retries,
		ChaosSeed:    *chaosSeed,
		Cache:        *cache && !*stateless,
		Stateless:    *stateless,
		CacheNegTTL:  cacheNegTTL.String(),
		Dump:         *dump != "",
		ZoneFile:     *zonefile,
		ZoneOrigin:   *zoneOrigin,
	})
	if err != nil {
		fatal("config", err)
	}

	// Resume: restore the accumulator, re-open the dump at the last
	// durable record, and continue from the checkpointed index.
	startIndex := rng.Lo
	agg := report.NewAggregate()
	var dumpFile *os.File
	var dumpBase int64
	if *resume != "" {
		cp, err := scan.ReadCheckpoint(*resume)
		if err != nil {
			fatal("resume", err)
		}
		if err := cp.Validate(*seed, len(targets), shardIdx, shardN); err != nil {
			fatal("resume", err)
		}
		// The checkpoint file is written indented, so compact the stored
		// fingerprint before comparing it to the freshly-marshalled one.
		var stored bytes.Buffer
		if err := json.Compact(&stored, cp.Config); err != nil {
			fatal("resume", fmt.Errorf("checkpoint config fingerprint: %w", err))
		}
		if !bytes.Equal(stored.Bytes(), cfgFP) {
			fatal("resume", fmt.Errorf("checkpoint was taken with different flags: %s", stored.Bytes()))
		}
		if len(cp.Aggregate) > 0 {
			if agg, err = report.UnmarshalState(cp.Aggregate); err != nil {
				fatal("resume", err)
			}
		}
		startIndex = cp.NextIndex
		if startIndex < rng.Lo || startIndex > rng.Hi {
			fatal("resume", fmt.Errorf("checkpoint index %d outside shard range [%d, %d]", startIndex, rng.Lo, rng.Hi))
		}
		if *dump != "" {
			f, err := os.OpenFile(*dump, os.O_RDWR, 0o644)
			if err != nil {
				fatal("resume", err)
			}
			// Records written after the last checkpoint are not covered
			// by it; truncate them away and re-scan those zones instead
			// of exporting duplicates.
			if err := f.Truncate(cp.DumpBytes); err != nil {
				fatal("resume", err)
			}
			if _, err := f.Seek(cp.DumpBytes, io.SeekStart); err != nil {
				fatal("resume", err)
			}
			dumpFile = f
			dumpBase = cp.DumpBytes
		}
		fmt.Fprintf(os.Stderr, "resuming at zone %d/%d from %s\n", startIndex, len(targets), *resume)
	} else if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fatal("dump", err)
		}
		dumpFile = f
	}

	var writer *scan.JSONLWriter
	if dumpFile != nil {
		writer = scan.NewJSONLWriter(dumpFile)
	}

	writeCheckpoint := func(next int) error {
		if writer != nil {
			if err := writer.Flush(); err != nil {
				return err
			}
		}
		state, err := agg.MarshalState()
		if err != nil {
			return err
		}
		cp := &scan.Checkpoint{
			Version:    scan.CheckpointVersion,
			Seed:       *seed,
			ChaosSeed:  *chaosSeed,
			TotalZones: len(targets),
			NextIndex:  next,
			Config:     cfgFP,
			Aggregate:  state,
		}
		if shardN > 1 {
			cp.Shard, cp.Shards = shardIdx, shardN
		}
		if writer != nil {
			cp.DumpBytes = dumpBase + writer.Bytes()
		}
		return scan.WriteCheckpoint(cpPath, cp)
	}

	// SIGINT/SIGTERM drain the pipeline gracefully: stop dispatching,
	// finish in-flight zones, flush the export, take a final checkpoint
	// and exit 0. A second signal aborts immediately.
	drain := make(chan struct{})
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "interrupt: draining in-flight zones (interrupt again to abort)")
		close(drain)
		<-sigs
		os.Exit(130)
	}()

	study, err := core.RunStream(context.Background(), core.StreamOptions{
		Options: core.Options{
			Seed:                  *seed,
			World:                 world,
			Targets:               targets,
			Concurrency:           *concurrency,
			SignalOnlyCandidates:  *shortCircuit,
			DisableSignalProbes:   *noSignals,
			MaxZones:              *maxZones,
			QueriesPerSecondPerNS: *rate,
			LossRate:              *loss,
			RetryAttempts:         *retries,
			ChaosSeed:             *chaosSeed,
			DisableCache:          !*cache,
			Stateless:             *stateless,
			CacheNegTTL:           *cacheNegTTL,
			Registry:              registry,
			Tracer:                tracer,
			ProgressWriter:        progressW,
		},
		StartIndex: startIndex,
		EndIndex:   rng.Hi,
		Resume:     agg,
		Drain:      drain,
		Sink: func(i int, zo *scan.ZoneObservation, _ *classify.Result) error {
			if writer != nil {
				if err := writer.Write(zo); err != nil {
					return err
				}
			}
			if cpPath != "" && *cpEvery > 0 && (i+1-startIndex)%*cpEvery == 0 && i+1 < rng.Hi {
				return writeCheckpoint(i + 1)
			}
			return nil
		},
	})
	if err != nil {
		fatal("scan", err)
	}
	signal.Stop(sigs)
	fmt.Fprintf(os.Stderr, "scanned %d zones in %v (%d/%d exported)\n",
		study.Scanned, study.Elapsed.Round(time.Millisecond), study.NextIndex, study.TotalZones)

	if writer != nil {
		if err := writer.Flush(); err != nil {
			fatal("dump", err)
		}
	}
	if cpPath != "" {
		if err := writeCheckpoint(study.NextIndex); err != nil {
			fatal("checkpoint", err)
		}
		fmt.Fprintf(os.Stderr, "wrote checkpoint to %s\n", cpPath)
	}
	if dumpFile != nil {
		if err := dumpFile.Close(); err != nil {
			fatal("dump", err)
		}
		fmt.Fprintf(os.Stderr, "wrote observations to %s\n", *dump)
	}

	if tracer != nil {
		if err := tracer.Close(); err != nil {
			fatal("trace", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d trace events to %s\n", tracer.Events(), *traceOut)
	}
	if registry != nil {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatal("metrics", err)
		}
		if err := registry.WriteJSON(f); err != nil {
			fatal("metrics", err)
		}
		if err := f.Close(); err != nil {
			fatal("metrics", err)
		}
		fmt.Fprintf(os.Stderr, "wrote metrics snapshot to %s\n", *metricsOut)
	}

	if study.Drained {
		// The run stopped early on purpose; partial tables would be
		// misleading, so just explain how to pick the scan back up.
		if cpPath != "" {
			fmt.Fprintf(os.Stderr, "interrupted at zone %d/%d; continue with: dnssec-scan -resume %s [same flags]\n",
				study.NextIndex, study.TotalZones, cpPath)
		} else {
			fmt.Fprintf(os.Stderr, "interrupted at zone %d/%d (no -checkpoint: the scan cannot be resumed)\n",
				study.NextIndex, study.TotalZones)
		}
		return
	}

	r := study.Report
	if *out == "none" {
		// A shard worker's partial tables would be misleading; its
		// contribution lives in the checkpoint state and the dump, which
		// the coordinator merges.
		return
	}
	if *csvDir != "" {
		for _, artefact := range []string{"table1", "table2", "table3", "figure1"} {
			f, err := os.Create(filepath.Join(*csvDir, artefact+".csv"))
			if err != nil {
				fatal("csv", err)
			}
			if err := r.WriteCSV(f, artefact); err != nil {
				fatal("csv", err)
			}
			_ = f.Close()
		}
		fmt.Fprintf(os.Stderr, "wrote CSV series to %s\n", *csvDir)
	}
	artefacts := map[string]func() string{
		"headline": r.Headline,
		"table1":   func() string { return r.Table1(20) },
		"table2":   func() string { return r.Table2(20) },
		"table3":   r.Table3,
		"figure1":  r.Figure1,
		"cds":      r.CDSFindings,
		"queries":  r.QueryStats,
	}
	if *out != "all" {
		f, ok := artefacts[*out]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown artefact %q\n", *out)
			os.Exit(2)
		}
		fmt.Println(f())
		return
	}
	for _, name := range []string{"headline", "figure1", "table1", "table2", "cds", "table3", "queries"} {
		fmt.Println(artefacts[name]())
		fmt.Println()
	}
}
