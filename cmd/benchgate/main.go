// Command benchgate enforces allocation ceilings on the hot-path
// benchmarks and records the performance trajectory.
//
// It parses `go test -bench -benchmem` output (from a file or stdin),
// asserts the allocs/op ceilings configured below, and appends one
// entry per run to the trajectory artefact (artifacts/
// bench_trajectory.json) so zones/s and allocs/op are diffable across
// commits. Any ceiling violation or missing benchmark is a nonzero
// exit, which is what wires the gate into `make ci`.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem ./... | benchgate -label dev
//	benchgate -in artifacts/bench_gate.txt -trajectory artifacts/bench_trajectory.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// ceilings are the hard allocs/op limits per benchmark. The pack and
// unpack legs are pinned at exactly zero — the tentpole invariant of
// the zero-alloc codec. The composite paths get modest headroom above
// their measured steady state (QueryHotPath ~12, ScanStream ~160k per
// 512-zone stream) so noise does not trip the gate but a reintroduced
// per-message allocation does.
var ceilings = map[string]float64{
	"BenchmarkPackUnpack/pack":   0,
	"BenchmarkPackUnpack/unpack": 0,
	"BenchmarkQueryHotPath":      20,
	"BenchmarkScanStream":        250000,
}

// result is one parsed benchmark line.
type result struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_op"`
	BPerOp   float64 `json:"b_op,omitempty"`
	AllocsOp float64 `json:"allocs_op"`
	ZonesSec float64 `json:"zones_s,omitempty"`
}

// entry is one trajectory record: a labelled, timestamped set of
// results.
type entry struct {
	Label   string            `json:"label"`
	Time    string            `json:"time"`
	Results map[string]result `json:"results"`
}

func main() {
	in := flag.String("in", "-", "benchmark output file ('-' for stdin)")
	trajectory := flag.String("trajectory", "", "trajectory JSON to append to (omit to only verify)")
	label := flag.String("label", "ci", "label recorded with the trajectory entry")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	data, err := io.ReadAll(r)
	if err != nil {
		fatal(err)
	}
	results := parse(string(data))
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	failed := false
	for name, ceiling := range ceilings {
		res, ok := results[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: benchmark missing from input\n", name)
			failed = true
			continue
		}
		if res.AllocsOp > ceiling {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: %.0f allocs/op exceeds ceiling %.0f\n",
				name, res.AllocsOp, ceiling)
			failed = true
			continue
		}
		fmt.Printf("benchgate: ok %s: %.0f allocs/op (ceiling %.0f)\n", name, res.AllocsOp, ceiling)
	}

	if *trajectory != "" {
		if err := appendTrajectory(*trajectory, *label, results); err != nil {
			fatal(err)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// parse extracts benchmark results from `go test -bench -benchmem`
// output. Lines look like:
//
//	BenchmarkPackUnpack/pack-8  5000  611 ns/op  0 B/op  0 allocs/op
//	BenchmarkScanStream-8  3  5.4e7 ns/op  18.0 peak_live  9347 zones/s  1.0e7 B/op  159271 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so ceilings address benchmarks
// by their stable name.
func parse(out string) map[string]result {
	results := make(map[string]result)
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		res := result{Name: name}
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BPerOp = v
			case "allocs/op":
				res.AllocsOp = v
			case "zones/s":
				res.ZonesSec = v
			}
		}
		results[name] = res
	}
	return results
}

// appendTrajectory loads the trajectory file (an array of entries,
// created on first use), appends one entry for this run and writes it
// back.
func appendTrajectory(path, label string, results map[string]result) error {
	var entries []entry
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &entries); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	entries = append(entries, entry{
		Label:   label,
		Time:    time.Now().UTC().Format(time.RFC3339),
		Results: results,
	})
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
