// Command zonesign signs a master-format zone file with freshly
// generated keys and prints the signed zone, the DS record for the
// parent, and the CDS/CDNSKEY records an operator would publish for
// automated provisioning (RFC 7344).
//
// Usage:
//
//	zonesign -zone example.com -in zonefile [-alg ed25519] [-expired]
//	zonesign -zone example.com -in zonefile -delete   # emit CDS delete
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dnssecboot/internal/dnssec"
	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/zone"
)

func main() {
	var (
		origin  = flag.String("zone", "", "zone origin (required)")
		in      = flag.String("in", "-", "input master file (- for stdin)")
		alg     = flag.String("alg", "ed25519", "algorithm: rsasha256|ecdsap256|ecdsap384|ed25519")
		expired = flag.Bool("expired", false, "produce already-expired signatures (testing)")
		del     = flag.Bool("delete", false, "publish the RFC 8078 CDS deletion request instead of real CDS")
	)
	flag.Parse()
	if *origin == "" {
		fmt.Fprintln(os.Stderr, "zonesign: -zone is required")
		os.Exit(2)
	}

	f := os.Stdin
	if *in != "-" {
		var err error
		f, err = os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	z, err := zone.Parse(f, *origin)
	if err != nil {
		fatal(err)
	}

	algNum, err := algByName(*alg)
	if err != nil {
		fatal(err)
	}
	cfg := zone.SignConfig{Algorithm: algNum, Expired: *expired}
	if err := z.GenerateKeys(cfg, nil); err != nil {
		fatal(err)
	}
	if *del {
		z.PublishDeleteCDS()
	} else if err := z.PublishCDS(dnswire.DigestSHA256); err != nil {
		fatal(err)
	}
	if err := z.Sign(cfg); err != nil {
		fatal(err)
	}
	if _, err := z.WriteTo(os.Stdout); err != nil {
		fatal(err)
	}

	ksk := z.Keys[0]
	ds, err := dnssec.DSFromKey(z.Origin, ksk.DNSKEY(), dnswire.DigestSHA256)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n; DS record for the parent zone:\n%s\t86400\tIN\tDS\t%s\n", z.Origin, ds.String())
}

func algByName(name string) (uint8, error) {
	switch strings.ToLower(name) {
	case "rsasha256":
		return dnswire.AlgRSASHA256, nil
	case "ecdsap256":
		return dnswire.AlgECDSAP256SHA256, nil
	case "ecdsap384":
		return dnswire.AlgECDSAP384SHA384, nil
	case "ed25519":
		return dnswire.AlgEd25519, nil
	}
	return 0, fmt.Errorf("zonesign: unknown algorithm %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zonesign:", err)
	os.Exit(1)
}
