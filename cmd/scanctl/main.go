// Command scanctl coordinates a sharded scan: it partitions the zone
// space into N contiguous shards, launches one `dnssec-scan -shard i/N`
// worker process per shard, restarts dead or wedged workers from their
// last durable checkpoint, and on completion merges the per-shard
// accumulator states and JSONL dumps into a single report and export —
// byte-identical (in -stateless mode) to a single-process run over the
// same world.
//
// Usage:
//
//	scanctl -shards 4 -scale 2000 -run-dir run [-dump merged.jsonl] [-out all]
//
// The run directory holds shard-i-of-N.{ckpt,jsonl,log}; re-running
// scanctl with the same flags and run directory resumes unfinished
// shards from their checkpoints.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"dnssecboot/internal/obs"
	"dnssecboot/internal/shard"
)

func fatal(prefix string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", prefix, err)
	os.Exit(1)
}

// findWorker locates the dnssec-scan binary: an explicit -worker path
// wins, then a sibling of the scanctl executable, then $PATH.
func findWorker(explicit string) (string, error) {
	if explicit != "" {
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "dnssec-scan")
		if _, err := os.Stat(sibling); err == nil {
			return sibling, nil
		}
	}
	if path, err := exec.LookPath("dnssec-scan"); err == nil {
		return path, nil
	}
	return "", fmt.Errorf("dnssec-scan binary not found next to scanctl or in PATH; point -worker at it")
}

func main() {
	var (
		shards       = flag.Int("shards", 4, "number of worker processes (contiguous zone partitions)")
		runDir       = flag.String("run-dir", "scanctl-run", "directory for per-shard checkpoints, dumps and logs")
		worker       = flag.String("worker", "", "path to the dnssec-scan binary (default: next to scanctl, then PATH)")
		maxRestarts  = flag.Int("max-restarts", 3, "restarts allowed per shard before the run fails")
		backoff      = flag.Duration("restart-backoff", 500*time.Millisecond, "delay before the first restart, doubling per attempt")
		stallTimeout = flag.Duration("stall-timeout", 5*time.Minute, "kill a worker whose checkpoint stalls this long (0 = off); must exceed the checkpoint cadence")
		killShard    = flag.Int("kill-shard", -1, "fault injection: SIGKILL this shard's worker once mid-run (tests and shard-smoke)")
		killAfter    = flag.Int("kill-after-zones", 1, "with -kill-shard: kill once the shard's checkpoint covers this many zones")
		progress     = flag.Bool("progress", false, "print a per-shard progress rollup to stderr")

		// World and scan flags, passed through to every worker.
		seed         = flag.Int64("seed", 1, "deterministic world/scan seed")
		scale        = flag.Int("scale", 2000, "divide the paper's population counts by this")
		year         = flag.Int("year", 0, "generate a historical epoch instead of the 2025 population")
		maxZones     = flag.Int("max-zones", 0, "scan at most this many zones (0 = all)")
		concurrency  = flag.Int("concurrency", 0, "parallel zone scans per worker (0 = NumCPU/shards)")
		shortCircuit = flag.Bool("short-circuit", false, "registry short-circuit: probe signals only for candidates")
		noSignals    = flag.Bool("no-signals", false, "skip RFC 9615 signal probes")
		rate         = flag.Float64("rate", 0, "queries/second per nameserver per worker (0 = unlimited)")
		loss         = flag.Float64("loss", 0, "inject this packet-loss probability on every simulated exchange")
		retries      = flag.Int("retries", 1, "query attempts per server for transient failures")
		chaosSeed    = flag.Int64("chaos-seed", 0, "seed for fault-injection and retry jitter (0 = use -seed)")
		stateless    = flag.Bool("stateless", true, "pure per-zone resolution; required for merged output to be byte-identical to a single-process run")
		cpEvery      = flag.Int("checkpoint-every", 256, "zones between worker checkpoints")

		// Merged outputs.
		dump   = flag.String("dump", "", "write the merged JSONL export (shard dumps concatenated in shard order) to this file")
		csvDir = flag.String("csv-dir", "", "also write table1/2/3 + figure1 as CSV files into this directory")
		out    = flag.String("out", "all", "artefact: all|headline|table1|table2|table3|figure1|cds|queries|none")
	)
	flag.Parse()
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "-shards must be at least 1")
		os.Exit(2)
	}
	bin, err := findWorker(*worker)
	if err != nil {
		fatal("worker", err)
	}
	if !*stateless {
		fmt.Fprintln(os.Stderr, "warning: without -stateless the merged export depends on shard layout (per-worker caches); reports stay valid, byte-equality does not")
	}
	perWorker := *concurrency
	if perWorker <= 0 {
		if perWorker = runtime.NumCPU() / *shards; perWorker < 1 {
			perWorker = 1
		}
	}

	workerArgs := []string{
		"-seed", fmt.Sprint(*seed),
		"-scale", fmt.Sprint(*scale),
		"-concurrency", fmt.Sprint(perWorker),
		"-retries", fmt.Sprint(*retries),
		"-checkpoint-every", fmt.Sprint(*cpEvery),
		fmt.Sprintf("-stateless=%t", *stateless),
	}
	if *year != 0 {
		workerArgs = append(workerArgs, "-year", fmt.Sprint(*year))
	}
	if *maxZones > 0 {
		workerArgs = append(workerArgs, "-max-zones", fmt.Sprint(*maxZones))
	}
	if *shortCircuit {
		workerArgs = append(workerArgs, "-short-circuit")
	}
	if *noSignals {
		workerArgs = append(workerArgs, "-no-signals")
	}
	if *rate != 0 {
		workerArgs = append(workerArgs, "-rate", fmt.Sprint(*rate))
	}
	if *loss != 0 {
		workerArgs = append(workerArgs, "-loss", fmt.Sprint(*loss))
	}
	if *chaosSeed != 0 {
		workerArgs = append(workerArgs, "-chaos-seed", fmt.Sprint(*chaosSeed))
	}

	var rollup *obs.ShardRollup
	if *progress {
		rollup = obs.NewShardRollup(os.Stderr, *shards)
	}

	// SIGINT/SIGTERM cancel the run context; workers are killed (their
	// checkpoints survive) and a re-run of scanctl resumes them.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	start := time.Now()
	res, err := shard.Run(ctx, shard.Config{
		Shards: *shards,
		RunDir: *runDir,
		Worker: shard.WorkerConfig{
			Bin:  bin,
			Args: workerArgs,
			Dump: *dump != "",
		},
		MergedDump:     *dump,
		MaxRestarts:    *maxRestarts,
		Backoff:        *backoff,
		StallTimeout:   *stallTimeout,
		KillShard:      *killShard,
		KillAfterZones: *killAfter,
		Rollup:         rollup,
		Log:            os.Stderr,
	})
	if err != nil {
		fatal("scanctl", err)
	}
	fmt.Fprintf(os.Stderr, "scanctl: %d shards covered %d zones in %v (%d restarts)\n",
		*shards, res.TotalZones, time.Since(start).Round(time.Millisecond), res.Restarts)
	if *dump != "" {
		fmt.Fprintf(os.Stderr, "scanctl: wrote merged observations to %s\n", *dump)
	}

	r := res.Aggregate
	if *out == "none" {
		return
	}
	if *csvDir != "" {
		for _, artefact := range []string{"table1", "table2", "table3", "figure1"} {
			f, err := os.Create(filepath.Join(*csvDir, artefact+".csv"))
			if err != nil {
				fatal("csv", err)
			}
			if err := r.WriteCSV(f, artefact); err != nil {
				fatal("csv", err)
			}
			_ = f.Close()
		}
		fmt.Fprintf(os.Stderr, "scanctl: wrote CSV series to %s\n", *csvDir)
	}
	artefacts := map[string]func() string{
		"headline": r.Headline,
		"table1":   func() string { return r.Table1(20) },
		"table2":   func() string { return r.Table2(20) },
		"table3":   r.Table3,
		"figure1":  r.Figure1,
		"cds":      r.CDSFindings,
		"queries":  r.QueryStats,
	}
	if *out != "all" {
		f, ok := artefacts[*out]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown artefact %q\n", *out)
			os.Exit(2)
		}
		fmt.Println(f())
		return
	}
	for _, name := range []string{"headline", "figure1", "table1", "table2", "cds", "table3", "queries"} {
		fmt.Println(artefacts[name]())
		fmt.Println()
	}
}
