// Command zonestat inspects zone dumps through the streaming ingest
// pipeline without scanning anything: it prints, as JSON, exactly what
// dnssec-scan -zonefile would reduce the dump to — record and line
// counts, the per-reason skip tallies, and the number of registrable
// scan targets — so an operator can audit a CZDS download before
// committing query budget to it.
//
// Usage:
//
//	zonestat [-workers N] [-origin tld.] [-strict] [-targets-out file] dump.zone[.gz]...
//
// One JSON object is printed per input file, one per line. Every field
// is a deterministic function of the input bytes and flags (timing goes
// to stderr), so the output is byte-stable and diffable in CI.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"dnssecboot/internal/ingest"
)

func main() {
	var (
		workers    = flag.Int("workers", 0, "parallel record parsers (0 = auto)")
		origin     = flag.String("origin", "", "apex of the dump (default: autodetect from $ORIGIN or the first SOA)")
		strict     = flag.Bool("strict", false, "abort on the first malformed record instead of counting and skipping it")
		targetsOut = flag.String("targets-out", "", "write the reduced target list (one registrable name per line) to this file")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: zonestat [flags] dump.zone[.gz]...")
		os.Exit(2)
	}

	var targetsFile *os.File
	if *targetsOut != "" {
		f, err := os.Create(*targetsOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zonestat: %v\n", err)
			os.Exit(1)
		}
		targetsFile = f
	}

	enc := json.NewEncoder(os.Stdout)
	for _, path := range flag.Args() {
		start := time.Now()
		res, err := ingest.File(context.Background(), path, ingest.Config{
			Origin:  *origin,
			Workers: *workers,
			Strict:  *strict,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "zonestat: %s: %v\n", path, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)

		if err := enc.Encode(struct {
			File string `json:"file"`
			ingest.Stats
		}{File: path, Stats: res.Stats}); err != nil {
			fmt.Fprintf(os.Stderr, "zonestat: %v\n", err)
			os.Exit(1)
		}
		rps := float64(res.Stats.Records) / elapsed.Seconds()
		fmt.Fprintf(os.Stderr, "%s: %d records -> %d targets in %v (%.0f records/s)\n",
			path, res.Stats.Records, res.Stats.Targets, elapsed.Round(time.Millisecond), rps)

		if targetsFile != nil {
			for _, t := range res.Targets {
				if _, err := fmt.Fprintln(targetsFile, t); err != nil {
					fmt.Fprintf(os.Stderr, "zonestat: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
	if targetsFile != nil {
		if err := targetsFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "zonestat: %v\n", err)
			os.Exit(1)
		}
	}
}
