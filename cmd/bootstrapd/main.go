// Command bootstrapd plays the registry side of RFC 9615: it generates
// the synthetic ecosystem, walks every delegation that shows
// Authenticated-Bootstrapping signals, runs the full acceptance
// algorithm, and installs DS records for the zones that qualify —
// exactly what .ch/.li/.swiss do in production. It then re-scans and
// reports how the DNSSEC population changed.
//
// Usage:
//
//	bootstrapd [-scale 20000] [-seed 1] [-dry-run]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"dnssecboot/internal/bootstrap"
	"dnssecboot/internal/classify"
	"dnssecboot/internal/core"
	"dnssecboot/internal/ecosystem"
	"dnssecboot/internal/report"
)

func main() {
	var (
		seed   = flag.Int64("seed", 1, "world seed")
		scale  = flag.Int("scale", 20000, "population scale divisor")
		dryRun = flag.Bool("dry-run", false, "evaluate without installing DS records")
	)
	flag.Parse()

	world, err := ecosystem.Generate(ecosystem.Config{Seed: *seed, ScaleDivisor: *scale})
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()

	// Pass 1: measure, using the registry short-circuit from Appendix D.
	before, err := core.Run(ctx, core.Options{
		Seed: *seed, World: world,
		Concurrency:          runtime.NumCPU(),
		SignalOnlyCandidates: true,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println("before bootstrapping:")
	fmt.Println(before.Report.Headline())

	// Pass 2: run the RFC 9615 registry over every signal-bearing
	// island.
	scanner := core.NewScanner(world, core.Options{Seed: *seed})
	installed, rejected := 0, 0
	reasons := map[string]int{}
	for _, r := range before.Results {
		if !r.Signal.Potential {
			continue
		}
		truth := world.Truth[r.Zone]
		reg := &bootstrap.Registry{
			Parent:  world.TLDZone(truth.TLD),
			Scanner: scanner,
			Now:     world.Now,
			DryRun:  *dryRun,
		}
		d, err := reg.Bootstrap(ctx, r.Zone)
		if err != nil {
			fatal(err)
		}
		if d.Eligible {
			installed++
		} else {
			rejected++
			for _, reason := range d.Reasons {
				reasons[trim(reason)]++
			}
		}
	}
	fmt.Printf("\nregistry processed %d candidate zones: %d bootstrapped, %d rejected\n",
		installed+rejected, installed, rejected)
	var keys []string
	for k := range reasons {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %4d × %s\n", reasons[k], k)
	}
	if *dryRun {
		return
	}

	// Pass 3: re-measure. The bootstrapped islands are now secured.
	scanner2 := core.NewScanner(world, core.Options{Seed: *seed})
	obs := scanner2.ScanAll(ctx, world.Targets)
	results := classify.New(world.Now).ClassifyAll(obs)
	after := report.Build(results)
	fmt.Println("\nafter bootstrapping:")
	fmt.Println(after.Headline())
	deltaSecured := after.ByStatus[classify.StatusSecured] - before.Report.ByStatus[classify.StatusSecured]
	fmt.Printf("secured zones grew by %d (islands completed via RFC 9615)\n", deltaSecured)
}

// trim normalises per-zone details out of a rejection reason so they
// aggregate.
func trim(reason string) string {
	for i, c := range reason {
		if c == ':' || c == '(' {
			return reason[:i]
		}
	}
	return reason
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bootstrapd:", err)
	os.Exit(1)
}
