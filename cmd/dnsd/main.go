// Command dnsd is the long-running authoritative DNS daemon: it serves
// loaded zones over real UDP and TCP with a bounded worker model, a
// TTL-honouring response cache for repeated query shapes, periodic
// metrics snapshots, and graceful drain on SIGTERM/SIGINT (stop
// accepting, answer everything in flight, flush metrics, exit 0).
//
// Usage:
//
//	dnsd -listen 127.0.0.1:5353 example.com.db
//	dnsd -listen 127.0.0.1:0 -addr-file /run/dnsd.addr -sign \
//	     -metrics-out metrics.json -metrics-every 10s zone1.db zone2.db
//
// Zone origins derive from filenames (<origin>.db / <origin>.zone);
// -sign generates keys and signs every loaded zone in memory so DO
// queries are answered with RRSIGs without a separate zonesign step.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"dnssecboot/internal/obs"
	"dnssecboot/internal/server"
	"dnssecboot/internal/transport"
	"dnssecboot/internal/zone"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("dnsd", flag.ExitOnError)
	var (
		listen       = fs.String("listen", "127.0.0.1:5353", "UDP/TCP listen address (port 0 picks a free port)")
		addrFile     = fs.String("addr-file", "", "write the bound address to this file once listening")
		workers      = fs.Int("workers", 0, "UDP worker goroutines (0 = 4×GOMAXPROCS)")
		backlog      = fs.Int("udp-backlog", 0, "UDP packet queue depth (0 = 1024)")
		idleTimeout  = fs.Duration("idle-timeout", 2*time.Minute, "TCP idle read deadline")
		cacheEntries = fs.Int("cache-entries", 4096, "response cache capacity (0 disables the cache)")
		sign         = fs.Bool("sign", false, "generate keys and DNSSEC-sign loaded zones in memory")
		metricsOut   = fs.String("metrics-out", "", "write periodic JSON metrics snapshots to this file")
		metricsEvery = fs.Duration("metrics-every", 10*time.Second, "metrics snapshot interval")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "graceful drain budget on shutdown")
		seed         = fs.Int64("seed", 1, "behaviour randomness seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "dnsd: at least one zone file required")
		return 2
	}

	srv := server.New(*seed)
	for _, path := range fs.Args() {
		z, err := loadZone(path, *sign)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dnsd:", err)
			return 1
		}
		srv.AddZone(z)
		fmt.Fprintf(os.Stderr, "dnsd: loaded %s (%d records, signed=%v)\n", z.Origin, z.Size(), z.IsSigned())
	}

	reg := obs.NewRegistry()
	var handler transport.Handler = srv
	if *cacheEntries > 0 {
		handler = &server.CachedHandler{Inner: srv, Cache: server.NewCache(*cacheEntries, reg)}
	}
	l, err := server.ListenConfig(*listen, handler, server.Config{
		UDPWorkers:  *workers,
		UDPBacklog:  *backlog,
		IdleTimeout: *idleTimeout,
		Metrics:     reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnsd:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "dnsd: listening on %s (udp+tcp)\n", l.Addr())
	if *addrFile != "" {
		if err := writeFileAtomic(*addrFile, []byte(l.Addr().String())); err != nil {
			fmt.Fprintln(os.Stderr, "dnsd:", err)
			_ = l.Close()
			return 1
		}
	}

	start := time.Now()
	stopSnapshots := make(chan struct{})
	snapshotsDone := make(chan struct{})
	go func() {
		defer close(snapshotsDone)
		if *metricsOut == "" {
			return
		}
		ticker := time.NewTicker(*metricsEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				writeSnapshot(*metricsOut, reg, start)
			case <-stopSnapshots:
				return
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Fprintf(os.Stderr, "dnsd: %s, draining (budget %s)\n", got, *drainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := l.Shutdown(ctx)
	close(stopSnapshots)
	<-snapshotsDone
	if *metricsOut != "" {
		writeSnapshot(*metricsOut, reg, start) // final snapshot after drain
	}
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "dnsd: drain incomplete: %v\n", drainErr)
		return 1
	}
	fmt.Fprintln(os.Stderr, "dnsd: drained cleanly")
	return 0
}

func loadZone(path string, sign bool) (*zone.Zone, error) {
	origin, err := zone.OriginFromFilename(path)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	z, err := zone.Parse(f, origin)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if sign && !z.IsSigned() {
		cfg := zone.SignConfig{}
		if err := z.GenerateKeys(cfg, nil); err != nil {
			return nil, fmt.Errorf("%s: generate keys: %w", path, err)
		}
		if err := z.Sign(cfg); err != nil {
			return nil, fmt.Errorf("%s: sign: %w", path, err)
		}
	}
	return z, nil
}

// writeSnapshot writes the registry plus an uptime gauge atomically
// (temp file + rename), so a reader never observes a torn snapshot.
func writeSnapshot(path string, reg *obs.Registry, start time.Time) {
	reg.Gauge("dnsd.uptime_seconds").Set(int64(time.Since(start) / time.Second))
	tmp, err := os.CreateTemp(filepath.Dir(path), "dnsd-metrics-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnsd: metrics snapshot:", err)
		return
	}
	werr := reg.WriteJSON(tmp)
	cerr := tmp.Close()
	if werr == nil && cerr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		fmt.Fprintln(os.Stderr, "dnsd: metrics snapshot:", werr, cerr)
	}
}

func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
