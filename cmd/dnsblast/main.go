// Command dnsblast replays a zipfian query mix against a DNS server
// over real UDP and TCP sockets and reports qps, p50/p99 latency and
// error rate. It is the load half of the serving-path bench: names are
// drawn from a zone file with zipf-distributed popularity (the shape of
// a million-user resolver population hitting an authoritative server),
// query types follow a realistic weighted mix, and a configurable
// fraction of queries runs over persistent TCP connections and with the
// EDNS DO bit set.
//
// Usage:
//
//	dnsblast -server 127.0.0.1:5353 -zone example.com.db -duration 3s
//	dnsblast -server $ADDR -zone z.db -concurrency 16 -tcp-frac 0.1 \
//	         -min-qps 500 -max-error-rate 0 -json result.json
//	dnsblast -verify-metrics metrics.json   # assert a dnsd snapshot is well-formed
//
// With -min-qps / -max-error-rate the exit status becomes an
// assertion, which is how `make serve-smoke` gates CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/obs"
	"dnssecboot/internal/transport"
	"dnssecboot/internal/zone"
)

// typeMix is the weighted query-type distribution: mostly A, the rest
// spread over the types a busy authoritative actually sees.
var typeMix = []struct {
	typ    dnswire.Type
	weight int
}{
	{dnswire.TypeA, 60},
	{dnswire.TypeAAAA, 12},
	{dnswire.TypeMX, 8},
	{dnswire.TypeTXT, 8},
	{dnswire.TypeNS, 6},
	{dnswire.TypeSOA, 6},
}

type result struct {
	ok        bool
	latency   time.Duration
	tcp       bool
	errorKind string // "", "timeout", "protocol", "io"
}

type report struct {
	Queries   int     `json:"queries"`
	UDP       int     `json:"udp"`
	TCP       int     `json:"tcp"`
	Errors    int     `json:"errors"`
	Timeouts  int     `json:"timeouts"`
	Protocol  int     `json:"protocol_errors"`
	IO        int     `json:"io_errors"`
	Seconds   float64 `json:"seconds"`
	QPS       float64 `json:"qps"`
	P50ms     float64 `json:"p50_ms"`
	P99ms     float64 `json:"p99_ms"`
	ErrorRate float64 `json:"error_rate"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("dnsblast", flag.ExitOnError)
	var (
		server       = fs.String("server", "", "server address (host:port)")
		zoneFile     = fs.String("zone", "", "zone file supplying query names")
		duration     = fs.Duration("duration", 3*time.Second, "how long to blast")
		concurrency  = fs.Int("concurrency", 8, "closed-loop worker count")
		zipfS        = fs.Float64("zipf-s", 1.3, "zipf skew (>1; larger = hotter hot set)")
		tcpFrac      = fs.Float64("tcp-frac", 0.1, "fraction of queries over persistent TCP")
		doFrac       = fs.Float64("do-frac", 0.2, "fraction of queries with the EDNS DO bit")
		nxFrac       = fs.Float64("nx-frac", 0.05, "fraction of queries for nonexistent names")
		timeout      = fs.Duration("timeout", 2*time.Second, "per-query timeout")
		seed         = fs.Int64("seed", 1, "workload randomness seed")
		jsonOut      = fs.String("json", "", "write the report as JSON to this file")
		minQPS       = fs.Float64("min-qps", 0, "fail unless achieved qps is at least this")
		maxErrorRate = fs.Float64("max-error-rate", -1, "fail if error rate exceeds this (-1 disables)")
		verifyPath   = fs.String("verify-metrics", "", "verify a dnsd metrics snapshot and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *verifyPath != "" {
		if err := verifyMetrics(*verifyPath); err != nil {
			fmt.Fprintln(os.Stderr, "dnsblast:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "dnsblast: metrics snapshot %s is well-formed\n", *verifyPath)
		return 0
	}
	if *server == "" || *zoneFile == "" {
		fmt.Fprintln(os.Stderr, "dnsblast: -server and -zone are required")
		return 2
	}
	if *zipfS <= 1 {
		fmt.Fprintln(os.Stderr, "dnsblast: -zipf-s must be > 1")
		return 2
	}
	names, origin, err := namesFromZone(*zoneFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnsblast:", err)
		return 1
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "dnsblast: zone has no queryable names")
		return 1
	}

	deadline := time.Now().Add(*duration)
	results := make([][]result, *concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = blast(blastConfig{
				server:   *server,
				names:    names,
				origin:   origin,
				deadline: deadline,
				zipfS:    *zipfS,
				tcpFrac:  *tcpFrac,
				doFrac:   *doFrac,
				nxFrac:   *nxFrac,
				timeout:  *timeout,
				rng:      rand.New(rand.NewSource(*seed + int64(w)*7919)),
			})
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := summarize(results, elapsed)
	fmt.Printf("dnsblast: %d queries in %.2fs  qps=%.0f  p50=%.2fms p99=%.2fms  udp=%d tcp=%d  errors=%d (%.2f%%: %d timeout, %d protocol, %d io)\n",
		rep.Queries, rep.Seconds, rep.QPS, rep.P50ms, rep.P99ms,
		rep.UDP, rep.TCP, rep.Errors, 100*rep.ErrorRate, rep.Timeouts, rep.Protocol, rep.IO)
	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "dnsblast:", err)
			return 1
		}
	}
	if *minQPS > 0 && rep.QPS < *minQPS {
		fmt.Fprintf(os.Stderr, "dnsblast: FAIL qps %.0f < min %.0f\n", rep.QPS, *minQPS)
		return 1
	}
	if *maxErrorRate >= 0 && rep.ErrorRate > *maxErrorRate {
		fmt.Fprintf(os.Stderr, "dnsblast: FAIL error rate %.4f > max %.4f\n", rep.ErrorRate, *maxErrorRate)
		return 1
	}
	return 0
}

// namesFromZone collects the owner names worth querying (those carrying
// at least one non-DNSSEC record), sorted for deterministic zipf rank.
func namesFromZone(path string) ([]string, string, error) {
	origin, err := zone.OriginFromFilename(path)
	if err != nil {
		return nil, "", err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	z, err := zone.Parse(f, origin)
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	var names []string
	for _, name := range z.Names() {
		for _, typ := range z.TypesAt(name) {
			switch typ {
			case dnswire.TypeRRSIG, dnswire.TypeNSEC, dnswire.TypeNSEC3, dnswire.TypeDNSKEY, dnswire.TypeCDS, dnswire.TypeCDNSKEY:
				continue
			}
			names = append(names, name)
			break
		}
	}
	sort.Strings(names)
	return names, z.Origin, nil
}

type blastConfig struct {
	server   string
	names    []string
	origin   string
	deadline time.Time
	zipfS    float64
	tcpFrac  float64
	doFrac   float64
	nxFrac   float64
	timeout  time.Duration
	rng      *rand.Rand
}

// blast is one closed-loop worker: it keeps one persistent UDP socket
// and one persistent TCP connection, fires queries until the deadline,
// and records one result per query.
func blast(cfg blastConfig) []result {
	zipf := rand.NewZipf(cfg.rng, cfg.zipfS, 1, uint64(len(cfg.names)-1))
	udp, err := net.Dial("udp", cfg.server)
	if err != nil {
		return []result{{errorKind: "io"}}
	}
	defer udp.Close()
	var tcp net.Conn
	defer func() {
		if tcp != nil {
			tcp.Close()
		}
	}()

	var out []result
	buf := make([]byte, 65535)
	for time.Now().Before(cfg.deadline) {
		name := cfg.names[zipf.Uint64()]
		wantRcode := dnswire.RcodeNoError
		if cfg.rng.Float64() < cfg.nxFrac {
			name = fmt.Sprintf("nx%d.%s", cfg.rng.Intn(1<<20), cfg.origin)
			wantRcode = dnswire.RcodeNXDomain
		}
		typ := pickType(cfg.rng)
		q := dnswire.NewQuery(uint16(cfg.rng.Intn(0xFFFF)+1), name, typ)
		if cfg.rng.Float64() < cfg.doFrac {
			q.SetEDNS(dnswire.EDNS{UDPSize: dnswire.MaxUDPPayload, DO: true})
		}
		useTCP := cfg.rng.Float64() < cfg.tcpFrac

		var r result
		if useTCP {
			if tcp == nil {
				tcp, err = net.Dial("tcp", cfg.server)
				if err != nil {
					out = append(out, result{tcp: true, errorKind: "io"})
					tcp = nil
					continue
				}
			}
			r = exchangeTCP(tcp, q, cfg.timeout, buf, wantRcode)
			if r.errorKind != "" {
				tcp.Close()
				tcp = nil
			}
		} else {
			r = exchangeUDP(udp, q, cfg.timeout, buf, wantRcode)
		}
		out = append(out, r)
	}
	return out
}

func pickType(rng *rand.Rand) dnswire.Type {
	total := 0
	for _, tm := range typeMix {
		total += tm.weight
	}
	n := rng.Intn(total)
	for _, tm := range typeMix {
		if n < tm.weight {
			return tm.typ
		}
		n -= tm.weight
	}
	return dnswire.TypeA
}

func exchangeUDP(conn net.Conn, q *dnswire.Message, timeout time.Duration, buf []byte, wantRcode dnswire.Rcode) result {
	wire, err := q.Pack()
	if err != nil {
		return result{errorKind: "io"}
	}
	start := time.Now()
	_ = conn.SetDeadline(start.Add(timeout))
	if _, err := conn.Write(wire); err != nil {
		return result{errorKind: "io"}
	}
	for {
		n, err := conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return result{errorKind: "timeout"}
			}
			return result{errorKind: "io"}
		}
		resp, err := dnswire.Unpack(buf[:n])
		if err != nil || resp.ID != q.ID {
			continue // garbage or stray datagram; keep reading until deadline
		}
		return check(resp, q, time.Since(start), false, wantRcode)
	}
}

func exchangeTCP(conn net.Conn, q *dnswire.Message, timeout time.Duration, buf []byte, wantRcode dnswire.Rcode) result {
	wire, err := q.Pack()
	if err != nil {
		return result{tcp: true, errorKind: "io"}
	}
	start := time.Now()
	_ = conn.SetDeadline(start.Add(timeout))
	if err := transport.WriteTCPMessage(conn, wire); err != nil {
		return result{tcp: true, errorKind: "io"}
	}
	respWire, err := transport.ReadTCPMessageInto(conn, buf)
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return result{tcp: true, errorKind: "timeout"}
		}
		return result{tcp: true, errorKind: "io"}
	}
	resp, err := dnswire.Unpack(respWire)
	if err != nil {
		return result{tcp: true, errorKind: "protocol"}
	}
	return check(resp, q, time.Since(start), true, wantRcode)
}

// check classifies a response: anything other than a well-formed answer
// to our question with the expected rcode is a protocol error.
func check(resp, q *dnswire.Message, latency time.Duration, tcp bool, wantRcode dnswire.Rcode) result {
	r := result{latency: latency, tcp: tcp}
	switch {
	case resp.ID != q.ID:
		r.errorKind = "protocol"
	case !resp.Response:
		r.errorKind = "protocol"
	case resp.Rcode != wantRcode:
		r.errorKind = "protocol"
	case resp.Truncated && tcp:
		r.errorKind = "protocol" // TCP responses must never truncate here
	default:
		r.ok = true
	}
	return r
}

func summarize(perWorker [][]result, elapsed time.Duration) report {
	rep := report{Seconds: elapsed.Seconds()}
	var lat []float64
	for _, rs := range perWorker {
		for _, r := range rs {
			rep.Queries++
			if r.tcp {
				rep.TCP++
			} else {
				rep.UDP++
			}
			switch r.errorKind {
			case "":
				lat = append(lat, r.latency.Seconds())
			case "timeout":
				rep.Errors++
				rep.Timeouts++
			case "protocol":
				rep.Errors++
				rep.Protocol++
			default:
				rep.Errors++
				rep.IO++
			}
		}
	}
	if rep.Seconds > 0 {
		rep.QPS = float64(rep.Queries) / rep.Seconds
	}
	if rep.Queries > 0 {
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Queries)
	}
	sort.Float64s(lat)
	rep.P50ms = 1000 * percentile(lat, 0.50)
	rep.P99ms = 1000 * percentile(lat, 0.99)
	return rep
}

// percentile returns the exact q-quantile of sorted samples
// (nearest-rank), 0 with no samples.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// verifyMetrics asserts a dnsd -metrics-out snapshot is well-formed:
// valid JSON in the obs.Snapshot shape, with nonzero served-query
// counters and a populated handle-latency histogram. It is the load
// generator's cross-check that the server actually saw its traffic.
func verifyMetrics(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("%s: not a valid metrics snapshot: %w", path, err)
	}
	served := snap.Counters["server.udp.queries"] + snap.Counters["server.tcp.queries"]
	if served == 0 {
		return fmt.Errorf("%s: snapshot records zero served queries", path)
	}
	h, ok := snap.Histograms["server.handle.seconds"]
	if !ok || h.Count == 0 {
		return fmt.Errorf("%s: snapshot lacks a populated server.handle.seconds histogram", path)
	}
	if len(h.Buckets) == 0 {
		return fmt.Errorf("%s: server.handle.seconds has no buckets", path)
	}
	return nil
}
