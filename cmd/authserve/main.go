// Command authserve serves one or more zone files authoritatively over
// real UDP and TCP (with AXFR). Behaviour flags reproduce the server
// quirks the paper observed in the wild.
//
// Usage:
//
//	authserve -listen 127.0.0.1:5353 zone1.db zone2.db
//	authserve -listen 127.0.0.1:5353 -legacy zone1.db   # FORMERR on CDS
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"dnssecboot/internal/server"
	"dnssecboot/internal/zone"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:5353", "UDP/TCP listen address")
		legacy    = flag.Bool("legacy", false, "error on post-2003 query types (pre-RFC 3597 behaviour)")
		refuseANY = flag.Bool("refuse-any", false, "answer ANY with RFC 8482 HINFO")
		servfail  = flag.Float64("servfail-rate", 0, "probability of transient SERVFAIL")
		drop      = flag.Float64("drop-rate", 0, "probability of silently dropping a query")
		seed      = flag.Int64("seed", 1, "behaviour randomness seed")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "authserve: at least one zone file required")
		os.Exit(2)
	}

	srv := server.New(*seed)
	srv.Behavior = server.Behavior{
		LegacyUnknownTypes: *legacy,
		RefuseANY:          *refuseANY,
		ServfailRate:       *servfail,
		DropRate:           *drop,
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		origin := originFromFilename(path)
		z, err := zone.Parse(f, origin)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		srv.AddZone(z)
		fmt.Fprintf(os.Stderr, "authserve: loaded %s (%d records)\n", z.Origin, z.Size())
	}

	l, err := server.Listen(*listen, srv)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "authserve: listening on %s (udp+tcp)\n", l.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	_ = l.Close()
}

// originFromFilename derives "example.com." from "example.com.db" or
// "example.com.zone"; files may also set $ORIGIN themselves.
func originFromFilename(path string) string {
	base := filepath.Base(path)
	for _, suffix := range []string{".db", ".zone"} {
		if strings.HasSuffix(base, suffix) {
			return strings.TrimSuffix(base, suffix) + "."
		}
	}
	return ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "authserve:", err)
	os.Exit(1)
}
