// Command authserve serves one or more zone files authoritatively over
// real UDP and TCP (with AXFR). Behaviour flags reproduce the server
// quirks the paper observed in the wild. For a production-shaped
// daemon (response cache, metrics snapshots, tuned worker pool) see
// cmd/dnsd; authserve stays the minimal quirk-modelling server.
//
// Usage:
//
//	authserve -listen 127.0.0.1:5353 zone1.db zone2.db
//	authserve -listen 127.0.0.1:5353 -legacy zone1.db   # FORMERR on CDS
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dnssecboot/internal/server"
	"dnssecboot/internal/zone"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:5353", "UDP/TCP listen address")
		legacy    = flag.Bool("legacy", false, "error on post-2003 query types (pre-RFC 3597 behaviour)")
		refuseANY = flag.Bool("refuse-any", false, "answer ANY with RFC 8482 HINFO")
		servfail  = flag.Float64("servfail-rate", 0, "probability of transient SERVFAIL")
		drop      = flag.Float64("drop-rate", 0, "probability of silently dropping a query")
		seed      = flag.Int64("seed", 1, "behaviour randomness seed")
		drain     = flag.Duration("drain-timeout", 10*time.Second, "graceful drain budget on shutdown")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "authserve: at least one zone file required")
		os.Exit(2)
	}

	srv := server.New(*seed)
	srv.Behavior = server.Behavior{
		LegacyUnknownTypes: *legacy,
		RefuseANY:          *refuseANY,
		ServfailRate:       *servfail,
		DropRate:           *drop,
	}
	for _, path := range flag.Args() {
		origin, err := zone.OriginFromFilename(path)
		if err != nil {
			fatal(err)
		}
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		z, err := zone.Parse(f, origin)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		srv.AddZone(z)
		fmt.Fprintf(os.Stderr, "authserve: loaded %s (%d records)\n", z.Origin, z.Size())
	}

	l, err := server.Listen(*listen, srv)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "authserve: listening on %s (udp+tcp)\n", l.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// Share the daemon's graceful-drain path: stop intake, answer
	// everything in flight, then release the sockets.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := l.Shutdown(ctx); err != nil {
		fatal(fmt.Errorf("drain incomplete: %w", err))
	}
	fmt.Fprintln(os.Stderr, "authserve: drained cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "authserve:", err)
	os.Exit(1)
}
