// Command digg is a minimal dig-style query client built on the
// library's wire codec and UDP/TCP transport. It prints the full
// response in master-file presentation form.
//
// Usage:
//
//	digg @127.0.0.1:5353 example.com CDS
//	digg -axfr @127.0.0.1:5353 example.com
package main

import (
	"context"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"strings"
	"time"

	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/server"
	"dnssecboot/internal/transport"
)

func main() {
	var (
		timeout = flag.Duration("timeout", 3*time.Second, "query timeout")
		noDO    = flag.Bool("no-do", false, "clear the DNSSEC-OK bit")
		axfr    = flag.Bool("axfr", false, "perform a zone transfer")
	)
	flag.Parse()
	args := flag.Args()

	var serverAddr netip.AddrPort
	var rest []string
	for _, a := range args {
		if strings.HasPrefix(a, "@") {
			ap, err := netip.ParseAddrPort(strings.TrimPrefix(a, "@"))
			if err != nil {
				// Allow a bare address, defaulting to port 53.
				ip, err2 := netip.ParseAddr(strings.TrimPrefix(a, "@"))
				if err2 != nil {
					fatal(err)
				}
				ap = netip.AddrPortFrom(ip, 53)
			}
			serverAddr = ap
			continue
		}
		rest = append(rest, a)
	}
	if !serverAddr.IsValid() || len(rest) < 1 {
		fmt.Fprintln(os.Stderr, "usage: digg @server:port name [type]")
		os.Exit(2)
	}
	name := rest[0]
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *axfr {
		z, err := server.AXFR(ctx, serverAddr, name)
		if err != nil {
			fatal(err)
		}
		if _, err := z.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	qtype := dnswire.TypeA
	if len(rest) > 1 {
		t, err := dnswire.TypeFromString(strings.ToUpper(rest[1]))
		if err != nil {
			fatal(err)
		}
		qtype = t
	}
	q := dnswire.NewQuery(0, name, qtype)
	q.SetEDNS(dnswire.EDNS{UDPSize: dnswire.MaxUDPPayload, DO: !*noDO})
	c := &transport.Client{Timeout: *timeout, Retries: 1}
	resp, err := c.Exchange(ctx, serverAddr, q)
	if err != nil {
		fatal(err)
	}
	printResponse(resp)
}

func printResponse(m *dnswire.Message) {
	flags := []string{"qr"}
	if m.Authoritative {
		flags = append(flags, "aa")
	}
	if m.Truncated {
		flags = append(flags, "tc")
	}
	if m.RecursionAvailable {
		flags = append(flags, "ra")
	}
	if m.AuthenticData {
		flags = append(flags, "ad")
	}
	fmt.Printf(";; status: %s, id: %d, flags: %s\n", m.Rcode, m.ID, strings.Join(flags, " "))
	fmt.Printf(";; QUESTION\n")
	for _, q := range m.Question {
		fmt.Printf(";%s\n", q)
	}
	sections := []struct {
		name string
		rrs  []dnswire.RR
	}{
		{"ANSWER", m.Answer}, {"AUTHORITY", m.Authority}, {"ADDITIONAL", m.Additional},
	}
	for _, s := range sections {
		if len(s.rrs) == 0 {
			continue
		}
		fmt.Printf(";; %s\n", s.name)
		for _, rr := range s.rrs {
			if rr.Type() == dnswire.TypeOPT {
				continue
			}
			fmt.Println(rr.String())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "digg:", err)
	os.Exit(1)
}
