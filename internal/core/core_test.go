package core

import (
	"context"
	"testing"

	"dnssecboot/internal/classify"
	"dnssecboot/internal/ecosystem"
	"dnssecboot/internal/report"
)

// runSmall executes the pipeline at a tiny scale shared by the tests.
func runSmall(t *testing.T) *Study {
	t.Helper()
	study, err := Run(context.Background(), Options{Seed: 3, ScaleDivisor: 300_000, Concurrency: 8})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return study
}

func TestPipelineRecoversGroundTruth(t *testing.T) {
	study := runSmall(t)
	if len(study.Results) == 0 {
		t.Fatal("no results")
	}
	statusFor := map[ecosystem.State]classify.Status{
		ecosystem.StateUnsigned: classify.StatusUnsigned,
		ecosystem.StateSecured:  classify.StatusSecured,
		ecosystem.StateInvalid:  classify.StatusInvalid,
		ecosystem.StateIsland:   classify.StatusIsland,
	}
	mismatches := 0
	for _, r := range study.Results {
		truth := study.World.Truth[r.Zone]
		if truth == nil {
			t.Fatalf("no ground truth for %s", r.Zone)
		}
		if r.Status == classify.StatusUnresolved {
			t.Errorf("%s failed to resolve: operator %s", r.Zone, truth.Operator)
			continue
		}
		if want := statusFor[truth.Spec.State]; r.Status != want {
			mismatches++
			if mismatches <= 5 {
				t.Errorf("%s (op %s, spec %+v): status %s, want %s",
					r.Zone, truth.Operator, truth.Spec, r.Status, want)
			}
		}
	}
	if mismatches > 0 {
		t.Errorf("%d/%d status mismatches", mismatches, len(study.Results))
	}
}

func TestPipelineCDSClassification(t *testing.T) {
	study := runSmall(t)
	for _, r := range study.Results {
		truth := study.World.Truth[r.Zone]
		spec := truth.Spec
		switch spec.CDS {
		case ecosystem.CDSNone:
			// Legacy operators fail the query; everyone else should see
			// a clean absence.
			if r.CDS.Present && !spec.Signal {
				t.Errorf("%s: CDS present but none planted", r.Zone)
			}
		case ecosystem.CDSMatch:
			if !r.CDS.Present {
				t.Errorf("%s: planted CDS not observed", r.Zone)
				continue
			}
			if spec.CDSInconsistent {
				if r.CDS.Consistent {
					t.Errorf("%s: inconsistency not detected", r.Zone)
				}
			} else if !r.CDS.Consistent {
				t.Errorf("%s: false inconsistency", r.Zone)
			}
			if spec.State != ecosystem.StateUnsigned && !spec.CDSInconsistent && !r.CDS.MatchesDNSKEY {
				t.Errorf("%s: matching CDS reported as orphan", r.Zone)
			}
		case ecosystem.CDSDelete:
			if !r.CDS.Present || !r.CDS.Delete {
				t.Errorf("%s: delete request not recognised (present=%v delete=%v)",
					r.Zone, r.CDS.Present, r.CDS.Delete)
			}
		case ecosystem.CDSOrphan:
			if !r.CDS.Present {
				t.Errorf("%s: orphan CDS not observed", r.Zone)
				continue
			}
			if spec.State != ecosystem.StateUnsigned && r.CDS.MatchesDNSKEY {
				t.Errorf("%s: orphan CDS reported as matching", r.Zone)
			}
			if spec.State == ecosystem.StateUnsigned && !r.CDS.InUnsignedZone {
				t.Errorf("%s: CDS-in-unsigned not flagged", r.Zone)
			}
		case ecosystem.CDSBadSig:
			if !r.CDS.Present || r.CDS.SigValid {
				t.Errorf("%s: corrupted CDS signature not detected", r.Zone)
			}
		}
	}
}

func TestPipelineBuckets(t *testing.T) {
	study := runSmall(t)
	for _, r := range study.Results {
		spec := study.World.Truth[r.Zone].Spec
		var want classify.Potential
		switch {
		case spec.State == ecosystem.StateUnsigned:
			want = classify.PotentialNone
		case spec.State == ecosystem.StateSecured:
			want = classify.PotentialAlreadySecured
		case spec.State == ecosystem.StateInvalid:
			want = classify.PotentialInvalidDNSSEC
		case spec.CDS == ecosystem.CDSNone:
			want = classify.PotentialIslandNoCDS
		case spec.CDS == ecosystem.CDSDelete:
			want = classify.PotentialIslandDelete
		case spec.CDS == ecosystem.CDSOrphan, spec.CDS == ecosystem.CDSBadSig, spec.CDSInconsistent:
			want = classify.PotentialIslandInvalidCDS
		default:
			want = classify.PotentialBootstrap
		}
		if r.Bucket != want {
			t.Errorf("%s (spec %+v): bucket %s, want %s", r.Zone, spec, r.Bucket, want)
		}
	}
}

func TestPipelineSignalLadder(t *testing.T) {
	study := runSmall(t)
	for _, r := range study.Results {
		truth := study.World.Truth[r.Zone]
		spec := truth.Spec
		isAB := truth.Operator == "Cloudflare" || truth.Operator == "deSEC" ||
			truth.Operator == "Glauca Digital" || truth.Operator == "SignalMisc"
		wantSignal := spec.Signal && isAB
		if wantSignal != r.Signal.HasSignal {
			t.Errorf("%s (op %s, spec %+v): HasSignal=%v, want %v",
				r.Zone, truth.Operator, spec, r.Signal.HasSignal, wantSignal)
			continue
		}
		if !r.Signal.HasSignal {
			continue
		}
		switch {
		case spec.State == ecosystem.StateSecured:
			if !r.Signal.AlreadySecured {
				t.Errorf("%s: secured-with-signal not in already-secured", r.Zone)
			}
		case spec.CDS == ecosystem.CDSDelete:
			if !r.Signal.DeletionRequest {
				t.Errorf("%s: delete signal not in deletion-request", r.Zone)
			}
		case spec.State == ecosystem.StateUnsigned || spec.State == ecosystem.StateInvalid ||
			spec.CDSInconsistent || spec.CDS == ecosystem.CDSBadSig:
			if !r.Signal.InvalidDNSSEC {
				t.Errorf("%s (spec %+v): expected invalid-DNSSEC ladder slot, got %+v", r.Zone, spec, r.Signal)
			}
		default:
			if !r.Signal.Potential {
				t.Errorf("%s: expected potential, got %+v", r.Zone, r.Signal)
				continue
			}
			wantCorrect := spec.SignalAnomaly == ecosystem.SigOK
			if r.Signal.Correct != wantCorrect {
				t.Errorf("%s (anomaly %s): correct=%v violations=%v",
					r.Zone, spec.SignalAnomaly, r.Signal.Correct, r.Signal.Violations)
			}
		}
	}
}

func TestReportRendering(t *testing.T) {
	study := runSmall(t)
	for name, text := range map[string]string{
		"headline": study.Report.Headline(),
		"table1":   study.Report.Table1(20),
		"table2":   study.Report.Table2(20),
		"table3":   study.Report.Table3(),
		"figure1":  study.Report.Figure1(),
		"cds":      study.Report.CDSFindings(),
		"queries":  study.Report.QueryStats(),
	} {
		if len(text) == 0 {
			t.Errorf("%s rendered empty", name)
		}
	}
	if study.Report.Resolved() == 0 {
		t.Error("nothing resolved")
	}
	if study.Report.Queries == 0 {
		t.Error("no queries accounted")
	}
}

func TestShortCircuitReducesQueries(t *testing.T) {
	world, err := ecosystem.Generate(ecosystem.Config{Seed: 5, ScaleDivisor: 400_000})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(context.Background(), Options{Seed: 5, World: world})
	if err != nil {
		t.Fatal(err)
	}
	world2, err := ecosystem.Generate(ecosystem.Config{Seed: 5, ScaleDivisor: 400_000})
	if err != nil {
		t.Fatal(err)
	}
	short, err := Run(context.Background(), Options{Seed: 5, World: world2, SignalOnlyCandidates: true})
	if err != nil {
		t.Fatal(err)
	}
	if short.Report.Queries >= full.Report.Queries {
		t.Errorf("short-circuit used %d queries, full scan %d", short.Report.Queries, full.Report.Queries)
	}
	// The bootstrap-relevant ladder rows must be unaffected: the
	// short-circuit only skips zones that could never bootstrap
	// (unsigned without CDS).
	for name, fs := range full.Report.Operators {
		ss := short.Report.Operators[name]
		if ss == nil {
			ss = &report.OperatorStats{}
		}
		if fs.Potential != ss.Potential || fs.Correct != ss.Correct || fs.Incorrect != ss.Incorrect {
			t.Errorf("%s ladder changed: full %d/%d/%d short %d/%d/%d",
				name, fs.Potential, fs.Correct, fs.Incorrect, ss.Potential, ss.Correct, ss.Incorrect)
		}
	}
}
