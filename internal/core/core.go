// Package core ties the reproduction together: it generates (or
// accepts) a synthetic DNS ecosystem, runs the YoDNS-style measurement
// scan over it, classifies every zone the way the paper's §4 does, and
// aggregates the results into the paper's tables and figures. It is
// the library's primary entry point:
//
//	study, err := core.Run(ctx, core.Options{ScaleDivisor: 2000})
//	fmt.Println(study.Report.Headline())
//	fmt.Println(study.Report.Table3())
package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"dnssecboot/internal/classify"
	"dnssecboot/internal/ecosystem"
	"dnssecboot/internal/obs"
	"dnssecboot/internal/rate"
	"dnssecboot/internal/report"
	"dnssecboot/internal/resolver"
	"dnssecboot/internal/scan"
	"dnssecboot/internal/transport"
)

// Options configure a full study run.
type Options struct {
	// Seed makes the world and the scan deterministic.
	Seed int64
	// ScaleDivisor divides the paper's population counts (see
	// ecosystem.Config). Zero means 2000.
	ScaleDivisor int
	// Concurrency is the number of parallel zone scans (default 8).
	Concurrency int
	// ProbeSignals enables the RFC 9615 signal-zone measurements
	// (§4.3/§4.4). On by default in Run.
	DisableSignalProbes bool
	// SignalOnlyCandidates applies the registry short-circuit of
	// Appendix D: probe signals only for signed or CDS-bearing zones.
	SignalOnlyCandidates bool
	// QueriesPerSecondPerNS applies the paper's per-NS rate limit
	// (50 q/s in §3). Zero disables limiting (simulation default:
	// the in-memory network has no load to protect).
	QueriesPerSecondPerNS float64
	// MaxZones truncates the scan list; zero scans everything.
	MaxZones int
	// World reuses an existing ecosystem instead of generating one.
	World *ecosystem.Ecosystem
	// Targets overrides the scan list (default: World.Targets). This is
	// the real-zone ingestion path: names reduced from a TLD dump by
	// internal/ingest are scanned against the configured network.
	Targets []string

	// LossRate injects uniform packet loss into the simulated network
	// (every address without a more specific fault profile), driven
	// deterministically by ChaosSeed.
	LossRate float64
	// ChaosSeed seeds the fault-injection decisions; zero falls back to
	// Seed so a study stays fully determined by its options.
	ChaosSeed int64
	// RetryAttempts is the total number of tries per server for
	// transient failures (timeouts, SERVFAIL); values < 2 disable
	// retries (the seed pipeline's single-shot behaviour).
	RetryAttempts int
	// RetryBackoff is the base pause before the first retry, doubling
	// per attempt. Zero retries immediately — the right choice against
	// the zero-latency in-memory network.
	RetryBackoff time.Duration

	// DisableCache turns off the resolver's shared delegation cache and
	// singleflight deduplication, restoring the seed pipeline's
	// re-walk-the-root-per-zone behaviour. The cache is on by default.
	DisableCache bool
	// Stateless makes every zone's scan a pure function of (zone,
	// world): it implies DisableCache and additionally disables the
	// resolver's legacy memo maps, so per-zone query counts no longer
	// depend on scan history or concurrency. This is the mode that
	// makes a streamed JSONL export byte-identical across runs and
	// across checkpoint resumes.
	Stateless bool
	// CacheNegTTL bounds how long negative (NXDOMAIN / lame) results
	// are served from the cache. Zero uses the resolver default (60 s).
	CacheNegTTL time.Duration

	// Registry collects the run's metrics (query counts, latency and
	// rate-wait histograms, cache accounting). Nil means the resolver
	// keeps a private registry and nothing is exported.
	Registry *obs.Registry
	// Tracer receives per-zone trace events from the scan and the
	// classification (-trace-out / -trace-zone). Nil disables tracing.
	Tracer *obs.Tracer
	// ProgressWriter receives live progress lines (zones/s, ETA, error
	// rate) during the scan; nil disables progress reporting.
	ProgressWriter io.Writer
	// ProgressInterval is the pause between progress lines (default 2s).
	ProgressInterval time.Duration
}

// Study is the outcome of a run.
type Study struct {
	// World is the scanned ecosystem.
	World *ecosystem.Ecosystem
	// Observations holds the raw scanner output, index-aligned with
	// World.Targets (or its truncation).
	Observations []*scan.ZoneObservation
	// Results holds the per-zone classifications.
	Results []*classify.Result
	// Report aggregates the results into the paper's tables.
	Report *report.Aggregate
	// Elapsed is the wall-clock scan duration.
	Elapsed time.Duration
}

// NewScanner builds a scanner wired to a world, with the paper's
// methodology defaults (Cloudflare sampling at 5 % full scans). When
// opts request chaos (LossRate) the world's network is configured with
// the matching fault profile as a side effect.
func NewScanner(world *ecosystem.Ecosystem, opts Options) *scan.Scanner {
	r := &resolver.Resolver{Net: world.Net, Roots: world.Roots}
	if opts.Registry != nil {
		r.Obs = resolver.NewMetrics(opts.Registry)
	}
	if opts.Stateless {
		r.Stateless = true
	} else if !opts.DisableCache {
		r.Cache = resolver.NewCache(opts.CacheNegTTL)
	}
	if opts.QueriesPerSecondPerNS > 0 {
		r.Limits = rate.NewPerKey(opts.QueriesPerSecondPerNS, int(opts.QueriesPerSecondPerNS))
		if opts.Registry != nil {
			wait := r.Obs.RateWait
			r.Limits.SetObserver(func(d time.Duration) { wait.Observe(d.Seconds()) })
		}
	}
	chaosSeed := opts.ChaosSeed
	if chaosSeed == 0 {
		chaosSeed = opts.Seed
	}
	if opts.LossRate > 0 {
		world.Net.SetChaosSeed(chaosSeed)
		world.Net.SetDefaultFault(transport.FaultProfile{Loss: opts.LossRate})
	}
	var retry *resolver.RetryPolicy
	if opts.RetryAttempts > 1 {
		retry = &resolver.RetryPolicy{
			Attempts:    opts.RetryAttempts,
			BaseBackoff: opts.RetryBackoff,
			Jitter:      0.5,
			Seed:        chaosSeed,
		}
	}
	return scan.New(scan.Config{
		Retry:                retry,
		Resolver:             r,
		Now:                  world.Now,
		Concurrency:          opts.Concurrency,
		SampleSuffixes:       world.CloudflareSuffixes,
		FullScanFraction:     0.05,
		ProbeSignals:         !opts.DisableSignalProbes,
		SignalOnlyCandidates: opts.SignalOnlyCandidates,
		TrustAnchor:          world.TrustAnchor,
		Seed:                 opts.Seed,
		Stateless:            opts.Stateless,
		Tracer:               opts.Tracer,
		ProgressWriter:       opts.ProgressWriter,
		ProgressInterval:     opts.ProgressInterval,
	})
}

// Run executes the full pipeline: generate → scan → classify → report.
func Run(ctx context.Context, opts Options) (*Study, error) {
	world := opts.World
	if world == nil {
		var err error
		world, err = ecosystem.Generate(ecosystem.Config{
			Seed:         opts.Seed,
			ScaleDivisor: opts.ScaleDivisor,
		})
		if err != nil {
			return nil, fmt.Errorf("core: generating world: %w", err)
		}
	}
	targets := opts.Targets
	if targets == nil {
		targets = world.Targets
	}
	if opts.MaxZones > 0 && len(targets) > opts.MaxZones {
		targets = targets[:opts.MaxZones]
	}
	scanner := NewScanner(world, opts)
	start := time.Now()
	observations := scanner.ScanAll(ctx, targets)
	elapsed := time.Since(start)

	classifier := classify.New(world.Now)
	classifier.Tracer = opts.Tracer
	results := classifier.ClassifyAll(observations)
	return &Study{
		World:        world,
		Observations: observations,
		Results:      results,
		Report:       report.Build(results),
		Elapsed:      elapsed,
	}, nil
}
