package core

import (
	"bytes"
	"context"
	"testing"

	"dnssecboot/internal/classify"
	"dnssecboot/internal/ecosystem"
	"dnssecboot/internal/report"
	"dnssecboot/internal/scan"
)

// TestScanSurvivesPacketLoss injects heavy packet loss into the
// simulated network and checks the pipeline degrades gracefully: no
// panics, no bogus classifications, failures surface as unresolved
// zones or failed per-NS outcomes.
func TestScanSurvivesPacketLoss(t *testing.T) {
	world, err := ecosystem.Generate(ecosystem.Config{Seed: 21, ScaleDivisor: 400_000})
	if err != nil {
		t.Fatal(err)
	}
	world.Net.LossRate = 0.25
	study, err := Run(context.Background(), Options{Seed: 21, World: world})
	if err != nil {
		t.Fatal(err)
	}
	unresolved, resolved := 0, 0
	for _, r := range study.Results {
		if r.Status == classify.StatusUnresolved {
			unresolved++
			continue
		}
		resolved++
	}
	if resolved == 0 {
		t.Fatal("nothing resolved under 25% loss")
	}
	// With retries at the queryAny level most zones should still make
	// it; the point is that failures are contained, not that they are
	// absent.
	t.Logf("under 25%% loss: %d resolved, %d unresolved", resolved, unresolved)
	if unresolved == 0 {
		t.Log("note: loss fully absorbed by retries at this scale")
	}
}

// TestScanSurvivesTotalLossOfOneOperator blackholes one operator's
// servers entirely: its zones must classify as unresolved while the
// rest of the population is unaffected.
func TestScanSurvivesTotalLossOfOneOperator(t *testing.T) {
	world, err := ecosystem.Generate(ecosystem.Config{Seed: 22, ScaleDivisor: 400_000})
	if err != nil {
		t.Fatal(err)
	}
	// GoDaddy's two NS addresses are deterministic; unregister them.
	srv := world.OperatorServer("GoDaddy")
	if srv == nil {
		t.Fatal("no GoDaddy infra")
	}
	blackholed := 0
	for _, tr := range world.Truth {
		if tr.Operator == "GoDaddy" {
			blackholed++
		}
	}
	if blackholed == 0 {
		t.Skip("no GoDaddy zones at this scale")
	}
	// Blackhole by making the server drop everything.
	srv.Behavior.DropRate = 1.0

	study, err := Run(context.Background(), Options{Seed: 22, World: world})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range study.Results {
		tr := study.World.Truth[r.Zone]
		if tr.Operator == "GoDaddy" {
			if r.Status != classify.StatusUnresolved {
				t.Errorf("%s resolved despite blackholed operator (status %s)", r.Zone, r.Status)
			}
		} else if tr.Operator == "Cloudflare" && r.Status == classify.StatusUnresolved {
			t.Errorf("%s unresolved though its operator is healthy", r.Zone)
		}
	}
}

// TestPopulationShares checks the generated world reproduces the
// paper's §4.1 proportions at a moderate scale.
func TestPopulationShares(t *testing.T) {
	if testing.Short() {
		t.Skip("moderate-scale generation")
	}
	study, err := Run(context.Background(), Options{Seed: 1, ScaleDivisor: 50_000, Concurrency: 16})
	if err != nil {
		t.Fatal(err)
	}
	res := study.Report.Resolved()
	share := func(s classify.Status) float64 {
		return 100 * float64(study.Report.ByStatus[s]) / float64(res)
	}
	if got := share(classify.StatusUnsigned); got < 90 || got > 95 {
		t.Errorf("unsigned share = %.1f%%, paper 93.2%%", got)
	}
	if got := share(classify.StatusSecured); got < 4 || got > 8 {
		t.Errorf("secured share = %.1f%%, paper 5.5%%", got)
	}
	if got := share(classify.StatusIsland); got < 0.8 || got > 4 {
		t.Errorf("island share = %.1f%%, paper 1.1%%", got)
	}
	if got := share(classify.StatusInvalid); got < 0.1 || got > 1.5 {
		t.Errorf("invalid share = %.1f%%, paper 0.2%%", got)
	}
	// The per-operator delete-island concentration (§4.2: 96.7 % on
	// Cloudflare).
	cf := study.Report.Operators["Cloudflare"]
	if cf == nil || cf.DeleteIslands == 0 {
		t.Fatal("no Cloudflare delete islands")
	}
	// At moderate scales min-one flooring inflates the other operators'
	// single delete islands, so assert the plurality rather than the
	// paper's 96.7 % share (which TestScale smoke runs confirm at
	// larger populations).
	for name, s := range study.Report.Operators {
		if name != "Cloudflare" && s.DeleteIslands >= cf.DeleteIslands {
			t.Errorf("%s has %d delete islands, ≥ Cloudflare's %d", name, s.DeleteIslands, cf.DeleteIslands)
		}
	}
}

// TestCoordinatedMultiSigner checks that RFC 8901 multi-signer setups
// that DO coordinate their CDS are classified as bootstrap-eligible
// (and flagged multi-operator), unlike the uncoordinated majority.
func TestCoordinatedMultiSigner(t *testing.T) {
	world, err := ecosystem.Generate(ecosystem.Config{Seed: 31, ScaleDivisor: 400_000})
	if err != nil {
		t.Fatal(err)
	}
	study, err := Run(context.Background(), Options{Seed: 31, World: world})
	if err != nil {
		t.Fatal(err)
	}
	foundGood, foundBad := false, false
	for _, r := range study.Results {
		tr := world.Truth[r.Zone]
		if tr.Spec.MultiOperator == "" || tr.Spec.State != ecosystem.StateIsland || tr.Spec.Signal {
			continue
		}
		if tr.Spec.CDSInconsistent {
			foundBad = true
			if r.Bucket != classify.PotentialIslandInvalidCDS {
				t.Errorf("%s: uncoordinated multi-signer bucket = %s", r.Zone, r.Bucket)
			}
			if !r.Operator.MultiOperator {
				t.Errorf("%s: multi-operator not identified", r.Zone)
			}
		} else {
			foundGood = true
			if r.Bucket != classify.PotentialBootstrap {
				t.Errorf("%s: coordinated multi-signer bucket = %s (CDS %+v)", r.Zone, r.Bucket, r.CDS)
			}
			if !r.Operator.MultiOperator {
				t.Errorf("%s: multi-operator not identified", r.Zone)
			}
		}
	}
	if !foundGood || !foundBad {
		t.Fatalf("fixtures missing: good=%v bad=%v", foundGood, foundBad)
	}
}

// TestOfflineReanalysisMatchesLive locks in the export fidelity: a
// scan dumped to JSONL and re-imported must classify identically.
func TestOfflineReanalysisMatchesLive(t *testing.T) {
	study := runSmall(t)
	var buf bytes.Buffer
	if err := scan.WriteJSONL(&buf, study.Observations); err != nil {
		t.Fatal(err)
	}
	raw, err := scan.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != len(study.Observations) {
		t.Fatalf("round trip lost observations: %d vs %d", len(raw), len(study.Observations))
	}
	rebuilt := make([]*scan.ZoneObservation, len(raw))
	for i, o := range raw {
		rebuilt[i], err = scan.FromJSON(o)
		if err != nil {
			t.Fatalf("FromJSON(%s): %v", o.Zone, err)
		}
	}
	classifier := classify.New(study.World.Now)
	offline := report.Build(classifier.ClassifyAll(rebuilt))
	live := study.Report
	for name, pair := range map[string][2]string{
		"headline": {live.Headline(), offline.Headline()},
		"figure1":  {live.Figure1(), offline.Figure1()},
		"table3":   {live.Table3(), offline.Table3()},
		"cds":      {live.CDSFindings(), offline.CDSFindings()},
	} {
		if pair[0] != pair[1] {
			t.Errorf("%s diverged offline:\nlive:\n%s\noffline:\n%s", name, pair[0], pair[1])
		}
	}
}
