package core

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"

	"dnssecboot/internal/classify"
	"dnssecboot/internal/ecosystem"
	"dnssecboot/internal/obs"
	"dnssecboot/internal/scan"
)

// TestTraceZoneIslandDecisionTrace is the acceptance fixture for
// -trace-zone: tracing a known secure island must yield a decision
// trace that names the parent zone, records the missing DS at the
// parent, and carries the final classification decision.
func TestTraceZoneIslandDecisionTrace(t *testing.T) {
	world, err := ecosystem.Generate(ecosystem.Config{Seed: 7, ScaleDivisor: 300_000})
	if err != nil {
		t.Fatal(err)
	}
	island := ""
	for z, tr := range world.Truth {
		if tr.Spec.State == ecosystem.StateIsland {
			island = z
			break
		}
	}
	if island == "" {
		t.Fatal("no island zone at this scale")
	}

	var buf bytes.Buffer
	tracer := obs.NewTracer(&buf, island)
	if _, err := Run(context.Background(), Options{Seed: 7, World: world, Tracer: tracer}); err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadTrace(&buf)
	if err != nil {
		t.Fatalf("trace does not round-trip: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("zone filter produced no events")
	}

	var sawParent, sawMissingDS, sawDecision bool
	parent := parentOf(island)
	for _, ev := range events {
		if ev.Zone != island {
			t.Fatalf("zone filter leaked an event for %q: %+v", ev.Zone, ev)
		}
		switch {
		case ev.Stage == "resolve" && ev.Event == "delegation" && strings.Contains(ev.Detail, "parent="+parent):
			sawParent = true
		case ev.Stage == "resolve" && ev.Event == "ds_absent" && ev.Qtype == "DS":
			sawMissingDS = true
			if !strings.Contains(ev.Detail, parent) {
				t.Errorf("ds_absent event does not name the parent zone: %+v", ev)
			}
		case ev.Stage == "classify" && ev.Event == "decision":
			sawDecision = true
			if ev.Outcome != classify.StatusIsland.String() {
				t.Errorf("classification decision = %q, want %q", ev.Outcome, classify.StatusIsland)
			}
		}
	}
	if !sawParent {
		t.Error("trace never names the parent zone in a delegation event")
	}
	if !sawMissingDS {
		t.Error("trace never records the missing DS at the parent")
	}
	if !sawDecision {
		t.Error("trace never records the classification decision")
	}
}

func parentOf(zone string) string {
	if i := strings.Index(zone, "."); i >= 0 && i+1 < len(zone) {
		return zone[i+1:]
	}
	return "."
}

// TestObservabilityIsBehaviourNeutral locks in the zero-interference
// contract: a chaos scan (loss + retries) must produce byte-identical
// observation exports whether or not metrics and tracing are enabled.
// Concurrency 1 keeps the baseline itself deterministic — at higher
// concurrency the per-zone cache accounting depends on which goroutine
// wins the singleflight race, with or without observability.
func TestObservabilityIsBehaviourNeutral(t *testing.T) {
	export := func(registry *obs.Registry, tracer *obs.Tracer) []byte {
		t.Helper()
		world, err := ecosystem.Generate(ecosystem.Config{Seed: 11, ScaleDivisor: 300_000})
		if err != nil {
			t.Fatal(err)
		}
		study, err := Run(context.Background(), Options{
			Seed: 11, World: world, Concurrency: 1,
			LossRate: 0.05, RetryAttempts: 4,
			Registry: registry, Tracer: tracer,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := scan.WriteJSONL(&buf, study.Observations); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	plain := export(nil, nil)
	traced := export(obs.NewRegistry(), obs.NewTracer(io.Discard, ""))
	if !bytes.Equal(plain, traced) {
		t.Fatalf("observability changed scan behaviour: exports differ (%d vs %d bytes)",
			len(plain), len(traced))
	}
}

// TestMetricsSnapshotAgreesWithObservations checks the registry's
// counters against the per-zone accounting the scan already reports.
func TestMetricsSnapshotAgreesWithObservations(t *testing.T) {
	registry := obs.NewRegistry()
	world, err := ecosystem.Generate(ecosystem.Config{Seed: 3, ScaleDivisor: 300_000})
	if err != nil {
		t.Fatal(err)
	}
	study, err := Run(context.Background(), Options{Seed: 3, World: world, Registry: registry})
	if err != nil {
		t.Fatal(err)
	}
	var queries, hits int64
	for _, o := range study.Observations {
		queries += o.Queries
		hits += o.CacheHits
	}
	snap := registry.Snapshot()
	if got := snap.Counters["resolver_queries_total"]; got != queries {
		t.Errorf("registry queries = %d, per-zone sum = %d", got, queries)
	}
	if got := snap.Counters["resolver_cache_hits_total"]; got != hits {
		t.Errorf("registry cache hits = %d, per-zone sum = %d", got, hits)
	}
	h, ok := snap.Histograms["resolver_query_seconds"]
	if !ok {
		t.Fatal("no query latency histogram in snapshot")
	}
	if h.Count != queries {
		t.Errorf("latency histogram count = %d, queries = %d", h.Count, queries)
	}
}
