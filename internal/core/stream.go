package core

import (
	"context"
	"fmt"
	"time"

	"dnssecboot/internal/classify"
	"dnssecboot/internal/ecosystem"
	"dnssecboot/internal/report"
	"dnssecboot/internal/scan"
)

// StreamSink receives each zone's observation and classification in
// strict target order. Returning an error aborts the run.
type StreamSink func(index int, zo *scan.ZoneObservation, res *classify.Result) error

// StreamOptions configure a streaming study run.
type StreamOptions struct {
	Options

	// StartIndex skips zones [0, StartIndex) — they were exported by an
	// earlier, interrupted run and their tallies arrive via Resume.
	StartIndex int
	// EndIndex bounds the run to zones [StartIndex, EndIndex); zero
	// means the end of the target list. A shard worker sets Start/End
	// to its contiguous partition of the zone space.
	EndIndex int
	// Resume is the report accumulator restored from a checkpoint; nil
	// starts the tallies from zero.
	Resume *report.Aggregate
	// Drain asks the run to stop dispatching new zones when closed;
	// in-flight zones complete and are emitted (SIGINT handling).
	Drain <-chan struct{}
	// Window bounds the reorder buffer (see scan.StreamOptions.Window).
	Window int
	// Sink receives every in-order (observation, classification) pair
	// after it has been folded into the report accumulator. Nil is
	// allowed: the run then only accumulates.
	Sink StreamSink
}

// StreamStudy is the outcome of a streaming run. Unlike Study it holds
// no per-zone slices: observations and results exist only for the
// moment they pass through the sink.
type StreamStudy struct {
	// World is the scanned ecosystem.
	World *ecosystem.Ecosystem
	// Report aggregates every zone emitted so far, including the
	// checkpointed prefix when resuming.
	Report *report.Aggregate
	// NextIndex is the first zone NOT emitted: the sink saw exactly
	// zones [StartIndex, NextIndex).
	NextIndex int
	// TotalZones is the length of the (possibly truncated) target list.
	TotalZones int
	// Scanned counts the zones emitted by this run.
	Scanned int
	// Drained reports that the run stopped before its end bound (drain
	// signal or context cancellation) without a sink error.
	Drained bool
	// PeakLive is the maximum number of simultaneously dispatched-but-
	// unemitted zones — the pipeline's live-memory high-water mark.
	PeakLive int
	// Elapsed is the wall-clock scan duration of this run.
	Elapsed time.Duration
}

// RunStream executes the pipeline in streaming form: generate → scan →
// classify → accumulate, handing each zone to opts.Sink in order
// instead of materialising per-zone slices. Memory stays bounded by the
// scan window regardless of population size, which is what makes
// checkpoint/resume and SIGINT draining practical at the paper's 287.6M
// zone scale.
func RunStream(ctx context.Context, opts StreamOptions) (*StreamStudy, error) {
	world := opts.World
	if world == nil {
		var err error
		world, err = ecosystem.Generate(ecosystem.Config{
			Seed:         opts.Seed,
			ScaleDivisor: opts.ScaleDivisor,
		})
		if err != nil {
			return nil, fmt.Errorf("core: generating world: %w", err)
		}
	}
	targets := opts.Targets
	if targets == nil {
		targets = world.Targets
	}
	if opts.MaxZones > 0 && len(targets) > opts.MaxZones {
		targets = targets[:opts.MaxZones]
	}
	if opts.StartIndex < 0 || opts.StartIndex > len(targets) {
		return nil, fmt.Errorf("core: resume index %d outside [0, %d]", opts.StartIndex, len(targets))
	}
	if opts.EndIndex != 0 && (opts.EndIndex < opts.StartIndex || opts.EndIndex > len(targets)) {
		return nil, fmt.Errorf("core: end index %d outside [%d, %d]", opts.EndIndex, opts.StartIndex, len(targets))
	}

	agg := opts.Resume
	if agg == nil {
		agg = report.NewAggregate()
	}
	classifier := classify.New(world.Now)
	classifier.Tracer = opts.Tracer

	scanner := NewScanner(world, opts.Options)
	start := time.Now()
	res, err := scanner.ScanStream(ctx, targets, scan.StreamOptions{
		Start:  opts.StartIndex,
		Stop:   opts.EndIndex,
		Window: opts.Window,
		Drain:  opts.Drain,
		Sink: func(i int, zo *scan.ZoneObservation) error {
			r := classifier.Classify(zo)
			agg.Add(r)
			if opts.Sink != nil {
				return opts.Sink(i, zo, r)
			}
			return nil
		},
	})
	elapsed := time.Since(start)
	study := &StreamStudy{
		World:      world,
		Report:     agg,
		NextIndex:  res.Next,
		TotalZones: len(targets),
		Scanned:    res.Next - opts.StartIndex,
		Drained:    res.Drained,
		PeakLive:   res.PeakLive,
		Elapsed:    elapsed,
	}
	if err != nil {
		return study, err
	}
	return study, nil
}
