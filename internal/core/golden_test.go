// Golden end-to-end test: the full pipeline at -scale 500000 -seed 1
// must render the exact artefact set checked in under testdata/. This
// pins the whole chain — world generation, scan, classification,
// aggregation, table rendering — so any unintended change to any layer
// shows up as a readable table diff. Refresh the fixture after an
// intentional change with:
//
//	go test ./internal/core/ -run TestGoldenArtefacts -update-golden
package core

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden artefact fixture")

const goldenPath = "testdata/golden_scale500000_seed1.txt"

// goldenArtefacts renders the classification-bearing artefacts.
// QueryStats is deliberately excluded: query counters depend on cache
// history and concurrency, while classifications must not.
func goldenArtefacts(s *Study) string {
	r := s.Report
	var b strings.Builder
	for _, section := range []struct {
		name   string
		render func() string
	}{
		{"headline", r.Headline},
		{"figure1", r.Figure1},
		{"table1", func() string { return r.Table1(20) }},
		{"table2", func() string { return r.Table2(20) }},
		{"cds", r.CDSFindings},
		{"table3", r.Table3},
	} {
		fmt.Fprintf(&b, "== %s ==\n%s\n\n", section.name, section.render())
	}
	return b.String()
}

func TestGoldenArtefacts(t *testing.T) {
	study, err := Run(context.Background(), Options{Seed: 1, ScaleDivisor: 500_000, Concurrency: 8})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := goldenArtefacts(study)

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(got))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading fixture (run with -update-golden to create it): %v", err)
	}
	if got == string(want) {
		return
	}
	// Readable diff: report the first divergent line with context, not
	// two multi-kilobyte blobs.
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		g, w := "", ""
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			lo := i - 2
			if lo < 0 {
				lo = 0
			}
			var ctx strings.Builder
			for j := lo; j < i && j < len(gl); j++ {
				fmt.Fprintf(&ctx, "  %4d   %s\n", j+1, gl[j])
			}
			t.Fatalf("artefacts diverge from %s at line %d:\n%s  %4d - %s\n  %4d + %s\n(rerun with -update-golden after an intentional change)",
				goldenPath, i+1, ctx.String(), i+1, w, i+1, g)
		}
	}
	t.Fatalf("artefacts differ from %s only in trailing content: got %d lines, want %d",
		goldenPath, len(gl), len(wl))
}
