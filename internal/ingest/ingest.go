// Package ingest turns real-world zone dumps — CZDS downloads, AXFR
// captures, plain or gzip-compressed master files — into scan targets
// in constant memory. This is the step the paper performs before any
// query is sent: reduce a TLD zone file to the set of registrable
// delegated domains (zones directly underneath a public suffix),
// discarding glue, non-NS records, out-of-zone garbage and duplicate
// delegations, while counting every skip so the reduction is auditable.
//
// The pipeline is a four-stage stream:
//
//	chunked reader → logical-line assembler → parallel record parsers → order-preserving reducer
//
// Only the assembler is sequential (directive state and blank-owner
// continuation are order-dependent); record parsing fans out over a
// bounded worker pool and the reducer restores input order by batch
// sequence number, so the emitted target list is byte-identical for
// every worker count. Live memory is bounded by the in-flight batch
// window plus the deduplication set — independent of the dump size.
package ingest

import (
	"bufio"
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"

	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/obs"
	"dnssecboot/internal/psl"
	"dnssecboot/internal/zone"
)

// Skip reasons: why a record did not become a scan target. Keys of
// Stats.Skipped and suffixes of the ingest.skip.* counters.
const (
	// SkipNonNS: a record type that never defines a delegation (SOA,
	// DNSSEC material, TXT, ...).
	SkipNonNS = "non_ns"
	// SkipGlue: an address record. In a delegation-centric dump every
	// A/AAAA is glue for some nameserver below a cut; classifying by
	// type alone keeps the stage single-pass.
	SkipGlue = "glue"
	// SkipOutOfZone: an owner outside the dump's apex.
	SkipOutOfZone = "out_of_zone"
	// SkipApex: the zone's own apex NS set — not a delegation.
	SkipApex = "apex"
	// SkipUnregistrable: an NS owner that is itself a public suffix (or
	// malformed) and therefore not a registrable domain.
	SkipUnregistrable = "unregistrable"
	// SkipDuplicate: a delegation whose registrable domain was already
	// emitted (multiple NS records per cut, or a deeper delegation
	// under an already-seen registrable name).
	SkipDuplicate = "duplicate"
	// SkipBadRecord: a line that failed to parse (lenient mode only;
	// strict mode aborts instead).
	SkipBadRecord = "bad_record"
)

// Config parameterises one ingest run.
type Config struct {
	// Origin fixes the dump's apex for the in-zone/out-of-zone and apex
	// classifications. Empty means autodetect: the first $ORIGIN
	// directive or the first SOA owner, whichever the stream yields
	// first; until one appears, no record is judged out of zone.
	Origin string
	// Workers bounds the parallel record parsers. Zero or negative
	// means min(GOMAXPROCS, 8).
	Workers int
	// BatchLines is the number of logical lines per parse batch (the
	// unit of fan-out and reordering). Zero means 256.
	BatchLines int
	// MaxLineBytes caps one physical or logical (parenthesis-joined)
	// line. Zero means zone.MaxLogicalLineBytes. Over-long lines are
	// skipped in O(1) memory (lenient) or abort the run (strict).
	MaxLineBytes int
	// Strict promotes record-level problems (unparseable lines,
	// over-long lines, invalid owner names) from counted skips to
	// positional fatal errors. Structural problems — unreadable input,
	// gzip corruption or truncation, $INCLUDE — are always fatal.
	Strict bool
	// PSL is the public-suffix list driving the registrable-domain
	// reduction. Nil means psl.Default().
	PSL *psl.List
	// Registry, when non-nil, receives ingest.* counters (lines,
	// records, targets and per-reason skips) after the run.
	Registry *obs.Registry
}

// Stats describes one ingest run. All fields are deterministic
// functions of the input bytes and Config — never of timing or worker
// count — so serialised stats are byte-stable.
type Stats struct {
	// Gzip reports whether the input was gzip-compressed (detected from
	// the magic bytes, never the file name).
	Gzip bool `json:"gzip"`
	// Origin is the apex used for in-zone classification ("." when it
	// never became known).
	Origin string `json:"origin"`
	// PhysicalLines and LogicalLines count raw input lines and
	// assembled (comment-stripped, parenthesis-joined, non-empty)
	// lines; Directives counts the $ORIGIN/$TTL lines among them.
	PhysicalLines int `json:"physical_lines"`
	LogicalLines  int `json:"logical_lines"`
	Directives    int `json:"directives"`
	// Records counts successfully parsed resource records.
	Records int `json:"records"`
	// Targets counts emitted registrable scan targets.
	Targets int `json:"targets"`
	// Skipped tallies every record or line that was not emitted, by
	// reason (the Skip* constants).
	Skipped map[string]int `json:"skipped"`
	// FirstErrors samples the first few record-level problems (lenient
	// mode), each as "line N: message", for the operator's eyeball.
	FirstErrors []string `json:"first_errors,omitempty"`
}

// maxErrorSamples bounds Stats.FirstErrors.
const maxErrorSamples = 8

// Result is a reduced zone dump: the scan targets in first-seen input
// order, plus the audit trail.
type Result struct {
	Targets []string
	Stats   Stats
}

// File ingests the dump at path, detecting gzip from magic bytes.
func File(ctx context.Context, path string, cfg Config) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	defer f.Close()
	return Ingest(ctx, f, cfg)
}

// Ingest streams r through the reduction pipeline. The reader is
// consumed exactly once; gzip compression is detected from the first
// two bytes.
func Ingest(ctx context.Context, r io.Reader, cfg Config) (*Result, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}
	batchLines := cfg.BatchLines
	if batchLines <= 0 {
		batchLines = 256
	}
	maxLine := cfg.MaxLineBytes
	if maxLine <= 0 {
		maxLine = zone.MaxLogicalLineBytes
	}
	list := cfg.PSL
	if list == nil {
		list = psl.Default()
	}

	br := bufio.NewReaderSize(r, 128*1024)
	var src io.Reader = br
	magic, _ := br.Peek(2)
	isGzip := len(magic) == 2 && magic[0] == 0x1f && magic[1] == 0x8b
	if isGzip {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("ingest: gzip: %w", err)
		}
		defer zr.Close()
		src = zr
	}

	asm := &assembler{
		lr:     &lineReader{br: bufio.NewReaderSize(src, 64*1024), max: maxLine},
		origin: ".",
		ttl:    3600,
		max:    maxLine,
	}
	if cfg.Origin != "" {
		asm.origin = dnswire.CanonicalName(cfg.Origin)
	}

	g := &ingester{
		cfg:   cfg,
		psl:   list,
		apex:  ".",
		seen:  make(map[string]bool),
		stats: Stats{Gzip: isGzip, Skipped: make(map[string]int)},
	}
	if cfg.Origin != "" {
		g.apex = dnswire.CanonicalName(cfg.Origin)
		g.apexKnown = true
	}

	// ictx stops the producer when the reducer aborts (strict-mode
	// record error) without poisoning the batches already in flight.
	ictx, icancel := context.WithCancel(ctx)
	defer icancel()

	jobs := make(chan batchIn, workers)
	outs := make(chan batchOut, workers)

	// Producer: the sequential assembler, batching lineItems.
	var readErr error
	var readWG sync.WaitGroup
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		defer close(jobs)
		seq := 0
		batch := make([]lineItem, 0, batchLines)
		flush := func() bool {
			if len(batch) == 0 {
				return true
			}
			b := batchIn{seq: seq, items: batch}
			seq++
			batch = make([]lineItem, 0, batchLines)
			select {
			case jobs <- b:
				return true
			case <-ictx.Done():
				return false
			}
		}
		for {
			if ictx.Err() != nil {
				return
			}
			item, ok, err := asm.next()
			if err != nil {
				readErr = err
				flush()
				return
			}
			if !ok {
				flush()
				return
			}
			batch = append(batch, item)
			if len(batch) >= batchLines {
				if !flush() {
					return
				}
			}
		}
	}()

	// Parse pool: order-free, one zone.ParseRecord per line.
	var workWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workWG.Add(1)
		go func() {
			defer workWG.Done()
			for b := range jobs {
				out := batchOut{seq: b.seq, items: b.items, rrs: make([]dnswire.RR, len(b.items)), errs: make([]error, len(b.items))}
				for i, item := range b.items {
					if item.err != "" {
						continue // structural problem, counted downstream
					}
					rr, err := zone.ParseRecord(item.text, item.origin, item.ttl)
					if err == nil {
						// The presentation parser accepts any label
						// string; enforce the wire limits here so
						// 300-octet owners from dirty dumps are skips,
						// not scan targets.
						if _, nerr := dnswire.NameWireLength(rr.Name); nerr != nil {
							err = fmt.Errorf("owner: %w", nerr)
						}
					}
					out.rrs[i], out.errs[i] = rr, err
				}
				select {
				case outs <- out:
				case <-ictx.Done():
					// Reducer is gone; drop the batch so the pool can
					// drain the closed jobs channel and exit.
				}
			}
		}()
	}
	go func() {
		readWG.Wait()
		workWG.Wait()
		close(outs)
	}()

	// Order-preserving reducer, on the calling goroutine: batches are
	// re-sequenced, then every record flows through the registrable-
	// domain reduction in exact input order.
	pending := make(map[int]batchOut, workers+2)
	next := 0
	var abortErr error
	for out := range outs {
		if abortErr != nil {
			continue // draining after a strict-mode abort
		}
		pending[out.seq] = out
		for {
			b, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			for i := range b.items {
				if err := g.reduce(b.items[i], b.rrs[i], b.errs[i]); err != nil {
					abortErr = err
					icancel()
					break
				}
			}
			if abortErr != nil {
				break
			}
		}
	}
	if abortErr != nil {
		return nil, abortErr
	}
	if readErr != nil {
		return nil, readErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}

	g.stats.PhysicalLines = asm.physical
	g.stats.LogicalLines = asm.logical
	g.stats.Directives = asm.directives
	g.stats.Origin = g.apex
	g.stats.Targets = len(g.targets)

	if cfg.Registry != nil {
		reg := cfg.Registry
		reg.Counter("ingest.lines").Add(int64(g.stats.LogicalLines))
		reg.Counter("ingest.records").Add(int64(g.stats.Records))
		reg.Counter("ingest.targets").Add(int64(g.stats.Targets))
		reasons := make([]string, 0, len(g.stats.Skipped))
		for reason := range g.stats.Skipped {
			reasons = append(reasons, reason)
		}
		sort.Strings(reasons)
		for _, reason := range reasons {
			reg.Counter("ingest.skip."+reason).Add(int64(g.stats.Skipped[reason]))
		}
	}
	return &Result{Targets: g.targets, Stats: g.stats}, nil
}

// batchIn and batchOut carry one batch of lines through the pool.
type batchIn struct {
	seq   int
	items []lineItem
}

type batchOut struct {
	seq   int
	items []lineItem
	rrs   []dnswire.RR
	errs  []error
}

// ingester is the sequential reduction state.
type ingester struct {
	cfg       Config
	psl       *psl.List
	apex      string
	apexKnown bool
	seen      map[string]bool
	targets   []string
	stats     Stats
}

func (g *ingester) skip(reason string) {
	g.stats.Skipped[reason]++
}

// recordProblem handles a record-level failure: fatal in strict mode,
// a counted skip (with a bounded error sample) otherwise.
func (g *ingester) recordProblem(line int, msg string) error {
	if g.cfg.Strict {
		return fmt.Errorf("ingest: line %d: %s", line, msg)
	}
	g.skip(SkipBadRecord)
	if len(g.stats.FirstErrors) < maxErrorSamples {
		g.stats.FirstErrors = append(g.stats.FirstErrors, fmt.Sprintf("line %d: %s", line, msg))
	}
	return nil
}

// reduce classifies one parsed record (or line failure) in input order.
func (g *ingester) reduce(item lineItem, rr dnswire.RR, parseErr error) error {
	if item.err != "" {
		return g.recordProblem(item.line, item.err)
	}
	if parseErr != nil {
		// ParseRecord sees every item as line 1 of its own one-line
		// parse; strip that prefix so messages carry only the dump line.
		return g.recordProblem(item.line, strings.TrimPrefix(parseErr.Error(), "zone: line 1: "))
	}
	g.stats.Records++

	// Apex autodetection: the first $ORIGIN in effect, or the first SOA
	// owner, whichever the stream yields first.
	if !g.apexKnown {
		if item.origin != "." {
			g.apex = item.origin
			g.apexKnown = true
		} else if rr.Type() == dnswire.TypeSOA {
			g.apex = rr.Name
			g.apexKnown = true
		}
	}

	switch rr.Type() {
	case dnswire.TypeNS:
	case dnswire.TypeA, dnswire.TypeAAAA:
		g.skip(SkipGlue)
		return nil
	default:
		g.skip(SkipNonNS)
		return nil
	}

	owner := rr.Name // canonical: ParseRecord normalises
	if g.apexKnown {
		if owner == g.apex {
			g.skip(SkipApex)
			return nil
		}
		if !dnswire.IsSubdomain(owner, g.apex) {
			g.skip(SkipOutOfZone)
			return nil
		}
	}
	reg, ok := g.psl.RegistrableDomain(owner)
	if !ok {
		g.skip(SkipUnregistrable)
		return nil
	}
	if g.seen[reg] {
		g.skip(SkipDuplicate)
		return nil
	}
	g.seen[reg] = true
	g.targets = append(g.targets, reg)
	return nil
}
