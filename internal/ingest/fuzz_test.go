package ingest

import (
	"bytes"
	"compress/gzip"
	"context"
	"reflect"
	"testing"
)

// FuzzIngest drives arbitrary bytes — garbage, near-valid master files,
// corrupt gzip — through the full pipeline and holds two invariants:
// no panic ever, and the outcome is identical for 1 and 2 workers
// (same error-ness, same targets, same stats). The 4KiB line cap keeps
// a hostile input (one endless line, unterminated parens) from turning
// the fuzzer's memory limit into flakiness: the pipeline must hold its
// own bound, not inherit the harness's.
func FuzzIngest(f *testing.F) {
	seeds := []string{
		mixedDump,
		"",
		"$ORIGIN test.\na.test. IN NS ns1.a.test.\n",
		"$INCLUDE other.zone\n",
		"$ORIGIN\n$TTL x\n$BOGUS 1\n",
		"a.test. IN SOA ns0.test. h.test. ( 1 ; c\n 2 3 4 5 )\n",
		"a.test. IN TXT \"unterminated\nb.test. IN NS ns1.b.test.\n",
		")\n(\n((((\n",
		"\tIN NS ns1.test.\n",
		"a.test. 3600 IN TXT \"\\\"esc\\\" ; not a comment\"\n",
		"mixed.test. IN NS ns1.mixed.test.\r\nlf.test. IN NS ns1.lf.test.\n",
		"\x1f\x8b\x08\x00garbage-after-magic",
		"co.uk.. IN NS ns1.test.\n.co.uk IN NS ns1.test.\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Add(gzipSeed(mixedDump))
	f.Add(gzipSeed(mixedDump)[:20]) // truncated gzip

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := Config{Workers: 1, BatchLines: 3, MaxLineBytes: 4096}
		r1, err1 := Ingest(context.Background(), bytes.NewReader(data), cfg)
		cfg.Workers = 2
		r2, err2 := Ingest(context.Background(), bytes.NewReader(data), cfg)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("worker count changed error-ness: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if !reflect.DeepEqual(r1.Targets, r2.Targets) {
			t.Fatalf("worker count changed targets: %v vs %v", r1.Targets, r2.Targets)
		}
		if !reflect.DeepEqual(r1.Stats, r2.Stats) {
			t.Fatalf("worker count changed stats: %+v vs %+v", r1.Stats, r2.Stats)
		}
	})
}

func gzipSeed(s string) []byte {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	_, _ = zw.Write([]byte(s))
	_ = zw.Close()
	return buf.Bytes()
}
