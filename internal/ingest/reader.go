package ingest

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dnssecboot/internal/dnswire"
)

// The chunked line layer. Real zone dumps are too large to buffer and
// too dirty to trust: physical lines are read through a fixed-size
// bufio window with a hard per-line cap, logical lines are assembled by
// joining parenthesised continuations with comments stripped (quotes
// respected, CRLF and LF endings mixed freely), and every stateful
// master-file feature — $ORIGIN/$TTL tracking, blank-owner
// continuation — is resolved here, sequentially, so that each emitted
// lineItem is self-contained and the parse stage can run in parallel.

// errLineTooLong marks a physical line over the cap. It is recoverable:
// the reader discards the remainder of the line in O(1) memory and
// continues with the next one.
var errLineTooLong = errors.New("ingest: line exceeds maximum length")

// lineItem is one fully-contextualised logical line, ready for
// zone.ParseRecord with no shared state.
type lineItem struct {
	// line is the 1-based physical line the logical line starts on.
	line int
	// origin and ttl are the $ORIGIN / $TTL values in effect.
	origin string
	ttl    uint32
	// text is the joined, comment-stripped record line with the owner
	// made explicit (blank-owner continuation already substituted).
	text string
	// err, when non-empty, marks a line that failed structurally
	// (over-long, unbalanced parentheses, bad directive); text is then
	// empty. The emitter counts it, or aborts the run in strict mode.
	err string
}

// lineReader yields physical lines with a hard length cap and CRLF
// tolerance, reusing one accumulation buffer.
type lineReader struct {
	br   *bufio.Reader
	max  int
	buf  []byte
	line int // physical lines consumed so far
}

// next returns the next physical line without its terminator. It
// returns io.EOF at clean end of input, errLineTooLong for an over-long
// line (after discarding the remainder), and any other error verbatim
// (gzip corruption or truncation surfaces here).
func (lr *lineReader) next() ([]byte, error) {
	lr.buf = lr.buf[:0]
	for {
		chunk, err := lr.br.ReadSlice('\n')
		lr.buf = append(lr.buf, chunk...)
		switch {
		case len(lr.buf) > lr.max:
			lr.line++
			if err == nil {
				return nil, errLineTooLong
			}
			// Still inside the over-long line: drain it without
			// accumulating so memory stays bounded.
			for errors.Is(err, bufio.ErrBufferFull) {
				_, err = lr.br.ReadSlice('\n')
			}
			if err != nil && !errors.Is(err, io.EOF) {
				return nil, err
			}
			return nil, errLineTooLong
		case err == nil:
			lr.line++
			return trimEOL(lr.buf), nil
		case errors.Is(err, bufio.ErrBufferFull):
			continue
		case errors.Is(err, io.EOF):
			if len(lr.buf) == 0 {
				return nil, io.EOF
			}
			lr.line++
			return trimEOL(lr.buf), nil // final line without terminator
		default:
			return nil, err
		}
	}
}

// trimEOL strips one trailing LF and, under it, one trailing CR, so LF
// and CRLF files (and mixtures of both) read identically.
func trimEOL(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
	}
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	return b
}

// assembler turns physical lines into lineItems. It is the single
// sequential stage of the pipeline: everything it emits is
// order-dependent (directive state, blank owners), and everything after
// it is order-free.
type assembler struct {
	lr        *lineReader
	origin    string
	ttl       uint32
	lastOwner string
	max       int // logical-line cap

	physical int // physical lines consumed (for stats)
	logical  int // non-empty logical lines (records + directives + bad lines)
	directives int
}

// next assembles the next non-empty logical line. ok is false at end of
// input. A non-nil error is fatal for the whole ingest ($INCLUDE, gzip
// corruption, read errors); recoverable problems come back as items
// with err set.
func (a *assembler) next() (item lineItem, ok bool, fatal error) {
	for {
		text, start, err := a.logicalLine()
		a.physical = a.lr.line
		if errors.Is(err, io.EOF) {
			return lineItem{}, false, nil
		}
		if err != nil {
			var bad badLine
			if errors.As(err, &bad) {
				a.logical++
				return lineItem{line: bad.line, err: bad.msg}, true, nil
			}
			return lineItem{}, false, fmt.Errorf("ingest: line %d: %w", a.lr.line+1, err)
		}
		if strings.TrimLeft(text, " \t") == "" {
			continue
		}
		a.logical++
		if item, handled, err := a.directive(text, start); handled || err != nil {
			if err != nil {
				return lineItem{}, false, err
			}
			if item.err != "" {
				return item, true, nil
			}
			continue
		}
		// Blank owner: substitute the previous explicit owner so the
		// line parses in isolation.
		if text[0] == ' ' || text[0] == '\t' {
			if a.lastOwner == "" {
				return lineItem{line: start, err: "record with blank owner before any owner"}, true, nil
			}
			text = a.lastOwner + text
		} else {
			a.lastOwner = ownerToken(text)
		}
		return lineItem{line: start, origin: a.origin, ttl: a.ttl, text: text}, true, nil
	}
}

// badLine is a recoverable structural problem in one logical line.
type badLine struct {
	line int
	msg  string
}

func (b badLine) Error() string { return fmt.Sprintf("line %d: %s", b.line, b.msg) }

// logicalLine joins continuation lines while inside parentheses and
// strips comments, respecting quoted strings — the streaming sibling of
// the zone package's in-memory joiner. start is the physical line the
// logical line began on.
func (a *assembler) logicalLine() (text string, start int, err error) {
	var sb strings.Builder
	depth := 0
	start = a.lr.line + 1
	for {
		raw, rerr := a.lr.next()
		if rerr != nil {
			switch {
			case errors.Is(rerr, io.EOF):
				if depth > 0 {
					return "", 0, badLine{start, "EOF inside '('"}
				}
				if sb.Len() > 0 {
					// Unreachable today (depth 0 returns below), kept
					// for safety: flush a trailing partial join.
					return strings.TrimRight(sb.String(), " \t"), start, nil
				}
				return "", 0, io.EOF
			case errors.Is(rerr, errLineTooLong):
				return "", 0, badLine{a.lr.line, fmt.Sprintf("physical line exceeds %d bytes", a.max)}
			default:
				return "", 0, rerr
			}
		}
		line := raw
		inQuote := false
	scan:
		for i := 0; i < len(line); i++ {
			c := line[i]
			switch {
			case c == '"' && (i == 0 || line[i-1] != '\\'):
				inQuote = !inQuote
				sb.WriteByte(c)
			case c == ';' && !inQuote:
				break scan // comment runs to end of physical line
			case c == '(' && !inQuote:
				depth++
				sb.WriteByte(' ')
			case c == ')' && !inQuote:
				depth--
				if depth < 0 {
					return "", 0, badLine{a.lr.line, "unbalanced ')'"}
				}
				sb.WriteByte(' ')
			default:
				sb.WriteByte(c)
			}
		}
		if inQuote {
			return "", 0, badLine{a.lr.line, "unterminated quoted string"}
		}
		if depth == 0 {
			return strings.TrimRight(sb.String(), " \t"), start, nil
		}
		if sb.Len() > a.max {
			return "", 0, badLine{start, fmt.Sprintf("logical line exceeds %d bytes", a.max)}
		}
		sb.WriteByte(' ')
	}
}

// directive consumes $ORIGIN/$TTL lines (updating assembler state) and
// rejects $INCLUDE. handled is true when the line was a directive.
func (a *assembler) directive(text string, start int) (item lineItem, handled bool, fatal error) {
	trimmed := strings.TrimLeft(text, " \t")
	if !strings.HasPrefix(trimmed, "$") {
		return lineItem{}, false, nil
	}
	fieldsOf := strings.Fields(trimmed)
	switch strings.ToUpper(fieldsOf[0]) {
	case "$ORIGIN":
		if len(fieldsOf) != 2 {
			return lineItem{line: start, err: "$ORIGIN wants one argument"}, true, nil
		}
		a.origin = dnswire.CanonicalName(fieldsOf[1])
		a.directives++
		return lineItem{}, true, nil
	case "$TTL":
		if len(fieldsOf) != 2 {
			return lineItem{line: start, err: "$TTL wants one argument"}, true, nil
		}
		v, err := strconv.ParseUint(fieldsOf[1], 10, 32)
		if err != nil {
			return lineItem{line: start, err: fmt.Sprintf("$TTL: %v", err)}, true, nil
		}
		a.ttl = uint32(v)
		a.directives++
		return lineItem{}, true, nil
	case "$INCLUDE":
		// Never recoverable: silently skipping an include would
		// truncate the target list, and opening caller-controlled
		// paths from inside a dump is a non-starter.
		return lineItem{}, true, fmt.Errorf("ingest: line %d: $INCLUDE is not supported (ingest never opens secondary files)", start)
	default:
		return lineItem{line: start, err: fmt.Sprintf("unknown directive %s", fieldsOf[0])}, true, nil
	}
}

// ownerToken extracts the owner (first whitespace-delimited token) of a
// record line that starts in column one.
func ownerToken(text string) string {
	if i := strings.IndexAny(text, " \t"); i >= 0 {
		return text[:i]
	}
	return text
}
