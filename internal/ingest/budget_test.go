//go:build !race

// Memory-budget guard for the streaming ingest path. Excluded under
// the race detector, whose instrumentation inflates heap usage.
package ingest

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dnssecboot/internal/zone"
)

// syntheticDump renders n delegations under "test." with periodic glue
// and non-NS clutter — big enough (~10 MB at 150k records) that
// buffering it as parsed records visibly dwarfs the streaming window.
func syntheticDump(n int) string {
	var sb strings.Builder
	sb.Grow(n * 70)
	sb.WriteString("$ORIGIN test.\n$TTL 3600\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "zone%06d.test. IN NS ns%d.hoster%03d.test.\n", i, i%4+1, i%97)
		if i%5 == 0 {
			fmt.Fprintf(&sb, "ns1.hoster%03d.test. IN A 192.0.2.%d\n", i%97, i%250+1)
		}
		if i%50 == 0 {
			fmt.Fprintf(&sb, "zone%06d.test. IN TXT \"v=spf1 -all\"\n", i)
		}
	}
	return sb.String()
}

// peakHeap runs fn while a sampler goroutine tracks the high-water
// HeapAlloc, and returns that peak relative to the baseline at entry.
func peakHeap(fn func()) uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc

	var peak atomic.Uint64
	done := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		for {
			runtime.ReadMemStats(&ms)
			if h := ms.HeapAlloc; h > peak.Load() {
				peak.Store(h)
			}
			select {
			case <-done:
				return
			case <-time.After(200 * time.Microsecond):
			}
		}
	}()
	fn()
	close(done)
	<-sampled
	if p := peak.Load(); p > base {
		return p - base
	}
	return 0
}

// TestIngestPeakHeapBudget pins the tentpole's constant-memory claim:
// streaming a ~150k-record dump through the full pipeline must peak at
// under 2x the heap of the plain buffer-everything zone.Parse of the
// same input. (In practice the streaming peak is a small fraction of
// the parse peak — the 2x ceiling is the acceptance bound, with the
// dedup set and batch window as the only live state.)
func TestIngestPeakHeapBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-MB allocation churn in -short mode")
	}
	dump := syntheticDump(150_000)

	var parsed *zone.Zone
	parsePeak := peakHeap(func() {
		z, err := zone.Parse(strings.NewReader(dump), "test.")
		if err != nil {
			t.Errorf("zone.Parse: %v", err)
		}
		parsed = z
	})
	if t.Failed() {
		t.FailNow()
	}
	runtime.KeepAlive(parsed)
	parsed = nil

	var res *Result
	ingestPeak := peakHeap(func() {
		r, err := Ingest(context.Background(), strings.NewReader(dump), Config{Workers: 4})
		if err != nil {
			t.Errorf("Ingest: %v", err)
		}
		res = r
	})
	if t.Failed() {
		t.FailNow()
	}
	if res.Stats.Targets != 150_000 {
		t.Fatalf("targets = %d, want 150000", res.Stats.Targets)
	}

	t.Logf("peak heap: ingest %.1f MB vs buffered parse %.1f MB",
		float64(ingestPeak)/1e6, float64(parsePeak)/1e6)
	if ingestPeak >= 2*parsePeak {
		t.Errorf("ingest peak heap %d B >= 2x buffered parse peak %d B", ingestPeak, parsePeak)
	}
}
