package ingest

import (
	"bytes"
	"compress/gzip"
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"dnssecboot/internal/obs"
)

func ingestString(t *testing.T, input string, cfg Config) *Result {
	t.Helper()
	res, err := Ingest(context.Background(), strings.NewReader(input), cfg)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	return res
}

func gzipBytes(t *testing.T, data string) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(data)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// A dump exercising every reduction path at once: apex records, clean
// delegations, a deeper delegation deduping to its registrable parent,
// glue, out-of-zone garbage, a suffix-only owner, and a duplicate NS.
const mixedDump = `$ORIGIN uk.
$TTL 172800
@ IN SOA ns0.nic.uk. hostmaster.nic.uk. 1 7200 900 2419200 172800
@ IN NS ns0.nic.uk.
alpha.co.uk. IN NS ns1.alpha.co.uk.
alpha.co.uk. IN NS ns2.alpha.co.uk.
deep.sub.alpha.co.uk. IN NS ns1.alpha.co.uk.
beta.uk. IN NS ns1.beta.uk.
ns1.alpha.co.uk. IN A 192.0.2.1
ns1.alpha.co.uk. IN AAAA 2001:db8::1
elsewhere.com. IN NS ns1.elsewhere.com.
co.uk. IN NS ns0.nic.uk.
gamma.org.uk. IN NS ns1.gamma.org.uk.
`

func TestIngestReduction(t *testing.T) {
	res := ingestString(t, mixedDump, Config{})
	wantTargets := []string{"alpha.co.uk.", "beta.uk.", "gamma.org.uk."}
	if !reflect.DeepEqual(res.Targets, wantTargets) {
		t.Errorf("targets = %v, want %v", res.Targets, wantTargets)
	}
	s := res.Stats
	if s.Origin != "uk." {
		t.Errorf("origin = %q, want uk.", s.Origin)
	}
	if s.Records != 11 {
		t.Errorf("records = %d, want 11", s.Records)
	}
	if s.Directives != 2 {
		t.Errorf("directives = %d, want 2", s.Directives)
	}
	wantSkips := map[string]int{
		SkipNonNS:         1, // the SOA
		SkipApex:          1, // uk. NS
		SkipGlue:          2, // A + AAAA
		SkipOutOfZone:     1, // elsewhere.com.
		SkipUnregistrable: 1, // co.uk. is a public suffix
		SkipDuplicate:     2, // second alpha NS + deep.sub.alpha
	}
	if !reflect.DeepEqual(s.Skipped, wantSkips) {
		t.Errorf("skipped = %v, want %v", s.Skipped, wantSkips)
	}
	if s.Targets != len(res.Targets) {
		t.Errorf("stats.Targets = %d, want %d", s.Targets, len(res.Targets))
	}
	if s.Gzip {
		t.Error("plain input reported as gzip")
	}
}

// The emitted target list and every stat must be identical for every
// worker count — order preservation is the pipeline's core contract.
// Tiny batches force heavy reordering.
func TestIngestWorkerCountDeterminism(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("$ORIGIN test.\n")
	for i := 0; i < 3000; i++ {
		fmt.Fprintf(&sb, "zone%04d.test. IN NS ns1.zone%04d.test.\n", i, i)
		if i%7 == 0 {
			fmt.Fprintf(&sb, "ns1.zone%04d.test. IN A 192.0.2.1\n", i)
		}
		if i%11 == 0 {
			sb.WriteString("this line does not parse\n")
		}
	}
	var ref *Result
	for _, workers := range []int{1, 2, 4} {
		res := ingestString(t, sb.String(), Config{Workers: workers, BatchLines: 7})
		if ref == nil {
			ref = res
			if len(res.Targets) != 3000 {
				t.Fatalf("targets = %d, want 3000", len(res.Targets))
			}
			continue
		}
		if !reflect.DeepEqual(res.Targets, ref.Targets) {
			t.Fatalf("workers=%d: target list differs from workers=1", workers)
		}
		if !reflect.DeepEqual(res.Stats, ref.Stats) {
			t.Fatalf("workers=%d: stats differ: %+v vs %+v", workers, res.Stats, ref.Stats)
		}
	}
	// And the order is exactly first-seen input order.
	for i, tgt := range ref.Targets[:10] {
		want := fmt.Sprintf("zone%04d.test.", i)
		if tgt != want {
			t.Fatalf("target[%d] = %q, want %q", i, tgt, want)
		}
	}
}

// gzip is detected from magic bytes and must reduce to the identical
// result; only the Gzip stat may differ.
func TestIngestGzipVsPlain(t *testing.T) {
	plain := ingestString(t, mixedDump, Config{})
	gz, err := Ingest(context.Background(), bytes.NewReader(gzipBytes(t, mixedDump)), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !gz.Stats.Gzip {
		t.Error("gzip input not detected")
	}
	gz.Stats.Gzip = false
	if !reflect.DeepEqual(gz.Targets, plain.Targets) {
		t.Errorf("gzip targets differ: %v vs %v", gz.Targets, plain.Targets)
	}
	if !reflect.DeepEqual(gz.Stats, plain.Stats) {
		t.Errorf("gzip stats differ: %+v vs %+v", gz.Stats, plain.Stats)
	}
}

// A gzip stream cut mid-body is a structural failure, never a silent
// partial result.
func TestIngestTruncatedGzip(t *testing.T) {
	full := gzipBytes(t, mixedDump)
	for _, cut := range []int{3, len(full) / 2, len(full) - 1} {
		_, err := Ingest(context.Background(), bytes.NewReader(full[:cut]), Config{})
		if err == nil {
			t.Errorf("gzip truncated at %d/%d bytes ingested without error", cut, len(full))
		}
	}
}

func TestIngestCorruptGzip(t *testing.T) {
	data := gzipBytes(t, mixedDump)
	copy(data[12:], []byte{0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef})
	if _, err := Ingest(context.Background(), bytes.NewReader(data), Config{}); err == nil {
		t.Error("corrupt gzip body ingested without error")
	}
}

// CRLF, LF and a final unterminated line must all read identically.
func TestIngestMixedLineEndings(t *testing.T) {
	lf := "$ORIGIN test.\na.test. IN NS ns1.a.test.\nb.test. IN NS ns1.b.test.\nc.test. IN NS ns1.c.test.\n"
	mixed := "$ORIGIN test.\r\na.test. IN NS ns1.a.test.\nb.test. IN NS ns1.b.test.\r\nc.test. IN NS ns1.c.test."
	want := ingestString(t, lf, Config{})
	got := ingestString(t, mixed, Config{})
	if !reflect.DeepEqual(got.Targets, want.Targets) {
		t.Errorf("mixed endings targets = %v, want %v", got.Targets, want.Targets)
	}
	if got.Stats.Records != want.Stats.Records {
		t.Errorf("mixed endings records = %d, want %d", got.Stats.Records, want.Stats.Records)
	}
}

// A multi-line parenthesised SOA with comments inside the parens — the
// classic CZDS header shape — must assemble into one record.
func TestIngestParenthesisedRecordWithComments(t *testing.T) {
	input := `$ORIGIN test.
@ IN SOA ns0.test. hostmaster.test. ( ; serial follows
		2024010101 ; serial
		7200       ; refresh
		900        ; retry
		2419200    ; expire
		172800 )   ; minimum
a.test. IN NS ns1.a.test.
`
	res := ingestString(t, input, Config{})
	if res.Stats.Records != 2 {
		t.Fatalf("records = %d, want 2 (SOA + NS); errors: %v", res.Stats.Records, res.Stats.FirstErrors)
	}
	if len(res.Targets) != 1 || res.Targets[0] != "a.test." {
		t.Errorf("targets = %v, want [a.test.]", res.Targets)
	}
	if res.Stats.LogicalLines != 3 { // $ORIGIN + SOA + NS
		t.Errorf("logical lines = %d, want 3", res.Stats.LogicalLines)
	}
}

func TestIngestBlankOwnerContinuation(t *testing.T) {
	input := "$ORIGIN test.\n" +
		"a.test. IN NS ns1.a.test.\n" +
		"\tIN NS ns2.a.test.\n" + // same owner: duplicate registrable
		"b.test. IN NS ns1.b.test.\n"
	res := ingestString(t, input, Config{})
	if !reflect.DeepEqual(res.Targets, []string{"a.test.", "b.test."}) {
		t.Errorf("targets = %v", res.Targets)
	}
	if res.Stats.Skipped[SkipDuplicate] != 1 {
		t.Errorf("duplicate skips = %d, want 1", res.Stats.Skipped[SkipDuplicate])
	}
}

// Unbalanced parentheses: counted in lenient mode, positional fatal in
// strict mode; subsequent records still ingest in lenient mode.
func TestIngestUnbalancedParens(t *testing.T) {
	input := "$ORIGIN test.\n" +
		"bad.test. IN TXT )broken\n" +
		"good.test. IN NS ns1.good.test.\n"
	res := ingestString(t, input, Config{})
	if res.Stats.Skipped[SkipBadRecord] != 1 {
		t.Errorf("bad_record skips = %d, want 1", res.Stats.Skipped[SkipBadRecord])
	}
	if !reflect.DeepEqual(res.Targets, []string{"good.test."}) {
		t.Errorf("targets = %v, want [good.test.]", res.Targets)
	}
	if len(res.Stats.FirstErrors) != 1 || !strings.Contains(res.Stats.FirstErrors[0], "line 2") {
		t.Errorf("FirstErrors = %v, want one entry naming line 2", res.Stats.FirstErrors)
	}

	_, err := Ingest(context.Background(), strings.NewReader(input), Config{Strict: true})
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("strict error = %v, want positional line 2 failure", err)
	}
}

// An unterminated '(' at EOF is a structural line problem with the
// position of the opening line.
func TestIngestEOFInsideParens(t *testing.T) {
	input := "$ORIGIN test.\na.test. IN SOA ns0.test. h.test. ( 1 2 3\n"
	res := ingestString(t, input, Config{})
	if res.Stats.Skipped[SkipBadRecord] != 1 {
		t.Errorf("bad_record skips = %d, want 1; errors %v", res.Stats.Skipped[SkipBadRecord], res.Stats.FirstErrors)
	}
	if len(res.Stats.FirstErrors) != 1 || !strings.Contains(res.Stats.FirstErrors[0], "EOF inside '('") {
		t.Errorf("FirstErrors = %v", res.Stats.FirstErrors)
	}
}

// Logical lines beyond bufio's 64KiB default but under the cap are
// legitimate (DNSKEY sets, fat TXT) and must parse.
func TestIngestLongLegalLogicalLine(t *testing.T) {
	payload := strings.Repeat("a", 100<<10)
	input := "$ORIGIN test.\n" +
		"big.test. IN TXT ( \"" + payload[:50<<10] + "\"\n\"" + payload[50<<10:] + "\" )\n" +
		"a.test. IN NS ns1.a.test.\n"
	res := ingestString(t, input, Config{})
	if res.Stats.Records != 2 {
		t.Fatalf("records = %d, want 2; errors %v", res.Stats.Records, res.Stats.FirstErrors)
	}
	if res.Stats.Skipped[SkipNonNS] != 1 {
		t.Errorf("non_ns skips = %d, want 1 (the TXT)", res.Stats.Skipped[SkipNonNS])
	}
}

// Over-long physical lines are skipped in O(1) memory and the rest of
// the dump still ingests; strict mode aborts with the position instead.
func TestIngestOverlongLineSkipped(t *testing.T) {
	input := "$ORIGIN test.\n" +
		"huge.test. IN TXT \"" + strings.Repeat("x", 8192) + "\"\n" +
		"a.test. IN NS ns1.a.test.\n"
	cfg := Config{MaxLineBytes: 1024}
	res := ingestString(t, input, cfg)
	if res.Stats.Skipped[SkipBadRecord] != 1 {
		t.Errorf("bad_record skips = %d, want 1", res.Stats.Skipped[SkipBadRecord])
	}
	if len(res.Stats.FirstErrors) != 1 || !strings.Contains(res.Stats.FirstErrors[0], "exceeds 1024 bytes") {
		t.Errorf("FirstErrors = %v, want a 1024-byte cap message", res.Stats.FirstErrors)
	}
	if !reflect.DeepEqual(res.Targets, []string{"a.test."}) {
		t.Errorf("targets = %v, want [a.test.]", res.Targets)
	}

	cfg.Strict = true
	if _, err := Ingest(context.Background(), strings.NewReader(input), cfg); err == nil {
		t.Error("strict mode ingested an over-long line without error")
	}
}

// A parenthesised join exceeding the cap is also bounded: the assembler
// gives up on the logical line, it does not buffer it.
func TestIngestOverlongLogicalJoinSkipped(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("$ORIGIN test.\nbig.test. IN TXT (\n")
	for i := 0; i < 10; i++ {
		sb.WriteString("\"" + strings.Repeat("y", 400) + "\"\n")
	}
	sb.WriteString(")\na.test. IN NS ns1.a.test.\n")
	res := ingestString(t, sb.String(), Config{MaxLineBytes: 1024})
	if res.Stats.Skipped[SkipBadRecord] == 0 {
		t.Errorf("over-long logical join not skipped; errors %v", res.Stats.FirstErrors)
	}
	if len(res.Targets) != 1 || res.Targets[0] != "a.test." {
		t.Errorf("targets = %v, want [a.test.]", res.Targets)
	}
}

// $INCLUDE is always fatal, in both modes, with the position: silently
// skipping it would truncate the target list.
func TestIngestIncludeIsFatal(t *testing.T) {
	input := "$ORIGIN test.\na.test. IN NS ns1.a.test.\n$INCLUDE other.zone\nb.test. IN NS ns1.b.test.\n"
	for _, strict := range []bool{false, true} {
		_, err := Ingest(context.Background(), strings.NewReader(input), Config{Strict: strict})
		if err == nil {
			t.Fatalf("strict=%v: $INCLUDE ingested without error", strict)
		}
		if !strings.Contains(err.Error(), "$INCLUDE") || !strings.Contains(err.Error(), "line 3") {
			t.Errorf("strict=%v: error = %v, want $INCLUDE at line 3", strict, err)
		}
	}
}

// Owner names over the 255-octet wire limit parse at the presentation
// layer but must not become scan targets.
func TestIngestOverlongOwnerName(t *testing.T) {
	label := strings.Repeat("a", 63)
	owner := strings.Join([]string{label, label, label, label, label}, ".") + ".test." // 5*64+5 > 255
	input := "$ORIGIN test.\n" + owner + " IN NS ns1.a.test.\na.test. IN NS ns1.a.test.\n"
	res := ingestString(t, input, Config{})
	if res.Stats.Skipped[SkipBadRecord] != 1 {
		t.Errorf("bad_record skips = %d, want 1; errors %v", res.Stats.Skipped[SkipBadRecord], res.Stats.FirstErrors)
	}
	if !reflect.DeepEqual(res.Targets, []string{"a.test."}) {
		t.Errorf("targets = %v, want [a.test.]", res.Targets)
	}
}

// Apex autodetection: first $ORIGIN wins; without one, the first SOA
// owner does. Until the apex is known nothing is judged out-of-zone.
func TestIngestApexAutodetect(t *testing.T) {
	bySOA := "example.test. IN SOA ns0.example.test. h.example.test. 1 2 3 4 5\n" +
		"sub.example.test. IN NS ns1.sub.example.test.\n" +
		"other.com. IN NS ns1.other.com.\n"
	res := ingestString(t, bySOA, Config{})
	if res.Stats.Origin != "example.test." {
		t.Errorf("SOA autodetect origin = %q, want example.test.", res.Stats.Origin)
	}
	if res.Stats.Skipped[SkipOutOfZone] != 1 {
		t.Errorf("out_of_zone = %d, want 1", res.Stats.Skipped[SkipOutOfZone])
	}

	// Explicit config overrides everything.
	res = ingestString(t, bySOA, Config{Origin: "other.com."})
	if res.Stats.Origin != "other.com." {
		t.Errorf("configured origin = %q", res.Stats.Origin)
	}
	// The .test delegation is now out of zone; the other.com. NS is the
	// configured apex itself.
	if res.Stats.Skipped[SkipOutOfZone] != 1 || res.Stats.Skipped[SkipApex] != 1 {
		t.Errorf("skips = %v, want out_of_zone=1 apex=1", res.Stats.Skipped)
	}
}

func TestIngestRegistryCounters(t *testing.T) {
	reg := obs.NewRegistry()
	res, err := Ingest(context.Background(), strings.NewReader(mixedDump), Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("ingest.targets").Value(); got != int64(len(res.Targets)) {
		t.Errorf("ingest.targets = %d, want %d", got, len(res.Targets))
	}
	if got := reg.Counter("ingest.records").Value(); got != int64(res.Stats.Records) {
		t.Errorf("ingest.records = %d, want %d", got, res.Stats.Records)
	}
	if got := reg.Counter("ingest.skip.glue").Value(); got != int64(res.Stats.Skipped[SkipGlue]) {
		t.Errorf("ingest.skip.glue = %d, want %d", got, res.Stats.Skipped[SkipGlue])
	}
}

func TestIngestContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Ingest(ctx, strings.NewReader(mixedDump), Config{})
	if err == nil {
		t.Error("cancelled context ingested without error")
	}
}

func TestIngestEmptyInput(t *testing.T) {
	res := ingestString(t, "", Config{})
	if res.Stats.Records != 0 || len(res.Targets) != 0 {
		t.Errorf("empty input produced %+v", res.Stats)
	}
	if res.Stats.Origin != "." {
		t.Errorf("empty input origin = %q, want .", res.Stats.Origin)
	}
}

func TestFileMissing(t *testing.T) {
	if _, err := File(context.Background(), "testdata/does-not-exist.zone", Config{}); err == nil {
		t.Error("missing file ingested without error")
	}
}

// FirstErrors is a bounded sample, not an unbounded log.
func TestIngestErrorSampleBounded(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("$ORIGIN test.\n")
	for i := 0; i < 50; i++ {
		sb.WriteString("not a record\n")
	}
	res := ingestString(t, sb.String(), Config{})
	if res.Stats.Skipped[SkipBadRecord] != 50 {
		t.Errorf("bad_record = %d, want 50", res.Stats.Skipped[SkipBadRecord])
	}
	if len(res.Stats.FirstErrors) != maxErrorSamples {
		t.Errorf("FirstErrors sample = %d entries, want %d", len(res.Stats.FirstErrors), maxErrorSamples)
	}
}
