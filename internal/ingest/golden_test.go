package ingest

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dnssecboot/internal/core"
	"dnssecboot/internal/ecosystem"
)

// Golden end-to-end fixture: a checked-in gzipped mini-TLD dump — the
// paper's "uk." zone in miniature, populated with the real .uk targets
// of the seed-1/scale-500000 synthetic world plus every kind of
// real-dump clutter (CRLF lines, parenthesised SOA with inline
// comments, blank owners, uppercase and relative spellings, glue,
// out-of-zone garbage, suffix-only owners, malformed lines, one fat
// TXT) — must reduce to a byte-stable target list and stats, at every
// worker count, gzipped or not, and the scan report over those targets
// must match the checked-in headline. Refresh after an intentional
// change with:
//
//	go test ./internal/ingest/ -run TestGoldenDump -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden dump fixtures")

const (
	goldenDumpPath     = "testdata/golden/uk_dump.zone.gz"
	goldenTargetsPath  = "testdata/golden/targets.txt"
	goldenStatsPath    = "testdata/golden/stats.json"
	goldenHeadlinePath = "testdata/golden/headline.txt"
)

// ukWorldTargets returns the .uk registrable domains of the golden
// world, in world order.
func ukWorldTargets(t *testing.T) []string {
	t.Helper()
	w, err := ecosystem.Generate(ecosystem.Config{Seed: 1, ScaleDivisor: 500_000})
	if err != nil {
		t.Fatal(err)
	}
	var uk []string
	for _, tgt := range w.Targets {
		if strings.HasSuffix(tgt, ".uk.") {
			uk = append(uk, tgt)
		}
	}
	if len(uk) == 0 {
		t.Fatal("golden world has no .uk targets")
	}
	return uk
}

// goldenDumpText renders the adversarial mini-TLD dump. It is a pure
// function of the target list, so -update-golden is reproducible.
func goldenDumpText(uk []string) string {
	var sb strings.Builder
	sb.WriteString("; uk. zone dump, golden ingest fixture\n")
	sb.WriteString(";\n\n")
	sb.WriteString("$ORIGIN uk.\r\n") // CRLF on purpose
	sb.WriteString("$TTL 172800\n")
	sb.WriteString("@ IN SOA ns0.nic.uk. hostmaster.nic.uk. ( ; v=serial\n")
	sb.WriteString("\t2024010101 ; serial\n")
	sb.WriteString("\t7200 ; refresh\n")
	sb.WriteString("\t900 ( ) ; retry, with noise parens\n")
	sb.WriteString("\t2419200 172800 )\n")
	sb.WriteString("@ IN NS ns0.nic.uk.\n")
	sb.WriteString("ns0.nic.uk. IN A 192.0.2.53\n")
	sb.WriteString("co.uk. IN NS ns0.nic.uk. ; public suffix, not registrable\n\n")

	for i, tgt := range uk {
		ns1 := "ns1." + tgt
		switch i % 5 {
		case 0: // plain, plus blank-owner continuation and glue
			fmt.Fprintf(&sb, "%s IN NS %s\r\n", tgt, ns1)
			fmt.Fprintf(&sb, "\tIN NS ns2.%s\n", tgt)
			fmt.Fprintf(&sb, "%s IN A 192.0.2.%d\n", ns1, i%250+1)
		case 1: // uppercase first spelling
			fmt.Fprintf(&sb, "%s IN NS %s\n", strings.ToUpper(tgt), ns1)
			fmt.Fprintf(&sb, "%s IN NS ns2.%s\n", tgt, tgt)
		case 2: // relative owner against $ORIGIN uk.
			fmt.Fprintf(&sb, "%s IN NS %s\n", strings.TrimSuffix(tgt, ".uk."), ns1)
		case 3: // deep delegation under the same registrable name
			fmt.Fprintf(&sb, "%s IN NS %s\n", tgt, ns1)
			fmt.Fprintf(&sb, "www.sub.%s IN NS %s\n", tgt, ns1)
		default: // AAAA glue
			fmt.Fprintf(&sb, "%s 172800 IN NS %s\n", tgt, ns1)
			fmt.Fprintf(&sb, "%s IN AAAA 2001:db8::%d\n", ns1, i%200+1)
		}
	}

	// Clutter every real dump drags along.
	sb.WriteString("\nelsewhere.com. IN NS ns1.elsewhere.com. ; out of zone\n")
	sb.WriteString("this is not a record\n")
	longOwner := strings.Repeat(strings.Repeat("x", 63)+".", 5) + "uk."
	fmt.Fprintf(&sb, "%s IN NS ns0.nic.uk. ; owner over 255 octets\n", longOwner)
	sb.WriteString("bigtxt.uk. IN TXT (\n")
	for j := 0; j < 18; j++ {
		fmt.Fprintf(&sb, "\"%s\"\n", strings.Repeat("t", 4000))
	}
	sb.WriteString(") ; ~72KiB logical line\n")
	return sb.String()
}

func mustReadGolden(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture (run with -update-golden to create it): %v", err)
	}
	return b
}

func marshalStats(t *testing.T, s Stats) []byte {
	t.Helper()
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

func goldenHeadline(t *testing.T, targets []string) string {
	t.Helper()
	study, err := core.RunStream(context.Background(), core.StreamOptions{
		Options: core.Options{
			Seed:         1,
			ScaleDivisor: 500_000,
			Concurrency:  8,
			Stateless:    true,
			Targets:      targets,
		},
	})
	if err != nil {
		t.Fatalf("RunStream: %v", err)
	}
	return study.Report.Headline() + "\n"
}

func TestGoldenDump(t *testing.T) {
	if *updateGolden {
		uk := ukWorldTargets(t)
		text := goldenDumpText(uk)
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write([]byte(text)); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenDumpPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenDumpPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := File(context.Background(), goldenDumpPath, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTargetsPath, []byte(strings.Join(res.Targets, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenStatsPath, marshalStats(t, res.Stats), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenHeadlinePath, []byte(goldenHeadline(t, res.Targets)), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote golden fixtures: %d targets, %d records", res.Stats.Targets, res.Stats.Records)
		return
	}

	wantTargets := strings.Split(strings.TrimRight(string(mustReadGolden(t, goldenTargetsPath)), "\n"), "\n")
	wantStats := mustReadGolden(t, goldenStatsPath)

	// Every worker count must reproduce the fixtures byte-for-byte.
	var ref *Result
	for _, workers := range []int{1, 2, 4} {
		res, err := File(context.Background(), goldenDumpPath, Config{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(res.Targets, wantTargets) {
			t.Fatalf("workers=%d: targets diverge from fixture\n got %d: %v\nwant %d: %v",
				workers, len(res.Targets), res.Targets, len(wantTargets), wantTargets)
		}
		if got := marshalStats(t, res.Stats); !bytes.Equal(got, wantStats) {
			t.Fatalf("workers=%d: stats diverge from fixture\n got %s\nwant %s", workers, got, wantStats)
		}
		ref = res
	}

	// The decompressed dump must reduce identically (Gzip flag aside).
	gz := mustReadGolden(t, goldenDumpPath)
	zr, err := gzip.NewReader(bytes.NewReader(gz))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := Ingest(context.Background(), bytes.NewReader(plain), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pres.Targets, ref.Targets) {
		t.Error("plain ingest targets differ from gzip ingest")
	}
	pres.Stats.Gzip = true
	if !reflect.DeepEqual(pres.Stats, ref.Stats) {
		t.Errorf("plain ingest stats differ from gzip ingest: %+v vs %+v", pres.Stats, ref.Stats)
	}

	// The dump generator must still describe the checked-in bytes: a
	// drifted generator would make -update-golden silently rewrite
	// fixtures that no longer match what this test exercised.
	if regen := goldenDumpText(ukWorldTargets(t)); regen != string(plain) {
		t.Error("goldenDumpText no longer reproduces the checked-in dump; rerun -update-golden")
	}
}

// The scan report over the ingested targets — the full paper pipeline
// fed from a zone dump instead of the synthetic target list — is pinned
// byte-for-byte.
func TestGoldenDumpHeadline(t *testing.T) {
	if *updateGolden {
		t.Skip("fixtures rewritten by TestGoldenDump")
	}
	if testing.Short() {
		t.Skip("full world generation in -short mode")
	}
	res, err := File(context.Background(), goldenDumpPath, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := string(mustReadGolden(t, goldenHeadlinePath))
	if got := goldenHeadline(t, res.Targets); got != want {
		t.Errorf("headline diverges from fixture\n got: %s\nwant: %s", got, want)
	}
}
