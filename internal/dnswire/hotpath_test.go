package dnswire

import (
	"bytes"
	"testing"
)

// TestUnpackRecordsTrailingBytes pins the trailing-garbage fix: Unpack
// used to silently accept octets after the last record, normalising
// malformed responders into clean ones. The count must now surface in
// Message.TrailingBytes (recording, not rejection — the fuzz corpus
// and real-world lenient parsing both depend on the parse succeeding).
func TestUnpackRecordsTrailingBytes(t *testing.T) {
	m := NewQuery(1, "example.com.", TypeCDS)
	m.Response = true
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if clean.TrailingBytes != 0 {
		t.Errorf("clean message has TrailingBytes = %d", clean.TrailingBytes)
	}
	dirty, err := Unpack(append(append([]byte{}, wire...), 0xDE, 0xAD, 0xBE))
	if err != nil {
		t.Fatal(err)
	}
	if dirty.TrailingBytes != 3 {
		t.Errorf("TrailingBytes = %d, want 3", dirty.TrailingBytes)
	}
	// A reused Message must not carry a stale count forward.
	if err := dirty.UnpackFrom(wire); err != nil {
		t.Fatal(err)
	}
	if dirty.TrailingBytes != 0 {
		t.Errorf("stale TrailingBytes = %d after clean reparse", dirty.TrailingBytes)
	}
}

// TestPackTruncatingFloor pins the documented floor: when even the
// header+question skeleton exceeds the limit, PackTruncating returns it
// as-is with TC set (it cannot shrink further), and the OPT record is
// dropped when question+OPT alone are over the limit but the bare
// question fits.
func TestPackTruncatingFloor(t *testing.T) {
	long := "a-rather-long-first-label-for-the-floor-test.example.com."
	m := &Message{ID: 5, Response: true,
		Question: []Question{{Name: long, Type: TypeTXT, Class: ClassIN}}}
	m.Answer = append(m.Answer, RR{Name: long, Class: ClassIN, TTL: 60,
		Data: &TXT{Strings: []string{"payload payload payload payload payload"}}})
	m.SetEDNS(EDNS{UDPSize: 1232, DO: true})

	skeleton := headerLen + len(long) + 1 + 4 // name + root byte + type/class
	optLen := 11                              // ". OPT" pseudo-record: 1+2+2+4+2

	// Limit admits question+OPT but not the answer: records drop, OPT stays.
	out, err := m.PackTruncating(skeleton + optLen)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(out)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Truncated || len(got.Answer) != 0 {
		t.Errorf("TC=%v answers=%d, want TC with empty answer", got.Truncated, len(got.Answer))
	}
	if _, ok := got.GetEDNS(); !ok {
		t.Error("OPT dropped although it fit within the limit")
	}

	// Limit admits the question but not question+OPT: the OPT goes too.
	out, err = m.PackTruncating(skeleton + optLen - 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) > skeleton+optLen-1 {
		t.Errorf("packed %d bytes, exceeds limit %d although dropping OPT would fit", len(out), skeleton+optLen-1)
	}
	got, err = Unpack(out)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Truncated {
		t.Error("TC bit not set after dropping OPT")
	}
	if _, ok := got.GetEDNS(); ok {
		t.Error("OPT survived a limit it cannot fit")
	}

	// Limit below the skeleton: the floor is returned as-is (documented
	// to exceed limit by the question's encoding), never an error.
	out, err = m.PackTruncating(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != skeleton {
		t.Errorf("floor pack = %d bytes, want the %d-byte header+question skeleton", len(out), skeleton)
	}
	got, err = Unpack(out)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Truncated || len(got.Question) != 1 {
		t.Errorf("floor message TC=%v questions=%d", got.Truncated, len(got.Question))
	}
}

// TestUnpackFromReuseMatchesFresh drives the unpack-into reuse path
// across messages of different shapes and checks each reparse is
// byte-equivalent (via repack) to a fresh Unpack — storage reuse must
// never leak a previous message's contents into the next.
func TestUnpackFromReuseMatchesFresh(t *testing.T) {
	big := sampleHotpathMessage()
	small := NewQuery(9, "x.org.", TypeA)
	small.Response = true
	txt := &Message{ID: 11, Response: true,
		Question: []Question{{Name: "t.example.", Type: TypeTXT, Class: ClassIN}},
		Answer: []RR{{Name: "t.example.", Class: ClassIN, TTL: 5,
			Data: &TXT{Strings: []string{"one", "two"}}}}}

	var reused Message
	for _, m := range []*Message{big, small, txt, big, small} {
		wire, err := m.Pack()
		if err != nil {
			t.Fatal(err)
		}
		if err := reused.UnpackFrom(wire); err != nil {
			t.Fatal(err)
		}
		fresh, err := Unpack(wire)
		if err != nil {
			t.Fatal(err)
		}
		rw, err := reused.Pack()
		if err != nil {
			t.Fatal(err)
		}
		fw, err := fresh.Pack()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rw, fw) {
			t.Errorf("reused reparse of %q diverged from fresh unpack", m.Summary())
		}
	}
}

// sampleHotpathMessage is a CDS answer with signature and EDNS, the
// shape the scanner sees on every signal query.
func sampleHotpathMessage() *Message {
	m := NewQuery(1, "example.com.", TypeCDS)
	m.Response = true
	m.Authoritative = true
	m.Answer = []RR{
		{Name: "example.com.", Class: ClassIN, TTL: 3600,
			Data: &CDS{DS: DS{KeyTag: 4711, Algorithm: 13, DigestType: 2, Digest: make([]byte, 32)}}},
		{Name: "example.com.", Class: ClassIN, TTL: 3600,
			Data: &RRSIG{TypeCovered: TypeCDS, Algorithm: 13, Labels: 2,
				OrigTTL: 3600, Expiration: 1767225600, Inception: 1764547200, KeyTag: 4711,
				SignerName: "example.com.", Signature: make([]byte, 64)}},
	}
	m.SetEDNS(EDNS{UDPSize: 1232, DO: true})
	return m
}
