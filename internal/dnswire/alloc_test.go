//go:build !race

// Allocation-regression tests for the codec hot path. Excluded under
// the race detector: race instrumentation adds bookkeeping allocations
// that would make the zero-alloc assertions meaningless.
package dnswire

import "testing"

// TestAppendPackAllocFree pins the pooled-builder pack path at zero
// allocations once the output buffer has grown to size.
func TestAppendPackAllocFree(t *testing.T) {
	m := sampleHotpathMessage()
	var buf []byte
	var err error
	if buf, err = m.AppendPack(buf[:0]); err != nil { // warm the buffer
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		out, err := m.AppendPack(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		buf = out
	})
	if avg > 0.1 {
		t.Errorf("AppendPack allocates %.2f/op in steady state, want 0", avg)
	}
}

// TestUnpackFromAllocFree pins the pooled-parser unpack-into path at
// zero allocations once the reused Message's storage matches the shape.
func TestUnpackFromAllocFree(t *testing.T) {
	wire, err := sampleHotpathMessage().Pack()
	if err != nil {
		t.Fatal(err)
	}
	var m Message
	if err := m.UnpackFrom(wire); err != nil { // warm the storage
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := m.UnpackFrom(wire); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0.1 {
		t.Errorf("UnpackFrom allocates %.2f/op in steady state, want 0", avg)
	}
}

// TestAppendRDataWireAllocFree pins the RDATA encode used by RRset
// canonical ordering and signing at zero steady-state allocations.
func TestAppendRDataWireAllocFree(t *testing.T) {
	d := &DS{KeyTag: 4711, Algorithm: 13, DigestType: 2, Digest: make([]byte, 32)}
	var buf []byte
	var err error
	if buf, err = AppendRDataWire(buf[:0], d); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		out, err := AppendRDataWire(buf[:0], d)
		if err != nil {
			t.Fatal(err)
		}
		buf = out
	})
	if avg > 0.1 {
		t.Errorf("AppendRDataWire allocates %.2f/op in steady state, want 0", avg)
	}
}
