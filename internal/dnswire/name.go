package dnswire

import (
	"errors"
	"strings"
)

// Domain-name handling. Names are carried through the library in
// presentation form: lowercase, fully qualified, with a trailing dot
// (the root is "."). CanonicalName normalises arbitrary input into that
// form. Wire encoding and decoding live in packName / unpackName.

// Errors returned by name handling.
var (
	ErrNameTooLong  = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel   = errors.New("dnswire: empty label")
	ErrBadPointer   = errors.New("dnswire: bad compression pointer")
)

const (
	maxNameWireLen = 255
	maxLabelLen    = 63
)

// CanonicalName lowercases s and ensures it is fully qualified. The
// empty string and "." both normalise to the root ".".
func CanonicalName(s string) string {
	if s == "" || s == "." {
		return "."
	}
	s = strings.ToLower(s)
	if !strings.HasSuffix(s, ".") {
		s += "."
	}
	return s
}

// SplitLabels splits a presentation-form name into its labels, not
// including the root. SplitLabels(".") returns nil.
func SplitLabels(name string) []string {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return nil
	}
	return strings.Split(name, ".")
}

// CountLabels returns the number of labels in name, excluding the root.
func CountLabels(name string) int {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return 0
	}
	return strings.Count(name, ".") + 1
}

// Parent returns the name with its leftmost label removed; the parent of
// the root is the root.
func Parent(name string) string {
	name = CanonicalName(name)
	if name == "." {
		return "."
	}
	i := strings.IndexByte(name, '.')
	if i < 0 || i == len(name)-1 {
		return "."
	}
	return name[i+1:]
}

// IsSubdomain reports whether child is equal to or underneath parent.
// Both arguments are normalised before comparison.
func IsSubdomain(child, parent string) bool {
	child, parent = CanonicalName(child), CanonicalName(parent)
	if parent == "." {
		return true
	}
	if child == parent {
		return true
	}
	return strings.HasSuffix(child, "."+parent)
}

// Join prepends labels to a name: Join("_dsboot", "example.com.")
// yields "_dsboot.example.com.".
func Join(prefix, name string) string {
	name = CanonicalName(name)
	if name == "." {
		return CanonicalName(prefix)
	}
	return CanonicalName(prefix + "." + name)
}

// NameWireLength returns the encoded (uncompressed) length of name in
// octets, and whether the name is valid. It walks the labels in place
// (no splitting): this runs once per packed name, so it must not
// allocate.
func NameWireLength(name string) (int, error) {
	name = CanonicalName(name)
	if name == "." {
		return 1, nil
	}
	n := 1 // terminal root byte
	labelLen := 0
	for i := 0; i < len(name); i++ {
		if name[i] != '.' {
			labelLen++
			continue
		}
		if labelLen == 0 {
			return 0, ErrEmptyLabel
		}
		if labelLen > maxLabelLen {
			return 0, ErrLabelTooLong
		}
		n += 1 + labelLen
		labelLen = 0
	}
	// CanonicalName guarantees a trailing dot, so the last label was
	// flushed by the loop.
	if n > maxNameWireLen {
		return 0, ErrNameTooLong
	}
	return n, nil
}

// packName appends the wire encoding of name to buf. If cmap is non-nil,
// compression pointers are emitted for suffixes already present in the
// message, and new suffixes (at offsets representable in 14 bits) are
// registered. Names are packed in their canonical (lowercase) form.
func packName(buf []byte, name string, cmap map[string]int) ([]byte, error) {
	return packNameOffset(buf, 0, name, cmap)
}

// packNameOffset is packName for a message that starts at buf[base]:
// compression offsets are registered and emitted relative to base, so a
// message can be appended to a buffer that already holds other data.
func packNameOffset(buf []byte, base int, name string, cmap map[string]int) ([]byte, error) {
	name = CanonicalName(name)
	if _, err := NameWireLength(name); err != nil {
		return nil, err
	}
	for name != "." {
		if cmap != nil {
			if off, ok := cmap[name]; ok {
				return append(buf, byte(0xC0|off>>8), byte(off)), nil
			}
			if len(buf)-base < 0x3FFF {
				cmap[name] = len(buf) - base
			}
		}
		label := name
		if i := strings.IndexByte(name, '.'); i >= 0 {
			label, name = name[:i], name[i+1:]
		}
		if name == "" {
			name = "."
		}
		buf = append(buf, byte(len(label)))
		buf = append(buf, label...)
	}
	return append(buf, 0), nil
}

// unpackName decodes a (possibly compressed) name from msg starting at
// off. It returns the canonical presentation form and the offset of the
// first byte after the name in the original (non-pointer) stream.
func unpackName(msg []byte, off int) (string, int, error) {
	buf, end, err := appendUnpackedName(nil, msg, off)
	if err != nil {
		return "", 0, err
	}
	if len(buf) == 0 {
		return ".", end, nil
	}
	return string(buf), end, nil
}

var errReservedLabel = errors.New("dnswire: reserved label type")

// appendUnpackedName decodes a (possibly compressed) name from msg
// starting at off, appending its canonical presentation bytes to dst
// (empty output means the root "."). It returns dst and the offset of
// the first byte after the name in the original (non-pointer) stream.
// Hot-path callers pass a reused scratch buffer and intern the result.
func appendUnpackedName(dst []byte, msg []byte, off int) ([]byte, int, error) {
	start := len(dst)
	ptrBudget := 32 // defends against pointer loops
	end := -1       // offset after the name in the outer stream
	for {
		if off >= len(msg) {
			return dst, 0, errTruncated
		}
		c := int(msg[off])
		switch {
		case c == 0:
			if end < 0 {
				end = off + 1
			}
			return dst, end, nil
		case c&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return dst, 0, errTruncated
			}
			ptr := (c&0x3F)<<8 | int(msg[off+1])
			if end < 0 {
				end = off + 2
			}
			if ptr >= off {
				// Pointers must point strictly backwards.
				return dst, 0, ErrBadPointer
			}
			ptrBudget--
			if ptrBudget == 0 {
				return dst, 0, ErrBadPointer
			}
			off = ptr
		case c&0xC0 != 0:
			return dst, 0, errReservedLabel
		default:
			if off+1+c > len(msg) {
				return dst, 0, errTruncated
			}
			if len(dst)-start+c+1 > maxNameWireLen*4 {
				return dst, 0, ErrNameTooLong
			}
			for _, ch := range msg[off+1 : off+1+c] {
				if ch >= 'A' && ch <= 'Z' {
					ch += 'a' - 'A'
				}
				dst = append(dst, ch)
			}
			dst = append(dst, '.')
			off += 1 + c
		}
	}
}

var errTruncated = errors.New("dnswire: message truncated")
