package dnswire

import (
	"net/netip"
	"reflect"
	"testing"
)

func mustPack(t *testing.T, m *Message) []byte {
	t.Helper()
	out, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	return out
}

func roundTrip(t *testing.T, m *Message) *Message {
	t.Helper()
	out := mustPack(t, m)
	got, err := Unpack(out)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	return got
}

func TestMessageHeaderRoundTrip(t *testing.T) {
	m := &Message{
		ID:               0xBEEF,
		Response:         true,
		Opcode:           OpcodeQuery,
		Authoritative:    true,
		RecursionDesired: true,
		AuthenticData:    true,
		Rcode:            RcodeNXDomain,
		Question:         []Question{{Name: "example.com.", Type: TypeSOA, Class: ClassIN}},
	}
	got := roundTrip(t, m)
	if got.ID != m.ID || !got.Response || !got.Authoritative || !got.RecursionDesired ||
		!got.AuthenticData || got.Rcode != RcodeNXDomain {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Question) != 1 || got.Question[0] != m.Question[0] {
		t.Errorf("question mismatch: %+v", got.Question)
	}
}

func sampleRRs() []RR {
	ksk := &DNSKEY{Flags: DNSKEYFlagZone | DNSKEYFlagSEP, Protocol: 3, Algorithm: AlgEd25519, PublicKey: make([]byte, 32)}
	return []RR{
		{Name: "example.com.", Class: ClassIN, TTL: 3600, Data: &A{Addr: netip.MustParseAddr("192.0.2.1")}},
		{Name: "example.com.", Class: ClassIN, TTL: 3600, Data: &AAAA{Addr: netip.MustParseAddr("2001:db8::1")}},
		{Name: "example.com.", Class: ClassIN, TTL: 3600, Data: NewNS("ns1.example.net.")},
		{Name: "www.example.com.", Class: ClassIN, TTL: 60, Data: NewCNAME("example.com.")},
		{Name: "example.com.", Class: ClassIN, TTL: 3600, Data: &SOA{
			MName: "ns1.example.net.", RName: "hostmaster.example.com.",
			Serial: 2025070501, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300}},
		{Name: "example.com.", Class: ClassIN, TTL: 3600, Data: &MX{Preference: 10, Host: "mail.example.com."}},
		{Name: "example.com.", Class: ClassIN, TTL: 3600, Data: &TXT{Strings: []string{"v=spf1 -all", "second"}}},
		{Name: "_sip._tcp.example.com.", Class: ClassIN, TTL: 3600, Data: &SRV{Priority: 1, Weight: 2, Port: 5060, Target: "sip.example.com."}},
		{Name: "example.com.", Class: ClassIN, TTL: 3600, Data: &DS{KeyTag: 12345, Algorithm: AlgECDSAP256SHA256, DigestType: DigestSHA256, Digest: make([]byte, 32)}},
		{Name: "example.com.", Class: ClassIN, TTL: 3600, Data: &CDS{DS{KeyTag: 12345, Algorithm: AlgECDSAP256SHA256, DigestType: DigestSHA384, Digest: make([]byte, 48)}}},
		{Name: "example.com.", Class: ClassIN, TTL: 3600, Data: ksk},
		{Name: "example.com.", Class: ClassIN, TTL: 3600, Data: &CDNSKEY{*ksk}},
		{Name: "example.com.", Class: ClassIN, TTL: 3600, Data: &RRSIG{
			TypeCovered: TypeA, Algorithm: AlgEd25519, Labels: 2, OrigTTL: 3600,
			Expiration: 1767225600, Inception: 1764547200, KeyTag: 4711,
			SignerName: "example.com.", Signature: make([]byte, 64)}},
		{Name: "example.com.", Class: ClassIN, TTL: 300, Data: &NSEC{
			NextDomain: "www.example.com.", Types: []Type{TypeA, TypeNS, TypeSOA, TypeRRSIG, TypeNSEC, TypeDNSKEY}}},
		{Name: "x.example.com.", Class: ClassIN, TTL: 300, Data: &NSEC3{
			HashAlg: 1, Flags: 0, Iterations: 10, Salt: []byte{0xAB, 0xCD},
			NextHashed: make([]byte, 20), Types: []Type{TypeA, TypeRRSIG}}},
		{Name: "example.com.", Class: ClassIN, TTL: 300, Data: &NSEC3PARAM{HashAlg: 1, Iterations: 10, Salt: []byte{0xAB}}},
		{Name: "example.com.", Class: ClassIN, TTL: 300, Data: &CSYNC{SOASerial: 42, Flags: 3, Types: []Type{TypeNS, TypeA, TypeAAAA}}},
		{Name: "example.com.", Class: ClassIN, TTL: 300, Data: &Generic{T: Type(9999), Octets: []byte{1, 2, 3, 4}}},
	}
}

func TestAllRDataRoundTrip(t *testing.T) {
	m := &Message{ID: 1, Response: true, Answer: sampleRRs()}
	got := roundTrip(t, m)
	if len(got.Answer) != len(m.Answer) {
		t.Fatalf("answer count %d, want %d", len(got.Answer), len(m.Answer))
	}
	for i, want := range m.Answer {
		g := got.Answer[i]
		if g.Type() != want.Type() {
			t.Errorf("rr %d type %s want %s", i, g.Type(), want.Type())
			continue
		}
		gw, err1 := RDataWire(g.Data)
		ww, err2 := RDataWire(want.Data)
		if err1 != nil || err2 != nil {
			t.Errorf("rr %d wire err %v %v", i, err1, err2)
			continue
		}
		if !reflect.DeepEqual(gw, ww) {
			t.Errorf("rr %d (%s) rdata mismatch\n got %x\nwant %x", i, g.Type(), gw, ww)
		}
		if !g.Equal(want) {
			t.Errorf("rr %d (%s) not Equal after round trip", i, g.Type())
		}
	}
}

func TestRREqualIgnoresTTLAndCase(t *testing.T) {
	a := RR{Name: "Example.COM.", Class: ClassIN, TTL: 60, Data: NewNS("NS1.example.net.")}
	b := RR{Name: "example.com.", Class: ClassIN, TTL: 3600, Data: NewNS("ns1.example.net.")}
	if !a.Equal(b) {
		t.Error("records differing only in TTL and case should be Equal")
	}
	c := RR{Name: "example.com.", Class: ClassIN, TTL: 60, Data: NewNS("ns2.example.net.")}
	if a.Equal(c) {
		t.Error("records with different targets reported Equal")
	}
}

func TestTypeBitmapRoundTrip(t *testing.T) {
	types := []Type{TypeA, TypeNS, TypeSOA, TypeTXT, TypeAAAA, TypeDS, TypeRRSIG, TypeNSEC, TypeDNSKEY, TypeCDS, TypeCDNSKEY, Type(1234)}
	buf := packTypeBitmap(nil, types)
	got, err := unpackTypeBitmap(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, types) {
		t.Errorf("bitmap round trip = %v, want %v", got, types)
	}
}

func TestTypeBitmapEmpty(t *testing.T) {
	if buf := packTypeBitmap(nil, nil); len(buf) != 0 {
		t.Errorf("empty bitmap encodes to %x", buf)
	}
	got, err := unpackTypeBitmap(nil)
	if err != nil || got != nil {
		t.Errorf("empty decode = %v, %v", got, err)
	}
}

func TestEDNSRoundTrip(t *testing.T) {
	m := NewQuery(7, "example.com.", TypeDNSKEY)
	m.SetEDNS(EDNS{UDPSize: 1232, DO: true, Options: []EDNSOption{{Code: EDNSOptionCookie, Data: []byte("cookie01")}}})
	got := roundTrip(t, m)
	e, ok := got.GetEDNS()
	if !ok {
		t.Fatal("EDNS lost in round trip")
	}
	if e.UDPSize != 1232 || !e.DO {
		t.Errorf("EDNS = %+v", e)
	}
	if len(e.Options) != 1 || e.Options[0].Code != EDNSOptionCookie || string(e.Options[0].Data) != "cookie01" {
		t.Errorf("options = %+v", e.Options)
	}
	if !got.DNSSECOK() {
		t.Error("DNSSECOK false")
	}
}

func TestExtendedRcode(t *testing.T) {
	m := &Message{ID: 9, Response: true, Rcode: RcodeBadVers}
	m.SetEDNS(EDNS{UDPSize: 512})
	got := roundTrip(t, m)
	if got.Rcode != RcodeBadVers {
		t.Errorf("extended rcode = %v, want BADVERS", got.Rcode)
	}
}

func TestPackTruncating(t *testing.T) {
	m := &Message{ID: 3, Response: true, Question: []Question{{Name: "example.com.", Type: TypeTXT, Class: ClassIN}}}
	for i := 0; i < 100; i++ {
		m.Answer = append(m.Answer, RR{Name: "example.com.", Class: ClassIN, TTL: 60,
			Data: &TXT{Strings: []string{"some reasonably long text record payload for truncation"}}})
	}
	m.SetEDNS(EDNS{UDPSize: 512, DO: true})
	out, err := m.PackTruncating(512)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) > 512 {
		t.Errorf("truncated message is %d bytes", len(out))
	}
	got, err := Unpack(out)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Truncated {
		t.Error("TC bit not set")
	}
	if len(got.Answer) != 0 {
		t.Errorf("%d answers survived truncation", len(got.Answer))
	}
	if _, ok := got.GetEDNS(); !ok {
		t.Error("OPT record dropped from truncated response")
	}
}

func TestUnpackRejectsGarbage(t *testing.T) {
	inputs := [][]byte{
		nil,
		{0, 1},
		{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0}, // qdcount=1 but no question
	}
	for _, in := range inputs {
		if _, err := Unpack(in); err == nil {
			t.Errorf("Unpack(%x) succeeded", in)
		}
	}
}

func TestUnpackRdlenMismatch(t *testing.T) {
	// A record claiming 5 bytes of A rdata.
	m := &Message{ID: 1, Response: true,
		Answer: []RR{{Name: "a.", Class: ClassIN, TTL: 1, Data: &A{Addr: netip.MustParseAddr("192.0.2.1")}}}}
	buf := mustPack(t, m)
	// rdlength field is 2 bytes before the last 4 (the A rdata).
	buf[len(buf)-5] = 5
	buf = append(buf, 0) // supply the extra byte so it's not truncated
	if _, err := Unpack(buf); err == nil {
		t.Error("rdlength mismatch accepted")
	}
}

func TestSortCanonical(t *testing.T) {
	rrs := []RR{
		{Name: "example.com.", Class: ClassIN, TTL: 60, Data: &A{Addr: netip.MustParseAddr("203.0.113.9")}},
		{Name: "example.com.", Class: ClassIN, TTL: 60, Data: &A{Addr: netip.MustParseAddr("192.0.2.1")}},
		{Name: "example.com.", Class: ClassIN, TTL: 60, Data: &A{Addr: netip.MustParseAddr("198.51.100.5")}},
	}
	if err := SortCanonical(rrs); err != nil {
		t.Fatal(err)
	}
	want := []string{"192.0.2.1", "198.51.100.5", "203.0.113.9"}
	for i, rr := range rrs {
		if rr.Data.(*A).Addr.String() != want[i] {
			t.Errorf("position %d = %s, want %s", i, rr.Data.(*A).Addr, want[i])
		}
	}
}

func TestRRsetEqual(t *testing.T) {
	a := []RR{
		{Name: "e.com.", Class: ClassIN, TTL: 60, Data: NewNS("ns1.x.")},
		{Name: "e.com.", Class: ClassIN, TTL: 60, Data: NewNS("ns2.x.")},
	}
	b := []RR{
		{Name: "E.com.", Class: ClassIN, TTL: 999, Data: NewNS("NS2.x.")},
		{Name: "e.com.", Class: ClassIN, TTL: 999, Data: NewNS("ns1.x.")},
	}
	if !RRsetEqual(a, b) {
		t.Error("equal RRsets (order/TTL/case differ) reported unequal")
	}
	c := append([]RR{}, a...)
	c[1] = RR{Name: "e.com.", Class: ClassIN, TTL: 60, Data: NewNS("ns3.x.")}
	if RRsetEqual(a, c) {
		t.Error("different RRsets reported equal")
	}
	if RRsetEqual(a, a[:1]) {
		t.Error("different-size RRsets reported equal")
	}
}

func TestGroupRRsets(t *testing.T) {
	rrs := sampleRRs()
	groups := GroupRRsets(rrs)
	key := RRsetKey{Name: "example.com.", Type: TypeA, Class: ClassIN}
	if got := groups[key]; len(got) != 1 {
		t.Errorf("A group size %d", len(got))
	}
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != len(rrs) {
		t.Errorf("grouped %d records, want %d", total, len(rrs))
	}
}

func TestTypeStringRoundTrip(t *testing.T) {
	for _, typ := range []Type{TypeA, TypeCDS, TypeCDNSKEY, TypeRRSIG, Type(4242)} {
		s := typ.String()
		got, err := TypeFromString(s)
		if err != nil || got != typ {
			t.Errorf("TypeFromString(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := TypeFromString("NOTATYPE"); err == nil {
		t.Error("bogus mnemonic accepted")
	}
}

func TestNewQuery(t *testing.T) {
	q := NewQuery(99, "Example.ORG", TypeCDS)
	if q.Question[0].Name != "example.org." || q.Question[0].Type != TypeCDS {
		t.Errorf("NewQuery = %+v", q.Question[0])
	}
	if q.Response || q.RecursionDesired {
		t.Error("NewQuery should be an iterative-style query")
	}
}

func TestMessageCompressionSavesSpace(t *testing.T) {
	m := &Message{ID: 1, Response: true,
		Question: []Question{{Name: "a.example.com.", Type: TypeNS, Class: ClassIN}}}
	for i := 0; i < 10; i++ {
		m.Answer = append(m.Answer, RR{Name: "a.example.com.", Class: ClassIN, TTL: 60, Data: NewNS("ns.example.com.")})
	}
	buf := mustPack(t, m)
	// With compression each repeated owner costs 2 bytes, so the whole
	// message stays well under the uncompressed size.
	if len(buf) > 350 {
		t.Errorf("compressed message is %d bytes", len(buf))
	}
	if _, err := Unpack(buf); err != nil {
		t.Fatal(err)
	}
}
