package dnswire

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCanonicalName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "."},
		{".", "."},
		{"Example.COM", "example.com."},
		{"example.com.", "example.com."},
		{"_dsboot.example.co.uk._signal.ns1.example.net", "_dsboot.example.co.uk._signal.ns1.example.net."},
	}
	for _, c := range cases {
		if got := CanonicalName(c.in); got != c.want {
			t.Errorf("CanonicalName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSplitCountLabels(t *testing.T) {
	if got := SplitLabels("."); got != nil {
		t.Errorf("SplitLabels(.) = %v, want nil", got)
	}
	got := SplitLabels("a.b.example.com.")
	want := []string{"a", "b", "example", "com"}
	if len(got) != len(want) {
		t.Fatalf("SplitLabels = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("label %d = %q, want %q", i, got[i], want[i])
		}
	}
	if CountLabels("example.com.") != 2 {
		t.Error("CountLabels(example.com.) != 2")
	}
	if CountLabels(".") != 0 {
		t.Error("CountLabels(.) != 0")
	}
}

func TestParent(t *testing.T) {
	cases := []struct{ in, want string }{
		{"www.example.com.", "example.com."},
		{"com.", "."},
		{".", "."},
	}
	for _, c := range cases {
		if got := Parent(c.in); got != c.want {
			t.Errorf("Parent(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestIsSubdomain(t *testing.T) {
	cases := []struct {
		child, parent string
		want          bool
	}{
		{"www.example.com.", "example.com.", true},
		{"example.com.", "example.com.", true},
		{"example.com.", ".", true},
		{"badexample.com.", "example.com.", false},
		{"com.", "example.com.", false},
		{"EXAMPLE.com", "example.COM.", true},
	}
	for _, c := range cases {
		if got := IsSubdomain(c.child, c.parent); got != c.want {
			t.Errorf("IsSubdomain(%q, %q) = %v, want %v", c.child, c.parent, got, c.want)
		}
	}
}

func TestJoin(t *testing.T) {
	if got := Join("_dsboot", "example.com."); got != "_dsboot.example.com." {
		t.Errorf("Join = %q", got)
	}
	if got := Join("_signal", "."); got != "_signal." {
		t.Errorf("Join root = %q", got)
	}
}

func TestNameWireLength(t *testing.T) {
	if n, err := NameWireLength("."); err != nil || n != 1 {
		t.Errorf("root length = %d, %v", n, err)
	}
	if n, err := NameWireLength("example.com."); err != nil || n != 13 {
		t.Errorf("example.com. length = %d, %v", n, err)
	}
	long := strings.Repeat("a", 64) + ".com."
	if _, err := NameWireLength(long); err != ErrLabelTooLong {
		t.Errorf("long label err = %v", err)
	}
	var sb strings.Builder
	for i := 0; i < 60; i++ {
		sb.WriteString("abcd.")
	}
	if _, err := NameWireLength(sb.String()); err != ErrNameTooLong {
		t.Errorf("long name err = %v", err)
	}
	if _, err := NameWireLength("a..b."); err != ErrEmptyLabel {
		t.Errorf("empty label err = %v", err)
	}
}

func TestPackUnpackNameRoundTrip(t *testing.T) {
	names := []string{
		".", "com.", "example.com.", "a.very.deep.name.example.org.",
		"_dsboot.example.co.uk._signal.ns1.example.net.",
	}
	for _, n := range names {
		buf, err := packName(nil, n, nil)
		if err != nil {
			t.Fatalf("packName(%q): %v", n, err)
		}
		got, off, err := unpackName(buf, 0)
		if err != nil {
			t.Fatalf("unpackName(%q): %v", n, err)
		}
		if got != n {
			t.Errorf("round trip %q -> %q", n, got)
		}
		if off != len(buf) {
			t.Errorf("offset after %q = %d, want %d", n, off, len(buf))
		}
	}
}

func TestPackNameLowercases(t *testing.T) {
	buf, err := packName(nil, "ExAmPlE.CoM.", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := unpackName(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != "example.com." {
		t.Errorf("got %q", got)
	}
}

func TestNameCompression(t *testing.T) {
	cmap := make(map[string]int)
	buf, err := packName(nil, "example.com.", cmap)
	if err != nil {
		t.Fatal(err)
	}
	plain := len(buf)
	buf, err = packName(buf, "www.example.com.", cmap)
	if err != nil {
		t.Fatal(err)
	}
	// Second name should be 4+1 label bytes + 2 pointer bytes = 6.
	if len(buf)-plain != 6 {
		t.Errorf("compressed encoding length = %d, want 6", len(buf)-plain)
	}
	n1, off, err := unpackName(buf, 0)
	if err != nil || n1 != "example.com." {
		t.Fatalf("first: %q %v", n1, err)
	}
	n2, _, err := unpackName(buf, off)
	if err != nil || n2 != "www.example.com." {
		t.Fatalf("second: %q %v", n2, err)
	}
}

func TestUnpackNameRejectsForwardPointer(t *testing.T) {
	// Pointer at offset 0 pointing to itself.
	if _, _, err := unpackName([]byte{0xC0, 0x00}, 0); err == nil {
		t.Error("self-pointer accepted")
	}
	// Pointer pointing forward.
	msg := []byte{0xC0, 0x04, 0, 0, 3, 'c', 'o', 'm', 0}
	if _, _, err := unpackName(msg, 0); err == nil {
		t.Error("forward pointer accepted")
	}
}

func TestUnpackNameTruncated(t *testing.T) {
	inputs := [][]byte{
		{},
		{3, 'c', 'o'},
		{0xC0},
	}
	for _, in := range inputs {
		if _, _, err := unpackName(in, 0); err == nil {
			t.Errorf("truncated input %v accepted", in)
		}
	}
}

func TestCanonicalNameLess(t *testing.T) {
	// RFC 4034 §6.1 example ordering.
	ordered := []string{
		"example.",
		"a.example.",
		"yljkjljk.a.example.",
		"z.a.example.",
		"zabc.a.example.",
		"z.example.",
	}
	for i := 0; i < len(ordered)-1; i++ {
		if !CanonicalNameLess(ordered[i], ordered[i+1]) {
			t.Errorf("%q should sort before %q", ordered[i], ordered[i+1])
		}
		if CanonicalNameLess(ordered[i+1], ordered[i]) {
			t.Errorf("%q should not sort before %q", ordered[i+1], ordered[i])
		}
	}
	if CanonicalNameLess("example.", "example.") {
		t.Error("name less than itself")
	}
}

func TestNameRoundTripProperty(t *testing.T) {
	f := func(labels [][]byte) bool {
		// Construct a plausible name from the fuzz input.
		var parts []string
		total := 0
		for _, l := range labels {
			if len(l) == 0 {
				continue
			}
			if len(l) > 20 {
				l = l[:20]
			}
			s := make([]byte, 0, len(l))
			for _, c := range l {
				c = 'a' + c%26
				s = append(s, c)
			}
			total += len(s) + 1
			if total > 200 {
				break
			}
			parts = append(parts, string(s))
		}
		name := CanonicalName(strings.Join(parts, "."))
		buf, err := packName(nil, name, nil)
		if err != nil {
			return false
		}
		got, _, err := unpackName(buf, 0)
		return err == nil && got == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
