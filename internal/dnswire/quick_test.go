package dnswire

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) over the wire codec: random
// structured messages must survive a pack/unpack round trip, and
// arbitrary byte garbage must never panic the parser.

// genName produces a random valid domain name from the quick source.
func genName(r *rand.Rand) string {
	labels := 1 + r.Intn(4)
	name := ""
	for i := 0; i < labels; i++ {
		n := 1 + r.Intn(12)
		for j := 0; j < n; j++ {
			name += string(rune('a' + r.Intn(26)))
		}
		name += "."
	}
	return name
}

type quickRR struct{ rr RR }

// Generate implements quick.Generator with a random typed payload.
func (quickRR) Generate(r *rand.Rand, _ int) reflect.Value {
	name := genName(r)
	var data RData
	switch r.Intn(8) {
	case 0:
		var b [4]byte
		r.Read(b[:])
		data = &A{Addr: netip.AddrFrom4(b)}
	case 1:
		var b [16]byte
		r.Read(b[:])
		data = &AAAA{Addr: netip.AddrFrom16(b)}
	case 2:
		data = NewNS(genName(r))
	case 3:
		data = &TXT{Strings: []string{genString(r, 80), genString(r, 40)}}
	case 4:
		d := make([]byte, 32)
		r.Read(d)
		data = &DS{KeyTag: uint16(r.Uint32()), Algorithm: uint8(r.Intn(250)), DigestType: 2, Digest: d}
	case 5:
		pk := make([]byte, 1+r.Intn(64))
		r.Read(pk)
		data = &DNSKEY{Flags: uint16(r.Uint32()), Protocol: 3, Algorithm: uint8(r.Intn(250)), PublicKey: pk}
	case 6:
		sig := make([]byte, 1+r.Intn(80))
		r.Read(sig)
		data = &RRSIG{TypeCovered: Type(1 + r.Intn(60)), Algorithm: 13, Labels: uint8(r.Intn(6)),
			OrigTTL: r.Uint32(), Expiration: r.Uint32(), Inception: r.Uint32(),
			KeyTag: uint16(r.Uint32()), SignerName: genName(r), Signature: sig}
	default:
		oct := make([]byte, r.Intn(40))
		r.Read(oct)
		data = &Generic{T: Type(6000 + r.Intn(100)), Octets: oct}
	}
	return reflect.ValueOf(quickRR{RR{Name: name, Class: ClassIN, TTL: r.Uint32() & 0xFFFFFF, Data: data}})
}

func genString(r *rand.Rand, max int) string {
	n := r.Intn(max)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(32 + r.Intn(95))
	}
	return string(b)
}

func TestQuickMessageRoundTrip(t *testing.T) {
	f := func(id uint16, rrs []quickRR) bool {
		if len(rrs) > 20 {
			rrs = rrs[:20]
		}
		m := &Message{ID: id, Response: true}
		for _, q := range rrs {
			m.Answer = append(m.Answer, q.rr)
		}
		wire, err := m.Pack()
		if err != nil {
			t.Logf("pack: %v", err)
			return false
		}
		got, err := Unpack(wire)
		if err != nil {
			t.Logf("unpack: %v", err)
			return false
		}
		if got.ID != id || len(got.Answer) != len(m.Answer) {
			return false
		}
		for i := range m.Answer {
			if !got.Answer[i].Equal(m.Answer[i]) {
				t.Logf("rr %d mismatch: %s vs %s", i, got.Answer[i], m.Answer[i])
				return false
			}
			if got.Answer[i].TTL != m.Answer[i].TTL {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickUnpackNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Unpack panicked on %x: %v", data, r)
			}
		}()
		_, _ = Unpack(data) // errors are fine; panics are not
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickMutatedMessagesNeverPanic(t *testing.T) {
	// Start from valid messages and flip random bytes: a far denser
	// source of nearly-valid adversarial input than pure noise.
	base, err := (&Message{
		ID: 7, Response: true,
		Question: []Question{{Name: "www.example.com.", Type: TypeCDS, Class: ClassIN}},
		Answer: []RR{
			{Name: "www.example.com.", Class: ClassIN, TTL: 300, Data: &TXT{Strings: []string{"hello"}}},
			{Name: "www.example.com.", Class: ClassIN, TTL: 300, Data: NewNS("ns1.example.net.")},
		},
	}).Pack()
	if err != nil {
		t.Fatal(err)
	}
	f := func(pos uint16, val byte) bool {
		mut := append([]byte(nil), base...)
		mut[int(pos)%len(mut)] = val
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on mutation pos=%d val=%d: %v", pos, val, r)
			}
		}()
		_, _ = Unpack(mut)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestQuickCanonicalOrderIsTotal(t *testing.T) {
	f := func(a, b []byte) bool {
		na := bytesToName(a)
		nb := bytesToName(b)
		less := CanonicalNameLess(na, nb)
		greater := CanonicalNameLess(nb, na)
		if na == nb {
			return !less && !greater
		}
		return less != greater // antisymmetric for distinct names
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func bytesToName(b []byte) string {
	if len(b) == 0 {
		return "."
	}
	if len(b) > 30 {
		b = b[:30]
	}
	name := ""
	for i, c := range b {
		name += string(rune('a' + int(c)%26))
		if i%7 == 6 {
			name += "."
		}
	}
	return CanonicalName(name)
}
