package dnswire

import (
	"strings"
	"testing"
)

// Presentation-format coverage: every RDATA type's String output must
// contain its distinguishing fields, and RR.String must produce the
// five-column master-file layout.
func TestPresentationFormats(t *testing.T) {
	for _, rr := range sampleRRs() {
		line := rr.String()
		parts := strings.SplitN(line, "\t", 5)
		if len(parts) != 5 {
			t.Errorf("RR.String %q lacks 5 columns", line)
			continue
		}
		if parts[0] != CanonicalName(rr.Name) {
			t.Errorf("owner column = %q", parts[0])
		}
		if parts[2] != "IN" {
			t.Errorf("class column = %q", parts[2])
		}
		if parts[3] != rr.Type().String() {
			t.Errorf("type column = %q, want %s", parts[3], rr.Type())
		}
		if parts[4] == "" {
			t.Errorf("empty rdata column for %s", rr.Type())
		}
	}
}

func TestSpecificPresentations(t *testing.T) {
	cases := []struct {
		data RData
		want string
	}{
		{&DS{KeyTag: 4711, Algorithm: 13, DigestType: 2, Digest: []byte{0xAB, 0xCD}}, "4711 13 2 ABCD"},
		{&MX{Preference: 10, Host: "Mail.Example.COM"}, "10 mail.example.com."},
		{&TXT{Strings: []string{"a b", "c"}}, `"a b" "c"`},
		{&SRV{Priority: 1, Weight: 2, Port: 53, Target: "ns.x."}, "1 2 53 ns.x."},
		{&CSYNC{SOASerial: 42, Flags: 3, Types: []Type{TypeNS, TypeA}}, "42 3 NS A"},
		{&Generic{T: Type(9999), Octets: []byte{1, 2}}, `\# 2 0102`},
		{&NSEC3PARAM{HashAlg: 1, Iterations: 5, Salt: nil}, "1 0 5 -"},
		{&NSEC3PARAM{HashAlg: 1, Iterations: 5, Salt: []byte{0xAA}}, "1 0 5 AA"},
	}
	for _, c := range cases {
		if got := c.data.String(); got != c.want {
			t.Errorf("%T.String() = %q, want %q", c.data, got, c.want)
		}
	}
}

func TestMessageSummary(t *testing.T) {
	q := NewQuery(1, "example.com.", TypeCDS)
	if s := q.Summary(); !strings.Contains(s, "query") || !strings.Contains(s, "example.com. IN CDS") {
		t.Errorf("query summary = %q", s)
	}
	r := &Message{Response: true, Rcode: RcodeNXDomain, Question: q.Question}
	if s := r.Summary(); !strings.Contains(s, "NXDOMAIN") {
		t.Errorf("response summary = %q", s)
	}
}

func TestMnemonics(t *testing.T) {
	if ClassCH.String() != "CH" || Class(999).String() != "CLASS999" {
		t.Error("class mnemonics")
	}
	if OpcodeNotify.String() != "NOTIFY" || Opcode(7).String() != "OPCODE7" {
		t.Error("opcode mnemonics")
	}
	if Rcode(12).String() != "RCODE12" {
		t.Error("rcode fallback")
	}
	for alg, want := range map[uint8]string{
		AlgDELETE: "DELETE", AlgRSASHA256: "RSASHA256", AlgEd25519: "ED25519", 99: "99",
	} {
		if got := AlgorithmName(alg); got != want {
			t.Errorf("AlgorithmName(%d) = %s", alg, got)
		}
	}
}

func TestBase32HexNoPad(t *testing.T) {
	cases := []struct {
		in   []byte
		want string
	}{
		{nil, ""},
		{[]byte{0}, "00"},
		{[]byte{0xFF}, "VS"},
		{[]byte{0xDE, 0xAD, 0xBE, 0xEF}, "RQMRTRO"},
	}
	for _, c := range cases {
		if got := base32hexNoPad(c.in); got != c.want {
			t.Errorf("base32hexNoPad(%x) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDeleteSentinelFlags(t *testing.T) {
	cds := &CDS{DS{Algorithm: AlgDELETE, Digest: []byte{0}}}
	if !cds.IsDelete() {
		t.Error("CDS delete sentinel not recognised")
	}
	key := &DNSKEY{Flags: DNSKEYFlagZone | DNSKEYFlagSEP, Protocol: 3, Algorithm: AlgEd25519}
	if !key.IsSEP() || !key.IsZoneKey() || key.IsDelete() {
		t.Errorf("DNSKEY flags: sep=%v zone=%v delete=%v", key.IsSEP(), key.IsZoneKey(), key.IsDelete())
	}
}

func TestNewRRTypesRoundTrip(t *testing.T) {
	rrs := []RR{
		{Name: "alias.example.", Class: ClassIN, TTL: 300, Data: NewDNAME("target.example.net.")},
		{Name: "example.com.", Class: ClassIN, TTL: 300, Data: &CAA{Flags: 128, Tag: "issue", Value: "letsencrypt.org"}},
		{Name: "_443._tcp.example.com.", Class: ClassIN, TTL: 300, Data: &TLSA{Usage: 3, Selector: 1, MatchingType: 1, CertData: make([]byte, 32)}},
	}
	m := &Message{ID: 5, Response: true, Answer: rrs}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rrs {
		if !got.Answer[i].Equal(rrs[i]) {
			t.Errorf("rr %d changed: %s vs %s", i, got.Answer[i], rrs[i])
		}
	}
	dn := got.Answer[0].Data.(*DNAME)
	if dn.Target != "target.example.net." {
		t.Errorf("DNAME target = %s", dn.Target)
	}
	caa := got.Answer[1].Data.(*CAA)
	if caa.Flags != 128 || caa.Tag != "issue" || caa.Value != "letsencrypt.org" {
		t.Errorf("CAA = %+v", caa)
	}
	tlsa := got.Answer[2].Data.(*TLSA)
	if tlsa.Usage != 3 || len(tlsa.CertData) != 32 {
		t.Errorf("TLSA = %+v", tlsa)
	}
	// Presentation forms.
	if s := caa.String(); s != `128 issue "letsencrypt.org"` {
		t.Errorf("CAA string = %q", s)
	}
	if s := dn.String(); s != "target.example.net." {
		t.Errorf("DNAME string = %q", s)
	}
	// Mnemonic round trip.
	for _, typ := range []Type{TypeDNAME, TypeCAA, TypeTLSA} {
		got, err := TypeFromString(typ.String())
		if err != nil || got != typ {
			t.Errorf("mnemonic %s: %v %v", typ, got, err)
		}
	}
}

func TestCAARejectsBadTag(t *testing.T) {
	m := &Message{ID: 1, Response: true, Answer: []RR{
		{Name: "x.", Class: ClassIN, TTL: 1, Data: &CAA{Tag: ""}},
	}}
	if _, err := m.Pack(); err == nil {
		t.Error("empty CAA tag packed")
	}
}
