package dnswire

import (
	"fmt"
)

// OPT is the EDNS(0) pseudo-record payload (RFC 6891). Options are kept
// as opaque code/data pairs.
type OPT struct {
	Options []EDNSOption
}

// EDNSOption is a single EDNS option TLV.
type EDNSOption struct {
	Code uint16
	Data []byte
}

// EDNS option codes used by this library.
const (
	EDNSOptionCookie       uint16 = 10
	EDNSOptionExtendedErr  uint16 = 15
	EDNSOptionPadding      uint16 = 12
	edeInfoCodeStaleAnswer        = 3
)

// Type implements RData.
func (*OPT) Type() Type { return TypeOPT }

func (o *OPT) pack(b *builder) {
	for _, opt := range o.Options {
		b.u16(opt.Code)
		b.u16(uint16(len(opt.Data)))
		b.bytes(opt.Data)
	}
}

func (o *OPT) unpack(p *parser, rdlen int) error {
	end := p.off + rdlen
	// Reuse the previous option slice and each slot's Data storage
	// (captured before append overwrites the slot).
	old := o.Options
	opts := old[:0]
	for p.off < end {
		code, err := p.u16()
		if err != nil {
			return err
		}
		n, err := p.u16()
		if err != nil {
			return err
		}
		var reuse []byte
		if len(opts) < len(old) {
			reuse = old[len(opts)].Data
		}
		data, err := p.takeInto(reuse, int(n))
		if err != nil {
			o.Options = opts
			return err
		}
		opts = append(opts, EDNSOption{Code: code, Data: data})
	}
	o.Options = opts
	return nil
}

func (o *OPT) String() string {
	return fmt.Sprintf("; EDNS options=%d", len(o.Options))
}

// EDNS describes the EDNS(0) state of a message, decoded from or
// encoded into its OPT pseudo-record.
type EDNS struct {
	UDPSize       uint16
	ExtendedRcode uint8 // upper 8 bits of the 12-bit rcode
	Version       uint8
	DO            bool // DNSSEC OK
	Options       []EDNSOption
}

// SetEDNS attaches (or replaces) the OPT record on m. When an OPT
// record is already present its *OPT payload is mutated in place, so a
// reused query message keeps EDNS attachment allocation-free.
func (m *Message) SetEDNS(e EDNS) {
	ttl := uint32(e.ExtendedRcode)<<24 | uint32(e.Version)<<16
	if e.DO {
		ttl |= 1 << 15
	}
	for i := range m.Additional {
		rr := &m.Additional[i]
		if rr.Type() != TypeOPT {
			continue
		}
		rr.Name = "."
		rr.Class = Class(e.UDPSize)
		rr.TTL = ttl
		if o, ok := rr.Data.(*OPT); ok {
			o.Options = append(o.Options[:0], e.Options...)
		} else {
			rr.Data = &OPT{Options: e.Options}
		}
		return
	}
	m.Additional = append(m.Additional, RR{
		Name:  ".",
		Class: Class(e.UDPSize),
		TTL:   ttl,
		Data:  &OPT{Options: e.Options},
	})
}

// GetEDNS extracts the EDNS state from m's OPT record, if present.
func (m *Message) GetEDNS() (EDNS, bool) {
	for _, rr := range m.Additional {
		if rr.Type() != TypeOPT {
			continue
		}
		opt := rr.Data.(*OPT)
		return EDNS{
			UDPSize:       uint16(rr.Class),
			ExtendedRcode: uint8(rr.TTL >> 24),
			Version:       uint8(rr.TTL >> 16),
			DO:            rr.TTL&(1<<15) != 0,
			Options:       opt.Options,
		}, true
	}
	return EDNS{}, false
}

// DNSSECOK reports whether the message carries an OPT record with the
// DO bit set.
func (m *Message) DNSSECOK() bool {
	e, ok := m.GetEDNS()
	return ok && e.DO
}
