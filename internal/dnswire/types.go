// Package dnswire implements the DNS wire protocol (RFC 1035 and
// successors): domain-name encoding with compression, message packing
// and unpacking, typed resource-record data for the record types needed
// by DNSSEC and its automation (DS, DNSKEY, RRSIG, NSEC, NSEC3, CDS,
// CDNSKEY, CSYNC), EDNS(0), and the canonical forms required by
// RFC 4034 for signing and verification.
//
// The package is self-contained and allocation-conscious; it has no
// dependencies outside the standard library.
package dnswire

import (
	"fmt"
	"strconv"
)

// Type is a DNS resource-record type code (RFC 1035 §3.2.2 and the IANA
// DNS parameters registry).
type Type uint16

// Resource-record types used by this library.
const (
	TypeNone       Type = 0
	TypeA          Type = 1
	TypeNS         Type = 2
	TypeCNAME      Type = 5
	TypeSOA        Type = 6
	TypePTR        Type = 12
	TypeMX         Type = 15
	TypeTXT        Type = 16
	TypeAAAA       Type = 28
	TypeSRV        Type = 33
	TypeDS         Type = 43
	TypeRRSIG      Type = 46
	TypeNSEC       Type = 47
	TypeDNSKEY     Type = 48
	TypeNSEC3      Type = 50
	TypeNSEC3PARAM Type = 51
	TypeCDS        Type = 59
	TypeCDNSKEY    Type = 60
	TypeCSYNC      Type = 62
	TypeDNAME      Type = 39
	TypeTLSA       Type = 52
	TypeOPT        Type = 41
	TypeAXFR       Type = 252
	TypeANY        Type = 255
	TypeCAA        Type = 257
)

var typeNames = map[Type]string{
	TypeA:          "A",
	TypeNS:         "NS",
	TypeCNAME:      "CNAME",
	TypeSOA:        "SOA",
	TypePTR:        "PTR",
	TypeMX:         "MX",
	TypeTXT:        "TXT",
	TypeAAAA:       "AAAA",
	TypeSRV:        "SRV",
	TypeDS:         "DS",
	TypeRRSIG:      "RRSIG",
	TypeNSEC:       "NSEC",
	TypeDNSKEY:     "DNSKEY",
	TypeNSEC3:      "NSEC3",
	TypeNSEC3PARAM: "NSEC3PARAM",
	TypeCDS:        "CDS",
	TypeCDNSKEY:    "CDNSKEY",
	TypeCSYNC:      "CSYNC",
	TypeDNAME:      "DNAME",
	TypeTLSA:       "TLSA",
	TypeOPT:        "OPT",
	TypeAXFR:       "AXFR",
	TypeANY:        "ANY",
	TypeCAA:        "CAA",
}

var typesByName = func() map[string]Type {
	m := make(map[string]Type, len(typeNames))
	for t, n := range typeNames {
		m[n] = t
	}
	return m
}()

// String returns the mnemonic for t, or the RFC 3597 "TYPEnnn" form for
// types this package has no mnemonic for.
func (t Type) String() string {
	if n, ok := typeNames[t]; ok {
		return n
	}
	return "TYPE" + strconv.Itoa(int(t))
}

// TypeFromString parses a type mnemonic (e.g. "CDS") or an RFC 3597
// "TYPEnnn" string.
func TypeFromString(s string) (Type, error) {
	if t, ok := typesByName[s]; ok {
		return t, nil
	}
	if len(s) > 4 && s[:4] == "TYPE" {
		n, err := strconv.Atoi(s[4:])
		if err != nil || n < 0 || n > 0xFFFF {
			return 0, fmt.Errorf("dnswire: bad type %q", s)
		}
		return Type(n), nil
	}
	return 0, fmt.Errorf("dnswire: unknown type %q", s)
}

// Class is a DNS class code. Only IN is used in practice.
type Class uint16

// DNS classes.
const (
	ClassIN   Class = 1
	ClassCH   Class = 3
	ClassNONE Class = 254
	ClassANY  Class = 255
)

// String returns the class mnemonic.
func (c Class) String() string {
	switch c {
	case ClassIN:
		return "IN"
	case ClassCH:
		return "CH"
	case ClassNONE:
		return "NONE"
	case ClassANY:
		return "ANY"
	}
	return "CLASS" + strconv.Itoa(int(c))
}

// Opcode is a DNS message opcode (RFC 1035 §4.1.1).
type Opcode uint8

// Opcodes.
const (
	OpcodeQuery  Opcode = 0
	OpcodeNotify Opcode = 4
	OpcodeUpdate Opcode = 5
)

// String returns the opcode mnemonic.
func (o Opcode) String() string {
	switch o {
	case OpcodeQuery:
		return "QUERY"
	case OpcodeNotify:
		return "NOTIFY"
	case OpcodeUpdate:
		return "UPDATE"
	}
	return "OPCODE" + strconv.Itoa(int(o))
}

// Rcode is a DNS response code, including EDNS extended codes.
type Rcode uint16

// Response codes.
const (
	RcodeNoError  Rcode = 0
	RcodeFormErr  Rcode = 1
	RcodeServFail Rcode = 2
	RcodeNXDomain Rcode = 3
	RcodeNotImp   Rcode = 4
	RcodeRefused  Rcode = 5
	RcodeNotAuth  Rcode = 9
	RcodeBadVers  Rcode = 16
)

// String returns the rcode mnemonic.
func (r Rcode) String() string {
	switch r {
	case RcodeNoError:
		return "NOERROR"
	case RcodeFormErr:
		return "FORMERR"
	case RcodeServFail:
		return "SERVFAIL"
	case RcodeNXDomain:
		return "NXDOMAIN"
	case RcodeNotImp:
		return "NOTIMP"
	case RcodeRefused:
		return "REFUSED"
	case RcodeNotAuth:
		return "NOTAUTH"
	case RcodeBadVers:
		return "BADVERS"
	}
	return "RCODE" + strconv.Itoa(int(r))
}

// DNSSEC algorithm numbers (RFC 8624 and the IANA registry).
const (
	AlgDELETE          uint8 = 0 // RFC 8078 §4: request DS deletion via CDS
	AlgRSASHA1         uint8 = 5
	AlgRSASHA256       uint8 = 8
	AlgRSASHA512       uint8 = 10
	AlgECDSAP256SHA256 uint8 = 13
	AlgECDSAP384SHA384 uint8 = 14
	AlgEd25519         uint8 = 15
)

// AlgorithmName returns the mnemonic for a DNSSEC algorithm number.
func AlgorithmName(a uint8) string {
	switch a {
	case AlgDELETE:
		return "DELETE"
	case AlgRSASHA1:
		return "RSASHA1"
	case AlgRSASHA256:
		return "RSASHA256"
	case AlgRSASHA512:
		return "RSASHA512"
	case AlgECDSAP256SHA256:
		return "ECDSAP256SHA256"
	case AlgECDSAP384SHA384:
		return "ECDSAP384SHA384"
	case AlgEd25519:
		return "ED25519"
	}
	return strconv.Itoa(int(a))
}

// DS digest types (RFC 4509, RFC 6605).
const (
	DigestSHA1   uint8 = 1
	DigestSHA256 uint8 = 2
	DigestSHA384 uint8 = 4
)

// DNSKEY flag bits (RFC 4034 §2.1.1).
const (
	DNSKEYFlagZone uint16 = 0x0100 // ZONE bit: key may sign zone data
	DNSKEYFlagSEP  uint16 = 0x0001 // SEP bit: key-signing key convention
)

// MaxUDPPayload is the default EDNS advertised UDP payload size used by
// this library's clients and servers.
const MaxUDPPayload = 1232

// MaxMessageSize is the maximum DNS message size over TCP.
const MaxMessageSize = 65535
