package dnswire

// Low-level wire readers and writers shared by message and RDATA codecs.

type builder struct {
	buf  []byte
	cmap map[string]int // compression map; nil disables compression
	err  error
}

func (b *builder) u8(v uint8) { b.buf = append(b.buf, v) }
func (b *builder) u16(v uint16) {
	b.buf = append(b.buf, byte(v>>8), byte(v))
}
func (b *builder) u32(v uint32) {
	b.buf = append(b.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func (b *builder) bytes(v []byte) { b.buf = append(b.buf, v...) }

// name packs a domain name. Compression is only ever applied to owner
// names and classic RR targets in messages; RDATA of DNSSEC-era types is
// always packed uncompressed (RFC 3597 §4), which callers arrange by
// passing compress=false.
func (b *builder) name(n string, compress bool) {
	if b.err != nil {
		return
	}
	cmap := b.cmap
	if !compress {
		cmap = nil
	}
	out, err := packName(b.buf, n, cmap)
	if err != nil {
		b.err = err
		return
	}
	b.buf = out
}

type parser struct {
	msg []byte
	off int
}

func (p *parser) remaining() int { return len(p.msg) - p.off }

func (p *parser) u8() (uint8, error) {
	if p.off+1 > len(p.msg) {
		return 0, errTruncated
	}
	v := p.msg[p.off]
	p.off++
	return v, nil
}

func (p *parser) u16() (uint16, error) {
	if p.off+2 > len(p.msg) {
		return 0, errTruncated
	}
	v := uint16(p.msg[p.off])<<8 | uint16(p.msg[p.off+1])
	p.off += 2
	return v, nil
}

func (p *parser) u32() (uint32, error) {
	if p.off+4 > len(p.msg) {
		return 0, errTruncated
	}
	v := uint32(p.msg[p.off])<<24 | uint32(p.msg[p.off+1])<<16 |
		uint32(p.msg[p.off+2])<<8 | uint32(p.msg[p.off+3])
	p.off += 4
	return v, nil
}

// take returns the next n bytes as a copy (parsers retain no aliases of
// the input buffer).
func (p *parser) take(n int) ([]byte, error) {
	if n < 0 || p.off+n > len(p.msg) {
		return nil, errTruncated
	}
	out := make([]byte, n)
	copy(out, p.msg[p.off:p.off+n])
	p.off += n
	return out, nil
}

func (p *parser) name() (string, error) {
	n, next, err := unpackName(p.msg, p.off)
	if err != nil {
		return "", err
	}
	p.off = next
	return n, nil
}

// packTypeBitmap encodes the RFC 4034 §4.1.2 window-block type bitmap
// used by NSEC, NSEC3 and CSYNC. Types must be pre-sorted ascending.
func packTypeBitmap(buf []byte, types []Type) []byte {
	if len(types) == 0 {
		return buf
	}
	window := -1
	var bits [32]byte
	maxOctet := 0
	flush := func() {
		if window >= 0 {
			buf = append(buf, byte(window), byte(maxOctet))
			buf = append(buf, bits[:maxOctet]...)
		}
		bits = [32]byte{}
		maxOctet = 0
	}
	for _, t := range types {
		w := int(t >> 8)
		if w != window {
			flush()
			window = w
		}
		lo := int(t & 0xFF)
		bits[lo/8] |= 0x80 >> (lo % 8)
		if lo/8+1 > maxOctet {
			maxOctet = lo/8 + 1
		}
	}
	flush()
	return buf
}

// unpackTypeBitmap decodes a window-block type bitmap occupying exactly
// data.
func unpackTypeBitmap(data []byte) ([]Type, error) {
	var types []Type
	for len(data) > 0 {
		if len(data) < 2 {
			return nil, errTruncated
		}
		window, n := int(data[0]), int(data[1])
		if n < 1 || n > 32 || len(data) < 2+n {
			return nil, errTruncated
		}
		for i := 0; i < n; i++ {
			for bit := 0; bit < 8; bit++ {
				if data[2+i]&(0x80>>bit) != 0 {
					types = append(types, Type(window<<8|i*8+bit))
				}
			}
		}
		data = data[2+n:]
	}
	return types, nil
}
