package dnswire

import "sync"

// Low-level wire readers and writers shared by message and RDATA codecs.
//
// Both the builder and the parser are pooled: the scan hot path packs
// and unpacks a handful of messages per zone, and allocating fresh
// scratch (compression map, name-assembly buffer, intern table) per
// message made the codec the dominant source of garbage in whole-scan
// profiles. Pooled scratch never escapes into results: the builder's
// output buffer is caller-owned, and the parser copies every byte it
// hands out (takeInto) or interns it as an immutable string.

type builder struct {
	buf  []byte
	base int            // message start within buf (AppendPack offset)
	cmap map[string]int // compression map; nil disables compression
	err  error
}

var builderPool = sync.Pool{
	New: func() any {
		return &builder{cmap: make(map[string]int, 16)}
	},
}

// newBuilder returns a pooled builder appending to dst. Compression
// offsets are taken relative to len(dst), so a message can be packed
// into the tail of a caller-owned buffer.
func newBuilder(dst []byte) *builder {
	b := builderPool.Get().(*builder)
	b.buf = dst
	b.base = len(dst)
	b.err = nil
	clear(b.cmap)
	//lint:allow poollife constructor hands pool ownership to the caller; every caller pairs it with release()
	return b
}

// release returns b to the pool. The output buffer is the caller's and
// must not be retained by the pool (the caller keeps the packed bytes).
func (b *builder) release() {
	b.buf = nil
	builderPool.Put(b)
}

func (b *builder) u8(v uint8) { b.buf = append(b.buf, v) }
func (b *builder) u16(v uint16) {
	b.buf = append(b.buf, byte(v>>8), byte(v))
}
func (b *builder) u32(v uint32) {
	b.buf = append(b.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func (b *builder) bytes(v []byte) { b.buf = append(b.buf, v...) }
func (b *builder) str(v string)   { b.buf = append(b.buf, v...) }

// name packs a domain name. Compression is only ever applied to owner
// names and classic RR targets in messages; RDATA of DNSSEC-era types is
// always packed uncompressed (RFC 3597 §4), which callers arrange by
// passing compress=false.
func (b *builder) name(n string, compress bool) {
	if b.err != nil {
		return
	}
	cmap := b.cmap
	if !compress {
		cmap = nil
	}
	out, err := packNameOffset(b.buf, b.base, n, cmap)
	if err != nil {
		b.err = err
		return
	}
	b.buf = out
}

// internCap bounds the per-parser name-intern table. Scan workloads
// see the same nameserver and apex names over and over; capping the
// table keeps a pooled parser from accumulating unbounded uniques over
// a multi-million-zone run.
const internCap = 4096

type parser struct {
	msg     []byte
	off     int
	scratch []byte            // name-assembly buffer, reused per name
	names   map[string]string // interned name strings, reused per parser
}

var parserPool = sync.Pool{New: func() any { return &parser{} }}

// newParser returns a pooled parser positioned at the start of msg. The
// parser retains no aliases of msg in anything it returns, so callers
// may reuse msg storage immediately after parsing.
func newParser(msg []byte) *parser {
	p := parserPool.Get().(*parser)
	p.msg = msg
	p.off = 0
	//lint:allow poollife constructor hands pool ownership to the caller; every caller pairs it with release()
	return p
}

func (p *parser) release() {
	p.msg = nil
	parserPool.Put(p)
}

// intern returns b as a string, reusing a previously-built string for
// the same bytes when possible. The map lookup on a []byte key compiles
// without a conversion allocation, so repeated names cost zero garbage.
func (p *parser) intern(b []byte) string {
	if s, ok := p.names[string(b)]; ok {
		return s
	}
	s := string(b)
	if p.names == nil {
		p.names = make(map[string]string, 64)
	}
	if len(p.names) < internCap {
		p.names[s] = s
	}
	return s
}

func (p *parser) remaining() int { return len(p.msg) - p.off }

func (p *parser) u8() (uint8, error) {
	if p.off+1 > len(p.msg) {
		return 0, errTruncated
	}
	v := p.msg[p.off]
	p.off++
	return v, nil
}

func (p *parser) u16() (uint16, error) {
	if p.off+2 > len(p.msg) {
		return 0, errTruncated
	}
	v := uint16(p.msg[p.off])<<8 | uint16(p.msg[p.off+1])
	p.off += 2
	return v, nil
}

func (p *parser) u32() (uint32, error) {
	if p.off+4 > len(p.msg) {
		return 0, errTruncated
	}
	v := uint32(p.msg[p.off])<<24 | uint32(p.msg[p.off+1])<<16 |
		uint32(p.msg[p.off+2])<<8 | uint32(p.msg[p.off+3])
	p.off += 4
	return v, nil
}

// take returns the next n bytes as a copy (parsers retain no aliases of
// the input buffer).
func (p *parser) take(n int) ([]byte, error) {
	return p.takeInto(nil, n)
}

// takeInto returns the next n bytes copied into dst, reusing dst's
// storage when its capacity allows. Unpack-into callers thread the
// previous field value through so steady-state reparsing allocates
// nothing.
func (p *parser) takeInto(dst []byte, n int) ([]byte, error) {
	if n < 0 || p.off+n > len(p.msg) {
		return nil, errTruncated
	}
	if cap(dst) < n {
		dst = make([]byte, n)
	} else {
		dst = dst[:n]
	}
	copy(dst, p.msg[p.off:p.off+n])
	p.off += n
	return dst, nil
}

// view returns the next n bytes of the input without copying. Only for
// transient decoding (type bitmaps) — the slice aliases p.msg and must
// not be retained.
func (p *parser) view(n int) ([]byte, error) {
	if n < 0 || p.off+n > len(p.msg) {
		return nil, errTruncated
	}
	v := p.msg[p.off : p.off+n]
	p.off += n
	return v, nil
}

func (p *parser) name() (string, error) {
	buf, next, err := appendUnpackedName(p.scratch[:0], p.msg, p.off)
	if err != nil {
		return "", err
	}
	p.scratch = buf
	p.off = next
	if len(buf) == 0 {
		return ".", nil
	}
	return p.intern(buf), nil
}

// packTypeBitmap encodes the RFC 4034 §4.1.2 window-block type bitmap
// used by NSEC, NSEC3 and CSYNC. Types must be pre-sorted ascending.
func packTypeBitmap(buf []byte, types []Type) []byte {
	if len(types) == 0 {
		return buf
	}
	window := -1
	var bits [32]byte
	maxOctet := 0
	flush := func() {
		if window >= 0 {
			buf = append(buf, byte(window), byte(maxOctet))
			buf = append(buf, bits[:maxOctet]...)
		}
		bits = [32]byte{}
		maxOctet = 0
	}
	for _, t := range types {
		w := int(t >> 8)
		if w != window {
			flush()
			window = w
		}
		lo := int(t & 0xFF)
		bits[lo/8] |= 0x80 >> (lo % 8)
		if lo/8+1 > maxOctet {
			maxOctet = lo/8 + 1
		}
	}
	flush()
	return buf
}

// unpackTypeBitmap decodes a window-block type bitmap occupying exactly
// data.
func unpackTypeBitmap(data []byte) ([]Type, error) {
	return unpackTypeBitmapInto(nil, data)
}

// unpackTypeBitmapInto appends the decoded types to dst (pass a
// truncated previous slice to reuse its storage).
func unpackTypeBitmapInto(dst []Type, data []byte) ([]Type, error) {
	for len(data) > 0 {
		if len(data) < 2 {
			return nil, errTruncated
		}
		window, n := int(data[0]), int(data[1])
		if n < 1 || n > 32 || len(data) < 2+n {
			return nil, errTruncated
		}
		for i := 0; i < n; i++ {
			for bit := 0; bit < 8; bit++ {
				if data[2+i]&(0x80>>bit) != 0 {
					dst = append(dst, Type(window<<8|i*8+bit))
				}
			}
		}
		data = data[2+n:]
	}
	return dst, nil
}
