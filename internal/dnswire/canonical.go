package dnswire

import (
	"bytes"
	"sort"
)

// Canonical forms per RFC 4034 §6, used when constructing the data that
// RRSIGs cover and when ordering RRsets for signing and comparison.

// CanonicalNameWire returns the uncompressed, lowercase wire encoding
// of a domain name.
func CanonicalNameWire(name string) ([]byte, error) {
	return packName(nil, name, nil)
}

// CanonicalRDATA returns the RDATA of rr in canonical form: names
// embedded in the RDATA of the RFC 4034 §6.2 legacy type list are
// lowercased (our typed payloads already normalise names on unpack, so
// the plain uncompressed encoding is canonical).
func CanonicalRDATA(rr RR) ([]byte, error) {
	return RDataWire(rr.Data)
}

// SortCanonical sorts records into canonical RDATA order (RFC 4034
// §6.3): treating each record's canonical RDATA as a left-justified
// octet string. Owner/class/type are assumed uniform (one RRset).
func SortCanonical(rrs []RR) error {
	type keyed struct {
		rr  RR
		key []byte
	}
	ks := make([]keyed, len(rrs))
	for i, rr := range rrs {
		w, err := CanonicalRDATA(rr)
		if err != nil {
			return err
		}
		ks[i] = keyed{rr, w}
	}
	sort.SliceStable(ks, func(i, j int) bool {
		return bytes.Compare(ks[i].key, ks[j].key) < 0
	})
	for i := range ks {
		rrs[i] = ks[i].rr
	}
	return nil
}

// CanonicalNameLess compares two domain names in DNSSEC canonical
// ordering (RFC 4034 §6.1): by reversed label sequence, each label
// compared as a lowercase octet string.
func CanonicalNameLess(a, b string) bool {
	la, lb := SplitLabels(CanonicalName(a)), SplitLabels(CanonicalName(b))
	i, j := len(la)-1, len(lb)-1
	for i >= 0 && j >= 0 {
		if la[i] != lb[j] {
			return la[i] < lb[j]
		}
		i--
		j--
	}
	return i < j
}

// RRsetKey identifies an RRset within a zone or message.
type RRsetKey struct {
	Name  string
	Type  Type
	Class Class
}

// Key returns the RRset key for rr.
func (r RR) Key() RRsetKey {
	return RRsetKey{Name: CanonicalName(r.Name), Type: r.Type(), Class: r.Class}
}

// GroupRRsets partitions records into RRsets keyed by (owner, type,
// class), preserving first-seen order inside each set.
func GroupRRsets(rrs []RR) map[RRsetKey][]RR {
	m := make(map[RRsetKey][]RR)
	for _, rr := range rrs {
		k := rr.Key()
		m[k] = append(m[k], rr)
	}
	return m
}

// RRsetEqual reports whether two slices contain the same records
// regardless of order and TTL. It is the consistency comparison the
// scanner applies across nameservers.
func RRsetEqual(a, b []RR) bool {
	if len(a) != len(b) {
		return false
	}
	ak, err := rdataKeys(a)
	if err != nil {
		return false
	}
	bk, err := rdataKeys(b)
	if err != nil {
		return false
	}
	sort.Strings(ak)
	sort.Strings(bk)
	for i := range ak {
		if ak[i] != bk[i] {
			return false
		}
	}
	return true
}

func rdataKeys(rrs []RR) ([]string, error) {
	keys := make([]string, len(rrs))
	for i, rr := range rrs {
		w, err := CanonicalRDATA(rr)
		if err != nil {
			return nil, err
		}
		keys[i] = CanonicalName(rr.Name) + "|" + rr.Type().String() + "|" + string(w)
	}
	return keys, nil
}
