package dnswire

import (
	"net/netip"
	"testing"
)

// FuzzUnpack throws arbitrary bytes at the wire-format parser. Unpack
// must never panic; when it accepts a message, re-packing the parsed
// form must also succeed without panicking (the scanner packs cached
// responses back out when exporting).
func FuzzUnpack(f *testing.F) {
	// Seed with real messages covering the codec's interesting shapes:
	// plain query, EDNS, answers with compression pointers, referral
	// with glue, truncation-sized payloads.
	q := NewQuery(1, "www.example.com.", TypeA)
	if wire, err := q.Pack(); err == nil {
		f.Add(wire)
	}
	e := NewQuery(2, "example.com.", TypeDNSKEY)
	e.SetEDNS(EDNS{UDPSize: 1232, DO: true})
	if wire, err := e.Pack(); err == nil {
		f.Add(wire)
	}
	resp := &Message{ID: 3, Response: true, Authoritative: true,
		Question: []Question{{Name: "example.com.", Type: TypeNS, Class: ClassIN}}}
	resp.Answer = []RR{
		{Name: "example.com.", Class: ClassIN, TTL: 3600, Data: NewNS("ns1.example.com.")},
		{Name: "example.com.", Class: ClassIN, TTL: 3600, Data: NewNS("ns2.example.com.")},
	}
	resp.Additional = []RR{
		{Name: "ns1.example.com.", Class: ClassIN, TTL: 3600, Data: &A{Addr: netip.MustParseAddr("192.0.2.1")}},
		{Name: "ns2.example.com.", Class: ClassIN, TTL: 3600, Data: &AAAA{Addr: netip.MustParseAddr("2001:db8::1")}},
	}
	if wire, err := resp.Pack(); err == nil {
		f.Add(wire)
	}
	// Degenerate inputs.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("Unpack returned nil message with nil error")
		}
		// Accepted messages must survive the round trip.
		if _, err := m.Pack(); err != nil {
			// Packing may legitimately reject (e.g. oversized names
			// reassembled from pointer chains) but must not panic.
			return
		}
	})
}
