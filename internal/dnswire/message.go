package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// RR is a resource record: owner name, class, TTL and typed RDATA.
type RR struct {
	Name  string
	Class Class
	TTL   uint32
	Data  RData
}

// Type returns the RR type taken from the typed payload.
func (r RR) Type() Type {
	if r.Data == nil {
		return TypeNone
	}
	return r.Data.Type()
}

// String renders the record in master-file presentation form.
func (r RR) String() string {
	return fmt.Sprintf("%s\t%d\t%s\t%s\t%s",
		CanonicalName(r.Name), r.TTL, r.Class, r.Type(), r.Data.String())
}

// Equal reports whether two RRs have the same owner, class, type and
// RDATA (TTL excluded, per RRset-membership semantics).
func (r RR) Equal(o RR) bool {
	if CanonicalName(r.Name) != CanonicalName(o.Name) || r.Class != o.Class || r.Type() != o.Type() {
		return false
	}
	a, errA := RDataWire(r.Data)
	b, errB := RDataWire(o.Data)
	return errA == nil && errB == nil && string(a) == string(b)
}

// RDataWire returns the uncompressed wire encoding of an RDATA payload.
func RDataWire(d RData) ([]byte, error) {
	return AppendRDataWire(nil, d)
}

// AppendRDataWire appends the uncompressed wire encoding of an RDATA
// payload to dst. With a caller-reused dst the encode is allocation-free.
func AppendRDataWire(dst []byte, d RData) ([]byte, error) {
	b := newBuilder(dst)
	d.pack(b) // RData packers pass compress=false, so cmap is unused
	out, err := b.buf, b.err
	b.release()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Question is a query tuple.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// String renders the question in dig-like form.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", CanonicalName(q.Name), q.Class, q.Type)
}

// Message is a DNS message (RFC 1035 §4).
type Message struct {
	ID                 uint16
	Response           bool
	Opcode             Opcode
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	AuthenticData      bool
	CheckingDisabled   bool
	Rcode              Rcode

	Question   []Question
	Answer     []RR
	Authority  []RR
	Additional []RR

	// TrailingBytes is the number of octets left in the wire input after
	// the last record when this message was produced by Unpack — a
	// malformed-responder signal (well-formed messages end exactly at the
	// last record). It is ignored by Pack and zero for messages built in
	// memory. A conformance scanner must not silently normalise trailing
	// garbage away, so the count is surfaced rather than rejected here;
	// the resolver counts it per response (resolver.trailing_bytes).
	TrailingBytes int
}

// headerLen is the fixed DNS message header size (RFC 1035 §4.1.1).
const headerLen = 12

// Errors returned by message packing and unpacking.
var (
	ErrTooManyRecords = errors.New("dnswire: section exceeds 65535 records")
	// ErrTruncated indicates the input ended before the structure did.
	ErrTruncated = errTruncated
)

// Pack serialises the message with name compression on owner names.
func (m *Message) Pack() ([]byte, error) {
	return m.AppendPack(nil)
}

// AppendPack serialises the message with name compression and appends
// the wire form to dst, returning the extended slice. With a
// caller-reused dst of sufficient capacity the pack is allocation-free.
func (m *Message) AppendPack(dst []byte) ([]byte, error) {
	return m.appendPackLimit(dst, 0)
}

// PackTruncating serialises the message; if the result exceeds limit
// octets, sections are dropped and the TC bit set, mirroring
// authoritative-server UDP behaviour. limit <= 0 means no limit.
//
// The shrinking is progressive: first the answer/authority/additional
// records go (the OPT pseudo-record is kept so the client still sees
// EDNS), then the OPT itself. The floor is the header plus the question
// section, which cannot be dropped — when even that skeleton exceeds
// limit (a long qname against a tiny limit), the skeleton is returned
// as-is with TC set, so the result can exceed limit by at most the
// question's encoding. Callers enforcing transport limits should treat
// headerLen+question as the minimum viable datagram.
func (m *Message) PackTruncating(limit int) ([]byte, error) {
	return m.appendPackLimit(nil, limit)
}

// AppendPackTruncating is PackTruncating appending into dst (see
// AppendPack for the reuse contract).
func (m *Message) AppendPackTruncating(dst []byte, limit int) ([]byte, error) {
	return m.appendPackLimit(dst, limit)
}

func (m *Message) appendPackLimit(dst []byte, limit int) ([]byte, error) {
	base := len(dst)
	out, err := m.appendPackOnce(dst)
	if err != nil {
		return nil, err
	}
	if limit <= 0 || len(out)-base <= limit {
		return out, nil
	}
	// Too large: emit a truncated response with an empty answer section
	// (clients retry over TCP; partial RRsets would be misleading).
	tm := *m
	tm.Answer, tm.Authority = nil, nil
	tm.Additional = optOnly(m.Additional)
	tm.Truncated = true
	out, err = tm.appendPackOnce(out[:base])
	if err != nil {
		return nil, err
	}
	if len(out)-base <= limit || len(tm.Additional) == 0 {
		return out, nil
	}
	// Still too large: the question plus OPT alone exceed the limit.
	// Drop the OPT too — TC is already set, and a client that retries
	// over TCP re-sends its own EDNS state anyway.
	tm.Additional = nil
	return tm.appendPackOnce(out[:base])
}

func optOnly(rrs []RR) []RR {
	for _, rr := range rrs {
		if rr.Type() == TypeOPT {
			return []RR{rr}
		}
	}
	return nil
}

func (m *Message) appendPackOnce(dst []byte) ([]byte, error) {
	for _, s := range [][]RR{m.Answer, m.Authority, m.Additional} {
		if len(s) > 0xFFFF {
			return nil, ErrTooManyRecords
		}
	}
	if len(m.Question) > 0xFFFF {
		return nil, ErrTooManyRecords
	}
	b := newBuilder(dst)
	defer b.release()
	b.u16(m.ID)
	var f1 uint8
	if m.Response {
		f1 |= 0x80
	}
	f1 |= uint8(m.Opcode) << 3
	if m.Authoritative {
		f1 |= 0x04
	}
	if m.Truncated {
		f1 |= 0x02
	}
	if m.RecursionDesired {
		f1 |= 0x01
	}
	b.u8(f1)
	var f2 uint8
	if m.RecursionAvailable {
		f2 |= 0x80
	}
	if m.AuthenticData {
		f2 |= 0x20
	}
	if m.CheckingDisabled {
		f2 |= 0x10
	}
	f2 |= uint8(m.Rcode & 0x0F)
	b.u8(f2)
	b.u16(uint16(len(m.Question)))
	b.u16(uint16(len(m.Answer)))
	b.u16(uint16(len(m.Authority)))
	b.u16(uint16(len(m.Additional)))
	for _, q := range m.Question {
		b.name(q.Name, true)
		b.u16(uint16(q.Type))
		b.u16(uint16(q.Class))
	}
	for _, sec := range [][]RR{m.Answer, m.Authority, m.Additional} {
		for _, rr := range sec {
			if err := packRR(b, rr, m.Rcode); err != nil {
				return nil, err
			}
		}
	}
	if b.err != nil {
		return nil, b.err
	}
	return b.buf, nil
}

func packRR(b *builder, rr RR, rcode Rcode) error {
	if rr.Data == nil {
		return errors.New("dnswire: RR with nil data")
	}
	b.name(rr.Name, true)
	b.u16(uint16(rr.Type()))
	if rr.Type() == TypeOPT {
		// For OPT, the class field carries the UDP payload size and the
		// TTL carries extended rcode/flags; the caller encodes those
		// into Class/TTL via the OPT helpers.
		b.u16(uint16(rr.Class))
		ttl := rr.TTL
		// Fold the upper bits of the rcode into the extended-rcode byte.
		ttl = ttl&0x00FFFFFF | uint32(rcode>>4)<<24
		b.u32(ttl)
	} else {
		b.u16(uint16(rr.Class))
		b.u32(rr.TTL)
	}
	// Reserve rdlength, pack rdata, then patch.
	lenAt := len(b.buf)
	b.u16(0)
	start := len(b.buf)
	rr.Data.pack(b)
	if b.err != nil {
		return b.err
	}
	rdlen := len(b.buf) - start
	if rdlen > 0xFFFF {
		return fmt.Errorf("dnswire: rdata of %s exceeds 65535 octets", rr.Type())
	}
	b.buf[lenAt] = byte(rdlen >> 8)
	b.buf[lenAt+1] = byte(rdlen)
	return nil
}

// Unpack parses a wire-format message into a fresh Message.
func Unpack(msg []byte) (*Message, error) {
	m := &Message{}
	if err := m.UnpackFrom(msg); err != nil {
		return nil, err
	}
	return m, nil
}

// UnpackFrom parses a wire-format message into m, reusing m's section
// slices, RData values and their byte-field storage where the shapes
// match. Steady-state reparsing into the same Message allocates
// nothing. The previous contents of m are overwritten; callers must not
// retain references into them. On error m is left partially filled and
// must not be used.
func (m *Message) UnpackFrom(msg []byte) error {
	p := newParser(msg)
	defer p.release()
	var err error
	if m.ID, err = p.u16(); err != nil {
		return err
	}
	f1, err := p.u8()
	if err != nil {
		return err
	}
	f2, err := p.u8()
	if err != nil {
		return err
	}
	m.Response = f1&0x80 != 0
	m.Opcode = Opcode(f1 >> 3 & 0x0F)
	m.Authoritative = f1&0x04 != 0
	m.Truncated = f1&0x02 != 0
	m.RecursionDesired = f1&0x01 != 0
	m.RecursionAvailable = f2&0x80 != 0
	m.AuthenticData = f2&0x20 != 0
	m.CheckingDisabled = f2&0x10 != 0
	m.Rcode = Rcode(f2 & 0x0F)
	m.TrailingBytes = 0
	var counts [4]uint16
	for i := range counts {
		if counts[i], err = p.u16(); err != nil {
			return err
		}
	}
	m.Question = m.Question[:0]
	for i := 0; i < int(counts[0]); i++ {
		var q Question
		if q.Name, err = p.name(); err != nil {
			return err
		}
		t, err := p.u16()
		if err != nil {
			return err
		}
		q.Type = Type(t)
		c, err := p.u16()
		if err != nil {
			return err
		}
		q.Class = Class(c)
		m.Question = append(m.Question, q)
	}
	for si, dst := range []*[]RR{&m.Answer, &m.Authority, &m.Additional} {
		// Keep the previous elements visible through old so each slot's
		// RData (and its byte-field storage) can be reused in place:
		// append overwrites old[i] only after unpackRR has read it.
		old := *dst
		s := old[:0]
		for i := 0; i < int(counts[si+1]); i++ {
			var reuse RData
			if i < len(old) {
				reuse = old[i].Data
			}
			rr, extRcode, hasExt, err := unpackRR(p, reuse)
			if err != nil {
				*dst = s
				return err
			}
			if hasExt {
				m.Rcode |= Rcode(extRcode) << 4
			}
			s = append(s, rr)
		}
		*dst = s
	}
	m.TrailingBytes = p.remaining()
	return nil
}

// unpackRR decodes one resource record. reuse, when non-nil and of the
// record's concrete type, is overwritten in place instead of allocating
// a fresh RData (the unpack-into fast path). For OPT records the
// extended-rcode byte is returned with hasExt set (by value, so the hot
// path never heap-allocates it).
func unpackRR(p *parser, reuse RData) (rr RR, extRcode uint8, hasExt bool, err error) {
	if rr.Name, err = p.name(); err != nil {
		return rr, 0, false, err
	}
	t16, err := p.u16()
	if err != nil {
		return rr, 0, false, err
	}
	typ := Type(t16)
	c16, err := p.u16()
	if err != nil {
		return rr, 0, false, err
	}
	rr.Class = Class(c16)
	if rr.TTL, err = p.u32(); err != nil {
		return rr, 0, false, err
	}
	rdlen, err := p.u16()
	if err != nil {
		return rr, 0, false, err
	}
	if p.remaining() < int(rdlen) {
		return rr, 0, false, errTruncated
	}
	data := reuse
	if data == nil || data.Type() != typ {
		data = newRData(typ)
	}
	start := p.off
	if err := data.unpack(p, int(rdlen)); err != nil {
		return rr, 0, false, err
	}
	if p.off != start+int(rdlen) {
		return rr, 0, false, fmt.Errorf("dnswire: %s rdata length mismatch", typ)
	}
	rr.Data = data
	if typ == TypeOPT {
		return rr, uint8(rr.TTL >> 24), true, nil
	}
	return rr, 0, false, nil
}

// NewQuery builds a standard query for (name, type) with a fresh
// question section and the RD bit clear (iterative-resolver style).
func NewQuery(id uint16, name string, t Type) *Message {
	m := &Message{}
	m.InitQuery(id, name, t)
	return m
}

// InitQuery resets m in place to a standard query for (name, type),
// reusing the question-slice storage. The answer and authority sections
// are emptied; the additional section is intentionally retained so that
// a previously attached OPT record can be updated in place by SetEDNS —
// callers reusing a query message across attempts must either call
// SetEDNS after InitQuery or clear Additional themselves.
func (m *Message) InitQuery(id uint16, name string, t Type) {
	m.ID = id
	m.Response = false
	m.Opcode = 0
	m.Authoritative = false
	m.Truncated = false
	m.RecursionDesired = false
	m.RecursionAvailable = false
	m.AuthenticData = false
	m.CheckingDisabled = false
	m.Rcode = 0
	m.TrailingBytes = 0
	m.Question = append(m.Question[:0],
		Question{Name: CanonicalName(name), Type: t, Class: ClassIN})
	m.Answer = m.Answer[:0]
	m.Authority = m.Authority[:0]
}

// Summary renders a compact one-line description, useful in logs.
func (m *Message) Summary() string {
	var sb strings.Builder
	if m.Response {
		fmt.Fprintf(&sb, "resp %s", m.Rcode)
	} else {
		sb.WriteString("query")
	}
	for _, q := range m.Question {
		fmt.Fprintf(&sb, " %s", q)
	}
	fmt.Fprintf(&sb, " an=%d au=%d ad=%d", len(m.Answer), len(m.Authority), len(m.Additional))
	return sb.String()
}
