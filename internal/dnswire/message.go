package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// RR is a resource record: owner name, class, TTL and typed RDATA.
type RR struct {
	Name  string
	Class Class
	TTL   uint32
	Data  RData
}

// Type returns the RR type taken from the typed payload.
func (r RR) Type() Type {
	if r.Data == nil {
		return TypeNone
	}
	return r.Data.Type()
}

// String renders the record in master-file presentation form.
func (r RR) String() string {
	return fmt.Sprintf("%s\t%d\t%s\t%s\t%s",
		CanonicalName(r.Name), r.TTL, r.Class, r.Type(), r.Data.String())
}

// Equal reports whether two RRs have the same owner, class, type and
// RDATA (TTL excluded, per RRset-membership semantics).
func (r RR) Equal(o RR) bool {
	if CanonicalName(r.Name) != CanonicalName(o.Name) || r.Class != o.Class || r.Type() != o.Type() {
		return false
	}
	a, errA := RDataWire(r.Data)
	b, errB := RDataWire(o.Data)
	return errA == nil && errB == nil && string(a) == string(b)
}

// RDataWire returns the uncompressed wire encoding of an RDATA payload.
func RDataWire(d RData) ([]byte, error) {
	b := &builder{}
	d.pack(b)
	if b.err != nil {
		return nil, b.err
	}
	return b.buf, nil
}

// Question is a query tuple.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// String renders the question in dig-like form.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", CanonicalName(q.Name), q.Class, q.Type)
}

// Message is a DNS message (RFC 1035 §4).
type Message struct {
	ID                 uint16
	Response           bool
	Opcode             Opcode
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	AuthenticData      bool
	CheckingDisabled   bool
	Rcode              Rcode

	Question   []Question
	Answer     []RR
	Authority  []RR
	Additional []RR
}

// Errors returned by message packing and unpacking.
var (
	ErrTooManyRecords = errors.New("dnswire: section exceeds 65535 records")
	// ErrTruncated indicates the input ended before the structure did.
	ErrTruncated = errTruncated
)

// Pack serialises the message with name compression on owner names.
func (m *Message) Pack() ([]byte, error) {
	return m.packLimit(0)
}

// PackTruncating serialises the message; if the result exceeds limit
// octets, answer/authority/additional records are dropped and the TC
// bit set, mirroring authoritative-server UDP behaviour. limit <= 0
// means no limit.
func (m *Message) PackTruncating(limit int) ([]byte, error) {
	return m.packLimit(limit)
}

func (m *Message) packLimit(limit int) ([]byte, error) {
	out, err := m.packOnce()
	if err != nil {
		return nil, err
	}
	if limit <= 0 || len(out) <= limit {
		return out, nil
	}
	// Too large: emit a truncated response with an empty answer section
	// (clients retry over TCP; partial RRsets would be misleading).
	tm := *m
	tm.Answer, tm.Authority = nil, nil
	tm.Additional = optOnly(m.Additional)
	tm.Truncated = true
	return tm.packOnce()
}

func optOnly(rrs []RR) []RR {
	for _, rr := range rrs {
		if rr.Type() == TypeOPT {
			return []RR{rr}
		}
	}
	return nil
}

func (m *Message) packOnce() ([]byte, error) {
	for _, s := range [][]RR{m.Answer, m.Authority, m.Additional} {
		if len(s) > 0xFFFF {
			return nil, ErrTooManyRecords
		}
	}
	if len(m.Question) > 0xFFFF {
		return nil, ErrTooManyRecords
	}
	b := &builder{cmap: make(map[string]int)}
	b.u16(m.ID)
	var f1 uint8
	if m.Response {
		f1 |= 0x80
	}
	f1 |= uint8(m.Opcode) << 3
	if m.Authoritative {
		f1 |= 0x04
	}
	if m.Truncated {
		f1 |= 0x02
	}
	if m.RecursionDesired {
		f1 |= 0x01
	}
	b.u8(f1)
	var f2 uint8
	if m.RecursionAvailable {
		f2 |= 0x80
	}
	if m.AuthenticData {
		f2 |= 0x20
	}
	if m.CheckingDisabled {
		f2 |= 0x10
	}
	f2 |= uint8(m.Rcode & 0x0F)
	b.u8(f2)
	b.u16(uint16(len(m.Question)))
	b.u16(uint16(len(m.Answer)))
	b.u16(uint16(len(m.Authority)))
	b.u16(uint16(len(m.Additional)))
	for _, q := range m.Question {
		b.name(q.Name, true)
		b.u16(uint16(q.Type))
		b.u16(uint16(q.Class))
	}
	for _, sec := range [][]RR{m.Answer, m.Authority, m.Additional} {
		for _, rr := range sec {
			if err := packRR(b, rr, m.Rcode); err != nil {
				return nil, err
			}
		}
	}
	if b.err != nil {
		return nil, b.err
	}
	return b.buf, nil
}

func packRR(b *builder, rr RR, rcode Rcode) error {
	if rr.Data == nil {
		return errors.New("dnswire: RR with nil data")
	}
	b.name(rr.Name, true)
	b.u16(uint16(rr.Type()))
	if rr.Type() == TypeOPT {
		// For OPT, the class field carries the UDP payload size and the
		// TTL carries extended rcode/flags; the caller encodes those
		// into Class/TTL via the OPT helpers.
		b.u16(uint16(rr.Class))
		ttl := rr.TTL
		// Fold the upper bits of the rcode into the extended-rcode byte.
		ttl = ttl&0x00FFFFFF | uint32(rcode>>4)<<24
		b.u32(ttl)
	} else {
		b.u16(uint16(rr.Class))
		b.u32(rr.TTL)
	}
	// Reserve rdlength, pack rdata, then patch.
	lenAt := len(b.buf)
	b.u16(0)
	start := len(b.buf)
	rr.Data.pack(b)
	if b.err != nil {
		return b.err
	}
	rdlen := len(b.buf) - start
	if rdlen > 0xFFFF {
		return fmt.Errorf("dnswire: rdata of %s exceeds 65535 octets", rr.Type())
	}
	b.buf[lenAt] = byte(rdlen >> 8)
	b.buf[lenAt+1] = byte(rdlen)
	return nil
}

// Unpack parses a wire-format message.
func Unpack(msg []byte) (*Message, error) {
	p := &parser{msg: msg}
	m := &Message{}
	var err error
	if m.ID, err = p.u16(); err != nil {
		return nil, err
	}
	f1, err := p.u8()
	if err != nil {
		return nil, err
	}
	f2, err := p.u8()
	if err != nil {
		return nil, err
	}
	m.Response = f1&0x80 != 0
	m.Opcode = Opcode(f1 >> 3 & 0x0F)
	m.Authoritative = f1&0x04 != 0
	m.Truncated = f1&0x02 != 0
	m.RecursionDesired = f1&0x01 != 0
	m.RecursionAvailable = f2&0x80 != 0
	m.AuthenticData = f2&0x20 != 0
	m.CheckingDisabled = f2&0x10 != 0
	m.Rcode = Rcode(f2 & 0x0F)
	var counts [4]uint16
	for i := range counts {
		if counts[i], err = p.u16(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < int(counts[0]); i++ {
		var q Question
		if q.Name, err = p.name(); err != nil {
			return nil, err
		}
		t, err := p.u16()
		if err != nil {
			return nil, err
		}
		q.Type = Type(t)
		c, err := p.u16()
		if err != nil {
			return nil, err
		}
		q.Class = Class(c)
		m.Question = append(m.Question, q)
	}
	for si, dst := range []*[]RR{&m.Answer, &m.Authority, &m.Additional} {
		for i := 0; i < int(counts[si+1]); i++ {
			rr, extRcode, err := unpackRR(p)
			if err != nil {
				return nil, err
			}
			if extRcode != nil {
				m.Rcode |= Rcode(*extRcode) << 4
			}
			*dst = append(*dst, rr)
		}
	}
	return m, nil
}

func unpackRR(p *parser) (RR, *uint8, error) {
	var rr RR
	var err error
	if rr.Name, err = p.name(); err != nil {
		return rr, nil, err
	}
	t16, err := p.u16()
	if err != nil {
		return rr, nil, err
	}
	typ := Type(t16)
	c16, err := p.u16()
	if err != nil {
		return rr, nil, err
	}
	rr.Class = Class(c16)
	if rr.TTL, err = p.u32(); err != nil {
		return rr, nil, err
	}
	rdlen, err := p.u16()
	if err != nil {
		return rr, nil, err
	}
	if p.remaining() < int(rdlen) {
		return rr, nil, errTruncated
	}
	data := newRData(typ)
	start := p.off
	if err := data.unpack(p, int(rdlen)); err != nil {
		return rr, nil, err
	}
	if p.off != start+int(rdlen) {
		return rr, nil, fmt.Errorf("dnswire: %s rdata length mismatch", typ)
	}
	rr.Data = data
	var ext *uint8
	if typ == TypeOPT {
		v := uint8(rr.TTL >> 24)
		ext = &v
	}
	return rr, ext, nil
}

// NewQuery builds a standard query for (name, type) with a fresh
// question section and the RD bit clear (iterative-resolver style).
func NewQuery(id uint16, name string, t Type) *Message {
	return &Message{
		ID:       id,
		Question: []Question{{Name: CanonicalName(name), Type: t, Class: ClassIN}},
	}
}

// Summary renders a compact one-line description, useful in logs.
func (m *Message) Summary() string {
	var sb strings.Builder
	if m.Response {
		fmt.Fprintf(&sb, "resp %s", m.Rcode)
	} else {
		sb.WriteString("query")
	}
	for _, q := range m.Question {
		fmt.Fprintf(&sb, " %s", q)
	}
	fmt.Fprintf(&sb, " an=%d au=%d ad=%d", len(m.Answer), len(m.Authority), len(m.Additional))
	return sb.String()
}
