package dnswire

import (
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"net/netip"
	"strings"
)

// RData is the typed payload of a resource record. Implementations pack
// and unpack their wire representation and render presentation format.
type RData interface {
	// Type returns the RR type this payload belongs to.
	Type() Type
	// pack appends the wire-format RDATA to the builder. Names inside
	// RDATA are never compressed (safe for all types, required for
	// DNSSEC-era ones).
	pack(b *builder)
	// unpack decodes rdlen octets of RDATA from the parser. The parser
	// is positioned at the start of the RDATA within the full message so
	// compression pointers in legacy types resolve correctly.
	unpack(p *parser, rdlen int) error
	// String renders the RDATA portion in master-file presentation form.
	String() string
}

// newRData returns a zero value of the concrete RData for t, or a
// *Generic for unknown types (RFC 3597).
func newRData(t Type) RData {
	switch t {
	case TypeA:
		return new(A)
	case TypeAAAA:
		return new(AAAA)
	case TypeNS:
		return new(NS)
	case TypeCNAME:
		return new(CNAME)
	case TypePTR:
		return new(PTR)
	case TypeSOA:
		return new(SOA)
	case TypeMX:
		return new(MX)
	case TypeTXT:
		return new(TXT)
	case TypeSRV:
		return new(SRV)
	case TypeDS:
		return new(DS)
	case TypeCDS:
		return new(CDS)
	case TypeDNSKEY:
		return new(DNSKEY)
	case TypeCDNSKEY:
		return new(CDNSKEY)
	case TypeRRSIG:
		return new(RRSIG)
	case TypeNSEC:
		return new(NSEC)
	case TypeNSEC3:
		return new(NSEC3)
	case TypeNSEC3PARAM:
		return new(NSEC3PARAM)
	case TypeCSYNC:
		return new(CSYNC)
	case TypeDNAME:
		return new(DNAME)
	case TypeCAA:
		return new(CAA)
	case TypeTLSA:
		return new(TLSA)
	case TypeOPT:
		return new(OPT)
	default:
		return &Generic{T: t}
	}
}

// A is an IPv4 address record (RFC 1035 §3.4.1).
type A struct{ Addr netip.Addr }

// Type implements RData.
func (*A) Type() Type { return TypeA }

func (a *A) pack(b *builder) {
	v4 := a.Addr.As4()
	b.bytes(v4[:])
}

func (a *A) unpack(p *parser, rdlen int) error {
	raw, err := p.view(rdlen)
	if err != nil {
		return err
	}
	if len(raw) != 4 {
		return fmt.Errorf("dnswire: A rdata length %d", len(raw))
	}
	a.Addr = netip.AddrFrom4([4]byte(raw))
	return nil
}

func (a *A) String() string { return a.Addr.String() }

// AAAA is an IPv6 address record (RFC 3596).
type AAAA struct{ Addr netip.Addr }

// Type implements RData.
func (*AAAA) Type() Type { return TypeAAAA }

func (a *AAAA) pack(b *builder) {
	v6 := a.Addr.As16()
	b.bytes(v6[:])
}

func (a *AAAA) unpack(p *parser, rdlen int) error {
	raw, err := p.view(rdlen)
	if err != nil {
		return err
	}
	if len(raw) != 16 {
		return fmt.Errorf("dnswire: AAAA rdata length %d", len(raw))
	}
	a.Addr = netip.AddrFrom16([16]byte(raw))
	return nil
}

func (a *AAAA) String() string { return a.Addr.String() }

// singleName is the shared shape of NS, CNAME and PTR RDATA.
type singleName struct{ Target string }

func (s *singleName) pack(b *builder) { b.name(s.Target, false) }

func (s *singleName) unpack(p *parser, _ int) error {
	n, err := p.name()
	if err != nil {
		return err
	}
	s.Target = n
	return nil
}

func (s *singleName) String() string { return CanonicalName(s.Target) }

// NS is a nameserver record.
type NS struct{ singleName }

// Type implements RData.
func (*NS) Type() Type { return TypeNS }

// NewNS returns an NS record payload pointing at target.
func NewNS(target string) *NS { return &NS{singleName{CanonicalName(target)}} }

// CNAME is an alias record.
type CNAME struct{ singleName }

// Type implements RData.
func (*CNAME) Type() Type { return TypeCNAME }

// NewCNAME returns a CNAME payload pointing at target.
func NewCNAME(target string) *CNAME { return &CNAME{singleName{CanonicalName(target)}} }

// PTR is a pointer record.
type PTR struct{ singleName }

// Type implements RData.
func (*PTR) Type() Type { return TypePTR }

// SOA is a start-of-authority record (RFC 1035 §3.3.13).
type SOA struct {
	MName   string
	RName   string
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// Type implements RData.
func (*SOA) Type() Type { return TypeSOA }

func (s *SOA) pack(b *builder) {
	b.name(s.MName, false)
	b.name(s.RName, false)
	b.u32(s.Serial)
	b.u32(s.Refresh)
	b.u32(s.Retry)
	b.u32(s.Expire)
	b.u32(s.Minimum)
}

func (s *SOA) unpack(p *parser, _ int) error {
	var err error
	if s.MName, err = p.name(); err != nil {
		return err
	}
	if s.RName, err = p.name(); err != nil {
		return err
	}
	for _, dst := range []*uint32{&s.Serial, &s.Refresh, &s.Retry, &s.Expire, &s.Minimum} {
		if *dst, err = p.u32(); err != nil {
			return err
		}
	}
	return nil
}

func (s *SOA) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		CanonicalName(s.MName), CanonicalName(s.RName),
		s.Serial, s.Refresh, s.Retry, s.Expire, s.Minimum)
}

// MX is a mail-exchanger record.
type MX struct {
	Preference uint16
	Host       string
}

// Type implements RData.
func (*MX) Type() Type { return TypeMX }

func (m *MX) pack(b *builder) {
	b.u16(m.Preference)
	b.name(m.Host, false)
}

func (m *MX) unpack(p *parser, _ int) error {
	var err error
	if m.Preference, err = p.u16(); err != nil {
		return err
	}
	m.Host, err = p.name()
	return err
}

func (m *MX) String() string {
	return fmt.Sprintf("%d %s", m.Preference, CanonicalName(m.Host))
}

// TXT is a text record holding one or more character-strings.
type TXT struct{ Strings []string }

// Type implements RData.
func (*TXT) Type() Type { return TypeTXT }

func (t *TXT) pack(b *builder) {
	ss := t.Strings
	if len(ss) == 0 {
		ss = []string{""}
	}
	for _, s := range ss {
		if len(s) > 255 {
			b.err = fmt.Errorf("dnswire: TXT string exceeds 255 octets")
			return
		}
		b.u8(uint8(len(s)))
		b.str(s)
	}
}

func (t *TXT) unpack(p *parser, rdlen int) error {
	end := p.off + rdlen
	t.Strings = t.Strings[:0]
	for p.off < end {
		n, err := p.u8()
		if err != nil {
			return err
		}
		s, err := p.view(int(n))
		if err != nil {
			return err
		}
		t.Strings = append(t.Strings, string(s))
	}
	return nil
}

func (t *TXT) String() string {
	parts := make([]string, len(t.Strings))
	for i, s := range t.Strings {
		parts[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(parts, " ")
}

// SRV is a service-location record (RFC 2782).
type SRV struct {
	Priority uint16
	Weight   uint16
	Port     uint16
	Target   string
}

// Type implements RData.
func (*SRV) Type() Type { return TypeSRV }

func (s *SRV) pack(b *builder) {
	b.u16(s.Priority)
	b.u16(s.Weight)
	b.u16(s.Port)
	b.name(s.Target, false)
}

func (s *SRV) unpack(p *parser, _ int) error {
	var err error
	if s.Priority, err = p.u16(); err != nil {
		return err
	}
	if s.Weight, err = p.u16(); err != nil {
		return err
	}
	if s.Port, err = p.u16(); err != nil {
		return err
	}
	s.Target, err = p.name()
	return err
}

func (s *SRV) String() string {
	return fmt.Sprintf("%d %d %d %s", s.Priority, s.Weight, s.Port, CanonicalName(s.Target))
}

// DS is a delegation-signer record (RFC 4034 §5).
type DS struct {
	KeyTag     uint16
	Algorithm  uint8
	DigestType uint8
	Digest     []byte
}

// Type implements RData.
func (*DS) Type() Type { return TypeDS }

func (d *DS) pack(b *builder) {
	b.u16(d.KeyTag)
	b.u8(d.Algorithm)
	b.u8(d.DigestType)
	b.bytes(d.Digest)
}

func (d *DS) unpack(p *parser, rdlen int) error {
	var err error
	if d.KeyTag, err = p.u16(); err != nil {
		return err
	}
	if d.Algorithm, err = p.u8(); err != nil {
		return err
	}
	if d.DigestType, err = p.u8(); err != nil {
		return err
	}
	d.Digest, err = p.takeInto(d.Digest, rdlen-4)
	return err
}

func (d *DS) String() string {
	return fmt.Sprintf("%d %d %d %s", d.KeyTag, d.Algorithm, d.DigestType,
		strings.ToUpper(hex.EncodeToString(d.Digest)))
}

// IsDelete reports whether this record is the RFC 8078 §4 "delete DS"
// sentinel (algorithm 0). Only meaningful for CDS/CDNSKEY content.
func (d *DS) IsDelete() bool { return d.Algorithm == AlgDELETE }

// CDS is a child-published copy of a DS record (RFC 7344 §3.1).
type CDS struct{ DS }

// Type implements RData.
func (*CDS) Type() Type { return TypeCDS }

// DNSKEY is a DNSSEC public-key record (RFC 4034 §2).
type DNSKEY struct {
	Flags     uint16
	Protocol  uint8
	Algorithm uint8
	PublicKey []byte
}

// Type implements RData.
func (*DNSKEY) Type() Type { return TypeDNSKEY }

func (k *DNSKEY) pack(b *builder) {
	b.u16(k.Flags)
	b.u8(k.Protocol)
	b.u8(k.Algorithm)
	b.bytes(k.PublicKey)
}

func (k *DNSKEY) unpack(p *parser, rdlen int) error {
	var err error
	if k.Flags, err = p.u16(); err != nil {
		return err
	}
	if k.Protocol, err = p.u8(); err != nil {
		return err
	}
	if k.Algorithm, err = p.u8(); err != nil {
		return err
	}
	k.PublicKey, err = p.takeInto(k.PublicKey, rdlen-4)
	return err
}

func (k *DNSKEY) String() string {
	return fmt.Sprintf("%d %d %d %s", k.Flags, k.Protocol, k.Algorithm,
		base64.StdEncoding.EncodeToString(k.PublicKey))
}

// IsSEP reports whether the SEP (key-signing key) bit is set.
func (k *DNSKEY) IsSEP() bool { return k.Flags&DNSKEYFlagSEP != 0 }

// IsZoneKey reports whether the ZONE bit is set; keys without it must
// not be used to verify zone data (RFC 4034 §2.1.1).
func (k *DNSKEY) IsZoneKey() bool { return k.Flags&DNSKEYFlagZone != 0 }

// IsDelete reports whether this record is the RFC 8078 §4 delete
// sentinel (algorithm 0). Only meaningful for CDNSKEY content.
func (k *DNSKEY) IsDelete() bool { return k.Algorithm == AlgDELETE }

// CDNSKEY is a child-published copy of a DNSKEY record (RFC 7344 §3.2).
type CDNSKEY struct{ DNSKEY }

// Type implements RData.
func (*CDNSKEY) Type() Type { return TypeCDNSKEY }

// RRSIG is a DNSSEC signature record (RFC 4034 §3).
type RRSIG struct {
	TypeCovered Type
	Algorithm   uint8
	Labels      uint8
	OrigTTL     uint32
	Expiration  uint32
	Inception   uint32
	KeyTag      uint16
	SignerName  string
	Signature   []byte
}

// Type implements RData.
func (*RRSIG) Type() Type { return TypeRRSIG }

func (r *RRSIG) pack(b *builder) {
	b.u16(uint16(r.TypeCovered))
	b.u8(r.Algorithm)
	b.u8(r.Labels)
	b.u32(r.OrigTTL)
	b.u32(r.Expiration)
	b.u32(r.Inception)
	b.u16(r.KeyTag)
	b.name(r.SignerName, false)
	b.bytes(r.Signature)
}

func (r *RRSIG) unpack(p *parser, rdlen int) error {
	end := p.off + rdlen
	var err error
	var tc uint16
	if tc, err = p.u16(); err != nil {
		return err
	}
	r.TypeCovered = Type(tc)
	if r.Algorithm, err = p.u8(); err != nil {
		return err
	}
	if r.Labels, err = p.u8(); err != nil {
		return err
	}
	if r.OrigTTL, err = p.u32(); err != nil {
		return err
	}
	if r.Expiration, err = p.u32(); err != nil {
		return err
	}
	if r.Inception, err = p.u32(); err != nil {
		return err
	}
	if r.KeyTag, err = p.u16(); err != nil {
		return err
	}
	if r.SignerName, err = p.name(); err != nil {
		return err
	}
	r.Signature, err = p.takeInto(r.Signature, end-p.off)
	return err
}

func (r *RRSIG) String() string {
	return fmt.Sprintf("%s %d %d %d %d %d %d %s %s",
		r.TypeCovered, r.Algorithm, r.Labels, r.OrigTTL,
		r.Expiration, r.Inception, r.KeyTag, CanonicalName(r.SignerName),
		base64.StdEncoding.EncodeToString(r.Signature))
}

// NSEC is an authenticated-denial record (RFC 4034 §4).
type NSEC struct {
	NextDomain string
	Types      []Type
}

// Type implements RData.
func (*NSEC) Type() Type { return TypeNSEC }

func (n *NSEC) pack(b *builder) {
	b.name(n.NextDomain, false)
	b.buf = packTypeBitmap(b.buf, n.Types)
}

func (n *NSEC) unpack(p *parser, rdlen int) error {
	end := p.off + rdlen
	var err error
	if n.NextDomain, err = p.name(); err != nil {
		return err
	}
	raw, err := p.view(end - p.off)
	if err != nil {
		return err
	}
	n.Types, err = unpackTypeBitmapInto(n.Types[:0], raw)
	return err
}

func (n *NSEC) String() string {
	parts := []string{CanonicalName(n.NextDomain)}
	for _, t := range n.Types {
		parts = append(parts, t.String())
	}
	return strings.Join(parts, " ")
}

// NSEC3 is a hashed authenticated-denial record (RFC 5155 §3).
type NSEC3 struct {
	HashAlg    uint8
	Flags      uint8
	Iterations uint16
	Salt       []byte
	NextHashed []byte
	Types      []Type
}

// Type implements RData.
func (*NSEC3) Type() Type { return TypeNSEC3 }

func (n *NSEC3) pack(b *builder) {
	b.u8(n.HashAlg)
	b.u8(n.Flags)
	b.u16(n.Iterations)
	b.u8(uint8(len(n.Salt)))
	b.bytes(n.Salt)
	b.u8(uint8(len(n.NextHashed)))
	b.bytes(n.NextHashed)
	b.buf = packTypeBitmap(b.buf, n.Types)
}

func (n *NSEC3) unpack(p *parser, rdlen int) error {
	end := p.off + rdlen
	var err error
	if n.HashAlg, err = p.u8(); err != nil {
		return err
	}
	if n.Flags, err = p.u8(); err != nil {
		return err
	}
	if n.Iterations, err = p.u16(); err != nil {
		return err
	}
	var sl uint8
	if sl, err = p.u8(); err != nil {
		return err
	}
	if n.Salt, err = p.takeInto(n.Salt, int(sl)); err != nil {
		return err
	}
	var hl uint8
	if hl, err = p.u8(); err != nil {
		return err
	}
	if n.NextHashed, err = p.takeInto(n.NextHashed, int(hl)); err != nil {
		return err
	}
	raw, err := p.view(end - p.off)
	if err != nil {
		return err
	}
	n.Types, err = unpackTypeBitmapInto(n.Types[:0], raw)
	return err
}

func (n *NSEC3) String() string {
	salt := "-"
	if len(n.Salt) > 0 {
		salt = strings.ToUpper(hex.EncodeToString(n.Salt))
	}
	parts := []string{
		fmt.Sprintf("%d %d %d %s %s", n.HashAlg, n.Flags, n.Iterations, salt,
			base32hexNoPad(n.NextHashed)),
	}
	for _, t := range n.Types {
		parts = append(parts, t.String())
	}
	return strings.Join(parts, " ")
}

// NSEC3PARAM advertises the NSEC3 parameters of a zone (RFC 5155 §4).
type NSEC3PARAM struct {
	HashAlg    uint8
	Flags      uint8
	Iterations uint16
	Salt       []byte
}

// Type implements RData.
func (*NSEC3PARAM) Type() Type { return TypeNSEC3PARAM }

func (n *NSEC3PARAM) pack(b *builder) {
	b.u8(n.HashAlg)
	b.u8(n.Flags)
	b.u16(n.Iterations)
	b.u8(uint8(len(n.Salt)))
	b.bytes(n.Salt)
}

func (n *NSEC3PARAM) unpack(p *parser, _ int) error {
	var err error
	if n.HashAlg, err = p.u8(); err != nil {
		return err
	}
	if n.Flags, err = p.u8(); err != nil {
		return err
	}
	if n.Iterations, err = p.u16(); err != nil {
		return err
	}
	var sl uint8
	if sl, err = p.u8(); err != nil {
		return err
	}
	n.Salt, err = p.takeInto(n.Salt, int(sl))
	return err
}

func (n *NSEC3PARAM) String() string {
	salt := "-"
	if len(n.Salt) > 0 {
		salt = strings.ToUpper(hex.EncodeToString(n.Salt))
	}
	return fmt.Sprintf("%d %d %d %s", n.HashAlg, n.Flags, n.Iterations, salt)
}

// CSYNC is a child-to-parent synchronisation record (RFC 7477).
type CSYNC struct {
	SOASerial uint32
	Flags     uint16
	Types     []Type
}

// Type implements RData.
func (*CSYNC) Type() Type { return TypeCSYNC }

func (c *CSYNC) pack(b *builder) {
	b.u32(c.SOASerial)
	b.u16(c.Flags)
	b.buf = packTypeBitmap(b.buf, c.Types)
}

func (c *CSYNC) unpack(p *parser, rdlen int) error {
	end := p.off + rdlen
	var err error
	if c.SOASerial, err = p.u32(); err != nil {
		return err
	}
	if c.Flags, err = p.u16(); err != nil {
		return err
	}
	raw, err := p.view(end - p.off)
	if err != nil {
		return err
	}
	c.Types, err = unpackTypeBitmapInto(c.Types[:0], raw)
	return err
}

func (c *CSYNC) String() string {
	parts := []string{fmt.Sprintf("%d %d", c.SOASerial, c.Flags)}
	for _, t := range c.Types {
		parts = append(parts, t.String())
	}
	return strings.Join(parts, " ")
}

// Generic holds the RDATA of a type this package has no structured
// decoder for (RFC 3597 unknown-type handling).
type Generic struct {
	T      Type
	Octets []byte
}

// Type implements RData.
func (g *Generic) Type() Type { return g.T }

func (g *Generic) pack(b *builder) { b.bytes(g.Octets) }

func (g *Generic) unpack(p *parser, rdlen int) error {
	var err error
	g.Octets, err = p.takeInto(g.Octets, rdlen)
	return err
}

func (g *Generic) String() string {
	return fmt.Sprintf("\\# %d %s", len(g.Octets), strings.ToUpper(hex.EncodeToString(g.Octets)))
}

const base32HexAlphabet = "0123456789ABCDEFGHIJKLMNOPQRSTUV"

// base32hexNoPad encodes b in the base32hex alphabet without padding,
// as used by NSEC3 owner names (RFC 5155 §1.3).
func base32hexNoPad(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	var sb strings.Builder
	var acc uint
	var bits uint
	for _, c := range b {
		acc = acc<<8 | uint(c)
		bits += 8
		for bits >= 5 {
			bits -= 5
			sb.WriteByte(base32HexAlphabet[acc>>bits&0x1F])
		}
	}
	if bits > 0 {
		sb.WriteByte(base32HexAlphabet[acc<<(5-bits)&0x1F])
	}
	return sb.String()
}

// DNAME redirects an entire subtree (RFC 6672); registries use it for
// TLD aliasing.
type DNAME struct{ singleName }

// Type implements RData.
func (*DNAME) Type() Type { return TypeDNAME }

// NewDNAME returns a DNAME payload pointing at target.
func NewDNAME(target string) *DNAME { return &DNAME{singleName{CanonicalName(target)}} }

// CAA restricts which certificate authorities may issue for a domain
// (RFC 8659); CT-log-derived domain lists (§3 source v) exist because
// of the certificate ecosystem CAA is part of.
type CAA struct {
	Flags uint8
	Tag   string
	Value string
}

// Type implements RData.
func (*CAA) Type() Type { return TypeCAA }

func (c *CAA) pack(b *builder) {
	b.u8(c.Flags)
	if len(c.Tag) == 0 || len(c.Tag) > 255 {
		b.err = fmt.Errorf("dnswire: CAA tag length %d", len(c.Tag))
		return
	}
	b.u8(uint8(len(c.Tag)))
	b.str(c.Tag)
	b.str(c.Value)
}

func (c *CAA) unpack(p *parser, rdlen int) error {
	end := p.off + rdlen
	var err error
	if c.Flags, err = p.u8(); err != nil {
		return err
	}
	tl, err := p.u8()
	if err != nil {
		return err
	}
	tag, err := p.view(int(tl))
	if err != nil {
		return err
	}
	c.Tag = string(tag)
	val, err := p.view(end - p.off)
	if err != nil {
		return err
	}
	c.Value = string(val)
	return nil
}

func (c *CAA) String() string {
	return fmt.Sprintf("%d %s %q", c.Flags, c.Tag, c.Value)
}

// TLSA binds TLS certificates to names via DNSSEC (DANE, RFC 6698) —
// one of the main motivations for completing DNSSEC chains that the
// bootstrapping work serves.
type TLSA struct {
	Usage        uint8
	Selector     uint8
	MatchingType uint8
	CertData     []byte
}

// Type implements RData.
func (*TLSA) Type() Type { return TypeTLSA }

func (t *TLSA) pack(b *builder) {
	b.u8(t.Usage)
	b.u8(t.Selector)
	b.u8(t.MatchingType)
	b.bytes(t.CertData)
}

func (t *TLSA) unpack(p *parser, rdlen int) error {
	var err error
	if t.Usage, err = p.u8(); err != nil {
		return err
	}
	if t.Selector, err = p.u8(); err != nil {
		return err
	}
	if t.MatchingType, err = p.u8(); err != nil {
		return err
	}
	t.CertData, err = p.takeInto(t.CertData, rdlen-3)
	return err
}

func (t *TLSA) String() string {
	return fmt.Sprintf("%d %d %d %s", t.Usage, t.Selector, t.MatchingType,
		strings.ToUpper(hex.EncodeToString(t.CertData)))
}
