package obs

import (
	"strings"
	"testing"
	"time"
)

func TestShardRollupRender(t *testing.T) {
	var buf strings.Builder
	r := NewShardRollup(&buf, 3)
	// Deterministic clock so the zones/s figure is assertable.
	base := time.Unix(1000, 0)
	r.start = base
	r.now = func() time.Time { return base.Add(10 * time.Second) }

	r.Update(0, 500, 500, ShardDone)
	r.Update(1, 250, 500, ShardRunning)
	r.Update(2, 100, 500, ShardRestarting)
	r.Render()

	line := buf.String()
	for _, want := range []string{
		"shards: 2 running, 1 done",
		"850/1500 zones",
		"(85.0/s)",
		"s0 500/500 done",
		"s1 250/500 running",
		"s2 100/500 restarting",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("rollup line missing %q:\n%s", want, line)
		}
	}

	done, total := r.Totals()
	if done != 850 || total != 1500 {
		t.Errorf("Totals = %d/%d, want 850/1500", done, total)
	}
}

func TestShardRollupNilAndBounds(t *testing.T) {
	var r *ShardRollup
	r.Update(0, 1, 2, ShardRunning) // no-op, must not panic
	r.Render()
	if done, total := r.Totals(); done != 0 || total != 0 {
		t.Errorf("nil rollup Totals = %d/%d", done, total)
	}

	var buf strings.Builder
	live := NewShardRollup(&buf, 2)
	live.Update(-1, 9, 9, ShardDone) // out of range: ignored
	live.Update(7, 9, 9, ShardDone)
	if done, total := live.Totals(); done != 0 || total != 0 {
		t.Errorf("out-of-range updates counted: %d/%d", done, total)
	}
	live.Render()
	if !strings.Contains(buf.String(), "s0 0/0 pending") {
		t.Errorf("fresh shards should render pending: %s", buf.String())
	}
}
