package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// ShardRollup aggregates the progress of a sharded scan's worker
// processes into one periodic status line. The coordinator learns each
// shard's position by polling its checkpoint file, so updates arrive
// per shard and out of band; the rollup keeps the latest view and
// renders totals plus a compact per-shard breakdown. A nil *ShardRollup
// is a no-op, mirroring Progress, so the coordinator reports
// unconditionally.
type ShardRollup struct {
	w     io.Writer
	mu    sync.Mutex
	rows  []shardRow
	start time.Time
	now   func() time.Time
}

// shardRow is the last-known state of one shard.
type shardRow struct {
	done, total int
	state       string
}

// Shard lifecycle states as reported by the coordinator.
const (
	ShardPending    = "pending"
	ShardRunning    = "running"
	ShardRestarting = "restarting"
	ShardDone       = "done"
	ShardFailed     = "failed"
)

// NewShardRollup tracks shards workers writing to w.
func NewShardRollup(w io.Writer, shards int) *ShardRollup {
	r := &ShardRollup{w: w, rows: make([]shardRow, shards), now: time.Now}
	for i := range r.rows {
		r.rows[i].state = ShardPending
	}
	r.start = r.now()
	return r
}

// Update records shard's latest position. No-op on nil or out-of-range
// shard indices (a torn checkpoint read must not panic the rollup).
func (r *ShardRollup) Update(shard, done, total int, state string) {
	if r == nil || shard < 0 || shard >= len(r.rows) {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rows[shard] = shardRow{done: done, total: total, state: state}
}

// Totals returns the summed (done, total) across shards.
func (r *ShardRollup) Totals() (done, total int) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, row := range r.rows {
		done += row.done
		total += row.total
	}
	return done, total
}

// Render writes one rollup line: aggregate zones, throughput, and each
// shard's position and state. No-op on nil.
func (r *ShardRollup) Render() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var done, total, running, finished int
	parts := make([]string, 0, len(r.rows))
	for i, row := range r.rows {
		done += row.done
		total += row.total
		switch row.state {
		case ShardRunning, ShardRestarting:
			running++
		case ShardDone:
			finished++
		}
		parts = append(parts, fmt.Sprintf("s%d %d/%d %s", i, row.done, row.total, row.state))
	}
	elapsed := r.now().Sub(r.start).Seconds()
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	fmt.Fprintf(r.w, "shards: %d running, %d done · %d/%d zones (%.1f/s) · %s\n",
		running, finished, done, total, float64(done)/elapsed, strings.Join(parts, " · "))
}
