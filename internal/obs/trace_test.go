package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("example.com.")
	if sp != nil {
		t.Fatal("nil tracer must return a nil span")
	}
	sp.Emit(TraceEvent{Stage: "query", Event: "attempt"})
	sp.Event("resolve", "delegation")
	sp.End("ok")
	if tr.Events() != 0 {
		t.Fatal("nil tracer counted events")
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("nil tracer Close: %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		sp.Emit(TraceEvent{Stage: "query", Event: "attempt"})
	})
	if allocs != 0 {
		t.Fatalf("disabled span allocated %.1f per emit, want 0", allocs)
	}
}

func TestSpanEmitsZoneAndTimestamps(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, "")
	sp := tr.StartSpan("island.example.")
	sp.Emit(TraceEvent{Stage: "resolve", Event: "delegation", Name: "island.example.", Detail: "2 NS"})
	time.Sleep(time.Millisecond)
	sp.Emit(TraceEvent{Stage: "query", Event: "attempt", Server: "192.0.2.1:53", Qtype: "SOA", Attempt: 1})
	sp.End("ok")
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	evs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for _, ev := range evs {
		if ev.Zone != "island.example." {
			t.Fatalf("event zone = %q, want island.example.", ev.Zone)
		}
	}
	if evs[1].TUS <= evs[0].TUS {
		t.Fatalf("timestamps not increasing: %d then %d", evs[0].TUS, evs[1].TUS)
	}
	if evs[2].Stage != "scan" || evs[2].Event != "end" || evs[2].Outcome != "ok" {
		t.Fatalf("end event = %+v", evs[2])
	}
	if got := tr.Events(); got != 3 {
		t.Fatalf("Events() = %d, want 3", got)
	}
}

func TestTracerZoneFilter(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, "keep.example.")
	tr.StartSpan("keep.example.").Event("query", "attempt")
	tr.StartSpan("drop.example.").Event("query", "attempt")
	tr.StartSpan("keep.example.").End("ok")
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	evs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(evs) != 2 {
		t.Fatalf("filter kept %d events, want 2:\n%s", len(evs), buf.String())
	}
	for _, ev := range evs {
		if ev.Zone != "keep.example." {
			t.Fatalf("filter leaked zone %q", ev.Zone)
		}
	}
}

func TestWithSpanRoundTrip(t *testing.T) {
	ctx := context.Background()
	if SpanFrom(ctx) != nil {
		t.Fatal("empty context must carry no span")
	}
	if got := WithSpan(ctx, nil); got != ctx {
		t.Fatal("attaching a nil span must return ctx unchanged")
	}
	tr := NewTracer(&bytes.Buffer{}, "")
	sp := tr.StartSpan("example.com.")
	if got := SpanFrom(WithSpan(ctx, sp)); got != sp {
		t.Fatal("span did not round-trip through context")
	}
}

func TestReadTraceRejectsMalformedLines(t *testing.T) {
	_, err := ReadTrace(strings.NewReader(`{"zone":"a.","stage":"query","event":"attempt"}` + "\nnot-json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 parse error, got %v", err)
	}
	_, err = ReadTrace(strings.NewReader(`{"stage":"query","event":"attempt"}` + "\n"))
	if err == nil || !strings.Contains(err.Error(), "missing zone") {
		t.Fatalf("want missing-zone error, got %v", err)
	}
}

func TestProgressRendersAndStops(t *testing.T) {
	var buf syncBuffer
	p := NewProgress(&buf, 10, 5*time.Millisecond)
	for i := 0; i < 10; i++ {
		p.Done(i%5 == 0)
	}
	time.Sleep(20 * time.Millisecond)
	p.Stop()
	p.Stop() // idempotent
	out := buf.String()
	if !strings.Contains(out, "10/10 zones") {
		t.Fatalf("final progress line missing:\n%s", out)
	}
	if !strings.Contains(out, "err 20.0%") {
		t.Fatalf("error rate missing:\n%s", out)
	}
	var np *Progress
	np.Done(false)
	np.Stop()
}

type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
