package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Progress prints periodic scan-progress lines (zones/s, ETA, error
// rate) to a writer, typically stderr. Workers call Done once per
// finished zone; a background ticker renders. A nil *Progress is a
// no-op, so the scanner reports unconditionally.
type Progress struct {
	w        io.Writer
	total    int64
	done     atomic.Int64
	failed   atomic.Int64
	start    time.Time
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewProgress starts a reporter for total zones, emitting a line every
// interval (default 2s when <= 0).
func NewProgress(w io.Writer, total int, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	p := &Progress{w: w, total: int64(total), start: time.Now(), stop: make(chan struct{})}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-tick.C:
				p.render()
			}
		}
	}()
	return p
}

// Done records one finished zone. No-op on nil.
func (p *Progress) Done(failed bool) {
	if p == nil {
		return
	}
	p.done.Add(1)
	if failed {
		p.failed.Add(1)
	}
}

// Stop halts the ticker and prints a final summary line. No-op on nil;
// safe to call more than once.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	p.stopOnce.Do(func() {
		close(p.stop)
		p.wg.Wait()
		p.render()
	})
}

func (p *Progress) render() {
	done := p.done.Load()
	failed := p.failed.Load()
	elapsed := time.Since(p.start).Seconds()
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	rate := float64(done) / elapsed
	eta := "?"
	if rate > 0 && done < p.total {
		eta = (time.Duration(float64(p.total-done)/rate) * time.Second).Truncate(time.Second).String()
	} else if done >= p.total {
		eta = "0s"
	}
	errRate := 0.0
	if done > 0 {
		errRate = 100 * float64(failed) / float64(done)
	}
	fmt.Fprintf(p.w, "progress: %d/%d zones (%.1f/s) eta %s err %.1f%%\n",
		done, p.total, rate, eta, errRate)
}
