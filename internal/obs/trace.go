package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// TraceEvent is one JSONL row in the trace stream. Zone and Stage are
// always set; the remaining fields are stage-specific and omitted when
// empty so rows stay compact.
type TraceEvent struct {
	TUS     int64  `json:"t_us"` // microseconds since the span started
	Zone    string `json:"zone"`
	Stage   string `json:"stage"` // resolve | query | validate | classify | scan
	Event   string `json:"event"` // e.g. delegation, attempt, retry, cache_hit, ds_absent, decision
	Server  string `json:"server,omitempty"`
	Name    string `json:"name,omitempty"`
	Qtype   string `json:"qtype,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Rcode   string `json:"rcode,omitempty"`
	Err     string `json:"err,omitempty"`
	Outcome string `json:"outcome,omitempty"`
	DurUS   int64  `json:"dur_us,omitempty"`
	Detail  string `json:"detail,omitempty"`
	N       int    `json:"n,omitempty"`
}

// Tracer serialises trace events from concurrent spans onto one JSONL
// writer. An optional zone filter restricts output to a single zone's
// decision trace (-trace-zone). A nil *Tracer is a valid no-op, and
// StartSpan on it returns a nil (no-op) span, so instrumented code never
// branches on "is tracing on".
type Tracer struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	filter string // when set, only events for this zone are written
	events int64
}

// NewTracer wraps w in a buffered JSONL trace sink. filterZone of ""
// traces every zone.
func NewTracer(w io.Writer, filterZone string) *Tracer {
	return &Tracer{bw: bufio.NewWriterSize(w, 1<<16), filter: filterZone}
}

// Events reports how many events have been written (post-filter).
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Close flushes buffered events. No-op on a nil tracer.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bw.Flush()
}

// emit takes the event by value so Span.Emit stays allocation-free on
// the disabled path (a *TraceEvent parameter would force the caller's
// event to the heap even when the span is nil).
func (t *Tracer) emit(ev TraceEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.filter != "" && ev.Zone != t.filter {
		return
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return // an event that cannot marshal is dropped, never fatal
	}
	t.bw.Write(line)
	t.bw.WriteByte('\n')
	t.events++
}

// Span is the per-zone event scope. All events emitted through it carry
// the zone name and a timestamp relative to the span start. Nil spans
// swallow every call, so passing a span through context costs nothing
// when tracing is off.
type Span struct {
	tracer *Tracer
	zone   string
	start  time.Time
}

// StartSpan opens a span for one zone. Returns nil (a no-op span) on a
// nil tracer — callers store and use the result unconditionally.
func (t *Tracer) StartSpan(zone string) *Span {
	if t == nil {
		return nil
	}
	return &Span{tracer: t, zone: zone, start: time.Now()}
}

// Zone returns the zone this span traces ("" for nil).
func (s *Span) Zone() string {
	if s == nil {
		return ""
	}
	return s.zone
}

// Emit records one event on the span, filling in zone and relative
// timestamp. The event's other fields are taken as given. No-op on nil.
func (s *Span) Emit(ev TraceEvent) {
	if s == nil {
		return
	}
	ev.Zone = s.zone
	ev.TUS = time.Since(s.start).Microseconds()
	s.tracer.emit(ev)
}

// Event is shorthand for Emit with just stage and event names.
func (s *Span) Event(stage, event string) {
	if s == nil {
		return
	}
	s.Emit(TraceEvent{Stage: stage, Event: event})
}

// End emits the span-closing event carrying the zone's final outcome.
func (s *Span) End(outcome string) {
	if s == nil {
		return
	}
	s.Emit(TraceEvent{Stage: "scan", Event: "end", Outcome: outcome, DurUS: time.Since(s.start).Microseconds()})
}

type spanKey struct{}

// WithSpan attaches a span to the context so resolver internals can
// emit events without new parameters. Attaching nil is fine — SpanFrom
// will just return nil.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// ReadTrace parses a JSONL trace stream, returning every event. Used by
// `reanalyze -trace` to round-trip -trace-out artefacts in CI.
func ReadTrace(r io.Reader) ([]TraceEvent, error) {
	var events []TraceEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev TraceEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			return events, fmt.Errorf("trace line %d: %w", line, err)
		}
		if ev.Zone == "" || ev.Stage == "" {
			return events, fmt.Errorf("trace line %d: missing zone or stage", line)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return events, fmt.Errorf("trace line %d: %w", line, err)
	}
	return events, nil
}
