package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if got := c.Value(); got != 0 {
		t.Fatalf("nil counter value = %d, want 0", got)
	}
	var g *Gauge
	g.Set(7)
	g.Add(3)
	if got := g.Value(); got != 0 {
		t.Fatalf("nil gauge value = %d, want 0", got)
	}
	var h *Histogram
	h.Observe(1.5)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram is not a no-op")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", DefLatencyBuckets) != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	if s := r.Snapshot(); s.Counters != nil || s.Histograms != nil {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestNilInstrumentsAllocateNothing(t *testing.T) {
	var c *Counter
	var h *Histogram
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(1)
		h.Observe(0.5)
	})
	if allocs != 0 {
		t.Fatalf("disabled instruments allocated %.1f per op, want 0", allocs)
	}
}

func TestRegistrySharesInstrumentsByName(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("queries")
	b := r.Counter("queries")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	a.Add(2)
	b.Inc()
	if got := r.Counter("queries").Value(); got != 3 {
		t.Fatalf("shared counter = %d, want 3", got)
	}
	if r.Histogram("lat", DefLatencyBuckets) != r.Histogram("lat", nil) {
		t.Fatal("same name must return the same histogram regardless of bounds")
	}
}

func TestCountersConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits")
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 6, 20} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if got := h.Sum(); math.Abs(got-38.5) > 1e-9 {
		t.Fatalf("sum = %g, want 38.5", got)
	}
	// Median rank 4 falls in the (2,4] bucket (3 observations there,
	// cumulative before it is 3) — interpolation stays inside (2,4].
	if q := h.Quantile(0.5); q <= 2 || q > 4 {
		t.Fatalf("p50 = %g, want in (2,4]", q)
	}
	// The max lives in the +Inf bucket; quantile caps at the last
	// finite bound.
	if q := h.Quantile(1.0); q != 8 {
		t.Fatalf("p100 = %g, want 8 (last finite bound)", q)
	}
	if q := h.Quantile(0.5); h.Quantile(0.99) < q {
		t.Fatalf("quantiles must be monotonic: p99 %g < p50 %g", h.Quantile(0.99), q)
	}
}

func TestSnapshotJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("resolver_queries_total").Add(42)
	r.Gauge("scan_inflight").Set(3)
	h := r.Histogram("resolver_query_seconds", DefLatencyBuckets)
	h.Observe(0.002)
	h.Observe(0.004)
	h.Observe(1.5)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		`"resolver_queries_total": 42`,
		`"scan_inflight": 3`,
		`"resolver_query_seconds"`,
		`"le": "inf"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, out)
		}
	}
	s := r.Snapshot()
	hs := s.Histograms["resolver_query_seconds"]
	if hs.Count != 3 {
		t.Fatalf("histogram snapshot count = %d, want 3", hs.Count)
	}
	last := hs.Buckets[len(hs.Buckets)-1]
	if !math.IsInf(last.LE, 1) || last.Count != 3 {
		t.Fatalf("+Inf bucket = %+v, want cumulative 3", last)
	}
}

// An exported snapshot must decode back into the Snapshot shape,
// including the "inf" bucket-bound encoding — dnsblast -verify-metrics
// reads dnsd's -metrics-out artefact this way.
func TestSnapshotJSONDecodesBack(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.udp.queries").Add(12)
	r.Gauge("server.inflight").Set(2)
	h := r.Histogram("server.handle.seconds", DefLatencyBuckets)
	h.Observe(0.001)
	h.Observe(100) // lands in the +Inf bucket

	var buf strings.Builder
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal([]byte(buf.String()), &got); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if got.Counters["server.udp.queries"] != 12 || got.Gauges["server.inflight"] != 2 {
		t.Fatalf("decoded snapshot = %+v", got)
	}
	hs, ok := got.Histograms["server.handle.seconds"]
	if !ok || hs.Count != 2 {
		t.Fatalf("decoded histogram = %+v", hs)
	}
	last := hs.Buckets[len(hs.Buckets)-1]
	if !math.IsInf(last.LE, 1) || last.Count != 2 {
		t.Fatalf("decoded +Inf bucket = %+v", last)
	}
	// A malformed bound string is an error, not a silent zero.
	var b BucketSnapshot
	if err := json.Unmarshal([]byte(`{"le":"nan","count":1}`), &b); err == nil {
		t.Error("bogus bucket bound decoded without error")
	}
}
