// Package obs is the reproduction's observability layer: a
// dependency-free metrics registry (counters, gauges, fixed-bucket
// latency histograms), a structured trace-event stream with per-zone
// spans, and a live progress reporter. The paper's YoDNS substrate is
// only trustworthy because its operators could watch the scanner work —
// per-nameserver query behaviour, rate-limit pressure, where
// classification time went (§3); this package gives our scan the same
// visibility without pulling in a metrics framework.
//
// Every instrument is safe to use through a nil pointer: a nil
// *Counter, *Histogram, *Span, *Tracer or *Progress turns each call
// into a no-op without allocating, so instrumented hot paths cost
// nothing when observation is disabled.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value. No-op on a nil gauge.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n. No-op on a nil gauge.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (zero for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Buckets are defined by
// ascending upper bounds; observations above the last bound land in an
// implicit +Inf bucket. All updates are lock-free atomics.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, cumulative on read only
	count  atomic.Int64
	sum    atomic.Int64 // math.Float64bits accumulator, CAS loop
}

// DefLatencyBuckets spans the range the in-memory simulation and a real
// UDP scan both inhabit: 10 µs to 10 s, roughly ×2.5 per step.
var DefLatencyBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(uint64(old)) + v)
		if h.sum.CompareAndSwap(old, int64(next)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start. No-op on a nil
// histogram.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations (zero for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (zero for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(uint64(h.sum.Load()))
}

// Quantile estimates the q-quantile (0..1) from the bucket counts,
// interpolating linearly inside the winning bucket. Returns 0 with no
// observations; values in the +Inf bucket report the last finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	lower := 0.0
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			if i < len(h.bounds) {
				lower = h.bounds[i]
			}
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) {
				return lower // +Inf bucket: report last finite bound
			}
			upper := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lower + (upper-lower)*frac
		}
		cum += n
		if i < len(h.bounds) {
			lower = h.bounds[i]
		}
	}
	return lower
}

// BucketSnapshot is one histogram bucket in a snapshot.
type BucketSnapshot struct {
	LE    float64 `json:"le"` // upper bound; +Inf encoded as "inf" via MarshalJSON
	Count int64   `json:"count"`
}

// HistogramSnapshot is the exported view of a histogram.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	P50     float64          `json:"p50"`
	P90     float64          `json:"p90"`
	P99     float64          `json:"p99"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, shaped for JSON
// export (the -metrics-out artefact).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Registry holds named instruments. Instruments are created on first
// request and shared by name afterwards; all methods are safe for
// concurrent use. A nil *Registry hands out nil instruments, so an
// optional registry can be threaded through constructors unchecked.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later callers share the original bounds).
// A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot copies every instrument's current state.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			hs := HistogramSnapshot{
				Count: h.Count(),
				Sum:   h.Sum(),
				P50:   h.Quantile(0.50),
				P90:   h.Quantile(0.90),
				P99:   h.Quantile(0.99),
			}
			var cum int64
			for i := range h.counts {
				cum += h.counts[i].Load()
				le := math.Inf(1)
				if i < len(h.bounds) {
					le = h.bounds[i]
				}
				hs.Buckets = append(hs.Buckets, BucketSnapshot{LE: le, Count: cum})
			}
			s.Histograms[name] = hs
		}
	}
	return s
}

// MarshalJSON encodes +Inf bounds as the string "inf" (plain floats
// otherwise), keeping the snapshot valid JSON.
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	le := "\"inf\""
	if !math.IsInf(b.LE, 1) {
		le = fmt.Sprintf("%g", b.LE)
	}
	return []byte(fmt.Sprintf(`{"le":%s,"count":%d}`, le, b.Count)), nil
}

// UnmarshalJSON is the inverse of MarshalJSON: it accepts both plain
// float bounds and the "inf" string, so exported snapshots round-trip
// (dnsblast -verify-metrics reads dnsd's -metrics-out this way).
func (b *BucketSnapshot) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    json.RawMessage `json:"le"`
		Count int64           `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	var s string
	if err := json.Unmarshal(raw.LE, &s); err == nil {
		if s != "inf" {
			return fmt.Errorf("obs: bucket bound %q is neither a number nor \"inf\"", s)
		}
		b.LE = math.Inf(1)
		return nil
	}
	return json.Unmarshal(raw.LE, &b.LE)
}

// WriteJSON writes an indented snapshot of the registry to w — the
// -metrics-out artefact.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
