package scan

import (
	"net/netip"
	"strings"
	"testing"

	"dnssecboot/internal/dnswire"
)

func TestOutcomeStringsAndFailed(t *testing.T) {
	cases := []struct {
		o      Outcome
		s      string
		failed bool
	}{
		{OutcomeOK, "ok", false},
		{OutcomeNoData, "nodata", false},
		{OutcomeNXDomain, "nxdomain", false},
		{OutcomeError, "error", true},
		{OutcomeTimeout, "timeout", true},
		{OutcomeUnreachable, "unreachable", true},
	}
	for _, c := range cases {
		if c.o.String() != c.s {
			t.Errorf("String(%d) = %s", c.o, c.o.String())
		}
		if c.o.Failed() != c.failed {
			t.Errorf("Failed(%s) = %v", c.s, c.o.Failed())
		}
	}
}

func TestSamplePairs(t *testing.T) {
	v4a := netip.MustParseAddr("104.16.1.1")
	v4b := netip.MustParseAddr("104.16.1.2")
	v6a := netip.MustParseAddr("2001:db8::1")
	v6b := netip.MustParseAddr("2001:db8::2")
	pairs := []hostAddr{
		{"asa.ns.cloudflare.com.", v4a},
		{"asa.ns.cloudflare.com.", v4b},
		{"asa.ns.cloudflare.com.", v6a},
		{"elliot.ns.cloudflare.com.", v4b},
		{"elliot.ns.cloudflare.com.", v6b},
	}
	got := samplePairs(pairs)
	if len(got) != 2 {
		t.Fatalf("sampled %d pairs, want 2", len(got))
	}
	if !got[0].addr.Is4() || !got[1].addr.Is6() {
		t.Errorf("sample = %v", got)
	}
	// v4-only pools keep one address.
	got4 := samplePairs(pairs[:2])
	if len(got4) != 1 {
		t.Errorf("v4-only sample = %v", got4)
	}
	// Empty filter result falls back to the input.
	if got := samplePairs(nil); got != nil {
		t.Errorf("nil input = %v", got)
	}
}

func TestIntermediateNames(t *testing.T) {
	owner := "_dsboot.example.co.uk._signal.ns1.example.net."
	apex := "_signal.ns1.example.net."
	got := intermediateNames(owner, apex)
	want := []string{
		"example.co.uk._signal.ns1.example.net.",
		"co.uk._signal.ns1.example.net.",
		"uk._signal.ns1.example.net.",
	}
	if len(got) != len(want) {
		t.Fatalf("intermediateNames = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("name %d = %s, want %s", i, got[i], want[i])
		}
	}
	// Adjacent owner/apex yields nothing.
	if got := intermediateNames("_dsboot._signal.ns1.x.", "_signal.ns1.x."); len(got) != 0 {
		t.Errorf("adjacent = %v", got)
	}
}

func TestNSSetsDiffer(t *testing.T) {
	obs := &ZoneObservation{
		ParentNS: []string{"asa.ns.cloudflare.com.", "elliot.ns.cloudflare.com."},
		ChildNS:  []string{"ASA.ns.cloudflare.com.", "elliot.ns.cloudflare.com."},
	}
	if obs.NSSetsDiffer() {
		t.Error("case-insensitive equal sets reported different")
	}
	obs.ChildNS = []string{"asa.ns.cloudflare.com.", "kara.ns.cloudflare.com."}
	if !obs.NSSetsDiffer() {
		t.Error("different sets not detected")
	}
	obs.ChildNS = nil
	if obs.NSSetsDiffer() {
		t.Error("missing child view reported as differing")
	}
}

func TestAllNSHostsUnion(t *testing.T) {
	obs := &ZoneObservation{
		ParentNS: []string{"ns1.a.", "ns2.a."},
		ChildNS:  []string{"NS2.a.", "ns3.a."},
	}
	got := obs.AllNSHosts()
	if len(got) != 3 {
		t.Fatalf("union = %v", got)
	}
}

func TestSampledDecision(t *testing.T) {
	s := New(Config{
		Resolver:         nil,
		SampleSuffixes:   []string{"ns.cloudflare.com."},
		FullScanFraction: 0.05,
		Seed:             1,
	})
	cf := []string{"asa.ns.cloudflare.com.", "elliot.ns.cloudflare.com."}
	mixed := []string{"asa.ns.cloudflare.com.", "ns1.other.net."}
	if s.sampled("x.com.", mixed) {
		t.Error("mixed NS set sampled")
	}
	if s.sampled("x.com.", nil) {
		t.Error("empty NS set sampled")
	}
	// Across many zones, roughly 95 % should be sampled.
	sampledCount := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if s.sampled(zoneName(i), cf) {
			sampledCount++
		}
	}
	frac := float64(sampledCount) / n
	if frac < 0.90 || frac > 0.99 {
		t.Errorf("sampled fraction = %.3f, want ≈0.95", frac)
	}
	// Deterministic per zone.
	if s.sampled("fixed.com.", cf) != s.sampled("fixed.com.", cf) {
		t.Error("sampling decision not deterministic")
	}
}

func zoneName(i int) string {
	return "zone" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26)) + ".com."
}

func TestCombinedCDS(t *testing.T) {
	ns := &NSObservation{
		CDS:     []dnswire.RR{{Name: "x.", Class: dnswire.ClassIN, Data: &dnswire.CDS{}}},
		CDNSKEY: []dnswire.RR{{Name: "x.", Class: dnswire.ClassIN, Data: &dnswire.CDNSKEY{}}},
	}
	if got := ns.CombinedCDS(); len(got) != 2 {
		t.Errorf("combined = %d records", len(got))
	}
	empty := &NSObservation{}
	if got := empty.CombinedCDS(); len(got) != 0 {
		t.Errorf("empty combined = %d", len(got))
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	obs := []*ZoneObservation{
		{
			Zone:       "a.com.",
			ParentZone: "com.",
			ParentNS:   []string{"ns1.op.net."},
			ChainValid: true,
			Queries:    13,
			PerNS: []NSObservation{{
				Host:       "ns1.op.net.",
				Addr:       netip.MustParseAddr("10.0.0.1"),
				CDSOutcome: OutcomeOK,
				CDS: []dnswire.RR{{Name: "a.com.", Class: dnswire.ClassIN, TTL: 300,
					Data: &dnswire.CDS{DS: dnswire.DS{KeyTag: 1, Algorithm: 13, DigestType: 2, Digest: []byte{0xAA}}}}},
			}},
			Signals: []SignalObservation{{
				NSHost: "ns1.op.net.", Owner: "_dsboot.a.com._signal.ns1.op.net.",
				Outcome: OutcomeOK, Secure: true,
			}},
		},
		{Zone: "b.com.", ResolveErr: "no reachable nameserver addresses"},
	}
	var buf strings.Builder
	if err := WriteJSONL(&buf, obs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d objects", len(got))
	}
	if got[0].Zone != "a.com." || !got[0].ChainValid || got[0].Queries != 13 {
		t.Errorf("first object = %+v", got[0])
	}
	if len(got[0].PerNS) != 1 || got[0].PerNS[0].CDSOutcome != "ok" || len(got[0].PerNS[0].CDS) != 1 {
		t.Errorf("per-NS = %+v", got[0].PerNS)
	}
	if len(got[0].Signals) != 1 || !got[0].Signals[0].Secure {
		t.Errorf("signals = %+v", got[0].Signals)
	}
	if got[1].ResolveErr == "" {
		t.Error("resolve error lost")
	}
}
