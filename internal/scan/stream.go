package scan

import (
	"context"
	"sync"
	"sync/atomic"

	"dnssecboot/internal/obs"
)

// The streaming scan pipeline. ScanAll used to materialise every
// *ZoneObservation in one slice and hand the batch over only after the
// last zone finished, so memory grew O(zones) and an interrupted run
// lost everything. ScanStream instead hands each observation to a sink
// callback as soon as its turn in the input order arrives: a producer
// feeds a bounded worker pool, completed zones park in a reorder
// buffer, and an order-restoring emitter drains the contiguous prefix.
// Live state is bounded by the dispatch window (in-flight scans plus
// reordered completions), independent of the zone count — the shape
// large-scale scanners (YoDNS, OpenINTEL) use to survive 10^8-zone
// campaigns.

// StreamSink receives observations strictly in input order (index
// ascending, no gaps). Returning an error aborts the stream; in-flight
// zones are cancelled and ScanStream returns the error.
type StreamSink func(index int, zo *ZoneObservation) error

// StreamOptions configure one ScanStream run.
type StreamOptions struct {
	// Start is the index of the first zone to scan — zones before it
	// are assumed already exported (checkpoint resume).
	Start int
	// Stop bounds the scan to zones [Start, Stop). Zero (or anything
	// past the end of the list) means the whole remainder. A shard
	// worker sets Start/Stop to its contiguous partition of the zone
	// space, so N cooperating processes cover the list exactly once.
	Stop int
	// Window bounds the number of zones dispatched but not yet emitted
	// (in-flight scans + completions parked for reordering). Zero means
	// 2× the scanner's concurrency.
	Window int
	// Drain, when it becomes readable (typically by closing it), stops
	// the producer gracefully: no new zones are dispatched, in-flight
	// zones finish cleanly, the emitter flushes the completed prefix.
	// This is the SIGINT path — unlike a context cancellation it never
	// poisons an in-flight scan, so the emitted prefix is byte-identical
	// to the same prefix of an uninterrupted run.
	Drain <-chan struct{}
	// Sink receives every completed observation in order. Nil discards.
	Sink StreamSink
}

// StreamResult summarises how a stream ended.
type StreamResult struct {
	// Next is the first index NOT emitted: the sink received exactly
	// the contiguous range [Start, Next). A resumed stream should pass
	// Start = Next.
	Next int
	// Drained is true when the stream stopped before its Stop bound
	// (drain signal or context cancellation) without a sink error.
	Drained bool
	// PeakLive is the maximum number of zones that were dispatched but
	// not yet emitted at any point — the pipeline's live-memory bound,
	// ≤ Window by construction.
	PeakLive int
}

// streamJob and streamDone carry one zone through the pool.
type streamJob struct {
	i int
	z string
}

type streamDone struct {
	i  int
	zo *ZoneObservation
	// poisoned marks a scan that was still running when the context was
	// cancelled: its queries may have failed spuriously, so it must not
	// be emitted (a resume will re-scan it cleanly).
	poisoned bool
}

// ScanStream scans zones[opts.Start:opts.Stop] with bounded concurrency,
// emitting each observation to opts.Sink in input order as soon as its
// turn arrives. Memory is bounded by O(Window), not O(zones).
//
// The stream stops early on three events: the context is cancelled
// (in-flight results completed after the cancellation are discarded as
// poisoned, so everything emitted is a clean prefix), opts.Drain fires
// (in-flight zones finish cleanly and are emitted), or the sink returns
// an error (propagated as the return error). In every case the sink has
// received exactly the contiguous prefix [Start, Next).
func (s *Scanner) ScanStream(ctx context.Context, zones []string, opts StreamOptions) (StreamResult, error) {
	stop := opts.Stop
	if stop <= 0 || stop > len(zones) {
		stop = len(zones)
	}
	start := opts.Start
	if start < 0 {
		start = 0
	}
	if start > stop {
		start = stop
	}
	window := opts.Window
	if window <= 0 {
		window = 2 * s.cfg.Concurrency
	}
	if window < s.cfg.Concurrency {
		// A window smaller than the pool would deadlock dispatch; the
		// pool itself is the hard floor on live zones.
		window = s.cfg.Concurrency
	}

	var progress *obs.Progress
	if s.cfg.ProgressWriter != nil {
		progress = obs.NewProgress(s.cfg.ProgressWriter, stop-start, s.cfg.ProgressInterval)
	}
	defer progress.Stop()

	// ictx aborts in-flight scans when the sink fails; it inherits the
	// caller's cancellation.
	ictx, icancel := context.WithCancel(ctx)
	defer icancel()

	jobs := make(chan streamJob)
	done := make(chan streamDone)
	// tokens is the dispatch window: acquired before a zone is handed to
	// the pool, released when its observation is emitted. It bounds
	// dispatched-but-unemitted zones to the window size.
	tokens := make(chan struct{}, window)
	var dispatched atomic.Int64

	// Producer: hands zones to the pool in order until the list ends,
	// the window is exhausted and nobody emits, the context dies, or the
	// drain signal fires.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(jobs)
		for i := start; i < stop; i++ {
			// Explicit pre-check: when ictx is already done, a select
			// with a free token would still dispatch zones at random.
			if ictx.Err() != nil {
				return
			}
			select {
			case <-ictx.Done():
				return
			case <-opts.Drain:
				return
			case tokens <- struct{}{}:
			}
			dispatched.Add(1)
			select {
			case <-ictx.Done():
				return
			case <-opts.Drain:
				return
			case jobs <- streamJob{i, zones[i]}:
			}
		}
	}()

	// Worker pool. Every job received is scanned and reported exactly
	// once; a result computed while the context was dying is marked
	// poisoned rather than judged clean by luck.
	var workers sync.WaitGroup
	for w := 0; w < s.cfg.Concurrency; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for job := range jobs {
				zo := s.ScanZone(ictx, job.z)
				done <- streamDone{i: job.i, zo: zo, poisoned: ictx.Err() != nil}
			}
		}()
	}
	go func() {
		wg.Wait()
		workers.Wait()
		close(done)
	}()

	// Order-restoring emitter, run on the calling goroutine: parks
	// out-of-order completions and hands the contiguous prefix to the
	// sink. A poisoned result caps emission just below its index — the
	// prefix stays clean, and a resume re-scans from there.
	pending := make(map[int]*ZoneObservation, window)
	next := start
	stopAt := stop
	peak := 0
	var sinkErr error
	for d := range done {
		if d.poisoned {
			if d.i < stopAt {
				stopAt = d.i
			}
		} else {
			pending[d.i] = d.zo
		}
		// Live zones = dispatched but not yet emitted: in-flight scans
		// plus completions parked in the reorder buffer. The token
		// semaphore caps this at window; record the observed peak so
		// tests can assert the bound holds independent of len(zones).
		if live := int(dispatched.Load()) - (next - start); live > peak {
			peak = live
		}
		for sinkErr == nil && next < stopAt {
			zo, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if opts.Sink != nil {
				if err := opts.Sink(next, zo); err != nil {
					sinkErr = err
					icancel()
					break
				}
			}
			progress.Done(zo.ResolveErr != "")
			next++
			// Free one window slot for the producer.
			select {
			case <-tokens:
			default:
			}
		}
	}

	res := StreamResult{Next: next, PeakLive: peak, Drained: sinkErr == nil && next < stop}
	return res, sinkErr
}
