package scan

import (
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/resolver"
	"dnssecboot/internal/server"
	"dnssecboot/internal/transport"
	"dnssecboot/internal/zone"
)

// faultScanner wires a scanner to a single authoritative address so the
// per-NS CDS query path can be driven against scripted faults.
func faultScanner(t *testing.T) (*transport.MemNetwork, *Scanner, netip.Addr) {
	t.Helper()
	addr := netip.MustParseAddr("192.0.2.99")
	z := zone.New("example.com.")
	z.SetBasics("ns1.example.com.", []string{"ns1.example.com."}, 1)
	srv := server.New(1)
	srv.AddZone(z)
	net := transport.NewMemNetwork(1)
	net.Register(addr, srv)
	r := &resolver.Resolver{Net: net, Roots: []netip.AddrPort{netip.AddrPortFrom(addr, 53)}}
	return net, New(Config{Resolver: r, Now: time.Unix(1_750_000_000, 0)}), addr
}

// TestQueryCDSOutcomePerErrorKind pins the outcome taxonomy of the
// per-NS CDS query. Pre-fix, every non-unreachable error — including a
// malformed response — was recorded as OutcomeTimeout, inflating the
// timeout share of Table 2.
func TestQueryCDSOutcomePerErrorKind(t *testing.T) {
	cases := []struct {
		name  string
		setup func(net *transport.MemNetwork, addr netip.Addr)
		want  Outcome
	}{
		{
			name:  "host down",
			setup: func(n *transport.MemNetwork, a netip.Addr) { n.SetFault(a, transport.FaultProfile{Down: true}) },
			want:  OutcomeUnreachable,
		},
		{
			name:  "query dropped",
			setup: func(n *transport.MemNetwork, a netip.Addr) { n.SetFault(a, transport.FaultProfile{Loss: 1}) },
			want:  OutcomeTimeout,
		},
		{
			name:  "servfail",
			setup: func(n *transport.MemNetwork, a netip.Addr) { n.SetFault(a, transport.FaultProfile{ServFail: true}) },
			want:  OutcomeError,
		},
		{
			// The regression: a server whose response cannot be parsed
			// (handler error) is a protocol failure, not a timeout.
			name: "malformed response",
			setup: func(n *transport.MemNetwork, a netip.Addr) {
				n.Register(a, transport.HandlerFunc(func(context.Context, netip.Addr, *dnswire.Message) (*dnswire.Message, error) {
					return nil, errors.New("malformed response")
				}))
			},
			want: OutcomeError,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net, s, addr := faultScanner(t)
			tc.setup(net, addr)
			_, _, outcome := s.queryCDS(context.Background(), addr, "example.com.", dnswire.TypeCDS)
			if outcome != tc.want {
				t.Errorf("outcome = %s, want %s", outcome, tc.want)
			}
		})
	}
}

// signalWorld hosts a signal zone with both CDS and CDNSKEY records on
// one address, with a switchable drop for one record type so exactly
// one of probeSignal's two lookups can be failed.
func signalWorld(t *testing.T, dropType dnswire.Type) (*Scanner, string, string) {
	t.Helper()
	addr := netip.MustParseAddr("192.0.2.77")
	child, nsHost := "example.com.", "ns1.example.net."
	owner, err := zone.SignalName(child, nsHost)
	if err != nil {
		t.Fatal(err)
	}

	sigZone := zone.New(zone.SignalZoneName(nsHost))
	sigZone.SetBasics("ns.root.", []string{"ns.root."}, 1)
	sigZone.MustAdd(dnswire.RR{Name: owner, TTL: 60, Data: &dnswire.CDS{DS: dnswire.DS{
		KeyTag: 4711, Algorithm: dnswire.AlgEd25519, DigestType: dnswire.DigestSHA256, Digest: make([]byte, 32)}}})
	sigZone.MustAdd(dnswire.RR{Name: owner, TTL: 60, Data: &dnswire.CDNSKEY{DNSKEY: dnswire.DNSKEY{
		Flags: dnswire.DNSKEYFlagZone, Protocol: 3, Algorithm: dnswire.AlgEd25519, PublicKey: make([]byte, 32)}}})
	srv := server.New(1)
	srv.AddZone(sigZone)

	net := transport.NewMemNetwork(1)
	net.Register(addr, transport.HandlerFunc(func(ctx context.Context, local netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
		if len(q.Question) == 1 && q.Question[0].Type == dropType {
			return nil, nil // silent drop → client-side timeout
		}
		return srv.HandleDNS(ctx, local, q)
	}))
	r := &resolver.Resolver{Net: net, Roots: []netip.AddrPort{netip.AddrPortFrom(addr, 53)}}
	s := New(Config{Resolver: r, Now: time.Unix(1_750_000_000, 0)})
	return s, child, nsHost
}

// TestProbeSignalPartialFailure drops exactly one of the probe's two
// lookups. Pre-fix a single Outcome field was overwritten by whichever
// lookup ran last, so a CDS timeout followed by a clean CDNSKEY answer
// reported the probe as fully successful.
func TestProbeSignalPartialFailure(t *testing.T) {
	t.Run("CDS dropped", func(t *testing.T) {
		s, child, nsHost := signalWorld(t, dnswire.TypeCDS)
		so := s.probeSignal(context.Background(), child, nsHost)
		if so.CDSOutcome != OutcomeTimeout {
			t.Errorf("CDSOutcome = %s, want %s", so.CDSOutcome, OutcomeTimeout)
		}
		if so.CDNSKEYOutcome != OutcomeOK {
			t.Errorf("CDNSKEYOutcome = %s, want %s", so.CDNSKEYOutcome, OutcomeOK)
		}
		// The aggregate must surface the partial failure (pre-fix: OK).
		if so.Outcome != OutcomeTimeout {
			t.Errorf("Outcome = %s, want %s (partial failure masked)", so.Outcome, OutcomeTimeout)
		}
		if len(so.Records) == 0 {
			t.Error("the successful CDNSKEY lookup should still contribute records")
		}
	})
	t.Run("CDNSKEY dropped", func(t *testing.T) {
		s, child, nsHost := signalWorld(t, dnswire.TypeCDNSKEY)
		so := s.probeSignal(context.Background(), child, nsHost)
		if so.CDSOutcome != OutcomeOK || so.CDNSKEYOutcome != OutcomeTimeout {
			t.Errorf("per-type outcomes = %s/%s, want ok/timeout", so.CDSOutcome, so.CDNSKEYOutcome)
		}
		if so.Outcome != OutcomeTimeout {
			t.Errorf("Outcome = %s, want %s", so.Outcome, OutcomeTimeout)
		}
	})
	t.Run("nothing dropped", func(t *testing.T) {
		s, child, nsHost := signalWorld(t, 0)
		so := s.probeSignal(context.Background(), child, nsHost)
		if so.CDSOutcome != OutcomeOK || so.CDNSKEYOutcome != OutcomeOK || so.Outcome != OutcomeOK {
			t.Errorf("outcomes = %s/%s/%s, want all ok", so.CDSOutcome, so.CDNSKEYOutcome, so.Outcome)
		}
		if len(so.Records) != 2 {
			t.Errorf("records = %d, want 2", len(so.Records))
		}
	})
}

// TestScanAllHonoursCancelledContext: a cancelled context must stop the
// scan before any query is issued and still yield one observation per
// zone, each carrying the cancellation.
func TestScanAllHonoursCancelledContext(t *testing.T) {
	_, s, _ := faultScanner(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	zones := []string{"a.example.com.", "b.example.com.", "c.example.com."}
	out := s.ScanAll(ctx, zones)
	if len(out) != len(zones) {
		t.Fatalf("observations = %d, want %d", len(out), len(zones))
	}
	for i, obs := range out {
		if obs == nil {
			t.Fatalf("observation %d is nil", i)
		}
		if obs.ResolveErr == "" {
			t.Errorf("observation %d has no resolve error", i)
		}
	}
	if q := s.cfg.Resolver.Queries(); q != 0 {
		t.Errorf("cancelled scan issued %d queries, want 0", q)
	}
}
