package scan

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"

	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/zone"
)

// JSON export of observations, one object per line (JSONL). The paper
// retained every raw DNS message of its 6.5 TiB campaign; this export
// keeps the analysis-relevant view: all records in presentation form,
// per-NS outcomes, validation results and query accounting, so the
// classification can be re-run offline.

// ObservationJSON is the serialised form of a ZoneObservation.
type ObservationJSON struct {
	Zone        string   `json:"zone"`
	ResolveErr  string   `json:"resolve_err,omitempty"`
	ParentZone  string   `json:"parent_zone,omitempty"`
	ParentNS    []string `json:"parent_ns,omitempty"`
	ChildNS     []string `json:"child_ns,omitempty"`
	DS          []string `json:"ds,omitempty"`
	DSSigs      []string `json:"ds_sigs,omitempty"`
	DNSKEY      []string `json:"dnskey,omitempty"`
	DNSKEYSigs  []string `json:"dnskey_sigs,omitempty"`
	ChainValid  bool     `json:"chain_valid"`
	ChainErr    string   `json:"chain_err,omitempty"`
	SampledNS   bool     `json:"sampled_ns,omitempty"`
	Queries     int64    `json:"queries"`
	Retries     int64    `json:"retries,omitempty"`
	GaveUp      int64    `json:"gave_up,omitempty"`
	CacheHits   int64    `json:"cache_hits,omitempty"`
	CacheMisses int64    `json:"cache_misses,omitempty"`
	Coalesced   int64    `json:"coalesced,omitempty"`

	PerNS   []NSObservationJSON     `json:"per_ns,omitempty"`
	Signals []SignalObservationJSON `json:"signals,omitempty"`
}

// NSObservationJSON serialises one nameserver's view.
type NSObservationJSON struct {
	Host           string   `json:"host"`
	Addr           string   `json:"addr"`
	CDSOutcome     string   `json:"cds_outcome"`
	CDNSKEYOutcome string   `json:"cdnskey_outcome"`
	CDS            []string `json:"cds,omitempty"`
	CDNSKEY        []string `json:"cdnskey,omitempty"`
	CDSSigs        []string `json:"cds_sigs,omitempty"`
	CDNSKEYSigs    []string `json:"cdnskey_sigs,omitempty"`
}

// SignalObservationJSON serialises one RFC 9615 probe.
type SignalObservationJSON struct {
	NSHost         string   `json:"ns_host"`
	Owner          string   `json:"owner,omitempty"`
	Outcome        string   `json:"outcome"`
	CDSOutcome     string   `json:"cds_outcome,omitempty"`
	CDNSKEYOutcome string   `json:"cdnskey_outcome,omitempty"`
	Records        []string `json:"records,omitempty"`
	Sigs           []string `json:"sigs,omitempty"`
	Secure         bool     `json:"secure"`
	ValidationErr  string   `json:"validation_err,omitempty"`
	ZoneCut        bool     `json:"zone_cut,omitempty"`
	NameTooLong    bool     `json:"name_too_long,omitempty"`
}

func rrStrings(rrs []dnswire.RR) []string {
	if len(rrs) == 0 {
		return nil
	}
	out := make([]string, len(rrs))
	for i, rr := range rrs {
		out[i] = rr.String()
	}
	return out
}

// ToJSON converts an observation into its export form.
func (z *ZoneObservation) ToJSON() ObservationJSON {
	out := ObservationJSON{
		Zone:        z.Zone,
		ResolveErr:  z.ResolveErr,
		ParentZone:  z.ParentZone,
		ParentNS:    z.ParentNS,
		ChildNS:     z.ChildNS,
		DS:          rrStrings(z.DS),
		DSSigs:      rrStrings(z.DSSigs),
		DNSKEY:      rrStrings(z.DNSKEY),
		DNSKEYSigs:  rrStrings(z.DNSKEYSigs),
		ChainValid:  z.ChainValid,
		ChainErr:    z.ChainErr,
		SampledNS:   z.SampledNS,
		Queries:     z.Queries,
		Retries:     z.Retries,
		GaveUp:      z.GaveUp,
		CacheHits:   z.CacheHits,
		CacheMisses: z.CacheMisses,
		Coalesced:   z.Coalesced,
	}
	for _, ns := range z.PerNS {
		out.PerNS = append(out.PerNS, NSObservationJSON{
			Host:           ns.Host,
			Addr:           ns.Addr.String(),
			CDSOutcome:     ns.CDSOutcome.String(),
			CDNSKEYOutcome: ns.CDNSKEYOutcome.String(),
			CDS:            rrStrings(ns.CDS),
			CDNSKEY:        rrStrings(ns.CDNSKEY),
			CDSSigs:        rrStrings(ns.CDSSigs),
			CDNSKEYSigs:    rrStrings(ns.CDNSKEYSigs),
		})
	}
	for _, so := range z.Signals {
		out.Signals = append(out.Signals, SignalObservationJSON{
			NSHost:         so.NSHost,
			Owner:          so.Owner,
			Outcome:        so.Outcome.String(),
			CDSOutcome:     so.CDSOutcome.String(),
			CDNSKEYOutcome: so.CDNSKEYOutcome.String(),
			Records:        rrStrings(so.Records),
			Sigs:           rrStrings(so.Sigs),
			Secure:         so.Secure,
			ValidationErr:  so.ValidationErr,
			ZoneCut:        so.ZoneCut,
			NameTooLong:    so.NameTooLong,
		})
	}
	return out
}

// JSONLWriter incrementally exports observations as JSONL, one record
// per Write call — the streaming sink behind `dnssec-scan -dump`.
// Writes reach the underlying writer at record boundaries only, so a
// failing writer never leaves a partial trailing line in the output,
// and every error carries the zone name and record index of the record
// it interrupted. Byte accounting (Bytes) lets a checkpoint record the
// exact durable offset of the last flushed record.
type JSONLWriter struct {
	bw    *bufio.Writer
	count int
	bytes int64
}

// NewJSONLWriter wraps w for incremental JSONL export.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{bw: bufio.NewWriterSize(w, 1<<20)}
}

// Write appends one observation as a JSON line.
func (jw *JSONLWriter) Write(obs *ZoneObservation) error {
	line, err := json.Marshal(obs.ToJSON())
	if err != nil {
		return fmt.Errorf("scan: encoding record %d (zone %s): %w", jw.count, obs.Zone, err)
	}
	line = append(line, '\n')
	// Make room for the whole line before buffering any of it: a
	// mid-line flush that fails would otherwise have emitted a
	// fragment of this record.
	if jw.bw.Buffered() > 0 && jw.bw.Available() < len(line) {
		if err := jw.bw.Flush(); err != nil {
			return fmt.Errorf("scan: writing record %d (zone %s): %w", jw.count, obs.Zone, err)
		}
	}
	if _, err := jw.bw.Write(line); err != nil {
		return fmt.Errorf("scan: writing record %d (zone %s): %w", jw.count, obs.Zone, err)
	}
	jw.count++
	jw.bytes += int64(len(line))
	return nil
}

// Flush forces every buffered record to the underlying writer.
func (jw *JSONLWriter) Flush() error {
	if err := jw.bw.Flush(); err != nil {
		return fmt.Errorf("scan: flushing %d records: %w", jw.count, err)
	}
	return nil
}

// Count returns how many records have been written.
func (jw *JSONLWriter) Count() int { return jw.count }

// Bytes returns the total encoded size of the records written so far
// (only durable in the underlying writer after a successful Flush).
func (jw *JSONLWriter) Bytes() int64 { return jw.bytes }

// WriteJSONL streams a batch of observations to w, one JSON object per
// line, through a JSONLWriter (same flushing and error guarantees).
func WriteJSONL(w io.Writer, observations []*ZoneObservation) error {
	jw := NewJSONLWriter(w)
	for _, obs := range observations {
		if err := jw.Write(obs); err != nil {
			return err
		}
	}
	return jw.Flush()
}

// DecodeJSONL streams a JSONL export through fn, one record at a time,
// without materialising the whole dump — the memory-bounded read side
// of the pipeline (reanalyze at full scale). A decode error or a fn
// error stops the scan and is returned.
func DecodeJSONL(r io.Reader, fn func(ObservationJSON) error) error {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<20))
	for dec.More() {
		var o ObservationJSON
		if err := dec.Decode(&o); err != nil {
			return err
		}
		if err := fn(o); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a JSONL export back into the serialised form (for
// offline analysis tooling and tests).
func ReadJSONL(r io.Reader) ([]ObservationJSON, error) {
	var out []ObservationJSON
	err := DecodeJSONL(r, func(o ObservationJSON) error {
		out = append(out, o)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FromJSON reconstructs a typed observation from its export form,
// re-parsing every record's presentation string. Outcome strings map
// back to their enum values; unknown strings become OutcomeError.
func FromJSON(o ObservationJSON) (*ZoneObservation, error) {
	obs := &ZoneObservation{
		Zone:        o.Zone,
		ResolveErr:  o.ResolveErr,
		ParentZone:  o.ParentZone,
		ParentNS:    o.ParentNS,
		ChildNS:     o.ChildNS,
		ChainValid:  o.ChainValid,
		ChainErr:    o.ChainErr,
		SampledNS:   o.SampledNS,
		Queries:     o.Queries,
		Retries:     o.Retries,
		GaveUp:      o.GaveUp,
		CacheHits:   o.CacheHits,
		CacheMisses: o.CacheMisses,
		Coalesced:   o.Coalesced,
	}
	var err error
	if obs.DS, err = parseRRs(o.DS); err != nil {
		return nil, err
	}
	if obs.DSSigs, err = parseRRs(o.DSSigs); err != nil {
		return nil, err
	}
	if obs.DNSKEY, err = parseRRs(o.DNSKEY); err != nil {
		return nil, err
	}
	if obs.DNSKEYSigs, err = parseRRs(o.DNSKEYSigs); err != nil {
		return nil, err
	}
	for _, ns := range o.PerNS {
		addr, _ := netip.ParseAddr(ns.Addr)
		n := NSObservation{
			Host:           ns.Host,
			Addr:           addr,
			CDSOutcome:     outcomeFromString(ns.CDSOutcome),
			CDNSKEYOutcome: outcomeFromString(ns.CDNSKEYOutcome),
		}
		if n.CDS, err = parseRRs(ns.CDS); err != nil {
			return nil, err
		}
		if n.CDNSKEY, err = parseRRs(ns.CDNSKEY); err != nil {
			return nil, err
		}
		if n.CDSSigs, err = parseRRs(ns.CDSSigs); err != nil {
			return nil, err
		}
		if n.CDNSKEYSigs, err = parseRRs(ns.CDNSKEYSigs); err != nil {
			return nil, err
		}
		obs.PerNS = append(obs.PerNS, n)
	}
	for _, sj := range o.Signals {
		// Exports written before the per-type outcomes existed carry
		// only the aggregate; fall back to it rather than inventing an
		// error.
		cdsOutcome, cdnskeyOutcome := sj.CDSOutcome, sj.CDNSKEYOutcome
		if cdsOutcome == "" {
			cdsOutcome = sj.Outcome
		}
		if cdnskeyOutcome == "" {
			cdnskeyOutcome = sj.Outcome
		}
		so := SignalObservation{
			NSHost:         sj.NSHost,
			Owner:          sj.Owner,
			Outcome:        outcomeFromString(sj.Outcome),
			CDSOutcome:     outcomeFromString(cdsOutcome),
			CDNSKEYOutcome: outcomeFromString(cdnskeyOutcome),
			Secure:         sj.Secure,
			ValidationErr:  sj.ValidationErr,
			ZoneCut:        sj.ZoneCut,
			NameTooLong:    sj.NameTooLong,
		}
		if so.Records, err = parseRRs(sj.Records); err != nil {
			return nil, err
		}
		if so.Sigs, err = parseRRs(sj.Sigs); err != nil {
			return nil, err
		}
		obs.Signals = append(obs.Signals, so)
	}
	return obs, nil
}

func parseRRs(lines []string) ([]dnswire.RR, error) {
	if len(lines) == 0 {
		return nil, nil
	}
	out := make([]dnswire.RR, 0, len(lines))
	for _, l := range lines {
		rr, err := zone.ParseRR(l)
		if err != nil {
			return nil, fmt.Errorf("scan: re-parsing %q: %w", l, err)
		}
		out = append(out, rr)
	}
	return out, nil
}

func outcomeFromString(s string) Outcome {
	for _, o := range []Outcome{OutcomeOK, OutcomeNoData, OutcomeNXDomain, OutcomeError, OutcomeTimeout, OutcomeUnreachable} {
		if o.String() == s {
			return o
		}
	}
	return OutcomeError
}
