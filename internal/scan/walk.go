package scan

import (
	"context"
	"fmt"

	"dnssecboot/internal/dnswire"
)

// WalkZone enumerates a signed zone's authoritative names by following
// its NSEC chain (the classic "zone walking" technique measurement
// studies use when AXFR is unavailable — NSEC makes signed zones
// enumerable by design). It returns the names in chain order, starting
// at the apex. Zones using NSEC3 are not walkable this way and return
// an error, as do unsigned zones.
func (s *Scanner) WalkZone(ctx context.Context, zoneName string) ([]string, error) {
	zoneName = dnswire.CanonicalName(zoneName)
	d, err := s.cfg.Resolver.Delegation(ctx, zoneName)
	if err != nil {
		return nil, err
	}
	glue := glueMap(d.Glue)
	var addrs []hostAddr
	for _, host := range d.NSHosts() {
		hostAddrs := glue[dnswire.CanonicalName(host)]
		if len(hostAddrs) == 0 {
			if got, err := s.cfg.Resolver.AddrsOf(ctx, host); err == nil {
				hostAddrs = got
			}
		}
		for _, a := range hostAddrs {
			addrs = append(addrs, hostAddr{host, a})
		}
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("scan: no reachable nameservers for %s", zoneName)
	}

	nextOf := func(name string) (string, error) {
		var lastErr error
		for _, p := range addrs {
			resp, err := s.exchange(ctx, p.addr, name, dnswire.TypeNSEC)
			if err != nil {
				lastErr = err
				continue
			}
			if resp.Rcode != dnswire.RcodeNoError {
				lastErr = fmt.Errorf("scan: %s for %s/NSEC", resp.Rcode, name)
				continue
			}
			for _, rr := range resp.Answer {
				if nsec, ok := rr.Data.(*dnswire.NSEC); ok && dnswire.CanonicalName(rr.Name) == name {
					return dnswire.CanonicalName(nsec.NextDomain), nil
				}
			}
			// No NSEC at this name: NSEC3 zone or unsigned.
			for _, rr := range resp.Answer {
				if rr.Type() == dnswire.TypeNSEC3 {
					return "", fmt.Errorf("scan: %s uses NSEC3; not walkable", zoneName)
				}
			}
			return "", fmt.Errorf("scan: no NSEC at %s (zone unsigned or NSEC3)", name)
		}
		if lastErr == nil {
			lastErr = fmt.Errorf("scan: no server answered for %s", name)
		}
		return "", lastErr
	}

	names := []string{zoneName}
	const maxNames = 1_000_000 // runaway-chain backstop
	cur := zoneName
	for len(names) < maxNames {
		next, err := nextOf(cur)
		if err != nil {
			return names, err
		}
		if next == zoneName {
			return names, nil // chain closed
		}
		if !dnswire.IsSubdomain(next, zoneName) {
			return names, fmt.Errorf("scan: NSEC chain escaped the zone at %s → %s", cur, next)
		}
		names = append(names, next)
		cur = next
	}
	return names, fmt.Errorf("scan: NSEC chain exceeds %d names", maxNames)
}
