// Streaming-pipeline regression suite. The contract under test is the
// one checkpoint/resume depends on: in stateless mode a drained or
// cancelled stream emits a byte-identical prefix of the uninterrupted
// run's JSONL export, a resume from StreamResult.Next completes it to
// the exact same bytes, and the pipeline's live memory stays bounded by
// the window regardless of how many zones are scanned.
package scan_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"dnssecboot/internal/classify"
	"dnssecboot/internal/core"
	"dnssecboot/internal/ecosystem"
	"dnssecboot/internal/report"
	"dnssecboot/internal/scan"
)

// streamScale matches chaosScale: a few hundred zones, fast enough to
// scan several times per test.
const streamScale = 500_000

// streamOpts are the options every run in this suite shares. Stateless
// is the point: it makes each zone's record a pure function of (zone,
// world, seed), so byte-level comparisons are meaningful even at
// concurrency 8.
func streamOpts() core.Options {
	return core.Options{Seed: 1, ScaleDivisor: streamScale, Concurrency: 8, Stateless: true}
}

// streamRun executes a streaming run from startIndex, writing the JSONL
// export into buf. cut, when > 0, closes the drain channel as soon as
// the sink has emitted that many zones — the in-test equivalent of
// SIGINT. A fresh world is generated every call (World: nil) so the
// test also covers cross-run world determinism.
func streamRun(t *testing.T, buf *bytes.Buffer, startIndex, cut int, resume *report.Aggregate) *core.StreamStudy {
	t.Helper()
	drain := make(chan struct{})
	w := scan.NewJSONLWriter(buf)
	emitted := 0
	study, err := core.RunStream(context.Background(), core.StreamOptions{
		Options:    streamOpts(),
		StartIndex: startIndex,
		Resume:     resume,
		Drain:      drain,
		Sink: func(i int, zo *scan.ZoneObservation, _ *classify.Result) error {
			if err := w.Write(zo); err != nil {
				return err
			}
			emitted++
			if cut > 0 && emitted == cut {
				close(drain)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("RunStream(start=%d, cut=%d): %v", startIndex, cut, err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return study
}

func TestStreamDrainPrefixAndResume(t *testing.T) {
	// Reference: one uninterrupted run.
	var ref bytes.Buffer
	refStudy := streamRun(t, &ref, 0, 0, nil)
	if refStudy.Drained {
		t.Fatal("uninterrupted run reported Drained")
	}
	if refStudy.NextIndex != refStudy.TotalZones {
		t.Fatalf("uninterrupted run stopped at %d/%d", refStudy.NextIndex, refStudy.TotalZones)
	}

	// Interrupted run: drain after 100 emissions.
	const cut = 100
	var partial bytes.Buffer
	cutStudy := streamRun(t, &partial, 0, cut, nil)
	if !cutStudy.Drained {
		t.Fatal("drained run did not report Drained")
	}
	if cutStudy.NextIndex >= cutStudy.TotalZones {
		t.Fatalf("drain was a no-op: NextIndex %d of %d", cutStudy.NextIndex, cutStudy.TotalZones)
	}
	if cutStudy.NextIndex < cut {
		t.Fatalf("NextIndex %d below the %d zones the sink saw", cutStudy.NextIndex, cut)
	}
	if got := strings.Count(partial.String(), "\n"); got != cutStudy.NextIndex {
		t.Fatalf("partial dump has %d records, NextIndex says %d", got, cutStudy.NextIndex)
	}
	if !bytes.HasPrefix(ref.Bytes(), partial.Bytes()) {
		t.Fatal("drained export is not a byte prefix of the uninterrupted export")
	}

	// Resume: round-trip the accumulator through its checkpoint wire
	// form, then continue from NextIndex appending to the partial dump.
	state, err := cutStudy.Report.MarshalState()
	if err != nil {
		t.Fatalf("MarshalState: %v", err)
	}
	restored, err := report.UnmarshalState(state)
	if err != nil {
		t.Fatalf("UnmarshalState: %v", err)
	}
	resumed := streamRun(t, &partial, cutStudy.NextIndex, 0, restored)
	if resumed.Drained {
		t.Fatal("resumed run reported Drained")
	}
	if resumed.NextIndex != resumed.TotalZones {
		t.Fatalf("resumed run stopped at %d/%d", resumed.NextIndex, resumed.TotalZones)
	}
	if !bytes.Equal(partial.Bytes(), ref.Bytes()) {
		t.Errorf("resumed export differs from uninterrupted export:\n%s",
			firstDiff(ref.String(), partial.String()))
	}
	if got, want := resumed.Report.Headline(), refStudy.Report.Headline(); got != want {
		t.Errorf("resumed headline differs:\n  ref:     %s\n  resumed: %s", want, got)
	}
}

func TestStreamHardCancelCleanPrefix(t *testing.T) {
	var ref bytes.Buffer
	streamRun(t, &ref, 0, 0, nil)

	// Cancel the context mid-stream: unlike a drain this poisons
	// in-flight scans, but the emitter must discard them, so everything
	// already written is still a clean prefix.
	ctx, cancel := context.WithCancel(context.Background())
	var partial bytes.Buffer
	w := scan.NewJSONLWriter(&partial)
	emitted := 0
	study, err := core.RunStream(ctx, core.StreamOptions{
		Options: streamOpts(),
		Sink: func(i int, zo *scan.ZoneObservation, _ *classify.Result) error {
			if err := w.Write(zo); err != nil {
				return err
			}
			if emitted++; emitted == 50 {
				cancel()
			}
			return nil
		},
	})
	cancel()
	if err != nil {
		t.Fatalf("RunStream under cancellation: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if !study.Drained {
		t.Fatal("cancelled run did not report an early stop")
	}
	if study.NextIndex >= study.TotalZones {
		t.Fatalf("cancellation was a no-op: NextIndex %d of %d", study.NextIndex, study.TotalZones)
	}
	if got := strings.Count(partial.String(), "\n"); got != study.NextIndex {
		t.Fatalf("partial dump has %d records, NextIndex says %d", got, study.NextIndex)
	}
	if !bytes.HasPrefix(ref.Bytes(), partial.Bytes()) {
		t.Fatal("cancelled export is not a byte prefix of the uninterrupted export")
	}
}

func TestStreamSinkErrorAborts(t *testing.T) {
	boom := errors.New("disk full")
	const failAt = 25
	seen := 0
	_, err := core.RunStream(context.Background(), core.StreamOptions{
		Options: streamOpts(),
		Sink: func(i int, zo *scan.ZoneObservation, _ *classify.Result) error {
			if i != seen {
				t.Errorf("out-of-order emission: got index %d, want %d", i, seen)
			}
			seen++
			if i == failAt {
				return boom
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("RunStream error = %v, want %v", err, boom)
	}
	if seen != failAt+1 {
		t.Fatalf("sink saw %d zones after failing at index %d", seen, failAt)
	}
}

// TestStreamBoundedWindow is the bounded-memory acceptance check: the
// peak number of live (dispatched-but-unemitted) observations must
// respect the window and stay flat as the zone count grows.
func TestStreamBoundedWindow(t *testing.T) {
	world, err := ecosystem.Generate(ecosystem.Config{Seed: 1, ScaleDivisor: streamScale})
	if err != nil {
		t.Fatalf("generating world: %v", err)
	}
	opts := streamOpts()
	opts.Concurrency = 4
	opts.World = world
	const window = 6
	var peaks []int
	for _, n := range []int{40, 120, len(world.Targets)} {
		opts.MaxZones = n
		res, err := core.RunStream(context.Background(), core.StreamOptions{Options: opts, Window: window})
		if err != nil {
			t.Fatalf("RunStream(%d zones): %v", n, err)
		}
		if res.NextIndex != n {
			t.Fatalf("scanned %d of %d zones", res.NextIndex, n)
		}
		if res.PeakLive > window {
			t.Errorf("%d zones: peak live %d exceeds window %d", n, res.PeakLive, window)
		}
		if res.PeakLive < 1 {
			t.Errorf("%d zones: implausible peak live %d", n, res.PeakLive)
		}
		peaks = append(peaks, res.PeakLive)
	}
	t.Logf("peak live observations across zone counts: %v (window %d)", peaks, window)
}
