// Table-driven unit tests for the scanner's pure helpers:
// aggregateSignalOutcome (the per-signal-type outcome fold described in
// §4.3 — the worst server failure dominates, otherwise presence of
// records decides) and intermediateNames (the names between a signal
// owner and the signal zone apex that the RFC 9615 CDS/CDNSKEY walk
// must prove empty).
package scan

import (
	"reflect"
	"testing"
)

// outcomes lists every Outcome in severity order; the fold's "worst"
// relation is exactly this ordering.
var outcomes = []Outcome{
	OutcomeOK, OutcomeNoData, OutcomeNXDomain,
	OutcomeError, OutcomeTimeout, OutcomeUnreachable,
}

func TestAggregateSignalOutcomeAllCombos(t *testing.T) {
	for _, cds := range outcomes {
		for _, cdnskey := range outcomes {
			worst := cds
			if cdnskey > worst {
				worst = cdnskey
			}
			for _, haveRecords := range []bool{false, true} {
				// Expected per the paper's rule: any server failure or
				// NXDOMAIN on either signal type taints the pair; only a
				// clean pair is judged by whether records were returned.
				want := worst
				if !worst.Failed() && worst != OutcomeNXDomain {
					if haveRecords {
						want = OutcomeOK
					} else {
						want = OutcomeNoData
					}
				}
				got := aggregateSignalOutcome(cds, cdnskey, haveRecords)
				if got != want {
					t.Errorf("aggregateSignalOutcome(%s, %s, records=%t) = %s, want %s",
						cds, cdnskey, haveRecords, got, want)
				}
			}
		}
	}
}

func TestAggregateSignalOutcomeSpotChecks(t *testing.T) {
	// A handful of hand-written cases guard the loop above against a
	// shared blind spot with the implementation.
	tests := []struct {
		name         string
		cds, cdnskey Outcome
		haveRecords  bool
		want         Outcome
	}{
		{"both clean with records", OutcomeOK, OutcomeOK, true, OutcomeOK},
		{"both clean without records", OutcomeNoData, OutcomeNoData, false, OutcomeNoData},
		{"records override nodata pair", OutcomeOK, OutcomeNoData, true, OutcomeOK},
		{"nxdomain dominates records", OutcomeOK, OutcomeNXDomain, true, OutcomeNXDomain},
		{"timeout dominates nxdomain", OutcomeNXDomain, OutcomeTimeout, true, OutcomeTimeout},
		{"unreachable dominates everything", OutcomeUnreachable, OutcomeError, true, OutcomeUnreachable},
		{"error on one side taints the pair", OutcomeError, OutcomeOK, false, OutcomeError},
	}
	for _, tc := range tests {
		if got := aggregateSignalOutcome(tc.cds, tc.cdnskey, tc.haveRecords); got != tc.want {
			t.Errorf("%s: got %s, want %s", tc.name, got, tc.want)
		}
	}
}

func TestIntermediateNamesEdges(t *testing.T) {
	tests := []struct {
		name        string
		owner, apex string
		want        []string
	}{
		{
			name:  "owner equals apex",
			owner: "example.com.", apex: "example.com.",
			want: nil,
		},
		{
			name:  "owner directly under apex",
			owner: "www.example.com.", apex: "example.com.",
			want: nil,
		},
		{
			name:  "one intermediate label",
			owner: "_dsboot.example.com._signal.ns1.example.net.", apex: "ns1.example.net.",
			want: []string{"example.com._signal.ns1.example.net.", "com._signal.ns1.example.net.", "_signal.ns1.example.net."},
		},
		{
			name:  "owner not under apex",
			owner: "www.example.org.", apex: "example.com.",
			want: nil,
		},
		{
			name:  "single-label owner under root apex",
			owner: "com.", apex: ".",
			want: nil,
		},
		{
			name:  "deep owner under root apex stops above the root",
			owner: "a.b.com.", apex: ".",
			want: []string{"b.com.", "com."},
		},
		{
			name:  "single-label apex",
			owner: "a.b.com.", apex: "com.",
			want: []string{"b.com."},
		},
		{
			name:  "non-canonical input is normalised",
			owner: "A.B.example.COM", apex: "example.com.",
			want: []string{"b.example.com."},
		},
	}
	for _, tc := range tests {
		got := intermediateNames(tc.owner, tc.apex)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: intermediateNames(%q, %q) = %v, want %v",
				tc.name, tc.owner, tc.apex, got, tc.want)
		}
	}
}
