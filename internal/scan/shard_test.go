// Shard-range conformance suite. The sharded orchestration rests on two
// properties proven here at the pipeline level (cmd/scanctl's process
// battery in internal/shard re-proves them across process boundaries):
// a stateless scan of shard ranges [lo, hi) concatenated in shard order
// is byte-identical to one uninterrupted full-range export, and the
// shards' report accumulators merged with Aggregate.Merge render the
// exact artefacts the single run renders.
package scan_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"dnssecboot/internal/classify"
	"dnssecboot/internal/core"
	"dnssecboot/internal/ecosystem"
	"dnssecboot/internal/report"
	"dnssecboot/internal/scan"
	"dnssecboot/internal/shard"
)

// shardRangeRun scans zones [start, stop) of a shared world into buf
// and returns the run's accumulator.
func shardRangeRun(t *testing.T, world *ecosystem.Ecosystem, scale, start, stop int, buf *bytes.Buffer) *report.Aggregate {
	t.Helper()
	opts := core.Options{Seed: 1, ScaleDivisor: scale, Concurrency: 8, Stateless: true, World: world}
	w := scan.NewJSONLWriter(buf)
	study, err := core.RunStream(context.Background(), core.StreamOptions{
		Options:    opts,
		StartIndex: start,
		EndIndex:   stop,
		Sink: func(i int, zo *scan.ZoneObservation, _ *classify.Result) error {
			return w.Write(zo)
		},
	})
	if err != nil {
		t.Fatalf("RunStream([%d, %d)): %v", start, stop, err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if study.Drained {
		t.Fatalf("range run [%d, %d) reported Drained", start, stop)
	}
	if study.NextIndex != stop {
		t.Fatalf("range run [%d, %d) stopped at %d", start, stop, study.NextIndex)
	}
	return study.Report
}

func TestShardedConformance(t *testing.T) {
	// Two world scales × two shard counts, per the acceptance criteria.
	for _, scale := range []int{500_000, 150_000} {
		world, err := ecosystem.Generate(ecosystem.Config{Seed: 1, ScaleDivisor: scale})
		if err != nil {
			t.Fatalf("generating world: %v", err)
		}
		total := len(world.Targets)

		// Reference: one uninterrupted full-range run.
		var ref bytes.Buffer
		refAgg := shardRangeRun(t, world, scale, 0, total, &ref)

		for _, shards := range []int{2, 4} {
			t.Run(fmt.Sprintf("scale=%d/shards=%d", scale, shards), func(t *testing.T) {
				var merged bytes.Buffer
				mergedAgg := report.NewAggregate()
				for _, rng := range shard.Partition(total, shards) {
					mergedAgg.Merge(shardRangeRun(t, world, scale, rng.Lo, rng.Hi, &merged))
				}
				if !bytes.Equal(merged.Bytes(), ref.Bytes()) {
					t.Errorf("concatenated shard dumps differ from the single-run export:\n%s",
						firstDiff(ref.String(), merged.String()))
				}
				for name, render := range map[string]func(*report.Aggregate) string{
					"headline": (*report.Aggregate).Headline,
					"table3":   (*report.Aggregate).Table3,
					"cds":      (*report.Aggregate).CDSFindings,
					"queries":  (*report.Aggregate).QueryStats,
				} {
					if got, want := render(mergedAgg), render(refAgg); got != want {
						t.Errorf("%s differs after shard merge:\n got: %s\nwant: %s", name, got, want)
					}
				}
				var gotCSV, wantCSV bytes.Buffer
				for _, artefact := range []string{"table1", "table2", "table3", "figure1"} {
					gotCSV.Reset()
					wantCSV.Reset()
					if err := mergedAgg.WriteCSV(&gotCSV, artefact); err != nil {
						t.Fatalf("merged WriteCSV(%s): %v", artefact, err)
					}
					if err := refAgg.WriteCSV(&wantCSV, artefact); err != nil {
						t.Fatalf("reference WriteCSV(%s): %v", artefact, err)
					}
					if !bytes.Equal(gotCSV.Bytes(), wantCSV.Bytes()) {
						t.Errorf("%s CSV differs after shard merge:\n%s",
							artefact, firstDiff(wantCSV.String(), gotCSV.String()))
					}
				}
			})
		}
	}
}

// TestShardRangeStopBounds pins the Stop contract: out-of-range and
// inverted bounds clamp rather than panic or over-scan.
func TestShardRangeStopBounds(t *testing.T) {
	world, err := ecosystem.Generate(ecosystem.Config{Seed: 1, ScaleDivisor: 500_000})
	if err != nil {
		t.Fatalf("generating world: %v", err)
	}
	scanner := core.NewScanner(world, core.Options{Seed: 1, Concurrency: 4, Stateless: true})
	var emitted []int
	res, err := scanner.ScanStream(context.Background(), world.Targets[:20], scan.StreamOptions{
		Start: 5,
		Stop:  12,
		Sink: func(i int, zo *scan.ZoneObservation) error {
			emitted = append(emitted, i)
			return nil
		},
	})
	if err != nil {
		t.Fatalf("ScanStream: %v", err)
	}
	if res.Drained {
		t.Error("bounded range reported Drained")
	}
	if res.Next != 12 {
		t.Errorf("Next = %d, want 12", res.Next)
	}
	if len(emitted) != 7 || emitted[0] != 5 || emitted[len(emitted)-1] != 11 {
		t.Errorf("emitted indices %v, want exactly [5, 12)", emitted)
	}

	// Stop past the end clamps to the list; Start past Stop is empty.
	res, err = scanner.ScanStream(context.Background(), world.Targets[:8], scan.StreamOptions{Stop: 99})
	if err != nil || res.Next != 8 {
		t.Errorf("Stop past end: next=%d err=%v, want 8 <nil>", res.Next, err)
	}
	res, err = scanner.ScanStream(context.Background(), world.Targets[:8], scan.StreamOptions{Start: 6, Stop: 3})
	if err != nil || res.Next != 3 {
		t.Errorf("inverted bounds: next=%d err=%v, want 3 <nil>", res.Next, err)
	}
}
