package scan

import (
	"path/filepath"
	"strings"
	"testing"
)

func validCheckpoint() *Checkpoint {
	return &Checkpoint{
		Version:    CheckpointVersion,
		Seed:       1,
		TotalZones: 2033,
		Shard:      1,
		Shards:     4,
		NextIndex:  700,
	}
}

// TestValidateRefusesShardGeometry is the regression for the checkpoint
// fingerprint covering only seed+totalZones: a checkpoint written by
// shard i/N describes a dump prefix relative to that shard's range, so
// resuming it under any other geometry must be refused — before the
// fix, `-shard 0/2` checkpoints resumed cleanly as `-shard 0/4` and
// silently scanned the wrong half of the world.
func TestValidateRefusesShardGeometry(t *testing.T) {
	cases := []struct {
		name          string
		cpShard, cpN  int
		shard, shards int
		wantOK        bool
	}{
		{"same geometry", 1, 4, 1, 4, true},
		{"different shard count", 0, 2, 0, 4, false},
		{"different shard index", 1, 4, 2, 4, false},
		{"sharded resumed unsharded", 0, 2, 0, 1, false},
		{"unsharded resumed sharded", 0, 1, 0, 2, false},
		{"legacy zero equals one-of-one", 0, 0, 0, 1, true},
		{"one-of-one equals legacy zero", 0, 1, 0, 0, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cp := validCheckpoint()
			cp.Shard, cp.Shards = c.cpShard, c.cpN
			cp.NextIndex = 100
			err := cp.Validate(1, 2033, c.shard, c.shards)
			if c.wantOK && err != nil {
				t.Errorf("Validate refused matching geometry: %v", err)
			}
			if !c.wantOK {
				if err == nil {
					t.Fatalf("Validate accepted checkpoint from shard %d/%d under geometry %d/%d",
						c.cpShard, c.cpN, c.shard, c.shards)
				}
				if !strings.Contains(err.Error(), "shard") {
					t.Errorf("refusal does not name the shard mismatch: %v", err)
				}
			}
		})
	}
}

func TestValidateRefusals(t *testing.T) {
	for name, mutate := range map[string]func(*Checkpoint){
		"version":        func(c *Checkpoint) { c.Version = CheckpointVersion - 1 },
		"seed":           func(c *Checkpoint) { c.Seed = 2 },
		"total zones":    func(c *Checkpoint) { c.TotalZones = 99 },
		"negative index": func(c *Checkpoint) { c.NextIndex = -1 },
		"index past end": func(c *Checkpoint) { c.NextIndex = c.TotalZones + 1 },
	} {
		cp := validCheckpoint()
		mutate(cp)
		if err := cp.Validate(1, 2033, 1, 4); err == nil {
			t.Errorf("%s: Validate accepted a corrupt checkpoint", name)
		}
	}
	if err := validCheckpoint().Validate(1, 2033, 1, 4); err != nil {
		t.Fatalf("Validate refused a pristine checkpoint: %v", err)
	}
}

// TestCheckpointShardRoundTrip pins that shard identity survives the
// write/read cycle — without it the coordinator could not verify which
// partition a checkpoint belongs to.
func TestCheckpointShardRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.ckpt")
	want := validCheckpoint()
	if err := WriteCheckpoint(path, want); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	got, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatalf("ReadCheckpoint: %v", err)
	}
	if got.Shard != want.Shard || got.Shards != want.Shards {
		t.Errorf("shard identity changed in flight: got %d/%d, want %d/%d",
			got.Shard, got.Shards, want.Shard, want.Shards)
	}
	if err := got.Validate(1, 2033, 1, 4); err != nil {
		t.Errorf("round-tripped checkpoint fails validation: %v", err)
	}
}
