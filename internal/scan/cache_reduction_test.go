// Query-reduction regression for the shared delegation cache. Two
// claims are pinned here:
//
//  1. On the resolution layer the cache targets — delegation walks and
//     NS address resolution — a shared cached resolver costs less than
//     half the upstream queries of a fresh, stateless resolver per zone
//     (every zone re-walking the root and re-resolving its NS hosts).
//  2. End-to-end scans produce byte-identical classifications with and
//     without the cache, at strictly lower query cost. The end-to-end
//     ratio is smaller than the resolution-layer one because the
//     per-zone measurement probes (SOA, NS, DNSKEY, per-NS CDS/CDNSKEY)
//     must reach every nameserver regardless of caching.
package scan_test

import (
	"context"
	"strings"
	"testing"

	"dnssecboot/internal/classify"
	"dnssecboot/internal/core"
	"dnssecboot/internal/ecosystem"
	"dnssecboot/internal/report"
	"dnssecboot/internal/resolver"
	"dnssecboot/internal/scan"
)

// classificationArtefacts concatenates every classification-bearing
// artefact of a result set (the same set the chaos suite compares).
func classificationArtefacts(results []*classify.Result) string {
	r := report.Build(results)
	var sb strings.Builder
	for _, artefact := range []func() string{
		r.Headline, r.Figure1,
		func() string { return r.Table1(20) },
		func() string { return r.Table2(20) },
		r.Table3, r.CDSFindings,
	} {
		sb.WriteString(artefact())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// resolveZone performs the resolution phase of one zone scan: the
// delegation walk plus address resolution for every delegated NS host.
func resolveZone(ctx context.Context, r *resolver.Resolver, zoneName string) {
	d, err := r.Delegation(ctx, zoneName)
	if err != nil {
		return
	}
	for _, host := range d.NSHosts() {
		_, _ = r.AddrsOf(ctx, host)
	}
}

func TestCacheHalvesResolutionQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("resolves the world twice")
	}
	world, err := ecosystem.Generate(ecosystem.Config{Seed: 3, ScaleDivisor: chaosScale})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	shared := &resolver.Resolver{Net: world.Net, Roots: world.Roots, Cache: resolver.NewCache(0)}
	for _, zoneName := range world.Targets {
		resolveZone(ctx, shared, zoneName)
	}
	cached := shared.Queries()

	var stateless int64
	for _, zoneName := range world.Targets {
		r := &resolver.Resolver{Net: world.Net, Roots: world.Roots}
		resolveZone(ctx, r, zoneName)
		stateless += r.Queries()
	}

	if cached == 0 || stateless == 0 {
		t.Fatalf("degenerate query counts: cached=%d stateless=%d", cached, stateless)
	}
	if stateless < 2*cached {
		t.Errorf("cached resolution used %d queries vs %d stateless (%.2fx) — want at least 2x reduction",
			cached, stateless, float64(stateless)/float64(cached))
	}
	t.Logf("resolution queries over %d zones: cached=%d stateless=%d (%.1fx reduction)",
		len(world.Targets), cached, stateless, float64(stateless)/float64(cached))
}

func TestCacheKeepsScanOutputsWithFewerQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("scans the world twice, once per-zone")
	}
	world, err := ecosystem.Generate(ecosystem.Config{Seed: 3, ScaleDivisor: chaosScale})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// One shared scanner with the cache: TLD walks and NS address
	// resolutions paid once across the whole scan.
	cachedScanner := core.NewScanner(world, core.Options{Seed: 3, Concurrency: 1})
	cachedObs := cachedScanner.ScanAll(ctx, world.Targets)
	var cachedQueries int64
	for _, obs := range cachedObs {
		cachedQueries += obs.Queries
	}

	// The stateless baseline: a fresh scanner per zone, nothing shared.
	baselineObs := make([]*scan.ZoneObservation, 0, len(world.Targets))
	var baselineQueries int64
	for _, zoneName := range world.Targets {
		s := core.NewScanner(world, core.Options{Seed: 3, Concurrency: 1, DisableCache: true})
		obs := s.ScanZone(ctx, zoneName)
		baselineQueries += obs.Queries
		baselineObs = append(baselineObs, obs)
	}

	if cachedQueries >= baselineQueries {
		t.Errorf("cached scan used %d queries vs %d stateless — cache not reducing end-to-end cost",
			cachedQueries, baselineQueries)
	}
	t.Logf("end-to-end queries over %d zones: cached=%d stateless=%d (%.2fx reduction)",
		len(world.Targets), cachedQueries, baselineQueries, float64(baselineQueries)/float64(cachedQueries))

	classifier := classify.New(world.Now)
	cachedArts := classificationArtefacts(classifier.ClassifyAll(cachedObs))
	baselineArts := classificationArtefacts(classifier.ClassifyAll(baselineObs))
	if cachedArts != baselineArts {
		t.Errorf("cache changed the classifications\n%s", firstDiff(baselineArts, cachedArts))
	}
}
