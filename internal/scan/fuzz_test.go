package scan

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

// FuzzObservationRoundTrip throws arbitrary bytes at the JSONL import
// path. The decoder must never panic, and any record it accepts must
// re-export canonically: FromJSON → ToJSON must be a fixed point from
// the first export onwards, or a checkpoint-resumed dump could not be
// byte-identical to an uninterrupted one.
func FuzzObservationRoundTrip(f *testing.F) {
	// Seed with real records from a scan dump (a full observation with
	// per-NS views and signal probes exercises every branch of the
	// RR-string codec).
	if sample, err := os.ReadFile("testdata/observation_sample.jsonl"); err == nil {
		f.Add(sample)
		for _, line := range bytes.Split(sample, []byte("\n")) {
			if len(line) > 0 {
				f.Add(append(line, '\n'))
				// A truncated record must be rejected, not crash.
				f.Add(line[:len(line)/2])
			}
		}
	}
	// Degenerate and hostile shapes.
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("{}\n"))
	f.Add([]byte(`{"zone":"a."}` + "\n"))
	f.Add([]byte(`{"zone":"a.","ds":["not a record at all"]}` + "\n"))
	f.Add([]byte(`{"zone":"a.","per_ns":[{"host":"ns1.a.","addr":"not-an-ip","cds_outcome":"ok","cdnskey_outcome":"ok"}]}` + "\n"))
	f.Add([]byte(`{"zone":"a.","signals":[{"ns_host":"ns1.a.","outcome":"wat"}]}` + "\n"))
	f.Add([]byte(`{"zone":"` + string(bytes.Repeat([]byte("a"), 300)) + `."}` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		records, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return // malformed streams are rejected, never crash
		}
		for _, o := range records {
			zo, err := FromJSON(o)
			if err != nil {
				continue // individually malformed records are rejected
			}
			b1, err := json.Marshal(zo.ToJSON())
			if err != nil {
				t.Fatalf("marshalling export of %q: %v", o.Zone, err)
			}
			var o2 ObservationJSON
			if err := json.Unmarshal(b1, &o2); err != nil {
				t.Fatalf("export of %q is not valid JSON: %v\n%s", o.Zone, err, b1)
			}
			zo2, err := FromJSON(o2)
			if err != nil {
				t.Fatalf("export of %q does not re-import: %v\n%s", o.Zone, err, b1)
			}
			b2, err := json.Marshal(zo2.ToJSON())
			if err != nil {
				t.Fatalf("re-marshalling export of %q: %v", o.Zone, err)
			}
			if !bytes.Equal(b1, b2) {
				t.Errorf("export of %q is not a fixed point:\n first: %s\nsecond: %s", o.Zone, b1, b2)
			}
		}
	})
}
