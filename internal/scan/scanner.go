package scan

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/netip"
	"time"

	"dnssecboot/internal/dnssec"
	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/obs"
	"dnssecboot/internal/resolver"
	"dnssecboot/internal/transport"
	"dnssecboot/internal/zone"
)

// Config parameterises a Scanner.
type Config struct {
	// Resolver performs all lookups (and carries rate limits).
	Resolver *resolver.Resolver
	// Now anchors DNSSEC validity checks.
	Now time.Time
	// Concurrency is the number of parallel zone scans in ScanAll.
	// Zero means 8.
	Concurrency int
	// SampleSuffixes lists NS-hostname suffixes whose address pools are
	// sampled rather than exhaustively queried — the paper's Cloudflare
	// optimisation (§3). For matching zones only one IPv4 and one IPv6
	// address are queried, except for FullScanFraction of zones.
	SampleSuffixes []string
	// FullScanFraction is the fraction of sampled-operator zones still
	// scanned exhaustively (the paper used 5 %).
	FullScanFraction float64
	// ProbeSignals enables RFC 9615 signalling-name probes.
	ProbeSignals bool
	// SignalOnlyCandidates restricts signal probes to zones that are
	// signed or publish CDS — the short-circuit a registry would apply
	// (Appendix D).
	SignalOnlyCandidates bool
	// TrustAnchor optionally pins the root keys (see Validator).
	TrustAnchor []dnswire.RR
	// Seed makes sampling decisions deterministic.
	Seed int64
	// Stateless scopes the chain-validation memo to a single zone scan
	// instead of the whole Scanner (pair it with a Stateless Resolver).
	// Each zone's observation — query counts included — then depends
	// only on (zone, world, Seed), never on which zones were scanned
	// before it or concurrently, making a streamed export byte-stable
	// across runs and checkpoint resumes.
	Stateless bool
	// Retry, when non-nil, is installed on the Resolver so every scan
	// query retries transient failures (timeouts, SERVFAIL) — the
	// resilience a lossy network demands. Nil leaves the Resolver's own
	// policy (possibly none) in place.
	Retry *resolver.RetryPolicy
	// Tracer, when non-nil, receives a per-zone span of trace events
	// (resolve, query, validate stages) for every scanned zone.
	Tracer *obs.Tracer
	// ProgressWriter, when non-nil, receives live progress lines
	// (zones/s, ETA, error rate) from ScanAll every ProgressInterval
	// (default 2 s).
	ProgressWriter   io.Writer
	ProgressInterval time.Duration
}

// Scanner runs measurement scans.
type Scanner struct {
	cfg Config
	val *Validator
}

// New creates a Scanner.
func New(cfg Config) *Scanner {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Now.IsZero() {
		cfg.Now = time.Now()
	}
	if cfg.Retry != nil && cfg.Resolver != nil {
		cfg.Resolver.Retry = cfg.Retry
	}
	return &Scanner{
		cfg: cfg,
		val: &Validator{R: cfg.Resolver, Now: cfg.Now, TrustAnchor: cfg.TrustAnchor},
	}
}

// Validator exposes the scanner's chain validator (shared cache).
func (s *Scanner) Validator() *Validator { return s.val }

// zoneValidatorKey carries the per-zone validator installed by ScanZone
// in stateless mode.
type zoneValidatorKey struct{}

// validator returns the chain validator for this resolution chain: the
// per-zone one in stateless mode, the Scanner-wide one otherwise.
func (s *Scanner) validator(ctx context.Context) *Validator {
	if v, ok := ctx.Value(zoneValidatorKey{}).(*Validator); ok {
		return v
	}
	return s.val
}

// ScanAll scans every zone with bounded concurrency, preserving input
// order in the result. It is the buffering convenience wrapper around
// ScanStream: observations stream into the result slice as they are
// emitted. When ctx is cancelled no further zones are launched; the
// unscanned tail is filled with observations carrying the cancellation
// as their resolve error.
func (s *Scanner) ScanAll(ctx context.Context, zones []string) []*ZoneObservation {
	out := make([]*ZoneObservation, len(zones))
	res, _ := s.ScanStream(ctx, zones, StreamOptions{
		Sink: func(i int, zo *ZoneObservation) error {
			out[i] = zo
			return nil
		},
	})
	if res.Next < len(zones) {
		// The sink above never fails and ScanAll passes no drain signal,
		// so an early stop always means the context died.
		msg := "scan aborted"
		if err := ctx.Err(); err != nil {
			msg = err.Error()
		}
		for j := res.Next; j < len(zones); j++ {
			out[j] = &ZoneObservation{
				Zone:       dnswire.CanonicalName(zones[j]),
				ResolveErr: msg,
			}
		}
	}
	return out
}

// ScanZone performs the full per-zone measurement.
func (s *Scanner) ScanZone(ctx context.Context, zoneName string) *ZoneObservation {
	zoneName = dnswire.CanonicalName(zoneName)
	zo := &ZoneObservation{Zone: zoneName}
	sp := s.cfg.Tracer.StartSpan(zoneName)
	ctx = obs.WithSpan(ctx, sp)
	ctx, stats := resolver.WithQueryStats(ctx)
	if s.cfg.Stateless {
		// A fresh memo per zone keeps within-zone validations cheap
		// while sharing nothing across zones (see Config.Stateless).
		ctx = context.WithValue(ctx, zoneValidatorKey{}, &Validator{
			R: s.cfg.Resolver, Now: s.cfg.Now, TrustAnchor: s.cfg.TrustAnchor,
		})
	}
	defer func() {
		zo.Queries = stats.Queries.Load()
		zo.Retries = stats.Retries.Load()
		zo.GaveUp = stats.GaveUp.Load()
		zo.CacheHits = stats.CacheHits.Load()
		zo.CacheMisses = stats.CacheMisses.Load()
		zo.Coalesced = stats.Coalesced.Load()
		if zo.ResolveErr != "" {
			sp.End("resolve_error")
		} else {
			sp.End("ok")
		}
	}()

	d, err := s.cfg.Resolver.Delegation(ctx, zoneName)
	if err != nil {
		zo.ResolveErr = err.Error()
		if sp != nil {
			sp.Emit(obs.TraceEvent{Stage: "resolve", Event: "delegation_error", Err: err.Error()})
		}
		return zo
	}
	zo.ParentZone = d.ParentZone
	zo.ParentNS = d.NSHosts()
	zo.DS = d.DS
	zo.DSSigs = d.DSSigs
	if sp != nil {
		sp.Emit(obs.TraceEvent{Stage: "resolve", Event: "delegation", Name: d.ParentZone,
			Detail: fmt.Sprintf("parent=%s ns=%d ds=%d", d.ParentZone, len(zo.ParentNS), len(d.DS))})
		if len(d.DS) == 0 {
			// The referral from the parent is where a DS RRset would
			// appear; record its absence explicitly so a -trace-zone dump
			// of a secure island shows the missing DS at the parent.
			sp.Emit(obs.TraceEvent{Stage: "resolve", Event: "ds_absent", Name: zoneName,
				Qtype: "DS", Detail: "no DS at parent " + d.ParentZone})
		}
	}

	// Resolve every NS host to its addresses.
	var pairs []hostAddr
	glue := glueMap(d.Glue)
	for _, host := range zo.ParentNS {
		addrs := glue[dnswire.CanonicalName(host)]
		if len(addrs) == 0 {
			if got, err := s.cfg.Resolver.AddrsOf(ctx, host); err == nil {
				addrs = got
			}
		}
		for _, a := range addrs {
			pairs = append(pairs, hostAddr{dnswire.CanonicalName(host), a})
		}
	}
	if len(pairs) == 0 {
		zo.ResolveErr = "no reachable nameserver addresses"
		return zo
	}

	// Baseline queries against the first responsive server: SOA
	// (liveness), apex NS (child view), DNSKEY.
	var alive *hostAddr
	for i := range pairs {
		resp, err := s.exchange(ctx, pairs[i].addr, zoneName, dnswire.TypeSOA)
		if err != nil || resp.Rcode == dnswire.RcodeServFail {
			continue
		}
		alive = &pairs[i]
		break
	}
	if alive == nil {
		zo.ResolveErr = "no nameserver answered SOA"
		return zo
	}
	if resp, err := s.exchange(ctx, alive.addr, zoneName, dnswire.TypeNS); err == nil {
		for _, rr := range resp.Answer {
			if ns, ok := rr.Data.(*dnswire.NS); ok && dnswire.CanonicalName(rr.Name) == zoneName {
				zo.ChildNS = append(zo.ChildNS, ns.Target)
			}
		}
	}
	if resp, err := s.exchange(ctx, alive.addr, zoneName, dnswire.TypeDNSKEY); err == nil {
		for _, rr := range resp.Answer {
			switch rd := rr.Data.(type) {
			case *dnswire.DNSKEY:
				zo.DNSKEY = append(zo.DNSKEY, rr)
			case *dnswire.RRSIG:
				if rd.TypeCovered == dnswire.TypeDNSKEY {
					zo.DNSKEYSigs = append(zo.DNSKEYSigs, rr)
				}
			}
		}
	}

	// Per-NS CDS queries, with the sampling optimisation.
	selected := pairs
	if s.sampled(zoneName, zo.ParentNS) {
		selected = samplePairs(pairs)
		zo.SampledNS = len(selected) < len(pairs)
	}
	if sp != nil && zo.SampledNS {
		sp.Emit(obs.TraceEvent{Stage: "scan", Event: "ns_sampled",
			Detail: fmt.Sprintf("querying %d of %d ns addresses", len(selected), len(pairs))})
	}
	for _, p := range selected {
		zo.PerNS = append(zo.PerNS, s.observeNS(ctx, zoneName, p.host, p.addr))
	}

	// Chain validation: DS → DNSKEY, then the SOA RRset under those
	// keys (the zone-passes-validation check).
	if zo.IsSigned() && zo.HasDS() {
		err := dnssec.VerifyChainLink(zoneName, zo.DS, zo.DNSKEY, zo.DNSKEYSigs, s.cfg.Now)
		if err == nil {
			err = s.verifyApexSOA(ctx, alive.addr, zoneName, zo.DNSKEY)
		}
		if err != nil {
			zo.ChainErr = err.Error()
		} else {
			zo.ChainValid = true
		}
		if sp != nil {
			sp.Emit(validateEvent("chain", zo.ChainErr))
		}
	} else if zo.IsSigned() {
		// Secure island: still check internal consistency so classify
		// can distinguish well-signed islands from broken ones.
		err := dnssec.VerifyRRset(zo.DNSKEY, zo.DNSKEYSigs, zo.DNSKEY, s.cfg.Now)
		if err == nil {
			err = s.verifyApexSOA(ctx, alive.addr, zoneName, zo.DNSKEY)
		}
		if err != nil {
			zo.ChainErr = err.Error()
		} else {
			zo.ChainValid = true
		}
		if sp != nil {
			sp.Emit(validateEvent("island_consistency", zo.ChainErr))
		}
	}

	// RFC 9615 signal probes.
	if s.cfg.ProbeSignals && (!s.cfg.SignalOnlyCandidates || s.signalCandidate(zo)) {
		// Probe the union of parent- and child-side NS hosts: RFC 9615
		// requires signals under every NS, and disagreements between
		// the two views are exactly the Cloudflare misconfiguration the
		// paper reports (§4.4).
		for _, host := range zo.AllNSHosts() {
			sig := s.probeSignal(ctx, zoneName, dnswire.CanonicalName(host))
			zo.Signals = append(zo.Signals, sig)
			if sp != nil {
				sp.Emit(obs.TraceEvent{Stage: "scan", Event: "signal_probe", Name: sig.Owner,
					Server: sig.NSHost, Outcome: sig.Outcome.String(), N: len(sig.Records)})
			}
		}
		s.checkZoneCuts(ctx, zo)
	}
	return zo
}

// validateEvent builds the validate-stage trace event for one check.
func validateEvent(check, chainErr string) obs.TraceEvent {
	ev := obs.TraceEvent{Stage: "validate", Event: check}
	if chainErr != "" {
		ev.Err = chainErr
		ev.Outcome = "invalid"
	} else {
		ev.Outcome = "valid"
	}
	return ev
}

func (s *Scanner) signalCandidate(obs *ZoneObservation) bool {
	if obs.IsSigned() {
		return true
	}
	for _, ns := range obs.PerNS {
		if len(ns.CombinedCDS()) > 0 {
			return true
		}
	}
	return false
}

func glueMap(glue []dnswire.RR) map[string][]netip.Addr {
	m := make(map[string][]netip.Addr)
	for _, rr := range glue {
		host := dnswire.CanonicalName(rr.Name)
		switch a := rr.Data.(type) {
		case *dnswire.A:
			m[host] = append(m[host], a.Addr)
		case *dnswire.AAAA:
			m[host] = append(m[host], a.Addr)
		}
	}
	return m
}

// sampled decides whether this zone's NS pool is subject to sampling:
// every NS host must match a sample suffix, and the zone must not fall
// into the full-scan fraction.
func (s *Scanner) sampled(zoneName string, hosts []string) bool {
	if len(s.cfg.SampleSuffixes) == 0 || len(hosts) == 0 {
		return false
	}
	for _, h := range hosts {
		matched := false
		for _, suf := range s.cfg.SampleSuffixes {
			if dnswire.IsSubdomain(h, suf) {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	// The seed bytes must enter the hash BEFORE the zone name. FNV-64a
	// is h = (h0 ^ b0)·p ... — appending the seed last leaves the
	// difference between two seeds' hashes a small constant times p^8,
	// so switching seeds flipped far fewer decisions than independent
	// draws would (measured: 31% of zones at F=0.5, expected ~50%).
	// Seeding first re-mixes every zone-name byte through a different
	// initial state, decorrelating the sampled sets across seeds.
	h := fnv.New64a()
	var seed [8]byte
	for i := range seed {
		seed[i] = byte(s.cfg.Seed >> (8 * i))
	}
	h.Write(seed[:])
	h.Write([]byte(zoneName))
	frac := float64(h.Sum64()%10000) / 10000
	return frac >= s.cfg.FullScanFraction
}

// hostAddr is one (nameserver hostname, address) pair to query.
type hostAddr struct {
	host string
	addr netip.Addr
}

// samplePairs keeps one IPv4 and one IPv6 address overall — the
// paper's reduced Cloudflare scan shape ("1 IPv4 and 1 IPv6").
func samplePairs(pairs []hostAddr) []hostAddr {
	var out []hostAddr
	got4, got6 := false, false
	for _, p := range pairs {
		switch {
		case p.addr.Is4() && !got4:
			out = append(out, p)
			got4 = true
		case p.addr.Is6() && !got6:
			out = append(out, p)
			got6 = true
		}
		if got4 && got6 {
			break
		}
	}
	if len(out) == 0 {
		return pairs
	}
	return out
}

func (s *Scanner) observeNS(ctx context.Context, zoneName, host string, addr netip.Addr) NSObservation {
	ns := NSObservation{Host: host, Addr: addr}
	ns.CDS, ns.CDSSigs, ns.CDSOutcome = s.queryCDS(ctx, addr, zoneName, dnswire.TypeCDS)
	ns.CDNSKEY, ns.CDNSKEYSigs, ns.CDNSKEYOutcome = s.queryCDS(ctx, addr, zoneName, dnswire.TypeCDNSKEY)
	return ns
}

func (s *Scanner) queryCDS(ctx context.Context, addr netip.Addr, zoneName string, typ dnswire.Type) ([]dnswire.RR, []dnswire.RR, Outcome) {
	resp, err := s.exchange(ctx, addr, zoneName, typ)
	if err != nil {
		// Only genuine silence is a timeout. Everything else — a
		// malformed response, SERVFAIL exhausted through retries, a
		// cancelled context — is a server/protocol failure; lumping it
		// into the timeout bucket inflated the timeout share of Table 2.
		switch {
		case errors.Is(err, transport.ErrUnreachable):
			return nil, nil, OutcomeUnreachable
		case errors.Is(err, transport.ErrTimeout):
			return nil, nil, OutcomeTimeout
		default:
			return nil, nil, OutcomeError
		}
	}
	switch resp.Rcode {
	case dnswire.RcodeNoError:
	case dnswire.RcodeNXDomain:
		return nil, nil, OutcomeNXDomain
	default:
		return nil, nil, OutcomeError
	}
	var records, sigs []dnswire.RR
	for _, rr := range resp.Answer {
		if rr.Type() == typ && dnswire.CanonicalName(rr.Name) == zoneName {
			records = append(records, rr)
		}
		if sig, ok := rr.Data.(*dnswire.RRSIG); ok && sig.TypeCovered == typ {
			sigs = append(sigs, rr)
		}
	}
	if len(records) == 0 {
		return nil, nil, OutcomeNoData
	}
	return records, sigs, OutcomeOK
}

func (s *Scanner) exchange(ctx context.Context, addr netip.Addr, name string, typ dnswire.Type) (*dnswire.Message, error) {
	return s.cfg.Resolver.Exchange(ctx, netip.AddrPortFrom(addr, s.cfg.Resolver.Port()), name, typ)
}

func (s *Scanner) verifyApexSOA(ctx context.Context, addr netip.Addr, zoneName string, keys []dnswire.RR) error {
	resp, err := s.exchange(ctx, addr, zoneName, dnswire.TypeSOA)
	if err != nil {
		return err
	}
	var soa, sigs []dnswire.RR
	for _, rr := range resp.Answer {
		switch rd := rr.Data.(type) {
		case *dnswire.SOA:
			soa = append(soa, rr)
		case *dnswire.RRSIG:
			if rd.TypeCovered == dnswire.TypeSOA {
				sigs = append(sigs, rr)
			}
		}
	}
	if len(soa) == 0 {
		return errors.New("scan: no SOA in apex answer")
	}
	return dnssec.VerifyRRset(soa, sigs, keys, s.cfg.Now)
}

// probeSignal fetches CDS/CDNSKEY at _dsboot.<child>._signal.<ns> and
// chain-validates what it finds. The two lookups are recorded
// individually (CDSOutcome, CDNSKEYOutcome); the aggregate Outcome is
// the worst of the two, so a partial failure (CDS answered, CDNSKEY
// timed out) is never masked by the success.
func (s *Scanner) probeSignal(ctx context.Context, child, nsHost string) SignalObservation {
	so := SignalObservation{NSHost: nsHost}
	owner, err := zone.SignalName(child, nsHost)
	if err != nil {
		so.NameTooLong = true
		so.Outcome = OutcomeError
		so.CDSOutcome = OutcomeError
		so.CDNSKEYOutcome = OutcomeError
		return so
	}
	so.Owner = owner
	so.CDSOutcome = s.probeSignalType(ctx, &so, dnswire.TypeCDS)
	so.CDNSKEYOutcome = s.probeSignalType(ctx, &so, dnswire.TypeCDNSKEY)
	so.Outcome = aggregateSignalOutcome(so.CDSOutcome, so.CDNSKEYOutcome, len(so.Records) > 0)
	if len(so.Records) == 0 {
		return so
	}

	// RFC 9615 requires the signalling records to be DNSSEC-secure.
	byType := dnswire.GroupRRsets(so.Records)
	secure := true
	for _, set := range byType {
		var sigs []dnswire.RR
		for _, sig := range so.Sigs {
			if sig.Data.(*dnswire.RRSIG).TypeCovered == set[0].Type() {
				sigs = append(sigs, sig)
			}
		}
		if err := s.validator(ctx).ValidateRRset(ctx, set, sigs); err != nil {
			secure = false
			so.ValidationErr = err.Error()
			break
		}
	}
	so.Secure = secure
	return so
}

// probeSignalType performs one CDS-or-CDNSKEY lookup at the signal
// owner, appending any records and signatures into so, and returns how
// that lookup ended.
func (s *Scanner) probeSignalType(ctx context.Context, so *SignalObservation, typ dnswire.Type) Outcome {
	answer, rcode, err := s.cfg.Resolver.Lookup(ctx, so.Owner, typ)
	if err != nil {
		switch {
		case rcode == dnswire.RcodeNXDomain:
			return OutcomeNXDomain
		case errors.Is(err, transport.ErrUnreachable):
			return OutcomeUnreachable
		case errors.Is(err, transport.ErrTimeout):
			return OutcomeTimeout
		default:
			return OutcomeError
		}
	}
	found := false
	for _, rr := range answer {
		if rr.Type() == typ && dnswire.CanonicalName(rr.Name) == so.Owner {
			so.Records = append(so.Records, rr)
			found = true
		}
		if sig, ok := rr.Data.(*dnswire.RRSIG); ok && sig.TypeCovered == typ {
			so.Sigs = append(so.Sigs, rr)
		}
	}
	if !found {
		return OutcomeNoData
	}
	return OutcomeOK
}

// aggregateSignalOutcome folds the two per-type outcomes into one. A
// failure or NXDOMAIN on either lookup dominates (the Outcome ordering
// ranks severity); otherwise the probe is OK when any records were
// found and NoData when both lookups came back empty — a signal zone
// publishing only CDS or only CDNSKEY is still a working signal.
func aggregateSignalOutcome(cds, cdnskey Outcome, haveRecords bool) Outcome {
	worst := cds
	if cdnskey > worst {
		worst = cdnskey
	}
	if worst.Failed() || worst == OutcomeNXDomain {
		return worst
	}
	if haveRecords {
		return OutcomeOK
	}
	return OutcomeNoData
}

// checkZoneCuts looks for zone cuts inside signal zones, which RFC 9615
// forbids. It only runs when at least one signal observation found
// records (the interesting zones), and probes the intermediate names
// between each _signal.<ns> apex and the record owner with NS queries.
func (s *Scanner) checkZoneCuts(ctx context.Context, obs *ZoneObservation) {
	any := false
	for _, so := range obs.Signals {
		if len(so.Records) > 0 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	for i := range obs.Signals {
		so := &obs.Signals[i]
		if so.Owner == "" {
			continue
		}
		apex := zone.SignalZoneName(so.NSHost)
		for _, name := range intermediateNames(so.Owner, apex) {
			answer, _, err := s.cfg.Resolver.Lookup(ctx, name, dnswire.TypeNS)
			if err != nil {
				continue // NXDOMAIN / timeout: no cut evidence here
			}
			for _, rr := range answer {
				if rr.Type() == dnswire.TypeNS && dnswire.CanonicalName(rr.Name) == name {
					so.ZoneCut = true
				}
			}
			if so.ZoneCut {
				break
			}
		}
	}
}

// intermediateNames lists the names strictly between owner and apex
// (exclusive on both ends), deepest first.
func intermediateNames(owner, apex string) []string {
	owner, apex = dnswire.CanonicalName(owner), dnswire.CanonicalName(apex)
	var out []string
	for n := dnswire.Parent(owner); n != apex && n != "." && dnswire.IsSubdomain(n, apex); n = dnswire.Parent(n) {
		out = append(out, n)
	}
	return out
}
