package scan

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dnssecboot/internal/dnssec"
	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/resolver"
)

// Validator performs full-chain DNSSEC validation: it walks from the
// root to the zone that signed an RRset, authenticating each DS→DNSKEY
// link, and finally verifies the RRset itself. Validated zone key sets
// are memoised, so repeated validations under the same operator zones
// (the common case when probing thousands of signal names) are cheap.
type Validator struct {
	// R performs the DNS lookups.
	R *resolver.Resolver
	// Now anchors signature validity checks.
	Now time.Time
	// TrustAnchor, when non-empty, is the DS set the root's DNSKEY must
	// match. When empty, the root's DNSKEY RRset is trusted if
	// self-consistent (trust-on-first-use; appropriate inside the
	// simulation where the root is ours).
	TrustAnchor []dnswire.RR

	mu    sync.Mutex
	cache map[string]*chainEntry
}

type chainEntry struct {
	keys []dnswire.RR
	err  error
}

// Errors from chain validation.
var (
	ErrInsecureDelegation = errors.New("scan: insecure delegation (no DS)")
	ErrBogus              = errors.New("scan: chain validation failed")
)

// ZoneKeys returns the validated DNSKEY RRset of zoneName, walking and
// authenticating the chain from the root on first use.
func (v *Validator) ZoneKeys(ctx context.Context, zoneName string) ([]dnswire.RR, error) {
	zoneName = dnswire.CanonicalName(zoneName)
	v.mu.Lock()
	if v.cache == nil {
		v.cache = make(map[string]*chainEntry)
	}
	if e, ok := v.cache[zoneName]; ok {
		v.mu.Unlock()
		return e.keys, e.err
	}
	v.mu.Unlock()

	keys, err := v.zoneKeysUncached(ctx, zoneName)

	v.mu.Lock()
	v.cache[zoneName] = &chainEntry{keys: keys, err: err}
	v.mu.Unlock()
	return keys, err
}

func (v *Validator) zoneKeysUncached(ctx context.Context, zoneName string) ([]dnswire.RR, error) {
	keySet, keySigs, err := v.fetchDNSKEY(ctx, zoneName)
	if err != nil {
		return nil, err
	}
	if zoneName == "." {
		if len(v.TrustAnchor) > 0 {
			if err := dnssec.VerifyChainLink(".", v.TrustAnchor, keySet, keySigs, v.Now); err != nil {
				return nil, fmt.Errorf("%w: root keys vs trust anchor: %v", ErrBogus, err)
			}
			return keySet, nil
		}
		// No anchor configured: require the root key set to be
		// self-signed by a present SEP key.
		if err := dnssec.VerifyRRset(keySet, keySigs, keySet, v.Now); err != nil {
			return nil, fmt.Errorf("%w: root keys not self-consistent: %v", ErrBogus, err)
		}
		return keySet, nil
	}

	d, err := v.R.Delegation(ctx, zoneName)
	if err != nil {
		return nil, fmt.Errorf("scan: delegation of %s: %w", zoneName, err)
	}
	if len(d.DS) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrInsecureDelegation, zoneName)
	}
	// Authenticate the DS RRset with the parent's validated keys.
	parentKeys, err := v.ZoneKeys(ctx, d.ParentZone)
	if err != nil {
		return nil, err
	}
	if err := dnssec.VerifyRRset(d.DS, d.DSSigs, parentKeys, v.Now); err != nil {
		return nil, fmt.Errorf("%w: DS of %s not signed by %s: %v", ErrBogus, zoneName, d.ParentZone, err)
	}
	// Authenticate the child's DNSKEY via the DS.
	if err := dnssec.VerifyChainLink(zoneName, d.DS, keySet, keySigs, v.Now); err != nil {
		return nil, fmt.Errorf("%w: DNSKEY of %s: %v", ErrBogus, zoneName, err)
	}
	return keySet, nil
}

func (v *Validator) fetchDNSKEY(ctx context.Context, zoneName string) (keys, sigs []dnswire.RR, err error) {
	answer, _, err := v.R.Lookup(ctx, zoneName, dnswire.TypeDNSKEY)
	if err != nil {
		return nil, nil, fmt.Errorf("scan: DNSKEY of %s: %w", zoneName, err)
	}
	for _, rr := range answer {
		switch rr.Type() {
		case dnswire.TypeDNSKEY:
			keys = append(keys, rr)
		case dnswire.TypeRRSIG:
			if rr.Data.(*dnswire.RRSIG).TypeCovered == dnswire.TypeDNSKEY {
				sigs = append(sigs, rr)
			}
		}
	}
	if len(keys) == 0 {
		return nil, nil, fmt.Errorf("%w: no DNSKEY at %s", ErrInsecureDelegation, zoneName)
	}
	return keys, sigs, nil
}

// ValidateRRset authenticates an RRset with its RRSIGs: the signer
// zone's keys are chain-validated from the root, then the signature
// checked. The RRSIG's signer name determines the validating zone.
func (v *Validator) ValidateRRset(ctx context.Context, rrset, sigs []dnswire.RR) error {
	if len(rrset) == 0 {
		return errors.New("scan: empty RRset")
	}
	if len(sigs) == 0 {
		return fmt.Errorf("%w: unsigned RRset %s/%s", ErrBogus, rrset[0].Name, rrset[0].Type())
	}
	var lastErr error
	for _, sigRR := range sigs {
		sig, ok := sigRR.Data.(*dnswire.RRSIG)
		if !ok {
			continue
		}
		keys, err := v.ZoneKeys(ctx, sig.SignerName)
		if err != nil {
			lastErr = err
			continue
		}
		if err := dnssec.VerifySig(rrset, sigRR, keyRRAt(keys, sig.KeyTag), v.Now); err != nil {
			// Try every key with a matching tag before failing.
			verified := false
			for _, k := range keys {
				if e := dnssec.VerifySig(rrset, sigRR, k, v.Now); e == nil {
					verified = true
					break
				} else {
					lastErr = e
				}
			}
			if verified {
				return nil
			}
			continue
		}
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("%w: no verifiable signature", ErrBogus)
	}
	return lastErr
}

func keyRRAt(keys []dnswire.RR, tag uint16) dnswire.RR {
	for _, rr := range keys {
		if k, ok := rr.Data.(*dnswire.DNSKEY); ok && dnssec.KeyTag(k) == tag {
			return rr
		}
	}
	if len(keys) > 0 {
		return keys[0]
	}
	return dnswire.RR{}
}
