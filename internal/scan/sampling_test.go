package scan

import (
	"fmt"
	"testing"
)

// Regression tests for the fullScan sampling decision in sampled():
// the FullScanFraction boundaries must be exact, and changing the Seed
// must actually reshuffle which zones land in the full-scan set.

func samplingScanner(fraction float64, seed int64) *Scanner {
	return New(Config{
		SampleSuffixes:   []string{"ns.cloudflare.com."},
		FullScanFraction: fraction,
		Seed:             seed,
	})
}

var samplingHosts = []string{"asa.ns.cloudflare.com.", "elliot.ns.cloudflare.com."}

func samplingZone(i int) string {
	return fmt.Sprintf("zone%05d.com.", i)
}

func TestFullScanFractionZeroSamplesEveryZone(t *testing.T) {
	s := samplingScanner(0, 1)
	for i := 0; i < 5000; i++ {
		if !s.sampled(samplingZone(i), samplingHosts) {
			t.Fatalf("FullScanFraction=0: zone %s got a full scan, want none", samplingZone(i))
		}
	}
}

func TestFullScanFractionOneScansEveryZoneFully(t *testing.T) {
	s := samplingScanner(1.0, 1)
	for i := 0; i < 5000; i++ {
		if s.sampled(samplingZone(i), samplingHosts) {
			t.Fatalf("FullScanFraction=1.0: zone %s was sampled, want full scan", samplingZone(i))
		}
	}
}

// TestSampledSeedSensitivity pins the fix for the seed-mixing order.
// With the seed bytes appended AFTER the zone name, FNV-64a left the
// two seeds' hashes differing by a small constant times prime^8, so
// switching seeds flipped only ~31% of decisions at F=0.5 instead of
// the ~50% independent draws give. Seeding the hash first restores
// independence; this test fails on the pre-fix code.
func TestSampledSeedSensitivity(t *testing.T) {
	const n = 10000
	a := samplingScanner(0.5, 1)
	b := samplingScanner(0.5, 2)
	differ := 0
	for i := 0; i < n; i++ {
		z := samplingZone(i)
		if a.sampled(z, samplingHosts) != b.sampled(z, samplingHosts) {
			differ++
		}
	}
	frac := float64(differ) / n
	if frac < 0.40 {
		t.Fatalf("seeds 1 vs 2 flip only %.1f%% of sampling decisions at F=0.5, want ≈50%% (seed correlation)", 100*frac)
	}
	// And each seed on its own must still honour the fraction.
	full := 0
	for i := 0; i < n; i++ {
		if !a.sampled(samplingZone(i), samplingHosts) {
			full++
		}
	}
	if got := float64(full) / n; got < 0.45 || got > 0.55 {
		t.Fatalf("full-scan fraction = %.3f at F=0.5, want ≈0.5", got)
	}
}
