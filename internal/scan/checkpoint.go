package scan

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Checkpoint/resume for streaming scans. The paper's campaign scanned
// 287.6M registrable domains over ten days; at that scale a crash must
// not discard completed work. The streaming sink periodically persists
// a Checkpoint describing the contiguously-exported prefix; `dnssec-scan
// -resume` re-derives the same deterministic world from the recorded
// seeds, truncates the JSONL dump back to the last durable record, and
// continues the scan from NextIndex.

// CheckpointVersion is bumped on incompatible format changes. Version 2
// added shard identity and the versioned aggregate-state envelope
// (report.StateVersion); version-1 checkpoints predate both and cannot
// be resumed safely.
const CheckpointVersion = 2

// Checkpoint records the durable state of an interrupted streaming
// scan. The pipeline-level pieces (CLI flag fingerprint, report
// accumulator state) travel as opaque JSON so the scan package stays
// ignorant of classification and flag parsing.
type Checkpoint struct {
	// Version guards against reading a checkpoint written by an
	// incompatible binary.
	Version int `json:"version"`
	// Seed and ChaosSeed pin the deterministic world and fault pattern
	// the interrupted scan was using.
	Seed      int64 `json:"seed"`
	ChaosSeed int64 `json:"chaos_seed,omitempty"`
	// TotalZones is the length of the target list; a resume against a
	// world of a different size is refused.
	TotalZones int `json:"total_zones"`
	// Shard and Shards record the writing process's shard geometry:
	// this checkpoint covers the Shard-th of Shards contiguous
	// partitions of the zone space (0-based). Shards zero or one both
	// mean an unsharded scan; a resume under different geometry is
	// refused, because the dump prefix and NextIndex are only
	// meaningful relative to the shard's own range.
	Shard  int `json:"shard,omitempty"`
	Shards int `json:"shards,omitempty"`
	// NextIndex is the first zone index NOT yet exported: the JSONL
	// dump holds exactly the records for zones [shard start, NextIndex).
	NextIndex int `json:"next_index"`
	// DumpBytes is the byte length of the dump file at the moment this
	// checkpoint was written (after a flush). On resume the dump is
	// truncated back to this offset, discarding records that were
	// written after the last checkpoint and would otherwise duplicate.
	DumpBytes int64 `json:"dump_bytes,omitempty"`
	// Config is the pipeline's opaque flag fingerprint; a resume with
	// different flags is refused.
	Config json.RawMessage `json:"config,omitempty"`
	// Aggregate is the streaming report accumulator state (see
	// report.Aggregate.MarshalState), so Tables 1–3 resume without
	// re-reading the exported observations.
	Aggregate json.RawMessage `json:"aggregate,omitempty"`
}

// normalizeGeometry maps the two spellings of "unsharded" (Shards 0,
// the pre-shard wire form, and Shards 1) onto one canonical pair.
func normalizeGeometry(shard, shards int) (int, int) {
	if shards <= 1 {
		return 0, 1
	}
	return shard, shards
}

// Validate checks a loaded checkpoint against the world a resume
// reconstructed and the shard geometry it is running under. The
// fingerprint is seed + world size + shard identity: a checkpoint
// written by shard i/N describes a dump prefix and NextIndex that only
// make sense inside that shard's range, so resuming it as a different
// shard — or as an unsharded scan — would silently skip or duplicate
// zones.
func (c *Checkpoint) Validate(seed int64, totalZones, shard, shards int) error {
	if c.Version != CheckpointVersion {
		return fmt.Errorf("scan: checkpoint version %d, this binary writes %d", c.Version, CheckpointVersion)
	}
	if c.Seed != seed {
		return fmt.Errorf("scan: checkpoint was taken with seed %d, not %d", c.Seed, seed)
	}
	if c.TotalZones != totalZones {
		return fmt.Errorf("scan: checkpoint covers %d zones but the regenerated world has %d", c.TotalZones, totalZones)
	}
	cpShard, cpShards := normalizeGeometry(c.Shard, c.Shards)
	wantShard, wantShards := normalizeGeometry(shard, shards)
	if cpShard != wantShard || cpShards != wantShards {
		return fmt.Errorf("scan: checkpoint was written by shard %d/%d, cannot resume as shard %d/%d",
			cpShard, cpShards, wantShard, wantShards)
	}
	if c.NextIndex < 0 || c.NextIndex > c.TotalZones {
		return fmt.Errorf("scan: checkpoint next_index %d outside [0, %d]", c.NextIndex, c.TotalZones)
	}
	return nil
}

// WriteCheckpoint atomically persists a checkpoint: the JSON is written
// to a temporary file in the same directory, synced, and renamed over
// path, so a crash mid-write never corrupts the previous checkpoint.
func WriteCheckpoint(path string, c *Checkpoint) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("scan: encoding checkpoint: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("scan: checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("scan: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("scan: committing checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpoint loads a checkpoint written by WriteCheckpoint.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scan: reading checkpoint: %w", err)
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("scan: parsing checkpoint %s: %w", path, err)
	}
	return &c, nil
}
