// Chaos regression suite: the scan's classifications must be invariant
// under injected packet loss when the retry policy is enabled. Each run
// scans a freshly generated small world at a given loss rate and
// compares the full artefact set (headline, Figure 1, Tables 1–3, the
// CDS findings) byte-for-byte against the lossless run. Query counters
// are deliberately excluded — retries *should* move those.
package scan_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"dnssecboot/internal/core"
)

// chaosScale keeps the chaos worlds small enough that three sequential
// scans stay fast: the paper's populations divided by 500k, a few
// hundred zones.
const chaosScale = 500_000

type chaosOutcome struct {
	artefacts string // classification-bearing artefacts, concatenated
	queries   int64
	retries   int64
	gaveUp    int64
}

// chaosRun generates a fresh world and scans it under the given fault
// configuration. Concurrency is 1: the per-tuple fault sequences are
// deterministic on their own, but shared retry/health state makes raw
// query *counts* depend on goroutine interleaving, and the
// determinism assertions below compare exact counts.
func chaosRun(t *testing.T, loss float64, retryAttempts int, chaosSeed int64) chaosOutcome {
	t.Helper()
	return chaosRunOpts(t, core.Options{
		Seed:          3,
		ScaleDivisor:  chaosScale,
		Concurrency:   1,
		LossRate:      loss,
		RetryAttempts: retryAttempts,
		ChaosSeed:     chaosSeed,
	})
}

// chaosRunOpts is chaosRun with full control over the study options.
func chaosRunOpts(t *testing.T, opts core.Options) chaosOutcome {
	t.Helper()
	study, err := core.Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("chaos run (%+v): %v", opts, err)
	}
	r := study.Report
	var sb strings.Builder
	for _, artefact := range []func() string{
		r.Headline, r.Figure1,
		func() string { return r.Table1(20) },
		func() string { return r.Table2(20) },
		r.Table3, r.CDSFindings,
	} {
		sb.WriteString(artefact())
		sb.WriteByte('\n')
	}
	return chaosOutcome{
		artefacts: sb.String(),
		queries:   r.Queries,
		retries:   r.Retries,
		gaveUp:    r.GaveUp,
	}
}

// chaosRetries gives each exchange 8 attempts: at 10 % loss the chance
// of a query failing all of them is 1e-8, far below one expected
// misclassification across the suite's few thousand exchanges.
const chaosRetries = 8

func TestChaosClassificationLossInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("three full scans")
	}
	baseline := chaosRun(t, 0, chaosRetries, 42)
	if baseline.retries != 0 || baseline.gaveUp != 0 {
		t.Fatalf("lossless run retried (%d) or gave up (%d) — ecosystem failures should be deterministic",
			baseline.retries, baseline.gaveUp)
	}
	for _, loss := range []float64{0.02, 0.10} {
		lossy := chaosRun(t, loss, chaosRetries, 42)
		if lossy.artefacts != baseline.artefacts {
			t.Errorf("loss=%g: classification artefacts diverged from the lossless run\n%s",
				loss, firstDiff(baseline.artefacts, lossy.artefacts))
		}
		// Non-vacuity: the fault layer must actually have been biting.
		if lossy.retries == 0 {
			t.Errorf("loss=%g: no retries recorded — loss was not injected", loss)
		}
		if lossy.queries <= baseline.queries {
			t.Errorf("loss=%g: %d queries vs lossless %d — retries should cost queries",
				loss, lossy.queries, baseline.queries)
		}
	}
}

// TestChaosRequiresRetries is the negative control: with the retry
// policy disabled the same 10 % loss must visibly corrupt the
// classifications, proving the invariance above is earned by the retry
// engine rather than by the suite comparing too little.
func TestChaosRequiresRetries(t *testing.T) {
	if testing.Short() {
		t.Skip("two full scans")
	}
	baseline := chaosRun(t, 0, 1, 42)
	lossy := chaosRun(t, 0.10, 1, 42)
	if lossy.artefacts == baseline.artefacts {
		t.Error("10% loss without retries left every artefact identical — fault injection is not reaching the scan")
	}
}

func TestChaosDeterministicUnderSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("two full scans")
	}
	a := chaosRun(t, 0.10, chaosRetries, 7)
	b := chaosRun(t, 0.10, chaosRetries, 7)
	if a.queries != b.queries || a.retries != b.retries || a.gaveUp != b.gaveUp {
		t.Errorf("identical chaos seeds diverged: queries %d/%d retries %d/%d gaveUp %d/%d",
			a.queries, b.queries, a.retries, b.retries, a.gaveUp, b.gaveUp)
	}
	if a.artefacts != b.artefacts {
		t.Error("identical chaos seeds produced different artefacts")
	}
	// A different chaos seed reshuffles which packets drop (different
	// retry totals) without touching the conclusions.
	c := chaosRun(t, 0.10, chaosRetries, 8)
	if c.artefacts != a.artefacts {
		t.Error("chaos seed changed the classifications, not just the fault pattern")
	}
	if c.queries == a.queries && c.retries == a.retries {
		t.Error("different chaos seeds produced the identical query accounting — seed unused?")
	}
}

// TestChaosCacheInvariant proves the shared delegation cache is an
// optimisation, not a behaviour change: with and without the cache the
// classification artefacts must be byte-identical — both on a clean
// network and under loss with retries — while the cached runs must
// issue measurably fewer queries (non-vacuity).
func TestChaosCacheInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("four full scans")
	}
	for _, tc := range []struct {
		name          string
		loss          float64
		retryAttempts int
	}{
		{"lossless", 0, 1},
		{"lossy", 0.05, chaosRetries},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := core.Options{
				Seed:          3,
				ScaleDivisor:  chaosScale,
				Concurrency:   1,
				LossRate:      tc.loss,
				RetryAttempts: tc.retryAttempts,
				ChaosSeed:     42,
			}
			cached := chaosRunOpts(t, opts)
			opts.DisableCache = true
			legacy := chaosRunOpts(t, opts)
			if cached.artefacts != legacy.artefacts {
				t.Errorf("cache changed the classifications\n%s",
					firstDiff(legacy.artefacts, cached.artefacts))
			}
			if cached.queries >= legacy.queries {
				t.Errorf("cached scan used %d queries vs %d without the cache — cache not biting",
					cached.queries, legacy.queries)
			}
		})
	}
}

// firstDiff renders the first differing line of two artefact dumps.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  lossless: %s\n  lossy:    %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
