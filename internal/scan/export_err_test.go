package scan

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// Regression tests for WriteJSONL's failure behaviour: errors must name
// the zone and record index they interrupted, and a failing writer must
// never be left holding a partial trailing line.

// failAfterWriter accepts whole writes until limit bytes have been
// taken, then rejects every further write outright (n=0). Each Write is
// atomic — all or nothing — modelling a full disk or closed pipe at a
// write boundary.
type failAfterWriter struct {
	limit int
	buf   bytes.Buffer
	err   error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.buf.Len()+len(p) > w.limit {
		return 0, w.err
	}
	return w.buf.Write(p)
}

func exportObservations(n int, padding int) []*ZoneObservation {
	out := make([]*ZoneObservation, n)
	for i := range out {
		out[i] = &ZoneObservation{
			Zone:       fmt.Sprintf("zone%06d.example.", i),
			ParentZone: "example.",
			// ResolveErr pads the record so a few thousand records
			// overflow WriteJSONL's 1 MiB buffer.
			ResolveErr: strings.Repeat("x", padding),
			Queries:    int64(i),
		}
	}
	return out
}

func TestWriteJSONLErrorNamesZoneAndIndex(t *testing.T) {
	obs := exportObservations(5, 0)
	w := &failAfterWriter{limit: 0, err: errors.New("disk full")}
	err := WriteJSONL(w, obs)
	if err == nil {
		t.Fatal("WriteJSONL succeeded against a dead writer")
	}
	if !errors.Is(err, w.err) {
		t.Fatalf("error chain lost the writer's error: %v", err)
	}
	// With a 1 MiB buffer and 5 tiny records the failure surfaces at
	// the final flush; the error must still say what was being written.
	if !strings.Contains(err.Error(), "record") {
		t.Fatalf("error does not identify the failing record: %v", err)
	}
}

func TestWriteJSONLErrorAtRecordBoundaryNamesZone(t *testing.T) {
	// Records of ~64 KiB each: the 1 MiB buffer fills after ~16
	// records, so the failing flush happens mid-stream, attributable to
	// a specific record.
	obs := exportObservations(64, 64*1024)
	w := &failAfterWriter{limit: 1 << 20, err: errors.New("disk full")}
	err := WriteJSONL(w, obs)
	if err == nil {
		t.Fatal("WriteJSONL succeeded past the writer's limit")
	}
	if !strings.Contains(err.Error(), "zone") || !strings.Contains(err.Error(), "record") {
		t.Fatalf("mid-stream error does not carry zone/record context: %v", err)
	}
}

func TestWriteJSONLNoPartialTrailingLine(t *testing.T) {
	// Enough data to overflow the internal buffer several times against
	// a writer that dies partway: whatever the writer accepted must end
	// exactly at a record boundary. The pre-fix code flushed whenever
	// the encoder crossed the 1 MiB mark, splitting a record across two
	// writes — the first half survives in the output when the second
	// write fails.
	obs := exportObservations(256, 64*1024)
	for _, limit := range []int{1 << 20, 3 << 20, 5 << 20} {
		w := &failAfterWriter{limit: limit, err: errors.New("disk full")}
		if err := WriteJSONL(w, obs); err == nil {
			t.Fatalf("limit %d: WriteJSONL succeeded past the writer's limit", limit)
		}
		got := w.buf.Bytes()
		if len(got) == 0 {
			continue
		}
		if got[len(got)-1] != '\n' {
			tail := got[len(got)-min(len(got), 80):]
			t.Fatalf("limit %d: output ends mid-record: ...%q", limit, tail)
		}
		// Every accepted line must be complete, parseable JSON.
		if _, err := ReadJSONL(bytes.NewReader(got)); err != nil {
			t.Fatalf("limit %d: accepted output does not re-parse: %v", limit, err)
		}
	}
}
