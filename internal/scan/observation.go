// Package scan implements the measurement engine of the reproduction —
// the equivalent of the YoDNS scanner the paper uses (§3). For each
// target zone it resolves the full dependency tree, queries every
// authoritative nameserver for CDS/CDNSKEY records, collects the
// DNSSEC material (DS at the parent, DNSKEY, RRSIGs), probes the
// RFC 9615 signalling names under every nameserver, and validates
// DNSSEC chains. Its output, ZoneObservation, is the input to
// internal/classify.
package scan

import (
	"net/netip"

	"dnssecboot/internal/dnswire"
)

// Outcome describes how a single query attempt ended.
//
// lint:exhaustive — switches over Outcome must cover every constant.
type Outcome int

// Query outcomes.
const (
	// OutcomeOK: an answer with records.
	OutcomeOK Outcome = iota
	// OutcomeNoData: NOERROR with an empty answer (type absent).
	OutcomeNoData
	// OutcomeNXDomain: the name does not exist.
	OutcomeNXDomain
	// OutcomeError: the server returned an error rcode (FORMERR,
	// SERVFAIL, REFUSED, NOTIMP) — the paper's "failed … or returned an
	// error response, when queried about these RRs".
	OutcomeError
	// OutcomeTimeout: no response.
	OutcomeTimeout
	// OutcomeUnreachable: no route / connection refused.
	OutcomeUnreachable
)

// String renders the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeNoData:
		return "nodata"
	case OutcomeNXDomain:
		return "nxdomain"
	case OutcomeError:
		return "error"
	case OutcomeTimeout:
		return "timeout"
	case OutcomeUnreachable:
		return "unreachable"
	}
	return "unknown"
}

// Failed reports whether the outcome is a server failure (as opposed
// to a well-formed negative answer).
func (o Outcome) Failed() bool {
	return o == OutcomeError || o == OutcomeTimeout || o == OutcomeUnreachable
}

// NSObservation is the per-nameserver view of a zone's CDS records.
type NSObservation struct {
	// Host is the NS hostname; Addr the specific address queried.
	Host string
	Addr netip.Addr
	// CDS and CDNSKEY are the child-published sets returned by this
	// server, with their RRSIGs.
	CDS         []dnswire.RR
	CDNSKEY     []dnswire.RR
	CDSSigs     []dnswire.RR
	CDNSKEYSigs []dnswire.RR
	// CDSOutcome and CDNSKEYOutcome record how the queries ended.
	CDSOutcome     Outcome
	CDNSKEYOutcome Outcome
}

// CombinedCDS returns the CDS and CDNSKEY records together, the unit
// the paper calls "CDS" for brevity (§2).
func (n *NSObservation) CombinedCDS() []dnswire.RR {
	out := append([]dnswire.RR(nil), n.CDS...)
	return append(out, n.CDNSKEY...)
}

// SignalObservation is the view of one RFC 9615 signalling name
// (_dsboot.<child>._signal.<ns>) for one nameserver of the child.
type SignalObservation struct {
	// NSHost is the child nameserver whose signalling name was probed.
	NSHost string
	// Owner is the full signalling name.
	Owner string
	// Records are the CDS/CDNSKEY records found there; Sigs their
	// RRSIGs.
	Records []dnswire.RR
	Sigs    []dnswire.RR
	// Outcome is the aggregate of the two lookups: the worst failure
	// wins, so a probe whose CDS succeeded but whose CDNSKEY timed out
	// reports the timeout rather than masking it.
	Outcome Outcome
	// CDSOutcome and CDNSKEYOutcome record how each lookup ended
	// individually — a signal zone publishing only one of the two types
	// legitimately shows OK alongside NoData.
	CDSOutcome     Outcome
	CDNSKEYOutcome Outcome
	// NameTooLong is set when the signalling name exceeds the 255-octet
	// limit and could not be queried at all (§2 limitations).
	NameTooLong bool
	// Secure is set when the records validated under a full DNSSEC
	// chain from the root; ValidationErr carries the failure otherwise.
	Secure        bool
	ValidationErr string
	// ZoneCut is set when a zone cut was detected between the signal
	// zone apex and the record owner, which RFC 9615 forbids.
	ZoneCut bool
}

// ZoneObservation aggregates everything the scanner learned about one
// target zone.
type ZoneObservation struct {
	// Zone is the scanned apex.
	Zone string
	// ResolveErr is non-empty when the zone failed to resolve entirely
	// (excluded from the paper's population, §4.1).
	ResolveErr string

	// ParentZone is the delegating zone (the TLD for our targets).
	ParentZone string
	// ParentNS is the delegation NS set as served by the parent;
	// ChildNS the apex NS set as served by the child.
	ParentNS []string
	ChildNS  []string

	// DS is the DS RRset at the parent with signatures.
	DS     []dnswire.RR
	DSSigs []dnswire.RR
	// DNSKEY is the child apex key set with signatures.
	DNSKEY     []dnswire.RR
	DNSKEYSigs []dnswire.RR

	// ChainValid is set when DS→DNSKEY→SOA validation succeeded;
	// ChainErr carries the failure otherwise. Only meaningful when both
	// DS and DNSKEY are non-empty.
	ChainValid bool
	ChainErr   string

	// PerNS holds the per-nameserver CDS observations (one entry per
	// (host, address) pair actually queried).
	PerNS []NSObservation
	// SampledNS is true when only a subset of this zone's nameserver
	// addresses was queried (the Cloudflare optimisation, §3).
	SampledNS bool

	// Signals holds the RFC 9615 probes, one per child NS host.
	Signals []SignalObservation

	// Queries is the number of DNS queries this zone's scan consumed
	// (Appendix D accounting), including retry attempts.
	Queries int64
	// Retries is how many of those queries were retry attempts after a
	// transient failure; GaveUp counts exchanges that exhausted every
	// attempt. Both stay zero when the resolver runs without a retry
	// policy.
	Retries int64
	GaveUp  int64
	// CacheHits, CacheMisses and Coalesced account this zone's use of
	// the resolver's shared cache and singleflight layer. All zero when
	// the scan runs without a cache.
	CacheHits   int64
	CacheMisses int64
	Coalesced   int64
}

// AllNSHosts returns the union of parent- and child-side NS hostnames.
func (z *ZoneObservation) AllNSHosts() []string {
	seen := make(map[string]bool)
	var out []string
	for _, set := range [][]string{z.ParentNS, z.ChildNS} {
		for _, h := range set {
			h = dnswire.CanonicalName(h)
			if !seen[h] {
				seen[h] = true
				out = append(out, h)
			}
		}
	}
	return out
}

// NSSetsDiffer reports whether the parent and child disagree about the
// NS set — the misconfiguration behind 33 of the signal-violation
// zones in §4.4.
func (z *ZoneObservation) NSSetsDiffer() bool {
	if len(z.ParentNS) == 0 || len(z.ChildNS) == 0 {
		return false
	}
	norm := func(in []string) map[string]bool {
		m := make(map[string]bool, len(in))
		for _, h := range in {
			m[dnswire.CanonicalName(h)] = true
		}
		return m
	}
	p, c := norm(z.ParentNS), norm(z.ChildNS)
	if len(p) != len(c) {
		return true
	}
	for h := range p {
		if !c[h] {
			return true
		}
	}
	return false
}

// IsSigned reports whether the child publishes a DNSKEY RRset.
func (z *ZoneObservation) IsSigned() bool { return len(z.DNSKEY) > 0 }

// HasDS reports whether the parent serves a DS RRset.
func (z *ZoneObservation) HasDS() bool { return len(z.DS) > 0 }
