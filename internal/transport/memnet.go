package transport

import (
	"context"
	"math/rand"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"dnssecboot/internal/dnswire"
)

// MemNetwork is a simulated internet: handlers are registered on
// individual addresses or whole prefixes (anycast, as Cloudflare
// operates), and exchanges are subject to configurable latency and
// loss. Every message is packed to wire format and re-parsed on
// delivery, so the full codec path is exercised and traffic volume can
// be accounted (the paper's Appendix D reasons about scan data volume).
type MemNetwork struct {
	mu       sync.RWMutex
	hosts    map[netip.Addr]Handler
	prefixes []prefixRoute

	// Latency is the simulated one-way delay applied twice per
	// exchange. Zero disables the wait entirely (tests run at full
	// speed); the delay only matters when a context deadline is short.
	Latency time.Duration
	// LossRate drops queries with this probability, surfacing as
	// ErrTimeout. Deterministic under the seeded rng (but, unlike the
	// fault profiles below, dependent on global draw order — prefer
	// SetDefaultFault for reproducible chaos under concurrency).
	LossRate float64

	// faults holds the scriptable fault-injection layer (per-address,
	// per-prefix and default profiles; see fault.go).
	faults faultState

	rngMu sync.Mutex
	rng   *rand.Rand

	queries  atomic.Int64
	bytesOut atomic.Int64 // query bytes
	bytesIn  atomic.Int64 // response bytes
}

type prefixRoute struct {
	prefix  netip.Prefix
	handler Handler
}

// NewMemNetwork returns an empty network. seed controls loss
// determinism.
func NewMemNetwork(seed int64) *MemNetwork {
	return &MemNetwork{
		hosts:  make(map[netip.Addr]Handler),
		rng:    rand.New(rand.NewSource(seed)),
		faults: faultState{seed: seed},
	}
}

// Register binds handler to a single IP address.
func (n *MemNetwork) Register(addr netip.Addr, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.hosts[addr] = h
}

// RegisterPrefix binds handler to every address within prefix; used to
// model anycast pools where "almost any IP address originated by them
// will respond to DNS queries" (paper §3 on Cloudflare).
func (n *MemNetwork) RegisterPrefix(p netip.Prefix, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.prefixes = append(n.prefixes, prefixRoute{prefix: p, handler: h})
}

// Unregister removes a single-address binding.
func (n *MemNetwork) Unregister(addr netip.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.hosts, addr)
}

func (n *MemNetwork) route(addr netip.Addr) (Handler, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if h, ok := n.hosts[addr]; ok {
		return h, true
	}
	for _, pr := range n.prefixes {
		if pr.prefix.Contains(addr) {
			return pr.handler, true
		}
	}
	return nil, false
}

func (n *MemNetwork) dropped() bool {
	if n.LossRate <= 0 {
		return false
	}
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return n.rng.Float64() < n.LossRate
}

// memScratch is the per-exchange reusable state: the packed query and
// response wire buffers and the server-side parsed query message. All
// of it stays inside one Exchange call — the parsed query is handed to
// the handler (handlers do not retain it, and any response aliasing of
// its question section is packed to wire before the scratch is pooled
// again), and the returned response is a fresh Unpack that copies every
// byte it keeps.
type memScratch struct {
	wire     []byte
	respWire []byte
	parsed   dnswire.Message
}

var memScratchPool = sync.Pool{New: func() any { return new(memScratch) }}

// Exchange implements Exchanger. The query is packed, routed, handled
// and the response packed with the client's advertised UDP size; a
// truncated response is transparently retried without the size limit,
// modelling TCP fallback.
func (n *MemNetwork) Exchange(ctx context.Context, server netip.AddrPort, query *dnswire.Message) (*dnswire.Message, error) {
	h, ok := n.route(server.Addr())
	if !ok {
		return nil, ErrUnreachable
	}
	plan := n.faults.plan(server.Addr(), query)
	if plan.down {
		return nil, ErrUnreachable
	}
	if plan.drop || n.dropped() {
		return nil, ErrTimeout
	}
	if err := n.delay(ctx, plan.extraLatency); err != nil {
		return nil, err
	}

	s := memScratchPool.Get().(*memScratch)
	defer memScratchPool.Put(s)
	wire, err := query.AppendPack(s.wire[:0])
	if err != nil {
		return nil, err
	}
	s.wire = wire
	n.queries.Add(1)
	n.bytesOut.Add(int64(len(wire)))

	if err := s.parsed.UnpackFrom(wire); err != nil {
		return nil, err
	}
	parsed := &s.parsed
	var resp *dnswire.Message
	if plan.servFail {
		resp = &dnswire.Message{ID: parsed.ID, Response: true, Rcode: dnswire.RcodeServFail, Question: parsed.Question}
	} else {
		resp, err = h.HandleDNS(ctx, server.Addr(), parsed)
		if err != nil {
			return nil, err
		}
	}
	if resp == nil {
		return nil, ErrTimeout // server silently dropped the query
	}

	limit := 512
	if e, ok := query.GetEDNS(); ok {
		limit = int(e.UDPSize)
	}
	if plan.truncate {
		limit = 1 // every response exceeds this → forced TC + TCP retry
	}
	respWire, err := resp.AppendPackTruncating(s.respWire[:0], limit)
	if err != nil {
		return nil, err
	}
	s.respWire = respWire
	out, err := dnswire.Unpack(respWire)
	if err != nil {
		return nil, err
	}
	if out.Truncated {
		// TCP retry: no size limit, second round trip.
		if plan.dropTCP || n.dropped() {
			return nil, ErrTimeout
		}
		if err := n.delay(ctx, plan.extraLatency); err != nil {
			return nil, err
		}
		n.queries.Add(1)
		n.bytesOut.Add(int64(len(wire)))
		respWire, err = resp.AppendPack(s.respWire[:0])
		if err != nil {
			return nil, err
		}
		s.respWire = respWire
		out, err = dnswire.Unpack(respWire)
		if err != nil {
			return nil, err
		}
	}
	n.bytesIn.Add(int64(len(respWire)))
	return out, nil
}

func (n *MemNetwork) delay(ctx context.Context, extra time.Duration) error {
	if n.Latency <= 0 && extra <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(2*n.Latency + extra)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ErrTimeout
	case <-t.C:
		return nil
	}
}

// Stats reports traffic counters since creation.
func (n *MemNetwork) Stats() (queries, bytesOut, bytesIn int64) {
	return n.queries.Load(), n.bytesOut.Load(), n.bytesIn.Load()
}

// ResetStats zeroes the traffic counters.
func (n *MemNetwork) ResetStats() {
	n.queries.Store(0)
	n.bytesOut.Store(0)
	n.bytesIn.Store(0)
}
