package transport

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"strings"
	"testing"
	"time"

	"dnssecboot/internal/dnswire"
)

// udpEcho runs a minimal DNS responder on loopback UDP for the
// client-side tests; behaviour selects the response shape.
func udpEcho(t *testing.T, behave func(q *dnswire.Message) *dnswire.Message) netip.AddrPort {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })
	go func() {
		buf := make([]byte, 65535)
		for {
			n, raddr, err := pc.ReadFrom(buf)
			if err != nil {
				return
			}
			q, err := dnswire.Unpack(buf[:n])
			if err != nil {
				continue
			}
			resp := behave(q)
			if resp == nil {
				continue // drop
			}
			wire, err := resp.Pack()
			if err != nil {
				continue
			}
			_, _ = pc.WriteTo(wire, raddr)
		}
	}()
	ap, _ := netip.ParseAddrPort(pc.LocalAddr().String())
	return ap
}

func TestClientExchangeUDP(t *testing.T) {
	addr := udpEcho(t, func(q *dnswire.Message) *dnswire.Message {
		return &dnswire.Message{ID: q.ID, Response: true, Question: q.Question}
	})
	c := &Client{Timeout: 2 * time.Second}
	q := dnswire.NewQuery(0, "example.com.", dnswire.TypeA)
	resp, err := c.Exchange(context.Background(), addr, q)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Response || resp.ID == 0 {
		t.Errorf("resp = %+v", resp)
	}
	// The client must have assigned a random nonzero ID.
	if q.ID == 0 {
		t.Error("query ID left zero")
	}
}

func TestClientIgnoresWrongID(t *testing.T) {
	first := true
	addr := udpEcho(t, func(q *dnswire.Message) *dnswire.Message {
		if first {
			first = false
			// A spoofed response with the wrong ID, then the real one.
			bad := &dnswire.Message{ID: q.ID + 1, Response: true, Question: q.Question}
			wire, _ := bad.Pack()
			_ = wire // the real send happens below via the normal path
			return &dnswire.Message{ID: q.ID + 1, Response: true, Question: q.Question}
		}
		return &dnswire.Message{ID: q.ID, Response: true, Question: q.Question}
	})
	c := &Client{Timeout: 1 * time.Second, Retries: 2}
	q := dnswire.NewQuery(0, "example.com.", dnswire.TypeA)
	// First attempt gets only a wrong-ID response (and then times out
	// listening); the retry succeeds.
	resp, err := c.Exchange(context.Background(), addr, q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != q.ID {
		t.Errorf("accepted response with wrong ID %d (query %d)", resp.ID, q.ID)
	}
}

func TestClientTimeout(t *testing.T) {
	addr := udpEcho(t, func(q *dnswire.Message) *dnswire.Message { return nil })
	c := &Client{Timeout: 200 * time.Millisecond, Retries: 1}
	q := dnswire.NewQuery(0, "example.com.", dnswire.TypeA)
	start := time.Now()
	_, err := c.Exchange(context.Background(), addr, q)
	if err == nil {
		t.Fatal("exchange with silent server succeeded")
	}
	if !isTimeout(err) {
		t.Errorf("error not a timeout: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("retries took %v", elapsed)
	}
}

func TestClientContextDeadline(t *testing.T) {
	addr := udpEcho(t, func(q *dnswire.Message) *dnswire.Message { return nil })
	c := &Client{Timeout: 10 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	q := dnswire.NewQuery(0, "example.com.", dnswire.TypeA)
	start := time.Now()
	if _, err := c.Exchange(ctx, addr, q); err == nil {
		t.Fatal("exchange beyond context deadline succeeded")
	}
	if time.Since(start) > 3*time.Second {
		t.Error("context deadline not respected")
	}
}

func TestTCPFraming(t *testing.T) {
	var buf bytes.Buffer
	msg := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	if err := WriteTCPMessage(&buf, msg); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(msg)+2 {
		t.Errorf("framed length = %d", buf.Len())
	}
	got, err := ReadTCPMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("framing round trip = %x", got)
	}
	// Oversized messages are rejected.
	if err := WriteTCPMessage(&buf, make([]byte, dnswire.MaxMessageSize+1)); err == nil {
		t.Error("oversized message framed")
	}
	// Truncated stream errors out.
	if _, err := ReadTCPMessage(strings.NewReader("\x00\x10short")); err == nil {
		t.Error("truncated stream read")
	}
	if _, err := ReadTCPMessage(strings.NewReader("")); err == nil {
		t.Error("empty stream read")
	}
}

func TestTCPFramingInto(t *testing.T) {
	var buf bytes.Buffer
	scratch := make([]byte, 0, 64)
	for _, msg := range [][]byte{{1}, {2, 3, 4}, bytes.Repeat([]byte{5}, 48)} {
		if err := WriteTCPMessage(&buf, msg); err != nil {
			t.Fatal(err)
		}
		got, err := ReadTCPMessageInto(&buf, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Errorf("round trip = %x, want %x", got, msg)
		}
		if cap(got) != cap(scratch) {
			t.Errorf("message of %d bytes did not reuse the %d-byte scratch buffer", len(msg), cap(scratch))
		}
	}
	// A message larger than the scratch capacity grows instead of failing.
	big := bytes.Repeat([]byte{6}, 200)
	if err := WriteTCPMessage(&buf, big); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTCPMessageInto(&buf, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Errorf("oversize round trip = %d bytes", len(got))
	}
}

func TestClientUnreachable(t *testing.T) {
	// A port nothing listens on: UDP "succeeds" to send but no reply
	// arrives (timeout) or ICMP gives a connection-refused read error;
	// either way the exchange must fail quickly.
	c := &Client{Timeout: 300 * time.Millisecond}
	q := dnswire.NewQuery(0, "example.com.", dnswire.TypeA)
	addr := netip.MustParseAddrPort("127.0.0.1:1")
	if _, err := c.Exchange(context.Background(), addr, q); err == nil {
		t.Fatal("exchange with dead port succeeded")
	}
}

// TestExchangeUDPAllocBudget pins the pooled read-buffer fix: the UDP
// read path used to allocate a fresh 65535-byte response buffer per
// datagram, so each exchange cost at least 64 KiB of garbage before any
// parsing happened. With the buffer pooled, a whole exchange (dial,
// send, receive, parse) must stay far below that floor. The threshold
// is deliberately loose — the dial path legitimately allocates a few
// KiB — but a reintroduced per-datagram buffer trips it immediately.
func TestExchangeUDPAllocBudget(t *testing.T) {
	addr := udpEcho(t, func(q *dnswire.Message) *dnswire.Message {
		return &dnswire.Message{ID: q.ID, Response: true, Question: q.Question}
	})
	c := &Client{Timeout: 2 * time.Second}
	ctx := context.Background()
	q := dnswire.NewQuery(0, "example.com.", dnswire.TypeA)
	// Warm the pools and the connection path.
	for i := 0; i < 3; i++ {
		if _, err := c.Exchange(ctx, addr, q); err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 50
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		if _, err := c.Exchange(ctx, addr, q); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)
	perExchange := (after.TotalAlloc - before.TotalAlloc) / rounds
	if perExchange > 48<<10 {
		t.Errorf("UDP exchange allocates %d B on average; the per-datagram read buffer is back", perExchange)
	}
}

// isTimeout used to compare err == ErrTimeout, so a wrapped timeout
// (fmt.Errorf("...: %w", ErrTimeout)) slipped past and was retried as
// if it were a hard failure. Wrapped sentinels must be recognized.
func TestIsTimeoutSeesWrappedSentinel(t *testing.T) {
	wrapped := fmt.Errorf("exchange attempt 2: %w", ErrTimeout)
	if !isTimeout(wrapped) {
		t.Errorf("isTimeout(%v) = false, want true", wrapped)
	}
	if isTimeout(fmt.Errorf("parse error")) {
		t.Error("isTimeout matched a non-timeout error")
	}
	if isTimeout(nil) {
		t.Error("isTimeout(nil) = true")
	}
}
