package transport

import (
	"context"
	"net/netip"
	"testing"

	"dnssecboot/internal/dnswire"
)

func echoHandler(rcode dnswire.Rcode) Handler {
	return HandlerFunc(func(_ context.Context, _ netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
		return &dnswire.Message{ID: q.ID, Response: true, Rcode: rcode, Question: q.Question}, nil
	})
}

func TestMemNetworkRouting(t *testing.T) {
	n := NewMemNetwork(1)
	addr := netip.MustParseAddr("192.0.2.1")
	n.Register(addr, echoHandler(dnswire.RcodeNoError))

	q := dnswire.NewQuery(7, "example.com.", dnswire.TypeA)
	resp, err := n.Exchange(context.Background(), netip.AddrPortFrom(addr, 53), q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 7 || !resp.Response {
		t.Errorf("resp = %+v", resp)
	}

	_, err = n.Exchange(context.Background(), netip.AddrPortFrom(netip.MustParseAddr("198.51.100.1"), 53), q)
	if err != ErrUnreachable {
		t.Errorf("unroutable exchange err = %v", err)
	}
}

func TestMemNetworkAnycastPrefix(t *testing.T) {
	n := NewMemNetwork(1)
	n.RegisterPrefix(netip.MustParsePrefix("198.51.100.0/24"), echoHandler(dnswire.RcodeNoError))
	q := dnswire.NewQuery(1, "x.", dnswire.TypeA)
	for _, ip := range []string{"198.51.100.1", "198.51.100.200", "198.51.100.77"} {
		if _, err := n.Exchange(context.Background(), netip.AddrPortFrom(netip.MustParseAddr(ip), 53), q); err != nil {
			t.Errorf("anycast %s: %v", ip, err)
		}
	}
	if _, err := n.Exchange(context.Background(), netip.AddrPortFrom(netip.MustParseAddr("198.51.101.1"), 53), q); err != ErrUnreachable {
		t.Errorf("out-of-prefix err = %v", err)
	}
	// Single-host registration takes precedence over the prefix.
	special := netip.MustParseAddr("198.51.100.50")
	n.Register(special, echoHandler(dnswire.RcodeRefused))
	resp, err := n.Exchange(context.Background(), netip.AddrPortFrom(special, 53), q)
	if err != nil || resp.Rcode != dnswire.RcodeRefused {
		t.Errorf("specific host did not win: %v %v", resp, err)
	}
}

func TestMemNetworkLoss(t *testing.T) {
	n := NewMemNetwork(42)
	n.LossRate = 1.0
	addr := netip.MustParseAddr("192.0.2.1")
	n.Register(addr, echoHandler(dnswire.RcodeNoError))
	q := dnswire.NewQuery(1, "x.", dnswire.TypeA)
	if _, err := n.Exchange(context.Background(), netip.AddrPortFrom(addr, 53), q); err != ErrTimeout {
		t.Errorf("loss=1.0 err = %v", err)
	}
}

func TestMemNetworkNilResponseIsTimeout(t *testing.T) {
	n := NewMemNetwork(1)
	addr := netip.MustParseAddr("192.0.2.1")
	n.Register(addr, HandlerFunc(func(context.Context, netip.Addr, *dnswire.Message) (*dnswire.Message, error) {
		return nil, nil
	}))
	q := dnswire.NewQuery(1, "x.", dnswire.TypeA)
	if _, err := n.Exchange(context.Background(), netip.AddrPortFrom(addr, 53), q); err != ErrTimeout {
		t.Errorf("dropped query err = %v", err)
	}
}

func TestMemNetworkTruncationRetry(t *testing.T) {
	n := NewMemNetwork(1)
	addr := netip.MustParseAddr("192.0.2.1")
	n.Register(addr, HandlerFunc(func(_ context.Context, _ netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
		m := &dnswire.Message{ID: q.ID, Response: true, Question: q.Question}
		for i := 0; i < 30; i++ {
			m.Answer = append(m.Answer, dnswire.RR{Name: q.Question[0].Name, Class: dnswire.ClassIN, TTL: 1,
				Data: &dnswire.TXT{Strings: []string{"padding padding padding padding padding"}}})
		}
		return m, nil
	}))
	q := dnswire.NewQuery(1, "big.test.", dnswire.TypeTXT) // no EDNS → 512-byte UDP
	resp, err := n.Exchange(context.Background(), netip.AddrPortFrom(addr, 53), q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Truncated || len(resp.Answer) != 30 {
		t.Errorf("tc=%v answers=%d", resp.Truncated, len(resp.Answer))
	}
	queries, _, _ := n.Stats()
	if queries != 2 {
		t.Errorf("query count = %d, want 2 (UDP + TCP retry)", queries)
	}
}

func TestMemNetworkStats(t *testing.T) {
	n := NewMemNetwork(1)
	addr := netip.MustParseAddr("192.0.2.1")
	n.Register(addr, echoHandler(dnswire.RcodeNoError))
	q := dnswire.NewQuery(1, "example.com.", dnswire.TypeA)
	for i := 0; i < 5; i++ {
		if _, err := n.Exchange(context.Background(), netip.AddrPortFrom(addr, 53), q); err != nil {
			t.Fatal(err)
		}
	}
	queries, out, in := n.Stats()
	if queries != 5 || out <= 0 || in <= 0 {
		t.Errorf("stats = %d %d %d", queries, out, in)
	}
	n.ResetStats()
	queries, out, in = n.Stats()
	if queries != 0 || out != 0 || in != 0 {
		t.Error("ResetStats did not zero counters")
	}
}
