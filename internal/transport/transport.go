// Package transport abstracts how DNS messages travel between the
// scanner/resolver and authoritative servers. Two implementations are
// provided: MemNetwork, a deterministic in-memory internet simulation
// (latency, loss, unreachable hosts, anycast prefixes) that still
// round-trips every message through the real wire encoder; and Client,
// a UDP client with TCP fallback for talking to real servers.
package transport

import (
	"context"
	"errors"
	"net/netip"

	"dnssecboot/internal/dnswire"
)

// Errors produced by transports. The scanner distinguishes timeouts
// (flaky or rate-limited servers) from hard unreachability.
var (
	ErrTimeout     = errors.New("transport: query timed out")
	ErrUnreachable = errors.New("transport: host unreachable")
)

// Exchanger sends one DNS query to a server address and returns its
// response.
type Exchanger interface {
	Exchange(ctx context.Context, server netip.AddrPort, query *dnswire.Message) (*dnswire.Message, error)
}

// Handler is the server side of the in-memory network: it receives a
// parsed query addressed to a particular local IP and produces the
// response message. Returning a nil message simulates a server that
// drops the query (the client sees a timeout).
type Handler interface {
	HandleDNS(ctx context.Context, local netip.Addr, query *dnswire.Message) (*dnswire.Message, error)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(ctx context.Context, local netip.Addr, query *dnswire.Message) (*dnswire.Message, error)

// HandleDNS implements Handler.
func (f HandlerFunc) HandleDNS(ctx context.Context, local netip.Addr, query *dnswire.Message) (*dnswire.Message, error) {
	return f(ctx, local, query)
}
