package transport

import (
	"encoding/binary"
	"hash/fnv"
	"net/netip"
	"sync"
	"time"

	"dnssecboot/internal/dnswire"
)

// FaultProfile describes misbehaviour injected in front of a registered
// handler. Profiles are evaluated deterministically: every decision is
// derived from the network's chaos seed, the server address, the query
// tuple (name, type) and a per-tuple sequence number, so a scan with a
// fixed seed sees the identical fault pattern on every run regardless
// of wall-clock timing. The zero value injects nothing.
type FaultProfile struct {
	// Loss drops each query attempt with this probability (the client
	// sees ErrTimeout).
	Loss float64
	// ExtraLatency is added to the network's base latency for matching
	// exchanges (both directions combined).
	ExtraLatency time.Duration
	// Down makes the address hard-unreachable (ErrUnreachable).
	Down bool
	// ServFail answers every query with SERVFAIL instead of consulting
	// the handler.
	ServFail bool
	// TruncateAlways truncates every UDP response regardless of size,
	// forcing the TCP fallback round-trip.
	TruncateAlways bool
	// FlakyEveryN makes the server respond only to every Nth repetition
	// of the same query tuple, dropping the rest — the "answers on the
	// second try" behaviour that motivates retry policies. Values < 2
	// disable the mode.
	FlakyEveryN int
}

// active reports whether the profile injects anything at all.
func (p FaultProfile) active() bool {
	return p.Loss > 0 || p.ExtraLatency > 0 || p.Down || p.ServFail || p.TruncateAlways || p.FlakyEveryN > 1
}

type prefixFault struct {
	prefix  netip.Prefix
	profile FaultProfile
}

// faultState holds the fault configuration and the per-tuple sequence
// counters that make decisions reproducible under concurrency: two
// scans issuing the same queries get the same drops even if goroutine
// interleaving differs, because each (addr, qname, qtype) tuple draws
// from its own deterministic sequence.
type faultState struct {
	mu       sync.Mutex
	seed     int64
	byAddr   map[netip.Addr]FaultProfile
	byPrefix []prefixFault
	def      *FaultProfile
	seq      map[uint64]uint64
	drops    int64
}

// SetChaosSeed sets the seed driving fault decisions. By default the
// network's construction seed is used.
func (n *MemNetwork) SetChaosSeed(seed int64) {
	n.faults.mu.Lock()
	defer n.faults.mu.Unlock()
	n.faults.seed = seed
}

// SetFault attaches a fault profile to a single address. A zero profile
// clears it.
func (n *MemNetwork) SetFault(addr netip.Addr, p FaultProfile) {
	n.faults.mu.Lock()
	defer n.faults.mu.Unlock()
	if n.faults.byAddr == nil {
		n.faults.byAddr = make(map[netip.Addr]FaultProfile)
	}
	if p.active() {
		n.faults.byAddr[addr] = p
	} else {
		delete(n.faults.byAddr, addr)
	}
}

// SetPrefixFault attaches a fault profile to every address in prefix
// (most recent registration wins among overlapping prefixes; a
// per-address profile always takes precedence).
func (n *MemNetwork) SetPrefixFault(prefix netip.Prefix, p FaultProfile) {
	n.faults.mu.Lock()
	defer n.faults.mu.Unlock()
	n.faults.byPrefix = append([]prefixFault{{prefix, p}}, n.faults.byPrefix...)
}

// SetDefaultFault applies a profile to every address without a more
// specific one — uniform network weather. A zero profile clears it.
func (n *MemNetwork) SetDefaultFault(p FaultProfile) {
	n.faults.mu.Lock()
	defer n.faults.mu.Unlock()
	if p.active() {
		n.faults.def = &p
	} else {
		n.faults.def = nil
	}
}

// FaultFor returns the profile that applies to addr.
func (n *MemNetwork) FaultFor(addr netip.Addr) FaultProfile {
	n.faults.mu.Lock()
	defer n.faults.mu.Unlock()
	return n.faults.lookupLocked(addr)
}

// InjectedDrops reports how many exchanges the fault layer has dropped
// (loss and flaky modes) since creation.
func (n *MemNetwork) InjectedDrops() int64 {
	n.faults.mu.Lock()
	defer n.faults.mu.Unlock()
	return n.faults.drops
}

func (f *faultState) lookupLocked(addr netip.Addr) FaultProfile {
	if p, ok := f.byAddr[addr]; ok {
		return p
	}
	for _, pf := range f.byPrefix {
		if pf.prefix.Contains(addr) {
			return pf.profile
		}
	}
	if f.def != nil {
		return *f.def
	}
	return FaultProfile{}
}

// tupleKey hashes the (addr, qname, qtype) query tuple.
func tupleKey(addr netip.Addr, q *dnswire.Message) uint64 {
	h := fnv.New64a()
	b, _ := addr.MarshalBinary()
	h.Write(b)
	if len(q.Question) > 0 {
		h.Write([]byte(dnswire.CanonicalName(q.Question[0].Name)))
		var t [2]byte
		binary.BigEndian.PutUint16(t[:], uint16(q.Question[0].Type))
		h.Write(t[:])
	}
	return h.Sum64()
}

// faultPlan is the resolved set of decisions for one exchange.
type faultPlan struct {
	down         bool
	drop         bool // drop the UDP leg
	dropTCP      bool // drop the TCP fallback leg
	servFail     bool
	truncate     bool
	extraLatency time.Duration
}

// plan resolves the profile for addr and draws this exchange's
// decisions from the deterministic sequence. Counters advance only for
// addresses with an active profile, so fault-free runs pay one mutex
// acquisition and nothing else.
func (f *faultState) plan(addr netip.Addr, q *dnswire.Message) faultPlan {
	f.mu.Lock()
	defer f.mu.Unlock()
	p := f.lookupLocked(addr)
	if !p.active() {
		return faultPlan{}
	}
	if p.Down {
		return faultPlan{down: true}
	}
	key := tupleKey(addr, q)
	if f.seq == nil {
		f.seq = make(map[uint64]uint64)
	}
	seq := f.seq[key]
	f.seq[key] = seq + 1

	plan := faultPlan{
		servFail:     p.ServFail,
		truncate:     p.TruncateAlways,
		extraLatency: p.ExtraLatency,
	}
	if p.FlakyEveryN > 1 && (seq+1)%uint64(p.FlakyEveryN) != 0 {
		plan.drop = true
	}
	if !plan.drop && p.Loss > 0 && roll(f.seed, key, seq, 'u') < p.Loss {
		plan.drop = true
	}
	if p.Loss > 0 && roll(f.seed, key, seq, 't') < p.Loss {
		plan.dropTCP = true
	}
	if plan.drop {
		f.drops++
	}
	return plan
}

// roll derives a uniform float64 in [0, 1) from the seed, tuple key,
// sequence number and leg tag.
func roll(seed int64, key, seq uint64, leg byte) float64 {
	h := fnv.New64a()
	var b [17]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(seed))
	binary.BigEndian.PutUint64(b[8:16], key)
	b[16] = leg
	h.Write(b[:])
	var s [8]byte
	binary.BigEndian.PutUint64(s[:], seq)
	h.Write(s[:])
	// FNV alone avalanches trailing bytes poorly (sequential seq values
	// barely move the high bits); finish with a splitmix64-style mix.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
