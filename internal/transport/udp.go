package transport

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"os"
	"sync"
	"time"

	"dnssecboot/internal/dnswire"
)

// udpReadBufs pools the 64 KiB datagram read buffers (the idiom the
// server's UDP workers use with per-worker scratch). dnswire.Unpack
// copies every byte it keeps, so a pooled buffer can be returned as
// soon as the exchange ends without aliasing the parsed response.
var udpReadBufs = sync.Pool{
	New: func() any {
		b := make([]byte, 65535)
		return &b
	},
}

// queryWireBufs pools the packed-query scratch used by Exchange.
var queryWireBufs = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// Client is an Exchanger speaking real UDP with automatic TCP fallback
// on truncation (RFC 7766). It verifies response IDs and re-sends on
// timeout up to Retries times.
type Client struct {
	// Timeout bounds each individual network attempt. Zero means 3s.
	Timeout time.Duration
	// Retries is the number of additional UDP attempts after the first.
	Retries int
	// Dialer optionally overrides connection establishment (tests).
	Dialer net.Dialer
}

func (c *Client) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 3 * time.Second
	}
	return c.Timeout
}

// Exchange implements Exchanger over the real network.
func (c *Client) Exchange(ctx context.Context, server netip.AddrPort, query *dnswire.Message) (*dnswire.Message, error) {
	if query.ID == 0 {
		var b [2]byte
		if _, err := rand.Read(b[:]); err != nil {
			return nil, err
		}
		query.ID = binary.BigEndian.Uint16(b[:])
	}
	wp := queryWireBufs.Get().(*[]byte)
	defer queryWireBufs.Put(wp)
	wire, err := query.AppendPack((*wp)[:0])
	if err != nil {
		return nil, err
	}
	*wp = wire[:0] // keep grown storage pooled
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		resp, err := c.exchangeUDP(ctx, server, query.ID, wire)
		if err != nil {
			lastErr = err
			if isTimeout(err) {
				continue
			}
			return nil, err
		}
		if resp.Truncated {
			return c.exchangeTCP(ctx, server, query.ID, wire)
		}
		return resp, nil
	}
	if lastErr == nil {
		lastErr = ErrTimeout
	}
	return nil, lastErr
}

func (c *Client) exchangeUDP(ctx context.Context, server netip.AddrPort, id uint16, wire []byte) (*dnswire.Message, error) {
	dctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	conn, err := c.Dialer.DialContext(dctx, "udp", server.String())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	defer conn.Close()
	deadline := time.Now().Add(c.timeout())
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	_ = conn.SetDeadline(deadline)
	if _, err := conn.Write(wire); err != nil {
		return nil, err
	}
	bp := udpReadBufs.Get().(*[]byte)
	defer udpReadBufs.Put(bp)
	buf := *bp
	for {
		n, err := conn.Read(buf)
		if err != nil {
			if isTimeout(err) {
				return nil, ErrTimeout
			}
			return nil, err
		}
		resp, err := dnswire.Unpack(buf[:n])
		if err != nil {
			continue // garbage datagram; keep listening until deadline
		}
		if resp.ID != id {
			continue // stray response
		}
		return resp, nil
	}
}

func (c *Client) exchangeTCP(ctx context.Context, server netip.AddrPort, id uint16, wire []byte) (*dnswire.Message, error) {
	dctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	conn, err := c.Dialer.DialContext(dctx, "tcp", server.String())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	defer conn.Close()
	deadline := time.Now().Add(c.timeout())
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	_ = conn.SetDeadline(deadline)
	if err := WriteTCPMessage(conn, wire); err != nil {
		return nil, err
	}
	respWire, err := ReadTCPMessage(conn)
	if err != nil {
		return nil, err
	}
	resp, err := dnswire.Unpack(respWire)
	if err != nil {
		return nil, err
	}
	if resp.ID != id {
		return nil, fmt.Errorf("transport: TCP response ID %d != %d", resp.ID, id)
	}
	return resp, nil
}

// WriteTCPMessage writes one DNS message with the RFC 1035 §4.2.2
// two-octet length prefix.
func WriteTCPMessage(w io.Writer, wire []byte) error {
	if len(wire) > dnswire.MaxMessageSize {
		return fmt.Errorf("transport: message of %d bytes exceeds TCP limit", len(wire))
	}
	hdr := [2]byte{byte(len(wire) >> 8), byte(len(wire))}
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(wire)
	return err
}

// ReadTCPMessage reads one length-prefixed DNS message.
func ReadTCPMessage(r io.Reader) ([]byte, error) {
	return ReadTCPMessageInto(r, nil)
}

// ReadTCPMessageInto reads one length-prefixed DNS message into buf,
// reusing its storage when capacity allows and allocating otherwise.
// The returned slice aliases buf; callers that keep the message across
// reads must copy it. Serving and load-generation loops use this to
// stay allocation-free per message.
func ReadTCPMessageInto(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(hdr[0])<<8 | int(hdr[1])
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func isTimeout(err error) bool {
	if errors.Is(err, ErrTimeout) || os.IsTimeout(err) {
		return true
	}
	var ne net.Error
	if ok := asNetError(err, &ne); ok {
		return ne.Timeout()
	}
	return false
}

func asNetError(err error, target *net.Error) bool {
	for err != nil {
		if ne, ok := err.(net.Error); ok {
			*target = ne
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
