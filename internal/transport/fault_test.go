package transport

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"dnssecboot/internal/dnswire"
)

func faultQuery(name string) *dnswire.Message {
	return dnswire.NewQuery(1, name, dnswire.TypeA)
}

func TestFaultDown(t *testing.T) {
	n := NewMemNetwork(1)
	addr := netip.MustParseAddr("192.0.2.1")
	n.Register(addr, echoHandler(dnswire.RcodeNoError))
	n.SetFault(addr, FaultProfile{Down: true})
	if _, err := n.Exchange(context.Background(), netip.AddrPortFrom(addr, 53), faultQuery("x.")); err != ErrUnreachable {
		t.Fatalf("down server err = %v, want ErrUnreachable", err)
	}
	// Clearing the profile restores the server.
	n.SetFault(addr, FaultProfile{})
	if _, err := n.Exchange(context.Background(), netip.AddrPortFrom(addr, 53), faultQuery("x.")); err != nil {
		t.Fatalf("cleared profile err = %v", err)
	}
}

func TestFaultServFail(t *testing.T) {
	n := NewMemNetwork(1)
	addr := netip.MustParseAddr("192.0.2.1")
	n.Register(addr, echoHandler(dnswire.RcodeNoError))
	n.SetFault(addr, FaultProfile{ServFail: true})
	resp, err := n.Exchange(context.Background(), netip.AddrPortFrom(addr, 53), faultQuery("x."))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rcode != dnswire.RcodeServFail {
		t.Errorf("rcode = %s, want SERVFAIL", resp.Rcode)
	}
}

func TestFaultFlakyEveryN(t *testing.T) {
	n := NewMemNetwork(1)
	addr := netip.MustParseAddr("192.0.2.1")
	n.Register(addr, echoHandler(dnswire.RcodeNoError))
	n.SetFault(addr, FaultProfile{FlakyEveryN: 3})
	server := netip.AddrPortFrom(addr, 53)
	// Repeats of the same query tuple: attempts 1 and 2 drop, 3 answers.
	for i, wantErr := range []bool{true, true, false, true, true, false} {
		_, err := n.Exchange(context.Background(), server, faultQuery("flaky.test."))
		if wantErr && err != ErrTimeout {
			t.Fatalf("attempt %d: err = %v, want ErrTimeout", i+1, err)
		}
		if !wantErr && err != nil {
			t.Fatalf("attempt %d: err = %v, want success", i+1, err)
		}
	}
	// Distinct tuples keep independent sequences.
	if _, err := n.Exchange(context.Background(), server, faultQuery("other.test.")); err != ErrTimeout {
		t.Errorf("fresh tuple first attempt err = %v, want ErrTimeout", err)
	}
}

func TestFaultLossDeterministicAcrossNetworks(t *testing.T) {
	pattern := func(seed int64) []bool {
		n := NewMemNetwork(7)
		addr := netip.MustParseAddr("192.0.2.1")
		n.Register(addr, echoHandler(dnswire.RcodeNoError))
		n.SetChaosSeed(seed)
		n.SetFault(addr, FaultProfile{Loss: 0.5})
		var out []bool
		for i := 0; i < 64; i++ {
			_, err := n.Exchange(context.Background(), netip.AddrPortFrom(addr, 53), faultQuery("det.test."))
			out = append(out, err == ErrTimeout)
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	dropsA := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drop pattern diverged at query %d", i)
		}
		if a[i] {
			dropsA++
		}
	}
	if dropsA == 0 || dropsA == len(a) {
		t.Errorf("loss=0.5 dropped %d/%d — not injecting", dropsA, len(a))
	}
	if n := pattern(43); equalBools(a, n) {
		t.Error("different chaos seeds produced the identical drop pattern")
	}
}

func equalBools(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFaultTruncateAlwaysForcesTCP(t *testing.T) {
	n := NewMemNetwork(1)
	addr := netip.MustParseAddr("192.0.2.1")
	n.Register(addr, echoHandler(dnswire.RcodeNoError))
	n.SetFault(addr, FaultProfile{TruncateAlways: true})
	resp, err := n.Exchange(context.Background(), netip.AddrPortFrom(addr, 53), faultQuery("x."))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Truncated {
		t.Error("TCP retry still truncated")
	}
	if q, _, _ := n.Stats(); q != 2 {
		t.Errorf("queries = %d, want 2 (forced UDP truncation + TCP retry)", q)
	}
}

func TestFaultPrefixAndDefaultPrecedence(t *testing.T) {
	n := NewMemNetwork(1)
	inPrefix := netip.MustParseAddr("198.51.100.10")
	pinned := netip.MustParseAddr("198.51.100.20")
	elsewhere := netip.MustParseAddr("203.0.113.1")
	for _, a := range []netip.Addr{inPrefix, pinned, elsewhere} {
		n.Register(a, echoHandler(dnswire.RcodeNoError))
	}
	n.SetDefaultFault(FaultProfile{ServFail: true})
	n.SetPrefixFault(netip.MustParsePrefix("198.51.100.0/24"), FaultProfile{Down: true})
	n.SetFault(pinned, FaultProfile{FlakyEveryN: 2})

	if p := n.FaultFor(elsewhere); !p.ServFail {
		t.Errorf("default profile not applied: %+v", p)
	}
	if p := n.FaultFor(inPrefix); !p.Down {
		t.Errorf("prefix profile not applied: %+v", p)
	}
	if p := n.FaultFor(pinned); p.FlakyEveryN != 2 || p.Down {
		t.Errorf("address profile did not win over prefix: %+v", p)
	}
	// Clearing the default exposes unmatched addresses again.
	n.SetDefaultFault(FaultProfile{})
	if p := n.FaultFor(elsewhere); p.active() {
		t.Errorf("cleared default still active: %+v", p)
	}
}

func TestFaultExtraLatencyRespectsDeadline(t *testing.T) {
	n := NewMemNetwork(1)
	addr := netip.MustParseAddr("192.0.2.1")
	n.Register(addr, echoHandler(dnswire.RcodeNoError))
	n.SetFault(addr, FaultProfile{ExtraLatency: 200 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := n.Exchange(ctx, netip.AddrPortFrom(addr, 53), faultQuery("x.")); err != ErrTimeout {
		t.Errorf("slow server within short deadline: err = %v, want ErrTimeout", err)
	}
}

func TestFaultInjectedDropsCounter(t *testing.T) {
	n := NewMemNetwork(1)
	addr := netip.MustParseAddr("192.0.2.1")
	n.Register(addr, echoHandler(dnswire.RcodeNoError))
	n.SetFault(addr, FaultProfile{FlakyEveryN: 2})
	server := netip.AddrPortFrom(addr, 53)
	for i := 0; i < 4; i++ {
		_, _ = n.Exchange(context.Background(), server, faultQuery("x."))
	}
	if got := n.InjectedDrops(); got != 2 {
		t.Errorf("InjectedDrops = %d, want 2", got)
	}
}
