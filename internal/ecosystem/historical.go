package ecosystem

import "fmt"

// Historical population presets. §5 of the paper compares its 2025
// measurements against Chung et al.'s 2017 campaign: DNSSEC deployment
// grew from 0.6–1.0 % to 5.5 %, while validation failures fell from
// over 2 % to 0.2 %. ProfilesForYear interpolates between those anchor
// points so the adoption trend can be regenerated and scanned with the
// same pipeline.

// Era summarises one measurement epoch's population shares (fractions
// of all zones).
type Era struct {
	Year         int
	SecuredShare float64
	InvalidShare float64
	IslandShare  float64
	// CDSShare is the fraction of zones publishing CDS (RFC 7344 was
	// published in 2014; adoption starts near zero).
	CDSShare float64
	// SignalShare is the fraction publishing RFC 9615 signals (zero
	// before the RFC existed).
	SignalShare float64
}

// Anchor eras from the literature: Chung et al. 2017 (§5) and this
// paper's April-2025 campaign (§4).
var (
	Era2017 = Era{Year: 2017, SecuredShare: 0.008, InvalidShare: 0.021, IslandShare: 0.004, CDSShare: 0.0005, SignalShare: 0}
	Era2025 = Era{Year: 2025, SecuredShare: 0.055, InvalidShare: 0.002, IslandShare: 0.011, CDSShare: 0.037, SignalShare: 0.0043}
)

// EraForYear linearly interpolates between the anchors (clamping
// outside the range). Signal share stays zero before RFC 9615's 2024
// publication.
func EraForYear(year int) Era {
	lerp := func(a, b float64) float64 {
		t := float64(year-Era2017.Year) / float64(Era2025.Year-Era2017.Year)
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		return a + t*(b-a)
	}
	e := Era{
		Year:         year,
		SecuredShare: lerp(Era2017.SecuredShare, Era2025.SecuredShare),
		InvalidShare: lerp(Era2017.InvalidShare, Era2025.InvalidShare),
		IslandShare:  lerp(Era2017.IslandShare, Era2025.IslandShare),
		CDSShare:     lerp(Era2017.CDSShare, Era2025.CDSShare),
	}
	if year >= 2024 {
		e.SignalShare = lerp(0, Era2025.SignalShare)
	}
	return e
}

// ProfilesForEra builds a compact operator population realising the
// era's shares over the paper's total population size. It uses three
// generic operators (a large registrar-style host, a CDS-supporting
// automation-minded operator, and — from 2024 on — an AB operator), so
// the same scan/classify pipeline applies to every epoch.
func ProfilesForEra(e Era) []Profile {
	total := paperTotalZones
	secured := int(float64(total) * e.SecuredShare)
	invalid := int(float64(total) * e.InvalidShare)
	islands := int(float64(total) * e.IslandShare)
	cds := int(float64(total) * e.CDSShare)
	signal := int(float64(total) * e.SignalShare)

	if cds > secured+islands {
		cds = secured + islands
	}
	cdsSecured := min(cds, secured)
	cdsIslands := min(cds-cdsSecured, islands)
	if signal > cdsIslands {
		signal = cdsIslands
	}

	slugYear := e.Year % 100
	auto := Profile{
		Name: "AutomatedDNS", Slug: fmt.Sprintf("au%02d", slugYear),
		NSHosts: hostsFor("automated-dns.net", 2), HostsPerZone: 2,
		Total: cdsSecured + cdsIslands,
		Segments: []Segment{
			seg(cdsSecured, ZoneSpec{State: StateSecured, CDS: CDSMatch}),
			seg(cdsIslands-signal, ZoneSpec{State: StateIsland, CDS: CDSMatch}),
		},
	}
	if signal > 0 {
		auto.SignalOperator = true
		auto.Segments = append(auto.Segments,
			seg(signal, ZoneSpec{State: StateIsland, CDS: CDSMatch, Signal: true}))
	}
	generic := Profile{
		Name: "GenericDNS", Slug: fmt.Sprintf("gx%02d", slugYear),
		NSHosts: hostsFor("generic-hosting.net", 2), HostsPerZone: 2,
		Total: total - auto.Total,
		Segments: []Segment{
			seg(secured-cdsSecured, ZoneSpec{State: StateSecured}),
			seg(islands-cdsIslands, ZoneSpec{State: StateIsland}),
			seg(invalid, ZoneSpec{State: StateInvalid, ErrantDS: e.Year < 2020}),
		},
	}
	return []Profile{auto, generic}
}
