// Package ecosystem generates a deterministic synthetic Internet
// reproducing the population the paper measured: a signed root, signed
// TLD registries, the top-20 DNS operators of Table 1 with their
// DNSSEC-status mix, the CDS publishers of Table 2, the three
// Authenticated-Bootstrapping operators of Table 3 (Cloudflare, deSEC,
// Glauca Digital) complete with RFC 9615 signal zones, and every
// anomaly class §4 reports (errant DS, CDS in unsigned zones,
// CDS-delete islands, multi-operator inconsistencies, legacy servers
// that error on CDS queries, parking servers that fake zone cuts,
// corrupt and expired signal signatures).
//
// Everything is seeded: the same Config yields byte-identical zone
// content, and all counts scale by Config.ScaleDivisor while keeping
// each phenomenon present (counts round up to at least one).
package ecosystem

// State is a zone's ground-truth DNSSEC status.
//
// lint:exhaustive — switches over State must cover every constant.
type State int

// Zone states, matching the paper's §4.1 classification.
const (
	// StateUnsigned: no DNSKEY, no DS.
	StateUnsigned State = iota
	// StateSecured: signed, DS at parent, chain valid.
	StateSecured
	// StateInvalid: fails validation (expired signatures with DS, or
	// errant DS above an unsigned zone).
	StateInvalid
	// StateIsland: signed and internally valid but no DS at the parent.
	StateIsland
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateUnsigned:
		return "unsigned"
	case StateSecured:
		return "secured"
	case StateInvalid:
		return "invalid"
	case StateIsland:
		return "island"
	}
	return "?"
}

// CDSMode is the ground-truth CDS/CDNSKEY publication of a zone.
//
// lint:exhaustive — switches over CDSMode must cover every constant.
type CDSMode int

// CDS modes.
const (
	// CDSNone: no CDS records.
	CDSNone CDSMode = iota
	// CDSMatch: CDS matching the zone's KSK (the correct setup).
	CDSMatch
	// CDSDelete: the RFC 8078 §4 deletion request.
	CDSDelete
	// CDSOrphan: CDS pointing at a key not in the zone (§4.2's
	// "did not correspond with any DNSKEY").
	CDSOrphan
	// CDSBadSig: matching CDS whose RRSIG is corrupted (§4.2's "invalid
	// DNSSEC signatures over their CDS").
	CDSBadSig
)

// String names the mode.
func (m CDSMode) String() string {
	switch m {
	case CDSNone:
		return "none"
	case CDSMatch:
		return "match"
	case CDSDelete:
		return "delete"
	case CDSOrphan:
		return "orphan"
	case CDSBadSig:
		return "badsig"
	}
	return "?"
}

// SignalAnomaly marks an injected RFC 9615 signal-zone defect.
//
// lint:exhaustive — switches over SignalAnomaly must cover every constant.
type SignalAnomaly int

// Signal anomalies from §4.4.
const (
	// SigOK: no anomaly.
	SigOK SignalAnomaly = iota
	// SigMissingOneNS: signal records absent under one of the NSes.
	SigMissingOneNS
	// SigNSMismatch: the child's believed NS set differs from the
	// TLD's, and signals exist only under the child's view (the
	// Cloudflare synthesis gap).
	SigNSMismatch
	// SigZoneCut: a spurious zone cut inside the signal path (the
	// copacabana / Afternic parking case).
	SigZoneCut
	// SigBadSig: signal records present but with corrupted RRSIGs.
	SigBadSig
	// SigExpiredSig: signal records signed with expired signatures.
	SigExpiredSig
	// SigUnsignedZone: the signal zone carries no DNSSEC at all.
	SigUnsignedZone
)

// String names the anomaly.
func (a SignalAnomaly) String() string {
	switch a {
	case SigOK:
		return "ok"
	case SigMissingOneNS:
		return "missing-one-ns"
	case SigNSMismatch:
		return "ns-mismatch"
	case SigZoneCut:
		return "zone-cut"
	case SigBadSig:
		return "bad-sig"
	case SigExpiredSig:
		return "expired-sig"
	case SigUnsignedZone:
		return "unsigned-zone"
	}
	return "?"
}

// ZoneSpec fully determines one synthetic zone.
type ZoneSpec struct {
	State State
	// ErrantDS marks the unsigned-zone-with-DS variant of StateInvalid
	// (operators that "do not offer DNSSEC at all; the small percentage
	// … with invalid DNSSEC is due to errant DS records", §4.1).
	ErrantDS bool
	CDS      CDSMode
	// CDSInconsistent makes different NSes serve different CDS sets.
	CDSInconsistent bool
	// MultiOperator co-hosts the zone on the named second operator.
	MultiOperator string
	// Signal publishes RFC 9615 signalling records.
	Signal bool
	// SignalAnomaly selects an injected defect.
	SignalAnomaly SignalAnomaly
	// ParkingNS appends a typo nameserver resolving to a domain-parking
	// service (the zone-cut illusion).
	ParkingNS bool
}

// Segment is a batch of identical zones within an operator profile.
type Segment struct {
	// N is the unscaled (paper-level) zone count.
	N int
	// Spec describes every zone in the segment.
	Spec ZoneSpec
}

// Truth is the generator's ground-truth record for one zone, used by
// tests to check that the measurement pipeline rediscovers what was
// planted.
type Truth struct {
	Zone     string
	Operator string
	TLD      string
	Spec     ZoneSpec
}
