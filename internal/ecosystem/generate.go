package ecosystem

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"dnssecboot/internal/dnssec"
	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/server"
	"dnssecboot/internal/transport"
	"dnssecboot/internal/zone"
)

// Config controls generation.
type Config struct {
	// Seed drives every random choice; equal seeds give equal worlds.
	Seed int64
	// ScaleDivisor divides the paper's population counts. Zero means
	// 2000 (≈144 k zones). Non-zero counts never scale below one, so
	// every phenomenon stays represented at any scale.
	ScaleDivisor int
	// Now is the simulated wall-clock time used for signature windows.
	// Zero means 2025-04-15, the paper's measurement month.
	Now time.Time
	// Profiles overrides the operator population (default: Profiles()).
	Profiles []Profile
}

// Ecosystem is a generated synthetic Internet.
type Ecosystem struct {
	// Net is the simulated network; attach a resolver to it.
	Net *transport.MemNetwork
	// Roots are the root nameserver addresses (resolver hints).
	Roots []netip.AddrPort
	// TrustAnchor is the DS form of the root KSK.
	TrustAnchor []dnswire.RR
	// Targets is the scan list (registrable domains), shuffled
	// deterministically.
	Targets []string
	// Truth maps each target to its ground truth.
	Truth map[string]*Truth
	// Now is the simulated time (hand it to the scanner).
	Now time.Time
	// CloudflareSuffixes are the NS suffixes eligible for scan
	// sampling (§3).
	CloudflareSuffixes []string

	cfg          Config
	rng          *rand.Rand
	root         *zone.Zone
	rootSrv      *server.Server
	tlds         map[string]*tldInfra
	ops          map[string]*opInfra
	strayKey     *dnssec.Key // source of orphan/errant DS material
	opIndex      int
	variantCount int
}

type tldInfra struct {
	name string // e.g. "com"
	zone *zone.Zone
	srv  *server.Server
	addr netip.Addr
}

type opInfra struct {
	profile    Profile
	srv        *server.Server
	variantSrv *server.Server
	hosts      []string
	hostAddrs  map[string][]netip.Addr
	baseZones  map[string]*zone.Zone // registrable base -> zone
	// signalZones maps NS host -> its _signal zone (AB operators).
	signalZones map[string]*zone.Zone
	// corruption lists applied after the signal zones are signed.
	badSigOwners  []string
	expiredOwners []string
	variantHost   string
	counter       int
}

// tlds hosted by the synthetic registries. co.uk and com.bo are
// second-level registry zones created alongside uk and bo.
var tldList = []string{
	"com", "net", "org", "info", "biz", "xyz", "online", "shop", "top", "site",
	"ch", "li", "swiss", "whoswho", "se", "nu", "ee", "sk", "de", "nl", "eu",
	"uk", "bo", "vip", "gov", "io", "digital", "box",
}

var secondLevelRegistries = map[string]string{"co.uk": "uk", "com.bo": "bo"}

// defaultTLDWeights is the target-zone TLD mix for operators without
// their own bias.
var defaultTLDWeights = map[string]int{
	"com": 48, "net": 10, "org": 8, "info": 5, "xyz": 5, "online": 4,
	"shop": 4, "top": 4, "site": 3, "biz": 3, "de": 2, "co.uk": 2,
	"nl": 1, "se": 1,
}

// Generate builds the world.
func Generate(cfg Config) (*Ecosystem, error) {
	if cfg.ScaleDivisor <= 0 {
		cfg.ScaleDivisor = 2000
	}
	if cfg.Now.IsZero() {
		cfg.Now = time.Date(2025, 4, 15, 12, 0, 0, 0, time.UTC)
	}
	if cfg.Profiles == nil {
		cfg.Profiles = Profiles()
	}
	eco := &Ecosystem{
		Net:                transport.NewMemNetwork(cfg.Seed),
		Truth:              make(map[string]*Truth),
		Now:                cfg.Now,
		CloudflareSuffixes: []string{"ns.cloudflare.com."},
		cfg:                cfg,
		rng:                rand.New(rand.NewSource(cfg.Seed)),
		tlds:               make(map[string]*tldInfra),
		ops:                make(map[string]*opInfra),
	}
	stray, err := dnssec.GenerateKey(dnswire.AlgEd25519, dnswire.DNSKEYFlagZone|dnswire.DNSKEYFlagSEP, eco.rng)
	if err != nil {
		return nil, err
	}
	eco.strayKey = stray

	if err := eco.buildRoot(); err != nil {
		return nil, err
	}
	if err := eco.buildTLDs(); err != nil {
		return nil, err
	}
	if err := eco.buildParking(); err != nil {
		return nil, err
	}
	for _, p := range cfg.Profiles {
		if err := eco.buildOperator(p); err != nil {
			return nil, err
		}
	}
	for _, p := range cfg.Profiles {
		if err := eco.addTargets(p); err != nil {
			return nil, err
		}
	}
	if err := eco.finalize(); err != nil {
		return nil, err
	}
	eco.rng.Shuffle(len(eco.Targets), func(i, j int) {
		eco.Targets[i], eco.Targets[j] = eco.Targets[j], eco.Targets[i]
	})
	return eco, nil
}

// scaled divides a paper count by the configured divisor, rounding to
// nearest but never scaling a non-zero count to zero.
func (e *Ecosystem) scaled(n int) int {
	if n <= 0 {
		return 0
	}
	v := (n + e.cfg.ScaleDivisor/2) / e.cfg.ScaleDivisor
	if v < 1 {
		return 1
	}
	return v
}

const signCfgAlg = dnswire.AlgEd25519

func (e *Ecosystem) signCfg() zone.SignConfig {
	return zone.SignConfig{Now: e.Now, Algorithm: signCfgAlg}
}

func (e *Ecosystem) buildRoot() error {
	rootAddr := netip.MustParseAddr("198.41.0.4")
	e.root = zone.New(".")
	e.root.SetBasics("a.root-servers.net.", []string{"a.root-servers.net."}, 2025041500)
	e.root.MustAdd(dnswire.RR{Name: "root-servers.net.", TTL: 518400, Data: dnswire.NewNS("a.root-servers.net.")})
	e.root.MustAdd(dnswire.RR{Name: "a.root-servers.net.", TTL: 518400, Data: &dnswire.A{Addr: rootAddr}})
	if err := e.root.GenerateKeys(e.signCfg(), e.rng); err != nil {
		return err
	}
	e.rootSrv = server.New(e.cfg.Seed)
	e.rootSrv.AddZone(e.root)
	e.Net.Register(rootAddr, e.rootSrv)
	e.Roots = []netip.AddrPort{netip.AddrPortFrom(rootAddr, 53)}
	return nil
}

func (e *Ecosystem) buildTLDs() error {
	for i, name := range tldList {
		origin := name + "."
		addr := netip.AddrFrom4([4]byte{172, 16, byte(i + 1), 1})
		z := zone.New(origin)
		ns1 := "ns1.nic." + origin
		z.SetBasics(ns1, []string{ns1}, 2025041500)
		z.MustAdd(dnswire.RR{Name: ns1, TTL: 172800, Data: &dnswire.A{Addr: addr}})
		if err := z.GenerateKeys(e.signCfg(), e.rng); err != nil {
			return err
		}
		srv := server.New(e.cfg.Seed + int64(i))
		srv.AddZone(z)
		e.Net.Register(addr, srv)
		e.tlds[name] = &tldInfra{name: name, zone: z, srv: srv, addr: addr}

		// Delegate from the root with glue and (later) DS.
		e.root.MustAdd(dnswire.RR{Name: origin, TTL: 172800, Data: dnswire.NewNS(ns1)})
		e.root.MustAdd(dnswire.RR{Name: ns1, TTL: 172800, Data: &dnswire.A{Addr: addr}})
		if err := e.addDSTo(e.root, origin, z); err != nil {
			return err
		}
	}
	// Second-level registries (co.uk under uk, com.bo under bo) hosted
	// on the parent registry's server. Iterate in sorted order: ranging
	// the map directly would consume e.rng in per-process-random order,
	// giving the registries different keys from run to run and breaking
	// the seed-determines-world guarantee.
	subs := make([]string, 0, len(secondLevelRegistries))
	for sub := range secondLevelRegistries {
		subs = append(subs, sub)
	}
	sort.Strings(subs)
	for _, sub := range subs {
		parent := secondLevelRegistries[sub]
		origin := sub + "."
		p := e.tlds[parent]
		z := zone.New(origin)
		ns1 := "ns1.nic." + parent + "."
		z.SetBasics(ns1, []string{ns1}, 2025041500)
		if err := z.GenerateKeys(e.signCfg(), e.rng); err != nil {
			return err
		}
		p.srv.AddZone(z)
		p.zone.MustAdd(dnswire.RR{Name: origin, TTL: 172800, Data: dnswire.NewNS(ns1)})
		if err := e.addDSTo(p.zone, origin, z); err != nil {
			return err
		}
		e.tlds[sub] = &tldInfra{name: sub, zone: z, srv: p.srv, addr: p.addr}
	}
	return nil
}

// addDSTo computes the child's DS from its KSK and inserts it into the
// parent zone.
func (e *Ecosystem) addDSTo(parent *zone.Zone, child string, childZone *zone.Zone) error {
	if len(childZone.Keys) == 0 {
		return fmt.Errorf("ecosystem: %s has no keys", child)
	}
	ksk := childZone.Keys[0]
	ds, err := dnssec.DSFromKey(child, ksk.DNSKEY(), dnswire.DigestSHA256)
	if err != nil {
		return err
	}
	return parent.Add(dnswire.RR{Name: child, TTL: 86400, Data: ds})
}

// buildParking installs the Afternic-style parking service: desc.io
// (the famous typo target) and namefind.com resolve to a handler that
// answers every query identically, faking zone cuts (§4.4).
func (e *Ecosystem) buildParking() error {
	parkAddr := netip.MustParseAddr("203.0.113.53")
	park := &server.Parking{
		NSHosts: []string{"ns1.namefind.com.", "ns2.namefind.com."},
		Addr:    parkAddr,
	}
	e.Net.Register(parkAddr, park)
	for base, tld := range map[string]string{"desc.io.": "io", "namefind.com.": "com"} {
		tz := e.tlds[tld].zone
		for _, h := range park.NSHosts {
			tz.MustAdd(dnswire.RR{Name: base, TTL: 172800, Data: dnswire.NewNS(h)})
		}
	}
	// Glue for the parking NS hostnames in com.
	for _, h := range []string{"ns1.namefind.com.", "ns2.namefind.com."} {
		e.tlds["com"].zone.MustAdd(dnswire.RR{Name: h, TTL: 172800, Data: &dnswire.A{Addr: parkAddr}})
	}
	return nil
}

func (e *Ecosystem) buildOperator(p Profile) error {
	idx := e.opIndex
	e.opIndex++
	op := &opInfra{
		profile:     p,
		srv:         server.New(e.cfg.Seed + 1000 + int64(idx)),
		hosts:       make([]string, len(p.NSHosts)),
		hostAddrs:   make(map[string][]netip.Addr),
		baseZones:   make(map[string]*zone.Zone),
		signalZones: make(map[string]*zone.Zone),
	}
	op.srv.Behavior = p.Behavior
	for i, h := range p.NSHosts {
		op.hosts[i] = dnswire.CanonicalName(h)
	}

	// Address plan: each operator owns 10.<idx/250+1>.<idx%250>.0/24;
	// Cloudflare-style operators use an anycast prefix instead.
	addrsPerHost := p.AddrsPerHost
	if addrsPerHost <= 0 {
		addrsPerHost = 1
	}
	if p.Anycast {
		v4 := netip.MustParsePrefix("104.16.0.0/16")
		v6 := netip.MustParsePrefix("2001:db8:c10f::/48")
		e.Net.RegisterPrefix(v4, op.srv)
		e.Net.RegisterPrefix(v6, op.srv)
		for j, h := range op.hosts {
			for k := 0; k < addrsPerHost; k++ {
				op.hostAddrs[h] = append(op.hostAddrs[h],
					netip.AddrFrom4([4]byte{104, 16, byte(j + 1), byte(k + 1)}))
			}
			if p.V6 {
				for k := 0; k < addrsPerHost; k++ {
					a16 := [16]byte{0x20, 0x01, 0x0d, 0xb8, 0xc1, 0x0f, 0, byte(j + 1)}
					a16[15] = byte(k + 1)
					op.hostAddrs[h] = append(op.hostAddrs[h], netip.AddrFrom16(a16))
				}
			}
		}
	} else {
		for j, h := range op.hosts {
			a := netip.AddrFrom4([4]byte{10, byte(idx/250 + 1), byte(idx % 250), byte(j + 1)})
			op.hostAddrs[h] = []netip.Addr{a}
			e.Net.Register(a, op.srv)
		}
	}

	// Base zones: one per registrable base among the NS hostnames,
	// holding the hosts' address records, signed and secured.
	for _, h := range op.hosts {
		base := baseOf(h)
		if op.baseZones[base] != nil {
			continue
		}
		bz := zone.New(base)
		bz.SetBasics(op.hosts[0], op.hosts[:min(2, len(op.hosts))], 2025041500)
		if err := bz.GenerateKeys(e.signCfg(), e.rng); err != nil {
			return err
		}
		op.baseZones[base] = bz
		op.srv.AddZone(bz)
		// Register in its TLD with glue for in-zone NS hosts.
		tld := tldOf(base)
		ti, ok := e.tlds[tld]
		if !ok {
			return fmt.Errorf("ecosystem: no registry for TLD %q (base %s)", tld, base)
		}
		for _, nh := range op.hosts[:min(2, len(op.hosts))] {
			ti.zone.MustAdd(dnswire.RR{Name: base, TTL: 172800, Data: dnswire.NewNS(nh)})
			if dnswire.IsSubdomain(nh, base) {
				for _, a := range op.hostAddrs[nh] {
					ti.zone.MustAdd(dnswire.RR{Name: nh, TTL: 172800, Data: addrRR(a)})
				}
			}
		}
		if err := e.addDSTo(ti.zone, base, bz); err != nil {
			return err
		}
	}
	// Host address records inside their base zones.
	for _, h := range op.hosts {
		bz := op.baseZones[baseOf(h)]
		for _, a := range op.hostAddrs[h] {
			bz.MustAdd(dnswire.RR{Name: h, TTL: 3600, Data: addrRR(a)})
		}
	}

	// Signal zones for AB operators: one secure zone per NS host,
	// delegated (with DS) from the host's base zone.
	if p.SignalOperator {
		for _, h := range op.hosts {
			sz := zone.New(zone.SignalZoneName(h))
			sz.SetBasics(op.hosts[0], op.hosts[:min(2, len(op.hosts))], 2025041500)
			if err := sz.GenerateKeys(e.signCfg(), e.rng); err != nil {
				return err
			}
			op.signalZones[h] = sz
			op.srv.AddZone(sz)
			bz := op.baseZones[baseOf(h)]
			for _, nh := range op.hosts[:min(2, len(op.hosts))] {
				bz.MustAdd(dnswire.RR{Name: sz.Origin, TTL: 3600, Data: dnswire.NewNS(nh)})
			}
			if err := e.addDSTo(bz, sz.Origin, sz); err != nil {
				return err
			}
		}
	}
	e.ops[p.Name] = op
	return nil
}

func addrRR(a netip.Addr) dnswire.RData {
	if a.Is4() {
		return &dnswire.A{Addr: a}
	}
	return &dnswire.AAAA{Addr: a}
}

func tldOf(base string) string {
	labels := dnswire.SplitLabels(base)
	return labels[len(labels)-1]
}

// ensureVariant creates the operator's variant server and extra NS
// host, used by single-operator CDS inconsistencies.
func (e *Ecosystem) ensureVariant(op *opInfra) error {
	if op.variantSrv != nil {
		return nil
	}
	e.variantCount++
	op.variantSrv = server.New(e.cfg.Seed + 5000 + int64(e.variantCount))
	base := baseOf(op.hosts[0])
	op.variantHost = "nsx." + base
	a := netip.AddrFrom4([4]byte{10, 200, byte(e.variantCount % 250), byte(e.variantCount / 250)})
	op.hostAddrs[op.variantHost] = []netip.Addr{a}
	e.Net.Register(a, op.variantSrv)
	op.baseZones[base].MustAdd(dnswire.RR{Name: op.variantHost, TTL: 3600, Data: &dnswire.A{Addr: a}})
	return nil
}

func (e *Ecosystem) addTargets(p Profile) error {
	op := e.ops[p.Name]
	segs := append([]Segment(nil), p.Segments...)
	var explicit int
	for _, s := range segs {
		explicit += s.N
	}
	if rest := p.Total - explicit; rest > 0 {
		segs = append(segs, seg(rest, ZoneSpec{State: StateUnsigned}))
	}
	for _, s := range segs {
		n := e.scaled(s.N)
		for i := 0; i < n; i++ {
			if err := e.addZone(op, s.Spec); err != nil {
				return err
			}
		}
	}
	return nil
}

// pickTLD deterministically selects a TLD per the operator's weights.
func (e *Ecosystem) pickTLD(p Profile, counter int) string {
	w := p.TLDWeights
	if w == nil {
		w = defaultTLDWeights
	}
	keys := make([]string, 0, len(w))
	total := 0
	for k, v := range w {
		keys = append(keys, k)
		total += v
	}
	sort.Strings(keys)
	pick := counter % total
	for _, k := range keys {
		pick -= w[k]
		if pick < 0 {
			return k
		}
	}
	return keys[0]
}

func (e *Ecosystem) addZone(op *opInfra, spec ZoneSpec) error {
	p := op.profile
	idx := op.counter
	op.counter++

	tld := e.pickTLD(p, idx)
	if spec.ParkingNS {
		tld = "com.bo"
	}
	name := fmt.Sprintf("%s-z%06d.%s.", p.Slug, idx, tld)
	ti := e.tlds[tld]

	// NS host selection.
	h0 := op.hosts[(2*idx)%len(op.hosts)]
	h1 := op.hosts[(2*idx+1)%len(op.hosts)]
	parentNS := []string{h0, h1}
	childNS := parentNS
	var partner *opInfra
	switch {
	case spec.ParkingNS:
		parentNS = []string{h0, "ns1.desc.io."}
		childNS = parentNS
	case spec.MultiOperator != "":
		partner = e.ops[spec.MultiOperator]
		if partner == nil {
			return fmt.Errorf("ecosystem: unknown partner operator %q", spec.MultiOperator)
		}
		parentNS = []string{h0, partner.hosts[0]}
		childNS = parentNS
	case spec.CDSInconsistent:
		if err := e.ensureVariant(op); err != nil {
			return err
		}
		parentNS = []string{h0, op.variantHost}
		childNS = parentNS
	case spec.SignalAnomaly == SigNSMismatch:
		h2 := op.hosts[(2*idx+2)%len(op.hosts)]
		childNS = []string{h0, h2} // differs from the TLD's view
	}

	// Delegation in the registry.
	for _, nh := range parentNS {
		ti.zone.MustAdd(dnswire.RR{Name: name, TTL: 86400, Data: dnswire.NewNS(nh)})
	}

	// The child zone itself: a realistic small web presence.
	z := zone.New(name)
	z.SetBasics(childNS[0], childNS, uint32(2025041500+idx%1000))
	z.MustAdd(dnswire.RR{Name: name, TTL: 3600, Data: &dnswire.A{Addr: netip.MustParseAddr("203.0.113.10")}})
	z.MustAdd(dnswire.RR{Name: "www." + name, TTL: 3600, Data: &dnswire.A{Addr: netip.MustParseAddr("203.0.113.11")}})
	if idx%3 == 0 {
		z.MustAdd(dnswire.RR{Name: name, TTL: 3600, Data: &dnswire.MX{Preference: 10, Host: "mail." + name}})
		z.MustAdd(dnswire.RR{Name: "mail." + name, TTL: 3600, Data: &dnswire.A{Addr: netip.MustParseAddr("203.0.113.25")}})
		z.MustAdd(dnswire.RR{Name: name, TTL: 3600, Data: &dnswire.TXT{Strings: []string{"v=spf1 mx -all"}}})
	}
	if idx%7 == 0 {
		z.MustAdd(dnswire.RR{Name: name, TTL: 3600, Data: &dnswire.CAA{Flags: 0, Tag: "issue", Value: "ca.example.net"}})
	}

	signed := spec.State == StateSecured || spec.State == StateIsland ||
		(spec.State == StateInvalid && !spec.ErrantDS)
	if signed {
		if err := z.GenerateKeys(e.signCfg(), e.rng); err != nil {
			return err
		}
		if err := e.installCDS(z, spec.CDS, p); err != nil {
			return err
		}
		sc := e.signCfg()
		sc.Expired = spec.State == StateInvalid
		if err := z.Sign(sc); err != nil {
			return err
		}
		if spec.CDS == CDSBadSig {
			corruptSigsAt(z, name, dnswire.TypeCDS)
			corruptSigsAt(z, name, dnswire.TypeCDNSKEY)
		}
	} else if spec.CDS != CDSNone {
		// CDS in an unsigned zone (§4.2, Canal Dominios).
		if err := e.installCDS(z, spec.CDS, p); err != nil {
			return err
		}
	}

	// DS at the parent.
	switch {
	case spec.State == StateSecured, spec.State == StateInvalid && !spec.ErrantDS:
		if err := e.addDSTo(ti.zone, name, z); err != nil {
			return err
		}
	case spec.ErrantDS:
		ds, err := dnssec.DSFromKey(name, e.strayKey.DNSKEY(), dnswire.DigestSHA256)
		if err != nil {
			return err
		}
		ti.zone.MustAdd(dnswire.RR{Name: name, TTL: 86400, Data: ds})
	}

	op.srv.AddZone(z)

	// Inconsistent-CDS variants served by the second operator or the
	// variant server.
	if spec.CDSInconsistent {
		v := z.Clone()
		v.Keys = nil
		if err := v.GenerateKeys(e.signCfg(), e.rng); err != nil {
			return err
		}
		v.RemoveSet(name, dnswire.TypeCDS)
		v.RemoveSet(name, dnswire.TypeCDNSKEY)
		if err := v.PublishCDS(dnswire.DigestSHA256); err != nil {
			return err
		}
		sc := e.signCfg()
		if err := v.Sign(sc); err != nil {
			return err
		}
		if partner != nil {
			partner.srv.AddZone(v)
		} else {
			op.variantSrv.AddZone(v)
		}
	} else if partner != nil {
		// Consistent multi-operator zone: the partner serves an
		// identical copy.
		partner.srv.AddZone(z)
	}

	// RFC 9615 signal records.
	if spec.Signal && p.SignalOperator {
		if err := e.publishSignals(op, z, spec, childNS); err != nil {
			return err
		}
	}

	e.Targets = append(e.Targets, name)
	e.Truth[name] = &Truth{Zone: name, Operator: p.Name, TLD: tld, Spec: spec}
	return nil
}

// installCDS publishes the zone's CDS/CDNSKEY per the spec.
func (e *Ecosystem) installCDS(z *zone.Zone, mode CDSMode, p Profile) error {
	switch mode {
	case CDSNone:
		return nil
	case CDSMatch, CDSBadSig:
		digests := []uint8{dnswire.DigestSHA256}
		if p.Name == "deSEC" {
			// deSEC publishes SHA-256 and SHA-384 CDS plus CDNSKEY
			// (§4.4's signal-zone size accounting relies on this).
			digests = append(digests, dnswire.DigestSHA384)
		}
		if len(z.Keys) == 0 {
			return fmt.Errorf("ecosystem: CDSMatch on keyless zone %s", z.Origin)
		}
		return z.PublishCDS(digests...)
	case CDSDelete:
		z.PublishDeleteCDS()
		return nil
	case CDSOrphan:
		cds, err := dnssec.CDSFromKey(z.Origin, e.strayKey.DNSKEY(), dnswire.DigestSHA256)
		if err != nil {
			return err
		}
		z.RemoveSet(z.Origin, dnswire.TypeCDS)
		z.RemoveSet(z.Origin, dnswire.TypeCDNSKEY)
		z.MustAdd(dnswire.RR{Name: z.Origin, Class: dnswire.ClassIN, TTL: 3600, Data: cds})
		z.MustAdd(dnswire.RR{Name: z.Origin, Class: dnswire.ClassIN, TTL: 3600,
			Data: &dnswire.CDNSKEY{DNSKEY: *e.strayKey.DNSKEY()}})
		return nil
	}
	return fmt.Errorf("ecosystem: unhandled CDS mode %v", mode)
}

// publishSignals copies the zone's CDS/CDNSKEY content into the signal
// zones of the operator's nameservers, honouring the injected anomaly.
func (e *Ecosystem) publishSignals(op *opInfra, z *zone.Zone, spec ZoneSpec, childNS []string) error {
	content := append(z.RRset(z.Origin, dnswire.TypeCDS), z.RRset(z.Origin, dnswire.TypeCDNSKEY)...)
	if len(content) == 0 {
		// Zones without in-zone CDS (e.g. the unsigned-with-signal
		// population) still show stray signal records in the wild.
		cds, err := dnssec.CDSFromKey(z.Origin, e.strayKey.DNSKEY(), dnswire.DigestSHA256)
		if err != nil {
			return err
		}
		content = []dnswire.RR{{Name: z.Origin, Class: dnswire.ClassIN, TTL: 3600, Data: cds}}
	}
	if dnssec.IsDeleteSet(content) && !op.profile.SignalDeletes {
		return nil // deSEC filters deletion requests out of signal zones
	}
	hosts := childNS
	if spec.SignalAnomaly == SigMissingOneNS {
		hosts = childNS[:1]
	}
	for _, h := range hosts {
		sz := op.signalZones[dnswire.CanonicalName(h)]
		if sz == nil {
			continue // not this operator's host (multi-operator, typo NS)
		}
		recs, err := zone.SignalRecords(z.Origin, h, content)
		if err != nil {
			continue // name too long: cannot be signalled (§2)
		}
		for _, rr := range recs {
			if err := sz.Add(rr); err != nil {
				return err
			}
		}
		switch spec.SignalAnomaly {
		case SigBadSig:
			op.badSigOwners = append(op.badSigOwners, recs[0].Name)
		case SigExpiredSig:
			op.expiredOwners = append(op.expiredOwners, recs[0].Name)
		default:
			// SigOK and the structural anomalies (zone cut, NS subset,
			// unsigned zone) are applied when the signal zone itself is
			// built, not per signalled owner.
		}
	}
	return nil
}

// finalize signs the infrastructure zones (children first so parents
// sign final DS sets), applies signal corruptions, and derives the
// trust anchor.
func (e *Ecosystem) finalize() error {
	for _, op := range e.ops {
		for _, sz := range op.signalZones {
			if err := sz.Sign(e.signCfg()); err != nil {
				return err
			}
		}
		for _, owner := range op.badSigOwners {
			sz := op.signalZones[signalZoneOf(op, owner)]
			if sz != nil {
				corruptSigsAt(sz, owner, dnswire.TypeCDS)
				corruptSigsAt(sz, owner, dnswire.TypeCDNSKEY)
			}
		}
		for _, owner := range op.expiredOwners {
			sz := op.signalZones[signalZoneOf(op, owner)]
			if sz != nil {
				if err := expireSigsAt(sz, owner, e.Now); err != nil {
					return err
				}
			}
		}
		for _, bz := range op.baseZones {
			if err := bz.Sign(e.signCfg()); err != nil {
				return err
			}
		}
	}
	bigCfg := e.signCfg()
	bigCfg.SkipNSEC = true
	for _, ti := range e.tlds {
		if err := ti.zone.Sign(bigCfg); err != nil {
			return err
		}
	}
	if err := e.root.Sign(e.signCfg()); err != nil {
		return err
	}
	rootDS, err := dnssec.DSFromKey(".", e.root.Keys[0].DNSKEY(), dnswire.DigestSHA256)
	if err != nil {
		return err
	}
	e.TrustAnchor = []dnswire.RR{{Name: ".", Class: dnswire.ClassIN, TTL: 0, Data: rootDS}}
	return nil
}

// signalZoneOf finds which of the operator's signal zones contains
// owner.
func signalZoneOf(op *opInfra, owner string) string {
	for h, sz := range op.signalZones {
		if dnswire.IsSubdomain(owner, sz.Origin) {
			return h
		}
	}
	return ""
}

// corruptSigsAt flips bits in every RRSIG over (owner, covered),
// leaving the records and other signatures intact.
func corruptSigsAt(z *zone.Zone, owner string, covered dnswire.Type) {
	sigs := z.RRset(owner, dnswire.TypeRRSIG)
	if len(sigs) == 0 {
		return
	}
	z.RemoveSet(owner, dnswire.TypeRRSIG)
	for _, rr := range sigs {
		sig := rr.Data.(*dnswire.RRSIG)
		if sig.TypeCovered == covered && len(sig.Signature) > 0 {
			dup := *sig
			dup.Signature = append([]byte(nil), sig.Signature...)
			dup.Signature[0] ^= 0xFF
			rr.Data = &dup
		}
		z.MustAdd(rr)
	}
}

// expireSigsAt re-signs every RRset at owner with an already-expired
// validity window (the decayed-test-zone case of §4.4).
func expireSigsAt(z *zone.Zone, owner string, now time.Time) error {
	if len(z.Keys) == 0 {
		return fmt.Errorf("ecosystem: cannot expire sigs in keyless zone %s", z.Origin)
	}
	_, zsk := zoneKeysOf(z)
	opts := dnssec.ExpiredWindow(now, z.Origin)
	z.RemoveSet(owner, dnswire.TypeRRSIG)
	for _, typ := range z.TypesAt(owner) {
		if typ == dnswire.TypeRRSIG {
			continue
		}
		set := z.RRset(owner, typ)
		sig, err := dnssec.SignRRset(set, zsk, opts)
		if err != nil {
			return err
		}
		z.MustAdd(sig)
	}
	return nil
}

func zoneKeysOf(z *zone.Zone) (ksk, zsk *dnssec.Key) {
	for _, k := range z.Keys {
		if k.IsSEP() && ksk == nil {
			ksk = k
		}
		if !k.IsSEP() && zsk == nil {
			zsk = k
		}
	}
	if ksk == nil {
		ksk = zsk
	}
	if zsk == nil {
		zsk = ksk
	}
	return
}

// Operators lists the generated operator names.
func (e *Ecosystem) Operators() []string {
	out := make([]string, 0, len(e.ops))
	for name := range e.ops {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// OperatorServer exposes an operator's primary server (tests).
func (e *Ecosystem) OperatorServer(name string) *server.Server {
	if op := e.ops[name]; op != nil {
		return op.srv
	}
	return nil
}

// TLDZone exposes a registry zone (tests and the bootstrap example).
func (e *Ecosystem) TLDZone(tld string) *zone.Zone {
	if ti := e.tlds[tld]; ti != nil {
		return ti.zone
	}
	return nil
}

// SignalZoneStats describes one operator's signal-zone footprint — the
// §4.4 estimate ("the number of signal RRs … is only on the order of
// 43.9 k … at most on the order of 6 MiB each").
type SignalZoneStats struct {
	Operator  string
	Zones     int // signal zones (one per NS host)
	Records   int // total records across them (incl. DNSSEC)
	SignalRRs int // CDS/CDNSKEY signalling records only
	TextBytes int // uncompressed master-file size
}

// SignalZoneFootprint computes the per-operator signal-zone sizes.
func (e *Ecosystem) SignalZoneFootprint() []SignalZoneStats {
	var out []SignalZoneStats
	for _, name := range e.Operators() {
		op := e.ops[name]
		if len(op.signalZones) == 0 {
			continue
		}
		st := SignalZoneStats{Operator: name, Zones: len(op.signalZones)}
		for _, sz := range op.signalZones {
			st.Records += sz.Size()
			for _, n := range sz.Names() {
				for _, t := range []dnswire.Type{dnswire.TypeCDS, dnswire.TypeCDNSKEY} {
					st.SignalRRs += len(sz.RRset(n, t))
				}
			}
			st.TextBytes += len(sz.Text())
		}
		out = append(out, st)
	}
	return out
}
