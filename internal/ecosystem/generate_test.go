package ecosystem

import (
	"context"
	"testing"

	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/resolver"
	"dnssecboot/internal/scan"
)

// smallWorld generates a heavily scaled-down ecosystem for tests.
func smallWorld(t *testing.T) *Ecosystem {
	t.Helper()
	eco, err := Generate(Config{Seed: 1, ScaleDivisor: 500_000})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return eco
}

func newScanner(eco *Ecosystem, probeSignals bool) *scan.Scanner {
	r := &resolver.Resolver{Net: eco.Net, Roots: eco.Roots}
	return scan.New(scan.Config{
		Resolver:         r,
		Now:              eco.Now,
		SampleSuffixes:   eco.CloudflareSuffixes,
		FullScanFraction: 0.05,
		ProbeSignals:     probeSignals,
		TrustAnchor:      eco.TrustAnchor,
		Seed:             1,
	})
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Seed: 7, ScaleDivisor: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 7, ScaleDivisor: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Targets) != len(b.Targets) {
		t.Fatalf("target counts differ: %d vs %d", len(a.Targets), len(b.Targets))
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			t.Fatalf("target %d differs: %s vs %s", i, a.Targets[i], b.Targets[i])
		}
	}
}

func TestGenerateHasEveryPhenomenon(t *testing.T) {
	eco := smallWorld(t)
	counts := map[State]int{}
	cds := map[CDSMode]int{}
	anomalies := map[SignalAnomaly]int{}
	signal := 0
	for _, tr := range eco.Truth {
		counts[tr.Spec.State]++
		cds[tr.Spec.CDS]++
		anomalies[tr.Spec.SignalAnomaly]++
		if tr.Spec.Signal {
			signal++
		}
	}
	for _, st := range []State{StateUnsigned, StateSecured, StateInvalid, StateIsland} {
		if counts[st] == 0 {
			t.Errorf("no zones in state %s", st)
		}
	}
	for _, m := range []CDSMode{CDSMatch, CDSDelete, CDSOrphan, CDSBadSig} {
		if cds[m] == 0 {
			t.Errorf("no zones with CDS mode %s", m)
		}
	}
	for _, a := range []SignalAnomaly{SigMissingOneNS, SigNSMismatch, SigZoneCut, SigBadSig, SigExpiredSig} {
		if anomalies[a] == 0 {
			t.Errorf("no zones with signal anomaly %s", a)
		}
	}
	if signal == 0 {
		t.Error("no zones with signal records")
	}
	if counts[StateUnsigned] <= counts[StateSecured] {
		t.Errorf("unsigned (%d) should dominate secured (%d)", counts[StateUnsigned], counts[StateSecured])
	}
}

func TestScanSecuredZone(t *testing.T) {
	eco := smallWorld(t)
	s := newScanner(eco, false)
	var target string
	for z, tr := range eco.Truth {
		if tr.Operator == "GoDaddy" && tr.Spec.State == StateSecured {
			target = z
			break
		}
	}
	if target == "" {
		t.Fatal("no GoDaddy secured zone generated")
	}
	obs := s.ScanZone(context.Background(), target)
	if obs.ResolveErr != "" {
		t.Fatalf("resolve error: %s", obs.ResolveErr)
	}
	if !obs.IsSigned() || !obs.HasDS() {
		t.Fatalf("secured zone signed=%v ds=%v", obs.IsSigned(), obs.HasDS())
	}
	if !obs.ChainValid {
		t.Fatalf("chain invalid: %s", obs.ChainErr)
	}
	// GoDaddy publishes CDS on DNSSEC zones.
	found := false
	for _, ns := range obs.PerNS {
		if len(ns.CDS) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no CDS observed on a CDS-publishing operator's zone")
	}
}

func TestScanIslandAndInvalid(t *testing.T) {
	eco := smallWorld(t)
	s := newScanner(eco, false)
	var island, invalid string
	for z, tr := range eco.Truth {
		if tr.Operator == "Cloudflare" && tr.Spec.State == StateIsland && tr.Spec.CDS == CDSMatch &&
			tr.Spec.SignalAnomaly == SigOK && !tr.Spec.CDSInconsistent && island == "" {
			island = z
		}
		if tr.Operator == "Cloudflare" && tr.Spec.State == StateInvalid && invalid == "" {
			invalid = z
		}
	}
	if island == "" || invalid == "" {
		t.Fatalf("missing fixtures: island=%q invalid=%q", island, invalid)
	}
	iobs := s.ScanZone(context.Background(), island)
	if iobs.ResolveErr != "" {
		t.Fatalf("island resolve: %s", iobs.ResolveErr)
	}
	if !iobs.IsSigned() || iobs.HasDS() {
		t.Errorf("island signed=%v ds=%v", iobs.IsSigned(), iobs.HasDS())
	}
	if !iobs.ChainValid {
		t.Errorf("island should self-validate: %s", iobs.ChainErr)
	}

	vobs := s.ScanZone(context.Background(), invalid)
	if vobs.ResolveErr != "" {
		t.Fatalf("invalid resolve: %s", vobs.ResolveErr)
	}
	if !vobs.IsSigned() || !vobs.HasDS() {
		t.Errorf("invalid zone signed=%v ds=%v", vobs.IsSigned(), vobs.HasDS())
	}
	if vobs.ChainValid {
		t.Error("expired-signature zone validated")
	}
}

func TestScanErrantDS(t *testing.T) {
	eco := smallWorld(t)
	s := newScanner(eco, false)
	var target string
	for z, tr := range eco.Truth {
		if tr.Spec.ErrantDS {
			target = z
			break
		}
	}
	if target == "" {
		t.Fatal("no errant-DS zone")
	}
	obs := s.ScanZone(context.Background(), target)
	if obs.IsSigned() {
		t.Error("errant-DS zone should be unsigned")
	}
	if !obs.HasDS() {
		t.Error("errant-DS zone should have DS at parent")
	}
}

func TestScanLegacyOperator(t *testing.T) {
	eco := smallWorld(t)
	s := newScanner(eco, false)
	var target string
	for z, tr := range eco.Truth {
		if tr.Operator == "LegacyDNS" {
			target = z
			break
		}
	}
	if target == "" {
		t.Fatal("no legacy zone")
	}
	obs := s.ScanZone(context.Background(), target)
	if obs.ResolveErr != "" {
		t.Fatalf("resolve: %s", obs.ResolveErr)
	}
	for _, ns := range obs.PerNS {
		if ns.CDSOutcome != scan.OutcomeError {
			t.Errorf("legacy CDS outcome = %s, want error", ns.CDSOutcome)
		}
	}
}

func TestScanSignalZones(t *testing.T) {
	eco := smallWorld(t)
	s := newScanner(eco, true)
	var good string
	for z, tr := range eco.Truth {
		if tr.Operator == "deSEC" && tr.Spec.State == StateIsland && tr.Spec.CDS == CDSMatch &&
			tr.Spec.SignalAnomaly == SigOK && tr.Spec.Signal {
			good = z
			break
		}
	}
	if good == "" {
		t.Fatal("no clean deSEC island with signal")
	}
	obs := s.ScanZone(context.Background(), good)
	if obs.ResolveErr != "" {
		t.Fatalf("resolve: %s", obs.ResolveErr)
	}
	if len(obs.Signals) == 0 {
		t.Fatal("no signal observations")
	}
	for _, so := range obs.Signals {
		if so.Outcome != scan.OutcomeOK {
			t.Errorf("signal under %s outcome = %s", so.NSHost, so.Outcome)
			continue
		}
		if !so.Secure {
			t.Errorf("signal under %s not secure: %s", so.NSHost, so.ValidationErr)
		}
		if so.ZoneCut {
			t.Errorf("spurious zone cut under %s", so.NSHost)
		}
	}
	// deSEC publishes 2 CDS digests + 1 CDNSKEY per signal name (§4.4).
	if n := len(obs.Signals[0].Records); n != 3 {
		t.Errorf("deSEC signal records = %d, want 3", n)
	}
}

func TestScanSignalAnomalies(t *testing.T) {
	eco := smallWorld(t)
	s := newScanner(eco, true)
	find := func(anom SignalAnomaly) string {
		for z, tr := range eco.Truth {
			if tr.Spec.SignalAnomaly == anom {
				return z
			}
		}
		return ""
	}

	// Missing under one NS.
	if zname := find(SigMissingOneNS); zname != "" {
		obs := s.ScanZone(context.Background(), zname)
		present, missing := 0, 0
		for _, so := range obs.Signals {
			if len(so.Records) > 0 {
				present++
			} else {
				missing++
			}
		}
		if present == 0 || missing == 0 {
			t.Errorf("missing-one-NS: present=%d missing=%d", present, missing)
		}
	} else {
		t.Error("no SigMissingOneNS fixture")
	}

	// Corrupted signal signatures.
	if zname := find(SigBadSig); zname != "" {
		obs := s.ScanZone(context.Background(), zname)
		bad := false
		for _, so := range obs.Signals {
			if len(so.Records) > 0 && !so.Secure {
				bad = true
			}
		}
		if !bad {
			t.Error("bad-sig signal validated")
		}
	} else {
		t.Error("no SigBadSig fixture")
	}

	// Expired signal signatures.
	if zname := find(SigExpiredSig); zname != "" {
		obs := s.ScanZone(context.Background(), zname)
		bad := false
		for _, so := range obs.Signals {
			if len(so.Records) > 0 && !so.Secure {
				bad = true
			}
		}
		if !bad {
			t.Error("expired-sig signal validated")
		}
	} else {
		t.Error("no SigExpiredSig fixture")
	}

	// The parking-service zone cut.
	if zname := find(SigZoneCut); zname != "" {
		obs := s.ScanZone(context.Background(), zname)
		cut := false
		for _, so := range obs.Signals {
			if so.ZoneCut {
				cut = true
			}
		}
		if !cut {
			t.Error("parking zone cut not detected")
		}
	} else {
		t.Error("no SigZoneCut fixture")
	}

	// NS-set mismatch: signals exist under the child's NSes but not the
	// TLD-listed one.
	if zname := find(SigNSMismatch); zname != "" {
		obs := s.ScanZone(context.Background(), zname)
		if !obs.NSSetsDiffer() {
			t.Error("NS sets should differ")
		}
		missing := false
		for _, so := range obs.Signals {
			if len(so.Records) == 0 {
				missing = true
			}
		}
		if !missing {
			t.Error("no missing signal under the mismatched NS")
		}
	} else {
		t.Error("no SigNSMismatch fixture")
	}
}

func TestScanInconsistentCDS(t *testing.T) {
	eco := smallWorld(t)
	s := newScanner(eco, false)
	var target string
	for z, tr := range eco.Truth {
		if tr.Spec.CDSInconsistent && tr.Spec.MultiOperator != "" {
			target = z
			break
		}
	}
	if target == "" {
		t.Fatal("no inconsistent multi-operator zone")
	}
	obs := s.ScanZone(context.Background(), target)
	if obs.ResolveErr != "" {
		t.Fatalf("resolve: %s", obs.ResolveErr)
	}
	if len(obs.PerNS) < 2 {
		t.Fatalf("observed %d NSes", len(obs.PerNS))
	}
	base := obs.PerNS[0].CombinedCDS()
	differs := false
	for _, ns := range obs.PerNS[1:] {
		if !dnswire.RRsetEqual(base, ns.CombinedCDS()) {
			differs = true
		}
	}
	if !differs {
		t.Error("CDS consistent despite injected inconsistency")
	}
}

func TestScanCDSDeleteIsland(t *testing.T) {
	eco := smallWorld(t)
	s := newScanner(eco, false)
	var target string
	for z, tr := range eco.Truth {
		if tr.Spec.State == StateIsland && tr.Spec.CDS == CDSDelete {
			target = z
			break
		}
	}
	if target == "" {
		t.Fatal("no delete island")
	}
	obs := s.ScanZone(context.Background(), target)
	if obs.ResolveErr != "" {
		t.Fatalf("resolve: %s", obs.ResolveErr)
	}
	for _, ns := range obs.PerNS {
		if ns.CDSOutcome != scan.OutcomeOK {
			t.Fatalf("CDS outcome = %s", ns.CDSOutcome)
		}
		if got := ns.CombinedCDS(); len(got) > 0 {
			if !isDeleteLike(got) {
				t.Error("delete island CDS is not a delete set")
			}
		}
	}
}

func isDeleteLike(rrs []dnswire.RR) bool {
	for _, rr := range rrs {
		switch d := rr.Data.(type) {
		case *dnswire.CDS:
			if !d.IsDelete() {
				return false
			}
		case *dnswire.CDNSKEY:
			if !d.IsDelete() {
				return false
			}
		}
	}
	return true
}

func TestHistoricalEras(t *testing.T) {
	e17 := EraForYear(2017)
	e25 := EraForYear(2025)
	if e17.SecuredShare >= e25.SecuredShare {
		t.Error("deployment did not grow 2017→2025")
	}
	if e17.InvalidShare <= e25.InvalidShare {
		t.Error("validation failures did not shrink 2017→2025")
	}
	if e17.SignalShare != 0 {
		t.Error("signals exist before RFC 9615")
	}
	mid := EraForYear(2021)
	if mid.SecuredShare <= e17.SecuredShare || mid.SecuredShare >= e25.SecuredShare {
		t.Errorf("2021 secured share = %f not between anchors", mid.SecuredShare)
	}
	if mid.SignalShare != 0 {
		t.Error("signals before 2024")
	}
	// Clamping outside the range.
	if got := EraForYear(2010); got.SecuredShare != e17.SecuredShare {
		t.Error("pre-2017 not clamped")
	}
	if got := EraForYear(2030); got.SecuredShare != e25.SecuredShare {
		t.Error("post-2025 not clamped")
	}
}

func TestHistoricalWorldScan(t *testing.T) {
	for _, year := range []int{2017, 2025} {
		eco, err := Generate(Config{
			Seed:         13,
			ScaleDivisor: 400_000,
			Profiles:     ProfilesForEra(EraForYear(year)),
		})
		if err != nil {
			t.Fatalf("year %d: %v", year, err)
		}
		s := newScanner(eco, year >= 2024)
		secured, invalid, total := 0, 0, 0
		for _, zn := range eco.Targets {
			obs := s.ScanZone(context.Background(), zn)
			if obs.ResolveErr != "" {
				t.Fatalf("year %d: %s: %s", year, zn, obs.ResolveErr)
			}
			total++
			if obs.IsSigned() && obs.HasDS() && obs.ChainValid {
				secured++
			}
			if obs.HasDS() && !obs.ChainValid {
				invalid++
			}
		}
		t.Logf("year %d: %d zones, %d secured, %d invalid", year, total, secured, invalid)
		if year == 2017 && secured >= invalid*3 {
			// 2017: invalid ≈ 2.1% dominates secured ≈ 0.8%.
			t.Errorf("2017 shape wrong: secured=%d invalid=%d", secured, invalid)
		}
		if year == 2025 && secured <= invalid {
			t.Errorf("2025 shape wrong: secured=%d invalid=%d", secured, invalid)
		}
	}
}

func TestWalkZoneEnumeratesNSECChain(t *testing.T) {
	eco := smallWorld(t)
	s := newScanner(eco, false)
	var target string
	for z, tr := range eco.Truth {
		if tr.Operator == "GoDaddy" && tr.Spec.State == StateSecured {
			target = z
			break
		}
	}
	if target == "" {
		t.Fatal("no secured zone")
	}
	names, err := s.WalkZone(context.Background(), target)
	if err != nil {
		t.Fatalf("WalkZone: %v", err)
	}
	// Generated zones have apex + www (the glue-free layout of addZone).
	if len(names) < 2 || names[0] != target {
		t.Fatalf("walked names = %v", names)
	}
	found := false
	for _, n := range names {
		if n == "www."+target {
			found = true
		}
	}
	if !found {
		t.Errorf("www name missing from walk: %v", names)
	}

	// Unsigned zones are not walkable.
	var unsigned string
	for z, tr := range eco.Truth {
		if tr.Operator == "GoDaddy" && tr.Spec.State == StateUnsigned {
			unsigned = z
			break
		}
	}
	if unsigned != "" {
		if _, err := s.WalkZone(context.Background(), unsigned); err == nil {
			t.Error("unsigned zone walked")
		}
	}
}

func TestSignalZoneFootprint(t *testing.T) {
	eco, err := Generate(Config{Seed: 1, ScaleDivisor: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	stats := eco.SignalZoneFootprint()
	byOp := map[string]SignalZoneStats{}
	for _, s := range stats {
		byOp[s.Operator] = s
	}
	ds, ok := byOp["deSEC"]
	if !ok {
		t.Fatal("no deSEC signal zones")
	}
	if ds.Zones != 2 {
		t.Errorf("deSEC signal zones = %d, want 2", ds.Zones)
	}
	// §4.4: deSEC publishes 3 signalling RRs per zone per NS (2 CDS
	// digests + 1 CDNSKEY), across 2 NSes — so SignalRRs ≈ zones×2×3.
	desecZones := 0
	for _, tr := range eco.Truth {
		if tr.Operator == "deSEC" && tr.Spec.Signal && tr.Spec.SignalAnomaly != SigMissingOneNS {
			desecZones++
		}
	}
	want := desecZones * 2 * 3
	// The missing-one-NS anomaly zones add 3 more under one NS each.
	if ds.SignalRRs < want || ds.SignalRRs > want+3*desecZones {
		t.Errorf("deSEC signal RRs = %d, expected ≈%d", ds.SignalRRs, want)
	}
	if ds.TextBytes == 0 {
		t.Error("no textual size accounted")
	}
	cf, ok := byOp["Cloudflare"]
	if !ok || cf.SignalRRs <= ds.SignalRRs {
		t.Errorf("Cloudflare footprint should dominate: cf=%+v desec=%+v", cf, ds)
	}
}
