package ecosystem

import (
	"fmt"
	"strings"

	"dnssecboot/internal/server"
)

// Profile describes one DNS operator's infrastructure and customer
// population.
type Profile struct {
	// Name as used in the paper's tables.
	Name string
	// Slug is used in generated zone names and must be unique.
	Slug string
	// NSHosts are the operator's nameserver hostnames; each zone is
	// assigned HostsPerZone of them round-robin.
	NSHosts      []string
	HostsPerZone int
	// AddrsPerHost gives each NS host this many IPv4 addresses
	// (default 1); V6 adds the same number of IPv6 addresses.
	AddrsPerHost int
	V6           bool
	// Anycast registers the operator's whole prefix so any address in
	// it answers (the Cloudflare serving model, §3).
	Anycast bool
	// Behavior configures the operator's servers.
	Behavior server.Behavior
	// Parking serves every query identically instead of hosting zones
	// (the Afternic model).
	Parking bool
	// SignalOperator publishes RFC 9615 signal zones; SignalDeletes
	// additionally copies deletion requests into them (Cloudflare and
	// Glauca do, deSEC does not — §4.4).
	SignalOperator bool
	SignalDeletes  bool
	// TLDWeights biases which TLDs this operator's zones register
	// under; nil uses the default mix.
	TLDWeights map[string]int
	// Segments is the customer population. A plain-unsigned remainder
	// segment is derived automatically when Total exceeds the segment
	// sum.
	Segments []Segment
	// Total is the unscaled domain count (Table 1 column "Domains").
	Total int
}

func seg(n int, spec ZoneSpec) Segment { return Segment{N: n, Spec: spec} }

// hostsFor generates simple numbered NS hostnames under a base domain.
func hostsFor(base string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("ns%d.%s", i+1, base)
	}
	return out
}

// swissWeights biases Swiss operators toward .ch/.li/.swiss, matching
// the Swiss concentration of Table 2.
var swissWeights = map[string]int{"ch": 65, "li": 10, "swiss": 10, "com": 15}

// Paper aggregates (§4.1 and Figure 1), unscaled.
const (
	paperTotalZones       = 287_600_000
	paperSecured          = 15_786_327
	paperInvalid          = 640_048
	paperIslandNoCDS      = 2_654_912
	paperIslandOrphanCDS  = 5
	paperIslandDelete     = 165_010
	paperIslandBootstrap  = 302_985
	paperLegacyNoResponse = 7_600_000
	paperCDSTotal         = 10_500_000
)

// table1Row is one line of Table 1.
type table1Row struct {
	name, slug, nsBase             string
	total, secured, invalid, isles int
	// cdsAll publishes CDS on secured and island zones (the pattern
	// that makes GoDaddy/Cloudflare/Google's Table 2 rows internally
	// consistent); cdsSecured publishes on secured zones only.
	cdsAll, cdsSecured bool
	// errantDS models "invalid" as a stray DS above an unsigned zone
	// (operators that do not offer DNSSEC, §4.1).
	errantDS bool
}

var table1 = []table1Row{
	{name: "GoDaddy", slug: "gd", nsBase: "domaincontrol.com", total: 56_446_359, secured: 107_550, invalid: 8_550, isles: 3_507, cdsAll: true},
	// Cloudflare is built separately (cloudflareProfile).
	{name: "Namecheap", slug: "nc", nsBase: "registrar-servers.com", total: 10_252_586, secured: 126_601, invalid: 5_300, isles: 1_615},
	{name: "Google Domains", slug: "goo", nsBase: "googledomains.com", total: 9_931_131, secured: 4_496_848, invalid: 109_499, isles: 127_137, cdsSecured: true},
	{name: "WIX", slug: "wix", nsBase: "wixdns.net", total: 7_318_524, secured: 74_423, invalid: 2_954, isles: 1_151_200, cdsSecured: true},
	{name: "Hostinger", slug: "hst", nsBase: "dns-parking.com", total: 6_561_661, secured: 5_360, errantDS: true},
	{name: "AfterNIC", slug: "an", nsBase: "afternic.com", total: 5_360_163, secured: 11_034, errantDS: true},
	{name: "HiChina", slug: "hc", nsBase: "hichina.com", total: 4_637_997, secured: 9_481, errantDS: true},
	{name: "AWS", slug: "aws", nsBase: "awsdns.com", total: 3_698_499, secured: 30_005, invalid: 4_345, isles: 10_776},
	{name: "GName", slug: "gn", nsBase: "gname-dns.com", total: 3_558_801, secured: 1_145, invalid: 1_002, isles: 572, errantDS: true},
	{name: "NameBright", slug: "nb", nsBase: "namebrightdns.com", total: 3_516_303, secured: 73, invalid: 680, isles: 2, errantDS: true},
	{name: "SquareSpace", slug: "sqs", nsBase: "squarespacedns.com", total: 2_735_515, secured: 24_278, invalid: 1_023, isles: 174},
	{name: "OVH", slug: "ovh", nsBase: "ovh.net", total: 2_662_864, secured: 1_169_714, invalid: 2_839, isles: 20_886},
	{name: "Sedo", slug: "sd", nsBase: "sedoparking.com", total: 2_340_028, secured: 3_645, errantDS: true},
	{name: "BlueHost", slug: "bh", nsBase: "bluehost.com", total: 1_976_091, secured: 13_188, invalid: 1_136, isles: 1_215},
	{name: "NameSilo", slug: "nsl", nsBase: "namesilo.com", total: 1_847_474, secured: 1_223, errantDS: true},
	{name: "Alibaba", slug: "ali", nsBase: "alidns.com", total: 1_570_903, secured: 2_675, invalid: 1_216, isles: 2_032, errantDS: true},
	{name: "DynaDot", slug: "dd", nsBase: "dynadot.com", total: 1_552_892, secured: 461, errantDS: true},
	{name: "Wordpress", slug: "wp", nsBase: "wordpress.com", total: 1_549_730, secured: 7_824, invalid: 347, isles: 60},
	{name: "SiteGround", slug: "sg", nsBase: "siteground.net", total: 1_535_176, secured: 1_302, errantDS: true},
}

// table2Row is one of the smaller CDS-publishing operators of Table 2
// (those not already covered by Table 1).
type table2Row struct {
	name, slug, nsBase string
	cds                int
	pct                float64
	swiss              bool
	weights            map[string]int
}

var table2 = []table2Row{
	{name: "Simply.com", slug: "sim", nsBase: "simply.com", cds: 218_590, pct: 96.8},
	{name: "cyon", slug: "cy", nsBase: "cyon.ch", cds: 60_981, pct: 48.1, swiss: true},
	{name: "Gransy", slug: "gr", nsBase: "gransy.com", cds: 54_690, pct: 98.9},
	{name: "METANET", slug: "mt", nsBase: "metanet.ch", cds: 54_522, pct: 70.5, swiss: true},
	{name: "Porkbun", slug: "pb", nsBase: "porkbun.com", cds: 34_989, pct: 3.2},
	{name: "netim", slug: "nt", nsBase: "netim.net", cds: 34_586, pct: 40.9},
	{name: "Gandi", slug: "gdi", nsBase: "gandi.net", cds: 34_486, pct: 3.6},
	{name: "Webland", slug: "wl", nsBase: "webland.ch", cds: 26_416, pct: 76.3, swiss: true},
	{name: "green.ch", slug: "grn", nsBase: "green.ch", cds: 24_674, pct: 16.8, swiss: true},
	{name: "WebHouse", slug: "wh", nsBase: "webhouse.sk", cds: 18_766, pct: 60.0, weights: map[string]int{"sk": 80, "com": 20}},
	{name: "V3 Hosting", slug: "v3", nsBase: "v3hosting.ch", cds: 13_066, pct: 98.3, swiss: true},
	{name: "HostFactory", slug: "hf", nsBase: "hostfactory.ch", cds: 12_897, pct: 68.4, swiss: true},
	{name: "INWX", slug: "iw", nsBase: "inwx.de", cds: 11_303, pct: 7.8, weights: map[string]int{"de": 60, "com": 25, "eu": 15}},
	{name: "OpenProvider", slug: "op", nsBase: "openprovider.nl", cds: 10_312, pct: 79.5, weights: map[string]int{"nl": 60, "com": 25, "eu": 15}},
	{name: "AWARDIC", slug: "aw", nsBase: "awardic.se", cds: 8_898, pct: 99.9, weights: map[string]int{"se": 70, "nu": 20, "com": 10}},
	{name: "3DNS", slug: "3d", nsBase: "3dns.box", cds: 8_112, pct: 75.6},
}

func (r table1Row) profile() Profile {
	cds := CDSNone
	if r.cdsAll || r.cdsSecured {
		cds = CDSMatch
	}
	islandCDS := CDSNone
	if r.cdsAll {
		islandCDS = CDSMatch
	}
	segs := []Segment{
		seg(r.secured, ZoneSpec{State: StateSecured, CDS: cds}),
		seg(r.isles, ZoneSpec{State: StateIsland, CDS: islandCDS}),
	}
	if r.invalid > 0 {
		segs = append(segs, seg(r.invalid, ZoneSpec{State: StateInvalid, ErrantDS: r.errantDS}))
	}
	return Profile{
		Name: r.name, Slug: r.slug,
		NSHosts: hostsFor(r.nsBase, 2), HostsPerZone: 2,
		Segments: segs, Total: r.total,
	}
}

func (r table2Row) profile() Profile {
	total := int(float64(r.cds) / r.pct * 100)
	islands := r.cds / 100 // a small bootstrappable tail
	secured := r.cds - islands
	w := r.weights
	if w == nil && r.swiss {
		w = swissWeights
	}
	return Profile{
		Name: r.name, Slug: r.slug,
		NSHosts: hostsFor(r.nsBase, 2), HostsPerZone: 2,
		TLDWeights: w,
		Segments: []Segment{
			seg(secured, ZoneSpec{State: StateSecured, CDS: CDSMatch}),
			seg(islands, ZoneSpec{State: StateIsland, CDS: CDSMatch}),
		},
		Total: total,
	}
}

// cloudflareProfile encodes §4's Cloudflare observations: the serving
// model (anycast, RFC 8482), the Table 1 row, the CDS-delete island
// population, and the Table 3 signal-zone ladder.
func cloudflareProfile() Profile {
	names := []string{"asa", "elliot", "kara", "lars", "mira", "noel", "pam", "quinn", "rosa", "sam"}
	hosts := make([]string, len(names))
	for i, n := range names {
		hosts[i] = n + ".ns.cloudflare.com"
	}
	return Profile{
		Name: "Cloudflare", Slug: "cf",
		NSHosts: hosts, HostsPerZone: 2,
		AddrsPerHost: 3, V6: true, Anycast: true,
		Behavior:       server.Behavior{RefuseANY: true},
		SignalOperator: true, SignalDeletes: true,
		Total: 27_790_208,
		Segments: []Segment{
			// Secured (Table 1: 799 377), nearly all with signal RRs
			// (Table 3: 799 169 already-secured with signal).
			seg(799_169, ZoneSpec{State: StateSecured, CDS: CDSMatch, Signal: true}),
			seg(208, ZoneSpec{State: StateSecured, CDS: CDSMatch}),
			// Invalid (Table 1: 16 694). 765 of the signal-bearing zones
			// cannot be bootstrapped due to broken DNSSEC (Table 3),
			// split per §4.4 into unsigned/invalid/inconsistent/bad-CDS.
			seg(15_994, ZoneSpec{State: StateInvalid, CDS: CDSMatch}),
			seg(700, ZoneSpec{State: StateInvalid, CDS: CDSMatch, Signal: true}),
			seg(40, ZoneSpec{State: StateUnsigned, Signal: true}),
			seg(20, ZoneSpec{State: StateIsland, CDS: CDSMatch, CDSInconsistent: true, MultiOperator: "deSEC", Signal: true}),
			seg(5, ZoneSpec{State: StateIsland, CDS: CDSBadSig, Signal: true}),
			// Islands (Table 1: 432 152): the disable-then-keep-signing
			// population publishing CDS deletes (§4.2: 160.0 k, of which
			// 159 503 also appear in signal zones, Table 3).
			seg(159_503, ZoneSpec{State: StateIsland, CDS: CDSDelete, Signal: true}),
			seg(497, ZoneSpec{State: StateIsland, CDS: CDSDelete}),
			// The AB-ready islands (Table 3 potential-to-bootstrap).
			seg(270_097, ZoneSpec{State: StateIsland, CDS: CDSMatch, Signal: true}),
			seg(33, ZoneSpec{State: StateIsland, CDS: CDSMatch, Signal: true, SignalAnomaly: SigNSMismatch}),
			seg(1, ZoneSpec{State: StateIsland, CDS: CDSMatch, Signal: true, SignalAnomaly: SigMissingOneNS}),
			// Remaining islands carry no CDS.
			seg(1_996, ZoneSpec{State: StateIsland}),
		},
	}
}

func desecProfile() Profile {
	return Profile{
		Name: "deSEC", Slug: "ds",
		NSHosts:        []string{"ns1.desec.io", "ns2.desec.org"},
		HostsPerZone:   2,
		SignalOperator: true,
		Total:          7_314,
		Segments: []Segment{
			seg(5_439, ZoneSpec{State: StateSecured, CDS: CDSMatch, Signal: true}),
			seg(20, ZoneSpec{State: StateInvalid, CDS: CDSMatch, Signal: true}),
			seg(1_630, ZoneSpec{State: StateIsland, CDS: CDSMatch, Signal: true}),
			// 154 missing-under-one-NS (24 spurious NSes, the rest
			// transient failures during the scan, §4.4).
			seg(154, ZoneSpec{State: StateIsland, CDS: CDSMatch, Signal: true, SignalAnomaly: SigMissingOneNS}),
			// 70 transient signature corruptions observed mid-scan.
			seg(70, ZoneSpec{State: StateIsland, CDS: CDSMatch, Signal: true, SignalAnomaly: SigBadSig}),
			// copacabanasomostudestino.com.bo: a typo NS pointing into a
			// parking service that fakes a zone cut at every level.
			seg(1, ZoneSpec{State: StateIsland, CDS: CDSMatch, Signal: true, SignalAnomaly: SigZoneCut, ParkingNS: true}),
		},
	}
}

func glaucaProfile() Profile {
	return Profile{
		Name: "Glauca Digital", Slug: "gl",
		NSHosts:        []string{"ns1.glauca.digital", "ns2.glauca.digital"},
		HostsPerZone:   2,
		SignalOperator: true, SignalDeletes: true,
		Total: 290,
		Segments: []Segment{
			seg(233, ZoneSpec{State: StateSecured, CDS: CDSMatch, Signal: true}),
			seg(7, ZoneSpec{State: StateIsland, CDS: CDSDelete, Signal: true}),
			seg(1, ZoneSpec{State: StateInvalid, CDS: CDSMatch, Signal: true}),
			seg(48, ZoneSpec{State: StateIsland, CDS: CDSMatch, Signal: true}),
			// The customer who hand-added a spurious NS record (§4.4).
			seg(1, ZoneSpec{State: StateIsland, CDS: CDSMatch, Signal: true, SignalAnomaly: SigMissingOneNS}),
		},
	}
}

// signalMiscProfile models Table 3's "Others" column: one-off test
// zones on assorted infrastructure.
func signalMiscProfile() Profile {
	return Profile{
		Name: "SignalMisc", Slug: "sm",
		NSHosts:        hostsFor("signal-misc.net", 2),
		HostsPerZone:   2,
		SignalOperator: true, SignalDeletes: true,
		Total: 279,
		Segments: []Segment{
			seg(113, ZoneSpec{State: StateSecured, CDS: CDSMatch, Signal: true}),
			seg(20, ZoneSpec{State: StateIsland, CDS: CDSDelete, Signal: true}),
			seg(3, ZoneSpec{State: StateUnsigned, Signal: true}),
			seg(66, ZoneSpec{State: StateInvalid, CDS: CDSMatch, Signal: true}),
			seg(12, ZoneSpec{State: StateIsland, CDS: CDSMatch, CDSInconsistent: true, MultiOperator: "PartnerDNS", Signal: true}),
			seg(42, ZoneSpec{State: StateIsland, CDS: CDSBadSig, Signal: true}),
			seg(5, ZoneSpec{State: StateIsland, CDS: CDSMatch, Signal: true}),
			seg(17, ZoneSpec{State: StateIsland, CDS: CDSMatch, MultiOperator: "PartnerDNS", Signal: true, SignalAnomaly: SigMissingOneNS}),
			// The forgotten personal test zone with expired signal
			// signatures (§4.4).
			seg(1, ZoneSpec{State: StateIsland, CDS: CDSMatch, Signal: true, SignalAnomaly: SigExpiredSig}),
		},
	}
}

// islandMiscProfile carries §4.2's CDS-correctness tail: inconsistent
// multi-operator islands, orphan CDS, bad CDS signatures.
func islandMiscProfile() Profile {
	return Profile{
		Name: "MultiSigner", Slug: "ms",
		NSHosts:      hostsFor("multisigner.net", 2),
		HostsPerZone: 2,
		Total:        5_841,
		Segments: []Segment{
			seg(4_637, ZoneSpec{State: StateIsland, CDS: CDSMatch, CDSInconsistent: true, MultiOperator: "PartnerDNS"}),
			seg(696, ZoneSpec{State: StateIsland, CDS: CDSMatch, CDSInconsistent: true}),
			seg(5, ZoneSpec{State: StateIsland, CDS: CDSOrphan}),
			seg(3, ZoneSpec{State: StateIsland, CDS: CDSBadSig}),
			// A correctly-coordinated RFC 8901 multi-signer tail: both
			// operators serve identical CDS, so these remain
			// bootstrap-eligible ("care must be taken to coordinate",
			// §4.2 — these are the ones that took care).
			seg(500, ZoneSpec{State: StateIsland, CDS: CDSMatch, MultiOperator: "PartnerDNS"}),
		},
	}
}

// canalProfile models Canal Dominios, the operator behind most CDS
// records in unsigned zones (§4.2).
func canalProfile() Profile {
	return Profile{
		Name: "Canal Dominios", Slug: "cn",
		NSHosts:      hostsFor("canaldominios.example-isp.com", 2),
		HostsPerZone: 2,
		Total:        3_000,
		Segments: []Segment{
			seg(2_469, ZoneSpec{State: StateUnsigned, CDS: CDSOrphan}),
			seg(385, ZoneSpec{State: StateUnsigned, CDS: CDSOrphan}),
			seg(16, ZoneSpec{State: StateUnsigned, CDS: CDSDelete}),
		},
	}
}

// legacyProfile models the 7.6 M domains behind nameservers that fail
// on post-2003 query types (§4.2, "Lack of support for CDS").
func legacyProfile() Profile {
	return Profile{
		Name: "LegacyDNS", Slug: "lg",
		NSHosts:      hostsFor("ancient-dns.net", 2),
		HostsPerZone: 2,
		Behavior:     server.Behavior{LegacyUnknownTypes: true},
		Total:        paperLegacyNoResponse,
		Segments:     nil, // entirely plain unsigned
	}
}

// partnerProfile is the secondary operator used by multi-operator
// zones; it hosts variant copies with diverging CDS content.
func partnerProfile() Profile {
	return Profile{
		Name: "PartnerDNS", Slug: "pd",
		NSHosts:      hostsFor("partnerdns.org", 2),
		HostsPerZone: 2,
		Total:        0, // hosts no zones of its own
	}
}

// Profiles returns every operator profile plus the computed "OtherDNS"
// remainder that tops the population up to the paper's §4.1 aggregates.
func Profiles() []Profile {
	ps := []Profile{cloudflareProfile(), desecProfile(), glaucaProfile(),
		signalMiscProfile(), islandMiscProfile(), canalProfile(),
		legacyProfile(), partnerProfile()}
	for _, r := range table1 {
		ps = append(ps, r.profile())
	}
	for _, r := range table2 {
		ps = append(ps, r.profile())
	}
	ps = append(ps, otherProfile(ps))
	return ps
}

// otherProfile computes the residual operator so that category totals
// match the paper's aggregates.
func otherProfile(ps []Profile) Profile {
	var secured, invalid, islNone, islMatch, islDelete, total int
	for _, p := range ps {
		total += p.Total
		for _, s := range p.Segments {
			switch s.Spec.State {
			case StateUnsigned:
				// Unsigned segments contribute to the total only; the
				// residual picks them up as total minus the categories.
			case StateSecured:
				secured += s.N
			case StateInvalid:
				invalid += s.N
			case StateIsland:
				switch s.Spec.CDS {
				case CDSNone:
					islNone += s.N
				case CDSDelete:
					islDelete += s.N
				default:
					islMatch += s.N
				}
			}
		}
	}
	clamp := func(v int) int {
		if v < 0 {
			return 0
		}
		return v
	}
	// Split the residual secured population into CDS publishers and
	// non-publishers so the Table 2 CDS aggregate is approximated.
	var cdsSoFar int
	for _, p := range ps {
		for _, s := range p.Segments {
			if s.Spec.CDS == CDSMatch || s.Spec.CDS == CDSDelete || s.Spec.CDS == CDSOrphan || s.Spec.CDS == CDSBadSig {
				cdsSoFar += s.N
			}
		}
	}
	securedRest := clamp(paperSecured - secured)
	cdsRest := clamp(paperCDSTotal - cdsSoFar)
	securedCDS := min(securedRest, cdsRest)
	return Profile{
		Name: "OtherDNS", Slug: "ot",
		NSHosts:      hostsFor("various-hosting.net", 4),
		HostsPerZone: 2,
		Total:        clamp(paperTotalZones - total),
		Segments: []Segment{
			// 3 289 zones keep their deletion request published while
			// staying signed — the TLD or registrar ignored it (§4.2).
			seg(3_289, ZoneSpec{State: StateSecured, CDS: CDSDelete}),
			seg(securedCDS, ZoneSpec{State: StateSecured, CDS: CDSMatch}),
			seg(clamp(securedRest-securedCDS-3_289), ZoneSpec{State: StateSecured}),
			seg(clamp(paperInvalid-invalid), ZoneSpec{State: StateInvalid}),
			seg(clamp(paperIslandNoCDS-islNone), ZoneSpec{State: StateIsland}),
			seg(clamp(paperIslandBootstrap+paperIslandOrphanCDS-islMatch), ZoneSpec{State: StateIsland, CDS: CDSMatch}),
			seg(clamp(paperIslandDelete-islDelete), ZoneSpec{State: StateIsland, CDS: CDSDelete}),
		},
	}
}

// slugCheck panics at init when two profiles collide; the generator
// relies on unique slugs for name construction.
func init() {
	seen := map[string]string{}
	for _, p := range Profiles() {
		if other, dup := seen[p.Slug]; dup {
			panic(fmt.Sprintf("ecosystem: slug %q shared by %s and %s", p.Slug, other, p.Name))
		}
		seen[p.Slug] = p.Name
	}
}

// baseOf returns the registrable base domain of an NS hostname (e.g.
// ns1.desec.io → desec.io), used to group hosts into operator base
// zones.
func baseOf(host string) string {
	host = strings.TrimSuffix(host, ".")
	parts := strings.Split(host, ".")
	if len(parts) < 2 {
		return host + "."
	}
	// Two rightmost labels form the registrable base for every base
	// domain the profiles use (all direct-under-TLD).
	return strings.Join(parts[len(parts)-2:], ".") + "."
}
