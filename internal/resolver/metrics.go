// Metrics bridge between the resolver and the obs registry. The six
// historical atomic counters live here now, as named instruments on a
// registry, so report/export and the -metrics-out artefact read one
// source of truth.
package resolver

import (
	"dnssecboot/internal/obs"
)

// Metric names registered by NewMetrics. Exported so the CLI and tests
// address snapshot entries without retyping strings.
const (
	MetricQueries      = "resolver_queries_total"
	MetricRetries      = "resolver_retries_total"
	MetricGaveUp       = "resolver_gave_up_total"
	MetricCacheHits    = "resolver_cache_hits_total"
	MetricCacheMisses  = "resolver_cache_misses_total"
	MetricCoalesced    = "resolver_coalesced_total"
	MetricQuerySeconds = "resolver_query_seconds"
	MetricRateWait     = "resolver_rate_wait_seconds"
	MetricTrailing     = "resolver_trailing_bytes_total"
)

// Metrics holds the resolver's instruments. Install one built against a
// shared registry via Resolver.Obs to export resolver telemetry; a
// Resolver without one lazily builds Metrics on a private registry so
// the accessor methods (Queries, Retries, ...) keep working for bare
// literals.
type Metrics struct {
	Queries     *obs.Counter
	Retries     *obs.Counter
	GaveUp      *obs.Counter
	CacheHits   *obs.Counter
	CacheMisses *obs.Counter
	Coalesced   *obs.Counter
	// Trailing accumulates octets of trailing garbage observed after
	// the last record of responses (dnswire.Message.TrailingBytes) — a
	// malformed-responder signal the classifier can consult.
	Trailing *obs.Counter
	// QuerySeconds observes wire-exchange latency per attempt;
	// RateWait observes time blocked in the per-server rate limiter.
	QuerySeconds *obs.Histogram
	RateWait     *obs.Histogram
}

// NewMetrics registers the resolver's instruments on reg. A nil
// registry yields all-nil (no-op) instruments.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Queries:      reg.Counter(MetricQueries),
		Retries:      reg.Counter(MetricRetries),
		GaveUp:       reg.Counter(MetricGaveUp),
		CacheHits:    reg.Counter(MetricCacheHits),
		CacheMisses:  reg.Counter(MetricCacheMisses),
		Coalesced:    reg.Counter(MetricCoalesced),
		Trailing:     reg.Counter(MetricTrailing),
		QuerySeconds: reg.Histogram(MetricQuerySeconds, obs.DefLatencyBuckets),
		RateWait:     reg.Histogram(MetricRateWait, obs.DefLatencyBuckets),
	}
}

// metrics returns the resolver's instruments, lazily building them on a
// private registry when none were installed.
func (r *Resolver) metrics() *Metrics {
	r.obsOnce.Do(func() {
		if r.Obs == nil {
			r.Obs = NewMetrics(obs.NewRegistry())
		}
	})
	return r.Obs
}
