package resolver

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/transport"
)

// Table-driven audit of the Exchange counter contract against the
// fault-injecting MemNetwork: Queries counts every wire attempt,
// Retries counts attempts beyond the first that actually reached the
// wire, and GaveUp fires exactly once per exchange that exhausted its
// attempts — including single-attempt policies. The resolver-global
// instruments and the per-zone QueryStats carried in the context must
// agree.
func TestExchangeCounterContract(t *testing.T) {
	cases := []struct {
		name        string
		profile     transport.FaultProfile
		attempts    int
		wantQueries int64
		wantRetries int64
		wantGaveUp  int64
	}{
		{"clean success, one attempt", transport.FaultProfile{}, 1, 1, 0, 0},
		{"clean success, retries unused", transport.FaultProfile{}, 3, 1, 0, 0},
		{"succeeds on third attempt", transport.FaultProfile{FlakyEveryN: 3}, 3, 3, 2, 0},
		{"exhausts attempts on timeouts", transport.FaultProfile{Loss: 1}, 3, 3, 2, 1},
		{"single attempt exhausted counts gave-up", transport.FaultProfile{Loss: 1}, 1, 1, 0, 1},
		{"persistent servfail exhausted", transport.FaultProfile{ServFail: true}, 2, 2, 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, server := flakyWorld(t, tc.profile)
			if tc.attempts > 1 {
				r.Retry = &RetryPolicy{Attempts: tc.attempts}
			}
			ctx, stats := WithQueryStats(context.Background())
			r.Exchange(ctx, server, "www.test.", dnswire.TypeA)
			if r.Queries() != tc.wantQueries || r.Retries() != tc.wantRetries || r.GaveUp() != tc.wantGaveUp {
				t.Errorf("resolver counters queries=%d retries=%d gaveUp=%d, want %d/%d/%d",
					r.Queries(), r.Retries(), r.GaveUp(), tc.wantQueries, tc.wantRetries, tc.wantGaveUp)
			}
			if q, rt, g := stats.Queries.Load(), stats.Retries.Load(), stats.GaveUp.Load(); q != tc.wantQueries || rt != tc.wantRetries || g != tc.wantGaveUp {
				t.Errorf("ctx stats queries=%d retries=%d gaveUp=%d, want %d/%d/%d",
					q, rt, g, tc.wantQueries, tc.wantRetries, tc.wantGaveUp)
			}
		})
	}
}

// TestExchangeHardFailureCountsNoGaveUp pins the difference between
// "exhausted" and "aborted": a hard failure (unreachable address)
// returns immediately and is not a gave-up exchange.
func TestExchangeHardFailureCountsNoGaveUp(t *testing.T) {
	r, _ := flakyWorld(t, transport.FaultProfile{})
	r.Retry = &RetryPolicy{Attempts: 4}
	dead := netip.AddrPortFrom(netip.MustParseAddr("198.51.100.99"), 53)
	ctx, stats := WithQueryStats(context.Background())
	r.Exchange(ctx, dead, "www.test.", dnswire.TypeA)
	if r.Queries() != 1 || r.Retries() != 0 || r.GaveUp() != 0 {
		t.Errorf("queries=%d retries=%d gaveUp=%d, want 1/0/0", r.Queries(), r.Retries(), r.GaveUp())
	}
	if stats.GaveUp.Load() != 0 {
		t.Errorf("ctx gaveUp = %d, want 0", stats.GaveUp.Load())
	}
}

// TestExchangeCancelledBackoffCountsNoRetry pins the phantom-retry fix:
// a backoff sleep aborted by context cancellation never reaches the
// wire, so it must not count as a retry. The pre-fix code incremented
// Retries before sleeping, inflating the counter by one per cancelled
// exchange.
func TestExchangeCancelledBackoffCountsNoRetry(t *testing.T) {
	r, server := flakyWorld(t, transport.FaultProfile{Loss: 1})
	r.Retry = &RetryPolicy{Attempts: 3, BaseBackoff: 10 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	ctx, stats := WithQueryStats(ctx)
	_, err := r.Exchange(ctx, server, "www.test.", dnswire.TypeA)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	// One wire attempt happened (the instant timeout from the lossy
	// server); the backoff before attempt two was cancelled, so no
	// retry ever reached the wire — and the exchange was aborted, not
	// exhausted, so GaveUp must stay zero too.
	if r.Queries() != 1 || r.Retries() != 0 || r.GaveUp() != 0 {
		t.Errorf("queries=%d retries=%d gaveUp=%d, want 1/0/0 (cancelled backoff)",
			r.Queries(), r.Retries(), r.GaveUp())
	}
	if stats.Retries.Load() != 0 || stats.GaveUp.Load() != 0 {
		t.Errorf("ctx retries=%d gaveUp=%d, want 0/0", stats.Retries.Load(), stats.GaveUp.Load())
	}
}
