// Package resolver implements an iterative DNS resolver in the style
// the YoDNS scanner needs: it primes from root hints, follows
// referrals, resolves nameserver addresses (glue or out-of-bailiwick),
// and exposes the delegation information (parent-side NS and DS RRsets)
// for any zone. All traffic flows through a transport.Exchanger, so the
// same code runs against the in-memory simulation or real servers.
package resolver

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"

	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/rate"
	"dnssecboot/internal/transport"
)

// Errors reported by resolution.
var (
	ErrNXDomain    = errors.New("resolver: name does not exist")
	ErrNoServers   = errors.New("resolver: no reachable nameservers")
	ErrLoop        = errors.New("resolver: referral or alias loop")
	ErrLameReferal = errors.New("resolver: lame delegation")
)

// Resolver is an iterative resolver. Fields must be set before first
// use and not changed afterwards.
type Resolver struct {
	// Net carries the queries.
	Net transport.Exchanger
	// Roots are the root server addresses (priming hints).
	Roots []netip.AddrPort
	// Limits, when non-nil, rate-limits queries per server address.
	Limits *rate.PerKey
	// MaxDepth bounds referral chains; zero means 16.
	MaxDepth int
	// DefaultPort is used when building server addresses from NS
	// address records (zero means 53). Setting it lets whole worlds run
	// on unprivileged loopback ports.
	DefaultPort uint16
	// Retry, when non-nil, retries transient failures (timeouts,
	// SERVFAIL) per server with backoff. Nil means one attempt.
	Retry *RetryPolicy
	// Cache, when non-nil, enables the resolver-wide caching and
	// singleflight deduplication layer (cache.go): Delegation starts
	// from the deepest cached ancestor instead of re-walking the root,
	// NXDOMAIN/lame parents fail fast from the negative cache, and
	// concurrent identical Delegation/AddrsOf/zone-server walks
	// coalesce onto one upstream query stream. Nil keeps the historical
	// per-map caching behaviour.
	Cache *Cache
	// Stateless disables the legacy per-resolver memo maps (zone
	// servers, host addresses) and the process-global inflight guard,
	// so every resolution chain re-walks from the roots and shares
	// nothing with its neighbours. Query counts then depend only on
	// (name, world) — independent of scan history and concurrency —
	// which is what makes a streamed JSONL export byte-reproducible
	// across runs and across checkpoint resumes. Ignored when Cache is
	// installed (a shared cache is deliberate cross-chain state).
	Stateless bool
	// Obs, when non-nil, is the resolver's instrument set (usually
	// NewMetrics over a shared obs.Registry). Nil lazily builds one on
	// a private registry so the counter accessors keep working.
	Obs *Metrics

	obsOnce sync.Once
	health  healthTracker
	flight  flightGroup

	mu        sync.RWMutex
	zoneCache map[string][]netip.AddrPort // zone apex -> authoritative addrs
	addrCache map[string][]netip.Addr     // hostname -> addresses
	inflight  map[string]bool             // hostnames being resolved (cycle guard)
}

// Queries returns the number of DNS queries issued so far.
func (r *Resolver) Queries() int64 { return r.metrics().Queries.Value() }

// Retries returns the number of retry attempts issued so far.
func (r *Resolver) Retries() int64 { return r.metrics().Retries.Value() }

// GaveUp returns the number of exchanges that exhausted every retry
// attempt without a usable answer.
func (r *Resolver) GaveUp() int64 { return r.metrics().GaveUp.Value() }

// CacheHits returns the number of lookups served from the shared cache
// (zero when Cache is nil).
func (r *Resolver) CacheHits() int64 { return r.metrics().CacheHits.Value() }

// CacheMisses returns the number of cache probes that found no entry.
func (r *Resolver) CacheMisses() int64 { return r.metrics().CacheMisses.Value() }

// Coalesced returns the number of calls that piggybacked on another
// chain's in-flight execution instead of issuing their own queries.
func (r *Resolver) Coalesced() int64 { return r.metrics().Coalesced.Value() }

// TrailingBytes returns the total octets of trailing garbage observed
// after the last record of responses received so far.
func (r *Resolver) TrailingBytes() int64 { return r.metrics().Trailing.Value() }

// ServerTripped reports whether the health tracker currently
// deprioritises the address (circuit breaker open).
func (r *Resolver) ServerTripped(server netip.AddrPort) bool { return r.health.tripped(server) }

// Port returns the server port used for NS-derived addresses.
func (r *Resolver) Port() uint16 {
	if r.DefaultPort == 0 {
		return 53
	}
	return r.DefaultPort
}

func (r *Resolver) maxDepth() int {
	if r.MaxDepth <= 0 {
		return 16
	}
	return r.MaxDepth
}

var idCounter atomic.Uint32

func nextID() uint16 {
	return uint16(idCounter.Add(1))
}

// Delegation describes the parent side of a zone cut plus the resolved
// server addresses for the child zone.
type Delegation struct {
	// Zone is the child apex.
	Zone string
	// ParentNS is the delegation NS RRset as served by the parent.
	ParentNS []dnswire.RR
	// DS is the DS RRset at the parent (empty for insecure
	// delegations), and DSSigs its RRSIGs.
	DS     []dnswire.RR
	DSSigs []dnswire.RR
	// Glue holds address records from the referral's additional
	// section.
	Glue []dnswire.RR
	// ParentZone is the apex of the delegating zone.
	ParentZone string
	// ParentServers are the addresses of the parent zone's servers
	// (useful for re-querying DS).
	ParentServers []netip.AddrPort
}

// NSHosts returns the delegation's nameserver hostnames.
func (d *Delegation) NSHosts() []string {
	var out []string
	for _, rr := range d.ParentNS {
		out = append(out, rr.Data.(*dnswire.NS).Target)
	}
	return out
}

// Delegation walks from the root to the parent of zoneName and returns
// the delegation data. It fails with ErrNXDomain if the parent denies
// the name. With a Cache installed the walk starts from the deepest
// cached ancestor zone (so the root→TLD prefix is resolved once per
// TLD, not once per target), known-dead names fail fast from the
// negative cache, and concurrent calls for the same zone coalesce.
func (r *Resolver) Delegation(ctx context.Context, zoneName string) (*Delegation, error) {
	zoneName = dnswire.CanonicalName(zoneName)
	if r.Cache == nil {
		return r.delegationFrom(ctx, zoneName, r.Roots, ".")
	}
	if err, ok := r.Cache.negLookup(zoneName); ok {
		r.noteCacheHit(ctx, "neg:"+zoneName)
		return nil, err
	}
	ctx, chain := withChain(ctx)
	v, shared, err := r.flight.Do(ctx, chain, "d:"+zoneName, func() (any, error) {
		servers, apex := r.startPoint(ctx, zoneName)
		d, derr := r.delegationFrom(ctx, zoneName, servers, apex)
		if derr != nil && (errors.Is(derr, ErrNXDomain) || errors.Is(derr, ErrLameReferal)) {
			r.Cache.negStore(zoneName, derr)
		}
		return d, derr
	})
	if shared {
		r.noteCoalesced(ctx, "d:"+zoneName)
	}
	if err != nil {
		return nil, err
	}
	return v.(*Delegation), nil
}

// startPoint picks where the delegation walk for zoneName begins: the
// target's parent zone when its servers are (or become) cached, the
// root otherwise. Failures resolving the parent fall back to the
// uncached full walk so transient errors never pin a bad start.
func (r *Resolver) startPoint(ctx context.Context, zoneName string) ([]netip.AddrPort, string) {
	if zoneName == "." {
		return r.Roots, "."
	}
	servers, apex, err := r.zoneServers(ctx, dnswire.Parent(zoneName))
	if err != nil {
		return r.Roots, "."
	}
	return servers, apex
}

// zoneServers resolves (and caches) the authoritative server addresses
// for a zone apex, coalescing concurrent walks for the same zone. For
// names that turn out not to be zone cuts (empty non-terminals, names
// hosted in the parent) it aliases to the enclosing zone's servers.
func (r *Resolver) zoneServers(ctx context.Context, zoneName string) ([]netip.AddrPort, string, error) {
	if zoneName == "." {
		return r.Roots, ".", nil
	}
	if e, ok := r.Cache.posLookup(zoneName); ok {
		r.noteCacheHit(ctx, "z:"+zoneName)
		return e.servers, e.apex, nil
	}
	r.noteCacheMiss(ctx, "z:"+zoneName)
	ctx, chain := withChain(ctx)
	v, shared, err := r.flight.Do(ctx, chain, "z:"+zoneName, func() (any, error) {
		d, derr := r.Delegation(ctx, zoneName)
		if derr != nil {
			if !errors.Is(derr, ErrNXDomain) && !errors.Is(derr, ErrLameReferal) {
				return posEntry{}, derr // transient: do not alias, do not cache
			}
			ps, papex, perr := r.zoneServers(ctx, dnswire.Parent(zoneName))
			if perr != nil {
				return posEntry{}, derr
			}
			e := posEntry{servers: ps, apex: papex}
			r.Cache.posStore(zoneName, e)
			return e, nil
		}
		srv, serr := r.serversForDelegation(ctx, d)
		if serr != nil {
			return posEntry{}, serr
		}
		e := posEntry{servers: srv, apex: zoneName}
		r.Cache.posStore(zoneName, e)
		return e, nil
	})
	if shared {
		r.noteCoalesced(ctx, "z:"+zoneName)
	}
	if err != nil {
		return nil, "", err
	}
	e := v.(posEntry)
	return e.servers, e.apex, nil
}

// delegationFrom performs the iterative referral walk for zoneName
// starting at the given servers, which are authoritative for
// currentZone.
func (r *Resolver) delegationFrom(ctx context.Context, zoneName string, servers []netip.AddrPort, currentZone string) (*Delegation, error) {
	for depth := 0; depth < r.maxDepth(); depth++ {
		resp, server, err := r.queryAny(ctx, servers, zoneName, dnswire.TypeNS)
		if err != nil {
			return nil, err
		}
		switch {
		case resp.Rcode == dnswire.RcodeNXDomain:
			return nil, fmt.Errorf("%w: %s (parent %s)", ErrNXDomain, zoneName, currentZone)
		case resp.Rcode != dnswire.RcodeNoError:
			return nil, fmt.Errorf("resolver: %s from %s for %s", resp.Rcode, server, zoneName)
		}

		if cut, nsSet := referralCut(resp); cut != "" {
			// A referral must move the walk strictly downward toward
			// the target: the cut strictly below the zone this server
			// serves, and the target at or below the cut. Upward,
			// sideways or unrelated referrals would otherwise spin to
			// MaxDepth — and, with delegations cached, poison the
			// shared cache for every later scan of the subtree.
			if !dnswire.IsSubdomain(cut, currentZone) || cut == currentZone || !dnswire.IsSubdomain(zoneName, cut) {
				return nil, fmt.Errorf("%w: referral to %s from %s (serving %s) for %s",
					ErrLoop, cut, server, currentZone, zoneName)
			}
			d := &Delegation{
				Zone:          cut,
				ParentNS:      nsSet,
				ParentZone:    currentZone,
				ParentServers: servers,
			}
			for _, rr := range resp.Authority {
				switch rr.Type() {
				case dnswire.TypeDS:
					if dnswire.CanonicalName(rr.Name) == cut {
						d.DS = append(d.DS, rr)
					}
				case dnswire.TypeRRSIG:
					sig := rr.Data.(*dnswire.RRSIG)
					if sig.TypeCovered == dnswire.TypeDS && dnswire.CanonicalName(rr.Name) == cut {
						d.DSSigs = append(d.DSSigs, rr)
					}
				}
			}
			for _, rr := range resp.Additional {
				if rr.Type() == dnswire.TypeA || rr.Type() == dnswire.TypeAAAA {
					d.Glue = append(d.Glue, rr)
				}
			}
			if cut == zoneName {
				return d, nil
			}
			// Descend.
			next, err := r.serversForDelegation(ctx, d)
			if err != nil {
				return nil, err
			}
			servers = next
			currentZone = cut
			r.cacheZone(cut, next)
			continue
		}

		if resp.Authoritative {
			// The server answered authoritatively: either it hosts both
			// parent and child (no referral visible), or zoneName is not
			// a zone cut at all. Synthesize from the answer's NS set.
			var nsSet []dnswire.RR
			for _, rr := range resp.Answer {
				if rr.Type() == dnswire.TypeNS && dnswire.CanonicalName(rr.Name) == zoneName {
					nsSet = append(nsSet, rr)
				}
			}
			if len(nsSet) == 0 {
				return nil, fmt.Errorf("%w: no NS for %s at %s", ErrLameReferal, zoneName, server)
			}
			d := &Delegation{Zone: zoneName, ParentNS: nsSet, ParentZone: currentZone, ParentServers: servers}
			// DS must be fetched from the parent explicitly.
			dsResp, _, err := r.queryAny(ctx, servers, zoneName, dnswire.TypeDS)
			if err == nil && dsResp.Rcode == dnswire.RcodeNoError {
				for _, rr := range dsResp.Answer {
					switch rr.Type() {
					case dnswire.TypeDS:
						d.DS = append(d.DS, rr)
					case dnswire.TypeRRSIG:
						if rr.Data.(*dnswire.RRSIG).TypeCovered == dnswire.TypeDS {
							d.DSSigs = append(d.DSSigs, rr)
						}
					}
				}
			}
			// A server hosting both parent and child answers without a
			// visible referral, leaving currentZone at whatever level
			// the walk reached. The DS RRSIG names the true delegating
			// zone.
			if len(d.DSSigs) > 0 {
				d.ParentZone = dnswire.CanonicalName(d.DSSigs[0].Data.(*dnswire.RRSIG).SignerName)
			}
			return d, nil
		}
		return nil, fmt.Errorf("%w: non-authoritative non-referral from %s for %s", ErrLameReferal, server, zoneName)
	}
	return nil, ErrLoop
}

// referralCut inspects a response for referral shape and returns the
// cut name and NS set.
func referralCut(resp *dnswire.Message) (string, []dnswire.RR) {
	if resp.Authoritative || len(resp.Answer) > 0 {
		return "", nil
	}
	var cut string
	var nsSet []dnswire.RR
	for _, rr := range resp.Authority {
		if rr.Type() != dnswire.TypeNS {
			continue
		}
		name := dnswire.CanonicalName(rr.Name)
		if cut == "" {
			cut = name
		}
		if name == cut {
			nsSet = append(nsSet, rr)
		}
	}
	return cut, nsSet
}

// serversForDelegation resolves the delegation's NS hostnames to
// addresses, preferring glue.
func (r *Resolver) serversForDelegation(ctx context.Context, d *Delegation) ([]netip.AddrPort, error) {
	var out []netip.AddrPort
	glueByHost := make(map[string][]netip.Addr)
	for _, rr := range d.Glue {
		host := dnswire.CanonicalName(rr.Name)
		switch a := rr.Data.(type) {
		case *dnswire.A:
			glueByHost[host] = append(glueByHost[host], a.Addr)
		case *dnswire.AAAA:
			glueByHost[host] = append(glueByHost[host], a.Addr)
		}
	}
	var needsResolve []string
	for _, host := range d.NSHosts() {
		addrs := glueByHost[dnswire.CanonicalName(host)]
		if len(addrs) == 0 {
			needsResolve = append(needsResolve, host)
			continue
		}
		for _, a := range addrs {
			out = append(out, netip.AddrPortFrom(a, r.Port()))
		}
	}
	// Only chase glue-less (out-of-bailiwick) NS hosts when the glue
	// gave us nothing — resolving them eagerly can recurse through
	// mutually-hosted zones, and for descending the tree any one
	// reachable server suffices.
	if len(out) == 0 {
		for _, host := range needsResolve {
			addrs, err := r.AddrsOf(ctx, host)
			if err != nil {
				continue // a lame NS host; others may still work
			}
			for _, a := range addrs {
				out = append(out, netip.AddrPortFrom(a, r.Port()))
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no addresses for NS of %s", ErrNoServers, d.Zone)
	}
	return out, nil
}

// queryAny tries servers until one responds, healthy addresses first
// (the circuit breaker deprioritises — never skips — tripped servers).
// On total failure the per-server errors are joined, so callers can
// tell "all timed out" from "all answered SERVFAIL" with errors.Is.
func (r *Resolver) queryAny(ctx context.Context, servers []netip.AddrPort, name string, qtype dnswire.Type) (*dnswire.Message, netip.AddrPort, error) {
	if len(servers) == 0 {
		return nil, netip.AddrPort{}, ErrNoServers
	}
	var errs []error
	for _, s := range r.health.order(servers) {
		resp, err := r.Exchange(ctx, s, name, qtype)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if resp.Rcode == dnswire.RcodeServFail {
			errs = append(errs, fmt.Errorf("%s: %w", s, ErrServFail))
			continue
		}
		return resp, s, nil
	}
	return nil, netip.AddrPort{}, fmt.Errorf("%w: %w", ErrNoServers, errors.Join(errs...))
}

// cacheZone records the authoritative servers discovered for a real
// zone cut. With a Cache installed the record lands in the shared
// positive cache (visible to every Delegation walk); otherwise in the
// resolver-local legacy map used only by lookupOnce.
func (r *Resolver) cacheZone(zoneName string, servers []netip.AddrPort) {
	if r.Cache != nil {
		r.Cache.posStore(zoneName, posEntry{servers: servers, apex: zoneName})
		return
	}
	if r.Stateless {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.zoneCache == nil {
		r.zoneCache = make(map[string][]netip.AddrPort)
	}
	r.zoneCache[zoneName] = servers
}

// cachedZone returns the cached servers for zoneName plus the apex of
// the zone they actually serve (differs from zoneName only for alias
// entries in the shared cache).
func (r *Resolver) cachedZone(zoneName string) ([]netip.AddrPort, string, bool) {
	if r.Cache != nil {
		e, ok := r.Cache.posLookup(zoneName)
		return e.servers, e.apex, ok
	}
	if r.Stateless {
		return nil, zoneName, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.zoneCache[zoneName]
	return s, zoneName, ok
}

// Lookup iteratively resolves (name, qtype) and returns the answer
// section of the final response together with its rcode. CNAMEs are
// followed across zones.
func (r *Resolver) Lookup(ctx context.Context, name string, qtype dnswire.Type) ([]dnswire.RR, dnswire.Rcode, error) {
	name = dnswire.CanonicalName(name)
	for aliasDepth := 0; aliasDepth < 8; aliasDepth++ {
		answer, rcode, err := r.lookupOnce(ctx, name, qtype)
		if err != nil {
			return nil, rcode, err
		}
		if len(answer) > 0 {
			// Follow a terminal CNAME if the desired type is absent.
			var want []dnswire.RR
			var cname string
			for _, rr := range answer {
				if rr.Type() == qtype {
					want = append(want, rr)
				}
				if rr.Type() == dnswire.TypeCNAME {
					cname = rr.Data.(*dnswire.CNAME).Target
				}
			}
			if len(want) > 0 || cname == "" || qtype == dnswire.TypeCNAME {
				return answer, rcode, nil
			}
			name = cname
			continue
		}
		return answer, rcode, nil
	}
	return nil, dnswire.RcodeNoError, ErrLoop
}

// lookupOnce descends from the closest cached zone (or the root) to an
// authoritative answer for name.
func (r *Resolver) lookupOnce(ctx context.Context, name string, qtype dnswire.Type) ([]dnswire.RR, dnswire.Rcode, error) {
	servers := r.Roots
	currentZone := "."
	// Start from the deepest cached enclosing zone.
	for z := name; ; z = dnswire.Parent(z) {
		if s, apex, ok := r.cachedZone(z); ok {
			servers, currentZone = s, apex
			break
		}
		if z == "." {
			break
		}
	}
	for depth := 0; depth < r.maxDepth(); depth++ {
		resp, server, err := r.queryAny(ctx, servers, name, qtype)
		if err != nil {
			return nil, dnswire.RcodeServFail, err
		}
		if resp.Rcode == dnswire.RcodeNXDomain {
			return nil, resp.Rcode, fmt.Errorf("%w: %s", ErrNXDomain, name)
		}
		if resp.Rcode != dnswire.RcodeNoError {
			return nil, resp.Rcode, fmt.Errorf("resolver: %s from %s for %s/%s", resp.Rcode, server, name, qtype)
		}
		if resp.Authoritative || len(resp.Answer) > 0 {
			return resp.Answer, resp.Rcode, nil
		}
		cut, _ := referralCut(resp)
		if cut == "" {
			return nil, resp.Rcode, fmt.Errorf("%w: dead end at %s for %s", ErrLameReferal, server, name)
		}
		if !dnswire.IsSubdomain(cut, currentZone) || cut == currentZone || !dnswire.IsSubdomain(name, cut) {
			return nil, resp.Rcode, fmt.Errorf("%w: referral to %s from %s (serving %s) for %s",
				ErrLoop, cut, server, currentZone, name)
		}
		d := &Delegation{Zone: cut}
		for _, rr := range resp.Authority {
			if rr.Type() == dnswire.TypeNS && dnswire.CanonicalName(rr.Name) == cut {
				d.ParentNS = append(d.ParentNS, rr)
			}
		}
		for _, rr := range resp.Additional {
			if rr.Type() == dnswire.TypeA || rr.Type() == dnswire.TypeAAAA {
				d.Glue = append(d.Glue, rr)
			}
		}
		next, err := r.serversForDelegation(ctx, d)
		if err != nil {
			return nil, resp.Rcode, err
		}
		servers = next
		currentZone = cut
		r.cacheZone(cut, next)
	}
	return nil, dnswire.RcodeNoError, ErrLoop
}

// AddrsOf resolves a hostname to all of its A and AAAA addresses. It
// refuses re-entrant resolution of a host already being resolved on
// the same resolution chain (glue-less mutual hosting would loop
// forever otherwise). Without a Cache the guard is a process-global
// inflight map, which also errors on two *different* chains resolving
// the same host concurrently; with a Cache installed those coalesce
// onto one execution instead.
func (r *Resolver) AddrsOf(ctx context.Context, host string) ([]netip.Addr, error) {
	host = dnswire.CanonicalName(host)
	if r.Cache != nil {
		return r.addrsOfCached(ctx, host)
	}
	if r.Stateless {
		// Per-chain cycle guard only: the global inflight map would make
		// two chains resolving the same host concurrently fail each
		// other, reintroducing scheduling-dependent results.
		ctx, visited := withVisited(ctx)
		if visited[host] {
			return nil, fmt.Errorf("%w: resolution cycle on %s", ErrLoop, host)
		}
		visited[host] = true
		return r.resolveAddrs(ctx, host)
	}
	r.mu.RLock()
	cached, ok := r.addrCache[host]
	r.mu.RUnlock()
	if ok {
		return cached, nil
	}
	r.mu.Lock()
	if r.inflight == nil {
		r.inflight = make(map[string]bool)
	}
	if r.inflight[host] {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: resolution cycle on %s", ErrLoop, host)
	}
	r.inflight[host] = true
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.inflight, host)
		r.mu.Unlock()
	}()
	addrs, err := r.resolveAddrs(ctx, host)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.addrCache == nil {
		r.addrCache = make(map[string][]netip.Addr)
	}
	r.addrCache[host] = addrs
	r.mu.Unlock()
	return addrs, nil
}

// addrsOfCached is AddrsOf behind the shared cache: hit the address
// cache, guard against same-chain cycles via the context's visited
// set, and coalesce concurrent chains through the flight group.
func (r *Resolver) addrsOfCached(ctx context.Context, host string) ([]netip.Addr, error) {
	if addrs, ok := r.Cache.addrLookup(host); ok {
		r.noteCacheHit(ctx, "a:"+host)
		return addrs, nil
	}
	r.noteCacheMiss(ctx, "a:"+host)
	ctx, chain := withChain(ctx)
	ctx, visited := withVisited(ctx)
	if visited[host] {
		return nil, fmt.Errorf("%w: resolution cycle on %s", ErrLoop, host)
	}
	visited[host] = true
	defer delete(visited, host)
	v, shared, err := r.flight.Do(ctx, chain, "a:"+host, func() (any, error) {
		addrs, err := r.resolveAddrs(ctx, host)
		if err != nil {
			return nil, err
		}
		r.Cache.addrStore(host, addrs)
		return addrs, nil
	})
	if shared {
		r.noteCoalesced(ctx, "a:"+host)
	}
	if err != nil {
		return nil, err
	}
	return v.([]netip.Addr), nil
}

// resolveAddrs issues the A and AAAA lookups for host.
func (r *Resolver) resolveAddrs(ctx context.Context, host string) ([]netip.Addr, error) {
	var addrs []netip.Addr
	for _, qtype := range []dnswire.Type{dnswire.TypeA, dnswire.TypeAAAA} {
		answer, _, err := r.Lookup(ctx, host, qtype)
		if err != nil {
			continue
		}
		for _, rr := range answer {
			switch a := rr.Data.(type) {
			case *dnswire.A:
				addrs = append(addrs, a.Addr)
			case *dnswire.AAAA:
				addrs = append(addrs, a.Addr)
			}
		}
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("%w: no addresses for %s", ErrNoServers, host)
	}
	return addrs, nil
}
