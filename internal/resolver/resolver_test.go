package resolver

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"dnssecboot/internal/dnssec"
	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/rate"
	"dnssecboot/internal/server"
	"dnssecboot/internal/transport"
	"dnssecboot/internal/zone"
)

// miniNet builds a small simulated internet:
//
//	.            on 198.41.0.4       (root)
//	com., net.   on 192.0.32.1       (gtld)
//	example.net. on 192.0.2.53       (hosts ns1/ns2.example.net glue-less targets)
//	example.com. on 192.0.2.61, .62  (the zone under test)
func miniNet(t *testing.T) (*transport.MemNetwork, *Resolver, *zone.Zone) {
	t.Helper()
	net := transport.NewMemNetwork(1)

	rootAddr := netip.MustParseAddr("198.41.0.4")
	gtldAddr := netip.MustParseAddr("192.0.32.1")
	exnetAddr := netip.MustParseAddr("192.0.2.53")
	excom1 := netip.MustParseAddr("192.0.2.61")
	excom2 := netip.MustParseAddr("192.0.2.62")

	root := zone.New(".")
	root.SetBasics("a.root-servers.net.", []string{"a.root-servers.net."}, 1)
	root.MustAdd(dnswire.RR{Name: "com.", TTL: 172800, Data: dnswire.NewNS("ns.gtld.")})
	root.MustAdd(dnswire.RR{Name: "net.", TTL: 172800, Data: dnswire.NewNS("ns.gtld.")})
	root.MustAdd(dnswire.RR{Name: "ns.gtld.", TTL: 172800, Data: &dnswire.A{Addr: gtldAddr}})
	// gtld. must also be delegated so ns.gtld. glue is reachable.
	root.MustAdd(dnswire.RR{Name: "gtld.", TTL: 172800, Data: dnswire.NewNS("ns.gtld.")})

	com := zone.New("com.")
	com.SetBasics("ns.gtld.", []string{"ns.gtld."}, 1)
	com.MustAdd(dnswire.RR{Name: "example.com.", TTL: 172800, Data: dnswire.NewNS("ns1.example.net.")})
	com.MustAdd(dnswire.RR{Name: "example.com.", TTL: 172800, Data: dnswire.NewNS("ns2.example.net.")})
	com.MustAdd(dnswire.RR{Name: "example.com.", TTL: 86400, Data: &dnswire.DS{
		KeyTag: 4711, Algorithm: dnswire.AlgECDSAP256SHA256, DigestType: dnswire.DigestSHA256, Digest: make([]byte, 32)}})

	netz := zone.New("net.")
	netz.SetBasics("ns.gtld.", []string{"ns.gtld."}, 1)
	netz.MustAdd(dnswire.RR{Name: "example.net.", TTL: 172800, Data: dnswire.NewNS("ns.example.net.")})
	netz.MustAdd(dnswire.RR{Name: "ns.example.net.", TTL: 172800, Data: &dnswire.A{Addr: exnetAddr}})

	exnet := zone.New("example.net.")
	exnet.SetBasics("ns.example.net.", []string{"ns.example.net."}, 1)
	exnet.MustAdd(dnswire.RR{Name: "ns.example.net.", TTL: 3600, Data: &dnswire.A{Addr: exnetAddr}})
	exnet.MustAdd(dnswire.RR{Name: "ns1.example.net.", TTL: 3600, Data: &dnswire.A{Addr: excom1}})
	exnet.MustAdd(dnswire.RR{Name: "ns2.example.net.", TTL: 3600, Data: &dnswire.A{Addr: excom2}})

	excom := zone.New("example.com.")
	excom.SetBasics("ns1.example.net.", []string{"ns1.example.net.", "ns2.example.net."}, 1)
	excom.MustAdd(dnswire.RR{Name: "www.example.com.", TTL: 300, Data: &dnswire.A{Addr: netip.MustParseAddr("203.0.113.80")}})
	excom.MustAdd(dnswire.RR{Name: "alias.example.com.", TTL: 300, Data: dnswire.NewCNAME("www.example.com.")})
	excom.MustAdd(dnswire.RR{Name: "x.example.com.", TTL: 300, Data: dnswire.NewCNAME("target.example.net.")})
	exnet.MustAdd(dnswire.RR{Name: "target.example.net.", TTL: 300, Data: &dnswire.A{Addr: netip.MustParseAddr("203.0.113.81")}})

	rootSrv := server.New(1)
	rootSrv.AddZone(root)
	gtldSrv := server.New(2)
	gtldSrv.AddZone(com)
	gtldSrv.AddZone(netz)
	exnetSrv := server.New(3)
	exnetSrv.AddZone(exnet)
	excomSrv := server.New(4)
	excomSrv.AddZone(excom)

	net.Register(rootAddr, rootSrv)
	net.Register(gtldAddr, gtldSrv)
	net.Register(exnetAddr, exnetSrv)
	net.Register(excom1, excomSrv)
	net.Register(excom2, excomSrv)

	r := &Resolver{
		Net:   net,
		Roots: []netip.AddrPort{netip.AddrPortFrom(rootAddr, 53)},
	}
	return net, r, excom
}

func TestDelegationWalk(t *testing.T) {
	_, r, _ := miniNet(t)
	d, err := r.Delegation(context.Background(), "example.com.")
	if err != nil {
		t.Fatalf("Delegation: %v", err)
	}
	if d.Zone != "example.com." {
		t.Errorf("zone = %s", d.Zone)
	}
	if len(d.ParentNS) != 2 {
		t.Errorf("parent NS = %d", len(d.ParentNS))
	}
	if len(d.DS) != 1 {
		t.Errorf("DS = %d", len(d.DS))
	}
	if d.ParentZone != "com." {
		t.Errorf("parent zone = %s", d.ParentZone)
	}
	hosts := d.NSHosts()
	if len(hosts) != 2 || hosts[0] != "ns1.example.net." {
		t.Errorf("NS hosts = %v", hosts)
	}
}

func TestDelegationNXDomain(t *testing.T) {
	_, r, _ := miniNet(t)
	_, err := r.Delegation(context.Background(), "nonexistent.com.")
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestLookupAcrossReferrals(t *testing.T) {
	_, r, _ := miniNet(t)
	answer, rcode, err := r.Lookup(context.Background(), "www.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if rcode != dnswire.RcodeNoError || len(answer) != 1 {
		t.Fatalf("rcode=%s answers=%d", rcode, len(answer))
	}
	if answer[0].Data.(*dnswire.A).Addr.String() != "203.0.113.80" {
		t.Errorf("addr = %s", answer[0].Data.(*dnswire.A).Addr)
	}
}

func TestLookupFollowsCNAMEWithinZone(t *testing.T) {
	_, r, _ := miniNet(t)
	answer, _, err := r.Lookup(context.Background(), "alias.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	types := map[dnswire.Type]int{}
	for _, rr := range answer {
		types[rr.Type()]++
	}
	if types[dnswire.TypeCNAME] != 1 || types[dnswire.TypeA] != 1 {
		t.Errorf("answer types = %v", types)
	}
}

func TestLookupFollowsCNAMEAcrossZones(t *testing.T) {
	_, r, _ := miniNet(t)
	answer, _, err := r.Lookup(context.Background(), "x.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	foundA := false
	for _, rr := range answer {
		if a, ok := rr.Data.(*dnswire.A); ok && a.Addr.String() == "203.0.113.81" {
			foundA = true
		}
	}
	if !foundA {
		t.Errorf("cross-zone CNAME target not resolved: %+v", answer)
	}
}

func TestAddrsOfOutOfBailiwickNS(t *testing.T) {
	_, r, _ := miniNet(t)
	addrs, err := r.AddrsOf(context.Background(), "ns1.example.net.")
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0].String() != "192.0.2.61" {
		t.Errorf("addrs = %v", addrs)
	}
	// Cached second call must not add queries.
	before := r.Queries()
	if _, err := r.AddrsOf(context.Background(), "ns1.example.net."); err != nil {
		t.Fatal(err)
	}
	if r.Queries() != before {
		t.Error("AddrsOf cache miss on repeat")
	}
}

func TestLookupNXDomain(t *testing.T) {
	_, r, _ := miniNet(t)
	_, rcode, err := r.Lookup(context.Background(), "missing.example.com.", dnswire.TypeA)
	if err == nil {
		t.Fatal("expected NXDOMAIN error")
	}
	if rcode != dnswire.RcodeNXDomain {
		t.Errorf("rcode = %s", rcode)
	}
}

func TestQueryCountingAndRateLimit(t *testing.T) {
	_, r, _ := miniNet(t)
	r.Limits = rate.NewPerKey(0, 0) // unlimited but exercised
	before := r.Queries()
	if _, _, err := r.Lookup(context.Background(), "www.example.com.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if r.Queries() <= before {
		t.Error("query counter did not advance")
	}
}

func TestDelegationCacheSpeedsSecondLookup(t *testing.T) {
	_, r, _ := miniNet(t)
	if _, _, err := r.Lookup(context.Background(), "www.example.com.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	mid := r.Queries()
	if _, _, err := r.Lookup(context.Background(), "alias.example.com.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	// Second lookup should reuse the cached example.com. servers: at
	// most a couple of queries, not a full root walk.
	if r.Queries()-mid > 3 {
		t.Errorf("second lookup used %d queries", r.Queries()-mid)
	}
}

func TestQueryAnySkipsDeadServers(t *testing.T) {
	net, r, _ := miniNet(t)
	// Prepend an unreachable root; resolution must still succeed.
	dead := netip.AddrPortFrom(netip.MustParseAddr("203.0.113.250"), 53)
	r.Roots = append([]netip.AddrPort{dead}, r.Roots...)
	_ = net
	if _, _, err := r.Lookup(context.Background(), "www.example.com.", dnswire.TypeA); err != nil {
		t.Fatalf("Lookup with dead first root: %v", err)
	}
}

// TestDelegationParentZoneFromDSSig covers the single-listener layout
// (one server hosting the whole hierarchy): no referral is ever seen,
// so the delegating zone must be recovered from the DS RRSIG's signer.
func TestDelegationParentZoneFromDSSig(t *testing.T) {
	now := time.Date(2025, 4, 15, 12, 0, 0, 0, time.UTC)
	sign := zone.SignConfig{Now: now, Algorithm: dnswire.AlgEd25519}
	addr := netip.MustParseAddr("192.0.2.1")

	root := zone.New(".")
	root.SetBasics("ns.root.", []string{"ns.root."}, 1)
	root.MustAdd(dnswire.RR{Name: "ns.root.", TTL: 1, Data: &dnswire.A{Addr: addr}})
	if err := root.GenerateKeys(sign, nil); err != nil {
		t.Fatal(err)
	}
	com := zone.New("com.")
	com.SetBasics("ns.root.", []string{"ns.root."}, 1)
	if err := com.GenerateKeys(sign, nil); err != nil {
		t.Fatal(err)
	}
	child := zone.New("kid.com.")
	child.SetBasics("ns.root.", []string{"ns.root."}, 1)
	if err := child.GenerateKeys(sign, nil); err != nil {
		t.Fatal(err)
	}
	// Delegations with DS.
	addDS := func(parent, c *zone.Zone) {
		ds, err := dnssec.DSFromKey(c.Origin, c.Keys[0].DNSKEY(), dnswire.DigestSHA256)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range c.NSHosts() {
			parent.MustAdd(dnswire.RR{Name: c.Origin, TTL: 1, Data: dnswire.NewNS(h)})
		}
		parent.MustAdd(dnswire.RR{Name: c.Origin, TTL: 1, Data: ds})
	}
	addDS(root, com)
	addDS(com, child)
	for _, z := range []*zone.Zone{child, com, root} {
		if err := z.Sign(sign); err != nil {
			t.Fatal(err)
		}
	}
	srv := server.New(1)
	srv.AddZone(root)
	srv.AddZone(com)
	srv.AddZone(child)
	net := transport.NewMemNetwork(1)
	net.Register(addr, srv)

	r := &Resolver{Net: net, Roots: []netip.AddrPort{netip.AddrPortFrom(addr, 53)}}
	d, err := r.Delegation(context.Background(), "kid.com.")
	if err != nil {
		t.Fatal(err)
	}
	if d.ParentZone != "com." {
		t.Errorf("ParentZone = %s, want com. (from the DS RRSIG signer)", d.ParentZone)
	}
	if len(d.DS) != 1 || len(d.DSSigs) == 0 {
		t.Errorf("DS=%d sigs=%d", len(d.DS), len(d.DSSigs))
	}
}
