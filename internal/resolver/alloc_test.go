//go:build !race

// Allocation-regression guard for the resolver single-query path.
// Excluded under the race detector, whose instrumentation inflates
// allocation counts.
package resolver

import (
	"context"
	"testing"

	"dnssecboot/internal/dnswire"
)

// TestExchangeAllocBudget pins the per-query allocation budget of a
// full resolver exchange over the in-memory network. Steady state
// measures ~12 allocs/op (the returned response message and the
// handler's answer construction; query build, rate limiting, and both
// codec directions are allocation-free). The ceiling leaves modest
// headroom — a regression that reintroduces per-query scratch (query
// messages, compression maps, read buffers) costs far more than 8
// allocations.
func TestExchangeAllocBudget(t *testing.T) {
	r, server := benchExchangeSetup()
	ctx := context.Background()
	for i := 0; i < 5; i++ { // warm pools and caches
		if _, err := r.Exchange(ctx, server, "www.example.com.", dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		resp, err := r.Exchange(ctx, server, "www.example.com.", dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Answer) != 1 {
			t.Fatalf("answers = %d", len(resp.Answer))
		}
	})
	if avg > 20 {
		t.Errorf("resolver exchange allocates %.1f/op, budget 20", avg)
	}
}
