package resolver

import (
	"context"
	"net/netip"
	"testing"

	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/rate"
	"dnssecboot/internal/server"
	"dnssecboot/internal/transport"
	"dnssecboot/internal/zone"
)

// benchExchangeSetup builds a one-server simulated network serving an
// A record, with a (generous) per-server rate limit installed so the
// benchmark exercises the real query path: limiter, pooled query
// build, MemNetwork codec round-trip.
func benchExchangeSetup() (*Resolver, netip.AddrPort) {
	addr := netip.MustParseAddr("192.0.2.61")
	z := zone.New("example.com.")
	z.SetBasics("ns1.example.com.", []string{"ns1.example.com."}, 1)
	z.MustAdd(dnswire.RR{Name: "www.example.com.", TTL: 300,
		Data: &dnswire.A{Addr: netip.MustParseAddr("203.0.113.80")}})
	srv := server.New(1)
	srv.AddZone(z)
	net := transport.NewMemNetwork(1)
	net.Register(addr, srv)
	r := &Resolver{
		Net:    net,
		Limits: rate.NewPerKey(1e9, 1e6),
	}
	return r, netip.AddrPortFrom(addr, 53)
}

// BenchmarkQueryHotPath measures one full resolver exchange against the
// in-memory network: rate limit, query build, pack, server-side parse,
// handler, response pack and parse. The bench gate tracks its allocs/op.
func BenchmarkQueryHotPath(b *testing.B) {
	r, server := benchExchangeSetup()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := r.Exchange(ctx, server, "www.example.com.", dnswire.TypeA)
		if err != nil {
			b.Fatal(err)
		}
		if len(resp.Answer) != 1 {
			b.Fatalf("answers = %d", len(resp.Answer))
		}
	}
}

// trailingExchanger returns a canned response reporting trailing
// garbage, as a malformed responder would produce.
type trailingExchanger struct{ trailing int }

func (t *trailingExchanger) Exchange(_ context.Context, _ netip.AddrPort, q *dnswire.Message) (*dnswire.Message, error) {
	return &dnswire.Message{ID: q.ID, Response: true, Question: q.Question,
		TrailingBytes: t.trailing}, nil
}

// TestExchangeCountsTrailingBytes pins the resolver-side surfacing of
// dnswire's TrailingBytes: responses carrying trailing garbage must
// accumulate into the resolver_trailing_bytes_total counter so the
// classifier can see malformed responders.
func TestExchangeCountsTrailingBytes(t *testing.T) {
	r := &Resolver{Net: &trailingExchanger{trailing: 7}}
	server := netip.MustParseAddrPort("192.0.2.1:53")
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := r.Exchange(ctx, server, "example.com.", dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.TrailingBytes(); got != 21 {
		t.Errorf("TrailingBytes = %d, want 21", got)
	}
}
