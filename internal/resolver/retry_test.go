package resolver

import (
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/transport"
)

// flakyWorld registers a single answering server at addr behind the
// given fault profile and returns a resolver pointed at it.
func flakyWorld(t *testing.T, profile transport.FaultProfile) (*Resolver, netip.AddrPort) {
	t.Helper()
	net := transport.NewMemNetwork(1)
	addr := netip.MustParseAddr("192.0.2.10")
	net.Register(addr, transport.HandlerFunc(func(_ context.Context, _ netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
		m := &dnswire.Message{ID: q.ID, Response: true, Authoritative: true, Question: q.Question}
		m.Answer = []dnswire.RR{{Name: q.Question[0].Name, Class: dnswire.ClassIN, TTL: 60,
			Data: &dnswire.A{Addr: netip.MustParseAddr("203.0.113.1")}}}
		return m, nil
	}))
	net.SetFault(addr, profile)
	r := &Resolver{Net: net, Roots: []netip.AddrPort{netip.AddrPortFrom(addr, 53)}}
	return r, netip.AddrPortFrom(addr, 53)
}

func TestExchangeRetriesFlakyServer(t *testing.T) {
	r, server := flakyWorld(t, transport.FaultProfile{FlakyEveryN: 3})
	r.Retry = &RetryPolicy{Attempts: 3}
	resp, err := r.Exchange(context.Background(), server, "www.test.", dnswire.TypeA)
	if err != nil {
		t.Fatalf("Exchange with 3 attempts against answer-every-3rd server: %v", err)
	}
	if len(resp.Answer) != 1 {
		t.Errorf("answers = %d", len(resp.Answer))
	}
	if r.Queries() != 3 || r.Retries() != 2 || r.GaveUp() != 0 {
		t.Errorf("queries=%d retries=%d gaveUp=%d, want 3/2/0", r.Queries(), r.Retries(), r.GaveUp())
	}
}

func TestExchangeGivesUpAfterAttempts(t *testing.T) {
	r, server := flakyWorld(t, transport.FaultProfile{FlakyEveryN: 5})
	r.Retry = &RetryPolicy{Attempts: 3}
	_, err := r.Exchange(context.Background(), server, "www.test.", dnswire.TypeA)
	if !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("err = %v, want wrapped ErrTimeout", err)
	}
	if r.GaveUp() != 1 || r.Retries() != 2 {
		t.Errorf("gaveUp=%d retries=%d, want 1/2", r.GaveUp(), r.Retries())
	}
}

func TestExchangeServFailRetriedThenSurfaced(t *testing.T) {
	r, server := flakyWorld(t, transport.FaultProfile{ServFail: true})
	r.Retry = &RetryPolicy{Attempts: 3}
	resp, err := r.Exchange(context.Background(), server, "www.test.", dnswire.TypeA)
	if err != nil {
		t.Fatalf("persistent SERVFAIL must surface as a response, got err %v", err)
	}
	if resp.Rcode != dnswire.RcodeServFail {
		t.Errorf("rcode = %s", resp.Rcode)
	}
	if r.Queries() != 3 || r.GaveUp() != 1 {
		t.Errorf("queries=%d gaveUp=%d, want 3/1 (SERVFAIL is transient)", r.Queries(), r.GaveUp())
	}
}

func TestExchangeHardFailureNotRetried(t *testing.T) {
	r, _ := flakyWorld(t, transport.FaultProfile{})
	r.Retry = &RetryPolicy{Attempts: 4}
	dead := netip.AddrPortFrom(netip.MustParseAddr("198.51.100.99"), 53)
	_, err := r.Exchange(context.Background(), dead, "www.test.", dnswire.TypeA)
	if !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	if r.Queries() != 1 || r.Retries() != 0 {
		t.Errorf("queries=%d retries=%d, want 1/0 (no retry on hard failure)", r.Queries(), r.Retries())
	}
}

func TestRetryBackoffDeterministicJitter(t *testing.T) {
	p := &RetryPolicy{Attempts: 5, BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second, Jitter: 0.5, Seed: 9}
	server := netip.AddrPortFrom(netip.MustParseAddr("192.0.2.1"), 53)
	for attempt := 1; attempt <= 4; attempt++ {
		a := p.backoffFor(server, "x.test.", attempt)
		b := p.backoffFor(server, "x.test.", attempt)
		if a != b {
			t.Errorf("attempt %d: backoff not deterministic (%v vs %v)", attempt, a, b)
		}
		full := p.BaseBackoff << (attempt - 1)
		if full > p.MaxBackoff {
			full = p.MaxBackoff
		}
		if a > full || a < full/2 {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, a, full/2, full)
		}
	}
	// Different seeds shift the jitter.
	q := &RetryPolicy{Attempts: 5, BaseBackoff: 100 * time.Millisecond, Jitter: 0.5, Seed: 10}
	same := 0
	for attempt := 1; attempt <= 4; attempt++ {
		if p.backoffFor(server, "x.test.", attempt) == q.backoffFor(server, "x.test.", attempt) {
			same++
		}
	}
	if same == 4 {
		t.Error("jitter ignored the seed")
	}
}

// multiServerNet builds a resolver whose roots are n addresses, each
// with its own handler.
func multiServerNet(t *testing.T, handlers ...transport.Handler) (*Resolver, []netip.AddrPort) {
	t.Helper()
	net := transport.NewMemNetwork(1)
	var servers []netip.AddrPort
	for i, h := range handlers {
		addr := netip.AddrPortFrom(netip.MustParseAddr("192.0.2.0").Next(), 53)
		for j := 0; j < i; j++ {
			addr = netip.AddrPortFrom(addr.Addr().Next(), 53)
		}
		net.Register(addr.Addr(), h)
		servers = append(servers, addr)
	}
	return &Resolver{Net: net, Roots: servers}, servers
}

func dropHandler() transport.Handler {
	return transport.HandlerFunc(func(context.Context, netip.Addr, *dnswire.Message) (*dnswire.Message, error) {
		return nil, nil // silent drop → ErrTimeout at the client
	})
}

func rcodeHandler(rc dnswire.Rcode) transport.Handler {
	return transport.HandlerFunc(func(_ context.Context, _ netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
		return &dnswire.Message{ID: q.ID, Response: true, Rcode: rc, Question: q.Question}, nil
	})
}

func TestQueryAnyJoinsPerServerErrors(t *testing.T) {
	cases := []struct {
		name         string
		handlers     []transport.Handler
		wantTimeout  bool
		wantServFail bool
	}{
		{"all timeout", []transport.Handler{dropHandler(), dropHandler()}, true, false},
		{"all servfail", []transport.Handler{rcodeHandler(dnswire.RcodeServFail), rcodeHandler(dnswire.RcodeServFail)}, false, true},
		{"mixed", []transport.Handler{dropHandler(), rcodeHandler(dnswire.RcodeServFail)}, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, servers := multiServerNet(t, tc.handlers...)
			_, _, err := r.queryAny(context.Background(), servers, "x.test.", dnswire.TypeA)
			if err == nil {
				t.Fatal("expected total failure")
			}
			if !errors.Is(err, ErrNoServers) {
				t.Errorf("err = %v, want wrapped ErrNoServers", err)
			}
			if got := errors.Is(err, transport.ErrTimeout); got != tc.wantTimeout {
				t.Errorf("errors.Is(ErrTimeout) = %v, want %v (err: %v)", got, tc.wantTimeout, err)
			}
			if got := errors.Is(err, ErrServFail); got != tc.wantServFail {
				t.Errorf("errors.Is(ErrServFail) = %v, want %v (err: %v)", got, tc.wantServFail, err)
			}
		})
	}
}

func TestHealthTrackerDeprioritisesAndRecovers(t *testing.T) {
	r, server := flakyWorld(t, transport.FaultProfile{Down: false})
	good := server
	bad := netip.AddrPortFrom(netip.MustParseAddr("198.51.100.50"), 53)

	for i := 0; i < trippedAfter; i++ {
		r.health.note(bad, false)
	}
	if !r.ServerTripped(bad) {
		t.Fatal("server not tripped after consecutive failures")
	}
	ordered := r.health.order([]netip.AddrPort{bad, good})
	if ordered[0] != good || ordered[1] != bad {
		t.Errorf("order = %v, want healthy first", ordered)
	}
	// Deprioritised, not blacklisted: still present, and one success
	// restores standing.
	r.health.note(bad, true)
	if r.ServerTripped(bad) {
		t.Error("success did not reset the breaker")
	}
	ordered = r.health.order([]netip.AddrPort{bad, good})
	if ordered[0] != bad {
		t.Errorf("recovered server not restored to input order: %v", ordered)
	}
}

func TestHealthOrderStableWhenAllHealthy(t *testing.T) {
	var h healthTracker
	servers := []netip.AddrPort{
		netip.AddrPortFrom(netip.MustParseAddr("192.0.2.1"), 53),
		netip.AddrPortFrom(netip.MustParseAddr("192.0.2.2"), 53),
	}
	got := h.order(servers)
	if &got[0] != &servers[0] {
		t.Error("healthy path should return the input slice unchanged")
	}
}
