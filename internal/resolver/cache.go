// Resolver-wide caching and deduplication. The paper's scan resolves
// the dependency tree of 287.6 M zones, which is only tractable because
// shared state — TLD delegations, NS address sets — is resolved once,
// not once per zone (the property that makes ZDNS-style toolkits viable
// at Internet scale). This file provides that layer:
//
//   - a positive delegation cache keyed by zone apex, so the root→TLD
//     walk happens once per TLD instead of once per target zone;
//   - a bounded negative cache for NXDOMAIN and lame-delegation
//     results, so known-dead parents fail fast;
//   - a singleflight group that collapses concurrent identical
//     Delegation / AddrsOf / zone-server walks, so 64 parallel zone
//     scans sharing a TLD issue one upstream query stream instead of
//     64. The group detects wait cycles between resolution chains
//     (mutually glue-less hosting resolved from two goroutines) and
//     falls back to duplicated local work rather than deadlocking.
//
// The layer is opt-in: a Resolver with a nil Cache behaves exactly like
// the historical per-field zoneCache/addrCache code path.
package resolver

import (
	"context"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"dnssecboot/internal/obs"
)

// Cache is the shared state behind a Resolver's caching layer. Create
// it with NewCache and install it on Resolver.Cache before first use.
type Cache struct {
	// NegTTL bounds how long negative (NXDOMAIN / lame delegation)
	// results are served from cache. Zero means 60 s.
	NegTTL time.Duration
	// MaxNegative bounds the number of negative entries (FIFO
	// eviction). Zero means 4096.
	MaxNegative int

	now func() time.Time

	mu       sync.Mutex
	pos      map[string]posEntry
	addrs    map[string][]netip.Addr
	neg      map[string]negEntry
	negOrder []string
}

// posEntry is one positive delegation-cache record: the authoritative
// server addresses for a name, and the apex of the zone they actually
// serve (the name itself for real cuts; the enclosing zone's apex for
// names that turned out not to be cuts).
type posEntry struct {
	servers []netip.AddrPort
	apex    string
}

type negEntry struct {
	err     error
	expires time.Time
}

// NewCache returns an empty cache. negTTL bounds negative-entry
// lifetime; zero uses the 60 s default.
func NewCache(negTTL time.Duration) *Cache {
	return &Cache{NegTTL: negTTL, now: time.Now}
}

// SetClock injects a fake clock; for tests.
func (c *Cache) SetClock(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
}

func (c *Cache) negTTL() time.Duration {
	if c.NegTTL <= 0 {
		return 60 * time.Second
	}
	return c.NegTTL
}

func (c *Cache) maxNegative() int {
	if c.MaxNegative <= 0 {
		return 4096
	}
	return c.MaxNegative
}

func (c *Cache) posLookup(zone string) (posEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.pos[zone]
	return e, ok
}

func (c *Cache) posStore(zone string, e posEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pos == nil {
		c.pos = make(map[string]posEntry)
	}
	c.pos[zone] = e
}

func (c *Cache) addrLookup(host string) ([]netip.Addr, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.addrs[host]
	return a, ok
}

func (c *Cache) addrStore(host string, addrs []netip.Addr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.addrs == nil {
		c.addrs = make(map[string][]netip.Addr)
	}
	c.addrs[host] = addrs
}

func (c *Cache) negLookup(zone string) (error, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.neg[zone]
	if !ok {
		return nil, false
	}
	if c.now().After(e.expires) {
		delete(c.neg, zone)
		return nil, false
	}
	return e.err, true
}

func (c *Cache) negStore(zone string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.neg == nil {
		c.neg = make(map[string]negEntry)
	}
	if _, exists := c.neg[zone]; !exists {
		c.negOrder = append(c.negOrder, zone)
	}
	c.neg[zone] = negEntry{err: err, expires: c.now().Add(c.negTTL())}
	for len(c.neg) > c.maxNegative() && len(c.negOrder) > 0 {
		oldest := c.negOrder[0]
		c.negOrder = c.negOrder[1:]
		delete(c.neg, oldest)
	}
}

// NegativeLen reports the number of live negative entries (telemetry
// and tests).
func (c *Cache) NegativeLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.neg)
}

// --- resolution chains ---
//
// A chain is one top-level resolver call tree (one Delegation, Lookup
// or AddrsOf from outside). The chain id travels in the context so the
// singleflight group can detect wait cycles between chains, and the
// per-chain visited set replaces the old process-global inflight map:
// a host being resolved twice on the SAME chain is a genuine cycle,
// while two different chains resolving the same host should coalesce,
// not error.

type chainIDKey struct{}
type visitedKey struct{}

var chainCounter atomic.Uint64

func withChain(ctx context.Context) (context.Context, uint64) {
	if id, ok := ctx.Value(chainIDKey{}).(uint64); ok {
		return ctx, id
	}
	id := chainCounter.Add(1)
	return context.WithValue(ctx, chainIDKey{}, id), id
}

// withVisited returns the chain's visited-host set, creating it on
// first use. The set is only ever touched by the chain's own goroutine
// (singleflight fn closures run on the leader's goroutine with the
// leader's context), so no locking is needed.
func withVisited(ctx context.Context) (context.Context, map[string]bool) {
	if m, ok := ctx.Value(visitedKey{}).(map[string]bool); ok {
		return ctx, m
	}
	m := make(map[string]bool)
	return context.WithValue(ctx, visitedKey{}, m), m
}

// --- singleflight ---

// flightCall is one in-progress deduplicated execution.
type flightCall struct {
	leader uint64 // chain id of the executing caller
	done   chan struct{}
	val    any
	err    error
}

// flightGroup collapses concurrent calls with the same key onto one
// execution. Unlike x/sync/singleflight it is cycle-aware: a caller
// whose wait would close a loop of chains waiting on each other's
// flights executes the work locally instead (duplicated but correct —
// the per-chain visited set bounds recursion), so mutually glue-less
// hosting resolved from two goroutines cannot deadlock the scan.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
	waits map[uint64]string // chain id -> flight key it is waiting on

	// onWait, when set, is called (outside the lock) each time a chain
	// registers as a waiter on a flight, with the flight's key. Tests
	// use it for channel-based synchronisation instead of polling
	// waiters() against a wall clock.
	onWait func(key string)
}

// Do executes fn once for all concurrent callers sharing key. shared
// reports whether this caller piggybacked on another chain's execution.
func (g *flightGroup) Do(ctx context.Context, chain uint64, key string, fn func() (any, error)) (val any, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
		g.waits = make(map[uint64]string)
	}
	if c, ok := g.calls[key]; ok {
		if c.leader == chain || g.wouldCycleLocked(chain, c.leader) {
			g.mu.Unlock()
			v, e := fn()
			return v, false, e
		}
		g.waits[chain] = key
		onWait := g.onWait
		g.mu.Unlock()
		if onWait != nil {
			onWait(key)
		}
		select {
		case <-c.done:
			g.mu.Lock()
			delete(g.waits, chain)
			g.mu.Unlock()
			return c.val, true, c.err
		case <-ctx.Done():
			g.mu.Lock()
			delete(g.waits, chain)
			g.mu.Unlock()
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{leader: chain, done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}

// wouldCycleLocked walks the waits-for graph: if the prospective
// leader's chain is (transitively) waiting on a flight led by `chain`,
// joining would deadlock. Each chain waits on at most one flight at a
// time, so the graph is functional and the walk is linear.
func (g *flightGroup) wouldCycleLocked(chain, leader uint64) bool {
	for hops := 0; hops < 256; hops++ {
		if leader == chain {
			return true
		}
		key, ok := g.waits[leader]
		if !ok {
			return false
		}
		c, ok := g.calls[key]
		if !ok {
			return false
		}
		leader = c.leader
	}
	return true // pathological depth: assume a cycle, duplicate locally
}

// waiters reports how many chains are currently blocked on flights
// (tests).
func (g *flightGroup) waiters() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.waits)
}

// --- counter plumbing ---
//
// Each note* records the event on the resolver-wide instruments, the
// per-zone QueryStats carried in the context, and — when the zone is
// being traced — the zone's span. key names the cache entry involved
// ("d:<zone>", "z:<zone>", "a:<host>").

func (r *Resolver) noteCacheHit(ctx context.Context, key string) {
	r.metrics().CacheHits.Inc()
	if st := statsFrom(ctx); st != nil {
		st.CacheHits.Add(1)
	}
	if sp := obs.SpanFrom(ctx); sp != nil {
		sp.Emit(obs.TraceEvent{Stage: "resolve", Event: "cache_hit", Name: key})
	}
}

func (r *Resolver) noteCacheMiss(ctx context.Context, key string) {
	r.metrics().CacheMisses.Inc()
	if st := statsFrom(ctx); st != nil {
		st.CacheMisses.Add(1)
	}
	if sp := obs.SpanFrom(ctx); sp != nil {
		sp.Emit(obs.TraceEvent{Stage: "resolve", Event: "cache_miss", Name: key})
	}
}

func (r *Resolver) noteCoalesced(ctx context.Context, key string) {
	r.metrics().Coalesced.Inc()
	if st := statsFrom(ctx); st != nil {
		st.Coalesced.Add(1)
	}
	if sp := obs.SpanFrom(ctx); sp != nil {
		sp.Emit(obs.TraceEvent{Stage: "resolve", Event: "coalesced", Name: key})
	}
}
