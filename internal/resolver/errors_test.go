package resolver

import (
	"context"
	"errors"
	"net/netip"
	"strings"
	"testing"

	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/transport"
)

// loopNet registers a single server that answers every query with the
// same non-authoritative referral to itself: the walk descends into
// "loopy.test." forever without making progress.
func loopNet(t *testing.T) *Resolver {
	t.Helper()
	net := transport.NewMemNetwork(1)
	addr := netip.MustParseAddr("192.0.2.77")
	net.Register(addr, transport.HandlerFunc(func(_ context.Context, _ netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
		m := &dnswire.Message{ID: q.ID, Response: true, Question: q.Question}
		m.Authority = []dnswire.RR{{Name: "loopy.test.", Class: dnswire.ClassIN, TTL: 60, Data: dnswire.NewNS("ns.loopy.test.")}}
		m.Additional = []dnswire.RR{{Name: "ns.loopy.test.", Class: dnswire.ClassIN, TTL: 60, Data: &dnswire.A{Addr: addr}}}
		return m, nil
	}))
	return &Resolver{Net: net, Roots: []netip.AddrPort{netip.AddrPortFrom(addr, 53)}}
}

func TestDelegationReferralLoop(t *testing.T) {
	r := loopNet(t)
	_, err := r.Delegation(context.Background(), "www.loopy.test.")
	if !errors.Is(err, ErrLoop) {
		t.Fatalf("err = %v, want ErrLoop", err)
	}
}

func TestLookupReferralLoop(t *testing.T) {
	r := loopNet(t)
	_, _, err := r.Lookup(context.Background(), "www.loopy.test.", dnswire.TypeA)
	if !errors.Is(err, ErrLoop) {
		t.Fatalf("err = %v, want ErrLoop", err)
	}
}

func TestMaxDepthBoundsReferralChain(t *testing.T) {
	// A chain that makes genuine downward progress on every step (so
	// the referral-direction check cannot reject it): query number i is
	// answered with a referral to the suffix of the qname that is i
	// labels long, pointing back at the same server. Only MaxDepth can
	// stop this walk.
	net := transport.NewMemNetwork(1)
	addr := netip.MustParseAddr("192.0.2.77")
	var step int
	net.Register(addr, transport.HandlerFunc(func(_ context.Context, _ netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
		step++
		labels := strings.Split(strings.TrimSuffix(dnswire.CanonicalName(q.Question[0].Name), "."), ".")
		n := step
		if n > len(labels)-1 {
			n = len(labels) - 1
		}
		cut := strings.Join(labels[len(labels)-n:], ".") + "."
		m := &dnswire.Message{ID: q.ID, Response: true, Question: q.Question}
		m.Authority = []dnswire.RR{{Name: cut, Class: dnswire.ClassIN, TTL: 60, Data: dnswire.NewNS("ns." + cut)}}
		m.Additional = []dnswire.RR{{Name: "ns." + cut, Class: dnswire.ClassIN, TTL: 60, Data: &dnswire.A{Addr: addr}}}
		return m, nil
	}))
	r := &Resolver{Net: net, Roots: []netip.AddrPort{netip.AddrPortFrom(addr, 53)}, MaxDepth: 3}
	_, err := r.Delegation(context.Background(), "a.b.c.d.e.f.g.h.loopy.test.")
	if !errors.Is(err, ErrLoop) {
		t.Fatalf("err = %v, want ErrLoop", err)
	}
	// One NS query per referral step: the walk must stop at MaxDepth,
	// not at the default 16.
	if got := r.Queries(); got != 3 {
		t.Errorf("queries = %d, want exactly MaxDepth (3)", got)
	}
}

func TestDelegationLameNoReferral(t *testing.T) {
	// Non-authoritative answer with no referral shape: a lame server.
	net := transport.NewMemNetwork(1)
	addr := netip.MustParseAddr("192.0.2.78")
	net.Register(addr, transport.HandlerFunc(func(_ context.Context, _ netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
		return &dnswire.Message{ID: q.ID, Response: true, Question: q.Question}, nil
	}))
	r := &Resolver{Net: net, Roots: []netip.AddrPort{netip.AddrPortFrom(addr, 53)}}
	if _, err := r.Delegation(context.Background(), "x.test."); !errors.Is(err, ErrLameReferal) {
		t.Errorf("Delegation err = %v, want ErrLameReferal", err)
	}
	if _, _, err := r.Lookup(context.Background(), "x.test.", dnswire.TypeA); !errors.Is(err, ErrLameReferal) {
		t.Errorf("Lookup err = %v, want ErrLameReferal", err)
	}
}

func TestDelegationLameAuthoritativeWithoutNS(t *testing.T) {
	// Authoritative NOERROR with no NS RRset for the asked zone: the
	// name exists but is not a zone cut anywhere the server knows.
	net := transport.NewMemNetwork(1)
	addr := netip.MustParseAddr("192.0.2.79")
	net.Register(addr, transport.HandlerFunc(func(_ context.Context, _ netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
		return &dnswire.Message{ID: q.ID, Response: true, Authoritative: true, Question: q.Question}, nil
	}))
	r := &Resolver{Net: net, Roots: []netip.AddrPort{netip.AddrPortFrom(addr, 53)}}
	if _, err := r.Delegation(context.Background(), "notacut.test."); !errors.Is(err, ErrLameReferal) {
		t.Errorf("err = %v, want ErrLameReferal", err)
	}
}

// TestCacheSurvivesServerOutage covers the recovery scenario: cached
// zone servers go dark mid-scan, lookups fail with a joined
// unreachable error, and once the servers return the cached entries
// serve again without a fresh root walk.
func TestCacheSurvivesServerOutage(t *testing.T) {
	net, r, _ := miniNet(t)
	excom1 := netip.MustParseAddr("192.0.2.61")
	excom2 := netip.MustParseAddr("192.0.2.62")

	if _, _, err := r.Lookup(context.Background(), "www.example.com.", dnswire.TypeA); err != nil {
		t.Fatalf("priming lookup: %v", err)
	}
	if _, _, ok := r.cachedZone("example.com."); !ok {
		t.Fatal("example.com. servers not cached after lookup")
	}

	// Outage: both authoritative addresses go hard-down.
	net.SetFault(excom1, transport.FaultProfile{Down: true})
	net.SetFault(excom2, transport.FaultProfile{Down: true})
	_, _, err := r.Lookup(context.Background(), "alias.example.com.", dnswire.TypeA)
	if !errors.Is(err, ErrNoServers) || !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("outage err = %v, want joined ErrNoServers+ErrUnreachable", err)
	}

	// Recovery: the servers come back; the cached zone entry must work
	// again immediately and cheaply.
	net.SetFault(excom1, transport.FaultProfile{})
	net.SetFault(excom2, transport.FaultProfile{})
	before := r.Queries()
	answer, _, err := r.Lookup(context.Background(), "alias.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatalf("post-recovery lookup: %v", err)
	}
	if len(answer) == 0 {
		t.Fatal("post-recovery lookup returned no answer")
	}
	if used := r.Queries() - before; used > 3 {
		t.Errorf("post-recovery lookup used %d queries — cache not reused", used)
	}
}
