// Retry policy and per-server health tracking. ZDNS-style scanners owe
// their measurement fidelity to exactly this machinery: a single
// dropped UDP datagram must not misclassify a zone, so transient
// failures (timeouts, SERVFAIL) are retried with capped exponential
// backoff, while hard failures (unreachable, NXDOMAIN answers) are
// surfaced immediately. Backoff jitter is derived deterministically
// from a seed so that simulation runs are reproducible.
package resolver

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/obs"
	"dnssecboot/internal/transport"
)

// ErrServFail marks a SERVFAIL answer treated as a failure. queryAny
// wraps it so callers can distinguish "all servers timed out" from
// "all servers answered SERVFAIL" via errors.Is.
var ErrServFail = errors.New("resolver: SERVFAIL")

// RetryPolicy configures how Exchange handles transient failures.
// The zero value (and a nil policy) means a single attempt.
type RetryPolicy struct {
	// Attempts is the total number of tries per server (minimum 1).
	Attempts int
	// BaseBackoff is the pause before the first retry; it doubles on
	// every further retry. Zero retries immediately (the right choice
	// against the in-memory simulation).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (zero: 30×BaseBackoff).
	MaxBackoff time.Duration
	// AttemptTimeout bounds each individual attempt; zero inherits the
	// caller's context deadline unchanged.
	AttemptTimeout time.Duration
	// Jitter is the fraction of each backoff randomised away (0..1),
	// drawn deterministically from Seed.
	Jitter float64
	// Seed drives the deterministic jitter.
	Seed int64
}

func (p *RetryPolicy) attempts() int {
	if p == nil || p.Attempts < 1 {
		return 1
	}
	return p.Attempts
}

// backoffFor computes the pause before retry number attempt (1-based)
// of the given query, deterministic in (Seed, server, name, attempt).
func (p *RetryPolicy) backoffFor(server netip.AddrPort, name string, attempt int) time.Duration {
	if p.BaseBackoff <= 0 {
		return 0
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = 30 * p.BaseBackoff
	}
	d := p.BaseBackoff << (attempt - 1)
	if d > max || d <= 0 {
		d = max
	}
	if p.Jitter > 0 {
		h := fnv.New64a()
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(p.Seed))
		h.Write(b[:])
		h.Write([]byte(server.String()))
		h.Write([]byte(name))
		binary.BigEndian.PutUint64(b[:], uint64(attempt))
		h.Write(b[:])
		frac := float64(h.Sum64()>>11) / float64(1<<53)
		d = time.Duration(float64(d) * (1 - p.Jitter*frac))
	}
	return d
}

// sleep pauses for the attempt's backoff, honouring ctx cancellation.
func (p *RetryPolicy) sleep(ctx context.Context, server netip.AddrPort, name string, attempt int) error {
	d := p.backoffFor(server, name, attempt)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// transientError reports whether err is worth retrying: timeouts are,
// hard unreachability and context cancellation are not.
func transientError(err error) bool {
	return errors.Is(err, transport.ErrTimeout)
}

// QueryStats accumulates per-scope query accounting. A pointer travels
// in the context (WithQueryStats) so concurrent zone scans attribute
// traffic to the right zone.
type QueryStats struct {
	// Queries counts wire queries issued (every attempt counts).
	Queries atomic.Int64
	// Retries counts attempts beyond the first per exchange.
	Retries atomic.Int64
	// GaveUp counts exchanges that exhausted every attempt without a
	// usable answer.
	GaveUp atomic.Int64
	// CacheHits counts lookups served from the shared resolver cache
	// (delegation start points, negative entries, NS addresses).
	CacheHits atomic.Int64
	// CacheMisses counts cache probes that found no entry.
	CacheMisses atomic.Int64
	// Coalesced counts calls that piggybacked on another chain's
	// in-flight execution instead of issuing their own queries.
	Coalesced atomic.Int64
}

type queryStatsKey struct{}

// WithQueryStats returns a context whose queries through this resolver
// are additionally accounted into the returned stats. Used by the
// scanner for accurate per-zone accounting under concurrency.
func WithQueryStats(ctx context.Context) (context.Context, *QueryStats) {
	s := new(QueryStats)
	return context.WithValue(ctx, queryStatsKey{}, s), s
}

func statsFrom(ctx context.Context) *QueryStats {
	s, _ := ctx.Value(queryStatsKey{}).(*QueryStats)
	return s
}

// healthTracker is a per-server-address circuit breaker: servers that
// fail repeatedly in a row are deprioritised (tried last), never
// blacklisted — one successful exchange restores full standing. This
// keeps scans off dead or rate-limiting servers without ever giving up
// on an address that recovers mid-run.
type healthTracker struct {
	mu sync.Mutex
	m  map[netip.AddrPort]*serverHealth
}

type serverHealth struct {
	consecutive int   // consecutive transient failures
	failures    int64 // lifetime failures (metrics)
	successes   int64
}

func (h *healthTracker) note(server netip.AddrPort, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.m == nil {
		h.m = make(map[netip.AddrPort]*serverHealth)
	}
	s := h.m[server]
	if s == nil {
		s = &serverHealth{}
		h.m[server] = s
	}
	if ok {
		s.consecutive = 0
		s.successes++
	} else {
		s.consecutive++
		s.failures++
	}
}

// trippedAfter is the consecutive-failure count that deprioritises a
// server.
const trippedAfter = 5

func (h *healthTracker) tripped(server netip.AddrPort) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.m[server]
	return s != nil && s.consecutive >= trippedAfter
}

// order returns servers with healthy addresses first, preserving the
// input order within each group (a stable partition, so resolution
// stays deterministic).
func (h *healthTracker) order(servers []netip.AddrPort) []netip.AddrPort {
	h.mu.Lock()
	anyTripped := false
	for _, s := range servers {
		if st := h.m[s]; st != nil && st.consecutive >= trippedAfter {
			anyTripped = true
			break
		}
	}
	if !anyTripped {
		h.mu.Unlock()
		return servers
	}
	tripped := make(map[netip.AddrPort]bool, len(servers))
	for _, s := range servers {
		if st := h.m[s]; st != nil && st.consecutive >= trippedAfter {
			tripped[s] = true
		}
	}
	h.mu.Unlock()
	out := append([]netip.AddrPort(nil), servers...)
	sort.SliceStable(out, func(i, j int) bool {
		return !tripped[out[i]] && tripped[out[j]]
	})
	return out
}

// Exchange sends one query with EDNS+DO to server, applying rate
// limits, retry policy and counting. Transient failures (timeouts and
// SERVFAIL answers) are retried per the policy; after exhausting all
// attempts the final SERVFAIL response (if any) is returned as-is so
// callers still observe the rcode, while pure timeouts surface as a
// joined error.
func (r *Resolver) Exchange(ctx context.Context, server netip.AddrPort, name string, qtype dnswire.Type) (*dnswire.Message, error) {
	attempts := r.Retry.attempts()
	m := r.metrics()
	sp := obs.SpanFrom(ctx)
	var errs []error
	var lastServFail *dnswire.Message
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			// The backoff sleep comes first: a cancelled wait aborts the
			// exchange without a wire attempt, so it must not count as a
			// retry (counting before the sleep inflated Retries by one
			// phantom attempt per cancellation).
			if err := r.Retry.sleep(ctx, server, name, attempt); err != nil {
				return nil, err
			}
			m.Retries.Inc()
			if st := statsFrom(ctx); st != nil {
				st.Retries.Add(1)
			}
			if sp != nil {
				sp.Emit(obs.TraceEvent{Stage: "query", Event: "retry", Server: server.String(),
					Name: name, Qtype: qtype.String(), Attempt: attempt + 1})
			}
		}
		resp, err := r.exchangeOnce(ctx, server, name, qtype)
		if sp != nil {
			ev := obs.TraceEvent{Stage: "query", Event: "attempt", Server: server.String(),
				Name: name, Qtype: qtype.String(), Attempt: attempt + 1}
			if err != nil {
				ev.Err = err.Error()
			} else {
				ev.Rcode = resp.Rcode.String()
			}
			sp.Emit(ev)
		}
		switch {
		case err == nil && resp.Rcode == dnswire.RcodeServFail:
			r.health.note(server, false)
			lastServFail = resp
			errs = append(errs, fmt.Errorf("%s: %w", server, ErrServFail))
		case err != nil && transientError(err):
			r.health.note(server, false)
			lastServFail = nil
			errs = append(errs, fmt.Errorf("%s: %w", server, err))
		case err != nil:
			// Hard failure: retrying cannot help.
			r.health.note(server, false)
			return nil, err
		default:
			r.health.note(server, true)
			return resp, nil
		}
	}
	// Every attempt failed: one gave-up per exhausted exchange. This
	// includes single-attempt policies — "exhausted" means the query got
	// no usable answer, however many tries the policy allowed (the old
	// attempts>1 guard made unretried timeouts invisible to GaveUp).
	m.GaveUp.Inc()
	if st := statsFrom(ctx); st != nil {
		st.GaveUp.Add(1)
	}
	if sp != nil {
		sp.Emit(obs.TraceEvent{Stage: "query", Event: "gave_up", Server: server.String(),
			Name: name, Qtype: qtype.String(), N: attempts})
	}
	if lastServFail != nil {
		return lastServFail, nil
	}
	return nil, errors.Join(errs...)
}

// queryPool recycles query messages across attempts. Exchangers do not
// retain the query beyond the call (MemNetwork parses its own copy of
// the wire form; transport.Client only packs it), so a pooled message —
// including its question slice and in-place-updated OPT record — is
// safe to reuse and keeps the per-attempt query build allocation-free.
var queryPool = sync.Pool{New: func() any { return &dnswire.Message{} }}

// exchangeOnce performs a single attempt: rate limit, fresh query ID,
// counting, latency observation, optional per-attempt timeout.
func (r *Resolver) exchangeOnce(ctx context.Context, server netip.AddrPort, name string, qtype dnswire.Type) (*dnswire.Message, error) {
	m := r.metrics()
	if r.Limits != nil {
		if err := r.Limits.GetAddr(server.Addr()).Wait(ctx); err != nil {
			return nil, err
		}
	}
	q := queryPool.Get().(*dnswire.Message)
	defer queryPool.Put(q)
	q.InitQuery(nextID(), name, qtype)
	q.SetEDNS(dnswire.EDNS{UDPSize: dnswire.MaxUDPPayload, DO: true})
	m.Queries.Inc()
	if st := statsFrom(ctx); st != nil {
		st.Queries.Add(1)
	}
	if r.Retry != nil && r.Retry.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.Retry.AttemptTimeout)
		defer cancel()
	}
	start := time.Now()
	resp, err := r.Net.Exchange(ctx, server, q)
	m.QuerySeconds.ObserveSince(start)
	if resp != nil && resp.TrailingBytes > 0 {
		m.Trailing.Add(int64(resp.TrailingBytes))
	}
	if err != nil && ctx.Err() != nil && errors.Is(err, context.DeadlineExceeded) {
		// A blown per-attempt budget is a timeout like any other.
		err = fmt.Errorf("%w: %v", transport.ErrTimeout, err)
	}
	return resp, err
}
