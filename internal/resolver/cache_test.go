package resolver

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/server"
	"dnssecboot/internal/transport"
	"dnssecboot/internal/zone"
)

// withCache installs a fresh shared cache on a miniNet resolver.
func withCache(t *testing.T) (*transport.MemNetwork, *Resolver) {
	t.Helper()
	net, r, _ := miniNet(t)
	r.Cache = NewCache(0)
	return net, r
}

func TestCachedDelegationReusesTLDWalk(t *testing.T) {
	_, r := withCache(t)
	ctx := context.Background()
	if _, err := r.Delegation(ctx, "example.com."); err != nil {
		t.Fatal(err)
	}
	first := r.Queries()
	if first == 0 {
		t.Fatal("first delegation issued no queries")
	}
	d, err := r.Delegation(ctx, "example.com.")
	if err != nil {
		t.Fatal(err)
	}
	if d.Zone != "example.com." || d.ParentZone != "com." {
		t.Errorf("cached-start delegation = %s under %s", d.Zone, d.ParentZone)
	}
	// The second walk starts at the cached com. servers: one NS query
	// there plus at most the DS re-fetch, never a fresh root walk.
	if delta := r.Queries() - first; delta > 2 {
		t.Errorf("second delegation used %d queries, want <= 2 (root walk not reused)", delta)
	}
	if r.CacheHits() == 0 {
		t.Error("no cache hits recorded")
	}
}

func TestNegativeCacheServesAndExpires(t *testing.T) {
	_, r := withCache(t)
	now := time.Unix(1_000_000, 0)
	var mu sync.Mutex
	r.Cache.SetClock(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	})
	ctx := context.Background()

	_, err := r.Delegation(ctx, "nonexistent.com.")
	if !errors.Is(err, ErrNXDomain) {
		t.Fatalf("err = %v, want ErrNXDomain", err)
	}
	if r.Cache.NegativeLen() != 1 {
		t.Fatalf("negative entries = %d, want 1", r.Cache.NegativeLen())
	}
	before := r.Queries()
	if _, err := r.Delegation(ctx, "nonexistent.com."); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("cached err = %v, want ErrNXDomain", err)
	}
	if r.Queries() != before {
		t.Errorf("negative cache hit issued %d queries", r.Queries()-before)
	}
	if r.CacheHits() == 0 {
		t.Error("negative hit not counted")
	}

	// Past the TTL the entry dies and the walk re-queries.
	mu.Lock()
	now = now.Add(61 * time.Second)
	mu.Unlock()
	if _, err := r.Delegation(ctx, "nonexistent.com."); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("post-expiry err = %v, want ErrNXDomain", err)
	}
	if r.Queries() == before {
		t.Error("expired negative entry served without re-querying")
	}
}

func TestNegativeCacheBounded(t *testing.T) {
	c := NewCache(0)
	c.MaxNegative = 2
	for _, z := range []string{"a.test.", "b.test.", "c.test."} {
		c.negStore(z, ErrNXDomain)
	}
	if c.NegativeLen() != 2 {
		t.Fatalf("negative entries = %d, want 2 (FIFO bound)", c.NegativeLen())
	}
	if _, ok := c.negLookup("a.test."); ok {
		t.Error("oldest entry survived eviction")
	}
	for _, z := range []string{"b.test.", "c.test."} {
		if _, ok := c.negLookup(z); !ok {
			t.Errorf("recent entry %s evicted", z)
		}
	}
}

// gatedHandler blocks every query behind gate after signalling started
// once, so tests can hold a resolution mid-flight deterministically.
type gatedHandler struct {
	inner   transport.Handler
	started chan struct{}
	gate    chan struct{}
	once    sync.Once
}

func (h *gatedHandler) HandleDNS(ctx context.Context, local netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
	h.once.Do(func() { close(h.started) })
	select {
	case <-h.gate:
	case <-ctx.Done():
		return nil, transport.ErrTimeout
	}
	return h.inner.HandleDNS(ctx, local, q)
}

// singleServerWorld hosts the whole hierarchy on one gated address, the
// single-listener layout where every resolution funnels through one
// handler.
func singleServerWorld(t *testing.T) (*Resolver, *gatedHandler) {
	t.Helper()
	addr := netip.MustParseAddr("192.0.2.1")

	root := zone.New(".")
	root.SetBasics("ns.root.", []string{"ns.root."}, 1)
	root.MustAdd(dnswire.RR{Name: "ns.root.", TTL: 1, Data: &dnswire.A{Addr: addr}})
	com := zone.New("com.")
	com.SetBasics("ns.root.", []string{"ns.root."}, 1)
	child := zone.New("example.com.")
	child.SetBasics("ns.root.", []string{"ns.root."}, 1)
	child.MustAdd(dnswire.RR{Name: "www.example.com.", TTL: 1, Data: &dnswire.A{Addr: netip.MustParseAddr("203.0.113.10")}})
	for _, c := range []*zone.Zone{com, child} {
		for _, h := range c.NSHosts() {
			parentOf := root
			if c.Origin == "example.com." {
				parentOf = com
			}
			parentOf.MustAdd(dnswire.RR{Name: c.Origin, TTL: 1, Data: dnswire.NewNS(h)})
		}
	}
	srv := server.New(1)
	srv.AddZone(root)
	srv.AddZone(com)
	srv.AddZone(child)

	gate := &gatedHandler{inner: srv, started: make(chan struct{}), gate: make(chan struct{})}
	net := transport.NewMemNetwork(1)
	net.Register(addr, gate)
	r := &Resolver{
		Net:   net,
		Roots: []netip.AddrPort{netip.AddrPortFrom(addr, 53)},
		Cache: NewCache(0),
	}
	return r, gate
}

// awaitJoin receives one flight-join notification (sent by the
// flightGroup's onWait hook) or fails the test. The hook fires after
// the waiter is registered in the waits map, so by the time the signal
// arrives the join is visible to cycle detection and to waiters() —
// channel synchronisation instead of polling a wall-clock deadline.
func awaitJoin(t *testing.T, joined <-chan string, what string) {
	t.Helper()
	select {
	case <-joined:
	case <-time.After(30 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
	}
}

func TestSingleflightCoalescesConcurrentDelegations(t *testing.T) {
	r, gate := singleServerWorld(t)
	joined := make(chan string, 8)
	r.flight.onWait = func(key string) { joined <- key }
	ctx := context.Background()

	type res struct {
		d   *Delegation
		err error
	}
	results := make(chan res, 2)
	go func() {
		d, err := r.Delegation(ctx, "example.com.")
		results <- res{d, err}
	}()
	<-gate.started // leader is mid-walk, holding the flight
	go func() {
		d, err := r.Delegation(ctx, "example.com.")
		results <- res{d, err}
	}()
	awaitJoin(t, joined, "second chain to join the flight")
	close(gate.gate)

	for i := 0; i < 2; i++ {
		select {
		case got := <-results:
			if got.err != nil {
				t.Fatalf("delegation %d: %v", i, got.err)
			}
			if got.d.Zone != "example.com." {
				t.Errorf("delegation %d zone = %s", i, got.d.Zone)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("coalesced delegation deadlocked")
		}
	}
	if r.Coalesced() != 1 {
		t.Errorf("coalesced = %d, want 1", r.Coalesced())
	}
}

func TestConcurrentAddrsOfCoalesces(t *testing.T) {
	r, gate := singleServerWorld(t)
	joined := make(chan string, 8)
	r.flight.onWait = func(key string) { joined <- key }
	ctx := context.Background()

	type res struct {
		addrs []netip.Addr
		err   error
	}
	results := make(chan res, 2)
	go func() {
		a, err := r.AddrsOf(ctx, "ns.root.")
		results <- res{a, err}
	}()
	<-gate.started
	go func() {
		a, err := r.AddrsOf(ctx, "ns.root.")
		results <- res{a, err}
	}()
	// Pre-fix the process-global inflight map made the second chain fail
	// with ErrLoop; the flight group must instead let it piggyback.
	awaitJoin(t, joined, "second chain to join the flight")
	close(gate.gate)

	for i := 0; i < 2; i++ {
		select {
		case got := <-results:
			if got.err != nil {
				t.Fatalf("AddrsOf %d: %v", i, got.err)
			}
			if len(got.addrs) != 1 || got.addrs[0].String() != "192.0.2.1" {
				t.Errorf("AddrsOf %d = %v", i, got.addrs)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("coalesced AddrsOf deadlocked")
		}
	}
	if r.Coalesced() != 1 {
		t.Errorf("coalesced = %d, want 1", r.Coalesced())
	}
}

// TestFlightGroupCycleFallback drives two chains into a mutual wait
// (chain 1 leads k1 and joins k2; chain 2 leads k2 and joins k1) and
// checks the second joiner detects the cycle and duplicates the work
// locally instead of deadlocking.
func TestFlightGroupCycleFallback(t *testing.T) {
	var g flightGroup
	parked := make(chan string, 8)
	g.onWait = func(key string) { parked <- key }
	ctx := context.Background()
	aLeads := make(chan struct{})
	bLeads := make(chan struct{})
	results := make(chan string, 2)

	go func() { // chain 1
		v, _, _ := g.Do(ctx, 1, "k1", func() (any, error) {
			close(aLeads)
			<-bLeads
			inner, shared, _ := g.Do(ctx, 1, "k2", func() (any, error) {
				return "k2-from-chain1", nil
			})
			if !shared {
				t.Error("chain 1 should have piggybacked on chain 2's k2")
			}
			return fmt.Sprintf("k1=%v", inner), nil
		})
		results <- v.(string)
	}()
	go func() { // chain 2
		<-aLeads
		v, _, _ := g.Do(ctx, 2, "k2", func() (any, error) {
			close(bLeads)
			// Wait until chain 1 is parked on k2, completing the cycle
			// (the onWait hook fires once chain 1 is registered).
			select {
			case <-parked:
			case <-time.After(30 * time.Second):
				t.Error("chain 1 never parked on k2")
			}
			inner, shared, _ := g.Do(ctx, 2, "k1", func() (any, error) {
				return "k1-duplicated-locally", nil
			})
			if shared {
				t.Error("chain 2 joining k1 would deadlock; must run locally")
			}
			return fmt.Sprintf("k2=%v", inner), nil
		})
		results <- v.(string)
	}()

	got := map[string]bool{}
	for i := 0; i < 2; i++ {
		select {
		case v := <-results:
			got[v] = true
		case <-time.After(10 * time.Second):
			t.Fatal("flight-group cycle deadlocked")
		}
	}
	if !got["k2=k1-duplicated-locally"] || !got["k1=k2=k1-duplicated-locally"] {
		t.Errorf("results = %v", got)
	}
	if g.waiters() != 0 {
		t.Errorf("leftover waiters = %d", g.waiters())
	}
}

// TestMisbehavingReferralsFailFast covers the referral-direction fix: a
// server answering with upward, sideways, self or unrelated-sibling
// referrals must yield ErrLoop after a handful of queries, instead of
// spinning the walk to MaxDepth (and, with the shared cache installed,
// poisoning delegations for every later scan of the subtree).
func TestMisbehavingReferralsFailFast(t *testing.T) {
	cases := []struct {
		name string
		cut  string // crafted referral target from the com. server
	}{
		{"upward to root", "."},
		{"sideways to another TLD", "net."},
		{"self referral", "com."},
		{"unrelated sibling", "other.com."},
	}
	for _, tc := range cases {
		for _, cached := range []bool{false, true} {
			mode := "legacy"
			if cached {
				mode = "cached"
			}
			t.Run(tc.name+"/"+mode, func(t *testing.T) {
				rootAddr := netip.MustParseAddr("198.41.0.4")
				evilAddr := netip.MustParseAddr("192.0.32.66")

				root := zone.New(".")
				root.SetBasics("a.root-servers.net.", []string{"a.root-servers.net."}, 1)
				root.MustAdd(dnswire.RR{Name: "com.", TTL: 1, Data: dnswire.NewNS("ns.evil.")})
				root.MustAdd(dnswire.RR{Name: "ns.evil.", TTL: 1, Data: &dnswire.A{Addr: evilAddr}})
				rootSrv := server.New(1)
				rootSrv.AddZone(root)

				evil := transport.HandlerFunc(func(_ context.Context, _ netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
					resp := &dnswire.Message{ID: q.ID, Response: true, Question: q.Question}
					resp.Authority = []dnswire.RR{{Name: tc.cut, TTL: 1, Data: dnswire.NewNS("ns.evil.")}}
					resp.Additional = []dnswire.RR{{Name: "ns.evil.", TTL: 1, Data: &dnswire.A{Addr: evilAddr}}}
					return resp, nil
				})

				net := transport.NewMemNetwork(1)
				net.Register(rootAddr, rootSrv)
				net.Register(evilAddr, evil)
				r := &Resolver{Net: net, Roots: []netip.AddrPort{netip.AddrPortFrom(rootAddr, 53)}}
				if cached {
					r.Cache = NewCache(0)
				}

				_, err := r.Delegation(context.Background(), "example.com.")
				if !errors.Is(err, ErrLoop) {
					t.Fatalf("err = %v, want ErrLoop", err)
				}
				// Root referral + one evil answer; pre-fix the walk
				// re-queried the bogus referral until MaxDepth (16).
				if r.Queries() > 4 {
					t.Errorf("used %d queries before rejecting, want <= 4", r.Queries())
				}

				// The lookup path applies the same validation.
				_, _, err = r.Lookup(context.Background(), "www.example.com.", dnswire.TypeA)
				if !errors.Is(err, ErrLoop) {
					t.Errorf("Lookup err = %v, want ErrLoop", err)
				}
			})
		}
	}
}
