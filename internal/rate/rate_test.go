package rate

import (
	"context"
	"net/netip"
	"testing"
	"time"
)

type fakeClock struct {
	t time.Time
}

func (f *fakeClock) now() time.Time { return f.t }
func (f *fakeClock) sleep(_ context.Context, d time.Duration) error {
	f.t = f.t.Add(d)
	return nil
}

func TestAllowBurstAndRefill(t *testing.T) {
	fc := &fakeClock{t: time.Unix(0, 0)}
	l := NewLimiter(10, 5)
	l.SetClock(fc.now, fc.sleep)
	for i := 0; i < 5; i++ {
		if !l.Allow() {
			t.Fatalf("burst token %d denied", i)
		}
	}
	if l.Allow() {
		t.Fatal("6th immediate token allowed")
	}
	fc.t = fc.t.Add(100 * time.Millisecond) // refills one token at 10/s
	if !l.Allow() {
		t.Fatal("token after refill denied")
	}
	if l.Allow() {
		t.Fatal("second token after single refill allowed")
	}
}

func TestRefillCapsAtBurst(t *testing.T) {
	fc := &fakeClock{t: time.Unix(0, 0)}
	l := NewLimiter(1000, 3)
	l.SetClock(fc.now, fc.sleep)
	fc.t = fc.t.Add(time.Hour)
	allowed := 0
	for i := 0; i < 10; i++ {
		if l.Allow() {
			allowed++
		}
	}
	if allowed != 3 {
		t.Errorf("allowed %d after long idle, want burst 3", allowed)
	}
}

func TestWaitAdvancesClock(t *testing.T) {
	fc := &fakeClock{t: time.Unix(0, 0)}
	l := NewLimiter(10, 1)
	l.SetClock(fc.now, fc.sleep)
	ctx := context.Background()
	start := fc.t
	for i := 0; i < 4; i++ {
		if err := l.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := fc.t.Sub(start)
	// 1 burst token + 3 waits at 10/s ≈ 300ms of simulated waiting.
	if elapsed < 250*time.Millisecond || elapsed > 400*time.Millisecond {
		t.Errorf("simulated elapsed = %v", elapsed)
	}
}

func TestWaitCancelled(t *testing.T) {
	l := NewLimiter(0.001, 1)
	if !l.Allow() {
		t.Fatal("first token denied")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := l.Wait(ctx); err == nil {
		t.Error("Wait on cancelled context returned nil")
	}
}

func TestUnlimited(t *testing.T) {
	l := NewLimiter(0, 0)
	for i := 0; i < 1000; i++ {
		if !l.Allow() {
			t.Fatal("unlimited limiter denied")
		}
	}
	if err := l.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPerKeyIsolation(t *testing.T) {
	p := NewPerKey(10, 1)
	a, b := p.Get("192.0.2.1"), p.Get("192.0.2.2")
	if a == b {
		t.Fatal("distinct keys share a limiter")
	}
	if p.Get("192.0.2.1") != a {
		t.Fatal("same key returned a different limiter")
	}
	if !a.Allow() {
		t.Fatal("fresh limiter denied")
	}
	if a.Allow() {
		t.Fatal("burst-1 limiter allowed twice")
	}
	if !b.Allow() {
		t.Fatal("second key's limiter affected by first")
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d", p.Len())
	}
}

// recordingClock is a fakeClock that records every duration Wait asks
// it to sleep, advancing the simulated time by that amount.
type recordingClock struct {
	t      time.Time
	sleeps []time.Duration
}

func (f *recordingClock) now() time.Time { return f.t }
func (f *recordingClock) sleep(_ context.Context, d time.Duration) error {
	f.sleeps = append(f.sleeps, d)
	// Advance at least 1 ns even for a zero-duration sleep so a buggy
	// Wait spins to completion (and fails the assertion) instead of
	// hanging the test in an infinite zero-progress loop.
	if d <= 0 {
		d = time.Nanosecond
	}
	f.t = f.t.Add(d)
	return nil
}

// TestWaitNeverSleepsZero pins the busy-spin fix: with tokens just
// under 1, need = (1-tokens)/rate is a sub-nanosecond fraction of a
// second and time.Duration(need*1e9) truncates to 0 ns. Pre-fix, Wait
// passed that 0 to the sleeper — under the real clock this re-locked
// the mutex in a tight spin until the wall clock ticked. The fixed Wait
// clamps every sleep to at least minSleep.
func TestWaitNeverSleepsZero(t *testing.T) {
	fc := &recordingClock{t: time.Unix(0, 0)}
	l := NewLimiter(3, 1)
	l.SetClock(fc.now, fc.sleep)
	ctx := context.Background()
	if err := l.Wait(ctx); err != nil { // consume the burst token
		t.Fatal(err)
	}
	// Refill 333333333 ns at 3 tokens/s: tokens = 0.999999999, so the
	// remaining need is ~3.3e-10 s, which truncates to 0 ns.
	fc.t = fc.t.Add(333333333 * time.Nanosecond)
	if err := l.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if len(fc.sleeps) == 0 {
		t.Fatal("second Wait acquired without sleeping; fixture broken")
	}
	for i, d := range fc.sleeps {
		if d <= 0 {
			t.Fatalf("sleep %d was %v; Wait busy-spins under the real clock", i, d)
		}
	}
}

// TestPerKeyAddrIsolation covers the addr-keyed fast path: distinct
// addresses get distinct limiters, lookups are stable, and the addr and
// string key spaces are independent.
func TestPerKeyAddrIsolation(t *testing.T) {
	p := NewPerKey(10, 1)
	a1 := netip.MustParseAddr("192.0.2.1")
	a2 := netip.MustParseAddr("192.0.2.2")
	la, lb := p.GetAddr(a1), p.GetAddr(a2)
	if la == lb {
		t.Fatal("distinct addrs share a limiter")
	}
	if p.GetAddr(a1) != la {
		t.Fatal("same addr returned a different limiter")
	}
	// String and addr key spaces are independent maps.
	if p.Get(a1.String()) == la {
		t.Fatal("string key aliased the addr key space")
	}
	if p.Len() != 3 {
		t.Errorf("Len = %d, want 3", p.Len())
	}
	if !la.Allow() {
		t.Fatal("fresh limiter denied")
	}
	if la.Allow() {
		t.Fatal("burst-1 limiter allowed twice")
	}
	if !lb.Allow() {
		t.Fatal("second addr's limiter affected by first")
	}
}

// TestPerKeyObserverCoversAddrLimiters ensures SetObserver reaches
// limiters in both key spaces, created before or after installation.
func TestPerKeyObserverCoversAddrLimiters(t *testing.T) {
	p := NewPerKey(1000, 1)
	before := p.GetAddr(netip.MustParseAddr("2001:db8::1"))
	var observed int
	p.SetObserver(func(time.Duration) { observed++ })
	after := p.GetAddr(netip.MustParseAddr("2001:db8::2"))
	ctx := context.Background()
	for _, l := range []*Limiter{before, after} {
		fc := &fakeClock{t: time.Unix(0, 0)}
		l.SetClock(fc.now, fc.sleep)
		l.Wait(ctx) // burst token, unobserved
		l.Wait(ctx) // blocked wait, observed
	}
	if observed != 2 {
		t.Errorf("observed %d blocked waits, want 2", observed)
	}
}

// TestZeroBurstClamped pins the burst clamp: a positive rate with a
// burst below 1 (e.g. a fractional q/s rate truncated to zero when
// sizing the bucket) used to build a limiter whose refill capped tokens
// at 0, so Allow never granted and Wait blocked forever.
func TestZeroBurstClamped(t *testing.T) {
	l := NewLimiter(100, 0)
	if !l.Allow() {
		t.Error("limiter with clamped burst denied its first token")
	}

	l2 := NewLimiter(1000, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- l2.Wait(ctx) }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Wait = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait blocked forever on a zero-burst limiter")
	}

	// Negative bursts clamp the same way.
	if !NewLimiter(1, -3).Allow() {
		t.Error("negative burst not clamped")
	}
	// rate <= 0 stays unlimited regardless of burst.
	if !NewLimiter(0, 0).Allow() {
		t.Error("unlimited limiter denied")
	}
}
