package rate

import (
	"context"
	"testing"
	"time"
)

type fakeClock struct {
	t time.Time
}

func (f *fakeClock) now() time.Time { return f.t }
func (f *fakeClock) sleep(_ context.Context, d time.Duration) error {
	f.t = f.t.Add(d)
	return nil
}

func TestAllowBurstAndRefill(t *testing.T) {
	fc := &fakeClock{t: time.Unix(0, 0)}
	l := NewLimiter(10, 5)
	l.SetClock(fc.now, fc.sleep)
	for i := 0; i < 5; i++ {
		if !l.Allow() {
			t.Fatalf("burst token %d denied", i)
		}
	}
	if l.Allow() {
		t.Fatal("6th immediate token allowed")
	}
	fc.t = fc.t.Add(100 * time.Millisecond) // refills one token at 10/s
	if !l.Allow() {
		t.Fatal("token after refill denied")
	}
	if l.Allow() {
		t.Fatal("second token after single refill allowed")
	}
}

func TestRefillCapsAtBurst(t *testing.T) {
	fc := &fakeClock{t: time.Unix(0, 0)}
	l := NewLimiter(1000, 3)
	l.SetClock(fc.now, fc.sleep)
	fc.t = fc.t.Add(time.Hour)
	allowed := 0
	for i := 0; i < 10; i++ {
		if l.Allow() {
			allowed++
		}
	}
	if allowed != 3 {
		t.Errorf("allowed %d after long idle, want burst 3", allowed)
	}
}

func TestWaitAdvancesClock(t *testing.T) {
	fc := &fakeClock{t: time.Unix(0, 0)}
	l := NewLimiter(10, 1)
	l.SetClock(fc.now, fc.sleep)
	ctx := context.Background()
	start := fc.t
	for i := 0; i < 4; i++ {
		if err := l.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := fc.t.Sub(start)
	// 1 burst token + 3 waits at 10/s ≈ 300ms of simulated waiting.
	if elapsed < 250*time.Millisecond || elapsed > 400*time.Millisecond {
		t.Errorf("simulated elapsed = %v", elapsed)
	}
}

func TestWaitCancelled(t *testing.T) {
	l := NewLimiter(0.001, 1)
	if !l.Allow() {
		t.Fatal("first token denied")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := l.Wait(ctx); err == nil {
		t.Error("Wait on cancelled context returned nil")
	}
}

func TestUnlimited(t *testing.T) {
	l := NewLimiter(0, 0)
	for i := 0; i < 1000; i++ {
		if !l.Allow() {
			t.Fatal("unlimited limiter denied")
		}
	}
	if err := l.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPerKeyIsolation(t *testing.T) {
	p := NewPerKey(10, 1)
	a, b := p.Get("192.0.2.1"), p.Get("192.0.2.2")
	if a == b {
		t.Fatal("distinct keys share a limiter")
	}
	if p.Get("192.0.2.1") != a {
		t.Fatal("same key returned a different limiter")
	}
	if !a.Allow() {
		t.Fatal("fresh limiter denied")
	}
	if a.Allow() {
		t.Fatal("burst-1 limiter allowed twice")
	}
	if !b.Allow() {
		t.Fatal("second key's limiter affected by first")
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d", p.Len())
	}
}

// TestZeroBurstClamped pins the burst clamp: a positive rate with a
// burst below 1 (e.g. a fractional q/s rate truncated to zero when
// sizing the bucket) used to build a limiter whose refill capped tokens
// at 0, so Allow never granted and Wait blocked forever.
func TestZeroBurstClamped(t *testing.T) {
	l := NewLimiter(100, 0)
	if !l.Allow() {
		t.Error("limiter with clamped burst denied its first token")
	}

	l2 := NewLimiter(1000, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- l2.Wait(ctx) }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Wait = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait blocked forever on a zero-burst limiter")
	}

	// Negative bursts clamp the same way.
	if !NewLimiter(1, -3).Allow() {
		t.Error("negative burst not clamped")
	}
	// rate <= 0 stays unlimited regardless of burst.
	if !NewLimiter(0, 0).Allow() {
		t.Error("unlimited limiter denied")
	}
}
