// Package rate implements a token-bucket rate limiter used by the
// scanner to cap per-nameserver query rates, mirroring the paper's
// 50-queries-per-second-per-NS scan policy (§3).
package rate

import (
	"context"
	"net/netip"
	"sync"
	"time"
)

// Limiter is a token bucket: capacity burst, refilled at rate tokens
// per second. The zero value is unusable; use NewLimiter.
type Limiter struct {
	mu       sync.Mutex
	rate     float64
	burst    float64
	tokens   float64
	last     time.Time
	now      func() time.Time
	sleep    func(context.Context, time.Duration) error
	observer func(time.Duration)
}

// NewLimiter returns a limiter allowing ratePerSec events per second
// with the given burst. ratePerSec <= 0 means unlimited. A burst below
// 1 is clamped to 1: the refill caps tokens at the burst, so a smaller
// bucket could never accumulate the single token Wait needs and every
// caller would block forever (e.g. a fractional q/s rate truncated to
// a zero burst).
func NewLimiter(ratePerSec float64, burst int) *Limiter {
	if ratePerSec > 0 && burst < 1 {
		burst = 1
	}
	l := &Limiter{
		rate:  ratePerSec,
		burst: float64(burst),
		now:   time.Now,
		sleep: sleepCtx,
	}
	l.tokens = l.burst
	l.last = l.now()
	return l
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// SetObserver registers fn to receive the time each successful Wait
// spent blocked on the bucket. Immediate acquisitions are not reported,
// so the observations measure rate-limit pressure, not call volume.
func (l *Limiter) SetObserver(fn func(time.Duration)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.observer = fn
}

// SetClock injects a fake clock; for tests.
func (l *Limiter) SetClock(now func() time.Time, sleep func(context.Context, time.Duration) error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.now = now
	l.sleep = sleep
	l.last = now()
}

func (l *Limiter) refillLocked() {
	t := l.now()
	elapsed := t.Sub(l.last).Seconds()
	if elapsed > 0 {
		l.tokens += elapsed * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
		l.last = t
	}
}

// Allow reports whether one event may proceed now, consuming a token if
// so.
func (l *Limiter) Allow() bool {
	if l.rate <= 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refillLocked()
	if l.tokens >= 1 {
		l.tokens--
		return true
	}
	return false
}

// Wait blocks until a token is available or ctx is done.
func (l *Limiter) Wait(ctx context.Context) error {
	if l.rate <= 0 {
		return ctx.Err()
	}
	var blocked time.Duration
	for {
		l.mu.Lock()
		l.refillLocked()
		if l.tokens >= 1 {
			l.tokens--
			observer := l.observer
			l.mu.Unlock()
			if blocked > 0 && observer != nil {
				observer(blocked)
			}
			return nil
		}
		need := (1 - l.tokens) / l.rate
		sleep := l.sleep
		l.mu.Unlock()
		d := time.Duration(need * float64(time.Second))
		// When tokens is just under 1, need is a sub-nanosecond fraction
		// and the conversion truncates to 0 — without a floor the loop
		// would re-lock the mutex in a tight spin until the clock ticks.
		if d < minSleep {
			d = minSleep
		}
		if err := sleep(ctx, d); err != nil {
			return err
		}
		blocked += d
	}
}

// minSleep is the smallest duration Wait will ask the clock to sleep;
// see the truncation note in Wait.
const minSleep = time.Microsecond

// PerKey hands out one limiter per key (e.g. per nameserver address),
// creating them on demand. String and netip.Addr keys live in separate
// maps (two typed maps, rather than one map[any], so address lookups
// never box the key into an interface allocation); the two key spaces
// are independent.
type PerKey struct {
	mu       sync.RWMutex
	make     func() *Limiter
	limiter  map[string]*Limiter
	byAddr   map[netip.Addr]*Limiter
	observer func(time.Duration)
}

// NewPerKey returns a PerKey whose limiters allow ratePerSec with the
// given burst.
func NewPerKey(ratePerSec float64, burst int) *PerKey {
	return &PerKey{
		make:    func() *Limiter { return NewLimiter(ratePerSec, burst) },
		limiter: make(map[string]*Limiter),
		byAddr:  make(map[netip.Addr]*Limiter),
	}
}

// SetObserver installs a blocked-wait observer on every limiter the
// PerKey has created or will create (shared across keys, so one
// histogram aggregates rate-limit pressure over all servers).
func (p *PerKey) SetObserver(fn func(time.Duration)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.observer = fn
	for _, l := range p.limiter {
		l.SetObserver(fn)
	}
	for _, l := range p.byAddr {
		l.SetObserver(fn)
	}
}

// Get returns the limiter for key, creating it if needed.
func (p *PerKey) Get(key string) *Limiter {
	p.mu.RLock()
	l, ok := p.limiter[key]
	p.mu.RUnlock()
	if ok {
		return l
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if l, ok := p.limiter[key]; ok {
		return l
	}
	l = p.newLocked()
	p.limiter[key] = l
	return l
}

// GetAddr returns the limiter for an address key, creating it if
// needed. This is the query hot path: steady state takes one RLock and
// no allocations (no Addr.String round-trip, no interface boxing).
func (p *PerKey) GetAddr(addr netip.Addr) *Limiter {
	p.mu.RLock()
	l, ok := p.byAddr[addr]
	p.mu.RUnlock()
	if ok {
		return l
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if l, ok := p.byAddr[addr]; ok {
		return l
	}
	l = p.newLocked()
	p.byAddr[addr] = l
	return l
}

func (p *PerKey) newLocked() *Limiter {
	l := p.make()
	if p.observer != nil {
		l.SetObserver(p.observer)
	}
	return l
}

// Len returns the number of distinct keys seen (across both key
// spaces).
func (p *PerKey) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.limiter) + len(p.byAddr)
}
