package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"dnssecboot/internal/classify"
)

// CSV series export: every table/figure as machine-readable data, so
// the paper's plots can be regenerated with any plotting tool.

// WriteCSV emits one artefact as CSV. Artefacts: table1, table2,
// table3, figure1.
func (a *Aggregate) WriteCSV(w io.Writer, artefact string) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	switch artefact {
	case "table1":
		return a.writeTable1CSV(cw)
	case "table2":
		return a.writeTable2CSV(cw)
	case "table3":
		return a.writeTable3CSV(cw)
	case "figure1":
		return a.writeFigure1CSV(cw)
	default:
		return fmt.Errorf("report: unknown CSV artefact %q", artefact)
	}
}

func (a *Aggregate) writeTable1CSV(cw *csv.Writer) error {
	if err := cw.Write([]string{"operator", "domains", "unsigned", "secured", "invalid", "islands"}); err != nil {
		return err
	}
	for _, s := range a.topOperators(20, func(s *OperatorStats) int { return s.Domains }) {
		if err := cw.Write([]string{
			s.Name, itoa(s.Domains), itoa(s.Unsigned), itoa(s.Secured), itoa(s.Invalid), itoa(s.Islands),
		}); err != nil {
			return err
		}
	}
	return nil
}

func (a *Aggregate) writeTable2CSV(cw *csv.Writer) error {
	if err := cw.Write([]string{"operator", "domains_with_cds", "share_of_operator_pct"}); err != nil {
		return err
	}
	for _, s := range a.topOperators(20, func(s *OperatorStats) int { return s.CDS }) {
		if s.CDS == 0 {
			break
		}
		if err := cw.Write([]string{
			s.Name, itoa(s.CDS), fmt.Sprintf("%.2f", pct(s.CDS, s.Domains)),
		}); err != nil {
			return err
		}
	}
	return nil
}

func (a *Aggregate) writeTable3CSV(cw *csv.Writer) error {
	if err := cw.Write([]string{"operator", "with_signal", "already_secured", "cannot_bootstrap",
		"deletion_request", "invalid_dnssec", "potential", "incorrect", "correct"}); err != nil {
		return err
	}
	names := make([]string, 0, len(a.Operators))
	for name := range a.Operators {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := a.Operators[name]
		if s.WithSignal == 0 {
			continue
		}
		if err := cw.Write([]string{
			name, itoa(s.WithSignal), itoa(s.AlreadySecured), itoa(s.CannotBootstrap),
			itoa(s.DeletionRequest), itoa(s.InvalidDNSSEC), itoa(s.Potential),
			itoa(s.Incorrect), itoa(s.Correct),
		}); err != nil {
			return err
		}
	}
	return nil
}

func (a *Aggregate) writeFigure1CSV(cw *csv.Writer) error {
	if err := cw.Write([]string{"bucket", "zones"}); err != nil {
		return err
	}
	for _, b := range []classify.Potential{
		classify.PotentialNone, classify.PotentialAlreadySecured, classify.PotentialInvalidDNSSEC,
		classify.PotentialIslandNoCDS, classify.PotentialIslandInvalidCDS,
		classify.PotentialIslandDelete, classify.PotentialBootstrap,
	} {
		if err := cw.Write([]string{b.String(), itoa(a.ByBucket[b])}); err != nil {
			return err
		}
	}
	return nil
}

func itoa(n int) string { return strconv.Itoa(n) }
