package report

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Shard-state merging. A sharded scan runs N worker processes over
// disjoint contiguous slices of the zone space; each worker checkpoints
// its own Aggregate. Because every tally in the Aggregate is a sum over
// independent per-zone contributions, recombining shards is pure
// addition — Merge is commutative and associative, so the coordinator
// may fold shard states in any order and still render the exact tables
// a single-process run over the whole zone list would have produced
// (the property the conformance battery in internal/shard asserts at
// the byte level).

// Merge folds the tallies of b into a. Both aggregates must describe
// disjoint zone sets (e.g. different shards of one scan); merging
// overlapping sets double-counts, which nothing here can detect.
func (a *Aggregate) Merge(b *Aggregate) {
	a.Total += b.Total
	a.Unresolved += b.Unresolved
	for k, v := range b.ByStatus {
		a.ByStatus[k] += v
	}
	for k, v := range b.ByBucket {
		a.ByBucket[k] += v
	}
	for name, op := range b.Operators {
		if op == nil {
			continue
		}
		a.op(name).merge(op)
	}

	a.CDSPresent += b.CDSPresent
	a.CDSQueryFailed += b.CDSQueryFailed
	a.CDSInconsistent += b.CDSInconsistent
	a.CDSInconsistentMO += b.CDSInconsistentMO
	a.CDSInUnsigned += b.CDSInUnsigned
	a.CDSDeleteUnsigned += b.CDSDeleteUnsigned
	a.CDSDeleteSecured += b.CDSDeleteSecured
	a.CDSDeleteIslands += b.CDSDeleteIslands
	a.CDSOrphan += b.CDSOrphan
	a.CDSBadSig += b.CDSBadSig

	a.Queries += b.Queries
	a.Retries += b.Retries
	a.GaveUp += b.GaveUp
	a.CacheHits += b.CacheHits
	a.CacheMisses += b.CacheMisses
	a.Coalesced += b.Coalesced
}

// merge adds another shard's counts for the same operator.
func (s *OperatorStats) merge(o *OperatorStats) {
	s.Domains += o.Domains
	s.Unsigned += o.Unsigned
	s.Secured += o.Secured
	s.Invalid += o.Invalid
	s.Islands += o.Islands
	s.CDS += o.CDS
	s.DeleteIslands += o.DeleteIslands
	s.WithSignal += o.WithSignal
	s.AlreadySecured += o.AlreadySecured
	s.CannotBootstrap += o.CannotBootstrap
	s.DeletionRequest += o.DeletionRequest
	s.InvalidDNSSEC += o.InvalidDNSSEC
	s.Potential += o.Potential
	s.Incorrect += o.Incorrect
	s.Correct += o.Correct
}

// ShardState is one shard's serialized accumulator plus the identity
// the coordinator validates before merging.
type ShardState struct {
	// Shard is the shard index, for error messages only.
	Shard int
	// Config is the pipeline flag fingerprint the shard ran under
	// (scan.Checkpoint.Config). Shards scanned with different flags
	// observed different worlds; merging them is refused.
	Config json.RawMessage
	// State is the MarshalState output from the shard's final
	// checkpoint.
	State []byte
}

// MergeShardStates validates and merges the final accumulator states of
// a sharded scan. Every shard must carry the same config fingerprint
// (compared in compact form, since checkpoints store it indented) and a
// readable state version; any mismatch refuses the whole merge rather
// than producing a silently skewed report.
func MergeShardStates(states []ShardState) (*Aggregate, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("report: no shard states to merge")
	}
	compact := func(raw json.RawMessage) ([]byte, error) {
		var buf bytes.Buffer
		if err := json.Compact(&buf, raw); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	ref, err := compact(states[0].Config)
	if err != nil {
		return nil, fmt.Errorf("report: shard %d config fingerprint: %w", states[0].Shard, err)
	}
	merged := NewAggregate()
	for _, st := range states {
		fp, err := compact(st.Config)
		if err != nil {
			return nil, fmt.Errorf("report: shard %d config fingerprint: %w", st.Shard, err)
		}
		if !bytes.Equal(fp, ref) {
			return nil, fmt.Errorf("report: shard %d was scanned with different flags than shard %d: %s vs %s",
				st.Shard, states[0].Shard, fp, ref)
		}
		agg, err := UnmarshalState(st.State)
		if err != nil {
			return nil, fmt.Errorf("report: shard %d state: %w", st.Shard, err)
		}
		merged.Merge(agg)
	}
	return merged, nil
}
