package report

import (
	"sort"
	"strings"
	"testing"

	"dnssecboot/internal/classify"
	"dnssecboot/internal/operator"
)

func res(zone, op string, status classify.Status, bucket classify.Potential) *classify.Result {
	return &classify.Result{
		Zone:     zone,
		Status:   status,
		Bucket:   bucket,
		Operator: operator.Result{Operator: op},
		Queries:  10,
	}
}

func sampleResults() []*classify.Result {
	out := []*classify.Result{
		res("a.com.", "GoDaddy", classify.StatusUnsigned, classify.PotentialNone),
		res("b.com.", "GoDaddy", classify.StatusSecured, classify.PotentialAlreadySecured),
		res("c.com.", "Cloudflare", classify.StatusIsland, classify.PotentialBootstrap),
		res("d.com.", "Cloudflare", classify.StatusInvalid, classify.PotentialInvalidDNSSEC),
		res("e.com.", operator.Unknown, classify.StatusUnsigned, classify.PotentialNone),
		{Zone: "f.com.", Status: classify.StatusUnresolved},
	}
	// CDS flags on selected results.
	out[1].CDS = classify.CDSInfo{Present: true, Consistent: true, MatchesDNSKEY: true, SigValid: true}
	out[2].CDS = classify.CDSInfo{Present: true, Consistent: true, MatchesDNSKEY: true, SigValid: true}
	out[2].Signal = classify.SignalInfo{Probed: true, HasSignal: true, Potential: true, Correct: true}
	out[3].Signal = classify.SignalInfo{Probed: true, HasSignal: true, InvalidDNSSEC: true}
	return out
}

func TestBuildAggregates(t *testing.T) {
	a := Build(sampleResults())
	if a.Total != 6 || a.Unresolved != 1 || a.Resolved() != 5 {
		t.Errorf("totals = %d/%d", a.Total, a.Unresolved)
	}
	if a.ByStatus[classify.StatusUnsigned] != 2 || a.ByStatus[classify.StatusSecured] != 1 {
		t.Errorf("byStatus = %v", a.ByStatus)
	}
	if a.CDSPresent != 2 {
		t.Errorf("CDSPresent = %d", a.CDSPresent)
	}
	gd := a.Operators["GoDaddy"]
	if gd == nil || gd.Domains != 2 || gd.Secured != 1 || gd.CDS != 1 {
		t.Errorf("GoDaddy stats = %+v", gd)
	}
	cf := a.Operators["Cloudflare"]
	if cf.WithSignal != 2 || cf.Potential != 1 || cf.Correct != 1 || cf.InvalidDNSSEC != 1 || cf.CannotBootstrap != 1 {
		t.Errorf("Cloudflare ladder = %+v", cf)
	}
	if a.Queries != 50 {
		t.Errorf("queries = %d", a.Queries)
	}
}

func TestTableRenderings(t *testing.T) {
	a := Build(sampleResults())
	t1 := a.Table1(5)
	if !strings.Contains(t1, "GoDaddy") || !strings.Contains(t1, "Cloudflare") {
		t.Errorf("table1 missing operators:\n%s", t1)
	}
	if strings.Contains(t1, operator.Unknown) {
		t.Error("table1 includes Unknown")
	}
	t2 := a.Table2(5)
	if !strings.Contains(t2, "GoDaddy") {
		t.Errorf("table2:\n%s", t2)
	}
	t3 := a.Table3()
	for _, col := range []string{"Cloudflare", "deSEC", "Glauca Digital", "Others", "Total"} {
		if !strings.Contains(t3, col) {
			t.Errorf("table3 missing column %s", col)
		}
	}
	f1 := a.Figure1()
	if !strings.Contains(f1, "Possible to bootstrap") {
		t.Errorf("figure1:\n%s", f1)
	}
	h := a.Headline()
	if !strings.Contains(h, "resolved 5 zones") {
		t.Errorf("headline: %s", h)
	}
}

func TestTable1SortsByDomains(t *testing.T) {
	rs := sampleResults()
	// Add more Cloudflare zones so it outranks GoDaddy.
	for i := 0; i < 5; i++ {
		rs = append(rs, res("x.com.", "Cloudflare", classify.StatusUnsigned, classify.PotentialNone))
	}
	a := Build(rs)
	t1 := a.Table1(5)
	cfIdx := strings.Index(t1, "Cloudflare")
	gdIdx := strings.Index(t1, "GoDaddy")
	if cfIdx < 0 || gdIdx < 0 || cfIdx > gdIdx {
		t.Errorf("ordering wrong:\n%s", t1)
	}
}

func TestQueryStats(t *testing.T) {
	a := Build(sampleResults())
	qs := a.QueryStats()
	if !strings.Contains(qs, "50 DNS queries") {
		t.Errorf("QueryStats = %s", qs)
	}
	empty := Build(nil)
	if !strings.Contains(empty.QueryStats(), "0 DNS queries") {
		t.Error("empty QueryStats broken")
	}
}

func TestWriteCSV(t *testing.T) {
	a := Build(sampleResults())
	for _, artefact := range []string{"table1", "table2", "table3", "figure1"} {
		var buf strings.Builder
		if err := a.WriteCSV(&buf, artefact); err != nil {
			t.Fatalf("%s: %v", artefact, err)
		}
		out := buf.String()
		lines := strings.Count(out, "\n")
		if lines < 2 {
			t.Errorf("%s CSV has %d lines:\n%s", artefact, lines, out)
		}
	}
	var buf strings.Builder
	if err := a.WriteCSV(&buf, "nope"); err == nil {
		t.Error("unknown artefact accepted")
	}
	// figure1 rows must carry the bucket counts.
	buf.Reset()
	if err := a.WriteCSV(&buf, "figure1"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "possible to bootstrap,1") {
		t.Errorf("figure1 CSV:\n%s", buf.String())
	}
}

// Table 3's CSV rows used to follow map iteration order, so two renders
// of the same aggregate could produce differently ordered files. Rows
// must come out sorted by operator name, identically on every render.
func TestTable3CSVRowOrderDeterministic(t *testing.T) {
	ops := []string{"Zeta", "GoDaddy", "Alpha", "Cloudflare", "Mid", "Beta", "Omega", "Kappa"}
	a := &Aggregate{Operators: map[string]*OperatorStats{}}
	for i, name := range ops {
		a.Operators[name] = &OperatorStats{Name: name, WithSignal: i + 1}
	}
	sorted := append([]string(nil), ops...)
	sort.Strings(sorted)

	var first string
	for render := 0; render < 20; render++ {
		var buf strings.Builder
		if err := a.WriteCSV(&buf, "table3"); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if len(lines) != len(ops)+1 {
			t.Fatalf("render %d: %d lines, want %d:\n%s", render, len(lines), len(ops)+1, buf.String())
		}
		for i, name := range sorted {
			if got := strings.SplitN(lines[i+1], ",", 2)[0]; got != name {
				t.Fatalf("render %d row %d: operator %q, want %q", render, i, got, name)
			}
		}
		if render == 0 {
			first = buf.String()
		} else if buf.String() != first {
			t.Fatalf("render %d differs from first render", render)
		}
	}
}

// The largest-publisher line in CDSFindings used to break DeleteIslands
// ties by map iteration order; ties must resolve to the smallest name.
func TestCDSFindingsLargestPublisherTieBreak(t *testing.T) {
	for i := 0; i < 20; i++ {
		a := &Aggregate{
			CDSDeleteIslands: 6,
			Operators: map[string]*OperatorStats{
				"Zeta":  {Name: "Zeta", DeleteIslands: 3},
				"Alpha": {Name: "Alpha", DeleteIslands: 3},
				"Beta":  {Name: "Beta", DeleteIslands: 1},
			},
		}
		out := a.CDSFindings()
		if !strings.Contains(out, "largest publisher .................... Alpha (3") {
			t.Fatalf("iteration %d: tie not broken by name:\n%s", i, out)
		}
	}
}
