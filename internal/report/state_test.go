package report

import (
	"encoding/json"
	"reflect"
	"testing"

	"dnssecboot/internal/classify"
)

// populatedAggregate fills every field the checkpoint wire form must
// carry, with distinct values so a dropped or swapped field shows up.
func populatedAggregate() *Aggregate {
	a := NewAggregate()
	a.Total = 100
	a.Unresolved = 7
	a.ByStatus[classify.StatusUnsigned] = 60
	a.ByStatus[classify.StatusSecured] = 20
	a.ByStatus[classify.StatusInvalid] = 5
	a.ByStatus[classify.StatusIsland] = 8
	a.ByBucket[classify.PotentialAlreadySecured] = 20
	a.ByBucket[classify.PotentialIslandDelete] = 3
	a.Operators["cloudflare"] = &OperatorStats{
		Name: "cloudflare", Domains: 40, Unsigned: 10, Secured: 20,
		Invalid: 2, Islands: 8, CDS: 25, DeleteIslands: 6,
		WithSignal: 12, AlreadySecured: 5, CannotBootstrap: 1,
		DeletionRequest: 2, InvalidDNSSEC: 1, Potential: 3,
		Incorrect: 1, Correct: 2,
	}
	a.CDSPresent = 30
	a.CDSQueryFailed = 4
	a.CDSInconsistent = 3
	a.CDSInconsistentMO = 2
	a.CDSInUnsigned = 9
	a.CDSDeleteUnsigned = 1
	a.CDSDeleteSecured = 2
	a.CDSDeleteIslands = 6
	a.CDSOrphan = 5
	a.CDSBadSig = 4
	a.Queries = 12345
	a.Retries = 67
	a.GaveUp = 8
	a.CacheHits = 900
	a.CacheMisses = 450
	a.Coalesced = 33
	return a
}

func TestAggregateStateRoundTrip(t *testing.T) {
	a := populatedAggregate()
	data, err := a.MarshalState()
	if err != nil {
		t.Fatalf("MarshalState: %v", err)
	}
	got, err := UnmarshalState(data)
	if err != nil {
		t.Fatalf("UnmarshalState: %v", err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Errorf("round trip changed the aggregate:\n got %+v\nwant %+v", got, a)
	}
	// The rendered artefacts must agree too — they are what a resumed
	// run ultimately prints.
	for name, render := range map[string]func(*Aggregate) string{
		"headline": (*Aggregate).Headline,
		"table3":   (*Aggregate).Table3,
		"cds":      (*Aggregate).CDSFindings,
	} {
		if g, w := render(got), render(a); g != w {
			t.Errorf("%s differs after round trip:\n got: %s\nwant: %s", name, g, w)
		}
	}
}

func TestAggregateStateEmptyRoundTrip(t *testing.T) {
	data, err := NewAggregate().MarshalState()
	if err != nil {
		t.Fatalf("MarshalState: %v", err)
	}
	got, err := UnmarshalState(data)
	if err != nil {
		t.Fatalf("UnmarshalState: %v", err)
	}
	if !reflect.DeepEqual(got, NewAggregate()) {
		t.Errorf("empty aggregate changed: %+v", got)
	}
}

func TestAggregateStateUsesStableEnumNames(t *testing.T) {
	data, err := populatedAggregate().MarshalState()
	if err != nil {
		t.Fatalf("MarshalState: %v", err)
	}
	var wire struct {
		ByStatus map[string]int `json:"by_status"`
		ByBucket map[string]int `json:"by_bucket"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatalf("parsing wire form: %v", err)
	}
	if _, ok := wire.ByStatus["secured"]; !ok {
		t.Errorf("by_status keys are not status names: %v", wire.ByStatus)
	}
	if len(wire.ByBucket) != 2 {
		t.Errorf("by_bucket = %v, want 2 entries", wire.ByBucket)
	}
}

func TestUnmarshalStateRefusesUnknownNames(t *testing.T) {
	for _, bad := range []string{
		`{"by_status":{"quantum":1}}`,
		`{"by_bucket":{"quantum":1}}`,
	} {
		if _, err := UnmarshalState([]byte(bad)); err == nil {
			t.Errorf("UnmarshalState(%s) accepted an unknown enum name", bad)
		}
	}
	if _, err := UnmarshalState([]byte(`{not json`)); err == nil {
		t.Error("UnmarshalState accepted malformed JSON")
	}
}
