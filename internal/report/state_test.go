package report

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"dnssecboot/internal/classify"
)

// populatedAggregate fills every field the checkpoint wire form must
// carry, with distinct values so a dropped or swapped field shows up.
func populatedAggregate() *Aggregate {
	a := NewAggregate()
	a.Total = 100
	a.Unresolved = 7
	a.ByStatus[classify.StatusUnsigned] = 60
	a.ByStatus[classify.StatusSecured] = 20
	a.ByStatus[classify.StatusInvalid] = 5
	a.ByStatus[classify.StatusIsland] = 8
	a.ByBucket[classify.PotentialAlreadySecured] = 20
	a.ByBucket[classify.PotentialIslandDelete] = 3
	a.Operators["cloudflare"] = &OperatorStats{
		Name: "cloudflare", Domains: 40, Unsigned: 10, Secured: 20,
		Invalid: 2, Islands: 8, CDS: 25, DeleteIslands: 6,
		WithSignal: 12, AlreadySecured: 5, CannotBootstrap: 1,
		DeletionRequest: 2, InvalidDNSSEC: 1, Potential: 3,
		Incorrect: 1, Correct: 2,
	}
	a.CDSPresent = 30
	a.CDSQueryFailed = 4
	a.CDSInconsistent = 3
	a.CDSInconsistentMO = 2
	a.CDSInUnsigned = 9
	a.CDSDeleteUnsigned = 1
	a.CDSDeleteSecured = 2
	a.CDSDeleteIslands = 6
	a.CDSOrphan = 5
	a.CDSBadSig = 4
	a.Queries = 12345
	a.Retries = 67
	a.GaveUp = 8
	a.CacheHits = 900
	a.CacheMisses = 450
	a.Coalesced = 33
	return a
}

func TestAggregateStateRoundTrip(t *testing.T) {
	a := populatedAggregate()
	data, err := a.MarshalState()
	if err != nil {
		t.Fatalf("MarshalState: %v", err)
	}
	got, err := UnmarshalState(data)
	if err != nil {
		t.Fatalf("UnmarshalState: %v", err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Errorf("round trip changed the aggregate:\n got %+v\nwant %+v", got, a)
	}
	// The rendered artefacts must agree too — they are what a resumed
	// run ultimately prints.
	for name, render := range map[string]func(*Aggregate) string{
		"headline": (*Aggregate).Headline,
		"table3":   (*Aggregate).Table3,
		"cds":      (*Aggregate).CDSFindings,
	} {
		if g, w := render(got), render(a); g != w {
			t.Errorf("%s differs after round trip:\n got: %s\nwant: %s", name, g, w)
		}
	}
}

func TestAggregateStateEmptyRoundTrip(t *testing.T) {
	data, err := NewAggregate().MarshalState()
	if err != nil {
		t.Fatalf("MarshalState: %v", err)
	}
	got, err := UnmarshalState(data)
	if err != nil {
		t.Fatalf("UnmarshalState: %v", err)
	}
	if !reflect.DeepEqual(got, NewAggregate()) {
		t.Errorf("empty aggregate changed: %+v", got)
	}
}

func TestAggregateStateUsesStableEnumNames(t *testing.T) {
	data, err := populatedAggregate().MarshalState()
	if err != nil {
		t.Fatalf("MarshalState: %v", err)
	}
	var wire struct {
		ByStatus map[string]int `json:"by_status"`
		ByBucket map[string]int `json:"by_bucket"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatalf("parsing wire form: %v", err)
	}
	if _, ok := wire.ByStatus["secured"]; !ok {
		t.Errorf("by_status keys are not status names: %v", wire.ByStatus)
	}
	if len(wire.ByBucket) != 2 {
		t.Errorf("by_bucket = %v, want 2 entries", wire.ByBucket)
	}
}

func TestUnmarshalStateRefusesUnknownNames(t *testing.T) {
	for _, bad := range []string{
		`{"state_version":1,"by_status":{"quantum":1}}`,
		`{"state_version":1,"by_bucket":{"quantum":1}}`,
	} {
		if _, err := UnmarshalState([]byte(bad)); err == nil {
			t.Errorf("UnmarshalState(%s) accepted an unknown enum name", bad)
		}
	}
	if _, err := UnmarshalState([]byte(`{not json`)); err == nil {
		t.Error("UnmarshalState accepted malformed JSON")
	}
}

func TestUnmarshalStateRefusesVersions(t *testing.T) {
	// Missing, zero, stale and future versions are all refused: tallies
	// whose meaning drifted between binaries must not be merged or
	// resumed.
	for _, bad := range []string{
		`{"total":10}`,
		`{"state_version":0,"total":10}`,
		`{"state_version":99,"total":10}`,
	} {
		if _, err := UnmarshalState([]byte(bad)); err == nil {
			t.Errorf("UnmarshalState(%s) accepted a mismatched state version", bad)
		} else if !strings.Contains(err.Error(), "version") {
			t.Errorf("UnmarshalState(%s) refusal does not name the version: %v", bad, err)
		}
	}
}

// randomResults synthesizes n classification results covering every
// tally the accumulator keeps, from a seeded source so failures replay.
func randomResults(rnd *rand.Rand, n int) []*classify.Result {
	operators := []string{"cloudflare", "godaddy", "hetzner", "OtherDNS", "wix"}
	results := make([]*classify.Result, n)
	for i := range results {
		r := &classify.Result{
			Zone:        fmt.Sprintf("zone-%d.example.", i),
			Status:      classify.Statuses[rnd.Intn(len(classify.Statuses))],
			Bucket:      classify.Potentials[rnd.Intn(len(classify.Potentials))],
			Queries:     rnd.Int63n(50),
			Retries:     rnd.Int63n(5),
			GaveUp:      rnd.Int63n(2),
			CacheHits:   rnd.Int63n(30),
			CacheMisses: rnd.Int63n(30),
			Coalesced:   rnd.Int63n(10),
		}
		r.Operator.Operator = operators[rnd.Intn(len(operators))]
		r.Operator.MultiOperator = rnd.Intn(4) == 0
		r.CDS = classify.CDSInfo{
			Present:        rnd.Intn(2) == 0,
			QueryFailed:    rnd.Intn(8) == 0,
			Consistent:     rnd.Intn(4) != 0,
			Delete:         rnd.Intn(6) == 0,
			MatchesDNSKEY:  rnd.Intn(3) != 0,
			SigValid:       rnd.Intn(3) != 0,
			InUnsignedZone: rnd.Intn(5) == 0,
		}
		r.Signal = classify.SignalInfo{
			Probed:          true,
			HasSignal:       rnd.Intn(2) == 0,
			AlreadySecured:  rnd.Intn(5) == 0,
			DeletionRequest: rnd.Intn(7) == 0,
			InvalidDNSSEC:   rnd.Intn(7) == 0,
			Potential:       rnd.Intn(3) == 0,
			Correct:         rnd.Intn(2) == 0,
		}
		results[i] = r
	}
	return results
}

// splitBuild partitions results by a random assignment into parts
// accumulators.
func splitBuild(rnd *rand.Rand, results []*classify.Result, parts int) []*Aggregate {
	aggs := make([]*Aggregate, parts)
	for i := range aggs {
		aggs[i] = NewAggregate()
	}
	for _, r := range results {
		aggs[rnd.Intn(parts)].Add(r)
	}
	return aggs
}

// mergedEqual compares two aggregates structurally and through every
// rendered artefact — byte-equal tables are the property sharding
// actually depends on.
func mergedEqual(t *testing.T, label string, got, want *Aggregate) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s: merged aggregate differs structurally:\n got %+v\nwant %+v", label, got, want)
		return
	}
	for name, render := range map[string]func(*Aggregate) string{
		"headline": (*Aggregate).Headline,
		"table3":   (*Aggregate).Table3,
		"cds":      (*Aggregate).CDSFindings,
		"queries":  (*Aggregate).QueryStats,
	} {
		if g, w := render(got), render(want); g != w {
			t.Errorf("%s: %s differs after merge:\n got: %s\nwant: %s", label, name, g, w)
		}
	}
}

// TestMergeEqualsUnifiedBuild is the core soundness property: however a
// result set is partitioned, merging the per-part accumulators equals
// accumulating the whole set directly.
func TestMergeEqualsUnifiedBuild(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		results := randomResults(rnd, 50+rnd.Intn(200))
		want := Build(results)
		parts := 2 + rnd.Intn(5)
		aggs := splitBuild(rnd, results, parts)
		got := NewAggregate()
		for _, a := range aggs {
			got.Merge(a)
		}
		mergedEqual(t, fmt.Sprintf("trial %d (%d parts)", trial, parts), got, want)
	}
}

// TestMergeCommutativeAssociative: fold order must not matter — the
// coordinator merges shard states in whatever order they land.
func TestMergeCommutativeAssociative(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	results := randomResults(rnd, 300)
	want := Build(results)
	aggs := splitBuild(rnd, results, 4)

	orders := [][]int{
		{0, 1, 2, 3},
		{3, 2, 1, 0},
		{2, 0, 3, 1},
	}
	for _, order := range orders {
		got := NewAggregate()
		for _, i := range order {
			got.Merge(aggs[i])
		}
		mergedEqual(t, fmt.Sprintf("order %v", order), got, want)
	}

	// Associativity: (a·b)·(c·d) == ((a·b)·c)·d. Merge mutates the
	// receiver, so rebuild intermediates from fresh copies via the wire
	// form.
	rebuild := func(idx ...int) *Aggregate {
		out := NewAggregate()
		for _, i := range idx {
			data, err := aggs[i].MarshalState()
			if err != nil {
				t.Fatalf("MarshalState: %v", err)
			}
			a, err := UnmarshalState(data)
			if err != nil {
				t.Fatalf("UnmarshalState: %v", err)
			}
			out.Merge(a)
		}
		return out
	}
	left := rebuild(0, 1)
	right := rebuild(2, 3)
	left.Merge(right)
	mergedEqual(t, "grouped (ab)(cd)", left, want)
}

func TestMergeShardStates(t *testing.T) {
	rnd := rand.New(rand.NewSource(23))
	results := randomResults(rnd, 200)
	want := Build(results)
	aggs := splitBuild(rnd, results, 3)

	cfg := json.RawMessage(`{"seed": 1, "scale": 2000}`)
	// Checkpoints store the fingerprint indented; MergeShardStates must
	// compare compact forms, so give each shard a differently-spaced but
	// equivalent fingerprint.
	cfgIndented := json.RawMessage("{\n  \"seed\": 1,\n  \"scale\": 2000\n}")
	states := make([]ShardState, len(aggs))
	for i, a := range aggs {
		data, err := a.MarshalState()
		if err != nil {
			t.Fatalf("MarshalState: %v", err)
		}
		fp := cfg
		if i%2 == 1 {
			fp = cfgIndented
		}
		states[i] = ShardState{Shard: i, Config: fp, State: data}
	}
	got, err := MergeShardStates(states)
	if err != nil {
		t.Fatalf("MergeShardStates: %v", err)
	}
	mergedEqual(t, "shard states", got, want)

	// Refusals: mismatched fingerprints, unreadable state versions,
	// and an empty set.
	divergent := make([]ShardState, len(states))
	copy(divergent, states)
	divergent[1].Config = json.RawMessage(`{"seed": 2, "scale": 2000}`)
	if _, err := MergeShardStates(divergent); err == nil {
		t.Error("MergeShardStates accepted shards scanned under different flags")
	}
	stale := make([]ShardState, len(states))
	copy(stale, states)
	stale[2].State = []byte(`{"state_version":99,"total":5}`)
	if _, err := MergeShardStates(stale); err == nil {
		t.Error("MergeShardStates accepted a mismatched state version")
	}
	if _, err := MergeShardStates(nil); err == nil {
		t.Error("MergeShardStates accepted an empty shard set")
	}
}

func TestMergeEmptyIsIdentity(t *testing.T) {
	a := populatedAggregate()
	want := populatedAggregate()
	a.Merge(NewAggregate())
	if !reflect.DeepEqual(a, want) {
		t.Errorf("merging an empty aggregate changed the receiver:\n got %+v\nwant %+v", a, want)
	}
	b := NewAggregate()
	b.Merge(want)
	mergedEqual(t, "empty receiver", b, want)
}
