package report

import (
	"encoding/json"
	"fmt"

	"dnssecboot/internal/classify"
)

// Checkpoint serialization for the streaming accumulator. A resumed
// scan must render the same Tables 1–3 as an uninterrupted run without
// re-reading the already-exported observations, so the whole Aggregate
// round-trips through the checkpoint file. The enum-keyed maps are
// re-keyed by their stable string forms: raw integer keys would silently
// rot whenever the classify enums are reordered.

// StateVersion is the aggregate-state wire version, bumped on
// incompatible changes. A merge or resume across mismatched versions is
// refused: summing tallies whose meaning drifted between binaries would
// corrupt every table silently.
const StateVersion = 1

// aggregateState is the wire form of Aggregate.
type aggregateState struct {
	Version    int            `json:"state_version"`
	Total      int            `json:"total"`
	Unresolved int            `json:"unresolved"`
	ByStatus   map[string]int `json:"by_status,omitempty"`
	ByBucket   map[string]int `json:"by_bucket,omitempty"`

	Operators map[string]*OperatorStats `json:"operators,omitempty"`

	CDSPresent        int `json:"cds_present,omitempty"`
	CDSQueryFailed    int `json:"cds_query_failed,omitempty"`
	CDSInconsistent   int `json:"cds_inconsistent,omitempty"`
	CDSInconsistentMO int `json:"cds_inconsistent_mo,omitempty"`
	CDSInUnsigned     int `json:"cds_in_unsigned,omitempty"`
	CDSDeleteUnsigned int `json:"cds_delete_unsigned,omitempty"`
	CDSDeleteSecured  int `json:"cds_delete_secured,omitempty"`
	CDSDeleteIslands  int `json:"cds_delete_islands,omitempty"`
	CDSOrphan         int `json:"cds_orphan,omitempty"`
	CDSBadSig         int `json:"cds_bad_sig,omitempty"`

	Queries     int64 `json:"queries,omitempty"`
	Retries     int64 `json:"retries,omitempty"`
	GaveUp      int64 `json:"gave_up,omitempty"`
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`
	Coalesced   int64 `json:"coalesced,omitempty"`
}

// MarshalState encodes the accumulator for embedding in a scan
// checkpoint.
func (a *Aggregate) MarshalState() ([]byte, error) {
	st := aggregateState{
		Version:    StateVersion,
		Total:      a.Total,
		Unresolved: a.Unresolved,
		Operators:  a.Operators,

		CDSPresent:        a.CDSPresent,
		CDSQueryFailed:    a.CDSQueryFailed,
		CDSInconsistent:   a.CDSInconsistent,
		CDSInconsistentMO: a.CDSInconsistentMO,
		CDSInUnsigned:     a.CDSInUnsigned,
		CDSDeleteUnsigned: a.CDSDeleteUnsigned,
		CDSDeleteSecured:  a.CDSDeleteSecured,
		CDSDeleteIslands:  a.CDSDeleteIslands,
		CDSOrphan:         a.CDSOrphan,
		CDSBadSig:         a.CDSBadSig,

		Queries:     a.Queries,
		Retries:     a.Retries,
		GaveUp:      a.GaveUp,
		CacheHits:   a.CacheHits,
		CacheMisses: a.CacheMisses,
		Coalesced:   a.Coalesced,
	}
	if len(a.ByStatus) > 0 {
		st.ByStatus = make(map[string]int, len(a.ByStatus))
		for k, v := range a.ByStatus {
			st.ByStatus[k.String()] = v
		}
	}
	if len(a.ByBucket) > 0 {
		st.ByBucket = make(map[string]int, len(a.ByBucket))
		for k, v := range a.ByBucket {
			st.ByBucket[k.String()] = v
		}
	}
	data, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("report: encoding aggregate state: %w", err)
	}
	return data, nil
}

// UnmarshalState decodes a checkpointed accumulator. Unknown status or
// bucket names are refused rather than dropped: a silently incomplete
// tally would corrupt every resumed table.
func UnmarshalState(data []byte) (*Aggregate, error) {
	var st aggregateState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("report: parsing aggregate state: %w", err)
	}
	if st.Version != StateVersion {
		return nil, fmt.Errorf("report: aggregate state version %d, this binary reads %d", st.Version, StateVersion)
	}
	a := NewAggregate()
	a.Total = st.Total
	a.Unresolved = st.Unresolved
	for k, v := range st.ByStatus {
		s, ok := classify.StatusFromString(k)
		if !ok {
			return nil, fmt.Errorf("report: aggregate state has unknown status %q", k)
		}
		a.ByStatus[s] = v
	}
	for k, v := range st.ByBucket {
		p, ok := classify.PotentialFromString(k)
		if !ok {
			return nil, fmt.Errorf("report: aggregate state has unknown bucket %q", k)
		}
		a.ByBucket[p] = v
	}
	for name, op := range st.Operators {
		if op == nil {
			continue
		}
		a.Operators[name] = op
	}

	a.CDSPresent = st.CDSPresent
	a.CDSQueryFailed = st.CDSQueryFailed
	a.CDSInconsistent = st.CDSInconsistent
	a.CDSInconsistentMO = st.CDSInconsistentMO
	a.CDSInUnsigned = st.CDSInUnsigned
	a.CDSDeleteUnsigned = st.CDSDeleteUnsigned
	a.CDSDeleteSecured = st.CDSDeleteSecured
	a.CDSDeleteIslands = st.CDSDeleteIslands
	a.CDSOrphan = st.CDSOrphan
	a.CDSBadSig = st.CDSBadSig

	a.Queries = st.Queries
	a.Retries = st.Retries
	a.GaveUp = st.GaveUp
	a.CacheHits = st.CacheHits
	a.CacheMisses = st.CacheMisses
	a.Coalesced = st.Coalesced
	return a, nil
}
