// Package report aggregates classification results and renders the
// paper's evaluation artefacts: the §4.1 headline statistics, Table 1
// (DNSSEC among the top-20 operators), Table 2 (top-20 CDS
// publishers), Figure 1 (bootstrapping-possibility breakdown) and
// Table 3 (signal-zone publication ladder).
package report

import (
	"fmt"
	"sort"
	"strings"

	"dnssecboot/internal/classify"
	"dnssecboot/internal/operator"
)

// OperatorStats accumulates per-operator counts.
type OperatorStats struct {
	Name     string
	Domains  int
	Unsigned int
	Secured  int
	Invalid  int
	Islands  int
	CDS      int
	// DeleteIslands counts this operator's secure islands publishing a
	// deletion request (§4.2: 96.7 % of these are Cloudflare's).
	DeleteIslands int

	// Table-3 ladder (zones with signal records).
	WithSignal      int
	AlreadySecured  int
	CannotBootstrap int
	DeletionRequest int
	InvalidDNSSEC   int
	Potential       int
	Incorrect       int
	Correct         int
}

// Aggregate is the rollup of a whole scan.
type Aggregate struct {
	Total      int
	Unresolved int
	ByStatus   map[classify.Status]int
	ByBucket   map[classify.Potential]int
	Operators  map[string]*OperatorStats

	// §4.2 details.
	CDSPresent        int
	CDSQueryFailed    int
	CDSInconsistent   int
	CDSInconsistentMO int // inconsistent zones with multiple operators
	CDSInUnsigned     int
	CDSDeleteUnsigned int
	CDSDeleteSecured  int
	CDSDeleteIslands  int
	CDSOrphan         int // CDS not matching any DNSKEY (islands)
	CDSBadSig         int // invalid signatures over in-zone CDS (islands)

	Queries int64
	// Retries and GaveUp roll up the resilience counters: retry
	// attempts after transient failures and exchanges that exhausted
	// every attempt (loss-tolerance accounting for E-chaos).
	Retries int64
	GaveUp  int64
	// CacheHits, CacheMisses and Coalesced roll up the shared-cache
	// accounting (E-cache); all zero when the scan ran uncached.
	CacheHits   int64
	CacheMisses int64
	Coalesced   int64
}

// NewAggregate returns an empty streaming accumulator. Feed it one
// classification at a time with Add; every table and figure renders
// from the running tallies, so a scan never has to retain its
// observations or results.
func NewAggregate() *Aggregate {
	return &Aggregate{
		ByStatus:  make(map[classify.Status]int),
		ByBucket:  make(map[classify.Potential]int),
		Operators: make(map[string]*OperatorStats),
	}
}

// Build aggregates a batch of classification results.
func Build(results []*classify.Result) *Aggregate {
	a := NewAggregate()
	for _, r := range results {
		a.Add(r)
	}
	return a
}

// Add folds one zone's classification into the running tallies.
func (a *Aggregate) Add(r *classify.Result) {
	a.Total++
	a.Queries += r.Queries
	a.Retries += r.Retries
	a.GaveUp += r.GaveUp
	a.CacheHits += r.CacheHits
	a.CacheMisses += r.CacheMisses
	a.Coalesced += r.Coalesced
	if r.Status == classify.StatusUnresolved {
		a.Unresolved++
		return
	}
	a.ByStatus[r.Status]++
	a.ByBucket[r.Bucket]++

	op := a.op(r.Operator.Operator)
	op.Domains++
	switch r.Status {
	case classify.StatusUnsigned:
		op.Unsigned++
	case classify.StatusSecured:
		op.Secured++
	case classify.StatusInvalid:
		op.Invalid++
	case classify.StatusIsland:
		op.Islands++
	case classify.StatusUnresolved:
		// Unreachable: unresolved results return before the per-operator
		// accounting above. Kept so the Status switch stays exhaustive.
	}

	if r.CDS.QueryFailed {
		a.CDSQueryFailed++
	}
	if r.CDS.Present {
		a.CDSPresent++
		op.CDS++
		if !r.CDS.Consistent {
			a.CDSInconsistent++
			if r.Operator.MultiOperator {
				a.CDSInconsistentMO++
			}
		}
		if r.CDS.InUnsignedZone {
			a.CDSInUnsigned++
			if r.CDS.Delete {
				a.CDSDeleteUnsigned++
			}
		}
		if r.CDS.Delete {
			switch r.Status {
			case classify.StatusSecured:
				a.CDSDeleteSecured++
			case classify.StatusIsland:
				a.CDSDeleteIslands++
				op.DeleteIslands++
			default:
				// Delete records in unsigned or invalid zones are already
				// counted by CDSDeleteUnsigned / the invalid totals.
			}
		}
		if r.Status == classify.StatusIsland && !r.CDS.Delete && r.CDS.Consistent {
			if !r.CDS.MatchesDNSKEY {
				a.CDSOrphan++
			} else if !r.CDS.SigValid {
				a.CDSBadSig++
			}
		}
	}

	if r.Signal.HasSignal {
		op.WithSignal++
		switch {
		case r.Signal.AlreadySecured:
			op.AlreadySecured++
		case r.Signal.DeletionRequest:
			op.CannotBootstrap++
			op.DeletionRequest++
		case r.Signal.InvalidDNSSEC:
			op.CannotBootstrap++
			op.InvalidDNSSEC++
		case r.Signal.Potential:
			op.Potential++
			if r.Signal.Correct {
				op.Correct++
			} else {
				op.Incorrect++
			}
		}
	}
}

func (a *Aggregate) op(name string) *OperatorStats {
	s, ok := a.Operators[name]
	if !ok {
		s = &OperatorStats{Name: name}
		a.Operators[name] = s
	}
	return s
}

// Resolved returns the population size excluding unresolved zones.
func (a *Aggregate) Resolved() int { return a.Total - a.Unresolved }

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// Headline renders the §4.1 aggregate line.
func (a *Aggregate) Headline() string {
	res := a.Resolved()
	return fmt.Sprintf(
		"resolved %d zones: %d (%.1f%%) unsigned, %d (%.1f%%) secured, %d (%.1f%%) invalid, %d (%.1f%%) secure islands",
		res,
		a.ByStatus[classify.StatusUnsigned], pct(a.ByStatus[classify.StatusUnsigned], res),
		a.ByStatus[classify.StatusSecured], pct(a.ByStatus[classify.StatusSecured], res),
		a.ByStatus[classify.StatusInvalid], pct(a.ByStatus[classify.StatusInvalid], res),
		a.ByStatus[classify.StatusIsland], pct(a.ByStatus[classify.StatusIsland], res),
	)
}

// aggregateTails are the synthetic stand-ins for populations the paper
// does not attribute to a named operator; they are excluded from the
// per-operator tables (but still counted in every aggregate).
var aggregateTails = map[string]bool{
	operator.Unknown: true,
	"OtherDNS":       true,
	"LegacyDNS":      true,
	"PartnerDNS":     true,
	"SignalMisc":     true,
	"MultiSigner":    true,
}

// topOperators returns operator stats sorted by a metric, excluding
// the unattributed aggregates, capped at n.
func (a *Aggregate) topOperators(n int, metric func(*OperatorStats) int) []*OperatorStats {
	var ops []*OperatorStats
	for name, s := range a.Operators {
		if aggregateTails[name] {
			continue
		}
		ops = append(ops, s)
	}
	sort.Slice(ops, func(i, j int) bool {
		mi, mj := metric(ops[i]), metric(ops[j])
		if mi != mj {
			return mi > mj
		}
		return ops[i].Name < ops[j].Name
	})
	if len(ops) > n {
		ops = ops[:n]
	}
	return ops
}

// Table1 renders the DNSSEC-deployment table for the top-n operators
// by domain count (paper Table 1).
func (a *Aggregate) Table1(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: DNSSEC amongst the top %d DNS operators\n", n)
	fmt.Fprintf(&b, "%-16s %10s %10s %6s %9s %6s %8s %6s %8s %6s\n",
		"Operator", "Domains", "Unsigned", "%", "Secured", "%", "Invalid", "%", "Islands", "%")
	for _, s := range a.topOperators(n, func(s *OperatorStats) int { return s.Domains }) {
		fmt.Fprintf(&b, "%-16s %10d %10d %6.2f %9d %6.2f %8d %6.3f %8d %6.3f\n",
			s.Name, s.Domains,
			s.Unsigned, pct(s.Unsigned, s.Domains),
			s.Secured, pct(s.Secured, s.Domains),
			s.Invalid, pct(s.Invalid, s.Domains),
			s.Islands, pct(s.Islands, s.Domains))
	}
	return b.String()
}

// Table2 renders the top-n CDS publishers (paper Table 2).
func (a *Aggregate) Table2(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: top %d DNS operators publishing CDS RRs\n", n)
	fmt.Fprintf(&b, "%-4s %-16s %12s %8s\n", "#", "Operator", "Dom. w. CDS", "%")
	for i, s := range a.topOperators(n, func(s *OperatorStats) int { return s.CDS }) {
		if s.CDS == 0 {
			break
		}
		fmt.Fprintf(&b, "%-4d %-16s %12d %8.1f\n", i+1, s.Name, s.CDS, pct(s.CDS, s.Domains))
	}
	return b.String()
}

// Figure1 renders the bootstrapping-possibility breakdown.
func (a *Aggregate) Figure1() string {
	res := a.Resolved()
	withDNSSEC := res - a.ByBucket[classify.PotentialNone]
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: DNSSEC status and bootstrapping possibility\n")
	fmt.Fprintf(&b, "Scanned (resolved) ......................... %d\n", res)
	fmt.Fprintf(&b, "├─ Without DNSSEC .......................... %d\n", a.ByBucket[classify.PotentialNone])
	fmt.Fprintf(&b, "└─ With DNSSEC ............................. %d\n", withDNSSEC)
	fmt.Fprintf(&b, "   ├─ Already secured ...................... %d\n", a.ByBucket[classify.PotentialAlreadySecured])
	fmt.Fprintf(&b, "   ├─ Invalid DNSSEC ....................... %d\n", a.ByBucket[classify.PotentialInvalidDNSSEC])
	fmt.Fprintf(&b, "   └─ Secure islands ....................... %d\n",
		a.ByBucket[classify.PotentialIslandNoCDS]+a.ByBucket[classify.PotentialIslandInvalidCDS]+
			a.ByBucket[classify.PotentialIslandDelete]+a.ByBucket[classify.PotentialBootstrap])
	fmt.Fprintf(&b, "      ├─ Without CDS ....................... %d\n", a.ByBucket[classify.PotentialIslandNoCDS])
	fmt.Fprintf(&b, "      ├─ Invalid CDS ....................... %d\n", a.ByBucket[classify.PotentialIslandInvalidCDS])
	fmt.Fprintf(&b, "      ├─ CDS delete ........................ %d\n", a.ByBucket[classify.PotentialIslandDelete])
	fmt.Fprintf(&b, "      └─ Possible to bootstrap ............. %d\n", a.ByBucket[classify.PotentialBootstrap])
	return b.String()
}

// table3Columns is the fixed column layout of Table 3.
var table3Columns = []string{"Cloudflare", "deSEC", "Glauca Digital"}

// Table3 renders the signal-zone ladder with the paper's column split
// (the three AB operators, an Others catch-all, and the total).
func (a *Aggregate) Table3() string {
	cols := append([]string{}, table3Columns...)
	get := func(name string) *OperatorStats {
		if s, ok := a.Operators[name]; ok {
			return s
		}
		return &OperatorStats{Name: name}
	}
	others := &OperatorStats{Name: "Others"}
	for name, s := range a.Operators {
		known := false
		for _, c := range cols {
			if name == c {
				known = true
			}
		}
		if known {
			continue
		}
		others.WithSignal += s.WithSignal
		others.AlreadySecured += s.AlreadySecured
		others.CannotBootstrap += s.CannotBootstrap
		others.DeletionRequest += s.DeletionRequest
		others.InvalidDNSSEC += s.InvalidDNSSEC
		others.Potential += s.Potential
		others.Incorrect += s.Incorrect
		others.Correct += s.Correct
	}
	all := []*OperatorStats{get("Cloudflare"), get("deSEC"), get("Glauca Digital"), others}
	total := &OperatorStats{Name: "Total"}
	for _, s := range all {
		total.WithSignal += s.WithSignal
		total.AlreadySecured += s.AlreadySecured
		total.CannotBootstrap += s.CannotBootstrap
		total.DeletionRequest += s.DeletionRequest
		total.InvalidDNSSEC += s.InvalidDNSSEC
		total.Potential += s.Potential
		total.Incorrect += s.Incorrect
		total.Correct += s.Correct
	}
	all = append(all, total)

	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: DNS operators publishing CDS RRs in signal zones\n")
	fmt.Fprintf(&b, "%-34s", "")
	for _, s := range all {
		fmt.Fprintf(&b, "%15s", s.Name)
	}
	b.WriteByte('\n')
	row := func(label string, f func(*OperatorStats) int) {
		fmt.Fprintf(&b, "%-34s", label)
		for _, s := range all {
			fmt.Fprintf(&b, "%15d", f(s))
		}
		b.WriteByte('\n')
	}
	row("with signal CDS", func(s *OperatorStats) int { return s.WithSignal })
	row("  already secured", func(s *OperatorStats) int { return s.AlreadySecured })
	row("  cannot be bootstrapped", func(s *OperatorStats) int { return s.CannotBootstrap })
	row("    deletion request", func(s *OperatorStats) int { return s.DeletionRequest })
	row("    invalid DNSSEC", func(s *OperatorStats) int { return s.InvalidDNSSEC })
	row("  potential to bootstrap", func(s *OperatorStats) int { return s.Potential })
	row("    signal zone incorrect", func(s *OperatorStats) int { return s.Incorrect })
	row("    signal zone correct", func(s *OperatorStats) int { return s.Correct })
	return b.String()
}

// CDSFindings renders the §4.2 correctness numbers.
func (a *Aggregate) CDSFindings() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CDS deployment and correctness (§4.2)\n")
	fmt.Fprintf(&b, "zones with CDS published ............... %d (%.1f%% of resolved)\n", a.CDSPresent, pct(a.CDSPresent, a.Resolved()))
	fmt.Fprintf(&b, "zones whose NS fail CDS queries ........ %d\n", a.CDSQueryFailed)
	fmt.Fprintf(&b, "CDS in unsigned zones .................. %d\n", a.CDSInUnsigned)
	fmt.Fprintf(&b, "  of which deletion requests ........... %d\n", a.CDSDeleteUnsigned)
	fmt.Fprintf(&b, "deletion requests in secured zones ..... %d\n", a.CDSDeleteSecured)
	fmt.Fprintf(&b, "deletion requests in secure islands .... %d\n", a.CDSDeleteIslands)
	if a.CDSDeleteIslands > 0 {
		// Ties broken by name so the report is identical across runs
		// regardless of map iteration order.
		top, topN := "", 0
		for name, s := range a.Operators {
			if s.DeleteIslands > topN || (s.DeleteIslands == topN && topN > 0 && name < top) {
				top, topN = name, s.DeleteIslands
			}
		}
		fmt.Fprintf(&b, "  largest publisher .................... %s (%d, %.1f%%)\n", top, topN, pct(topN, a.CDSDeleteIslands))
	}
	fmt.Fprintf(&b, "inconsistent CDS between NSes .......... %d (multi-operator: %d)\n", a.CDSInconsistent, a.CDSInconsistentMO)
	fmt.Fprintf(&b, "island CDS not matching any DNSKEY ..... %d\n", a.CDSOrphan)
	fmt.Fprintf(&b, "island CDS with invalid signatures ..... %d\n", a.CDSBadSig)
	return b.String()
}

// QueryStats renders the Appendix-D accounting, including the retry
// counters when a resilience policy was active.
func (a *Aggregate) QueryStats() string {
	avg := 0.0
	if a.Total > 0 {
		avg = float64(a.Queries) / float64(a.Total)
	}
	s := fmt.Sprintf("scan issued %d DNS queries over %d zones (%.1f queries/zone)", a.Queries, a.Total, avg)
	if a.Retries > 0 || a.GaveUp > 0 {
		s += fmt.Sprintf("; %d retries (%.2f%% of queries), %d exchanges gave up",
			a.Retries, pct64(a.Retries, a.Queries), a.GaveUp)
	}
	if a.CacheHits > 0 || a.CacheMisses > 0 || a.Coalesced > 0 {
		s += fmt.Sprintf("; cache: %d hits / %d misses (%.1f%% hit rate), %d coalesced lookups",
			a.CacheHits, a.CacheMisses, pct64(a.CacheHits, a.CacheHits+a.CacheMisses), a.Coalesced)
	}
	return s
}

func pct64(n, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}
