// Package operator identifies the DNS operator of a domain from the
// hostnames of its authoritative nameservers, the methodology of §3
// ("Identifying the DNS Operator"): suffix matching on NS hostnames,
// with white-label aliases folded into their true operator (e.g. the
// seized.gov NSes are rebranded Cloudflare).
package operator

import (
	"sort"
	"sync"

	"dnssecboot/internal/dnswire"
)

// Unknown is returned when no rule matches or the match is ambiguous.
const Unknown = "Unknown"

// Identifier maps NS hostname suffixes to operator names.
type Identifier struct {
	mu       sync.RWMutex
	suffixes map[string]string // NS suffix -> operator
}

// New returns an empty identifier.
func New() *Identifier {
	return &Identifier{suffixes: make(map[string]string)}
}

// AddSuffix registers: any NS hostname ending in suffix belongs to
// operator. The suffix is matched on whole labels.
func (id *Identifier) AddSuffix(suffix, operator string) {
	id.mu.Lock()
	defer id.mu.Unlock()
	id.suffixes[dnswire.CanonicalName(suffix)] = operator
}

// OperatorOfHost returns the operator owning one NS hostname.
func (id *Identifier) OperatorOfHost(host string) string {
	host = dnswire.CanonicalName(host)
	id.mu.RLock()
	defer id.mu.RUnlock()
	// Longest-suffix match so white-label rules can override broader
	// ones.
	for name := host; name != "."; name = dnswire.Parent(name) {
		if op, ok := id.suffixes[name]; ok {
			return op
		}
	}
	return Unknown
}

// Result describes the operator determination for a domain.
type Result struct {
	// Operator is the single operator, or Unknown.
	Operator string
	// MultiOperator is true when the NS set spans more than one
	// identified operator (RFC 8901 multi-signer setups; the paper
	// found these behind most CDS inconsistencies).
	MultiOperator bool
	// Operators lists every distinct identified operator, sorted.
	Operators []string
}

// Identify determines the operator(s) for a domain's NS host set.
func (id *Identifier) Identify(nsHosts []string) Result {
	seen := make(map[string]bool)
	unknown := false
	for _, h := range nsHosts {
		op := id.OperatorOfHost(h)
		if op == Unknown {
			unknown = true
			continue
		}
		seen[op] = true
	}
	var ops []string
	for op := range seen {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	switch {
	case len(ops) == 0:
		return Result{Operator: Unknown}
	case len(ops) == 1 && !unknown:
		return Result{Operator: ops[0], Operators: ops}
	case len(ops) == 1 && unknown:
		// Partially identified: attribute to the known operator but do
		// not flag multi-operator (conservative, as the paper tags
		// ambiguous cases Unknown only when nothing matches).
		return Result{Operator: ops[0], Operators: ops}
	default:
		return Result{Operator: ops[0], MultiOperator: true, Operators: ops}
	}
}

// Default returns an identifier preloaded with the operators the
// paper's tables name, keyed by their characteristic NS suffixes.
func Default() *Identifier {
	id := New()
	for suffix, op := range map[string]string{
		"domaincontrol.com.":    "GoDaddy",
		"ns.cloudflare.com.":    "Cloudflare",
		"seized.gov.":           "Cloudflare", // white-label: US Gov seizure pages
		"registrar-servers.com": "Namecheap",
		"googledomains.com.":    "Google Domains",
		"wixdns.net.":           "WIX",
		"dns-parking.com.":      "Hostinger",
		"afternic.com.":         "AfterNIC",
		"hichina.com.":          "HiChina",
		"awsdns.com.":           "AWS",
		"awsdns.org.":           "AWS",
		"awsdns.net.":           "AWS",
		"awsdns.co.uk.":         "AWS",
		"gname-dns.com.":        "GName",
		"namebrightdns.com.":    "NameBright",
		"squarespacedns.com.":   "SquareSpace",
		"ovh.net.":              "OVH",
		"sedoparking.com.":      "Sedo",
		"bluehost.com.":         "BlueHost",
		"namesilo.com.":         "NameSilo",
		"alidns.com.":           "Alibaba",
		"dynadot.com.":          "DynaDot",
		"wordpress.com.":        "Wordpress",
		"siteground.net.":       "SiteGround",
		"desec.io.":             "deSEC",
		"desec.org.":            "deSEC",
		"glauca.digital.":       "Glauca Digital",
		"simply.com.":           "Simply.com",
		"cyon.ch.":              "cyon",
		"gransy.com.":           "Gransy",
		"metanet.ch.":           "METANET",
		"porkbun.com.":          "Porkbun",
		"netim.net.":            "netim",
		"gandi.net.":            "Gandi",
		"webland.ch.":           "Webland",
		"green.ch.":             "green.ch",
		"webhouse.sk.":          "WebHouse",
		"v3hosting.ch.":         "V3 Hosting",
		"hostfactory.ch.":       "HostFactory",
		"inwx.de.":              "INWX",
		"openprovider.nl.":      "OpenProvider",
		"awardic.se.":           "AWARDIC",
		"3dns.box.":             "3DNS",
		"one.com.":              "One.com",
		"51dns.com.":            "51DNS",
		"verisign-grs.com.":     "Verisign",
		"namefind.com.":         "AfterNIC", // Afternic parking NSes
		// Stand-in suffixes used by the synthetic ecosystem for
		// populations the paper describes without naming an operator.
		"multisigner.net.":               "MultiSigner",
		"partnerdns.org.":                "PartnerDNS",
		"signal-misc.net.":               "SignalMisc",
		"ancient-dns.net.":               "LegacyDNS",
		"various-hosting.net.":           "OtherDNS",
		"canaldominios.example-isp.com.": "Canal Dominios",
	} {
		id.AddSuffix(suffix, op)
	}
	return id
}
