package operator

import (
	"reflect"
	"testing"
)

func TestOperatorOfHost(t *testing.T) {
	id := Default()
	cases := []struct{ host, want string }{
		{"ns01.domaincontrol.com.", "GoDaddy"},
		{"asa.ns.cloudflare.com.", "Cloudflare"},
		{"elliot.NS.CLOUDFLARE.COM", "Cloudflare"},
		{"ns1.desec.io.", "deSEC"},
		{"ns2.desec.org.", "deSEC"},
		{"ns1.seized.gov.", "Cloudflare"}, // white label
		{"ns1.namefind.com.", "AfterNIC"},
		{"ns1.example.org.", Unknown},
	}
	for _, c := range cases {
		if got := id.OperatorOfHost(c.host); got != c.want {
			t.Errorf("OperatorOfHost(%q) = %q, want %q", c.host, got, c.want)
		}
	}
}

func TestIdentifySingleOperator(t *testing.T) {
	id := Default()
	res := id.Identify([]string{"ns1.desec.io.", "ns2.desec.org."})
	if res.Operator != "deSEC" || res.MultiOperator {
		t.Errorf("Identify = %+v", res)
	}
}

func TestIdentifyMultiOperator(t *testing.T) {
	id := Default()
	res := id.Identify([]string{"asa.ns.cloudflare.com.", "ns1.desec.io."})
	if !res.MultiOperator {
		t.Errorf("multi-operator not flagged: %+v", res)
	}
	want := []string{"Cloudflare", "deSEC"}
	if !reflect.DeepEqual(res.Operators, want) {
		t.Errorf("Operators = %v", res.Operators)
	}
}

func TestIdentifyUnknown(t *testing.T) {
	id := Default()
	res := id.Identify([]string{"ns1.custom-setup.example.", "ns2.custom-setup.example."})
	if res.Operator != Unknown || res.MultiOperator {
		t.Errorf("Identify = %+v", res)
	}
}

func TestIdentifyPartiallyKnown(t *testing.T) {
	id := Default()
	res := id.Identify([]string{"ns1.desec.io.", "ns9.mystery.example."})
	if res.Operator != "deSEC" || res.MultiOperator {
		t.Errorf("partially-known Identify = %+v", res)
	}
}

func TestLongestSuffixWins(t *testing.T) {
	id := New()
	id.AddSuffix("example.com.", "Broad")
	id.AddSuffix("white.example.com.", "Label")
	if got := id.OperatorOfHost("ns1.white.example.com."); got != "Label" {
		t.Errorf("longest suffix = %q", got)
	}
	if got := id.OperatorOfHost("ns1.other.example.com."); got != "Broad" {
		t.Errorf("fallback suffix = %q", got)
	}
}
