// Package classify turns raw scanner observations into the categories
// the paper reports: the DNSSEC deployment status of §4.1 (unsigned /
// secured / invalid / secure island), the CDS deployment and
// correctness analysis of §4.2, the bootstrapping-potential breakdown
// of Figure 1 (§4.3), and the Authenticated-Bootstrapping status
// ladder of §4.4 / Table 3, including every RFC 9615 signal-zone
// requirement.
package classify

import (
	"fmt"
	"strings"
	"time"

	"dnssecboot/internal/dnssec"
	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/obs"
	"dnssecboot/internal/operator"
	"dnssecboot/internal/scan"
)

// Status is a zone's DNSSEC deployment status (§4.1).
//
// lint:exhaustive — switches over Status must cover every constant.
type Status int

// Statuses.
const (
	// StatusUnresolved: the zone failed to resolve entirely and is
	// excluded from the population.
	StatusUnresolved Status = iota
	// StatusUnsigned: no DNSKEY and no DS.
	StatusUnsigned
	// StatusSecured: DS and DNSKEY present, chain validates.
	StatusSecured
	// StatusInvalid: DS present but validation fails (expired or
	// missing signatures, errant DS, key mismatch).
	StatusInvalid
	// StatusIsland: signed and internally valid, but no DS at the
	// parent ("secure island").
	StatusIsland
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusUnresolved:
		return "unresolved"
	case StatusUnsigned:
		return "unsigned"
	case StatusSecured:
		return "secured"
	case StatusInvalid:
		return "invalid"
	case StatusIsland:
		return "island"
	}
	return "?"
}

// Statuses lists every deployment status, for iteration (checkpoint
// state round-trips, exhaustive tests).
var Statuses = []Status{StatusUnresolved, StatusUnsigned, StatusSecured, StatusInvalid, StatusIsland}

// StatusFromString inverts Status.String — the decode side of the
// checkpoint accumulator state.
func StatusFromString(s string) (Status, bool) {
	for _, st := range Statuses {
		if st.String() == s {
			return st, true
		}
	}
	return 0, false
}

// CDSInfo is the §4.2 view of a zone's CDS/CDNSKEY publication.
type CDSInfo struct {
	// Present: at least one nameserver served CDS or CDNSKEY records.
	Present bool
	// QueryFailed: at least one nameserver failed the CDS query with an
	// error/timeout (the pre-RFC 3597 behaviour, 7.6 M domains).
	QueryFailed bool
	// Consistent: every nameserver that answered returned the same
	// records.
	Consistent bool
	// Delete: the (consistent) content is an RFC 8078 deletion request.
	Delete bool
	// MatchesDNSKEY: every non-delete CDS corresponds to a DNSKEY
	// actually present in the zone.
	MatchesDNSKEY bool
	// SigValid: the RRSIGs over the in-zone CDS verify under the zone's
	// keys. Only meaningful when the zone is signed and CDS present.
	SigValid bool
	// InUnsignedZone: CDS served although the zone has no DNSKEY
	// (a misconfiguration; 2 854 zones in the paper).
	InUnsignedZone bool
	// Records is the canonical (first answering NS) CDS+CDNSKEY set.
	Records []dnswire.RR
}

// Potential is the Figure-1 bootstrapping-possibility bucket.
//
// lint:exhaustive — switches over Potential must cover every constant.
type Potential int

// Figure-1 buckets.
const (
	// PotentialNone: unsigned zone — nothing to bootstrap.
	PotentialNone Potential = iota
	// PotentialAlreadySecured: chain already complete.
	PotentialAlreadySecured
	// PotentialInvalidDNSSEC: zone fails validation.
	PotentialInvalidDNSSEC
	// PotentialIslandNoCDS: island without CDS records.
	PotentialIslandNoCDS
	// PotentialIslandInvalidCDS: island whose CDS does not match its
	// DNSKEYs (or fails its signature / consistency checks).
	PotentialIslandInvalidCDS
	// PotentialIslandDelete: island publishing a deletion request.
	PotentialIslandDelete
	// PotentialBootstrap: island with valid, consistent CDS — the
	// population AB can secure.
	PotentialBootstrap
)

// String names the bucket.
func (p Potential) String() string {
	switch p {
	case PotentialNone:
		return "without DNSSEC"
	case PotentialAlreadySecured:
		return "already secured"
	case PotentialInvalidDNSSEC:
		return "invalid DNSSEC"
	case PotentialIslandNoCDS:
		return "island without CDS"
	case PotentialIslandInvalidCDS:
		return "island with invalid CDS"
	case PotentialIslandDelete:
		return "island with CDS delete"
	case PotentialBootstrap:
		return "possible to bootstrap"
	}
	return "?"
}

// Potentials lists every Figure-1 bucket, for iteration (checkpoint
// state round-trips, exhaustive tests).
var Potentials = []Potential{
	PotentialNone, PotentialAlreadySecured, PotentialInvalidDNSSEC,
	PotentialIslandNoCDS, PotentialIslandInvalidCDS, PotentialIslandDelete,
	PotentialBootstrap,
}

// PotentialFromString inverts Potential.String — the decode side of
// the checkpoint accumulator state.
func PotentialFromString(s string) (Potential, bool) {
	for _, p := range Potentials {
		if p.String() == s {
			return p, true
		}
	}
	return 0, false
}

// SignalViolation is one way a zone's RFC 9615 signalling fails.
type SignalViolation string

// Signal violations (§4.4).
const (
	ViolationMissingUnderNS SignalViolation = "signal missing under some NS"
	ViolationZoneCut        SignalViolation = "zone cut inside signal zone"
	ViolationInsecure       SignalViolation = "signal records not DNSSEC-secure"
	ViolationMismatch       SignalViolation = "signal records differ from in-zone CDS"
	ViolationNameTooLong    SignalViolation = "signalling name exceeds 255 octets"
)

// SignalInfo is the §4.4 / Table 3 ladder for one zone.
type SignalInfo struct {
	// Probed is false when the scan did not query signalling names.
	Probed bool
	// HasSignal: signalling records exist under at least one NS.
	HasSignal bool
	// AlreadySecured / DeletionRequest / InvalidDNSSEC are the
	// cannot-benefit buckets of Table 3.
	AlreadySecured  bool
	DeletionRequest bool
	InvalidDNSSEC   bool
	// Potential: a secure island with usable CDS and some signal RR.
	Potential bool
	// Correct: Potential and every RFC 9615 requirement holds.
	Correct bool
	// Violations lists the failed requirements for Potential zones.
	Violations []SignalViolation
}

// Result is the full classification of one zone.
type Result struct {
	Zone     string
	Status   Status
	Operator operator.Result
	CDS      CDSInfo
	Bucket   Potential
	Signal   SignalInfo
	// Queries, Retries and GaveUp are carried over from the observation
	// (Appendix D accounting plus the resilience counters).
	Queries int64
	Retries int64
	GaveUp  int64
	// CacheHits, CacheMisses and Coalesced carry the shared-cache
	// accounting (zero when the scan ran without a cache).
	CacheHits   int64
	CacheMisses int64
	Coalesced   int64
}

// Classifier holds shared configuration.
type Classifier struct {
	// Operators identifies DNS operators from NS hostnames.
	Operators *operator.Identifier
	// Now anchors signature validity checks.
	Now time.Time
	// Tracer, when set, receives one stage:"classify" decision event per
	// zone, extending the scan-time trace with the outcome the paper's
	// §4 pipeline assigned. Nil disables tracing.
	Tracer *obs.Tracer
}

// New builds a Classifier with the default operator rules.
func New(now time.Time) *Classifier {
	return &Classifier{Operators: operator.Default(), Now: now}
}

// Classify processes one observation.
func (c *Classifier) Classify(o *scan.ZoneObservation) *Result {
	r := &Result{
		Zone: o.Zone, Queries: o.Queries, Retries: o.Retries, GaveUp: o.GaveUp,
		CacheHits: o.CacheHits, CacheMisses: o.CacheMisses, Coalesced: o.Coalesced,
	}
	if o.ResolveErr != "" {
		r.Status = StatusUnresolved
		c.traceDecision(r)
		return r
	}
	r.Operator = c.Operators.Identify(o.AllNSHosts())
	r.Status = statusOf(o)
	r.CDS = c.cdsInfo(o, r.Status)
	r.Bucket = bucketOf(r.Status, r.CDS)
	r.Signal = c.signalInfo(o, r)
	c.traceDecision(r)
	return r
}

// traceDecision extends the zone's trace with the §4 classification
// outcome: the deployment status, the Figure-1 bucket, and (when the
// signal probes ran) the Table-3 verdict with any RFC 9615 violations.
func (c *Classifier) traceDecision(r *Result) {
	sp := c.Tracer.StartSpan(r.Zone)
	if sp == nil {
		return
	}
	sp.Emit(obs.TraceEvent{Stage: "classify", Event: "decision",
		Outcome: r.Status.String(),
		Detail:  fmt.Sprintf("bucket=%q cds_present=%t", r.Bucket, r.CDS.Present)})
	if r.Signal.Probed {
		ev := obs.TraceEvent{Stage: "classify", Event: "signal_verdict",
			Outcome: signalVerdict(r.Signal), N: len(r.Signal.Violations)}
		if len(r.Signal.Violations) > 0 {
			parts := make([]string, len(r.Signal.Violations))
			for i, v := range r.Signal.Violations {
				parts[i] = string(v)
			}
			ev.Detail = strings.Join(parts, "; ")
		}
		sp.Emit(ev)
	}
}

// signalVerdict names the Table-3 rung a zone landed on.
func signalVerdict(s SignalInfo) string {
	switch {
	case !s.HasSignal:
		return "no signal"
	case s.AlreadySecured:
		return "already secured"
	case s.DeletionRequest:
		return "deletion request"
	case s.InvalidDNSSEC:
		return "invalid dnssec"
	case s.Correct:
		return "correct"
	default:
		return "violations"
	}
}

// ClassifyAll processes a batch.
func (c *Classifier) ClassifyAll(obs []*scan.ZoneObservation) []*Result {
	out := make([]*Result, len(obs))
	for i, o := range obs {
		out[i] = c.Classify(o)
	}
	return out
}

func statusOf(obs *scan.ZoneObservation) Status {
	switch {
	case !obs.IsSigned() && !obs.HasDS():
		return StatusUnsigned
	case !obs.IsSigned() && obs.HasDS():
		// Errant DS above an unsigned zone: validating resolvers see
		// this as bogus (§4.1's "errant DS records in the parent").
		return StatusInvalid
	case obs.IsSigned() && obs.HasDS() && obs.ChainValid:
		return StatusSecured
	case obs.IsSigned() && obs.HasDS():
		return StatusInvalid
	case obs.ChainValid:
		return StatusIsland
	default:
		// Signed, no DS, and internally broken: counted with the
		// islands in the paper's population but never bootstrappable.
		return StatusIsland
	}
}

func (c *Classifier) cdsInfo(obs *scan.ZoneObservation, st Status) CDSInfo {
	info := CDSInfo{Consistent: true}
	var reference []dnswire.RR
	var referenceSigs []dnswire.RR
	answered := 0
	for i := range obs.PerNS {
		ns := &obs.PerNS[i]
		if ns.CDSOutcome.Failed() || ns.CDNSKEYOutcome.Failed() {
			info.QueryFailed = true
			continue
		}
		answered++
		combined := ns.CombinedCDS()
		if len(combined) > 0 {
			info.Present = true
		}
		if reference == nil {
			reference = combined
			referenceSigs = append(append([]dnswire.RR(nil), ns.CDSSigs...), ns.CDNSKEYSigs...)
			continue
		}
		if !dnswire.RRsetEqual(reference, combined) {
			info.Consistent = false
		}
	}
	if answered == 0 || !info.Present {
		info.Consistent = answered > 0
		return info
	}
	info.Records = reference
	info.Delete = dnssec.IsDeleteSet(reference)
	if !obs.IsSigned() {
		info.InUnsignedZone = true
		return info
	}
	_, info.MatchesDNSKEY = dnssec.CDSMatchesDNSKEYs(obs.Zone, reference, obs.DNSKEY)
	info.SigValid = c.cdsSigsValid(obs, reference, referenceSigs)
	return info
}

// cdsSigsValid verifies the RRSIGs over the in-zone CDS and CDNSKEY
// RRsets against the zone's DNSKEYs.
func (c *Classifier) cdsSigsValid(obs *scan.ZoneObservation, records, sigs []dnswire.RR) bool {
	byType := dnswire.GroupRRsets(records)
	for _, set := range byType {
		var covering []dnswire.RR
		for _, s := range sigs {
			if sig, ok := s.Data.(*dnswire.RRSIG); ok && sig.TypeCovered == set[0].Type() {
				covering = append(covering, s)
			}
		}
		if err := dnssec.VerifyRRset(set, covering, obs.DNSKEY, c.Now); err != nil {
			return false
		}
	}
	return true
}

func bucketOf(st Status, cds CDSInfo) Potential {
	switch st {
	case StatusUnsigned:
		return PotentialNone
	case StatusSecured:
		return PotentialAlreadySecured
	case StatusInvalid:
		return PotentialInvalidDNSSEC
	case StatusUnresolved:
		// Unreachable: Classify returns before bucketing when the zone
		// failed to resolve. Kept so the Status switch stays exhaustive.
		return PotentialNone
	case StatusIsland:
	}
	// Islands.
	switch {
	case !cds.Present:
		return PotentialIslandNoCDS
	case cds.Delete:
		return PotentialIslandDelete
	case !cds.Consistent || !cds.MatchesDNSKEY || !cds.SigValid:
		return PotentialIslandInvalidCDS
	default:
		return PotentialBootstrap
	}
}

func (c *Classifier) signalInfo(obs *scan.ZoneObservation, r *Result) SignalInfo {
	info := SignalInfo{Probed: len(obs.Signals) > 0}
	if !info.Probed {
		return info
	}
	var present, absent int
	var anyRecords []dnswire.RR
	insecure := false
	zoneCut := false
	tooLong := false
	for _, so := range obs.Signals {
		if so.NameTooLong {
			tooLong = true
			absent++
			continue
		}
		if len(so.Records) > 0 {
			present++
			anyRecords = append(anyRecords, so.Records...)
			if !so.Secure {
				insecure = true
			}
			if so.ZoneCut {
				zoneCut = true
			}
		} else {
			absent++
		}
	}
	if present == 0 {
		return info
	}
	info.HasSignal = true

	// Table 3's mutually-exclusive ladder.
	switch {
	case r.Status == StatusSecured:
		info.AlreadySecured = true
		return info
	case dnssec.IsDeleteSet(firstOwnerSet(obs)) || r.CDS.Delete:
		info.DeletionRequest = true
		return info
	case r.Status == StatusUnsigned || r.Status == StatusInvalid ||
		!r.CDS.Consistent || (r.CDS.Present && (!r.CDS.MatchesDNSKEY || !r.CDS.SigValid)):
		info.InvalidDNSSEC = true
		return info
	}

	// A secure island with signal RRs: the AB deployment candidate.
	info.Potential = true
	if absent > 0 {
		info.Violations = append(info.Violations, ViolationMissingUnderNS)
	}
	if tooLong {
		info.Violations = append(info.Violations, ViolationNameTooLong)
	}
	if zoneCut {
		info.Violations = append(info.Violations, ViolationZoneCut)
	}
	if insecure {
		info.Violations = append(info.Violations, ViolationInsecure)
	}
	// RFC 9615: the signalling RRs must match the zone's own CDS.
	if r.CDS.Present && !signalMatchesCDS(obs, r.CDS.Records) {
		info.Violations = append(info.Violations, ViolationMismatch)
	}
	info.Correct = len(info.Violations) == 0
	return info
}

// firstOwnerSet returns the records from the first signal observation
// carrying any, used for the deletion-request check.
func firstOwnerSet(obs *scan.ZoneObservation) []dnswire.RR {
	for _, so := range obs.Signals {
		if len(so.Records) > 0 {
			return so.Records
		}
	}
	return nil
}

// signalMatchesCDS checks that each signal observation's content equals
// the in-zone CDS set (ignoring owner names, which necessarily differ).
func signalMatchesCDS(obs *scan.ZoneObservation, zoneCDS []dnswire.RR) bool {
	want := rdataSet(zoneCDS)
	for _, so := range obs.Signals {
		if len(so.Records) == 0 {
			continue
		}
		got := rdataSet(so.Records)
		if len(got) != len(want) {
			return false
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
	}
	return true
}

func rdataSet(rrs []dnswire.RR) map[string]bool {
	out := make(map[string]bool, len(rrs))
	for _, rr := range rrs {
		w, err := dnswire.RDataWire(rr.Data)
		if err != nil {
			continue
		}
		out[rr.Type().String()+"|"+string(w)] = true
	}
	return out
}
