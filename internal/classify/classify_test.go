package classify

import (
	"testing"
	"time"

	"dnssecboot/internal/dnssec"
	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/scan"
)

var testNow = time.Date(2025, 4, 15, 12, 0, 0, 0, time.UTC)

// signedFixture builds a consistent (DNSKEY, sigs, DS, CDS) bundle for
// a synthetic zone.
type signedFixture struct {
	zone    string
	key     *dnssec.Key
	keyRR   dnswire.RR
	keySig  dnswire.RR
	ds      dnswire.RR
	cds     dnswire.RR
	cdsSig  dnswire.RR
	soaSigs []dnswire.RR
}

func newFixture(t *testing.T, zoneName string) *signedFixture {
	t.Helper()
	k, err := dnssec.GenerateKey(dnswire.AlgEd25519, dnswire.DNSKEYFlagZone|dnswire.DNSKEYFlagSEP, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := &signedFixture{zone: zoneName, key: k}
	f.keyRR = dnswire.RR{Name: zoneName, Class: dnswire.ClassIN, TTL: 3600, Data: k.DNSKEY()}
	sig, err := dnssec.SignRRset([]dnswire.RR{f.keyRR}, k, dnssec.ValidityWindow(testNow, zoneName))
	if err != nil {
		t.Fatal(err)
	}
	f.keySig = sig
	ds, err := dnssec.DSFromKey(zoneName, k.DNSKEY(), dnswire.DigestSHA256)
	if err != nil {
		t.Fatal(err)
	}
	f.ds = dnswire.RR{Name: zoneName, Class: dnswire.ClassIN, TTL: 86400, Data: ds}
	cds, err := dnssec.CDSFromKey(zoneName, k.DNSKEY(), dnswire.DigestSHA256)
	if err != nil {
		t.Fatal(err)
	}
	f.cds = dnswire.RR{Name: zoneName, Class: dnswire.ClassIN, TTL: 3600, Data: cds}
	cdsSig, err := dnssec.SignRRset([]dnswire.RR{f.cds}, k, dnssec.ValidityWindow(testNow, zoneName))
	if err != nil {
		t.Fatal(err)
	}
	f.cdsSig = cdsSig
	return f
}

func (f *signedFixture) observation(hasDS, chainValid bool) *scan.ZoneObservation {
	obs := &scan.ZoneObservation{
		Zone:       f.zone,
		ParentNS:   []string{"ns1.op.net.", "ns2.op.net."},
		ChildNS:    []string{"ns1.op.net.", "ns2.op.net."},
		DNSKEY:     []dnswire.RR{f.keyRR},
		DNSKEYSigs: []dnswire.RR{f.keySig},
		ChainValid: chainValid,
	}
	if hasDS {
		obs.DS = []dnswire.RR{f.ds}
	}
	for _, h := range obs.ParentNS {
		obs.PerNS = append(obs.PerNS, scan.NSObservation{
			Host:           h,
			CDS:            []dnswire.RR{f.cds},
			CDSSigs:        []dnswire.RR{f.cdsSig},
			CDSOutcome:     scan.OutcomeOK,
			CDNSKEYOutcome: scan.OutcomeNoData,
		})
	}
	return obs
}

func TestStatusLadder(t *testing.T) {
	c := New(testNow)
	f := newFixture(t, "x.com.")

	cases := []struct {
		name string
		obs  *scan.ZoneObservation
		want Status
	}{
		{"unresolved", &scan.ZoneObservation{Zone: "x.com.", ResolveErr: "boom"}, StatusUnresolved},
		{"unsigned", &scan.ZoneObservation{Zone: "x.com.", ParentNS: []string{"ns1.op.net."}}, StatusUnsigned},
		{"errant-ds", &scan.ZoneObservation{Zone: "x.com.", ParentNS: []string{"ns1.op.net."}, DS: []dnswire.RR{f.ds}}, StatusInvalid},
		{"secured", f.observation(true, true), StatusSecured},
		{"invalid", f.observation(true, false), StatusInvalid},
		{"island", f.observation(false, true), StatusIsland},
	}
	for _, tc := range cases {
		if got := c.Classify(tc.obs).Status; got != tc.want {
			t.Errorf("%s: status = %s, want %s", tc.name, got, tc.want)
		}
	}
}

func TestCDSInfoConsistency(t *testing.T) {
	c := New(testNow)
	f := newFixture(t, "x.com.")
	obs := f.observation(false, true)
	r := c.Classify(obs)
	if !r.CDS.Present || !r.CDS.Consistent || !r.CDS.MatchesDNSKEY || !r.CDS.SigValid {
		t.Errorf("clean CDS info = %+v", r.CDS)
	}
	if r.Bucket != PotentialBootstrap {
		t.Errorf("bucket = %s", r.Bucket)
	}

	// Second NS serves a different CDS → inconsistent.
	other := newFixture(t, "x.com.")
	obs2 := f.observation(false, true)
	obs2.PerNS[1].CDS = []dnswire.RR{other.cds}
	r2 := c.Classify(obs2)
	if r2.CDS.Consistent {
		t.Error("inconsistency not detected")
	}
	if r2.Bucket != PotentialIslandInvalidCDS {
		t.Errorf("bucket = %s", r2.Bucket)
	}
}

func TestCDSQueryFailure(t *testing.T) {
	c := New(testNow)
	f := newFixture(t, "x.com.")
	obs := f.observation(false, true)
	obs.PerNS[0].CDSOutcome = scan.OutcomeError
	obs.PerNS[0].CDS = nil
	r := c.Classify(obs)
	if !r.CDS.QueryFailed {
		t.Error("query failure not recorded")
	}
	// The other NS still answered, so CDS is present and consistent.
	if !r.CDS.Present || !r.CDS.Consistent {
		t.Errorf("CDS info = %+v", r.CDS)
	}
}

func TestCDSDeleteDetection(t *testing.T) {
	c := New(testNow)
	f := newFixture(t, "x.com.")
	obs := f.observation(false, true)
	del := dnswire.RR{Name: "x.com.", Class: dnswire.ClassIN, TTL: 0, Data: dnssec.DeleteCDS()}
	for i := range obs.PerNS {
		obs.PerNS[i].CDS = []dnswire.RR{del}
		obs.PerNS[i].CDSSigs = nil
	}
	r := c.Classify(obs)
	if !r.CDS.Delete {
		t.Error("delete not detected")
	}
	if r.Bucket != PotentialIslandDelete {
		t.Errorf("bucket = %s", r.Bucket)
	}
}

func TestCDSInUnsignedZone(t *testing.T) {
	c := New(testNow)
	f := newFixture(t, "x.com.")
	obs := f.observation(false, true)
	obs.DNSKEY, obs.DNSKEYSigs = nil, nil
	obs.ChainValid = false
	r := c.Classify(obs)
	if r.Status != StatusUnsigned {
		t.Fatalf("status = %s", r.Status)
	}
	if !r.CDS.InUnsignedZone {
		t.Error("CDS-in-unsigned not flagged")
	}
}

func TestOrphanCDS(t *testing.T) {
	c := New(testNow)
	f := newFixture(t, "x.com.")
	stranger := newFixture(t, "x.com.")
	obs := f.observation(false, true)
	// Both NSes consistently serve a CDS for a key not in the zone.
	for i := range obs.PerNS {
		obs.PerNS[i].CDS = []dnswire.RR{stranger.cds}
		obs.PerNS[i].CDSSigs = []dnswire.RR{stranger.cdsSig}
	}
	r := c.Classify(obs)
	if r.CDS.MatchesDNSKEY {
		t.Error("orphan CDS reported as matching")
	}
	if r.Bucket != PotentialIslandInvalidCDS {
		t.Errorf("bucket = %s", r.Bucket)
	}
}

func TestSignalLadderSecured(t *testing.T) {
	c := New(testNow)
	f := newFixture(t, "x.com.")
	obs := f.observation(true, true)
	obs.Signals = []scan.SignalObservation{
		{NSHost: "ns1.op.net.", Owner: "_dsboot.x.com._signal.ns1.op.net.",
			Records: []dnswire.RR{f.cds}, Outcome: scan.OutcomeOK, Secure: true},
	}
	r := c.Classify(obs)
	if !r.Signal.HasSignal || !r.Signal.AlreadySecured {
		t.Errorf("signal info = %+v", r.Signal)
	}
}

func TestSignalLadderPotentialAndViolations(t *testing.T) {
	c := New(testNow)
	f := newFixture(t, "x.com.")
	obs := f.observation(false, true)
	sigOwner := func(host string) string { return "_dsboot.x.com._signal." + host }
	obs.Signals = []scan.SignalObservation{
		{NSHost: "ns1.op.net.", Owner: sigOwner("ns1.op.net."),
			Records: []dnswire.RR{{Name: sigOwner("ns1.op.net."), Class: dnswire.ClassIN, TTL: 3600, Data: f.cds.Data}},
			Outcome: scan.OutcomeOK, Secure: true},
		{NSHost: "ns2.op.net.", Owner: sigOwner("ns2.op.net."),
			Records: []dnswire.RR{{Name: sigOwner("ns2.op.net."), Class: dnswire.ClassIN, TTL: 3600, Data: f.cds.Data}},
			Outcome: scan.OutcomeOK, Secure: true},
	}
	r := c.Classify(obs)
	if !r.Signal.Potential || !r.Signal.Correct {
		t.Fatalf("clean signal = %+v", r.Signal)
	}

	// Missing under one NS.
	obs.Signals[1].Records = nil
	obs.Signals[1].Outcome = scan.OutcomeNXDomain
	r = c.Classify(obs)
	if r.Signal.Correct || !containsViolation(r.Signal.Violations, ViolationMissingUnderNS) {
		t.Errorf("missing-NS signal = %+v", r.Signal)
	}
	obs.Signals[1].Records = []dnswire.RR{{Name: sigOwner("ns2.op.net."), Class: dnswire.ClassIN, TTL: 3600, Data: f.cds.Data}}
	obs.Signals[1].Outcome = scan.OutcomeOK
	obs.Signals[1].Secure = true

	// Insecure signal.
	obs.Signals[0].Secure = false
	r = c.Classify(obs)
	if r.Signal.Correct || !containsViolation(r.Signal.Violations, ViolationInsecure) {
		t.Errorf("insecure signal = %+v", r.Signal)
	}
	obs.Signals[0].Secure = true

	// Zone cut.
	obs.Signals[0].ZoneCut = true
	r = c.Classify(obs)
	if r.Signal.Correct || !containsViolation(r.Signal.Violations, ViolationZoneCut) {
		t.Errorf("zone-cut signal = %+v", r.Signal)
	}
	obs.Signals[0].ZoneCut = false

	// Content mismatch with the in-zone CDS.
	other := newFixture(t, "x.com.")
	obs.Signals[0].Records = []dnswire.RR{{Name: sigOwner("ns1.op.net."), Class: dnswire.ClassIN, TTL: 3600, Data: other.cds.Data}}
	r = c.Classify(obs)
	if r.Signal.Correct || !containsViolation(r.Signal.Violations, ViolationMismatch) {
		t.Errorf("mismatch signal = %+v", r.Signal)
	}
}

func TestSignalDeletionRequest(t *testing.T) {
	c := New(testNow)
	f := newFixture(t, "x.com.")
	obs := f.observation(false, true)
	del := dnswire.RR{Name: "x.com.", Class: dnswire.ClassIN, TTL: 0, Data: dnssec.DeleteCDS()}
	for i := range obs.PerNS {
		obs.PerNS[i].CDS = []dnswire.RR{del}
		obs.PerNS[i].CDSSigs = nil
	}
	obs.Signals = []scan.SignalObservation{
		{NSHost: "ns1.op.net.", Owner: "_dsboot.x.com._signal.ns1.op.net.",
			Records: []dnswire.RR{{Name: "_dsboot.x.com._signal.ns1.op.net.", Class: dnswire.ClassIN, Data: dnssec.DeleteCDS()}},
			Outcome: scan.OutcomeOK, Secure: true},
	}
	r := c.Classify(obs)
	if !r.Signal.DeletionRequest {
		t.Errorf("deletion-request signal = %+v", r.Signal)
	}
}

func TestSignalInvalidDNSSEC(t *testing.T) {
	c := New(testNow)
	f := newFixture(t, "x.com.")
	obs := f.observation(true, false) // invalid chain
	obs.Signals = []scan.SignalObservation{
		{NSHost: "ns1.op.net.", Owner: "_dsboot.x.com._signal.ns1.op.net.",
			Records: []dnswire.RR{f.cds}, Outcome: scan.OutcomeOK, Secure: true},
	}
	r := c.Classify(obs)
	if !r.Signal.InvalidDNSSEC {
		t.Errorf("invalid-DNSSEC signal = %+v", r.Signal)
	}
}

func containsViolation(vs []SignalViolation, want SignalViolation) bool {
	for _, v := range vs {
		if v == want {
			return true
		}
	}
	return false
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		StatusUnresolved: "unresolved", StatusUnsigned: "unsigned",
		StatusSecured: "secured", StatusInvalid: "invalid", StatusIsland: "island",
	} {
		if s.String() != want {
			t.Errorf("Status(%d) = %s", s, s.String())
		}
	}
	for p, want := range map[Potential]string{
		PotentialNone: "without DNSSEC", PotentialBootstrap: "possible to bootstrap",
	} {
		if p.String() != want {
			t.Errorf("Potential(%d) = %s", p, p.String())
		}
	}
}
