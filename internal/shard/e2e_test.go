// End-to-end conformance battery for the sharded orchestration: real
// dnssec-scan worker processes driven by the coordinator, with the
// merged JSONL dump, CSV series and rendered report compared byte-for-
// byte against a single-process -stateless run of the same world — the
// headline guarantee of cmd/scanctl, including under an injected
// mid-run worker kill and checkpoint restart.
package shard

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dnssecboot/internal/obs"
	"dnssecboot/internal/report"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// workerBinary builds cmd/dnssec-scan once per test run and returns its
// path. The coordinator is exercised through the library (Run), so only
// the worker needs a real binary.
func workerBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		goTool, err := exec.LookPath("go")
		if err != nil {
			buildErr = fmt.Errorf("go toolchain not in PATH: %w", err)
			return
		}
		buildDir, err = os.MkdirTemp("", "shard-e2e-bin")
		if err != nil {
			buildErr = err
			return
		}
		cmd := exec.Command(goTool, "build", "-o", buildDir+string(os.PathSeparator), "../../cmd/dnssec-scan")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("building dnssec-scan: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatalf("worker binary: %v", buildErr)
	}
	return filepath.Join(buildDir, "dnssec-scan")
}

func TestMain(m *testing.M) {
	code := m.Run()
	if buildDir != "" {
		os.RemoveAll(buildDir)
	}
	os.Exit(code)
}

// reference runs a single-process -stateless scan of the given scale
// and returns its dump bytes, headline text, and CSV artefacts.
func reference(t *testing.T, bin string, scale int) (dump []byte, headline string, csv map[string][]byte) {
	t.Helper()
	dir := t.TempDir()
	csvDir := filepath.Join(dir, "csv")
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		t.Fatal(err)
	}
	dumpPath := filepath.Join(dir, "ref.jsonl")
	cmd := exec.Command(bin,
		"-scale", fmt.Sprint(scale), "-stateless",
		"-dump", dumpPath, "-csv-dir", csvDir, "-out", "headline")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("reference run: %v\n%s", err, stderr.String())
	}
	dumpBytes, err := os.ReadFile(dumpPath)
	if err != nil {
		t.Fatalf("reference dump: %v", err)
	}
	csv = make(map[string][]byte)
	for _, artefact := range []string{"table1", "table2", "table3", "figure1"} {
		b, err := os.ReadFile(filepath.Join(csvDir, artefact+".csv"))
		if err != nil {
			t.Fatalf("reference %s: %v", artefact, err)
		}
		csv[artefact] = b
	}
	return dumpBytes, stdout.String(), csv
}

// shardedRun drives the coordinator over real worker processes and
// returns the merged dump and aggregate.
func shardedRun(t *testing.T, bin string, scale, shards int, mutate func(*Config)) ([]byte, *report.Aggregate, *Result) {
	t.Helper()
	dir := t.TempDir()
	mergedPath := filepath.Join(dir, "merged.jsonl")
	cfg := Config{
		Shards: shards,
		RunDir: filepath.Join(dir, "run"),
		Worker: WorkerConfig{
			Bin: bin,
			Args: []string{
				"-seed", "1", "-scale", fmt.Sprint(scale),
				"-concurrency", "4", "-stateless=true",
				"-checkpoint-every", "16",
			},
			Dump: true,
		},
		MergedDump:  mergedPath,
		MaxRestarts: 3,
		Backoff:     50 * time.Millisecond,
		KillShard:   -1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	res, err := Run(ctx, cfg)
	if err != nil {
		logs, _ := filepath.Glob(filepath.Join(cfg.RunDir, "*.log"))
		var tails strings.Builder
		for _, l := range logs {
			b, _ := os.ReadFile(l)
			fmt.Fprintf(&tails, "--- %s ---\n%s\n", filepath.Base(l), b)
		}
		t.Fatalf("coordinated run (%d shards): %v\n%s", shards, err, tails.String())
	}
	merged, err := os.ReadFile(mergedPath)
	if err != nil {
		t.Fatalf("merged dump: %v", err)
	}
	return merged, res.Aggregate, res
}

// assertConformance checks the sharded outputs byte-for-byte against
// the single-process reference.
func assertConformance(t *testing.T, label string, refDump, gotDump []byte, refHeadline string, refCSV map[string][]byte, agg *report.Aggregate) {
	t.Helper()
	if !bytes.Equal(gotDump, refDump) {
		t.Errorf("%s: merged dump differs from single-process export (got %d bytes, want %d)",
			label, len(gotDump), len(refDump))
	}
	if got := agg.Headline() + "\n"; got != refHeadline {
		t.Errorf("%s: headline differs:\n got: %q\nwant: %q", label, got, refHeadline)
	}
	for artefact, want := range refCSV {
		var got bytes.Buffer
		if err := agg.WriteCSV(&got, artefact); err != nil {
			t.Fatalf("%s: WriteCSV(%s): %v", label, artefact, err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Errorf("%s: %s CSV differs from single-process output", label, artefact)
		}
	}
}

// TestCoordinatedConformance is the headline guarantee at two shard
// counts and two world scales: a coordinated multi-process run is
// byte-identical to a single-process -stateless run of the same world.
func TestCoordinatedConformance(t *testing.T) {
	bin := workerBinary(t)
	for _, tc := range []struct {
		scale, shards int
	}{
		{500_000, 2},
		{500_000, 4},
		{150_000, 2},
		{150_000, 4},
	} {
		t.Run(fmt.Sprintf("scale=%d/shards=%d", tc.scale, tc.shards), func(t *testing.T) {
			refDump, refHeadline, refCSV := reference(t, bin, tc.scale)
			gotDump, agg, res := shardedRun(t, bin, tc.scale, tc.shards, nil)
			assertConformance(t, "conformance", refDump, gotDump, refHeadline, refCSV, agg)
			if res.Restarts != 0 {
				t.Errorf("healthy run needed %d restarts", res.Restarts)
			}
		})
	}
}

// TestCoordinatedKillRestartConformance is the shard-failure
// regression: one worker is SIGKILLed mid-run, the coordinator restarts
// it from its last durable checkpoint, and the merged output is still
// byte-identical — the multi-process extension of the drain-prefix/
// resume byte-equality tests in internal/scan.
func TestCoordinatedKillRestartConformance(t *testing.T) {
	bin := workerBinary(t)
	const scale, shards = 500_000, 4
	refDump, refHeadline, refCSV := reference(t, bin, scale)
	gotDump, agg, res := shardedRun(t, bin, scale, shards, func(cfg *Config) {
		cfg.KillShard = 1
		cfg.KillAfterZones = 32
	})
	if res.Restarts < 1 {
		t.Fatal("injected kill did not cause a restart; the regression did not exercise the resume path")
	}
	assertConformance(t, "kill+restart", refDump, gotDump, refHeadline, refCSV, agg)
}

// TestCoordinatorGivesUpAfterBudget pins the bounded-restart contract:
// a worker that always dies must fail the run after MaxRestarts+1
// attempts, not spin forever.
func TestCoordinatorGivesUpAfterBudget(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Shards:      2,
		RunDir:      filepath.Join(dir, "run"),
		Worker:      WorkerConfig{Bin: "/bin/false"},
		MaxRestarts: 2,
		Backoff:     time.Millisecond,
		KillShard:   -1,
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	_, err := Run(ctx, cfg)
	if err == nil {
		t.Fatal("coordinator succeeded with a worker that always fails")
	}
	if !strings.Contains(err.Error(), "giving up") {
		t.Errorf("error does not mention the exhausted budget: %v", err)
	}
}

// TestCoordinatorRollup checks the per-shard progress rollup sees real
// checkpoint-derived totals.
func TestCoordinatorRollup(t *testing.T) {
	bin := workerBinary(t)
	var buf bytes.Buffer
	rollup := obs.NewShardRollup(&buf, 2)
	_, _, _ = shardedRun(t, bin, 500_000, 2, func(cfg *Config) {
		cfg.Rollup = rollup
	})
	done, total := rollup.Totals()
	if total == 0 || done != total {
		t.Errorf("rollup totals = %d/%d after a completed run, want equal and nonzero", done, total)
	}
	if !strings.Contains(buf.String(), "shards:") {
		t.Errorf("rollup rendered nothing: %q", buf.String())
	}
}
