package shard

import (
	"reflect"
	"testing"
)

func TestPartitionCoversContiguously(t *testing.T) {
	for _, total := range []int{0, 1, 2, 7, 100, 2033, 287_600} {
		for _, shards := range []int{1, 2, 3, 4, 16, 97} {
			ranges := Partition(total, shards)
			if len(ranges) != shards {
				t.Fatalf("Partition(%d, %d) returned %d ranges", total, shards, len(ranges))
			}
			covered := 0
			prevHi := 0
			minLen, maxLen := total, 0
			for i, r := range ranges {
				if r.Lo != prevHi {
					t.Errorf("Partition(%d, %d): range %d starts at %d, previous ended at %d",
						total, shards, i, r.Lo, prevHi)
				}
				if r.Len() < 0 {
					t.Errorf("Partition(%d, %d): range %d is negative: %+v", total, shards, i, r)
				}
				if r.Len() < minLen {
					minLen = r.Len()
				}
				if r.Len() > maxLen {
					maxLen = r.Len()
				}
				covered += r.Len()
				prevHi = r.Hi
			}
			if prevHi != total || covered != total {
				t.Errorf("Partition(%d, %d) covers [0, %d) with %d zones, want exactly [0, %d)",
					total, shards, prevHi, covered, total)
			}
			if maxLen-minLen > 1 {
				t.Errorf("Partition(%d, %d): range sizes span [%d, %d], want balanced within 1",
					total, shards, minLen, maxLen)
			}
		}
	}
}

func TestPartitionIsReproducible(t *testing.T) {
	// Shard boundaries are derived independently by every worker and the
	// coordinator; two computations must agree exactly.
	a := Partition(2033, 4)
	b := Partition(2033, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Partition is not deterministic: %v vs %v", a, b)
	}
	want := []Range{{0, 509}, {509, 1017}, {1017, 1525}, {1525, 2033}}
	if !reflect.DeepEqual(a, want) {
		t.Fatalf("Partition(2033, 4) = %v, want %v", a, want)
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in            string
		shard, shards int
		wantErr       bool
	}{
		{"", 0, 1, false},
		{"0/1", 0, 1, false},
		{"0/4", 0, 4, false},
		{"3/4", 3, 4, false},
		{"4/4", 0, 0, true},
		{"-1/4", 0, 0, true},
		{"1", 0, 0, true},
		{"a/4", 0, 0, true},
		{"1/b", 0, 0, true},
		{"1/0", 0, 0, true},
	}
	for _, c := range cases {
		shard, shards, err := Parse(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("Parse(%q) error = %v, wantErr %t", c.in, err, c.wantErr)
			continue
		}
		if err == nil && (shard != c.shard || shards != c.shards) {
			t.Errorf("Parse(%q) = %d/%d, want %d/%d", c.in, shard, shards, c.shard, c.shards)
		}
	}
}

func TestPathFor(t *testing.T) {
	if got, want := PathFor("run/dump-{shard}.jsonl", 2, 8), "run/dump-2-of-8.jsonl"; got != want {
		t.Errorf("PathFor = %q, want %q", got, want)
	}
	if got := PathFor("plain.jsonl", 2, 8); got != "plain.jsonl" {
		t.Errorf("PathFor without placeholder changed the path: %q", got)
	}
}
