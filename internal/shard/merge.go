package shard

// The merge side of the coordinator, split from the process-management
// code: everything here must be a pure function of the shard
// checkpoints and dump bytes, because the cross-shard conformance
// battery asserts byte-equality of merged output against a single-shard
// run. The determinism analyzer covers this file (and partition.go);
// the coordinator proper keeps its wall-clock state — stall detection,
// progress ticks — out of scope.

import (
	"fmt"
	"io"
	"os"

	"dnssecboot/internal/report"
	"dnssecboot/internal/scan"
)

// shardComplete reports whether shard i's checkpoint covers its whole
// range.
func (c *coordinator) shardComplete(i int) (bool, error) {
	cp, err := scan.ReadCheckpoint(CheckpointPath(c.cfg.RunDir, i, c.cfg.Shards))
	if err != nil {
		return false, fmt.Errorf("shard %d: no final checkpoint: %w", i, err)
	}
	return cp.NextIndex >= Partition(cp.TotalZones, c.cfg.Shards)[i].Hi, nil
}

// merge validates the final shard checkpoints against each other and
// combines them: accumulator states through report.MergeShardStates,
// JSONL dumps by concatenation in shard order.
func (c *coordinator) merge() (*Result, error) {
	n := c.cfg.Shards
	cps := make([]*scan.Checkpoint, n)
	for i := 0; i < n; i++ {
		cp, err := scan.ReadCheckpoint(CheckpointPath(c.cfg.RunDir, i, n))
		if err != nil {
			return nil, fmt.Errorf("shard: merging: %w", err)
		}
		cps[i] = cp
	}
	ref := cps[0]
	states := make([]report.ShardState, n)
	for i, cp := range cps {
		if cp.TotalZones != ref.TotalZones || cp.Seed != ref.Seed {
			return nil, fmt.Errorf("shard: shard %d scanned world (seed %d, %d zones), shard 0 scanned (seed %d, %d zones)",
				i, cp.Seed, cp.TotalZones, ref.Seed, ref.TotalZones)
		}
		if cp.Shards != n || cp.Shard != i {
			return nil, fmt.Errorf("shard: checkpoint %d claims shard %d/%d, want %d/%d", i, cp.Shard, cp.Shards, i, n)
		}
		rng := Partition(cp.TotalZones, n)[i]
		if cp.NextIndex != rng.Hi {
			return nil, fmt.Errorf("shard: shard %d stopped at %d, range ends at %d", i, cp.NextIndex, rng.Hi)
		}
		states[i] = report.ShardState{Shard: i, Config: cp.Config, State: cp.Aggregate}
	}
	merged, err := report.MergeShardStates(states)
	if err != nil {
		return nil, err
	}
	if c.cfg.MergedDump != "" {
		if err := c.concatDumps(cps); err != nil {
			return nil, err
		}
	}
	return &Result{Aggregate: merged, TotalZones: ref.TotalZones}, nil
}

// concatDumps stitches the per-shard JSONL exports into one file in
// shard order. Each shard's file size must match its final checkpoint's
// DumpBytes — anything else means records past the durable prefix and a
// merge would not be trustworthy.
func (c *coordinator) concatDumps(cps []*scan.Checkpoint) error {
	out, err := os.Create(c.cfg.MergedDump)
	if err != nil {
		return fmt.Errorf("shard: merged dump: %w", err)
	}
	for i, cp := range cps {
		path := DumpPath(c.cfg.RunDir, i, c.cfg.Shards)
		f, err := os.Open(path)
		if err != nil {
			out.Close()
			return fmt.Errorf("shard: merged dump: %w", err)
		}
		st, err := f.Stat()
		if err == nil && st.Size() != cp.DumpBytes {
			err = fmt.Errorf("shard: shard %d dump is %d bytes, checkpoint covers %d", i, st.Size(), cp.DumpBytes)
		}
		if err == nil {
			_, err = io.Copy(out, f)
		}
		f.Close()
		if err != nil {
			out.Close()
			return err
		}
	}
	if err := out.Close(); err != nil {
		return fmt.Errorf("shard: merged dump: %w", err)
	}
	return nil
}
