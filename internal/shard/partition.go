// Package shard partitions the zone space across cooperating scan
// processes and coordinates their lifecycle. The paper's campaign
// covered 287.6 M zones — far beyond one process — so the scan is split
// into N contiguous index ranges, each owned by one `dnssec-scan
// -shard i/N` worker; the coordinator (cmd/scanctl) launches the
// workers, restarts dead or wedged ones from their last durable
// checkpoint, and merges the per-shard accumulator states and JSONL
// dumps into output byte-identical to a single-process -stateless run.
package shard

import (
	"fmt"
	"strconv"
	"strings"
)

// Range is a half-open interval [Lo, Hi) of zone indices.
type Range struct {
	Lo, Hi int
}

// Len returns the number of zones in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Partition splits [0, total) into shards contiguous ranges whose sizes
// differ by at most one, larger ranges first. The split is a pure
// function of (total, shards): every worker and the coordinator derive
// identical boundaries independently, which is what makes per-shard
// checkpoints and dump concatenation meaningful across processes.
func Partition(total, shards int) []Range {
	if shards < 1 {
		shards = 1
	}
	ranges := make([]Range, shards)
	base := total / shards
	extra := total % shards
	lo := 0
	for i := range ranges {
		size := base
		if i < extra {
			size++
		}
		ranges[i] = Range{Lo: lo, Hi: lo + size}
		lo += size
	}
	return ranges
}

// Parse reads the -shard flag form "i/N" (0-based shard i of N) and
// validates 0 <= i < N. The empty string means unsharded (0/1).
func Parse(s string) (shard, shards int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	idx, n, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("shard: %q is not of the form i/N", s)
	}
	shard, err = strconv.Atoi(idx)
	if err != nil {
		return 0, 0, fmt.Errorf("shard: bad index in %q: %w", s, err)
	}
	shards, err = strconv.Atoi(n)
	if err != nil {
		return 0, 0, fmt.Errorf("shard: bad count in %q: %w", s, err)
	}
	if shards < 1 || shard < 0 || shard >= shards {
		return 0, 0, fmt.Errorf("shard: index %d outside [0, %d)", shard, shards)
	}
	return shard, shards, nil
}

// PathFor expands the {shard} placeholder in a file path to the
// canonical "i-of-N" form, so one -dump/-checkpoint template yields a
// distinct file per worker. Paths without the placeholder pass through
// unchanged.
func PathFor(path string, shard, shards int) string {
	return strings.ReplaceAll(path, "{shard}", fmt.Sprintf("%d-of-%d", shard, shards))
}
