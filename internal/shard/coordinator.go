package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"dnssecboot/internal/obs"
	"dnssecboot/internal/report"
	"dnssecboot/internal/scan"
)

// WorkerConfig describes how to invoke one shard worker process.
type WorkerConfig struct {
	// Bin is the dnssec-scan binary.
	Bin string
	// Args are the scan flags every shard shares (-seed, -scale,
	// -stateless, ...). The coordinator appends the per-shard pieces:
	// -shard i/N, -checkpoint, -dump, -out none and, on restart,
	// -resume.
	Args []string
	// Dump asks every worker for a per-shard JSONL export, merged into
	// Config.MergedDump afterwards.
	Dump bool
}

// Config drives one coordinated sharded scan.
type Config struct {
	// Shards is the number of worker processes (contiguous partitions).
	Shards int
	// RunDir holds per-shard checkpoints, dumps and logs. Created if
	// absent; reusing a previous run's directory resumes its shards
	// from their checkpoints.
	RunDir string
	// Worker is the worker process template.
	Worker WorkerConfig
	// MergedDump, when non-empty (requires Worker.Dump), receives the
	// shard dumps concatenated in shard order — byte-identical to a
	// single-process export of the same world.
	MergedDump string
	// MaxRestarts bounds restarts per shard; a shard that dies more
	// often fails the whole run.
	MaxRestarts int
	// Backoff is the delay before the first restart, doubling per
	// subsequent attempt up to MaxBackoff (default 30s).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// StallTimeout kills and restarts a worker whose checkpoint stops
	// advancing for this long (0 disables). It must comfortably exceed
	// the worker's checkpoint cadence, or healthy shards get shot.
	StallTimeout time.Duration
	// KillShard, when >= 0, SIGKILLs that shard's worker once its
	// checkpoint covers KillAfterZones zones — fault injection for the
	// conformance battery and `make shard-smoke`.
	KillShard      int
	KillAfterZones int
	// Rollup receives per-shard progress; nil disables reporting.
	Rollup *obs.ShardRollup
	// Log receives coordinator diagnostics (restarts, kills); nil
	// discards them.
	Log io.Writer
}

// Result summarises a completed coordinated scan.
type Result struct {
	// Aggregate is the merged accumulator across all shards.
	Aggregate *report.Aggregate
	// TotalZones is the world size every shard agreed on.
	TotalZones int
	// Restarts counts worker restarts across all shards.
	Restarts int
}

// CheckpointPath returns shard i's checkpoint file inside runDir.
func CheckpointPath(runDir string, i, n int) string {
	return filepath.Join(runDir, fmt.Sprintf("shard-%d-of-%d.ckpt", i, n))
}

// DumpPath returns shard i's JSONL export inside runDir.
func DumpPath(runDir string, i, n int) string {
	return filepath.Join(runDir, fmt.Sprintf("shard-%d-of-%d.jsonl", i, n))
}

// LogPath returns shard i's worker log (appended across restarts).
func LogPath(runDir string, i, n int) string {
	return filepath.Join(runDir, fmt.Sprintf("shard-%d-of-%d.log", i, n))
}

type coordinator struct {
	cfg Config

	mu       sync.Mutex
	procs    map[int]*os.Process // live worker processes, for fault injection
	states   []string            // obs.Shard* lifecycle per shard
	restarts int
	killed   bool // the injected kill fired
}

// Run partitions the scan across cfg.Shards worker processes, supervises
// them to completion and merges their final states. On success the
// returned aggregate renders the same report a single-process run over
// the whole zone list would have; with Worker.Dump the concatenated
// export lands in cfg.MergedDump.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.Worker.Bin == "" {
		return nil, fmt.Errorf("shard: no worker binary configured")
	}
	if cfg.MergedDump != "" && !cfg.Worker.Dump {
		return nil, fmt.Errorf("shard: MergedDump requires Worker.Dump")
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 500 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 30 * time.Second
	}
	if err := os.MkdirAll(cfg.RunDir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: run dir: %w", err)
	}

	c := &coordinator{
		cfg:    cfg,
		procs:  make(map[int]*os.Process),
		states: make([]string, cfg.Shards),
	}
	for i := range c.states {
		c.states[i] = obs.ShardPending
	}

	// Supervise every shard; the first terminal failure cancels the
	// rest so the run fails fast instead of finishing doomed work.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := make(chan struct{})
	if cfg.Rollup != nil {
		go c.reportLoop(stop)
	}
	if cfg.KillShard >= 0 && cfg.KillShard < cfg.Shards {
		go c.injectKill(stop)
	}
	errs := make([]error, cfg.Shards)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := c.superviseShard(runCtx, i); err != nil {
				errs[i] = err
				cancel()
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	if cfg.Rollup != nil {
		// Final rollup pass: short runs can finish between ticks, and
		// the last line should show every shard's terminal position.
		for i := 0; i < cfg.Shards; i++ {
			c.updateRollup(i)
		}
		cfg.Rollup.Render()
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res, err := c.merge()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	res.Restarts = c.restarts
	c.mu.Unlock()
	return res, nil
}

func (c *coordinator) logf(format string, args ...any) {
	if c.cfg.Log != nil {
		fmt.Fprintf(c.cfg.Log, "scanctl: "+format+"\n", args...)
	}
}

func (c *coordinator) setState(i int, s string) {
	c.mu.Lock()
	c.states[i] = s
	c.mu.Unlock()
}

// superviseShard runs shard i's worker to completion, restarting it
// from its checkpoint (exponential backoff, bounded budget) whenever it
// dies or wedges before finishing its range.
func (c *coordinator) superviseShard(ctx context.Context, i int) error {
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			delay := c.cfg.Backoff << (attempt - 1)
			if delay > c.cfg.MaxBackoff {
				delay = c.cfg.MaxBackoff
			}
			c.logf("shard %d/%d: restart %d/%d in %v", i, c.cfg.Shards, attempt, c.cfg.MaxRestarts, delay)
			c.setState(i, obs.ShardRestarting)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(delay):
			}
			c.mu.Lock()
			c.restarts++
			c.mu.Unlock()
		}
		err := c.runWorkerOnce(ctx, i)
		if err == nil {
			done, derr := c.shardComplete(i)
			if derr != nil {
				err = derr
			} else if done {
				c.setState(i, obs.ShardDone)
				return nil
			} else {
				// A clean exit short of the range end (e.g. the worker
				// was SIGINT-drained) leaves a valid checkpoint; treat
				// it like a death and resume.
				err = fmt.Errorf("worker exited before completing its range")
			}
		}
		if ctx.Err() != nil {
			c.setState(i, obs.ShardFailed)
			return ctx.Err()
		}
		if attempt >= c.cfg.MaxRestarts {
			c.setState(i, obs.ShardFailed)
			return fmt.Errorf("shard %d/%d: giving up after %d attempts: %w", i, c.cfg.Shards, attempt+1, err)
		}
		c.logf("shard %d/%d: worker died: %v", i, c.cfg.Shards, err)
	}
}

// runWorkerOnce launches one worker process for shard i and waits for
// it. A checkpoint left by a previous attempt is resumed; worker output
// is appended to the shard log.
func (c *coordinator) runWorkerOnce(ctx context.Context, i int) error {
	cpPath := CheckpointPath(c.cfg.RunDir, i, c.cfg.Shards)
	args := append([]string{}, c.cfg.Worker.Args...)
	args = append(args,
		"-shard", fmt.Sprintf("%d/%d", i, c.cfg.Shards),
		"-checkpoint", cpPath,
		"-out", "none",
	)
	if c.cfg.Worker.Dump {
		args = append(args, "-dump", DumpPath(c.cfg.RunDir, i, c.cfg.Shards))
	}
	if _, err := os.Stat(cpPath); err == nil {
		args = append(args, "-resume", cpPath)
	}

	logFile, err := os.OpenFile(LogPath(c.cfg.RunDir, i, c.cfg.Shards),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("shard %d log: %w", i, err)
	}
	defer logFile.Close()

	cmd := exec.CommandContext(ctx, c.cfg.Worker.Bin, args...)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("shard %d: starting worker: %w", i, err)
	}
	c.mu.Lock()
	c.procs[i] = cmd.Process
	c.mu.Unlock()
	c.setState(i, obs.ShardRunning)

	stallStop := make(chan struct{})
	if c.cfg.StallTimeout > 0 {
		go c.watchStall(i, cpPath, cmd.Process, stallStop)
	}
	err = cmd.Wait()
	close(stallStop)
	c.mu.Lock()
	delete(c.procs, i)
	c.mu.Unlock()
	if err != nil {
		return fmt.Errorf("shard %d worker: %w", i, err)
	}
	return nil
}

// watchStall kills a worker whose checkpoint stops advancing: a wedged
// shard (deadlock, livelock, unkillable query) looks exactly like a
// slow one from the outside, and the checkpoint is the only progress
// signal that survives the process boundary.
func (c *coordinator) watchStall(i int, cpPath string, proc *os.Process, stop <-chan struct{}) {
	poll := c.cfg.StallTimeout / 4
	if poll < 100*time.Millisecond {
		poll = 100 * time.Millisecond
	}
	tick := time.NewTicker(poll)
	defer tick.Stop()
	lastIndex := -1
	lastChange := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			next := -1
			if cp, err := scan.ReadCheckpoint(cpPath); err == nil {
				next = cp.NextIndex
			}
			if next != lastIndex {
				lastIndex = next
				lastChange = time.Now()
				continue
			}
			if time.Since(lastChange) >= c.cfg.StallTimeout {
				c.logf("shard %d/%d: no checkpoint progress for %v, killing wedged worker",
					i, c.cfg.Shards, c.cfg.StallTimeout)
				_ = proc.Kill()
				return
			}
		}
	}
}

// injectKill SIGKILLs cfg.KillShard's worker once its checkpoint shows
// KillAfterZones scanned zones — deterministic-enough fault injection
// for the restart-and-still-byte-identical regression.
func (c *coordinator) injectKill(stop <-chan struct{}) {
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	i := c.cfg.KillShard
	threshold := c.cfg.KillAfterZones
	if threshold < 1 {
		threshold = 1
	}
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			cp, err := scan.ReadCheckpoint(CheckpointPath(c.cfg.RunDir, i, c.cfg.Shards))
			if err != nil {
				continue
			}
			rng := Partition(cp.TotalZones, c.cfg.Shards)[i]
			if cp.NextIndex-rng.Lo < threshold || cp.NextIndex >= rng.Hi {
				continue
			}
			c.mu.Lock()
			proc := c.procs[i]
			alreadyKilled := c.killed
			if proc != nil && !alreadyKilled {
				c.killed = true
			}
			c.mu.Unlock()
			if proc != nil && !alreadyKilled {
				c.logf("shard %d/%d: injecting kill at checkpoint index %d", i, c.cfg.Shards, cp.NextIndex)
				_ = proc.Kill()
				return
			}
		}
	}
}

// reportLoop feeds the rollup from the shard checkpoints. Checkpoint
// writes are atomic renames, so a read never sees a torn file — at
// worst a slightly stale one.
func (c *coordinator) reportLoop(stop <-chan struct{}) {
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			for i := 0; i < c.cfg.Shards; i++ {
				c.updateRollup(i)
			}
			c.cfg.Rollup.Render()
		}
	}
}

func (c *coordinator) updateRollup(i int) {
	c.mu.Lock()
	state := c.states[i]
	c.mu.Unlock()
	cp, err := scan.ReadCheckpoint(CheckpointPath(c.cfg.RunDir, i, c.cfg.Shards))
	if err != nil {
		c.cfg.Rollup.Update(i, 0, 0, state)
		return
	}
	rng := Partition(cp.TotalZones, c.cfg.Shards)[i]
	c.cfg.Rollup.Update(i, cp.NextIndex-rng.Lo, rng.Len(), state)
}
