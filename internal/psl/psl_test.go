package psl

import "testing"

func TestPublicSuffixBasic(t *testing.T) {
	l := Default()
	cases := []struct{ name, want string }{
		{"example.com.", "com."},
		{"www.example.com.", "com."},
		{"example.co.uk.", "co.uk."},
		{"deep.example.co.uk.", "co.uk."},
		{"example.ch.", "ch."},
		{"something.unknowntld.", "unknowntld."}, // implicit * rule
	}
	for _, c := range cases {
		if got := l.PublicSuffix(c.name); got != c.want {
			t.Errorf("PublicSuffix(%q) = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestRegistrableDomain(t *testing.T) {
	l := Default()
	cases := []struct {
		name string
		want string
		ok   bool
	}{
		{"example.com.", "example.com.", true},
		{"www.example.com.", "example.com.", true},
		{"example.co.uk.", "example.co.uk.", true},
		{"a.b.example.co.uk.", "example.co.uk.", true},
		{"com.", "", false},
		{"co.uk.", "", false},
		{"uk.", "", false},
	}
	for _, c := range cases {
		got, ok := l.RegistrableDomain(c.name)
		if got != c.want || ok != c.ok {
			t.Errorf("RegistrableDomain(%q) = %q,%v want %q,%v", c.name, got, ok, c.want, c.ok)
		}
	}
}

func TestIsRegistrable(t *testing.T) {
	l := Default()
	if !l.IsRegistrable("example.com.") {
		t.Error("example.com. not registrable")
	}
	if l.IsRegistrable("www.example.com.") {
		t.Error("www.example.com. reported registrable")
	}
	if l.IsRegistrable("co.uk.") {
		t.Error("co.uk. reported registrable")
	}
}

// A name equal to a public suffix must never be registrable, whatever
// its spelling: dotted, undotted, uppercase, or any mix. The empty-label
// rows are the regression cases for the pre-fix bug where doubled or
// leading dots desynchronised the label arithmetic — "co.uk.." came
// back as registrable domain "." (the root) and ".co.uk" as ".co.uk.".
func TestRegistrableDomainSuffixEqualSpellings(t *testing.T) {
	l := Default()
	cases := []struct {
		name string
		want string
		ok   bool
	}{
		// Suffix-equal names in every spelling: never registrable.
		{"co.uk.", "", false},
		{"co.uk", "", false},
		{"CO.UK.", "", false},
		{"Co.Uk", "", false},
		{"uk", "", false},
		{"UK.", "", false},
		{"com", "", false},
		{"COM.", "", false},
		// One label below stays registrable in any spelling.
		{"Example.CO.UK", "example.co.uk.", true},
		{"EXAMPLE.COM.", "example.com.", true},
		// Empty-label garbage from dirty dumps: no registrable domain.
		{"", "", false},
		{".", "", false},
		{"..", "", false},
		{"co.uk..", "", false},
		{".co.uk", "", false},
		{"example..co.uk.", "", false},
		{"..example.com.", "", false},
	}
	for _, c := range cases {
		got, ok := l.RegistrableDomain(c.name)
		if got != c.want || ok != c.ok {
			t.Errorf("RegistrableDomain(%q) = %q,%v want %q,%v", c.name, got, ok, c.want, c.ok)
		}
	}
	// The malformed forms must not claim a public suffix either.
	for _, name := range []string{"co.uk..", ".co.uk", "example..com."} {
		if got := l.PublicSuffix(name); got != "." {
			t.Errorf("PublicSuffix(%q) = %q, want \".\"", name, got)
		}
	}
}

func TestWildcardAndExceptionRules(t *testing.T) {
	l, err := ParseString(`
// comment line
ck
*.ck
!www.ck
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.PublicSuffix("example.ck."); got != "example.ck." {
		t.Errorf("wildcard suffix = %q", got)
	}
	if got, ok := l.RegistrableDomain("foo.example.ck."); !ok || got != "foo.example.ck." {
		t.Errorf("wildcard registrable = %q,%v", got, ok)
	}
	// Exception: www.ck is registrable even though *.ck is a suffix.
	if got, ok := l.RegistrableDomain("www.ck."); !ok || got != "www.ck." {
		t.Errorf("exception registrable = %q,%v", got, ok)
	}
}

func TestParseSkipsComments(t *testing.T) {
	l, err := ParseString("// only a comment\n\ncom\n")
	if err != nil {
		t.Fatal(err)
	}
	if !l.IsPublicSuffix("com.") {
		t.Error("com. not parsed")
	}
	// Under the implicit "*" rule every bare label is a suffix, but the
	// comment must not have produced a multi-label rule.
	if got := l.PublicSuffix("only.a.comment."); got != "comment." {
		t.Errorf("comment line leaked into rules: suffix = %q", got)
	}
}
