// Package psl implements Public Suffix List matching (the Mozilla PSL
// algorithm: normal, wildcard and exception rules) and the
// registrable-domain computation the paper's domain selection relies
// on: "zones directly underneath an ICANN public suffix … e.g.
// example.com and example.co.uk, but not a.example.com" (§3).
package psl

import (
	"bufio"
	"io"
	"strings"

	"dnssecboot/internal/dnswire"
)

// List is a parsed public-suffix list.
type List struct {
	rules      map[string]bool // exact suffix rules
	wildcards  map[string]bool // "*.<base>" rules, keyed by base
	exceptions map[string]bool // "!<name>" rules
}

// Parse reads PSL rules, one per line; comments ("//") and empty lines
// are skipped.
func Parse(r io.Reader) (*List, error) {
	l := &List{
		rules:      make(map[string]bool),
		wildcards:  make(map[string]bool),
		exceptions: make(map[string]bool),
	}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		if i := strings.IndexAny(line, " \t"); i >= 0 {
			line = line[:i]
		}
		l.AddRule(line)
	}
	return l, sc.Err()
}

// ParseString is Parse over a string.
func ParseString(text string) (*List, error) {
	return Parse(strings.NewReader(text))
}

// AddRule inserts one PSL rule in its textual form.
func (l *List) AddRule(rule string) {
	switch {
	case strings.HasPrefix(rule, "!"):
		l.exceptions[dnswire.CanonicalName(rule[1:])] = true
	case strings.HasPrefix(rule, "*."):
		l.wildcards[dnswire.CanonicalName(rule[2:])] = true
	default:
		l.rules[dnswire.CanonicalName(rule)] = true
	}
}

// Default returns the suffix set used by the synthetic ecosystem: the
// TLDs named in the paper plus common second-level suffixes.
func Default() *List {
	l := &List{
		rules:      make(map[string]bool),
		wildcards:  make(map[string]bool),
		exceptions: make(map[string]bool),
	}
	for _, r := range []string{
		"com", "net", "org", "info", "biz", "xyz", "online", "shop", "top", "site",
		"ch", "li", "swiss", "whoswho",
		"se", "nu", "ee", "sk", "eu", "de", "nl", "bo",
		"uk", "co.uk", "org.uk", "me.uk", "ac.uk",
		"com.bo", "org.bo", "vip", "gov",
	} {
		l.AddRule(r)
	}
	return l
}

// hasEmptyLabel reports whether a split name contains an empty label —
// the residue of doubled or leading dots ("co..uk.", ".co.uk.",
// "co.uk.."). Real-world zone dumps contain such garbage; matching it
// against the rule maps would silently misalign label arithmetic and,
// pre-fix, could report the root "." as a registrable domain.
func hasEmptyLabel(labels []string) bool {
	for _, l := range labels {
		if l == "" {
			return true
		}
	}
	return false
}

// PublicSuffix returns the longest matching public suffix of name
// under the PSL algorithm. If no rule matches, the rightmost label is
// the suffix (the implicit "*" rule). Malformed names (empty labels
// from doubled or leading dots) have no suffix: the root is returned.
func (l *List) PublicSuffix(name string) string {
	name = dnswire.CanonicalName(name)
	labels := dnswire.SplitLabels(name)
	if len(labels) == 0 || hasEmptyLabel(labels) {
		return "."
	}
	best := ""
	bestLen := 0
	for i := 0; i < len(labels); i++ {
		cand := strings.Join(labels[i:], ".") + "."
		n := len(labels) - i
		if l.exceptions[cand] {
			// An exception rule matches as its own parent.
			parent := dnswire.Parent(cand)
			if n-1 > bestLen {
				best, bestLen = parent, n-1
			}
			continue
		}
		if l.rules[cand] && n > bestLen {
			best, bestLen = cand, n
		}
		// Wildcard "*.<base>": matches <label>.<base>.
		if i+1 < len(labels) {
			base := strings.Join(labels[i+1:], ".") + "."
			if l.wildcards[base] && !l.exceptions[cand] && n > bestLen {
				best, bestLen = cand, n
			}
		}
	}
	if best == "" {
		best = labels[len(labels)-1] + "."
	}
	return best
}

// RegistrableDomain returns the registrable domain of name: one label
// below its public suffix. ok is false if name is itself a public
// suffix (or shorter), in any of its dotted, undotted or uppercase
// spellings, and for malformed names containing empty labels.
func (l *List) RegistrableDomain(name string) (string, bool) {
	name = dnswire.CanonicalName(name)
	labels := dnswire.SplitLabels(name)
	if len(labels) == 0 || hasEmptyLabel(labels) {
		return "", false
	}
	suffix := l.PublicSuffix(name)
	if name == suffix {
		return "", false
	}
	sufLabels := dnswire.CountLabels(suffix)
	if len(labels) <= sufLabels {
		return "", false
	}
	return strings.Join(labels[len(labels)-sufLabels-1:], ".") + ".", true
}

// IsRegistrable reports whether name is exactly a registrable domain
// (one label below a public suffix) — the paper's selection criterion.
func (l *List) IsRegistrable(name string) bool {
	reg, ok := l.RegistrableDomain(name)
	return ok && reg == dnswire.CanonicalName(name)
}

// IsPublicSuffix reports whether name matches a suffix rule exactly.
func (l *List) IsPublicSuffix(name string) bool {
	return l.PublicSuffix(name) == dnswire.CanonicalName(name)
}
