package dnssec

import (
	"net/netip"
	"testing"
	"time"

	"dnssecboot/internal/dnswire"
)

var testNow = time.Date(2025, 4, 15, 12, 0, 0, 0, time.UTC)

var allAlgorithms = []uint8{
	dnswire.AlgRSASHA256,
	dnswire.AlgRSASHA512,
	dnswire.AlgECDSAP256SHA256,
	dnswire.AlgECDSAP384SHA384,
	dnswire.AlgEd25519,
}

func genKey(t *testing.T, alg uint8, flags uint16) *Key {
	t.Helper()
	k, err := GenerateKey(alg, flags, nil)
	if err != nil {
		t.Fatalf("GenerateKey(%d): %v", alg, err)
	}
	return k
}

func aRRset(owner string) []dnswire.RR {
	return []dnswire.RR{
		{Name: owner, Class: dnswire.ClassIN, TTL: 3600, Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}},
		{Name: owner, Class: dnswire.ClassIN, TTL: 3600, Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.2")}},
	}
}

func keyRR(owner string, k *Key) dnswire.RR {
	return dnswire.RR{Name: owner, Class: dnswire.ClassIN, TTL: 3600, Data: k.DNSKEY()}
}

func TestSignVerifyAllAlgorithms(t *testing.T) {
	for _, alg := range allAlgorithms {
		alg := alg
		t.Run(dnswire.AlgorithmName(alg), func(t *testing.T) {
			t.Parallel()
			k := genKey(t, alg, dnswire.DNSKEYFlagZone)
			rrset := aRRset("www.example.com.")
			sig, err := SignRRset(rrset, k, ValidityWindow(testNow, "example.com."))
			if err != nil {
				t.Fatalf("SignRRset: %v", err)
			}
			if err := VerifySig(rrset, sig, keyRR("example.com.", k), testNow); err != nil {
				t.Fatalf("VerifySig: %v", err)
			}
		})
	}
}

func TestVerifyRejectsTamperedData(t *testing.T) {
	k := genKey(t, dnswire.AlgEd25519, dnswire.DNSKEYFlagZone)
	rrset := aRRset("www.example.com.")
	sig, err := SignRRset(rrset, k, ValidityWindow(testNow, "example.com."))
	if err != nil {
		t.Fatal(err)
	}
	rrset[0].Data = &dnswire.A{Addr: netip.MustParseAddr("203.0.113.66")}
	if err := VerifySig(rrset, sig, keyRR("example.com.", k), testNow); err == nil {
		t.Error("tampered RRset verified")
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	k1 := genKey(t, dnswire.AlgEd25519, dnswire.DNSKEYFlagZone)
	k2 := genKey(t, dnswire.AlgEd25519, dnswire.DNSKEYFlagZone)
	rrset := aRRset("www.example.com.")
	sig, err := SignRRset(rrset, k1, ValidityWindow(testNow, "example.com."))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySig(rrset, sig, keyRR("example.com.", k2), testNow); err == nil {
		t.Error("verified with the wrong key")
	}
}

func TestVerifyTimeWindows(t *testing.T) {
	k := genKey(t, dnswire.AlgECDSAP256SHA256, dnswire.DNSKEYFlagZone)
	rrset := aRRset("www.example.com.")
	sig, err := SignRRset(rrset, k, ValidityWindow(testNow, "example.com."))
	if err != nil {
		t.Fatal(err)
	}
	key := keyRR("example.com.", k)
	if err := VerifySig(rrset, sig, key, testNow.Add(90*24*time.Hour)); err == nil {
		t.Error("expired signature verified")
	}
	if err := VerifySig(rrset, sig, key, testNow.Add(-90*24*time.Hour)); err == nil {
		t.Error("not-yet-valid signature verified")
	}
	expSig, err := SignRRset(rrset, k, ExpiredWindow(testNow, "example.com."))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySig(rrset, expSig, key, testNow); err == nil {
		t.Error("ExpiredWindow signature verified at now")
	}
}

func TestVerifyRejectsOutOfZoneData(t *testing.T) {
	k := genKey(t, dnswire.AlgEd25519, dnswire.DNSKEYFlagZone)
	rrset := aRRset("www.other.org.")
	sig, err := SignRRset(rrset, k, ValidityWindow(testNow, "example.com."))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySig(rrset, sig, keyRR("example.com.", k), testNow); err == nil {
		t.Error("out-of-zone RRset verified")
	}
}

func TestVerifyRejectsRevokedZoneBit(t *testing.T) {
	k := genKey(t, dnswire.AlgEd25519, dnswire.DNSKEYFlagZone)
	rrset := aRRset("www.example.com.")
	sig, err := SignRRset(rrset, k, ValidityWindow(testNow, "example.com."))
	if err != nil {
		t.Fatal(err)
	}
	bad := k.DNSKEY()
	bad.Flags = 0 // clear ZONE bit
	badRR := dnswire.RR{Name: "example.com.", Class: dnswire.ClassIN, TTL: 3600, Data: bad}
	if err := VerifySig(rrset, sig, badRR, testNow); err == nil {
		t.Error("key without ZONE flag accepted")
	}
}

func TestWildcardSignatureLabels(t *testing.T) {
	k := genKey(t, dnswire.AlgEd25519, dnswire.DNSKEYFlagZone)
	// Sign the wildcard RRset, then verify an expanded name against it,
	// as a resolver does for wildcard answers.
	wild := aRRset("*.example.com.")
	sig, err := SignRRset(wild, k, ValidityWindow(testNow, "example.com."))
	if err != nil {
		t.Fatal(err)
	}
	if sig.Data.(*dnswire.RRSIG).Labels != 2 {
		t.Fatalf("wildcard labels = %d, want 2", sig.Data.(*dnswire.RRSIG).Labels)
	}
	expanded := aRRset("host.example.com.")
	sigCopy := sig
	if err := VerifySig(expanded, sigCopy, keyRR("example.com.", k), testNow); err != nil {
		t.Errorf("wildcard-expanded verification failed: %v", err)
	}
}

func TestVerifyRRsetMultipleKeys(t *testing.T) {
	ksk := genKey(t, dnswire.AlgEd25519, dnswire.DNSKEYFlagZone|dnswire.DNSKEYFlagSEP)
	zsk := genKey(t, dnswire.AlgEd25519, dnswire.DNSKEYFlagZone)
	rrset := aRRset("www.example.com.")
	sig, err := SignRRset(rrset, zsk, ValidityWindow(testNow, "example.com."))
	if err != nil {
		t.Fatal(err)
	}
	keys := []dnswire.RR{keyRR("example.com.", ksk), keyRR("example.com.", zsk)}
	if err := VerifyRRset(rrset, []dnswire.RR{sig}, keys, testNow); err != nil {
		t.Errorf("VerifyRRset: %v", err)
	}
	if err := VerifyRRset(rrset, nil, keys, testNow); err == nil {
		t.Error("VerifyRRset with no sigs succeeded")
	}
}

func TestKeyTagStability(t *testing.T) {
	k := genKey(t, dnswire.AlgECDSAP256SHA256, dnswire.DNSKEYFlagZone|dnswire.DNSKEYFlagSEP)
	tag1 := k.KeyTag()
	tag2 := KeyTag(k.DNSKEY())
	if tag1 != tag2 {
		t.Errorf("key tag unstable: %d vs %d", tag1, tag2)
	}
}

func TestDSFromKeyAndMatch(t *testing.T) {
	for _, dt := range []uint8{dnswire.DigestSHA256, dnswire.DigestSHA384} {
		k := genKey(t, dnswire.AlgECDSAP256SHA256, dnswire.DNSKEYFlagZone|dnswire.DNSKEYFlagSEP)
		ds, err := DSFromKey("example.com.", k.DNSKEY(), dt)
		if err != nil {
			t.Fatalf("DSFromKey(%d): %v", dt, err)
		}
		wantLen := 32
		if dt == dnswire.DigestSHA384 {
			wantLen = 48
		}
		if len(ds.Digest) != wantLen {
			t.Errorf("digest type %d length %d, want %d", dt, len(ds.Digest), wantLen)
		}
		if !DSMatchesKey("example.com.", ds, k.DNSKEY()) {
			t.Error("DS does not match its own key")
		}
		if DSMatchesKey("other.com.", ds, k.DNSKEY()) {
			t.Error("DS matched key at the wrong owner")
		}
		other := genKey(t, dnswire.AlgECDSAP256SHA256, dnswire.DNSKEYFlagZone)
		if DSMatchesKey("example.com.", ds, other.DNSKEY()) {
			t.Error("DS matched an unrelated key")
		}
	}
}

func TestVerifyChainLink(t *testing.T) {
	ksk := genKey(t, dnswire.AlgEd25519, dnswire.DNSKEYFlagZone|dnswire.DNSKEYFlagSEP)
	zsk := genKey(t, dnswire.AlgEd25519, dnswire.DNSKEYFlagZone)
	owner := "example.com."
	keySet := []dnswire.RR{keyRR(owner, ksk), keyRR(owner, zsk)}
	sig, err := SignRRset(keySet, ksk, ValidityWindow(testNow, owner))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := DSFromKey(owner, ksk.DNSKEY(), dnswire.DigestSHA256)
	if err != nil {
		t.Fatal(err)
	}
	dsSet := []dnswire.RR{{Name: owner, Class: dnswire.ClassIN, TTL: 3600, Data: ds}}
	if err := VerifyChainLink(owner, dsSet, keySet, []dnswire.RR{sig}, testNow); err != nil {
		t.Errorf("VerifyChainLink: %v", err)
	}

	// DS pointing at a key not in the set must fail.
	stranger := genKey(t, dnswire.AlgEd25519, dnswire.DNSKEYFlagZone|dnswire.DNSKEYFlagSEP)
	strangerDS, _ := DSFromKey(owner, stranger.DNSKEY(), dnswire.DigestSHA256)
	badDS := []dnswire.RR{{Name: owner, Class: dnswire.ClassIN, TTL: 3600, Data: strangerDS}}
	if err := VerifyChainLink(owner, badDS, keySet, []dnswire.RR{sig}, testNow); err == nil {
		t.Error("chain link verified with non-matching DS")
	}

	// DNSKEY RRset signed only by the ZSK (no SEP path from DS) fails
	// when the DS names the KSK but the sig was made by the ZSK... that
	// is actually acceptable per RFC only if DS matches the signing key;
	// here DS matches KSK and the signature must be by KSK.
	zskSig, err := SignRRset(keySet, zsk, ValidityWindow(testNow, owner))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyChainLink(owner, dsSet, keySet, []dnswire.RR{zskSig}, testNow); err == nil {
		t.Error("chain link verified though DNSKEY RRset not signed by DS-matched key")
	}
}

func TestCDSHelpers(t *testing.T) {
	k := genKey(t, dnswire.AlgECDSAP256SHA256, dnswire.DNSKEYFlagZone|dnswire.DNSKEYFlagSEP)
	cds, err := CDSFromKey("example.ch.", k.DNSKEY(), dnswire.DigestSHA256)
	if err != nil {
		t.Fatal(err)
	}
	if cds.Type() != dnswire.TypeCDS {
		t.Errorf("CDS type = %s", cds.Type())
	}
	keys := []dnswire.RR{keyRR("example.ch.", k)}
	cdsRRs := []dnswire.RR{{Name: "example.ch.", Class: dnswire.ClassIN, TTL: 3600, Data: cds}}
	matched, ok := CDSMatchesDNSKEYs("example.ch.", cdsRRs, keys)
	if !ok || len(matched) != 1 {
		t.Errorf("CDSMatchesDNSKEYs = %v, %v", matched, ok)
	}
	// A CDS for a key that is not in the zone must be rejected
	// (RFC 8078 §3 precondition; the paper found 2 854 such zones).
	other := genKey(t, dnswire.AlgECDSAP256SHA256, dnswire.DNSKEYFlagZone|dnswire.DNSKEYFlagSEP)
	orphan, _ := CDSFromKey("example.ch.", other.DNSKEY(), dnswire.DigestSHA256)
	orphanRRs := []dnswire.RR{{Name: "example.ch.", Class: dnswire.ClassIN, TTL: 3600, Data: orphan}}
	if _, ok := CDSMatchesDNSKEYs("example.ch.", orphanRRs, keys); ok {
		t.Error("orphan CDS accepted")
	}
}

func TestDeleteSentinels(t *testing.T) {
	cds := DeleteCDS()
	if !cds.IsDelete() {
		t.Error("DeleteCDS not a delete sentinel")
	}
	ck := DeleteCDNSKEY()
	if !ck.IsDelete() {
		t.Error("DeleteCDNSKEY not a delete sentinel")
	}
	set := []dnswire.RR{
		{Name: "x.se.", Class: dnswire.ClassIN, TTL: 0, Data: cds},
		{Name: "x.se.", Class: dnswire.ClassIN, TTL: 0, Data: ck},
	}
	if !IsDeleteSet(set) {
		t.Error("delete set not recognised")
	}
	k, _ := GenerateKey(dnswire.AlgEd25519, dnswire.DNSKEYFlagZone, nil)
	real, _ := CDSFromKey("x.se.", k.DNSKEY(), dnswire.DigestSHA256)
	mixed := append(set, dnswire.RR{Name: "x.se.", Class: dnswire.ClassIN, TTL: 0, Data: real})
	if IsDeleteSet(mixed) {
		t.Error("mixed delete+real set treated as delete")
	}
	if IsDeleteSet(nil) {
		t.Error("empty set treated as delete")
	}
}

func TestDSSetFromCDS(t *testing.T) {
	k, _ := GenerateKey(dnswire.AlgEd25519, dnswire.DNSKEYFlagZone|dnswire.DNSKEYFlagSEP, nil)
	cds, _ := CDSFromKey("y.ch.", k.DNSKEY(), dnswire.DigestSHA256)
	rrs := []dnswire.RR{
		{Name: "y.ch.", Class: dnswire.ClassIN, TTL: 300, Data: cds},
		{Name: "y.ch.", Class: dnswire.ClassIN, TTL: 300, Data: DeleteCDS()},
	}
	out := DSSetFromCDS(rrs)
	if len(out) != 1 {
		t.Fatalf("DSSetFromCDS produced %d records, want 1 (delete skipped)", len(out))
	}
	if out[0].Type() != dnswire.TypeDS {
		t.Errorf("converted type = %s", out[0].Type())
	}
	got := out[0].Data.(*dnswire.DS)
	if got.KeyTag != cds.KeyTag || string(got.Digest) != string(cds.Digest) {
		t.Error("converted DS differs from CDS content")
	}
}

func TestRSAPublicKeyRoundTrip(t *testing.T) {
	k := genKey(t, dnswire.AlgRSASHA256, dnswire.DNSKEYFlagZone)
	pub, err := unpackRSAPublicKey(k.DNSKEY().PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	if pub.E != 65537 {
		t.Errorf("exponent = %d", pub.E)
	}
	if _, err := unpackRSAPublicKey([]byte{1}); err == nil {
		t.Error("short RSA key accepted")
	}
}

func TestGenerateKeyUnknownAlgorithm(t *testing.T) {
	if _, err := GenerateKey(99, dnswire.DNSKEYFlagZone, nil); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestNSECCoversName(t *testing.T) {
	nsec := dnswire.RR{Name: "alpha.example.", Class: dnswire.ClassIN, TTL: 300,
		Data: &dnswire.NSEC{NextDomain: "delta.example.", Types: []dnswire.Type{dnswire.TypeA}}}
	if !NSECCoversName(nsec, "beta.example.") {
		t.Error("beta not covered by alpha..delta")
	}
	if NSECCoversName(nsec, "alpha.example.") {
		t.Error("owner itself covered")
	}
	if NSECCoversName(nsec, "zeta.example.") {
		t.Error("zeta covered by alpha..delta")
	}
	// Wraparound NSEC: last name → apex.
	wrap := dnswire.RR{Name: "zeta.example.", Class: dnswire.ClassIN, TTL: 300,
		Data: &dnswire.NSEC{NextDomain: "example.", Types: []dnswire.Type{dnswire.TypeA}}}
	if !NSECCoversName(wrap, "zzz.example.") {
		t.Error("wraparound interval does not cover zzz")
	}
}

func TestNSECProvesNoData(t *testing.T) {
	nsec := dnswire.RR{Name: "x.example.", Class: dnswire.ClassIN, TTL: 300,
		Data: &dnswire.NSEC{NextDomain: "y.example.", Types: []dnswire.Type{dnswire.TypeA, dnswire.TypeRRSIG}}}
	if !NSECProvesNoData(nsec, "x.example.", dnswire.TypeCDS) {
		t.Error("NODATA for CDS not proven")
	}
	if NSECProvesNoData(nsec, "x.example.", dnswire.TypeA) {
		t.Error("NODATA claimed for a present type")
	}
	if NSECProvesNoData(nsec, "q.example.", dnswire.TypeCDS) {
		t.Error("NODATA claimed at the wrong owner")
	}
}

func TestCheckDenial(t *testing.T) {
	auth := []dnswire.RR{
		{Name: "m.example.", Class: dnswire.ClassIN, TTL: 300,
			Data: &dnswire.NSEC{NextDomain: "p.example.", Types: []dnswire.Type{dnswire.TypeA}}},
	}
	if !CheckDenial(auth, "n.example.", dnswire.TypeA) {
		t.Error("NXDOMAIN denial not found")
	}
	if !CheckDenial(auth, "m.example.", dnswire.TypeCDS) {
		t.Error("NODATA denial not found")
	}
	if CheckDenial(nil, "n.example.", dnswire.TypeA) {
		t.Error("denial found in empty authority")
	}
}

func TestVerifySigTypeMismatches(t *testing.T) {
	k := genKey(t, dnswire.AlgEd25519, dnswire.DNSKEYFlagZone)
	rrset := aRRset("www.example.com.")
	sig, err := SignRRset(rrset, k, ValidityWindow(testNow, "example.com."))
	if err != nil {
		t.Fatal(err)
	}
	// Not an RRSIG in the sig slot.
	notSig := dnswire.RR{Name: "example.com.", Class: dnswire.ClassIN, Data: dnswire.NewNS("x.")}
	if err := VerifySig(rrset, notSig, keyRR("example.com.", k), testNow); err == nil {
		t.Error("non-RRSIG accepted")
	}
	// Not a DNSKEY in the key slot.
	if err := VerifySig(rrset, sig, notSig, testNow); err == nil {
		t.Error("non-DNSKEY accepted")
	}
	// RRSIG covering a different type than the RRset.
	nsSet := []dnswire.RR{{Name: "www.example.com.", Class: dnswire.ClassIN, TTL: 1, Data: dnswire.NewNS("x.")}}
	if err := VerifySig(nsSet, sig, keyRR("example.com.", k), testNow); err == nil {
		t.Error("type-mismatched RRSIG accepted")
	}
	// Empty RRset.
	if err := VerifySig(nil, sig, keyRR("example.com.", k), testNow); err == nil {
		t.Error("empty RRset accepted")
	}
	// CDNSKEY works as the verification key (same key material).
	cdnskeyRR := dnswire.RR{Name: "example.com.", Class: dnswire.ClassIN, TTL: 1,
		Data: &dnswire.CDNSKEY{DNSKEY: *k.DNSKEY()}}
	if err := VerifySig(rrset, sig, cdnskeyRR, testNow); err != nil {
		t.Errorf("CDNSKEY key slot rejected: %v", err)
	}
}

func TestVerifyBytesMalformedKeys(t *testing.T) {
	rrset := aRRset("x.example.com.")
	k := genKey(t, dnswire.AlgECDSAP256SHA256, dnswire.DNSKEYFlagZone)
	sig, err := SignRRset(rrset, k, ValidityWindow(testNow, "example.com."))
	if err != nil {
		t.Fatal(err)
	}
	// Key with truncated public-key material.
	bad := k.DNSKEY()
	bad.PublicKey = bad.PublicKey[:10]
	badRR := dnswire.RR{Name: "example.com.", Class: dnswire.ClassIN, TTL: 1, Data: bad}
	if err := VerifySig(rrset, sig, badRR, testNow); err == nil {
		t.Error("truncated ECDSA key accepted")
	}
	// Key with a point not on the curve.
	offCurve := k.DNSKEY()
	offCurve.PublicKey = append([]byte(nil), offCurve.PublicKey...)
	offCurve.PublicKey[5] ^= 0xFF
	offRR := dnswire.RR{Name: "example.com.", Class: dnswire.ClassIN, TTL: 1, Data: offCurve}
	if err := VerifySig(rrset, sig, offRR, testNow); err == nil {
		t.Error("off-curve ECDSA key accepted")
	}
	// Unsupported algorithm.
	alien := k.DNSKEY()
	alien.Algorithm = 99
	alienSig := sig
	alienSigData := *sig.Data.(*dnswire.RRSIG)
	alienSigData.Algorithm = 99
	alienSig.Data = &alienSigData
	alienRR := dnswire.RR{Name: "example.com.", Class: dnswire.ClassIN, TTL: 1, Data: alien}
	if err := VerifySig(rrset, alienSig, alienRR, testNow); err == nil {
		t.Error("unsupported algorithm accepted")
	}
}

func TestSignRRsetRejectsMixedSets(t *testing.T) {
	k := genKey(t, dnswire.AlgEd25519, dnswire.DNSKEYFlagZone)
	mixed := []dnswire.RR{
		aRRset("a.example.com.")[0],
		aRRset("b.example.com.")[0],
	}
	if _, err := SignRRset(mixed, k, ValidityWindow(testNow, "example.com.")); err == nil {
		t.Error("mixed-owner RRset signed")
	}
	if _, err := SignRRset(nil, k, ValidityWindow(testNow, "example.com.")); err == nil {
		t.Error("empty RRset signed")
	}
}

func TestDSFromKeyUnsupportedDigest(t *testing.T) {
	k := genKey(t, dnswire.AlgEd25519, dnswire.DNSKEYFlagZone)
	if _, err := DSFromKey("x.", k.DNSKEY(), 99); err == nil {
		t.Error("unknown digest type accepted")
	}
}
