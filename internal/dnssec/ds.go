package dnssec

import (
	"crypto/sha1"
	"crypto/sha256"
	"crypto/sha512"
	"fmt"
	"time"

	"dnssecboot/internal/dnswire"
)

// DSFromKey computes the DS record for a DNSKEY at owner using the
// given digest type (RFC 4034 §5.1.4: digest over owner-name wire form
// followed by the DNSKEY RDATA).
func DSFromKey(owner string, key *dnswire.DNSKEY, digestType uint8) (*dnswire.DS, error) {
	nw, err := dnswire.CanonicalNameWire(owner)
	if err != nil {
		return nil, err
	}
	rdata, err := dnswire.RDataWire(key)
	if err != nil {
		return nil, err
	}
	var digest []byte
	switch digestType {
	case dnswire.DigestSHA1:
		sum := sha1.Sum(append(nw, rdata...))
		digest = sum[:]
	case dnswire.DigestSHA256:
		sum := sha256.Sum256(append(nw, rdata...))
		digest = sum[:]
	case dnswire.DigestSHA384:
		sum := sha512.Sum384(append(nw, rdata...))
		digest = sum[:]
	default:
		return nil, fmt.Errorf("dnssec: unsupported DS digest type %d", digestType)
	}
	return &dnswire.DS{
		KeyTag:     KeyTag(key),
		Algorithm:  key.Algorithm,
		DigestType: digestType,
		Digest:     digest,
	}, nil
}

// DSMatchesKey reports whether ds is a correct digest of key at owner.
func DSMatchesKey(owner string, ds *dnswire.DS, key *dnswire.DNSKEY) bool {
	if ds.KeyTag != KeyTag(key) || ds.Algorithm != key.Algorithm {
		return false
	}
	computed, err := DSFromKey(owner, key, ds.DigestType)
	if err != nil {
		return false
	}
	return string(computed.Digest) == string(ds.Digest)
}

// KeyForDS returns the first DNSKEY in keys (DNSKEY RRs at owner) that
// ds authenticates, or nil.
func KeyForDS(owner string, ds *dnswire.DS, keys []dnswire.RR) *dnswire.RR {
	for i, rr := range keys {
		key, ok := rr.Data.(*dnswire.DNSKEY)
		if !ok {
			continue
		}
		if DSMatchesKey(owner, ds, key) {
			return &keys[i]
		}
	}
	return nil
}

// VerifyChainLink authenticates a zone's DNSKEY RRset against a DS set
// from the parent: some DS must match a present DNSKEY, and the DNSKEY
// RRset must carry a valid RRSIG made by (one of) the matched key(s).
// This is the core parent→child step of chain validation.
func VerifyChainLink(owner string, dsSet []dnswire.RR, keySet []dnswire.RR, sigs []dnswire.RR, now time.Time) error {
	owner = dnswire.CanonicalName(owner)
	var anchors []dnswire.RR
	for _, rr := range dsSet {
		ds, ok := rr.Data.(*dnswire.DS)
		if !ok {
			continue
		}
		if k := KeyForDS(owner, ds, keySet); k != nil {
			anchors = append(anchors, *k)
		}
	}
	if len(anchors) == 0 {
		return ErrNoMatchingDS
	}
	covering := SigsCovering(sigs, owner, dnswire.TypeDNSKEY)
	return VerifyRRset(keySet, covering, anchors, now)
}

// CDSFromKey derives the CDS payload that a child operator publishes
// for a key (RFC 7344 §4).
func CDSFromKey(owner string, key *dnswire.DNSKEY, digestType uint8) (*dnswire.CDS, error) {
	ds, err := DSFromKey(owner, key, digestType)
	if err != nil {
		return nil, err
	}
	return &dnswire.CDS{DS: *ds}, nil
}

// DeleteCDS returns the RFC 8078 §4 CDS DELETE sentinel ("0 0 0 00").
func DeleteCDS() *dnswire.CDS {
	return &dnswire.CDS{DS: dnswire.DS{KeyTag: 0, Algorithm: dnswire.AlgDELETE, DigestType: 0, Digest: []byte{0}}}
}

// DeleteCDNSKEY returns the RFC 8078 §4 CDNSKEY DELETE sentinel
// ("0 3 0 AA==").
func DeleteCDNSKEY() *dnswire.CDNSKEY {
	return &dnswire.CDNSKEY{DNSKEY: dnswire.DNSKEY{Flags: 0, Protocol: 3, Algorithm: dnswire.AlgDELETE, PublicKey: []byte{0}}}
}

// IsDeleteSet reports whether a CDS/CDNSKEY RRset is a deletion request:
// RFC 8078 requires the delete sentinel to be the only record present.
func IsDeleteSet(rrs []dnswire.RR) bool {
	if len(rrs) == 0 {
		return false
	}
	for _, rr := range rrs {
		switch d := rr.Data.(type) {
		case *dnswire.CDS:
			if !d.IsDelete() {
				return false
			}
		case *dnswire.CDNSKEY:
			if !d.IsDelete() {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// CDSMatchesDNSKEYs checks RFC 8078 §3's acceptance precondition: every
// non-delete CDS record must correspond to a DNSKEY actually present in
// the zone, so that installing the resulting DS set cannot break the
// delegation. It returns the subset of keys referenced.
func CDSMatchesDNSKEYs(owner string, cds []dnswire.RR, keys []dnswire.RR) (matched []dnswire.RR, ok bool) {
	owner = dnswire.CanonicalName(owner)
	for _, rr := range cds {
		var ds *dnswire.DS
		switch d := rr.Data.(type) {
		case *dnswire.CDS:
			if d.IsDelete() {
				continue
			}
			ds = &d.DS
		case *dnswire.DS:
			ds = d
		default:
			continue
		}
		k := KeyForDS(owner, ds, keys)
		if k == nil {
			return nil, false
		}
		matched = append(matched, *k)
	}
	return matched, true
}

// DSSetFromCDS converts a CDS RRset into the DS records a parent would
// install, skipping delete sentinels.
func DSSetFromCDS(cds []dnswire.RR) []dnswire.RR {
	var out []dnswire.RR
	for _, rr := range cds {
		c, ok := rr.Data.(*dnswire.CDS)
		if !ok || c.IsDelete() {
			continue
		}
		dup := c.DS
		dup.Digest = append([]byte(nil), c.Digest...)
		out = append(out, dnswire.RR{
			Name:  dnswire.CanonicalName(rr.Name),
			Class: rr.Class,
			TTL:   rr.TTL,
			Data:  &dup,
		})
	}
	return out
}
