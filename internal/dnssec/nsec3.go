package dnssec

import (
	"crypto/sha1"
	"fmt"
	"strings"

	"dnssecboot/internal/dnswire"
)

// NSEC3 support (RFC 5155): the hashed-denial alternative to NSEC.
// Hash comparisons work on the base32hex owner labels directly —
// base32hex was chosen by the RFC precisely because it preserves the
// byte-wise ordering of the underlying hashes.

// NSEC3HashAlgSHA1 is the only defined NSEC3 hash algorithm.
const NSEC3HashAlgSHA1 uint8 = 1

// NSEC3Hash computes the RFC 5155 §5 hash of a domain name:
// IH(0) = H(owner-wire), IH(k) = H(IH(k-1) || salt), iterated.
func NSEC3Hash(name string, iterations uint16, salt []byte) ([]byte, error) {
	wire, err := dnswire.CanonicalNameWire(name)
	if err != nil {
		return nil, err
	}
	h := sha1.Sum(append(wire, salt...))
	for i := 0; i < int(iterations); i++ {
		h = sha1.Sum(append(h[:], salt...))
	}
	return h[:], nil
}

// NSEC3HashLabel returns the base32hex form of a name's NSEC3 hash,
// i.e. the first label of its NSEC3 record's owner.
func NSEC3HashLabel(name string, iterations uint16, salt []byte) (string, error) {
	h, err := NSEC3Hash(name, iterations, salt)
	if err != nil {
		return "", err
	}
	return base32HexEncode(h), nil
}

// NSEC3Owner returns the full owner name of the NSEC3 record for name
// in the given zone.
func NSEC3Owner(name, zoneOrigin string, iterations uint16, salt []byte) (string, error) {
	label, err := NSEC3HashLabel(name, iterations, salt)
	if err != nil {
		return "", err
	}
	return dnswire.Join(label, zoneOrigin), nil
}

const base32HexAlphabet = "0123456789abcdefghijklmnopqrstuv"

func base32HexEncode(b []byte) string {
	var sb strings.Builder
	var acc, bits uint
	for _, c := range b {
		acc = acc<<8 | uint(c)
		bits += 8
		for bits >= 5 {
			bits -= 5
			sb.WriteByte(base32HexAlphabet[acc>>bits&0x1F])
		}
	}
	if bits > 0 {
		sb.WriteByte(base32HexAlphabet[acc<<(5-bits)&0x1F])
	}
	return sb.String()
}

// nsec3Params extracts (iterations, salt) from an NSEC3 RR.
func nsec3Params(rr dnswire.RR) (*dnswire.NSEC3, bool) {
	n, ok := rr.Data.(*dnswire.NSEC3)
	return n, ok
}

// ownerHashLabel extracts the base32hex hash label from an NSEC3
// record's owner name.
func ownerHashLabel(rr dnswire.RR) string {
	labels := dnswire.SplitLabels(dnswire.CanonicalName(rr.Name))
	if len(labels) == 0 {
		return ""
	}
	return labels[0]
}

// NSEC3Matches reports whether rr is the NSEC3 record of name (its
// hash equals the owner label).
func NSEC3Matches(rr dnswire.RR, name string) bool {
	n, ok := nsec3Params(rr)
	if !ok || n.HashAlg != NSEC3HashAlgSHA1 {
		return false
	}
	label, err := NSEC3HashLabel(name, n.Iterations, n.Salt)
	if err != nil {
		return false
	}
	return label == ownerHashLabel(rr)
}

// NSEC3Covers reports whether rr's hash interval covers name's hash
// (proving no record with that hash exists), handling the last-record
// wraparound.
func NSEC3Covers(rr dnswire.RR, name string) bool {
	n, ok := nsec3Params(rr)
	if !ok || n.HashAlg != NSEC3HashAlgSHA1 {
		return false
	}
	label, err := NSEC3HashLabel(name, n.Iterations, n.Salt)
	if err != nil {
		return false
	}
	owner := ownerHashLabel(rr)
	next := base32HexEncode(n.NextHashed)
	if label == owner || label == next {
		return false
	}
	if owner < next {
		return owner < label && label < next
	}
	return label > owner || label < next
}

// NSEC3ProvesNoData reports whether rr matches name and omits typ from
// its bitmap.
func NSEC3ProvesNoData(rr dnswire.RR, name string, typ dnswire.Type) bool {
	if !NSEC3Matches(rr, name) {
		return false
	}
	n, _ := nsec3Params(rr)
	for _, t := range n.Types {
		if t == typ {
			return false
		}
	}
	return true
}

// CheckDenialNSEC3 inspects a negative response's authority section
// for an NSEC3 proof of (name, typ): either a NODATA match or an
// NXDOMAIN shape (closest-encloser match plus next-closer cover,
// RFC 5155 §8.4/RFC 7129).
func CheckDenialNSEC3(authority []dnswire.RR, name string, typ dnswire.Type) bool {
	name = dnswire.CanonicalName(name)
	var nsec3s []dnswire.RR
	for _, rr := range authority {
		if rr.Type() == dnswire.TypeNSEC3 {
			nsec3s = append(nsec3s, rr)
		}
	}
	if len(nsec3s) == 0 {
		return false
	}
	// NODATA proof.
	for _, rr := range nsec3s {
		if NSEC3ProvesNoData(rr, name, typ) {
			return true
		}
	}
	// NXDOMAIN proof: for some ancestor chain, the closest encloser is
	// matched and the next-closer name is covered.
	next := name
	for anc := dnswire.Parent(name); anc != "."; anc = dnswire.Parent(anc) {
		var matched, covered bool
		for _, rr := range nsec3s {
			if NSEC3Matches(rr, anc) {
				matched = true
			}
			if NSEC3Covers(rr, next) {
				covered = true
			}
		}
		if matched && covered {
			return true
		}
		next = anc
	}
	return false
}

// String renders an NSEC3 hash label for diagnostics.
func NSEC3DebugString(name string, iterations uint16, salt []byte) string {
	label, err := NSEC3HashLabel(name, iterations, salt)
	if err != nil {
		return fmt.Sprintf("!%v", err)
	}
	return label
}
