package dnssec

import (
	"dnssecboot/internal/dnswire"
)

// NSEC denial-of-existence helpers (RFC 4035 §5.4). The scanner uses
// these to check that negative answers from signed zones are properly
// authenticated.

// NSECCoversName reports whether the NSEC record rr (owner→next) proves
// that name does not exist: owner < name < next in canonical order,
// handling the last-NSEC wraparound where next is the zone apex.
func NSECCoversName(rr dnswire.RR, name string) bool {
	nsec, ok := rr.Data.(*dnswire.NSEC)
	if !ok {
		return false
	}
	owner := dnswire.CanonicalName(rr.Name)
	next := dnswire.CanonicalName(nsec.NextDomain)
	name = dnswire.CanonicalName(name)
	if name == owner || name == next {
		return false
	}
	if dnswire.CanonicalNameLess(owner, next) {
		return dnswire.CanonicalNameLess(owner, name) && dnswire.CanonicalNameLess(name, next)
	}
	// Wraparound: next is the apex, so the interval is (owner, apex-end].
	return dnswire.CanonicalNameLess(owner, name) || dnswire.CanonicalNameLess(name, next)
}

// NSECProvesNoData reports whether rr is an NSEC at exactly name whose
// type bitmap omits typ — the NODATA proof shape.
func NSECProvesNoData(rr dnswire.RR, name string, typ dnswire.Type) bool {
	nsec, ok := rr.Data.(*dnswire.NSEC)
	if !ok {
		return false
	}
	if dnswire.CanonicalName(rr.Name) != dnswire.CanonicalName(name) {
		return false
	}
	for _, t := range nsec.Types {
		if t == typ {
			return false
		}
	}
	return true
}

// CheckDenial inspects the authority section of a negative response and
// reports whether it carries an NSEC proof for (name, typ): either a
// NODATA bitmap proof or a covering-interval NXDOMAIN proof.
func CheckDenial(authority []dnswire.RR, name string, typ dnswire.Type) bool {
	for _, rr := range authority {
		if rr.Type() != dnswire.TypeNSEC {
			continue
		}
		if NSECProvesNoData(rr, name, typ) || NSECCoversName(rr, name) {
			return true
		}
	}
	return false
}
