package dnssec

import (
	"crypto"
	"crypto/ecdsa"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"time"

	"dnssecboot/internal/dnswire"
)

// SignOptions control RRSIG creation.
type SignOptions struct {
	// Inception and Expiration bound the signature validity window.
	Inception  time.Time
	Expiration time.Time
	// SignerName is the zone apex the key belongs to.
	SignerName string
}

// SignRRset signs one RRset (all records must share owner, class and
// type) and returns the RRSIG record. The RRset is sorted into
// canonical order in place.
func SignRRset(rrset []dnswire.RR, key *Key, opts SignOptions) (dnswire.RR, error) {
	if len(rrset) == 0 {
		return dnswire.RR{}, errors.New("dnssec: empty RRset")
	}
	owner := dnswire.CanonicalName(rrset[0].Name)
	typ := rrset[0].Type()
	for _, rr := range rrset[1:] {
		if dnswire.CanonicalName(rr.Name) != owner || rr.Type() != typ {
			return dnswire.RR{}, errors.New("dnssec: mixed RRset")
		}
	}
	labels := ownerSigLabels(owner)
	sig := &dnswire.RRSIG{
		TypeCovered: typ,
		Algorithm:   key.Algorithm,
		Labels:      labels,
		OrigTTL:     rrset[0].TTL,
		Expiration:  uint32(opts.Expiration.Unix()),
		Inception:   uint32(opts.Inception.Unix()),
		KeyTag:      key.KeyTag(),
		SignerName:  dnswire.CanonicalName(opts.SignerName),
	}
	data, err := signedData(sig, rrset)
	if err != nil {
		return dnswire.RR{}, err
	}
	raw, err := signBytes(key, data)
	if err != nil {
		return dnswire.RR{}, err
	}
	sig.Signature = raw
	return dnswire.RR{
		Name:  owner,
		Class: rrset[0].Class,
		TTL:   rrset[0].TTL,
		Data:  sig,
	}, nil
}

// ownerSigLabels computes the RRSIG Labels field: the label count of the
// owner, with a leading wildcard label excluded (RFC 4034 §3.1.3).
func ownerSigLabels(owner string) uint8 {
	labels := dnswire.SplitLabels(owner)
	n := len(labels)
	if n > 0 && labels[0] == "*" {
		n--
	}
	return uint8(n)
}

// signedData assembles RRSIG_RDATA(minus signature) | canonical RRset,
// the byte string that DNSSEC signatures cover (RFC 4034 §3.1.8.1).
func signedData(sig *dnswire.RRSIG, rrset []dnswire.RR) ([]byte, error) {
	sorted := make([]dnswire.RR, len(rrset))
	copy(sorted, rrset)
	if err := dnswire.SortCanonical(sorted); err != nil {
		return nil, err
	}
	bare := *sig
	bare.Signature = nil
	out, err := dnswire.RDataWire(&bare)
	if err != nil {
		return nil, err
	}
	for _, rr := range sorted {
		owner := signedOwnerName(dnswire.CanonicalName(rr.Name), sig.Labels)
		nw, err := dnswire.CanonicalNameWire(owner)
		if err != nil {
			return nil, err
		}
		out = append(out, nw...)
		rdata, err := dnswire.CanonicalRDATA(rr)
		if err != nil {
			return nil, err
		}
		out = append(out,
			byte(rr.Type()>>8), byte(rr.Type()),
			byte(rr.Class>>8), byte(rr.Class),
			byte(sig.OrigTTL>>24), byte(sig.OrigTTL>>16), byte(sig.OrigTTL>>8), byte(sig.OrigTTL),
			byte(len(rdata)>>8), byte(len(rdata)))
		out = append(out, rdata...)
	}
	return out, nil
}

// signedOwnerName reduces an owner name to the wildcard form when the
// RRSIG labels field indicates wildcard expansion (RFC 4035 §5.3.2).
func signedOwnerName(owner string, sigLabels uint8) string {
	labels := dnswire.SplitLabels(owner)
	if len(labels) <= int(sigLabels) {
		return owner
	}
	keep := labels[len(labels)-int(sigLabels):]
	name := "*"
	for _, l := range keep {
		name += "." + l
	}
	return dnswire.CanonicalName(name)
}

func signBytes(key *Key, data []byte) ([]byte, error) {
	newHash, ch, err := algHash(key.Algorithm)
	if err != nil {
		return nil, err
	}
	switch priv := key.priv.(type) {
	case ed25519.PrivateKey:
		return ed25519.Sign(priv, data), nil
	case *ecdsa.PrivateKey:
		h := newHash()
		h.Write(data)
		r, s, err := ecdsa.Sign(rand.Reader, priv, h.Sum(nil))
		if err != nil {
			return nil, err
		}
		size := ecdsaSigSize(key.Algorithm)
		out := make([]byte, 2*size)
		r.FillBytes(out[:size])
		s.FillBytes(out[size:])
		return out, nil
	default:
		h := newHash()
		h.Write(data)
		return key.priv.Sign(rand.Reader, h.Sum(nil), ch)
	}
}

// ValidityWindow returns a SignOptions covering now-1h .. now+30d, the
// shape real signers produce.
func ValidityWindow(now time.Time, signerName string) SignOptions {
	return SignOptions{
		Inception:  now.Add(-1 * time.Hour),
		Expiration: now.Add(30 * 24 * time.Hour),
		SignerName: signerName,
	}
}

// ExpiredWindow returns a SignOptions whose signatures are already
// expired at now. Used to model decayed deployments (§4.4 of the paper
// observed such a zone).
func ExpiredWindow(now time.Time, signerName string) SignOptions {
	return SignOptions{
		Inception:  now.Add(-60 * 24 * time.Hour),
		Expiration: now.Add(-30 * 24 * time.Hour),
		SignerName: signerName,
	}
}

// String implements fmt.Stringer for diagnostics.
func (k *Key) String() string {
	kind := "ZSK"
	if k.IsSEP() {
		kind = "KSK"
	}
	return fmt.Sprintf("%s alg=%s tag=%d", kind, dnswire.AlgorithmName(k.Algorithm), k.KeyTag())
}

var _ = crypto.SHA256 // keep crypto import tied to signBytes' default path
