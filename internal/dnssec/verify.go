package dnssec

import (
	"crypto/ecdsa"
	"crypto/ed25519"
	"crypto/elliptic"
	"crypto/rsa"
	"fmt"
	"math/big"
	"time"

	"dnssecboot/internal/dnswire"
)

// VerifySig verifies one RRSIG over an RRset with one DNSKEY. It checks
// the validity window against now, the key tag, signer name, algorithm
// and the cryptographic signature itself.
func VerifySig(rrset []dnswire.RR, sigRR dnswire.RR, keyRR dnswire.RR, now time.Time) error {
	sig, ok := sigRR.Data.(*dnswire.RRSIG)
	if !ok {
		return fmt.Errorf("dnssec: not an RRSIG: %s", sigRR.Type())
	}
	key, ok := keyRR.Data.(*dnswire.DNSKEY)
	if !ok {
		if ck, isCK := keyRR.Data.(*dnswire.CDNSKEY); isCK {
			key = &ck.DNSKEY
		} else {
			return fmt.Errorf("dnssec: not a DNSKEY: %s", keyRR.Type())
		}
	}
	if len(rrset) == 0 {
		return fmt.Errorf("dnssec: empty RRset")
	}
	if sig.TypeCovered != rrset[0].Type() {
		return fmt.Errorf("dnssec: RRSIG covers %s, RRset is %s", sig.TypeCovered, rrset[0].Type())
	}
	if !key.IsZoneKey() {
		return fmt.Errorf("dnssec: DNSKEY without ZONE flag")
	}
	if key.Protocol != 3 {
		return fmt.Errorf("dnssec: DNSKEY protocol %d", key.Protocol)
	}
	if key.Algorithm != sig.Algorithm {
		return fmt.Errorf("dnssec: algorithm mismatch key=%d sig=%d", key.Algorithm, sig.Algorithm)
	}
	if KeyTag(key) != sig.KeyTag {
		return fmt.Errorf("%w: tag %d != %d", ErrNoMatchingKey, KeyTag(key), sig.KeyTag)
	}
	if dnswire.CanonicalName(keyRR.Name) != dnswire.CanonicalName(sig.SignerName) {
		return fmt.Errorf("dnssec: signer %s is not key owner %s", sig.SignerName, keyRR.Name)
	}
	if !dnswire.IsSubdomain(rrset[0].Name, sig.SignerName) {
		return fmt.Errorf("dnssec: RRset %s outside signer zone %s", rrset[0].Name, sig.SignerName)
	}
	ts := uint32(now.Unix())
	// Serial-number arithmetic (RFC 4034 §3.1.5) is overkill here; the
	// simulator's clocks stay well inside one epoch wraparound.
	if ts > sig.Expiration {
		return fmt.Errorf("%w: expired %d, now %d", ErrSignatureExpired, sig.Expiration, ts)
	}
	if ts < sig.Inception {
		return fmt.Errorf("%w: inception %d, now %d", ErrSignatureNotYetValid, sig.Inception, ts)
	}
	data, err := signedData(sig, rrset)
	if err != nil {
		return err
	}
	return verifyBytes(key, data, sig.Signature)
}

func verifyBytes(key *dnswire.DNSKEY, data, signature []byte) error {
	newHash, ch, err := algHash(key.Algorithm)
	if err != nil {
		return err
	}
	switch key.Algorithm {
	case dnswire.AlgEd25519:
		if len(key.PublicKey) != ed25519.PublicKeySize {
			return ErrBadPublicKey
		}
		if !ed25519.Verify(ed25519.PublicKey(key.PublicKey), data, signature) {
			return ErrBadSignature
		}
		return nil
	case dnswire.AlgECDSAP256SHA256, dnswire.AlgECDSAP384SHA384:
		curve := elliptic.P256()
		if key.Algorithm == dnswire.AlgECDSAP384SHA384 {
			curve = elliptic.P384()
		}
		size := ecdsaSigSize(key.Algorithm)
		pub, err := unpackECDSAPublicKey(key.PublicKey, curve, size)
		if err != nil {
			return err
		}
		if len(signature) != 2*size {
			return ErrBadSignature
		}
		r := new(big.Int).SetBytes(signature[:size])
		s := new(big.Int).SetBytes(signature[size:])
		h := newHash()
		h.Write(data)
		if !ecdsa.Verify(pub, h.Sum(nil), r, s) {
			return ErrBadSignature
		}
		return nil
	case dnswire.AlgRSASHA256, dnswire.AlgRSASHA512:
		pub, err := unpackRSAPublicKey(key.PublicKey)
		if err != nil {
			return err
		}
		h := newHash()
		h.Write(data)
		if err := rsa.VerifyPKCS1v15(pub, ch, h.Sum(nil), signature); err != nil {
			return ErrBadSignature
		}
		return nil
	default:
		return fmt.Errorf("%w: %d", ErrUnsupportedAlgorithm, key.Algorithm)
	}
}

// VerifyRRset verifies an RRset against a set of RRSIGs and candidate
// DNSKEYs: it succeeds if any (sig, key) pair validates. This mirrors
// validating-resolver behaviour (RFC 4035 §5.3.3).
func VerifyRRset(rrset []dnswire.RR, sigs []dnswire.RR, keys []dnswire.RR, now time.Time) error {
	if len(rrset) == 0 {
		return fmt.Errorf("dnssec: empty RRset")
	}
	if len(sigs) == 0 {
		return fmt.Errorf("dnssec: no RRSIG covering %s/%s", rrset[0].Name, rrset[0].Type())
	}
	var lastErr error
	for _, sigRR := range sigs {
		sig, ok := sigRR.Data.(*dnswire.RRSIG)
		if !ok || sig.TypeCovered != rrset[0].Type() {
			continue
		}
		for _, keyRR := range keys {
			if err := VerifySig(rrset, sigRR, keyRR, now); err == nil {
				return nil
			} else {
				lastErr = err
			}
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("dnssec: no usable RRSIG/DNSKEY pair for %s/%s", rrset[0].Name, rrset[0].Type())
	}
	return lastErr
}

// SigsCovering selects the RRSIG records in sigs that cover typ for the
// given owner name.
func SigsCovering(sigs []dnswire.RR, owner string, typ dnswire.Type) []dnswire.RR {
	owner = dnswire.CanonicalName(owner)
	var out []dnswire.RR
	for _, rr := range sigs {
		sig, ok := rr.Data.(*dnswire.RRSIG)
		if ok && sig.TypeCovered == typ && dnswire.CanonicalName(rr.Name) == owner {
			out = append(out, rr)
		}
	}
	return out
}
