package dnssec

import (
	"encoding/hex"
	"testing"

	"dnssecboot/internal/dnswire"
)

// TestNSEC3HashRFC5155Vector checks the Appendix-A example of RFC 5155:
// H("example", salt=AABBCCDD, iterations=12) =
// 0p9mhaveqvm6t7vbl5lop2u3t2rp3tom.
func TestNSEC3HashRFC5155Vector(t *testing.T) {
	salt, _ := hex.DecodeString("AABBCCDD")
	label, err := NSEC3HashLabel("example.", 12, salt)
	if err != nil {
		t.Fatal(err)
	}
	if label != "0p9mhaveqvm6t7vbl5lop2u3t2rp3tom" {
		t.Errorf("hash label = %s, want 0p9mhaveqvm6t7vbl5lop2u3t2rp3tom", label)
	}
	// Second vector from the same appendix: a.example.
	label2, err := NSEC3HashLabel("a.example.", 12, salt)
	if err != nil {
		t.Fatal(err)
	}
	if label2 != "35mthgpgcu1qg68fab165klnsnk3dpvl" {
		t.Errorf("hash label = %s, want 35mthgpgcu1qg68fab165klnsnk3dpvl", label2)
	}
}

func TestNSEC3HashIterationsAndSaltMatter(t *testing.T) {
	a, _ := NSEC3Hash("example.com.", 0, nil)
	b, _ := NSEC3Hash("example.com.", 1, nil)
	c, _ := NSEC3Hash("example.com.", 0, []byte{1})
	if string(a) == string(b) || string(a) == string(c) {
		t.Error("iterations/salt do not change the hash")
	}
	// Case-insensitive: hashes the canonical form.
	d, _ := NSEC3Hash("EXAMPLE.com", 0, nil)
	if string(a) != string(d) {
		t.Error("hash is case-sensitive")
	}
}

func TestNSEC3Owner(t *testing.T) {
	owner, err := NSEC3Owner("alpha.n3.test.", "n3.test.", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dnswire.CountLabels(owner) != 3 || !dnswire.IsSubdomain(owner, "n3.test.") {
		t.Errorf("owner = %s", owner)
	}
}

func nsec3RR(t *testing.T, ownerOf, zoneOrigin, nextOf string, types []dnswire.Type) dnswire.RR {
	t.Helper()
	owner, err := NSEC3Owner(ownerOf, zoneOrigin, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	next, err := NSEC3Hash(nextOf, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return dnswire.RR{Name: owner, Class: dnswire.ClassIN, TTL: 300, Data: &dnswire.NSEC3{
		HashAlg: NSEC3HashAlgSHA1, NextHashed: next, Types: types,
	}}
}

func TestNSEC3MatchAndNoData(t *testing.T) {
	rr := nsec3RR(t, "alpha.z.", "z.", "beta.z.", []dnswire.Type{dnswire.TypeA})
	if !NSEC3Matches(rr, "alpha.z.") {
		t.Error("own name does not match")
	}
	if NSEC3Matches(rr, "gamma.z.") {
		t.Error("foreign name matches")
	}
	if !NSEC3ProvesNoData(rr, "alpha.z.", dnswire.TypeMX) {
		t.Error("NODATA for MX not proven")
	}
	if NSEC3ProvesNoData(rr, "alpha.z.", dnswire.TypeA) {
		t.Error("NODATA claimed for present type")
	}
}

func TestNSEC3CoversInterval(t *testing.T) {
	// Build an interval between two known hashes and test a name whose
	// hash falls inside/outside. We brute-force a name inside the
	// interval by scanning candidates.
	names := []string{"a.z.", "b.z.", "c.z.", "d.z.", "e.z.", "f.z.", "g.z.", "h.z."}
	labels := map[string]string{}
	for _, n := range names {
		l, _ := NSEC3HashLabel(n, 0, nil)
		labels[n] = l
	}
	// Pick the two extremes as the interval, then any other name is
	// covered by the wraparound record (ownerOf=max, nextOf=min).
	min, max := names[0], names[0]
	for _, n := range names[1:] {
		if labels[n] < labels[min] {
			min = n
		}
		if labels[n] > labels[max] {
			max = n
		}
	}
	wrap := nsec3RR(t, max, "z.", min, nil)
	for _, n := range names {
		if n == min || n == max {
			if NSEC3Covers(wrap, n) {
				t.Errorf("boundary %s covered", n)
			}
			continue
		}
		if NSEC3Covers(wrap, n) {
			t.Errorf("interior name %s covered by wraparound record", n)
		}
	}
	// The forward record min→max covers everything strictly between.
	fwd := nsec3RR(t, min, "z.", max, nil)
	inside := 0
	for _, n := range names {
		if n == min || n == max {
			continue
		}
		if NSEC3Covers(fwd, n) {
			inside++
		}
	}
	if inside != len(names)-2 {
		t.Errorf("forward record covered %d of %d interior names", inside, len(names)-2)
	}
}

func TestCheckDenialNSEC3Shapes(t *testing.T) {
	// NODATA shape.
	nodata := []dnswire.RR{nsec3RR(t, "www.z.", "z.", "x.z.", []dnswire.Type{dnswire.TypeA})}
	if !CheckDenialNSEC3(nodata, "www.z.", dnswire.TypeMX) {
		t.Error("NODATA shape not accepted")
	}
	if CheckDenialNSEC3(nodata, "www.z.", dnswire.TypeA) {
		t.Error("denial accepted for a present type")
	}
	if CheckDenialNSEC3(nil, "www.z.", dnswire.TypeA) {
		t.Error("empty authority accepted")
	}
}
