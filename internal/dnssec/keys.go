// Package dnssec implements DNSSEC cryptography: key generation for the
// recommended algorithms (RSA/SHA-256, ECDSA P-256/P-384, Ed25519),
// RRSIG creation and verification over canonical RRsets (RFC 4034 §3),
// DS digest computation (RFC 4509/6605), key tags, and chain validation
// from a trust anchor down to individual RRsets. It also implements the
// CDS/CDNSKEY content rules of RFC 7344 and the RFC 8078 §4 DELETE
// sentinel used to turn DNSSEC off.
package dnssec

import (
	"crypto"
	"crypto/ecdsa"
	"crypto/ed25519"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/sha512"
	"errors"
	"fmt"
	"hash"
	"io"
	"math/big"

	"dnssecboot/internal/dnswire"
)

// Errors returned by key handling and validation.
var (
	ErrUnsupportedAlgorithm = errors.New("dnssec: unsupported algorithm")
	ErrBadPublicKey         = errors.New("dnssec: malformed public key")
	ErrBadSignature         = errors.New("dnssec: signature verification failed")
	ErrSignatureExpired     = errors.New("dnssec: signature expired")
	ErrSignatureNotYetValid = errors.New("dnssec: signature not yet valid")
	ErrNoMatchingKey        = errors.New("dnssec: no DNSKEY matches RRSIG")
	ErrNoMatchingDS         = errors.New("dnssec: no DS matches any DNSKEY")
)

// Key is a DNSSEC signing key: the private key material plus the public
// DNSKEY record fields.
type Key struct {
	Flags     uint16
	Algorithm uint8
	priv      crypto.Signer
	public    []byte // DNSKEY public-key field, wire format
}

// GenerateKey creates a new signing key for the given algorithm. flags
// should be dnswire.DNSKEYFlagZone, optionally ORed with
// dnswire.DNSKEYFlagSEP for a key-signing key. rng may be nil to use
// crypto/rand.Reader.
func GenerateKey(algorithm uint8, flags uint16, rng io.Reader) (*Key, error) {
	if rng == nil {
		rng = rand.Reader
	}
	k := &Key{Flags: flags, Algorithm: algorithm}
	switch algorithm {
	case dnswire.AlgRSASHA256, dnswire.AlgRSASHA512:
		priv, err := rsa.GenerateKey(rng, 2048)
		if err != nil {
			return nil, err
		}
		k.priv = priv
		k.public = packRSAPublicKey(&priv.PublicKey)
	case dnswire.AlgECDSAP256SHA256:
		priv, err := ecdsa.GenerateKey(elliptic.P256(), rng)
		if err != nil {
			return nil, err
		}
		k.priv = priv
		k.public = packECDSAPublicKey(&priv.PublicKey, 32)
	case dnswire.AlgECDSAP384SHA384:
		priv, err := ecdsa.GenerateKey(elliptic.P384(), rng)
		if err != nil {
			return nil, err
		}
		k.priv = priv
		k.public = packECDSAPublicKey(&priv.PublicKey, 48)
	case dnswire.AlgEd25519:
		pub, priv, err := ed25519.GenerateKey(rng)
		if err != nil {
			return nil, err
		}
		k.priv = priv
		k.public = append([]byte(nil), pub...)
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnsupportedAlgorithm, algorithm)
	}
	return k, nil
}

// DNSKEY returns the public DNSKEY payload for this key.
func (k *Key) DNSKEY() *dnswire.DNSKEY {
	return &dnswire.DNSKEY{
		Flags:     k.Flags,
		Protocol:  3,
		Algorithm: k.Algorithm,
		PublicKey: append([]byte(nil), k.public...),
	}
}

// KeyTag returns the RFC 4034 Appendix-B key tag of the key.
func (k *Key) KeyTag() uint16 { return KeyTag(k.DNSKEY()) }

// IsSEP reports whether the key carries the SEP (KSK) flag.
func (k *Key) IsSEP() bool { return k.Flags&dnswire.DNSKEYFlagSEP != 0 }

// KeyTag computes the RFC 4034 Appendix-B key tag over a DNSKEY RDATA.
func KeyTag(key *dnswire.DNSKEY) uint16 {
	rdata, err := dnswire.RDataWire(key)
	if err != nil {
		return 0
	}
	var acc uint32
	for i, b := range rdata {
		if i&1 == 0 {
			acc += uint32(b) << 8
		} else {
			acc += uint32(b)
		}
	}
	acc += acc >> 16 & 0xFFFF
	return uint16(acc & 0xFFFF)
}

func packRSAPublicKey(pub *rsa.PublicKey) []byte {
	// RFC 3110 §2: exponent length (1 or 3 octets), exponent, modulus.
	e := big.NewInt(int64(pub.E)).Bytes()
	var out []byte
	if len(e) <= 255 {
		out = append(out, byte(len(e)))
	} else {
		out = append(out, 0, byte(len(e)>>8), byte(len(e)))
	}
	out = append(out, e...)
	out = append(out, pub.N.Bytes()...)
	return out
}

func unpackRSAPublicKey(data []byte) (*rsa.PublicKey, error) {
	if len(data) < 3 {
		return nil, ErrBadPublicKey
	}
	elen := int(data[0])
	data = data[1:]
	if elen == 0 {
		if len(data) < 2 {
			return nil, ErrBadPublicKey
		}
		elen = int(data[0])<<8 | int(data[1])
		data = data[2:]
	}
	if elen == 0 || len(data) < elen+1 {
		return nil, ErrBadPublicKey
	}
	e := new(big.Int).SetBytes(data[:elen])
	if !e.IsInt64() || e.Int64() > int64(1)<<31 {
		return nil, ErrBadPublicKey
	}
	return &rsa.PublicKey{
		N: new(big.Int).SetBytes(data[elen:]),
		E: int(e.Int64()),
	}, nil
}

func packECDSAPublicKey(pub *ecdsa.PublicKey, size int) []byte {
	out := make([]byte, 2*size)
	pub.X.FillBytes(out[:size])
	pub.Y.FillBytes(out[size:])
	return out
}

func unpackECDSAPublicKey(data []byte, curve elliptic.Curve, size int) (*ecdsa.PublicKey, error) {
	if len(data) != 2*size {
		return nil, ErrBadPublicKey
	}
	x := new(big.Int).SetBytes(data[:size])
	y := new(big.Int).SetBytes(data[size:])
	if !curve.IsOnCurve(x, y) {
		return nil, ErrBadPublicKey
	}
	return &ecdsa.PublicKey{Curve: curve, X: x, Y: y}, nil
}

// algHash returns the hash constructor and crypto.Hash for an algorithm,
// or nil for algorithms that hash internally (Ed25519).
func algHash(algorithm uint8) (func() hash.Hash, crypto.Hash, error) {
	switch algorithm {
	case dnswire.AlgRSASHA256, dnswire.AlgECDSAP256SHA256:
		return sha256.New, crypto.SHA256, nil
	case dnswire.AlgECDSAP384SHA384:
		return sha512.New384, crypto.SHA384, nil
	case dnswire.AlgRSASHA512:
		return sha512.New, crypto.SHA512, nil
	case dnswire.AlgEd25519:
		return nil, 0, nil
	default:
		return nil, 0, fmt.Errorf("%w: %d", ErrUnsupportedAlgorithm, algorithm)
	}
}

func ecdsaSigSize(algorithm uint8) int {
	if algorithm == dnswire.AlgECDSAP384SHA384 {
		return 48
	}
	return 32
}
