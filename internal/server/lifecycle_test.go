package server

import (
	"context"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/obs"
	"dnssecboot/internal/transport"
)

// slowHandler answers every query with a fixed A record after blocking
// on release (or after a fixed delay when release is nil). finished is
// incremented only after the response has been produced.
type slowHandler struct {
	release  chan struct{}
	delay    time.Duration
	started  atomic.Int64
	finished atomic.Int64
}

func (h *slowHandler) HandleDNS(_ context.Context, _ netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
	h.started.Add(1)
	if h.release != nil {
		<-h.release
	} else if h.delay > 0 {
		time.Sleep(h.delay)
	}
	m := reply(q, dnswire.RcodeNoError)
	m.Authoritative = true
	m.Answer = append(m.Answer, dnswire.RR{
		Name: q.Question[0].Name, Class: dnswire.ClassIN, TTL: 60,
		Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")},
	})
	h.finished.Add(1)
	return m, nil
}

func sendUDPQuery(t *testing.T, addr netip.AddrPort, name string) net.Conn {
	t.Helper()
	conn, err := net.Dial("udp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	q := dnswire.NewQuery(7, name, dnswire.TypeA)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	return conn
}

// Close must not return while a UDP handler is still in flight, and the
// drained handler's response must still reach the client (the socket
// stays open until every worker is done). Pre-fix, per-packet handler
// goroutines were untracked: Close returned immediately and the
// handler wrote to a closed PacketConn.
func TestCloseWaitsForInflightUDP(t *testing.T) {
	h := &slowHandler{release: make(chan struct{})}
	l, err := ListenConfig("127.0.0.1:0", h, Config{UDPWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	conn := sendUDPQuery(t, l.Addr(), "slow.example.")
	defer conn.Close()

	// Wait until the handler is actually in flight.
	for i := 0; h.started.Load() == 0; i++ {
		if i > 400 {
			t.Fatal("handler never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	closeDone := make(chan struct{})
	go func() {
		if err := l.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		close(closeDone)
	}()
	select {
	case <-closeDone:
		t.Fatal("Close returned while a UDP handler was still in flight")
	case <-time.After(100 * time.Millisecond):
	}

	close(h.release)
	select {
	case <-closeDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return after the handler finished")
	}
	if h.finished.Load() != 1 {
		t.Fatalf("finished = %d, want 1", h.finished.Load())
	}
	// The in-flight query's response must have been written before the
	// socket closed.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("no response for the drained query: %v", err)
	}
	resp, err := dnswire.Unpack(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 7 || len(resp.Answer) != 1 {
		t.Errorf("drained response = %s", resp.Summary())
	}
}

// Same contract over TCP: a request already read off the wire is
// answered before Close returns, even though the drain aborts idle
// reads immediately.
func TestCloseWaitsForInflightTCP(t *testing.T) {
	h := &slowHandler{release: make(chan struct{})}
	l, err := ListenConfig("127.0.0.1:0", h, Config{UDPWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := dnswire.NewQuery(9, "slow.example.", dnswire.TypeA)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if err := transport.WriteTCPMessage(conn, wire); err != nil {
		t.Fatal(err)
	}
	for i := 0; h.started.Load() == 0; i++ {
		if i > 400 {
			t.Fatal("handler never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	closeDone := make(chan struct{})
	go func() {
		_ = l.Close()
		close(closeDone)
	}()
	select {
	case <-closeDone:
		t.Fatal("Close returned while a TCP handler was still in flight")
	case <-time.After(100 * time.Millisecond):
	}
	close(h.release)
	select {
	case <-closeDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return after the handler finished")
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	respWire, err := transport.ReadTCPMessage(conn)
	if err != nil {
		t.Fatalf("no response for the drained TCP query: %v", err)
	}
	resp, err := dnswire.Unpack(respWire)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 9 || len(resp.Answer) != 1 {
		t.Errorf("drained response = %s", resp.Summary())
	}
}

// Hammering the accept path while Close runs must not panic or race:
// pre-fix, serveTCP called wg.Add(1) for each accepted connection with
// no closed-flag guard, racing the wg.Wait already running in Close.
func TestCloseWhileAccepting(t *testing.T) {
	for round := 0; round < 20; round++ {
		s := New(1)
		s.AddZone(buildZone(t, false))
		l, err := ListenConfig("127.0.0.1:0", s, Config{UDPWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}
		addr := l.Addr().String()
		var dialers sync.WaitGroup
		stop := make(chan struct{})
		for i := 0; i < 4; i++ {
			dialers.Add(1)
			go func() {
				defer dialers.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					c, err := net.DialTimeout("tcp", addr, time.Second)
					if err != nil {
						return
					}
					c.Close()
				}
			}()
		}
		time.Sleep(time.Millisecond)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		close(stop)
		dialers.Wait()
	}
}

// Concurrent UDP load against Close: every query that got a response
// must have been fully handled, and Close must not lose races with the
// worker pool under -race.
func TestCloseWhileServingUDP(t *testing.T) {
	h := &slowHandler{delay: time.Millisecond}
	l, err := ListenConfig("127.0.0.1:0", h, Config{UDPWorkers: 4, UDPBacklog: 64})
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr()
	var senders sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		senders.Add(1)
		go func() {
			defer senders.Done()
			conn, err := net.Dial("udp", addr.String())
			if err != nil {
				return
			}
			defer conn.Close()
			q := dnswire.NewQuery(11, "x.example.", dnswire.TypeA)
			wire, _ := q.Pack()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = conn.Write(wire)
				time.Sleep(100 * time.Microsecond)
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := h.finished.Load(), h.started.Load(); got != want {
		t.Errorf("Close returned with %d of %d started handlers finished", got, want)
	}
	close(stop)
	senders.Wait()
}

// An idle TCP connection must be closed by the server once IdleTimeout
// elapses, so abandoned clients cannot pin handler goroutines forever.
func TestTCPIdleTimeout(t *testing.T) {
	s := New(1)
	s.AddZone(buildZone(t, false))
	l, err := ListenConfig("127.0.0.1:0", s, Config{UDPWorkers: 1, IdleTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing; the server should hang up on its own.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("idle connection still open after IdleTimeout")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server never closed the idle connection")
	}
}

// The idle deadline is per-message: a connection that keeps issuing
// queries stays up across many IdleTimeout windows.
func TestTCPIdleTimeoutRearmsPerMessage(t *testing.T) {
	s := New(1)
	s.AddZone(buildZone(t, false))
	l, err := ListenConfig("127.0.0.1:0", s, Config{UDPWorkers: 1, IdleTimeout: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 5; i++ {
		q := dnswire.NewQuery(uint16(i+1), "www.example.com.", dnswire.TypeA)
		wire, err := q.Pack()
		if err != nil {
			t.Fatal(err)
		}
		if err := transport.WriteTCPMessage(conn, wire); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		respWire, err := transport.ReadTCPMessage(conn)
		if err != nil {
			t.Fatalf("query %d read: %v", i, err)
		}
		resp, err := dnswire.Unpack(respWire)
		if err != nil {
			t.Fatal(err)
		}
		if resp.ID != uint16(i+1) {
			t.Fatalf("query %d: response ID %d", i, resp.ID)
		}
		time.Sleep(40 * time.Millisecond) // under the idle limit
	}
}

// Shutdown with an expired context force-closes instead of waiting for
// a stuck handler, and still leaves every goroutine joined.
func TestShutdownDeadlineForcesClose(t *testing.T) {
	h := &slowHandler{release: make(chan struct{})}
	l, err := ListenConfig("127.0.0.1:0", h, Config{UDPWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	conn := sendUDPQuery(t, l.Addr(), "stuck.example.")
	defer conn.Close()
	for i := 0; h.started.Load() == 0; i++ {
		if i > 400 {
			t.Fatal("handler never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	go func() {
		time.Sleep(300 * time.Millisecond)
		close(h.release) // un-stick so the forced drain can join
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := l.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
	// Idempotent: a second Close is a no-op.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// The listener's serving metrics move under load.
func TestListenerMetrics(t *testing.T) {
	s := New(1)
	s.AddZone(buildZone(t, false))
	reg := obs.NewRegistry()
	l, err := ListenConfig("127.0.0.1:0", s, Config{UDPWorkers: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	c := &transport.Client{Timeout: 2 * time.Second, Retries: 1}
	for i := 0; i < 5; i++ {
		q := dnswire.NewQuery(0, "www.example.com.", dnswire.TypeA)
		if _, err := c.Exchange(context.Background(), l.Addr(), q); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["server.udp.queries"] < 5 {
		t.Errorf("server.udp.queries = %d, want >= 5", snap.Counters["server.udp.queries"])
	}
	hs, ok := snap.Histograms["server.handle.seconds"]
	if !ok || hs.Count < 5 {
		t.Errorf("server.handle.seconds count = %d, want >= 5", hs.Count)
	}
	if snap.Gauges["server.inflight"] != 0 {
		t.Errorf("server.inflight after drain = %d, want 0", snap.Gauges["server.inflight"])
	}
}
