package server

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/transport"
)

func TestUDPListenerEndToEnd(t *testing.T) {
	s := New(1)
	s.AddZone(buildZone(t, true))
	l, err := Listen("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	c := &transport.Client{Timeout: 2 * time.Second, Retries: 1}
	q := dnswire.NewQuery(0, "www.example.com.", dnswire.TypeA)
	q.SetEDNS(dnswire.EDNS{UDPSize: dnswire.MaxUDPPayload, DO: true})
	resp, err := c.Exchange(context.Background(), l.Addr(), q)
	if err != nil {
		t.Fatalf("Exchange: %v", err)
	}
	if resp.Rcode != dnswire.RcodeNoError || len(resp.Answer) == 0 {
		t.Fatalf("resp = %s", resp.Summary())
	}
	hasSig := false
	for _, rr := range resp.Answer {
		if rr.Type() == dnswire.TypeRRSIG {
			hasSig = true
		}
	}
	if !hasSig {
		t.Error("no RRSIG over UDP with DO")
	}
}

func TestTCPFallbackOnTruncation(t *testing.T) {
	s := New(1)
	z := buildZone(t, false)
	// Enough TXT data at one name to overflow a 512-byte UDP response.
	for i := 0; i < 20; i++ {
		z.MustAdd(dnswire.RR{Name: "big.example.com.", TTL: 60,
			Data: &dnswire.TXT{Strings: []string{string(rune('a'+i)) + " padding padding padding padding padding padding"}}})
	}
	s.AddZone(z)
	l, err := Listen("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	c := &transport.Client{Timeout: 2 * time.Second}
	q := dnswire.NewQuery(0, "big.example.com.", dnswire.TypeTXT) // no EDNS → 512 limit
	resp, err := c.Exchange(context.Background(), l.Addr(), q)
	if err != nil {
		t.Fatalf("Exchange: %v", err)
	}
	if resp.Truncated {
		t.Error("final response still truncated after TCP fallback")
	}
	if len(resp.Answer) != 20 {
		t.Errorf("answers over TCP = %d, want 20", len(resp.Answer))
	}
}

func TestAXFREndToEnd(t *testing.T) {
	s := New(1)
	z := buildZone(t, true)
	s.AddZone(z)
	l, err := Listen("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	got, err := AXFR(ctx, l.Addr(), "example.com.")
	if err != nil {
		t.Fatalf("AXFR: %v", err)
	}
	if got.Size() != z.Size() {
		t.Errorf("transferred %d records, want %d", got.Size(), z.Size())
	}
	if got.SOA() == nil {
		t.Error("transferred zone lacks SOA")
	}
	if !got.IsSigned() {
		t.Error("transferred zone lost its DNSKEYs")
	}
}

// The AXFR client must verify that every streamed message echoes the
// query ID (RFC 5936 §2.2); pre-fix it ingested any stream the server
// sent.
func TestAXFRRejectsMismatchedID(t *testing.T) {
	tl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	go func() {
		conn, err := tl.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		wire, err := transport.ReadTCPMessage(conn)
		if err != nil {
			return
		}
		q, err := dnswire.Unpack(wire)
		if err != nil {
			return
		}
		soa := dnswire.RR{Name: "example.com.", Class: dnswire.ClassIN, TTL: 3600,
			Data: &dnswire.SOA{MName: "ns1.example.com.", RName: "host.example.com.",
				Serial: 1, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300}}
		m := &dnswire.Message{
			ID: q.ID + 1, Response: true, Authoritative: true, // wrong ID
			Question: q.Question, Answer: []dnswire.RR{soa, soa},
		}
		out, err := m.Pack()
		if err != nil {
			return
		}
		_ = transport.WriteTCPMessage(conn, out)
	}()
	ap, err := netip.ParseAddrPort(tl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err = AXFR(ctx, ap, "example.com.")
	if err == nil {
		t.Fatal("AXFR accepted a stream with a mismatched message ID")
	}
	if !strings.Contains(err.Error(), "ID") {
		t.Errorf("error %q does not mention the ID mismatch", err)
	}
}

// RFC 5936 §2.2.1: in a multi-message transfer the question section
// appears in the first message only. Pre-fix every chunk repeated it.
func TestAXFRQuestionInFirstMessageOnly(t *testing.T) {
	s := New(1)
	z := buildZone(t, false)
	// Enough records to force several 200-record AXFR chunks.
	for i := 0; i < 450; i++ {
		z.MustAdd(dnswire.RR{Name: fmt.Sprintf("h%03d.example.com.", i), TTL: 60,
			Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.77")}})
	}
	s.AddZone(z)
	l, err := Listen("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	q := dnswire.NewQuery(77, "example.com.", dnswire.TypeAXFR)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if err := transport.WriteTCPMessage(conn, wire); err != nil {
		t.Fatal(err)
	}
	var msgs []*dnswire.Message
	soaSeen := 0
	for soaSeen < 2 {
		respWire, err := transport.ReadTCPMessage(conn)
		if err != nil {
			t.Fatalf("read message %d: %v", len(msgs), err)
		}
		m, err := dnswire.Unpack(respWire)
		if err != nil {
			t.Fatal(err)
		}
		for _, rr := range m.Answer {
			if rr.Type() == dnswire.TypeSOA {
				soaSeen++
			}
		}
		msgs = append(msgs, m)
	}
	if len(msgs) < 3 {
		t.Fatalf("transfer used %d messages, want >= 3 for the chunking assertion", len(msgs))
	}
	if len(msgs[0].Question) != 1 {
		t.Errorf("first message has %d questions, want 1", len(msgs[0].Question))
	}
	for i, m := range msgs[1:] {
		if len(m.Question) != 0 {
			t.Errorf("message %d repeats the question section", i+1)
		}
		if m.ID != 77 {
			t.Errorf("message %d ID = %d, want 77", i+1, m.ID)
		}
	}
	// The client still reassembles such a stream correctly.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	got, err := AXFR(ctx, l.Addr(), "example.com.")
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != z.Size() {
		t.Errorf("transferred %d records, want %d", got.Size(), z.Size())
	}
}

func TestAXFRUnknownZone(t *testing.T) {
	s := New(1)
	s.AddZone(buildZone(t, false))
	l, err := Listen("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := AXFR(ctx, l.Addr(), "nothosted.org."); err == nil {
		t.Error("AXFR of unknown zone succeeded")
	}
}
