package server

import (
	"context"
	"testing"
	"time"

	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/transport"
)

func TestUDPListenerEndToEnd(t *testing.T) {
	s := New(1)
	s.AddZone(buildZone(t, true))
	l, err := Listen("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	c := &transport.Client{Timeout: 2 * time.Second, Retries: 1}
	q := dnswire.NewQuery(0, "www.example.com.", dnswire.TypeA)
	q.SetEDNS(dnswire.EDNS{UDPSize: dnswire.MaxUDPPayload, DO: true})
	resp, err := c.Exchange(context.Background(), l.Addr(), q)
	if err != nil {
		t.Fatalf("Exchange: %v", err)
	}
	if resp.Rcode != dnswire.RcodeNoError || len(resp.Answer) == 0 {
		t.Fatalf("resp = %s", resp.Summary())
	}
	hasSig := false
	for _, rr := range resp.Answer {
		if rr.Type() == dnswire.TypeRRSIG {
			hasSig = true
		}
	}
	if !hasSig {
		t.Error("no RRSIG over UDP with DO")
	}
}

func TestTCPFallbackOnTruncation(t *testing.T) {
	s := New(1)
	z := buildZone(t, false)
	// Enough TXT data at one name to overflow a 512-byte UDP response.
	for i := 0; i < 20; i++ {
		z.MustAdd(dnswire.RR{Name: "big.example.com.", TTL: 60,
			Data: &dnswire.TXT{Strings: []string{string(rune('a'+i)) + " padding padding padding padding padding padding"}}})
	}
	s.AddZone(z)
	l, err := Listen("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	c := &transport.Client{Timeout: 2 * time.Second}
	q := dnswire.NewQuery(0, "big.example.com.", dnswire.TypeTXT) // no EDNS → 512 limit
	resp, err := c.Exchange(context.Background(), l.Addr(), q)
	if err != nil {
		t.Fatalf("Exchange: %v", err)
	}
	if resp.Truncated {
		t.Error("final response still truncated after TCP fallback")
	}
	if len(resp.Answer) != 20 {
		t.Errorf("answers over TCP = %d, want 20", len(resp.Answer))
	}
}

func TestAXFREndToEnd(t *testing.T) {
	s := New(1)
	z := buildZone(t, true)
	s.AddZone(z)
	l, err := Listen("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	got, err := AXFR(ctx, l.Addr(), "example.com.")
	if err != nil {
		t.Fatalf("AXFR: %v", err)
	}
	if got.Size() != z.Size() {
		t.Errorf("transferred %d records, want %d", got.Size(), z.Size())
	}
	if got.SOA() == nil {
		t.Error("transferred zone lacks SOA")
	}
	if !got.IsSigned() {
		t.Error("transferred zone lost its DNSKEYs")
	}
}

func TestAXFRUnknownZone(t *testing.T) {
	s := New(1)
	s.AddZone(buildZone(t, false))
	l, err := Listen("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := AXFR(ctx, l.Addr(), "nothosted.org."); err == nil {
		t.Error("AXFR of unknown zone succeeded")
	}
}
