package server

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"dnssecboot/internal/dnssec"
	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/zone"
)

var (
	testNow   = time.Date(2025, 4, 15, 12, 0, 0, 0, time.UTC)
	localAddr = netip.MustParseAddr("192.0.2.53")
)

func buildZone(t *testing.T, signed bool) *zone.Zone {
	t.Helper()
	z := zone.New("example.com.")
	z.SetBasics("ns1.example.net.", []string{"ns1.example.net.", "ns2.example.org."}, 1)
	z.MustAdd(dnswire.RR{Name: "example.com.", TTL: 300, Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.10")}})
	z.MustAdd(dnswire.RR{Name: "www.example.com.", TTL: 300, Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.11")}})
	z.MustAdd(dnswire.RR{Name: "alias.example.com.", TTL: 300, Data: dnswire.NewCNAME("www.example.com.")})
	z.MustAdd(dnswire.RR{Name: "sub.example.com.", TTL: 3600, Data: dnswire.NewNS("ns.sub.example.com.")})
	z.MustAdd(dnswire.RR{Name: "ns.sub.example.com.", TTL: 3600, Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.54")}})
	if signed {
		if err := z.GenerateKeys(zone.SignConfig{Algorithm: dnswire.AlgEd25519}, nil); err != nil {
			t.Fatal(err)
		}
		if err := z.Sign(zone.SignConfig{Now: testNow}); err != nil {
			t.Fatal(err)
		}
	}
	return z
}

func ask(t *testing.T, s *Server, name string, typ dnswire.Type, do bool) *dnswire.Message {
	t.Helper()
	q := dnswire.NewQuery(42, name, typ)
	if do {
		q.SetEDNS(dnswire.EDNS{UDPSize: dnswire.MaxUDPPayload, DO: true})
	}
	resp, err := s.HandleDNS(context.Background(), localAddr, q)
	if err != nil {
		t.Fatalf("HandleDNS: %v", err)
	}
	if resp == nil {
		t.Fatal("nil response")
	}
	return resp
}

func TestPositiveAnswer(t *testing.T) {
	s := New(1)
	s.AddZone(buildZone(t, false))
	resp := ask(t, s, "www.example.com.", dnswire.TypeA, false)
	if resp.Rcode != dnswire.RcodeNoError || !resp.Authoritative {
		t.Fatalf("rcode=%s aa=%v", resp.Rcode, resp.Authoritative)
	}
	if len(resp.Answer) != 1 || resp.Answer[0].Type() != dnswire.TypeA {
		t.Fatalf("answer = %+v", resp.Answer)
	}
	if resp.ID != 42 {
		t.Errorf("response ID = %d", resp.ID)
	}
}

func TestNODATAAndNXDOMAIN(t *testing.T) {
	s := New(1)
	s.AddZone(buildZone(t, false))
	nodata := ask(t, s, "www.example.com.", dnswire.TypeMX, false)
	if nodata.Rcode != dnswire.RcodeNoError || len(nodata.Answer) != 0 {
		t.Errorf("NODATA rcode=%s answers=%d", nodata.Rcode, len(nodata.Answer))
	}
	if len(nodata.Authority) == 0 || nodata.Authority[0].Type() != dnswire.TypeSOA {
		t.Error("NODATA lacks SOA in authority")
	}
	nx := ask(t, s, "nope.example.com.", dnswire.TypeA, false)
	if nx.Rcode != dnswire.RcodeNXDomain {
		t.Errorf("NXDOMAIN rcode = %s", nx.Rcode)
	}
}

func TestRefusedOutOfZone(t *testing.T) {
	s := New(1)
	s.AddZone(buildZone(t, false))
	resp := ask(t, s, "other.org.", dnswire.TypeA, false)
	if resp.Rcode != dnswire.RcodeRefused {
		t.Errorf("rcode = %s, want REFUSED", resp.Rcode)
	}
}

func TestReferralWithGlue(t *testing.T) {
	s := New(1)
	s.AddZone(buildZone(t, false))
	resp := ask(t, s, "deep.sub.example.com.", dnswire.TypeA, false)
	if resp.Authoritative {
		t.Error("referral has AA set")
	}
	if len(resp.Answer) != 0 {
		t.Errorf("referral has %d answers", len(resp.Answer))
	}
	foundNS := false
	for _, rr := range resp.Authority {
		if rr.Type() == dnswire.TypeNS && rr.Name == "sub.example.com." {
			foundNS = true
		}
	}
	if !foundNS {
		t.Error("referral lacks delegation NS")
	}
	foundGlue := false
	for _, rr := range resp.Additional {
		if rr.Type() == dnswire.TypeA && rr.Name == "ns.sub.example.com." {
			foundGlue = true
		}
	}
	if !foundGlue {
		t.Error("referral lacks glue")
	}
}

func TestCNAMEChase(t *testing.T) {
	s := New(1)
	s.AddZone(buildZone(t, false))
	resp := ask(t, s, "alias.example.com.", dnswire.TypeA, false)
	if len(resp.Answer) != 2 {
		t.Fatalf("answer count = %d, want CNAME+A", len(resp.Answer))
	}
	if resp.Answer[0].Type() != dnswire.TypeCNAME || resp.Answer[1].Type() != dnswire.TypeA {
		t.Errorf("answer types = %s, %s", resp.Answer[0].Type(), resp.Answer[1].Type())
	}
}

func TestDNSSECAnswers(t *testing.T) {
	s := New(1)
	z := buildZone(t, true)
	s.AddZone(z)

	// With DO: RRSIGs present and verifiable.
	resp := ask(t, s, "www.example.com.", dnswire.TypeA, true)
	var aSet, sigSet []dnswire.RR
	for _, rr := range resp.Answer {
		switch rr.Type() {
		case dnswire.TypeA:
			aSet = append(aSet, rr)
		case dnswire.TypeRRSIG:
			sigSet = append(sigSet, rr)
		}
	}
	if len(aSet) == 0 || len(sigSet) == 0 {
		t.Fatalf("DO answer missing data or sigs: %d/%d", len(aSet), len(sigSet))
	}
	keys := z.RRset(z.Origin, dnswire.TypeDNSKEY)
	if err := dnssec.VerifyRRset(aSet, sigSet, keys, testNow); err != nil {
		t.Errorf("answer does not verify: %v", err)
	}

	// Without DO: no RRSIGs.
	plain := ask(t, s, "www.example.com.", dnswire.TypeA, false)
	for _, rr := range plain.Answer {
		if rr.Type() == dnswire.TypeRRSIG {
			t.Error("RRSIG included without DO")
		}
	}
}

func TestNXDOMAINWithNSECProof(t *testing.T) {
	s := New(1)
	z := buildZone(t, true)
	s.AddZone(z)
	resp := ask(t, s, "middle.example.com.", dnswire.TypeA, true)
	if resp.Rcode != dnswire.RcodeNXDomain {
		t.Fatalf("rcode = %s", resp.Rcode)
	}
	if !dnssec.CheckDenial(resp.Authority, "middle.example.com.", dnswire.TypeA) {
		t.Error("no NSEC denial proof in authority section")
	}
}

func TestNODATAWithNSECProof(t *testing.T) {
	s := New(1)
	z := buildZone(t, true)
	s.AddZone(z)
	resp := ask(t, s, "www.example.com.", dnswire.TypeCDS, true)
	if resp.Rcode != dnswire.RcodeNoError || len(resp.Answer) != 0 {
		t.Fatalf("rcode=%s answers=%d", resp.Rcode, len(resp.Answer))
	}
	if !dnssec.CheckDenial(resp.Authority, "www.example.com.", dnswire.TypeCDS) {
		t.Error("no NODATA NSEC proof")
	}
}

func TestLegacyUnknownTypes(t *testing.T) {
	s := New(1)
	s.Behavior.LegacyUnknownTypes = true
	s.AddZone(buildZone(t, false))
	resp := ask(t, s, "example.com.", dnswire.TypeCDS, false)
	if resp.Rcode != dnswire.RcodeFormErr {
		t.Errorf("legacy server rcode = %s, want FORMERR", resp.Rcode)
	}
	// Classic types still work.
	ok := ask(t, s, "example.com.", dnswire.TypeA, false)
	if ok.Rcode != dnswire.RcodeNoError || len(ok.Answer) == 0 {
		t.Error("legacy server broke classic queries")
	}
}

func TestDropUnknownTypes(t *testing.T) {
	s := New(1)
	s.Behavior.DropUnknownTypes = true
	s.AddZone(buildZone(t, false))
	q := dnswire.NewQuery(1, "example.com.", dnswire.TypeCDS)
	resp, err := s.HandleDNS(context.Background(), localAddr, q)
	if err != nil || resp != nil {
		t.Errorf("drop-mode returned %v, %v", resp, err)
	}
}

func TestRefuseANY(t *testing.T) {
	s := New(1)
	s.Behavior.RefuseANY = true
	s.AddZone(buildZone(t, false))
	resp := ask(t, s, "example.com.", dnswire.TypeANY, false)
	if len(resp.Answer) != 1 || resp.Answer[0].Type() != dnswire.Type(13) {
		t.Errorf("RFC 8482 answer = %+v", resp.Answer)
	}
}

func TestServfailAndDropRates(t *testing.T) {
	s := New(7)
	s.Behavior.ServfailRate = 1.0
	s.AddZone(buildZone(t, false))
	resp := ask(t, s, "example.com.", dnswire.TypeA, false)
	if resp.Rcode != dnswire.RcodeServFail {
		t.Errorf("rcode = %s, want SERVFAIL", resp.Rcode)
	}
	s2 := New(7)
	s2.Behavior.DropRate = 1.0
	s2.AddZone(buildZone(t, false))
	q := dnswire.NewQuery(1, "example.com.", dnswire.TypeA)
	got, err := s2.HandleDNS(context.Background(), localAddr, q)
	if err != nil || got != nil {
		t.Errorf("drop returned %v, %v", got, err)
	}
}

func TestCorruptSigRate(t *testing.T) {
	s := New(3)
	s.Behavior.CorruptSigRate = 1.0
	z := buildZone(t, true)
	s.AddZone(z)
	resp := ask(t, s, "www.example.com.", dnswire.TypeA, true)
	var aSet, sigSet []dnswire.RR
	for _, rr := range resp.Answer {
		if rr.Type() == dnswire.TypeA {
			aSet = append(aSet, rr)
		}
		if rr.Type() == dnswire.TypeRRSIG {
			sigSet = append(sigSet, rr)
		}
	}
	if len(sigSet) == 0 {
		t.Fatal("no sigs returned")
	}
	keys := z.RRset(z.Origin, dnswire.TypeDNSKEY)
	if err := dnssec.VerifyRRset(aSet, sigSet, keys, testNow); err == nil {
		t.Error("corrupted signature verified")
	}
}

func TestMostSpecificZoneWins(t *testing.T) {
	s := New(1)
	parent := zone.New("com.")
	parent.SetBasics("ns.tld.", []string{"ns.tld."}, 1)
	parent.MustAdd(dnswire.RR{Name: "example.com.", TTL: 3600, Data: dnswire.NewNS("ns1.example.net.")})
	s.AddZone(parent)
	s.AddZone(buildZone(t, false))
	resp := ask(t, s, "www.example.com.", dnswire.TypeA, false)
	if !resp.Authoritative || len(resp.Answer) != 1 {
		t.Errorf("child zone did not win: aa=%v answers=%d", resp.Authoritative, len(resp.Answer))
	}
}

func TestParkingHandler(t *testing.T) {
	p := &Parking{NSHosts: []string{"ns1.namefind.com.", "ns2.namefind.com."}, Addr: netip.MustParseAddr("203.0.113.1")}
	q := dnswire.NewQuery(5, "anything.at.all.example.", dnswire.TypeNS)
	resp, err := p.HandleDNS(context.Background(), localAddr, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answer) != 2 {
		t.Fatalf("parking NS answers = %d", len(resp.Answer))
	}
	// The same answer at any depth — the zone-cut illusion.
	q2 := dnswire.NewQuery(6, "a.b.c.d.e.example.", dnswire.TypeNS)
	resp2, _ := p.HandleDNS(context.Background(), localAddr, q2)
	if len(resp2.Answer) != 2 {
		t.Error("parking server depth-sensitive")
	}
}

func TestFormErrOnBadQuery(t *testing.T) {
	s := New(1)
	s.AddZone(buildZone(t, false))
	q := &dnswire.Message{ID: 9} // no question
	resp, err := s.HandleDNS(context.Background(), localAddr, q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rcode != dnswire.RcodeFormErr {
		t.Errorf("rcode = %s", resp.Rcode)
	}
}

func TestWildcardSynthesis(t *testing.T) {
	s := New(1)
	z := zone.New("wild.test.")
	z.SetBasics("ns1.example.net.", []string{"ns1.example.net."}, 1)
	z.MustAdd(dnswire.RR{Name: "*.wild.test.", TTL: 300, Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.77")}})
	z.MustAdd(dnswire.RR{Name: "real.wild.test.", TTL: 300, Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.78")}})
	if err := z.GenerateKeys(zone.SignConfig{Algorithm: dnswire.AlgEd25519}, nil); err != nil {
		t.Fatal(err)
	}
	if err := z.Sign(zone.SignConfig{Now: testNow}); err != nil {
		t.Fatal(err)
	}
	s.AddZone(z)

	// Synthesized answer with the qname as owner.
	resp := ask(t, s, "anything.wild.test.", dnswire.TypeA, true)
	if resp.Rcode != dnswire.RcodeNoError {
		t.Fatalf("rcode = %s", resp.Rcode)
	}
	var aSet, sigSet []dnswire.RR
	for _, rr := range resp.Answer {
		switch rr.Type() {
		case dnswire.TypeA:
			aSet = append(aSet, rr)
		case dnswire.TypeRRSIG:
			sigSet = append(sigSet, rr)
		}
	}
	if len(aSet) != 1 || aSet[0].Name != "anything.wild.test." {
		t.Fatalf("synthesized answer = %+v", aSet)
	}
	if aSet[0].Data.(*dnswire.A).Addr.String() != "192.0.2.77" {
		t.Errorf("wildcard addr = %s", aSet[0].Data.(*dnswire.A).Addr)
	}
	// The wildcard RRSIG must validate against the expanded name.
	keys := z.RRset(z.Origin, dnswire.TypeDNSKEY)
	if err := dnssec.VerifyRRset(aSet, sigSet, keys, testNow); err != nil {
		t.Errorf("wildcard expansion does not verify: %v", err)
	}
	// The covering NSEC proof must accompany the expansion.
	foundNSEC := false
	for _, rr := range resp.Authority {
		if rr.Type() == dnswire.TypeNSEC {
			foundNSEC = true
		}
	}
	if !foundNSEC {
		t.Error("wildcard answer lacks the no-exact-match NSEC")
	}

	// Exact names still win over the wildcard.
	exact := ask(t, s, "real.wild.test.", dnswire.TypeA, false)
	if exact.Answer[0].Data.(*dnswire.A).Addr.String() != "192.0.2.78" {
		t.Error("exact match shadowed by wildcard")
	}
	// Wildcard NODATA for absent types.
	nodata := ask(t, s, "anything.wild.test.", dnswire.TypeMX, false)
	if nodata.Rcode != dnswire.RcodeNoError || len(nodata.Answer) != 0 {
		t.Errorf("wildcard NODATA: rcode=%s answers=%d", nodata.Rcode, len(nodata.Answer))
	}
}

func TestNSEC3Denial(t *testing.T) {
	s := New(1)
	z := zone.New("n3.test.")
	z.SetBasics("ns1.example.net.", []string{"ns1.example.net."}, 1)
	z.MustAdd(dnswire.RR{Name: "alpha.n3.test.", TTL: 300, Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}})
	z.MustAdd(dnswire.RR{Name: "beta.n3.test.", TTL: 300, Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.2")}})
	cfg := zone.SignConfig{Now: testNow, Algorithm: dnswire.AlgEd25519, UseNSEC3: true, NSEC3Salt: []byte{0xAB, 0xCD}}
	if err := z.GenerateKeys(cfg, nil); err != nil {
		t.Fatal(err)
	}
	if err := z.Sign(cfg); err != nil {
		t.Fatal(err)
	}
	s.AddZone(z)

	// Positive answers still verify.
	resp := ask(t, s, "alpha.n3.test.", dnswire.TypeA, true)
	var aSet, sigSet []dnswire.RR
	for _, rr := range resp.Answer {
		if rr.Type() == dnswire.TypeA {
			aSet = append(aSet, rr)
		}
		if rr.Type() == dnswire.TypeRRSIG {
			sigSet = append(sigSet, rr)
		}
	}
	keys := z.RRset(z.Origin, dnswire.TypeDNSKEY)
	if err := dnssec.VerifyRRset(aSet, sigSet, keys, testNow); err != nil {
		t.Fatalf("NSEC3-zone positive answer: %v", err)
	}

	// NXDOMAIN carries a verifiable NSEC3 proof.
	nx := ask(t, s, "gamma.n3.test.", dnswire.TypeA, true)
	if nx.Rcode != dnswire.RcodeNXDomain {
		t.Fatalf("rcode = %s", nx.Rcode)
	}
	if !dnssec.CheckDenialNSEC3(nx.Authority, "gamma.n3.test.", dnswire.TypeA) {
		t.Errorf("no NSEC3 NXDOMAIN proof in %d authority records", len(nx.Authority))
	}
	// And its NSEC3 records are signed + verifiable.
	for _, rr := range nx.Authority {
		if rr.Type() != dnswire.TypeNSEC3 {
			continue
		}
		sigs := dnssec.SigsCovering(nx.Authority, rr.Name, dnswire.TypeNSEC3)
		if err := dnssec.VerifyRRset([]dnswire.RR{rr}, sigs, keys, testNow); err != nil {
			t.Errorf("NSEC3 at %s does not verify: %v", rr.Name, err)
		}
	}

	// NODATA proof.
	nodata := ask(t, s, "alpha.n3.test.", dnswire.TypeMX, true)
	if nodata.Rcode != dnswire.RcodeNoError || len(nodata.Answer) != 0 {
		t.Fatalf("NODATA rcode=%s answers=%d", nodata.Rcode, len(nodata.Answer))
	}
	if !dnssec.CheckDenialNSEC3(nodata.Authority, "alpha.n3.test.", dnswire.TypeMX) {
		t.Error("no NSEC3 NODATA proof")
	}
}
