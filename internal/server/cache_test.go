package server

import (
	"context"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/obs"
	"dnssecboot/internal/zone"
)

// fakeClock is an adjustable time source for cache tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func newTestCache(max int, reg *obs.Registry) (*Cache, *fakeClock) {
	c := NewCache(max, reg)
	clk := &fakeClock{t: time.Date(2025, 4, 15, 12, 0, 0, 0, time.UTC)}
	c.now = clk.now
	return c, clk
}

func doQuery(name string, typ dnswire.Type, do bool) *dnswire.Message {
	q := dnswire.NewQuery(100, name, typ)
	if do {
		q.SetEDNS(dnswire.EDNS{UDPSize: dnswire.MaxUDPPayload, DO: true})
	}
	return q
}

func TestCacheHitServesAgedCopy(t *testing.T) {
	s := New(1)
	s.AddZone(buildZone(t, false))
	c, clk := newTestCache(16, nil)
	h := &CachedHandler{Inner: s, Cache: c}

	q1 := doQuery("www.example.com.", dnswire.TypeA, false)
	first, err := h.HandleDNS(context.Background(), localAddr, q1)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Answer) != 1 || first.Answer[0].TTL != 300 {
		t.Fatalf("first answer = %+v", first.Answer)
	}

	clk.advance(10 * time.Second)
	q2 := doQuery("www.example.com.", dnswire.TypeA, false)
	q2.ID = 1234
	second, err := h.HandleDNS(context.Background(), localAddr, q2)
	if err != nil {
		t.Fatal(err)
	}
	if second.ID != 1234 {
		t.Errorf("cached response ID = %d, want 1234", second.ID)
	}
	if len(second.Answer) != 1 || second.Answer[0].TTL != 290 {
		t.Errorf("aged TTL = %d, want 290", second.Answer[0].TTL)
	}
	if !second.Authoritative || second.Rcode != dnswire.RcodeNoError {
		t.Errorf("cached header aa=%v rcode=%s", second.Authoritative, second.Rcode)
	}
	// The copy must not share section storage with the template: mutate
	// it and hit again.
	second.Answer[0].TTL = 9999
	third := c.Get(doQuery("www.example.com.", dnswire.TypeA, false))
	if third == nil || third.Answer[0].TTL != 290 {
		t.Error("cached template was mutated through a served copy")
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	s := New(1)
	s.AddZone(buildZone(t, false))
	reg := obs.NewRegistry()
	c, clk := newTestCache(16, reg)
	h := &CachedHandler{Inner: s, Cache: c}

	q := doQuery("www.example.com.", dnswire.TypeA, false) // TTL 300
	if _, err := h.HandleDNS(context.Background(), localAddr, q); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("cache len = %d", c.Len())
	}
	clk.advance(299 * time.Second)
	if c.Get(q) == nil {
		t.Error("entry expired before its TTL elapsed")
	}
	clk.advance(2 * time.Second)
	if c.Get(q) != nil {
		t.Error("entry served after its TTL elapsed")
	}
	if c.Len() != 0 {
		t.Errorf("expired entry still resident, len = %d", c.Len())
	}
	snap := reg.Snapshot()
	if snap.Counters["server.cache.expired"] != 1 {
		t.Errorf("expired counter = %d", snap.Counters["server.cache.expired"])
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	s := New(1)
	s.AddZone(buildZone(t, false))
	reg := obs.NewRegistry()
	c, _ := newTestCache(3, reg)
	h := &CachedHandler{Inner: s, Cache: c}

	// Fill with three distinct shapes, then touch the first so the
	// second is the least recently used.
	types := []dnswire.Type{dnswire.TypeA, dnswire.TypeMX, dnswire.TypeTXT}
	for _, typ := range types {
		if _, err := h.HandleDNS(context.Background(), localAddr, doQuery("www.example.com.", typ, false)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("cache len = %d, want 3", c.Len())
	}
	if c.Get(doQuery("www.example.com.", dnswire.TypeA, false)) == nil {
		t.Fatal("warm entry missing")
	}
	// A fourth shape must evict MX (the LRU), not A.
	if _, err := h.HandleDNS(context.Background(), localAddr, doQuery("example.com.", dnswire.TypeA, false)); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Fatalf("cache len after eviction = %d, want 3", c.Len())
	}
	if c.Get(doQuery("www.example.com.", dnswire.TypeA, false)) == nil {
		t.Error("recently used entry was evicted")
	}
	if c.Get(doQuery("www.example.com.", dnswire.TypeMX, false)) != nil {
		t.Error("LRU entry survived eviction")
	}
	if n := reg.Snapshot().Counters["server.cache.evictions"]; n != 1 {
		t.Errorf("evictions = %d, want 1", n)
	}
}

// The DO bit is part of the query shape: a DO=1 response (with RRSIGs)
// must never be served to a DO=0 client and vice versa, and EDNS
// presence on the served copy follows the live query, not the cached
// one.
func TestCacheKeyedByDOBit(t *testing.T) {
	s := New(1)
	s.AddZone(buildZone(t, true))
	c, _ := newTestCache(16, nil)
	h := &CachedHandler{Inner: s, Cache: c}

	plain, err := h.HandleDNS(context.Background(), localAddr, doQuery("www.example.com.", dnswire.TypeA, false))
	if err != nil {
		t.Fatal(err)
	}
	signed, err := h.HandleDNS(context.Background(), localAddr, doQuery("www.example.com.", dnswire.TypeA, true))
	if err != nil {
		t.Fatal(err)
	}
	if countType(plain.Answer, dnswire.TypeRRSIG) != 0 {
		t.Error("DO=0 response carries RRSIGs")
	}
	if countType(signed.Answer, dnswire.TypeRRSIG) == 0 {
		t.Error("DO=1 response lacks RRSIGs")
	}
	// Both shapes are now cached; hits must stay segregated.
	hitPlain := c.Get(doQuery("www.example.com.", dnswire.TypeA, false))
	hitSigned := c.Get(doQuery("www.example.com.", dnswire.TypeA, true))
	if hitPlain == nil || hitSigned == nil {
		t.Fatal("expected both shapes cached")
	}
	if countType(hitPlain.Answer, dnswire.TypeRRSIG) != 0 {
		t.Error("cached DO=0 hit carries RRSIGs")
	}
	if countType(hitSigned.Answer, dnswire.TypeRRSIG) == 0 {
		t.Error("cached DO=1 hit lacks RRSIGs")
	}
	if _, ok := hitPlain.GetEDNS(); ok {
		t.Error("non-EDNS query served a response with an OPT record")
	}
	if e, ok := hitSigned.GetEDNS(); !ok || !e.DO {
		t.Error("EDNS DO query served a response without a DO OPT record")
	}
}

func TestCacheNXDomainAndUncacheable(t *testing.T) {
	s := New(1)
	s.AddZone(buildZone(t, false))
	c, _ := newTestCache(16, nil)
	h := &CachedHandler{Inner: s, Cache: c}

	// NXDOMAIN is cacheable (TTL from the SOA in authority).
	nx := doQuery("nope.example.com.", dnswire.TypeA, false)
	resp, err := h.HandleDNS(context.Background(), localAddr, nx)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rcode != dnswire.RcodeNXDomain {
		t.Fatalf("rcode = %s", resp.Rcode)
	}
	if hit := c.Get(nx); hit == nil || hit.Rcode != dnswire.RcodeNXDomain {
		t.Error("NXDOMAIN not cached")
	}

	// REFUSED (off-zone) must not be cached.
	ref := doQuery("unrelated.test.", dnswire.TypeA, false)
	if _, err := h.HandleDNS(context.Background(), localAddr, ref); err != nil {
		t.Fatal(err)
	}
	if c.Get(ref) != nil {
		t.Error("REFUSED response was cached")
	}
}

func countType(sec []dnswire.RR, typ dnswire.Type) int {
	n := 0
	for _, rr := range sec {
		if rr.Type() == typ {
			n++
		}
	}
	return n
}

func BenchmarkCachedHandler(b *testing.B) {
	s := New(1)
	z := zone.New("example.com.")
	z.SetBasics("ns1.example.net.", []string{"ns1.example.net."}, 1)
	for i := 0; i < 16; i++ {
		z.MustAdd(dnswire.RR{Name: fmt.Sprintf("host%d.example.com.", i), TTL: 300,
			Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.10")}})
	}
	s.AddZone(z)
	c := NewCache(1024, nil)
	h := &CachedHandler{Inner: s, Cache: c}
	qs := make([]*dnswire.Message, 16)
	for i := range qs {
		qs[i] = dnswire.NewQuery(uint16(i+1), fmt.Sprintf("host%d.example.com.", i), dnswire.TypeA)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.HandleDNS(context.Background(), localAddr, qs[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
	}
}
