// Package server implements an authoritative DNS server over any
// transport. It answers from internal/zone data with correct referral,
// NODATA, NXDOMAIN and DNSSEC (DO-bit) semantics, and supports the
// behaviour modes the paper observed in the wild: legacy servers that
// error on post-2003 record types (§4.2, "Lack of support for CDS"),
// flaky servers that intermittently drop queries or corrupt signatures
// (§4.4, deSEC's transient failures), RFC 8482 ANY refusal, and
// domain-parking servers that answer every name identically (§4.4, the
// Afternic zone-cut illusion).
package server

import (
	"context"
	"math/rand"
	"net/netip"
	"sort"
	"sync"

	"dnssecboot/internal/dnssec"
	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/zone"
)

// Behavior selects server quirks. The zero value is a fully
// standards-compliant authoritative server.
type Behavior struct {
	// LegacyUnknownTypes makes the server return FORMERR for any
	// query type outside the classic pre-DNSSEC set, modelling
	// nameservers never updated for RFC 3597. The paper found 7.6 M
	// domains behind such servers.
	LegacyUnknownTypes bool
	// DropUnknownTypes makes the server silently drop such queries
	// instead (the other failure mode the paper reports).
	DropUnknownTypes bool
	// RefuseANY answers ANY queries with a minimal HINFO per RFC 8482,
	// as Cloudflare does.
	RefuseANY bool
	// ServfailRate is the probability of answering SERVFAIL
	// regardless of the question (transient failures).
	ServfailRate float64
	// DropRate is the probability of silently dropping a query.
	DropRate float64
	// CorruptSigRate is the probability that RRSIGs in a response are
	// corrupted, modelling deSEC's transient invalid signatures.
	CorruptSigRate float64
	// MinimalResponses suppresses additional-section glue except where
	// required for in-bailiwick referrals.
	MinimalResponses bool
}

// Server is an authoritative DNS server holding any number of zones.
// It implements transport.Handler.
type Server struct {
	Behavior

	mu    sync.RWMutex
	zones map[string]*zone.Zone

	rngMu sync.Mutex
	rng   *rand.Rand
}

// New creates an empty server with deterministic behaviour randomness.
func New(seed int64) *Server {
	return &Server{
		zones: make(map[string]*zone.Zone),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// AddZone makes the server authoritative for z.
func (s *Server) AddZone(z *zone.Zone) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.zones[z.Origin] = z
}

// RemoveZone drops authority for origin.
func (s *Server) RemoveZone(origin string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.zones, dnswire.CanonicalName(origin))
}

// Zone returns the zone exactly matching origin, or nil.
func (s *Server) Zone(origin string) *zone.Zone {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.zones[dnswire.CanonicalName(origin)]
}

// Zones lists the origins the server is authoritative for, sorted.
func (s *Server) Zones() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.zones))
	for o := range s.zones {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// findZone returns the most-specific zone whose origin encloses qname.
// A child zone hosted alongside its parent wins for names under it.
// Lookup walks the name's ancestor chain, so it is O(labels) even when
// the server hosts hundreds of thousands of zones.
func (s *Server) findZone(qname string, qtype dnswire.Type) *zone.Zone {
	s.mu.RLock()
	defer s.mu.RUnlock()
	name := dnswire.CanonicalName(qname)
	if qtype == dnswire.TypeDS && name != "." {
		// DS records live on the parent side of a zone cut: when the
		// server hosts both parent and child, the child's apex must not
		// capture its own DS query (RFC 4035 §3.1.4.1).
		if _, hostsChild := s.zones[name]; hostsChild {
			name = dnswire.Parent(name)
		}
	}
	for ; ; name = dnswire.Parent(name) {
		if z, ok := s.zones[name]; ok {
			return z
		}
		if name == "." {
			return nil
		}
	}
}

func (s *Server) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.Float64() < p
}

var classicTypes = map[dnswire.Type]bool{
	dnswire.TypeA: true, dnswire.TypeNS: true, dnswire.TypeCNAME: true,
	dnswire.TypeSOA: true, dnswire.TypePTR: true, dnswire.TypeMX: true,
	dnswire.TypeTXT: true, dnswire.TypeAAAA: true, dnswire.TypeSRV: true,
	dnswire.TypeANY: true,
}

// HandleDNS implements transport.Handler.
func (s *Server) HandleDNS(ctx context.Context, local netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
	if len(q.Question) != 1 || q.Opcode != dnswire.OpcodeQuery || q.Response {
		return reply(q, dnswire.RcodeFormErr), nil
	}
	if s.chance(s.DropRate) {
		return nil, nil // silent drop → client timeout
	}
	if s.chance(s.ServfailRate) {
		return reply(q, dnswire.RcodeServFail), nil
	}
	question := q.Question[0]
	qname := dnswire.CanonicalName(question.Name)
	qtype := question.Type

	if (s.LegacyUnknownTypes || s.DropUnknownTypes) && !classicTypes[qtype] {
		if s.DropUnknownTypes {
			return nil, nil
		}
		return reply(q, dnswire.RcodeFormErr), nil
	}
	if s.RefuseANY && qtype == dnswire.TypeANY {
		m := reply(q, dnswire.RcodeNoError)
		m.Authoritative = true
		// RFC 8482 §4.2: a synthesised HINFO with CPU "RFC8482".
		m.Answer = append(m.Answer, dnswire.RR{
			Name: qname, Class: dnswire.ClassIN, TTL: 3789,
			Data: &dnswire.Generic{T: dnswire.Type(13), Octets: hinfoRFC8482},
		})
		return s.finish(q, m), nil
	}

	z := s.findZone(qname, qtype)
	if z == nil {
		return reply(q, dnswire.RcodeRefused), nil
	}
	m := s.answerFromZone(z, qname, qtype, q.DNSSECOK())
	return s.finish(q, m), nil
}

// hinfoRFC8482 is the wire RDATA of `HINFO "RFC8482" ""`.
var hinfoRFC8482 = []byte{7, 'R', 'F', 'C', '8', '4', '8', '2', 0}

func (s *Server) answerFromZone(z *zone.Zone, qname string, qtype dnswire.Type, do bool) *dnswire.Message {
	m := &dnswire.Message{Response: true, Authoritative: true}

	// DS at a zone cut is answered authoritatively by the parent
	// (RFC 4035 §3.1.4.1), never as a referral.
	if qtype == dnswire.TypeDS && z.DelegationAt(qname) {
		if ds := z.RRset(qname, dnswire.TypeDS); len(ds) > 0 {
			m.Answer = append(m.Answer, ds...)
			s.appendSigs(z, &m.Answer, qname, dnswire.TypeDS, do)
		} else {
			s.negative(z, m, qname, do)
		}
		return m
	}

	// Referral: qname at or below a zone cut (but not the apex itself).
	if cut := z.FindCut(qname); cut != "" {
		return s.referral(z, cut, do)
	}

	if z.NameExists(qname) {
		// CNAME handling.
		if qtype != dnswire.TypeCNAME {
			if cname := z.RRset(qname, dnswire.TypeCNAME); len(cname) > 0 {
				m.Answer = append(m.Answer, cname...)
				s.appendSigs(z, &m.Answer, qname, dnswire.TypeCNAME, do)
				target := cname[0].Data.(*dnswire.CNAME).Target
				if dnswire.IsSubdomain(target, z.Origin) && z.FindCut(target) == "" {
					if set := z.RRset(target, qtype); len(set) > 0 {
						m.Answer = append(m.Answer, set...)
						s.appendSigs(z, &m.Answer, target, qtype, do)
					}
				}
				return m
			}
		}
		if qtype == dnswire.TypeANY {
			for _, t := range z.TypesAt(qname) {
				m.Answer = append(m.Answer, z.RRset(qname, t)...)
			}
			return m
		}
		if set := z.RRset(qname, qtype); len(set) > 0 {
			m.Answer = append(m.Answer, set...)
			s.appendSigs(z, &m.Answer, qname, qtype, do)
			if qtype == dnswire.TypeNS && qname == z.Origin && !s.MinimalResponses {
				s.addGlue(z, m, set)
			}
			return m
		}
		// NODATA.
		s.negative(z, m, qname, do)
		return m
	}

	// Wildcard synthesis (RFC 1034 §4.3.3): if a wildcard exists at the
	// closest encloser, expand it under qname. The wildcard's RRSIGs are
	// served as-is; their Labels field lets validators verify the
	// expansion (RFC 4035 §3.1.3.3).
	if wc := z.WildcardFor(qname); wc != "" {
		if set := z.RRset(wc, qtype); len(set) > 0 {
			for _, rr := range set {
				rr.Name = qname
				m.Answer = append(m.Answer, rr)
			}
			if do {
				for _, sigRR := range dnssecSigsAt(z, wc, qtype) {
					if s.chance(s.CorruptSigRate) {
						sigRR = corruptSig(sigRR)
					}
					sigRR.Name = qname
					appendUnique(&m.Answer, sigRR)
				}
				// Prove no exact match existed (the wildcard-answer
				// NSEC requirement).
				if nsec := s.coveringNSEC(z, qname); nsec != nil {
					appendUnique(&m.Authority, *nsec)
					s.appendSigs(z, &m.Authority, nsec.Name, dnswire.TypeNSEC, do)
				}
			}
			return m
		}
		// Wildcard exists but not for this type: NODATA.
		s.negative(z, m, qname, do)
		return m
	}

	// NXDOMAIN.
	m.Rcode = dnswire.RcodeNXDomain
	s.negative(z, m, qname, do)
	if do {
		// Covering NSEC for the denied name.
		if nsec := s.coveringNSEC(z, qname); nsec != nil {
			appendUnique(&m.Authority, *nsec)
			s.appendSigs(z, &m.Authority, nsec.Name, dnswire.TypeNSEC, do)
		}
	}
	return m
}

// dnssecSigsAt returns the RRSIGs at owner covering typ.
func dnssecSigsAt(z *zone.Zone, owner string, typ dnswire.Type) []dnswire.RR {
	var out []dnswire.RR
	for _, rr := range z.RRset(owner, dnswire.TypeRRSIG) {
		if rr.Data.(*dnswire.RRSIG).TypeCovered == typ {
			out = append(out, rr)
		}
	}
	return out
}

func (s *Server) referral(z *zone.Zone, cut string, do bool) *dnswire.Message {
	m := &dnswire.Message{Response: true, Authoritative: false}
	nsSet := z.RRset(cut, dnswire.TypeNS)
	m.Authority = append(m.Authority, nsSet...)
	if ds := z.RRset(cut, dnswire.TypeDS); len(ds) > 0 {
		m.Authority = append(m.Authority, ds...)
		s.appendSigs(z, &m.Authority, cut, dnswire.TypeDS, do)
	} else if do {
		// Prove the unsigned delegation with the cut's NSEC.
		if nsec := z.RRset(cut, dnswire.TypeNSEC); len(nsec) > 0 {
			m.Authority = append(m.Authority, nsec...)
			s.appendSigs(z, &m.Authority, cut, dnswire.TypeNSEC, do)
		}
	}
	s.addGlue(z, m, nsSet)
	return m
}

func (s *Server) addGlue(z *zone.Zone, m *dnswire.Message, nsSet []dnswire.RR) {
	for _, rr := range nsSet {
		host := rr.Data.(*dnswire.NS).Target
		if !dnswire.IsSubdomain(host, z.Origin) {
			continue
		}
		for _, t := range []dnswire.Type{dnswire.TypeA, dnswire.TypeAAAA} {
			m.Additional = append(m.Additional, z.RRset(host, t)...)
		}
	}
}

func (s *Server) negative(z *zone.Zone, m *dnswire.Message, qname string, do bool) {
	if soa := z.SOA(); soa != nil {
		m.Authority = append(m.Authority, *soa)
		s.appendSigs(z, &m.Authority, z.Origin, dnswire.TypeSOA, do)
	}
	if !do {
		return
	}
	if s.nsec3Zone(z) {
		s.nsec3Proofs(z, m, qname, m.Rcode == dnswire.RcodeNXDomain)
		return
	}
	if m.Rcode == dnswire.RcodeNoError {
		// NODATA proof: the qname's own NSEC.
		if nsec := z.RRset(qname, dnswire.TypeNSEC); len(nsec) > 0 {
			m.Authority = append(m.Authority, nsec...)
			s.appendSigs(z, &m.Authority, qname, dnswire.TypeNSEC, do)
		}
	}
}

// nsec3Zone reports whether z uses NSEC3 denial.
func (s *Server) nsec3Zone(z *zone.Zone) bool {
	return len(z.RRset(z.Origin, dnswire.TypeNSEC3PARAM)) > 0
}

// nsec3Proofs attaches the RFC 5155 denial records: for NODATA the
// NSEC3 matching qname; for NXDOMAIN the closest-encloser match plus
// covers for the next-closer and wildcard names (RFC 7129).
func (s *Server) nsec3Proofs(z *zone.Zone, m *dnswire.Message, qname string, nxdomain bool) {
	params := z.RRset(z.Origin, dnswire.TypeNSEC3PARAM)
	p := params[0].Data.(*dnswire.NSEC3PARAM)
	attach := func(name string, covering bool) {
		var rr *dnswire.RR
		if covering {
			rr = s.coveringNSEC3(z, p, name)
		} else {
			owner, err := dnssec.NSEC3Owner(name, z.Origin, p.Iterations, p.Salt)
			if err != nil {
				return
			}
			set := z.RRset(owner, dnswire.TypeNSEC3)
			if len(set) > 0 {
				rr = &set[0]
			}
		}
		if rr != nil {
			appendUnique(&m.Authority, *rr)
			s.appendSigs(z, &m.Authority, rr.Name, dnswire.TypeNSEC3, true)
		}
	}
	if !nxdomain {
		attach(qname, false)
		return
	}
	// Closest encloser: the longest existing ancestor of qname.
	next := qname
	ce := dnswire.Parent(qname)
	for ce != "." && !z.NameExists(ce) {
		next = ce
		ce = dnswire.Parent(ce)
	}
	attach(ce, false)                   // closest-encloser match
	attach(next, true)                  // next-closer cover
	attach(dnswire.Join("*", ce), true) // wildcard cover
}

// coveringNSEC3 finds the NSEC3 record whose hash interval covers
// name. NSEC3 owner names sort in hash order under canonical name
// ordering (shared suffix, base32hex first labels), so the zone's name
// index can be searched directly.
func (s *Server) coveringNSEC3(z *zone.Zone, p *dnswire.NSEC3PARAM, name string) *dnswire.RR {
	for _, owner := range z.Names() {
		set := z.RRset(owner, dnswire.TypeNSEC3)
		if len(set) == 0 {
			continue
		}
		if dnssec.NSEC3Covers(set[0], name) {
			rr := set[0]
			return &rr
		}
	}
	return nil
}

// coveringNSEC finds the NSEC record whose interval covers qname. The
// zone's canonical name order makes this a binary search: the covering
// NSEC (if any) is owned by the closest preceding name that has one.
func (s *Server) coveringNSEC(z *zone.Zone, qname string) *dnswire.RR {
	names := z.Names()
	if len(names) == 0 {
		return nil
	}
	qname = dnswire.CanonicalName(qname)
	idx := sort.Search(len(names), func(i int) bool {
		return !dnswire.CanonicalNameLess(names[i], qname)
	}) - 1
	try := func(i int) *dnswire.RR {
		set := z.RRset(names[i], dnswire.TypeNSEC)
		if len(set) == 0 {
			return nil
		}
		nsec := set[0].Data.(*dnswire.NSEC)
		owner, next := set[0].Name, nsec.NextDomain
		var covered bool
		if dnswire.CanonicalNameLess(owner, next) {
			covered = dnswire.CanonicalNameLess(owner, qname) && dnswire.CanonicalNameLess(qname, next)
		} else {
			covered = dnswire.CanonicalNameLess(owner, qname) || dnswire.CanonicalNameLess(qname, next)
		}
		if !covered {
			return nil
		}
		rr := set[0]
		return &rr
	}
	// Walk back from the closest preceding name, skipping glue names
	// that carry no NSEC.
	for i := idx; i >= 0; i-- {
		if rr := try(i); rr != nil {
			return rr
		}
	}
	// qname precedes every owner: the wraparound NSEC (owned by the
	// canonically last NSEC-bearing name) covers it.
	for i := len(names) - 1; i > idx; i-- {
		if rr := try(i); rr != nil {
			return rr
		}
	}
	return nil
}

func (s *Server) appendSigs(z *zone.Zone, section *[]dnswire.RR, owner string, covered dnswire.Type, do bool) {
	if !do {
		return
	}
	sigs := z.RRset(owner, dnswire.TypeRRSIG)
	for _, rr := range sigs {
		sig := rr.Data.(*dnswire.RRSIG)
		if sig.TypeCovered != covered {
			continue
		}
		if s.chance(s.CorruptSigRate) {
			rr = corruptSig(rr)
		}
		appendUnique(section, rr)
	}
}

// corruptSig flips bits in a copy of an RRSIG's signature, leaving
// everything else intact — the shape of deSEC's observed transient
// validation failures.
func corruptSig(rr dnswire.RR) dnswire.RR {
	sig := *rr.Data.(*dnswire.RRSIG)
	sig.Signature = append([]byte(nil), sig.Signature...)
	if len(sig.Signature) > 0 {
		sig.Signature[0] ^= 0xFF
		sig.Signature[len(sig.Signature)/2] ^= 0x55
	}
	rr.Data = &sig
	return rr
}

func appendUnique(section *[]dnswire.RR, rr dnswire.RR) {
	for _, got := range *section {
		if got.Equal(rr) {
			return
		}
	}
	*section = append(*section, rr)
}

// finish copies query identity and EDNS state onto the response.
func (s *Server) finish(q *dnswire.Message, m *dnswire.Message) *dnswire.Message {
	m.ID = q.ID
	m.Response = true
	m.Opcode = q.Opcode
	m.Question = q.Question
	m.RecursionDesired = q.RecursionDesired
	if e, ok := q.GetEDNS(); ok {
		m.SetEDNS(dnswire.EDNS{UDPSize: dnswire.MaxUDPPayload, DO: e.DO})
	}
	return m
}

func reply(q *dnswire.Message, rcode dnswire.Rcode) *dnswire.Message {
	m := &dnswire.Message{ID: q.ID, Response: true, Opcode: q.Opcode, Rcode: rcode, Question: q.Question}
	if e, ok := q.GetEDNS(); ok {
		m.SetEDNS(dnswire.EDNS{UDPSize: dnswire.MaxUDPPayload, DO: e.DO})
	}
	return m
}

// Parking is a transport.Handler modelling domain-parking nameservers
// (e.g. GoDaddy's Afternic, paper §4.4): every query is answered with
// the same NS and A records regardless of the name asked about,
// creating the illusion of a zone cut at every level of the tree.
type Parking struct {
	NSHosts []string
	Addr    netip.Addr
}

// HandleDNS implements transport.Handler.
func (p *Parking) HandleDNS(_ context.Context, _ netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
	if len(q.Question) != 1 {
		return reply(q, dnswire.RcodeFormErr), nil
	}
	m := reply(q, dnswire.RcodeNoError)
	m.Authoritative = true
	qname := dnswire.CanonicalName(q.Question[0].Name)
	switch q.Question[0].Type {
	default:
		// Parking boxes predate the modern RR types; they error on
		// anything but the basics (compare §4.2's legacy servers).
		return reply(q, dnswire.RcodeNotImp), nil
	case dnswire.TypeNS:
		for _, h := range p.NSHosts {
			m.Answer = append(m.Answer, dnswire.RR{Name: qname, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.NewNS(h)})
		}
	case dnswire.TypeA:
		m.Answer = append(m.Answer, dnswire.RR{Name: qname, Class: dnswire.ClassIN, TTL: 3600, Data: &dnswire.A{Addr: p.Addr}})
	case dnswire.TypeSOA:
		m.Answer = append(m.Answer, dnswire.RR{Name: qname, Class: dnswire.ClassIN, TTL: 3600, Data: &dnswire.SOA{
			MName: dnswire.CanonicalName(p.NSHosts[0]), RName: "hostmaster." + dnswire.CanonicalName(p.NSHosts[0]),
			Serial: 1, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300}})
	}
	return m, nil
}
