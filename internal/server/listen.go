package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"time"

	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/obs"
	"dnssecboot/internal/transport"
	"dnssecboot/internal/zone"
)

// Config tunes a Listener. The zero value picks serving defaults.
type Config struct {
	// UDPWorkers is the number of goroutines handling UDP queries. The
	// reader fans packets out to this fixed pool instead of spawning a
	// goroutine per packet, so a query flood cannot exhaust the
	// scheduler. Defaults to 4×GOMAXPROCS.
	UDPWorkers int
	// UDPBacklog is the depth of the packet queue between the reader
	// and the workers. When it is full further packets are dropped
	// (clients retry; UDP is lossy by contract). Defaults to 1024.
	UDPBacklog int
	// IdleTimeout bounds how long a TCP connection may sit between
	// messages before the server closes it, so abandoned clients cannot
	// pin handler goroutines forever. Defaults to 2 minutes.
	IdleTimeout time.Duration
	// Metrics optionally receives serving instruments (queries, drops,
	// handle latency, in-flight gauge). Nil disables instrumentation at
	// zero cost.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.UDPWorkers <= 0 {
		c.UDPWorkers = 4 * runtime.GOMAXPROCS(0)
	}
	if c.UDPBacklog <= 0 {
		c.UDPBacklog = 1024
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	return c
}

// udpPacket is one received datagram handed from the reader to a
// worker. buf is pooled storage owned by the receiver until it is
// returned to the pool.
type udpPacket struct {
	buf   []byte
	n     int
	raddr net.Addr
}

// Listener serves a transport.Handler on real UDP and TCP sockets. TCP
// connections additionally support AXFR (RFC 5936) for zones held by a
// *Server handler, mirroring how the paper obtained ccTLD zone files.
//
// UDP queries are handled by a bounded worker pool; TCP connections get
// one goroutine each with an idle read deadline. Close / Shutdown stop
// intake first (sockets stay open), let every queued and in-flight
// query finish and write its response, and only then release the
// sockets.
type Listener struct {
	handler transport.Handler
	cfg     Config

	pc    net.PacketConn
	tcp   net.Listener
	local netip.Addr

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}

	queue chan udpPacket
	bufs  sync.Pool

	// wg tracks every serving goroutine: the UDP reader, each UDP
	// worker, the TCP accept loop and each TCP connection handler.
	// Handlers are only added under mu with the closed flag false, and
	// the accept loop itself is counted, so Add can never race a Wait
	// that has already observed zero.
	wg sync.WaitGroup

	udpQueries *obs.Counter
	udpDropped *obs.Counter
	tcpQueries *obs.Counter
	tcpConns   *obs.Counter
	handleSec  *obs.Histogram
	inflight   *obs.Gauge
}

// listenPair binds UDP and TCP listeners on the same address and port.
// When addr requests an ephemeral port, the kernel assigns the UDP port
// first and the matching TCP bind can collide with an unrelated socket
// already holding that port — in that case retry with a fresh ephemeral
// pick instead of failing.
func listenPair(addr string) (net.PacketConn, net.Listener, error) {
	const attempts = 8
	var err error
	for i := 0; i < attempts; i++ {
		var pc net.PacketConn
		pc, err = net.ListenPacket("udp", addr)
		if err != nil {
			return nil, nil, err
		}
		var tl net.Listener
		tl, err = net.Listen("tcp", pc.LocalAddr().String())
		if err == nil {
			return pc, tl, nil
		}
		pc.Close()
		if _, port, perr := net.SplitHostPort(addr); perr != nil || port != "0" {
			break
		}
	}
	return nil, nil, err
}

// Listen starts UDP and TCP listeners on addr (e.g. "127.0.0.1:0") with
// default Config and begins serving h.
func Listen(addr string, h transport.Handler) (*Listener, error) {
	return ListenConfig(addr, h, Config{})
}

// ListenConfig starts UDP and TCP listeners on addr and begins serving
// h with the given tuning. The returned Listener reports its bound
// address via Addr.
func ListenConfig(addr string, h transport.Handler, cfg Config) (*Listener, error) {
	cfg = cfg.withDefaults()
	pc, tl, err := listenPair(addr)
	if err != nil {
		return nil, err
	}
	l := &Listener{
		handler: h,
		cfg:     cfg,
		pc:      pc,
		tcp:     tl,
		conns:   make(map[net.Conn]struct{}),
		queue:   make(chan udpPacket, cfg.UDPBacklog),
	}
	l.bufs.New = func() any { return make([]byte, 65535) }
	ap, _ := netip.ParseAddrPort(pc.LocalAddr().String())
	l.local = ap.Addr()
	reg := cfg.Metrics
	l.udpQueries = reg.Counter("server.udp.queries")
	l.udpDropped = reg.Counter("server.udp.dropped")
	l.tcpQueries = reg.Counter("server.tcp.queries")
	l.tcpConns = reg.Counter("server.tcp.conns")
	l.handleSec = reg.Histogram("server.handle.seconds", obs.DefLatencyBuckets)
	l.inflight = reg.Gauge("server.inflight")

	l.wg.Add(2 + cfg.UDPWorkers)
	go l.readUDP()
	for i := 0; i < cfg.UDPWorkers; i++ {
		go l.udpWorker()
	}
	go l.serveTCP()
	return l, nil
}

// Addr returns the bound UDP address (the TCP listener shares it).
func (l *Listener) Addr() netip.AddrPort {
	ap, _ := netip.ParseAddrPort(l.pc.LocalAddr().String())
	return ap
}

// aLongTimeAgo is a deadline in the distant past: setting it fails any
// blocked or future read immediately without closing the socket.
var aLongTimeAgo = time.Unix(1, 0)

// Close gracefully stops the listener: intake stops, every queued and
// in-flight query is answered, then the sockets are released. It is
// Shutdown without a deadline.
func (l *Listener) Close() error {
	return l.Shutdown(context.Background())
}

// Shutdown drains the listener: it stops accepting new work (UDP reads,
// TCP accepts, further messages on open connections), waits for queued
// and in-flight queries to be answered, then closes the sockets. If ctx
// expires first the sockets are torn down immediately and Shutdown
// returns the context error after the handlers unwind.
func (l *Listener) Shutdown(ctx context.Context) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	conns := make([]net.Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()

	// Stop intake without closing the UDP socket: responses for queued
	// packets still have to be written through it.
	_ = l.pc.SetReadDeadline(aLongTimeAgo)
	_ = l.tcp.Close()
	for _, c := range conns {
		_ = c.SetReadDeadline(aLongTimeAgo)
	}

	done := make(chan struct{})
	go func() {
		l.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		// Hard stop: yank the sockets out from under the handlers.
		_ = l.pc.Close()
		for _, c := range conns {
			_ = c.Close()
		}
		<-done
	}
	_ = l.pc.Close()
	return err
}

// readUDP is the single socket reader: it moves datagrams into the
// bounded worker queue and drops on overflow.
func (l *Listener) readUDP() {
	defer l.wg.Done()
	defer close(l.queue) // workers drain what is queued, then exit
	for {
		buf := l.bufs.Get().([]byte)
		n, raddr, err := l.pc.ReadFrom(buf)
		if err != nil {
			l.bufs.Put(buf)
			return
		}
		l.udpQueries.Inc()
		select {
		//lint:allow poollife buffer ownership transfers to the worker, which Puts it after handling the packet
		case l.queue <- udpPacket{buf: buf, n: n, raddr: raddr}:
		default:
			l.udpDropped.Inc()
			l.bufs.Put(buf)
		}
	}
}

// udpScratch is a worker's reusable parse/pack state: queries parse
// into the same Message and responses pack into the same buffer, so a
// steady-state worker allocates only what the handler itself builds.
// Handlers must not retain the query past the call (the cache keys copy
// what they store; responses aliasing the question section are packed
// to wire here before the scratch is reused).
type udpScratch struct {
	q    dnswire.Message
	resp []byte
}

func (l *Listener) udpWorker() {
	defer l.wg.Done()
	var s udpScratch
	for pkt := range l.queue {
		l.handleUDP(pkt, &s)
	}
}

func (l *Listener) handleUDP(pkt udpPacket, s *udpScratch) {
	defer l.bufs.Put(pkt.buf)
	start := time.Now()
	l.inflight.Add(1)
	defer l.inflight.Add(-1)
	if err := s.q.UnpackFrom(pkt.buf[:pkt.n]); err != nil {
		return
	}
	q := &s.q
	resp, err := l.handler.HandleDNS(context.Background(), l.local, q)
	if err != nil || resp == nil {
		return
	}
	limit := 512
	if e, ok := q.GetEDNS(); ok {
		limit = int(e.UDPSize)
	}
	wire, err := resp.AppendPackTruncating(s.resp[:0], limit)
	if err != nil {
		return
	}
	s.resp = wire
	_, _ = l.pc.WriteTo(wire, pkt.raddr)
	l.handleSec.ObserveSince(start)
}

func (l *Listener) serveTCP() {
	defer l.wg.Done()
	for {
		conn, err := l.tcp.Accept()
		if err != nil {
			return
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			conn.Close()
			continue // the closed tcp listener errors out the next Accept
		}
		l.conns[conn] = struct{}{}
		l.wg.Add(1)
		l.mu.Unlock()
		l.tcpConns.Inc()
		go l.serveConn(conn)
	}
}

// armIdle sets the idle read deadline for the next message on conn.
// It reports false once shutdown has begun, in which case the deadline
// is already in the past and the handler should stop reading. Taking
// mu orders the idle deadline against Shutdown's aLongTimeAgo write so
// a handler can never re-arm a connection the drain already expired.
func (l *Listener) armIdle(conn net.Conn) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false
	}
	_ = conn.SetReadDeadline(time.Now().Add(l.cfg.IdleTimeout))
	return true
}

func (l *Listener) serveConn(conn net.Conn) {
	defer func() {
		l.mu.Lock()
		delete(l.conns, conn)
		l.mu.Unlock()
		conn.Close()
		l.wg.Done()
	}()
	var buf, outBuf []byte
	var qm dnswire.Message // connection-local parse target, reused per message
	for {
		if !l.armIdle(conn) {
			return
		}
		wire, err := transport.ReadTCPMessageInto(conn, buf)
		if err != nil {
			return
		}
		buf = wire[:cap(wire)]
		start := time.Now()
		l.inflight.Add(1)
		if err := qm.UnpackFrom(wire); err != nil {
			l.inflight.Add(-1)
			return
		}
		q := &qm
		l.tcpQueries.Inc()
		if len(q.Question) == 1 && q.Question[0].Type == dnswire.TypeAXFR {
			err := l.serveAXFR(conn, q)
			l.inflight.Add(-1)
			if err != nil {
				return
			}
			l.handleSec.ObserveSince(start)
			continue
		}
		resp, err := l.handler.HandleDNS(context.Background(), l.local, q)
		if err != nil || resp == nil {
			l.inflight.Add(-1)
			return
		}
		out, err := resp.AppendPack(outBuf[:0])
		if err != nil {
			l.inflight.Add(-1)
			return
		}
		outBuf = out
		err = transport.WriteTCPMessage(conn, out)
		l.inflight.Add(-1)
		if err != nil {
			return
		}
		l.handleSec.ObserveSince(start)
	}
}

// serveAXFR streams a zone transfer: SOA, all records, SOA again
// (RFC 5936 §2.2), split across messages as needed. Per §2.2.1 the
// question section is copied into the first message only.
func (l *Listener) serveAXFR(conn net.Conn, q *dnswire.Message) error {
	srv, ok := l.handler.(*Server)
	if !ok {
		return writeRcode(conn, q, dnswire.RcodeNotImp)
	}
	z := srv.Zone(q.Question[0].Name)
	if z == nil {
		return writeRcode(conn, q, dnswire.RcodeNotAuth)
	}
	soa := z.SOA()
	if soa == nil {
		return writeRcode(conn, q, dnswire.RcodeServFail)
	}
	records := []dnswire.RR{*soa}
	for _, rr := range z.All() {
		if rr.Type() == dnswire.TypeSOA {
			continue
		}
		records = append(records, rr)
	}
	records = append(records, *soa)

	const chunk = 200
	for i := 0; i < len(records); i += chunk {
		end := i + chunk
		if end > len(records) {
			end = len(records)
		}
		m := &dnswire.Message{
			ID: q.ID, Response: true, Authoritative: true,
			Answer: records[i:end],
		}
		if i == 0 {
			m.Question = q.Question
		}
		wire, err := m.Pack()
		if err != nil {
			return err
		}
		if err := transport.WriteTCPMessage(conn, wire); err != nil {
			return err
		}
	}
	return nil
}

func writeRcode(conn net.Conn, q *dnswire.Message, rc dnswire.Rcode) error {
	m := &dnswire.Message{ID: q.ID, Response: true, Rcode: rc, Question: q.Question}
	wire, err := m.Pack()
	if err != nil {
		return err
	}
	return transport.WriteTCPMessage(conn, wire)
}

// AXFR performs a zone transfer from server, reassembling the streamed
// messages into a Zone. It is the client used to ingest TLD zone files
// (paper §3, sources iii/iv). Every message's ID must echo the query
// ID (RFC 5936 §2.2); a mismatching stream is rejected rather than
// silently ingested.
func AXFR(ctx context.Context, server netip.AddrPort, origin string) (*zone.Zone, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", server.String())
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	}
	q := dnswire.NewQuery(4242, origin, dnswire.TypeAXFR)
	wire, err := q.Pack()
	if err != nil {
		return nil, err
	}
	if err := transport.WriteTCPMessage(conn, wire); err != nil {
		return nil, err
	}
	z := zone.New(origin)
	soaSeen := 0
	for soaSeen < 2 {
		respWire, err := transport.ReadTCPMessage(conn)
		if err != nil {
			return nil, fmt.Errorf("server: AXFR read: %w", err)
		}
		resp, err := dnswire.Unpack(respWire)
		if err != nil {
			return nil, err
		}
		if resp.ID != q.ID {
			return nil, fmt.Errorf("server: AXFR response ID %d != query ID %d", resp.ID, q.ID)
		}
		if resp.Rcode != dnswire.RcodeNoError {
			return nil, fmt.Errorf("server: AXFR refused: %s", resp.Rcode)
		}
		if len(resp.Answer) == 0 {
			return nil, errors.New("server: empty AXFR message")
		}
		for _, rr := range resp.Answer {
			if rr.Type() == dnswire.TypeSOA {
				soaSeen++
				if soaSeen == 2 {
					break
				}
			}
			if err := z.Add(rr); err != nil {
				return nil, err
			}
		}
	}
	return z, nil
}
