package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"

	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/transport"
	"dnssecboot/internal/zone"
)

// Listener serves a transport.Handler on real UDP and TCP sockets. TCP
// connections additionally support AXFR (RFC 5936) for zones held by a
// *Server handler, mirroring how the paper obtained ccTLD zone files.
type Listener struct {
	handler transport.Handler

	mu     sync.Mutex
	pc     net.PacketConn
	tcp    net.Listener
	closed bool
	wg     sync.WaitGroup
}

// Listen starts UDP and TCP listeners on addr (e.g. "127.0.0.1:0") and
// begins serving h. The returned Listener reports its bound address via
// Addr.
func Listen(addr string, h transport.Handler) (*Listener, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, err
	}
	tcpAddr := pc.LocalAddr().String()
	tl, err := net.Listen("tcp", tcpAddr)
	if err != nil {
		pc.Close()
		return nil, err
	}
	l := &Listener{handler: h, pc: pc, tcp: tl}
	l.wg.Add(2)
	go l.serveUDP()
	go l.serveTCP()
	return l, nil
}

// Addr returns the bound UDP address.
func (l *Listener) Addr() netip.AddrPort {
	ap, _ := netip.ParseAddrPort(l.pc.LocalAddr().String())
	return ap
}

// Close stops both listeners and waits for in-flight handlers.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	l.pc.Close()
	l.tcp.Close()
	l.wg.Wait()
	return nil
}

func (l *Listener) serveUDP() {
	defer l.wg.Done()
	buf := make([]byte, 65535)
	local := l.Addr().Addr()
	for {
		n, raddr, err := l.pc.ReadFrom(buf)
		if err != nil {
			return
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		go func(pkt []byte, raddr net.Addr) {
			q, err := dnswire.Unpack(pkt)
			if err != nil {
				return
			}
			resp, err := l.handler.HandleDNS(context.Background(), local, q)
			if err != nil || resp == nil {
				return
			}
			limit := 512
			if e, ok := q.GetEDNS(); ok {
				limit = int(e.UDPSize)
			}
			wire, err := resp.PackTruncating(limit)
			if err != nil {
				return
			}
			_, _ = l.pc.WriteTo(wire, raddr)
		}(pkt, raddr)
	}
}

func (l *Listener) serveTCP() {
	defer l.wg.Done()
	local := l.Addr().Addr()
	for {
		conn, err := l.tcp.Accept()
		if err != nil {
			return
		}
		l.wg.Add(1)
		go func(conn net.Conn) {
			defer l.wg.Done()
			defer conn.Close()
			for {
				wire, err := transport.ReadTCPMessage(conn)
				if err != nil {
					return
				}
				q, err := dnswire.Unpack(wire)
				if err != nil {
					return
				}
				if len(q.Question) == 1 && q.Question[0].Type == dnswire.TypeAXFR {
					if err := l.serveAXFR(conn, q); err != nil {
						return
					}
					continue
				}
				resp, err := l.handler.HandleDNS(context.Background(), local, q)
				if err != nil || resp == nil {
					return
				}
				out, err := resp.Pack()
				if err != nil {
					return
				}
				if err := transport.WriteTCPMessage(conn, out); err != nil {
					return
				}
			}
		}(conn)
	}
}

// serveAXFR streams a zone transfer: SOA, all records, SOA again
// (RFC 5936 §2.2), split across messages as needed.
func (l *Listener) serveAXFR(conn net.Conn, q *dnswire.Message) error {
	srv, ok := l.handler.(*Server)
	if !ok {
		return writeRcode(conn, q, dnswire.RcodeNotImp)
	}
	z := srv.Zone(q.Question[0].Name)
	if z == nil {
		return writeRcode(conn, q, dnswire.RcodeNotAuth)
	}
	soa := z.SOA()
	if soa == nil {
		return writeRcode(conn, q, dnswire.RcodeServFail)
	}
	records := []dnswire.RR{*soa}
	for _, rr := range z.All() {
		if rr.Type() == dnswire.TypeSOA {
			continue
		}
		records = append(records, rr)
	}
	records = append(records, *soa)

	const chunk = 200
	for i := 0; i < len(records); i += chunk {
		end := i + chunk
		if end > len(records) {
			end = len(records)
		}
		m := &dnswire.Message{
			ID: q.ID, Response: true, Authoritative: true,
			Question: q.Question, Answer: records[i:end],
		}
		wire, err := m.Pack()
		if err != nil {
			return err
		}
		if err := transport.WriteTCPMessage(conn, wire); err != nil {
			return err
		}
	}
	return nil
}

func writeRcode(conn net.Conn, q *dnswire.Message, rc dnswire.Rcode) error {
	m := &dnswire.Message{ID: q.ID, Response: true, Rcode: rc, Question: q.Question}
	wire, err := m.Pack()
	if err != nil {
		return err
	}
	return transport.WriteTCPMessage(conn, wire)
}

// AXFR performs a zone transfer from server, reassembling the streamed
// messages into a Zone. It is the client used to ingest TLD zone files
// (paper §3, sources iii/iv).
func AXFR(ctx context.Context, server netip.AddrPort, origin string) (*zone.Zone, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", server.String())
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	}
	q := dnswire.NewQuery(4242, origin, dnswire.TypeAXFR)
	wire, err := q.Pack()
	if err != nil {
		return nil, err
	}
	if err := transport.WriteTCPMessage(conn, wire); err != nil {
		return nil, err
	}
	z := zone.New(origin)
	soaSeen := 0
	for soaSeen < 2 {
		respWire, err := transport.ReadTCPMessage(conn)
		if err != nil {
			return nil, fmt.Errorf("server: AXFR read: %w", err)
		}
		resp, err := dnswire.Unpack(respWire)
		if err != nil {
			return nil, err
		}
		if resp.Rcode != dnswire.RcodeNoError {
			return nil, fmt.Errorf("server: AXFR refused: %s", resp.Rcode)
		}
		if len(resp.Answer) == 0 {
			return nil, errors.New("server: empty AXFR message")
		}
		for _, rr := range resp.Answer {
			if rr.Type() == dnswire.TypeSOA {
				soaSeen++
				if soaSeen == 2 {
					break
				}
			}
			if err := z.Add(rr); err != nil {
				return nil, err
			}
		}
	}
	return z, nil
}
