package server

import (
	"container/list"
	"context"
	"net/netip"
	"sync"
	"time"

	"dnssecboot/internal/dnswire"
	"dnssecboot/internal/obs"
	"dnssecboot/internal/transport"
)

// cacheKey identifies a query shape. The DO bit is part of the key
// because it changes the response body (RRSIGs, NSEC proofs); EDNS
// presence is not, because the OPT record is stripped from cached
// templates and re-synthesised per query.
type cacheKey struct {
	name  string
	qtype dnswire.Type
	class dnswire.Class
	do    bool
}

type cacheEntry struct {
	key     cacheKey
	resp    *dnswire.Message // OPT-free response template
	stored  time.Time
	expires time.Time
}

// Cache is a TTL-honouring response cache for repeated query shapes
// with size-capped LRU eviction. Entries expire when the smallest TTL
// in the cached response has elapsed; hits serve a copy with every TTL
// decremented by the entry's age, so downstream caches never see a TTL
// restart (RFC 1035 §3.2.1 semantics, the behaviour a busy
// authoritative front-end needs for its hot query set).
type Cache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[cacheKey]*list.Element
	now     func() time.Time

	hits      *obs.Counter
	misses    *obs.Counter
	expired   *obs.Counter
	evictions *obs.Counter
	size      *obs.Gauge
}

// NewCache returns a cache holding at most max responses (max <= 0
// selects 4096). reg may be nil; with a registry the cache exports
// server.cache.{hits,misses,expired,evictions,size}.
func NewCache(max int, reg *obs.Registry) *Cache {
	if max <= 0 {
		max = 4096
	}
	return &Cache{
		max:       max,
		ll:        list.New(),
		entries:   make(map[cacheKey]*list.Element),
		now:       time.Now,
		hits:      reg.Counter("server.cache.hits"),
		misses:    reg.Counter("server.cache.misses"),
		expired:   reg.Counter("server.cache.expired"),
		evictions: reg.Counter("server.cache.evictions"),
		size:      reg.Gauge("server.cache.size"),
	}
}

// Len reports the number of live entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func keyFor(q *dnswire.Message) (cacheKey, bool) {
	if q == nil || len(q.Question) != 1 || q.Opcode != dnswire.OpcodeQuery || q.Response {
		return cacheKey{}, false
	}
	que := q.Question[0]
	return cacheKey{
		name:  dnswire.CanonicalName(que.Name),
		qtype: que.Type,
		class: que.Class,
		do:    q.DNSSECOK(),
	}, true
}

// Get returns a response for q served from cache, or nil on a miss.
// The returned message is a fresh copy carrying q's ID, question
// casing, RD bit and EDNS state, with TTLs aged by the entry's time in
// cache.
func (c *Cache) Get(q *dnswire.Message) *dnswire.Message {
	key, ok := keyFor(q)
	if !ok {
		return nil
	}
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Inc()
		return nil
	}
	e := el.Value.(*cacheEntry)
	now := c.now()
	if !now.Before(e.expires) {
		c.removeLocked(el)
		c.mu.Unlock()
		c.expired.Inc()
		c.misses.Inc()
		return nil
	}
	c.ll.MoveToFront(el)
	tmpl := e.resp
	elapsed := uint32(now.Sub(e.stored) / time.Second)
	c.mu.Unlock()
	c.hits.Inc()

	out := &dnswire.Message{
		ID:               q.ID,
		Response:         true,
		Opcode:           q.Opcode,
		Authoritative:    tmpl.Authoritative,
		Rcode:            tmpl.Rcode,
		RecursionDesired: q.RecursionDesired,
		Question:         q.Question,
		Answer:           ageRRs(tmpl.Answer, elapsed),
		Authority:        ageRRs(tmpl.Authority, elapsed),
		Additional:       ageRRs(tmpl.Additional, elapsed),
	}
	if e, ok := q.GetEDNS(); ok {
		out.SetEDNS(dnswire.EDNS{UDPSize: dnswire.MaxUDPPayload, DO: e.DO})
	}
	return out
}

// Put stores resp as the answer for q's query shape. Responses that are
// not plain cacheable answers (multi-question, truncated, rcodes other
// than NoError/NXDomain, or without a single record to derive a TTL
// from) are ignored.
func (c *Cache) Put(q, resp *dnswire.Message) {
	key, ok := keyFor(q)
	if !ok || resp == nil || resp.Truncated {
		return
	}
	if resp.Rcode != dnswire.RcodeNoError && resp.Rcode != dnswire.RcodeNXDomain {
		return
	}
	tmpl := &dnswire.Message{
		Response:      true,
		Authoritative: resp.Authoritative,
		Rcode:         resp.Rcode,
		Answer:        copyNonOPT(resp.Answer),
		Authority:     copyNonOPT(resp.Authority),
		Additional:    copyNonOPT(resp.Additional),
	}
	ttl, ok := minTTL(tmpl)
	if !ok || ttl == 0 {
		return
	}
	now := c.now()
	e := &cacheEntry{key: key, resp: tmpl, stored: now, expires: now.Add(time.Duration(ttl) * time.Second)}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.max {
		c.removeLocked(c.ll.Back())
		c.evictions.Inc()
	}
	c.entries[key] = c.ll.PushFront(e)
	c.size.Set(int64(c.ll.Len()))
}

func (c *Cache) removeLocked(el *list.Element) {
	if el == nil {
		return
	}
	e := el.Value.(*cacheEntry)
	delete(c.entries, e.key)
	c.ll.Remove(el)
	c.size.Set(int64(c.ll.Len()))
}

// minTTL returns the smallest TTL across the template's sections.
func minTTL(m *dnswire.Message) (uint32, bool) {
	min, found := uint32(0), false
	for _, sec := range [][]dnswire.RR{m.Answer, m.Authority, m.Additional} {
		for _, rr := range sec {
			if !found || rr.TTL < min {
				min, found = rr.TTL, true
			}
		}
	}
	return min, found
}

// copyNonOPT copies a section, dropping EDNS OPT pseudo-records (their
// TTL field encodes flags, not a lifetime, and EDNS state is
// per-query).
func copyNonOPT(sec []dnswire.RR) []dnswire.RR {
	if len(sec) == 0 {
		return nil
	}
	out := make([]dnswire.RR, 0, len(sec))
	for _, rr := range sec {
		if rr.Type() == dnswire.TypeOPT {
			continue
		}
		out = append(out, rr)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// ageRRs copies a section with TTLs decremented by elapsed seconds
// (never below 1, so a response served moments before expiry is still
// well-formed).
func ageRRs(sec []dnswire.RR, elapsed uint32) []dnswire.RR {
	if len(sec) == 0 {
		return nil
	}
	out := make([]dnswire.RR, len(sec))
	for i, rr := range sec {
		if rr.TTL > elapsed {
			rr.TTL -= elapsed
		} else {
			rr.TTL = 1
		}
		out[i] = rr
	}
	return out
}

// CachedHandler wraps a transport.Handler with a response Cache. It is
// the composition cmd/dnsd serves: Server answers from zone data, the
// cache absorbs the zipfian hot set.
type CachedHandler struct {
	Inner transport.Handler
	Cache *Cache
}

// HandleDNS implements transport.Handler.
func (h *CachedHandler) HandleDNS(ctx context.Context, local netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
	if resp := h.Cache.Get(q); resp != nil {
		return resp, nil
	}
	resp, err := h.Inner.HandleDNS(ctx, local, q)
	if err == nil && resp != nil {
		h.Cache.Put(q, resp)
	}
	return resp, err
}
