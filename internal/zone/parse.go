package zone

import (
	"bufio"
	"encoding/base64"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"

	"dnssecboot/internal/dnswire"
)

// MaxLogicalLineBytes bounds one logical line: a physical line, or the
// join of a parenthesised multi-line record. The longest legitimate
// records (DNSKEY public keys, fat TXT sets) stay well under 100 KiB;
// one mebibyte leaves an order of magnitude of headroom while keeping a
// runaway input (no newlines, unterminated parentheses) from buffering
// without bound. Input exceeding it fails with a positional error.
const MaxLogicalLineBytes = 1 << 20

// Parse reads an RFC 1035 master file into a Zone. origin is used
// until a $ORIGIN directive overrides it; it may be "" if the file sets
// $ORIGIN itself before any record.
func Parse(r io.Reader, origin string) (*Zone, error) {
	p := &fileParser{
		origin: dnswire.CanonicalName(origin),
		ttl:    3600,
		sc:     bufio.NewScanner(r),
	}
	p.sc.Buffer(make([]byte, 0, 64*1024), MaxLogicalLineBytes)
	return p.run()
}

// ParseString is Parse over a string.
func ParseString(text, origin string) (*Zone, error) {
	return Parse(strings.NewReader(text), origin)
}

type fileParser struct {
	origin    string
	ttl       uint32
	lastOwner string
	sc        *bufio.Scanner
	line      int
	zone      *Zone
	// rootAll roots the zone at "." regardless of origin, so a single
	// record with any owner can be parsed in isolation (ParseRecord):
	// origin then only resolves relative names, never rejects owners.
	rootAll bool
}

func (p *fileParser) errf(format string, args ...any) error {
	return fmt.Errorf("zone: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *fileParser) run() (*Zone, error) {
	for p.sc.Scan() {
		p.line++
		logical, err := p.logicalLine(p.sc.Text())
		if err != nil {
			return nil, err
		}
		if logical == "" {
			continue
		}
		if err := p.handleLine(logical); err != nil {
			return nil, err
		}
	}
	if err := p.sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// The scanner hit the cap mid-line; the offending line is
			// the one after the last complete one.
			p.line++
			return nil, p.errf("line exceeds %d bytes", MaxLogicalLineBytes)
		}
		return nil, err
	}
	if p.zone == nil {
		return nil, fmt.Errorf("zone: empty master file")
	}
	return p.zone, nil
}

// logicalLine joins continuation lines while inside parentheses and
// strips comments (respecting quoted strings).
func (p *fileParser) logicalLine(first string) (string, error) {
	var sb strings.Builder
	depth := 0
	line := first
	for {
		inQuote := false
		for i := 0; i < len(line); i++ {
			c := line[i]
			switch {
			case c == '"' && (i == 0 || line[i-1] != '\\'):
				inQuote = !inQuote
				sb.WriteByte(c)
			case c == ';' && !inQuote:
				line = ""
				i = len(line)
			case c == '(' && !inQuote:
				depth++
				sb.WriteByte(' ')
			case c == ')' && !inQuote:
				depth--
				if depth < 0 {
					return "", p.errf("unbalanced ')'")
				}
				sb.WriteByte(' ')
			default:
				sb.WriteByte(c)
			}
			if line == "" {
				break
			}
		}
		if inQuote {
			return "", p.errf("unterminated quoted string")
		}
		if depth == 0 {
			return strings.TrimRight(sb.String(), " \t"), nil
		}
		if sb.Len() > MaxLogicalLineBytes {
			return "", p.errf("logical line exceeds %d bytes", MaxLogicalLineBytes)
		}
		if !p.sc.Scan() {
			if err := p.sc.Err(); errors.Is(err, bufio.ErrTooLong) {
				p.line++
				return "", p.errf("line exceeds %d bytes", MaxLogicalLineBytes)
			}
			return "", p.errf("EOF inside '('")
		}
		p.line++
		sb.WriteByte(' ')
		line = p.sc.Text()
	}
}

// fields tokenises a logical line preserving quoted strings as single
// tokens (without the quotes) and tracking whether the line began with
// whitespace (blank owner).
func fields(line string) (tokens []string, blankOwner bool) {
	blankOwner = len(line) > 0 && (line[0] == ' ' || line[0] == '\t')
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		if line[i] == '"' {
			j := i + 1
			var sb strings.Builder
			for j < len(line) && line[j] != '"' {
				if line[j] == '\\' && j+1 < len(line) {
					j++
				}
				sb.WriteByte(line[j])
				j++
			}
			tokens = append(tokens, "\x00"+sb.String()) // \x00 marks "was quoted"
			i = j + 1
			continue
		}
		j := i
		for j < len(line) && line[j] != ' ' && line[j] != '\t' {
			j++
		}
		tokens = append(tokens, line[i:j])
		i = j
	}
	return tokens, blankOwner
}

func (p *fileParser) handleLine(line string) error {
	tokens, blankOwner := fields(line)
	if len(tokens) == 0 {
		return nil
	}
	switch strings.ToUpper(tokens[0]) {
	case "$ORIGIN":
		if len(tokens) != 2 {
			return p.errf("$ORIGIN wants one argument")
		}
		p.origin = dnswire.CanonicalName(tokens[1])
		return nil
	case "$TTL":
		if len(tokens) != 2 {
			return p.errf("$TTL wants one argument")
		}
		v, err := strconv.ParseUint(tokens[1], 10, 32)
		if err != nil {
			return p.errf("$TTL: %v", err)
		}
		p.ttl = uint32(v)
		return nil
	case "$INCLUDE":
		return p.errf("$INCLUDE is not supported")
	}

	// Owner.
	var owner string
	if blankOwner {
		if p.lastOwner == "" {
			return p.errf("record with blank owner before any owner")
		}
		owner = p.lastOwner
	} else {
		owner = p.absName(tokens[0])
		tokens = tokens[1:]
	}
	p.lastOwner = owner

	// Optional TTL and class in either order.
	ttl := p.ttl
	class := dnswire.ClassIN
	for len(tokens) > 0 {
		tok := strings.ToUpper(tokens[0])
		if v, err := strconv.ParseUint(tok, 10, 32); err == nil {
			ttl = uint32(v)
			tokens = tokens[1:]
			continue
		}
		if tok == "IN" || tok == "CH" {
			if tok == "CH" {
				class = dnswire.ClassCH
			}
			tokens = tokens[1:]
			continue
		}
		break
	}
	if len(tokens) == 0 {
		return p.errf("missing record type")
	}
	typ, err := dnswire.TypeFromString(strings.ToUpper(tokens[0]))
	if err != nil {
		return p.errf("%v", err)
	}
	rdata, err := p.parseRData(typ, tokens[1:])
	if err != nil {
		return err
	}
	if p.zone == nil {
		if p.rootAll {
			p.zone = New(".")
		} else {
			if p.origin == "." && owner != "." {
				// First record defines the origin when none was given.
				p.origin = owner
			}
			p.zone = New(p.origin)
		}
	}
	return p.zone.Add(dnswire.RR{Name: owner, Class: class, TTL: ttl, Data: rdata})
}

// absName resolves a possibly-relative name against $ORIGIN.
func (p *fileParser) absName(tok string) string {
	tok = strings.TrimPrefix(tok, "\x00")
	if tok == "@" {
		return p.origin
	}
	if strings.HasSuffix(tok, ".") {
		return dnswire.CanonicalName(tok)
	}
	if p.origin == "." {
		return dnswire.CanonicalName(tok)
	}
	return dnswire.CanonicalName(tok + "." + p.origin)
}

func unq(tok string) string { return strings.TrimPrefix(tok, "\x00") }

func (p *fileParser) parseRData(typ dnswire.Type, tokens []string) (dnswire.RData, error) {
	// Generic RFC 3597 form works for any type: "\# <len> <hex>".
	if len(tokens) >= 2 && unq(tokens[0]) == `\#` {
		n, err := strconv.Atoi(tokens[1])
		if err != nil {
			return nil, p.errf("\\# length: %v", err)
		}
		raw, err := hex.DecodeString(strings.Join(tokens[2:], ""))
		if err != nil {
			return nil, p.errf("\\# hex: %v", err)
		}
		if len(raw) != n {
			return nil, p.errf("\\# length %d != %d data octets", n, len(raw))
		}
		return &dnswire.Generic{T: typ, Octets: raw}, nil
	}

	need := func(n int) error {
		if len(tokens) < n {
			return p.errf("%s wants at least %d fields, got %d", typ, n, len(tokens))
		}
		return nil
	}
	num := func(i int, bits int) (uint64, error) {
		v, err := strconv.ParseUint(unq(tokens[i]), 10, bits)
		if err != nil {
			return 0, p.errf("%s field %d: %v", typ, i+1, err)
		}
		return v, nil
	}

	switch typ {
	case dnswire.TypeA:
		if err := need(1); err != nil {
			return nil, err
		}
		addr, err := netip.ParseAddr(unq(tokens[0]))
		if err != nil || !addr.Is4() {
			return nil, p.errf("bad A address %q", tokens[0])
		}
		return &dnswire.A{Addr: addr}, nil
	case dnswire.TypeAAAA:
		if err := need(1); err != nil {
			return nil, err
		}
		addr, err := netip.ParseAddr(unq(tokens[0]))
		if err != nil || !addr.Is6() {
			return nil, p.errf("bad AAAA address %q", tokens[0])
		}
		return &dnswire.AAAA{Addr: addr}, nil
	case dnswire.TypeNS:
		if err := need(1); err != nil {
			return nil, err
		}
		return dnswire.NewNS(p.absName(tokens[0])), nil
	case dnswire.TypeCNAME:
		if err := need(1); err != nil {
			return nil, err
		}
		return dnswire.NewCNAME(p.absName(tokens[0])), nil
	case dnswire.TypePTR:
		if err := need(1); err != nil {
			return nil, err
		}
		return ptrFrom(p.absName(tokens[0])), nil
	case dnswire.TypeSOA:
		if err := need(7); err != nil {
			return nil, err
		}
		soa := &dnswire.SOA{MName: p.absName(tokens[0]), RName: p.absName(tokens[1])}
		vals := make([]uint32, 5)
		for i := range vals {
			v, err := num(2+i, 32)
			if err != nil {
				return nil, err
			}
			vals[i] = uint32(v)
		}
		soa.Serial, soa.Refresh, soa.Retry, soa.Expire, soa.Minimum = vals[0], vals[1], vals[2], vals[3], vals[4]
		return soa, nil
	case dnswire.TypeMX:
		if err := need(2); err != nil {
			return nil, err
		}
		pref, err := num(0, 16)
		if err != nil {
			return nil, err
		}
		return &dnswire.MX{Preference: uint16(pref), Host: p.absName(tokens[1])}, nil
	case dnswire.TypeTXT:
		if err := need(1); err != nil {
			return nil, err
		}
		var ss []string
		for _, t := range tokens {
			ss = append(ss, unq(t))
		}
		return &dnswire.TXT{Strings: ss}, nil
	case dnswire.TypeSRV:
		if err := need(4); err != nil {
			return nil, err
		}
		pr, err := num(0, 16)
		if err != nil {
			return nil, err
		}
		w, err := num(1, 16)
		if err != nil {
			return nil, err
		}
		port, err := num(2, 16)
		if err != nil {
			return nil, err
		}
		return &dnswire.SRV{Priority: uint16(pr), Weight: uint16(w), Port: uint16(port), Target: p.absName(tokens[3])}, nil
	case dnswire.TypeDS, dnswire.TypeCDS:
		if err := need(4); err != nil {
			return nil, err
		}
		tag, err := num(0, 16)
		if err != nil {
			return nil, err
		}
		alg, err := num(1, 8)
		if err != nil {
			return nil, err
		}
		dt, err := num(2, 8)
		if err != nil {
			return nil, err
		}
		digest, err := hex.DecodeString(strings.Join(mapUnq(tokens[3:]), ""))
		if err != nil {
			return nil, p.errf("%s digest: %v", typ, err)
		}
		ds := dnswire.DS{KeyTag: uint16(tag), Algorithm: uint8(alg), DigestType: uint8(dt), Digest: digest}
		if typ == dnswire.TypeCDS {
			return &dnswire.CDS{DS: ds}, nil
		}
		return &ds, nil
	case dnswire.TypeDNSKEY, dnswire.TypeCDNSKEY:
		if err := need(4); err != nil {
			return nil, err
		}
		flags, err := num(0, 16)
		if err != nil {
			return nil, err
		}
		proto, err := num(1, 8)
		if err != nil {
			return nil, err
		}
		alg, err := num(2, 8)
		if err != nil {
			return nil, err
		}
		pk, err := base64.StdEncoding.DecodeString(strings.Join(mapUnq(tokens[3:]), ""))
		if err != nil {
			return nil, p.errf("%s key: %v", typ, err)
		}
		key := dnswire.DNSKEY{Flags: uint16(flags), Protocol: uint8(proto), Algorithm: uint8(alg), PublicKey: pk}
		if typ == dnswire.TypeCDNSKEY {
			return &dnswire.CDNSKEY{DNSKEY: key}, nil
		}
		return &key, nil
	case dnswire.TypeRRSIG:
		if err := need(9); err != nil {
			return nil, err
		}
		covered, err := dnswire.TypeFromString(strings.ToUpper(unq(tokens[0])))
		if err != nil {
			return nil, p.errf("RRSIG covered: %v", err)
		}
		alg, err := num(1, 8)
		if err != nil {
			return nil, err
		}
		labels, err := num(2, 8)
		if err != nil {
			return nil, err
		}
		origTTL, err := num(3, 32)
		if err != nil {
			return nil, err
		}
		exp, err := num(4, 32)
		if err != nil {
			return nil, err
		}
		inc, err := num(5, 32)
		if err != nil {
			return nil, err
		}
		tag, err := num(6, 16)
		if err != nil {
			return nil, err
		}
		sig, err := base64.StdEncoding.DecodeString(strings.Join(mapUnq(tokens[8:]), ""))
		if err != nil {
			return nil, p.errf("RRSIG signature: %v", err)
		}
		return &dnswire.RRSIG{
			TypeCovered: covered, Algorithm: uint8(alg), Labels: uint8(labels),
			OrigTTL: uint32(origTTL), Expiration: uint32(exp), Inception: uint32(inc),
			KeyTag: uint16(tag), SignerName: p.absName(tokens[7]), Signature: sig,
		}, nil
	case dnswire.TypeNSEC:
		if err := need(1); err != nil {
			return nil, err
		}
		n := &dnswire.NSEC{NextDomain: p.absName(tokens[0])}
		for _, t := range tokens[1:] {
			tt, err := dnswire.TypeFromString(strings.ToUpper(unq(t)))
			if err != nil {
				return nil, p.errf("NSEC type list: %v", err)
			}
			n.Types = append(n.Types, tt)
		}
		return n, nil
	case dnswire.TypeNSEC3:
		if err := need(6); err != nil {
			return nil, err
		}
		ha, err := num(0, 8)
		if err != nil {
			return nil, err
		}
		fl, err := num(1, 8)
		if err != nil {
			return nil, err
		}
		it, err := num(2, 16)
		if err != nil {
			return nil, err
		}
		salt, err := parseSalt(unq(tokens[3]))
		if err != nil {
			return nil, p.errf("NSEC3 salt: %v", err)
		}
		next, err := decodeBase32Hex(unq(tokens[4]))
		if err != nil {
			return nil, p.errf("NSEC3 next-hashed: %v", err)
		}
		n := &dnswire.NSEC3{HashAlg: uint8(ha), Flags: uint8(fl), Iterations: uint16(it), Salt: salt, NextHashed: next}
		for _, t := range tokens[5:] {
			tt, err := dnswire.TypeFromString(strings.ToUpper(unq(t)))
			if err != nil {
				return nil, p.errf("NSEC3 type list: %v", err)
			}
			n.Types = append(n.Types, tt)
		}
		return n, nil
	case dnswire.TypeNSEC3PARAM:
		if err := need(4); err != nil {
			return nil, err
		}
		ha, err := num(0, 8)
		if err != nil {
			return nil, err
		}
		fl, err := num(1, 8)
		if err != nil {
			return nil, err
		}
		it, err := num(2, 16)
		if err != nil {
			return nil, err
		}
		salt, err := parseSalt(unq(tokens[3]))
		if err != nil {
			return nil, p.errf("NSEC3PARAM salt: %v", err)
		}
		return &dnswire.NSEC3PARAM{HashAlg: uint8(ha), Flags: uint8(fl), Iterations: uint16(it), Salt: salt}, nil
	case dnswire.TypeCSYNC:
		if err := need(2); err != nil {
			return nil, err
		}
		serial, err := num(0, 32)
		if err != nil {
			return nil, err
		}
		flags, err := num(1, 16)
		if err != nil {
			return nil, err
		}
		c := &dnswire.CSYNC{SOASerial: uint32(serial), Flags: uint16(flags)}
		for _, t := range tokens[2:] {
			tt, err := dnswire.TypeFromString(strings.ToUpper(unq(t)))
			if err != nil {
				return nil, p.errf("CSYNC type list: %v", err)
			}
			c.Types = append(c.Types, tt)
		}
		return c, nil
	default:
		return nil, p.errf("no presentation parser for %s (use \\# generic syntax)", typ)
	}
}

func ptrFrom(target string) *dnswire.PTR {
	p := &dnswire.PTR{}
	p.Target = target // promoted from the shared single-name shape
	return p
}

func parseSalt(tok string) ([]byte, error) {
	if tok == "-" {
		return nil, nil
	}
	return hex.DecodeString(tok)
}

// decodeBase32Hex decodes the unpadded base32hex used by NSEC3 owner
// hashes (RFC 5155 §1.3), accepting either case.
func decodeBase32Hex(in string) ([]byte, error) {
	var out []byte
	var acc, bits uint
	for _, c := range in {
		var v uint
		switch {
		case c >= '0' && c <= '9':
			v = uint(c - '0')
		case c >= 'A' && c <= 'V':
			v = uint(c-'A') + 10
		case c >= 'a' && c <= 'v':
			v = uint(c-'a') + 10
		default:
			return nil, fmt.Errorf("bad base32hex digit %q", c)
		}
		acc = acc<<5 | v
		bits += 5
		if bits >= 8 {
			bits -= 8
			out = append(out, byte(acc>>bits))
		}
	}
	return out, nil
}

func mapUnq(tokens []string) []string {
	out := make([]string, len(tokens))
	for i, t := range tokens {
		out[i] = unq(t)
	}
	return out
}

// ParseRR parses a single master-file record line with absolute names
// (the format RR.String produces), used when re-importing exported
// observations.
func ParseRR(line string) (dnswire.RR, error) {
	return ParseRecord(line, ".", 3600)
}

// ParseRecord parses one master-file record line in isolation: relative
// names resolve against origin and a missing TTL field defaults to ttl,
// but — unlike Parse — the record may name any owner, in or out of any
// zone. This is the per-line primitive the streaming ingest pipeline
// parallelises over: directives ($ORIGIN, $TTL) and blank-owner
// continuation are stateful and must be resolved by the caller before
// the line reaches this function.
func ParseRecord(line, origin string, ttl uint32) (dnswire.RR, error) {
	p := &fileParser{
		origin:  dnswire.CanonicalName(origin),
		ttl:     ttl,
		rootAll: true,
		sc:      bufio.NewScanner(strings.NewReader(line)),
	}
	p.sc.Buffer(make([]byte, 0, 256), MaxLogicalLineBytes)
	z, err := p.run()
	if err != nil {
		return dnswire.RR{}, err
	}
	all := z.All()
	if len(all) != 1 {
		return dnswire.RR{}, fmt.Errorf("zone: expected one record, got %d", len(all))
	}
	return all[0], nil
}
