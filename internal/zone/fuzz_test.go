package zone

import (
	"testing"
)

// FuzzParseZone drives the master-file parser with arbitrary text. The
// parser must reject garbage with an error, never a panic, and any
// accepted zone must render back to text without panicking.
func FuzzParseZone(f *testing.F) {
	seeds := []string{
		"",
		"example.com. 3600 IN SOA ns1.example.com. hostmaster.example.com. 1 7200 3600 1209600 300\n",
		"$ORIGIN example.com.\n$TTL 3600\n@ IN NS ns1\nns1 IN A 192.0.2.1\n",
		"www 300 IN A 192.0.2.80\nwww 300 IN AAAA 2001:db8::80\n",
		"alias IN CNAME www.example.com.\n",
		"example.com. IN DS 4711 13 2 000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f\n",
		"example.com. IN DNSKEY 257 3 13 AwEAAa==\n",
		"example.com. IN TXT \"v=spf1 -all\"\n",
		"; comment only\n\n\n",
		"( multi\nline )\n",
		"$INCLUDE other.zone\n",
		"\x00\x01\x02",
		"@ IN NS ns1.example.com.\n@ IN CDS 0 0 0 00\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		z, err := ParseString(text, "example.com.")
		if err != nil {
			return
		}
		if z == nil {
			t.Fatal("ParseString returned nil zone with nil error")
		}
		// Accepted zones must be walkable without panics.
		for _, rr := range z.All() {
			_ = rr.Type()
		}
	})
}
