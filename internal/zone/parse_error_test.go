package zone

import (
	"strings"
	"testing"
)

// Every rejected line must come back as an error naming the problem,
// never a panic or a silently dropped record. One subtest per corpus
// entry keeps failures attributable.
func TestParseRRErrorPaths(t *testing.T) {
	cases := []struct {
		name    string
		line    string
		wantSub string // substring the error must contain
	}{
		{"unknown type",
			"a.example.com. 3600 IN FROB data", "FROB"},
		{"missing type",
			"a.example.com. 3600 IN", "missing record type"},
		{"bad A address",
			"a.example.com. 3600 IN A not-an-ip", "bad A address"},
		{"v6 in A",
			"a.example.com. 3600 IN A ::1", "bad A address"},
		{"v4 in AAAA",
			"a.example.com. 3600 IN AAAA 192.0.2.1", "bad AAAA address"},
		{"short SOA",
			"example.com. 3600 IN SOA ns1.example.com. hostmaster.example.com. 1", "SOA wants at least 7 fields"},
		{"SOA non-numeric serial",
			"example.com. 3600 IN SOA ns1.example.com. h.example.com. x 2 3 4 5", "SOA field 3"},
		{"short MX",
			"example.com. 3600 IN MX 10", "MX wants at least 2 fields"},
		{"MX preference overflow",
			"example.com. 3600 IN MX 70000 mail.example.com.", "MX field 1"},
		{"short DS",
			"example.com. 3600 IN DS 12345 8 2", "DS wants at least 4 fields"},
		{"DS bad digest hex",
			"example.com. 3600 IN DS 12345 8 2 zzzz", "DS digest"},
		{"DNSKEY bad base64",
			"example.com. 3600 IN DNSKEY 257 3 13 !!!!", "DNSKEY key"},
		{"short RRSIG",
			"example.com. 3600 IN RRSIG A 13 2 3600", "RRSIG wants at least 9 fields"},
		{"RRSIG unknown covered type",
			"example.com. 3600 IN RRSIG FROB 13 2 3600 20300101000000 20200101000000 1 example.com. AAAA", "RRSIG covered"},
		{"RRSIG bad signature base64",
			"example.com. 3600 IN RRSIG A 13 2 3600 100 50 1 example.com. !!!!", "RRSIG signature"},
		{"NSEC bad type list",
			"example.com. 3600 IN NSEC b.example.com. A FROB", "NSEC type list"},
		{"short NSEC3",
			"x.example.com. 3600 IN NSEC3 1 0 10", "NSEC3 wants at least 6 fields"},
		{"NSEC3 bad salt hex",
			"x.example.com. 3600 IN NSEC3 1 0 10 zz 0123456789abcdefghij A", "NSEC3 salt"},
		{"NSEC3 bad base32hex next-hashed",
			"x.example.com. 3600 IN NSEC3 1 0 10 - zzzz A", "NSEC3 next-hashed"},
		{"NSEC3 bad type list",
			"x.example.com. 3600 IN NSEC3 1 0 10 - 0123456789abcdef00 FROB", "NSEC3 type list"},
		{"NSEC3PARAM bad salt",
			"example.com. 3600 IN NSEC3PARAM 1 0 10 zz", "NSEC3PARAM salt"},
		{"CSYNC bad type list",
			"example.com. 3600 IN CSYNC 1 3 FROB", "CSYNC type list"},
		{"CSYNC short",
			"example.com. 3600 IN CSYNC 1", "CSYNC wants at least 2 fields"},
		{"SRV short",
			"_x._tcp.example.com. 3600 IN SRV 1 2", "SRV wants at least 4 fields"},
		{"generic length mismatch",
			`example.com. 3600 IN TYPE999 \# 3 0102`, "length 3 != 2 data octets"},
		{"generic bad hex",
			`example.com. 3600 IN TYPE999 \# 1 zz`, `\# hex`},
		{"generic bad length field",
			`example.com. 3600 IN TYPE999 \# x 01`, `\# length`},
		{"no parser without generic syntax",
			"example.com. 3600 IN TYPE999 opaque", "no presentation parser"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseRR(c.line)
			if err == nil {
				t.Fatalf("ParseRR(%q) succeeded, want error containing %q", c.line, c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("ParseRR(%q) error = %q, want substring %q", c.line, err, c.wantSub)
			}
		})
	}
}

// ParseRecord resolves relative names against the supplied origin and
// fills in a missing TTL, without restricting the owner to any zone —
// the contract the parallel ingest workers depend on.
func TestParseRecord(t *testing.T) {
	rr, err := ParseRecord("www IN NS ns1", "example.com.", 300)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Name != "www.example.com." {
		t.Errorf("owner = %q, want www.example.com.", rr.Name)
	}
	if rr.TTL != 300 {
		t.Errorf("ttl = %d, want default 300", rr.TTL)
	}
	if got := rr.Data.String(); got != "ns1.example.com." {
		t.Errorf("NS target = %q, want ns1.example.com.", got)
	}

	// An owner far outside the origin is fine: ParseRecord roots at ".".
	rr, err = ParseRecord("other.test. 60 IN A 192.0.2.1", "example.com.", 300)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Name != "other.test." || rr.TTL != 60 {
		t.Errorf("got (%q, %d), want (other.test., 60)", rr.Name, rr.TTL)
	}

	// "@" is the origin itself.
	rr, err = ParseRecord("@ IN NS ns1.example.com.", "example.com.", 300)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Name != "example.com." {
		t.Errorf("@ owner = %q, want example.com.", rr.Name)
	}

	if _, err := ParseRecord("", "example.com.", 300); err == nil {
		t.Error("empty line parsed as a record")
	}
	if _, err := ParseRecord("   IN NS ns1.example.com.", "example.com.", 300); err == nil {
		t.Error("blank owner with no prior owner parsed")
	}
}
