package zone

import (
	"fmt"
	"path/filepath"
	"strings"
)

// OriginFromFilename derives a zone origin from a master-file name:
// "example.com.db" or "example.com.zone" → "example.com.". Filenames
// that do not follow the convention are an error naming the file, so a
// typo surfaces at load time instead of as a confusing parse failure
// later ($ORIGIN-only files should be renamed or loaded with an
// explicit origin).
func OriginFromFilename(path string) (string, error) {
	base := filepath.Base(path)
	for _, suffix := range []string{".db", ".zone"} {
		if name := strings.TrimSuffix(base, suffix); name != base && name != "" {
			return name + ".", nil
		}
	}
	return "", fmt.Errorf("zone: cannot derive origin from %q (want <origin>.db or <origin>.zone)", path)
}
