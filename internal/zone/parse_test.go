package zone

import (
	"strings"
	"testing"

	"dnssecboot/internal/dnswire"
)

const sampleMaster = `
$ORIGIN example.com.
$TTL 3600
@   IN  SOA ns1.example.net. hostmaster.example.com. (
        2025041501 ; serial
        7200       ; refresh
        3600       ; retry
        1209600    ; expire
        300 )      ; minimum
@       IN  NS   ns1.example.net.
        IN  NS   ns2.example.org.
@       300 IN A 192.0.2.10
www     300 A    192.0.2.11
mail    IN  AAAA 2001:db8::25
@       IN  MX   10 mail
@       IN  TXT  "v=spf1 -all" "second string"
_sip._tcp IN SRV 5 10 5060 sip.example.com.
sub     IN  NS   ns.sub
ns.sub  IN  A    192.0.2.53
@       IN  CDS  12345 13 2 49FD46E6C4B45C55D4AC69CBD3CD34AC1AFE51DE
@       IN  CDNSKEY 257 3 13 mdsswUyr3DPW132mOi8V9xESWE8jTo0dxCjjnopKl+GqJxpVXckHAeF+KkxLbxILfDLUT0rAK9iUzy1L53eKGQ==
alias   IN  CNAME www
`

func parseSample(t *testing.T) *Zone {
	t.Helper()
	z, err := ParseString(sampleMaster, "example.com.")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return z
}

func TestParseBasics(t *testing.T) {
	z := parseSample(t)
	if z.Origin != "example.com." {
		t.Errorf("origin = %s", z.Origin)
	}
	soa := z.SOA()
	if soa == nil {
		t.Fatal("no SOA")
	}
	s := soa.Data.(*dnswire.SOA)
	if s.Serial != 2025041501 || s.Minimum != 300 || s.MName != "ns1.example.net." {
		t.Errorf("SOA = %+v", s)
	}
	if len(z.NS()) != 2 {
		t.Errorf("NS count = %d", len(z.NS()))
	}
}

func TestParseRelativeAndBlankOwners(t *testing.T) {
	z := parseSample(t)
	if z.RRset("www.example.com.", dnswire.TypeA) == nil {
		t.Error("relative owner www not resolved")
	}
	// Blank owner lines continue the previous owner (the two NS records).
	if got := z.RRset("example.com.", dnswire.TypeNS); len(got) != 2 {
		t.Errorf("blank-owner NS = %d records", len(got))
	}
	mx := z.RRset("example.com.", dnswire.TypeMX)
	if len(mx) != 1 || mx[0].Data.(*dnswire.MX).Host != "mail.example.com." {
		t.Errorf("MX = %+v", mx)
	}
}

func TestParseTTLHandling(t *testing.T) {
	z := parseSample(t)
	a := z.RRset("example.com.", dnswire.TypeA)
	if len(a) != 1 || a[0].TTL != 300 {
		t.Errorf("explicit TTL = %+v", a)
	}
	ns := z.RRset("example.com.", dnswire.TypeNS)
	if ns[0].TTL != 3600 {
		t.Errorf("default $TTL = %d", ns[0].TTL)
	}
}

func TestParseQuotedTXT(t *testing.T) {
	z := parseSample(t)
	txt := z.RRset("example.com.", dnswire.TypeTXT)
	if len(txt) != 1 {
		t.Fatalf("TXT sets = %d", len(txt))
	}
	ss := txt[0].Data.(*dnswire.TXT).Strings
	if len(ss) != 2 || ss[0] != "v=spf1 -all" || ss[1] != "second string" {
		t.Errorf("TXT strings = %q", ss)
	}
}

func TestParseDNSSECTypes(t *testing.T) {
	z := parseSample(t)
	cds := z.RRset("example.com.", dnswire.TypeCDS)
	if len(cds) != 1 {
		t.Fatalf("CDS sets = %d", len(cds))
	}
	c := cds[0].Data.(*dnswire.CDS)
	if c.KeyTag != 12345 || c.Algorithm != 13 || c.DigestType != 2 || len(c.Digest) != 20 {
		t.Errorf("CDS = %+v", c)
	}
	ck := z.RRset("example.com.", dnswire.TypeCDNSKEY)
	if len(ck) != 1 {
		t.Fatalf("CDNSKEY sets = %d", len(ck))
	}
	k := ck[0].Data.(*dnswire.CDNSKEY)
	if k.Flags != 257 || k.Algorithm != 13 || len(k.PublicKey) == 0 {
		t.Errorf("CDNSKEY = %+v", k)
	}
}

func TestParseSRVAndCNAME(t *testing.T) {
	z := parseSample(t)
	srv := z.RRset("_sip._tcp.example.com.", dnswire.TypeSRV)
	if len(srv) != 1 || srv[0].Data.(*dnswire.SRV).Port != 5060 {
		t.Errorf("SRV = %+v", srv)
	}
	cn := z.RRset("alias.example.com.", dnswire.TypeCNAME)
	if len(cn) != 1 || cn[0].Data.(*dnswire.CNAME).Target != "www.example.com." {
		t.Errorf("CNAME = %+v", cn)
	}
}

func TestParseGenericRFC3597(t *testing.T) {
	z, err := ParseString(`
$ORIGIN x.test.
@ IN SOA ns. root. 1 2 3 4 5
@ IN TYPE65280 \# 4 C0000201
`, "x.test.")
	if err != nil {
		t.Fatal(err)
	}
	set := z.RRset("x.test.", dnswire.Type(65280))
	if len(set) != 1 {
		t.Fatalf("generic sets = %d", len(set))
	}
	g := set[0].Data.(*dnswire.Generic)
	if len(g.Octets) != 4 || g.Octets[0] != 0xC0 {
		t.Errorf("generic octets = %x", g.Octets)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"@ IN SOA broken",              // not enough SOA fields
		"@ IN NOSUCHTYPE data",         // unknown mnemonic
		"@ IN A not-an-address",        // bad A
		"@ IN A 2001:db8::1",           // v6 in A
		"@ IN TYPE1 \\# 5 C0000201",    // generic length mismatch
		"   IN A 192.0.2.1",            // blank owner with no prior owner
		"@ IN SOA ns. root. 1 2 3 4 (", // unbalanced paren
	}
	for _, c := range cases {
		if _, err := ParseString(c, "test."); err == nil {
			t.Errorf("input %q parsed without error", c)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	z := parseSample(t)
	text := z.Text()
	z2, err := ParseString(text, z.Origin)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if z2.Size() != z.Size() {
		t.Fatalf("round trip size %d != %d\n%s", z2.Size(), z.Size(), text)
	}
	for _, rr := range z.All() {
		set := z2.RRset(rr.Name, rr.Type())
		found := false
		for _, got := range set {
			if got.Equal(rr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("record lost in round trip: %s", rr)
		}
	}
}

func TestSignedZoneSerializeRoundTrip(t *testing.T) {
	z := buildTestZone(t)
	if err := z.GenerateKeys(SignConfig{Algorithm: dnswire.AlgEd25519}, nil); err != nil {
		t.Fatal(err)
	}
	if err := z.Sign(SignConfig{Now: testNow}); err != nil {
		t.Fatal(err)
	}
	text := z.Text()
	z2, err := ParseString(text, z.Origin)
	if err != nil {
		t.Fatalf("re-parse signed zone: %v", err)
	}
	if z2.Size() != z.Size() {
		t.Errorf("signed round trip size %d != %d", z2.Size(), z.Size())
	}
	if !strings.Contains(text, "RRSIG") || !strings.Contains(text, "NSEC") {
		t.Error("serialisation lacks DNSSEC records")
	}
}

func TestParseDefaultsOriginFromFirstRecord(t *testing.T) {
	z, err := ParseString("example.org. IN SOA ns. root. 1 2 3 4 5\nexample.org. IN NS ns.example.net.\n", "")
	if err != nil {
		t.Fatal(err)
	}
	if z.Origin != "example.org." {
		t.Errorf("inferred origin = %s", z.Origin)
	}
}

func TestNSEC3ZoneSerializeRoundTrip(t *testing.T) {
	z := buildTestZone(t)
	cfg := SignConfig{Now: testNow, Algorithm: dnswire.AlgEd25519, UseNSEC3: true, NSEC3Salt: []byte{0xAB}}
	if err := z.GenerateKeys(cfg, nil); err != nil {
		t.Fatal(err)
	}
	if err := z.Sign(cfg); err != nil {
		t.Fatal(err)
	}
	text := z.Text()
	z2, err := ParseString(text, z.Origin)
	if err != nil {
		t.Fatalf("re-parse NSEC3 zone: %v", err)
	}
	if z2.Size() != z.Size() {
		t.Errorf("NSEC3 round trip size %d != %d", z2.Size(), z.Size())
	}
	for _, rr := range z.All() {
		if rr.Type() != dnswire.TypeNSEC3 {
			continue
		}
		found := false
		for _, got := range z2.RRset(rr.Name, dnswire.TypeNSEC3) {
			if got.Equal(rr) {
				found = true
			}
		}
		if !found {
			t.Errorf("NSEC3 record lost: %s", rr)
		}
	}
}

func TestParseRR(t *testing.T) {
	rr, err := ParseRR("example.com.\t3600\tIN\tNS\tns1.example.net.")
	if err != nil {
		t.Fatal(err)
	}
	if rr.Name != "example.com." || rr.Type() != dnswire.TypeNS {
		t.Errorf("ParseRR = %s", rr)
	}
	// Every RR.String() output must round-trip through ParseRR.
	z := buildTestZone(t)
	if err := z.GenerateKeys(SignConfig{Algorithm: dnswire.AlgEd25519}, nil); err != nil {
		t.Fatal(err)
	}
	if err := z.Sign(SignConfig{Now: testNow}); err != nil {
		t.Fatal(err)
	}
	if err := z.PublishCDS(dnswire.DigestSHA256); err != nil {
		t.Fatal(err)
	}
	for _, want := range z.All() {
		got, err := ParseRR(want.String())
		if err != nil {
			t.Fatalf("ParseRR(%q): %v", want.String(), err)
		}
		if !got.Equal(want) || got.TTL != want.TTL {
			t.Errorf("round trip changed record:\n in: %s\nout: %s", want, got)
		}
	}
	if _, err := ParseRR("not a record"); err == nil {
		t.Error("garbage accepted")
	}
}
