package zone

import (
	"fmt"
	"io"
	"strings"
)

// WriteTo serialises the zone in master-file form: $ORIGIN and $TTL
// headers, SOA first, then all records grouped by owner in canonical
// order. The output round-trips through Parse.
func (z *Zone) WriteTo(w io.Writer) (int64, error) {
	var total int64
	emit := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	if err := emit("$ORIGIN %s\n$TTL 3600\n", z.Origin); err != nil {
		return total, err
	}
	if soa := z.SOA(); soa != nil {
		if err := emit("%s\n", soa.String()); err != nil {
			return total, err
		}
	}
	for _, rr := range z.All() {
		if rr.Type().String() == "SOA" {
			continue // already emitted first
		}
		if err := emit("%s\n", rr.String()); err != nil {
			return total, err
		}
	}
	return total, nil
}

// Text returns the master-file serialisation as a string.
func (z *Zone) Text() string {
	var sb strings.Builder
	_, _ = z.WriteTo(&sb)
	return sb.String()
}
