package zone

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"dnssecboot/internal/dnssec"
	"dnssecboot/internal/dnswire"
)

// SignConfig controls zone signing.
type SignConfig struct {
	// Now anchors the signature validity window; zero means time.Now().
	Now time.Time
	// Expired forces all produced signatures to be already expired,
	// modelling decayed deployments.
	Expired bool
	// NSECTTL overrides the NSEC record TTL; zero uses the SOA minimum.
	NSECTTL uint32
	// Algorithm selects the key algorithm for GenerateKeys; zero means
	// ECDSA P-256 (algorithm 13, the most common in the wild).
	Algorithm uint8
	// SkipNSEC omits the NSEC chain (and its signatures). Large
	// registry zones in the simulator use this: the scan pipeline never
	// validates their denial proofs, and signing hundreds of thousands
	// of NSEC records would dominate generation time.
	SkipNSEC bool
	// UseNSEC3 builds an RFC 5155 NSEC3 chain (with NSEC3PARAM) instead
	// of plain NSEC. NSEC3Iterations and NSEC3Salt parameterise the
	// hashing; modern guidance (RFC 9276) is zero iterations and an
	// empty salt, which are the defaults.
	UseNSEC3        bool
	NSEC3Iterations uint16
	NSEC3Salt       []byte
}

// GenerateKeys creates and installs a KSK+ZSK pair for the zone,
// replacing any previous keys. rng may be nil.
func (z *Zone) GenerateKeys(cfg SignConfig, rng io.Reader) error {
	alg := cfg.Algorithm
	if alg == 0 {
		alg = dnswire.AlgECDSAP256SHA256
	}
	ksk, err := dnssec.GenerateKey(alg, dnswire.DNSKEYFlagZone|dnswire.DNSKEYFlagSEP, rng)
	if err != nil {
		return err
	}
	zsk, err := dnssec.GenerateKey(alg, dnswire.DNSKEYFlagZone, rng)
	if err != nil {
		return err
	}
	z.Keys = []*dnssec.Key{ksk, zsk}
	return nil
}

// Sign signs the zone: publishes the DNSKEY RRset, builds the NSEC
// chain, and generates RRSIGs for every authoritative RRset. Previous
// DNSSEC records (DNSKEY/RRSIG/NSEC) are replaced. Delegation NS sets
// and occluded (glue) names are left unsigned, per RFC 4035 §2.2.
func (z *Zone) Sign(cfg SignConfig) error {
	if len(z.Keys) == 0 {
		return errors.New("zone: no keys; call GenerateKeys first")
	}
	soa := z.SOA()
	if soa == nil {
		return errors.New("zone: cannot sign a zone without a SOA")
	}
	now := cfg.Now
	if now.IsZero() {
		now = timeNow()
	}
	opts := dnssec.ValidityWindow(now, z.Origin)
	if cfg.Expired {
		opts = dnssec.ExpiredWindow(now, z.Origin)
	}

	z.Unsign()

	ksk, zsk := z.signingKeys()

	// Publish DNSKEYs.
	keyTTL := uint32(3600)
	for _, k := range z.Keys {
		z.MustAdd(dnswire.RR{Name: z.Origin, Class: z.Class, TTL: keyTTL, Data: k.DNSKEY()})
	}

	// Build the NSEC chain over authoritative names (cuts included,
	// occluded names excluded).
	nsecTTL := cfg.NSECTTL
	if nsecTTL == 0 {
		nsecTTL = soa.Data.(*dnswire.SOA).Minimum
	}
	var authNames []string
	for _, n := range z.Names() {
		if z.Occluded(n) {
			continue
		}
		authNames = append(authNames, n)
	}
	if cfg.SkipNSEC {
		return z.signRRsets(authNames, ksk, zsk, opts)
	}
	if cfg.UseNSEC3 {
		nsec3Names, err := z.buildNSEC3Chain(authNames, nsecTTL, cfg)
		if err != nil {
			return err
		}
		return z.signRRsets(append(authNames, nsec3Names...), ksk, zsk, opts)
	}
	for i, name := range authNames {
		next := authNames[(i+1)%len(authNames)]
		types := z.TypesAt(name)
		types = append(types, dnswire.TypeRRSIG, dnswire.TypeNSEC)
		types = dedupeSortTypes(types)
		if z.DelegationAt(name) {
			// At a cut only NS (+DS) appear in the bitmap; no RRSIG for
			// the NS set itself but the NSEC/DS at the cut are signed.
			types = filterCutTypes(types, z, name)
		}
		z.MustAdd(dnswire.RR{Name: name, Class: z.Class, TTL: nsecTTL,
			Data: &dnswire.NSEC{NextDomain: next, Types: types}})
	}

	return z.signRRsets(authNames, ksk, zsk, opts)
}

// signRRsets signs every authoritative RRset at the given names. The
// DNSKEY RRset is signed by every SEP key so that double-signature key
// rollovers (RFC 7344 §6) keep a chain to both the old and the new DS.
func (z *Zone) signRRsets(authNames []string, ksk, zsk *dnssec.Key, opts dnssec.SignOptions) error {
	var seps []*dnssec.Key
	for _, k := range z.Keys {
		if k.IsSEP() {
			seps = append(seps, k)
		}
	}
	if len(seps) == 0 {
		seps = []*dnssec.Key{ksk}
	}
	for _, name := range authNames {
		isCut := z.DelegationAt(name)
		for _, typ := range z.TypesAt(name) {
			if typ == dnswire.TypeRRSIG {
				continue
			}
			if isCut && typ == dnswire.TypeNS {
				continue // delegation NS is not authoritative here
			}
			keys := []*dnssec.Key{zsk}
			if typ == dnswire.TypeDNSKEY {
				keys = seps
			}
			set := z.RRset(name, typ)
			for _, key := range keys {
				sig, err := dnssec.SignRRset(set, key, opts)
				if err != nil {
					return fmt.Errorf("zone: signing %s/%s: %w", name, typ, err)
				}
				z.MustAdd(sig)
			}
		}
	}
	return nil
}

// buildNSEC3Chain hashes every authoritative name, sorts the hashes,
// and installs the NSEC3 records plus the apex NSEC3PARAM (RFC 5155
// §7.1). It returns the NSEC3 owner names so they can be signed.
func (z *Zone) buildNSEC3Chain(authNames []string, ttl uint32, cfg SignConfig) ([]string, error) {
	z.MustAdd(dnswire.RR{Name: z.Origin, Class: z.Class, TTL: 0, Data: &dnswire.NSEC3PARAM{
		HashAlg: dnssec.NSEC3HashAlgSHA1, Iterations: cfg.NSEC3Iterations, Salt: cfg.NSEC3Salt,
	}})
	type hashed struct {
		hash  []byte
		owner string
		name  string
	}
	entries := make([]hashed, 0, len(authNames))
	for _, name := range authNames {
		h, err := dnssec.NSEC3Hash(name, cfg.NSEC3Iterations, cfg.NSEC3Salt)
		if err != nil {
			return nil, err
		}
		owner, err := dnssec.NSEC3Owner(name, z.Origin, cfg.NSEC3Iterations, cfg.NSEC3Salt)
		if err != nil {
			return nil, err
		}
		entries = append(entries, hashed{hash: h, owner: owner, name: name})
	}
	sort.Slice(entries, func(i, j int) bool {
		return bytes.Compare(entries[i].hash, entries[j].hash) < 0
	})
	var owners []string
	for i, e := range entries {
		next := entries[(i+1)%len(entries)]
		types := z.TypesAt(e.name)
		types = append(types, dnswire.TypeRRSIG)
		if e.name == z.Origin {
			types = append(types, dnswire.TypeNSEC3PARAM)
		}
		types = dedupeSortTypes(types)
		if z.DelegationAt(e.name) {
			types = filterCutTypes(types, z, e.name)
		}
		z.MustAdd(dnswire.RR{Name: e.owner, Class: z.Class, TTL: ttl, Data: &dnswire.NSEC3{
			HashAlg:    dnssec.NSEC3HashAlgSHA1,
			Iterations: cfg.NSEC3Iterations,
			Salt:       cfg.NSEC3Salt,
			NextHashed: next.hash,
			Types:      types,
		}})
		owners = append(owners, e.owner)
	}
	return owners, nil
}

// ResignRRset refreshes the RRSIG over one RRset (owner, typ) in an
// already-signed zone, e.g. after a registry updates a DS set in place.
// Signatures over other RRsets at owner are preserved.
func (z *Zone) ResignRRset(owner string, typ dnswire.Type, cfg SignConfig) error {
	if len(z.Keys) == 0 {
		return errors.New("zone: no keys")
	}
	now := cfg.Now
	if now.IsZero() {
		now = timeNow()
	}
	opts := dnssec.ValidityWindow(now, z.Origin)
	if cfg.Expired {
		opts = dnssec.ExpiredWindow(now, z.Origin)
	}
	ksk, zsk := z.signingKeys()
	key := zsk
	if typ == dnswire.TypeDNSKEY {
		key = ksk
	}
	owner = dnswire.CanonicalName(owner)
	// Drop existing signatures covering typ, keep the rest.
	old := z.RRset(owner, dnswire.TypeRRSIG)
	z.RemoveSet(owner, dnswire.TypeRRSIG)
	for _, rr := range old {
		if rr.Data.(*dnswire.RRSIG).TypeCovered != typ {
			z.MustAdd(rr)
		}
	}
	set := z.RRset(owner, typ)
	if len(set) == 0 {
		return nil // RRset deleted entirely; nothing to sign
	}
	sig, err := dnssec.SignRRset(set, key, opts)
	if err != nil {
		return err
	}
	z.MustAdd(sig)
	return nil
}

// Unsign removes all DNSSEC records (DNSKEY, RRSIG, NSEC, NSEC3,
// NSEC3PARAM) from the zone, leaving keys in place.
func (z *Zone) Unsign() {
	for _, name := range z.Names() {
		for _, typ := range []dnswire.Type{dnswire.TypeRRSIG, dnswire.TypeNSEC, dnswire.TypeNSEC3, dnswire.TypeNSEC3PARAM, dnswire.TypeDNSKEY} {
			z.RemoveSet(name, typ)
		}
	}
}

// PublishCDS installs CDS and CDNSKEY RRsets derived from the zone's
// KSK: one CDS per digest type given plus the matching CDNSKEY. This is
// the RFC 7344 operator-side behaviour.
func (z *Zone) PublishCDS(digestTypes ...uint8) error {
	if len(z.Keys) == 0 {
		return errors.New("zone: no keys to derive CDS from")
	}
	ksk, _ := z.signingKeys()
	return z.PublishCDSFor(ksk, digestTypes...)
}

// PublishCDSFor installs CDS/CDNSKEY derived from a specific key —
// during a rollover the CDS names the incoming KSK while the zone is
// still chained through the outgoing one.
func (z *Zone) PublishCDSFor(ksk *dnssec.Key, digestTypes ...uint8) error {
	if len(digestTypes) == 0 {
		digestTypes = []uint8{dnswire.DigestSHA256}
	}
	z.RemoveSet(z.Origin, dnswire.TypeCDS)
	z.RemoveSet(z.Origin, dnswire.TypeCDNSKEY)
	for _, dt := range digestTypes {
		cds, err := dnssec.CDSFromKey(z.Origin, ksk.DNSKEY(), dt)
		if err != nil {
			return err
		}
		z.MustAdd(dnswire.RR{Name: z.Origin, Class: z.Class, TTL: 3600, Data: cds})
	}
	z.MustAdd(dnswire.RR{Name: z.Origin, Class: z.Class, TTL: 3600,
		Data: &dnswire.CDNSKEY{DNSKEY: *ksk.DNSKEY()}})
	return nil
}

// PublishDeleteCDS installs the RFC 8078 §4 deletion request as the
// zone's CDS/CDNSKEY content.
func (z *Zone) PublishDeleteCDS() {
	z.RemoveSet(z.Origin, dnswire.TypeCDS)
	z.RemoveSet(z.Origin, dnswire.TypeCDNSKEY)
	z.MustAdd(dnswire.RR{Name: z.Origin, Class: z.Class, TTL: 0, Data: dnssec.DeleteCDS()})
	z.MustAdd(dnswire.RR{Name: z.Origin, Class: z.Class, TTL: 0, Data: dnssec.DeleteCDNSKEY()})
}

// SignalRecords returns the RFC 9615 signalling records that the
// operator of nsHost must publish for child: copies of child's CDS and
// CDNSKEY RRsets at _dsboot.<child>._signal.<nsHost>.
func SignalRecords(child string, nsHost string, cdsSet []dnswire.RR) ([]dnswire.RR, error) {
	owner, err := SignalName(child, nsHost)
	if err != nil {
		return nil, err
	}
	var out []dnswire.RR
	for _, rr := range cdsSet {
		out = append(out, dnswire.RR{Name: owner, Class: rr.Class, TTL: rr.TTL, Data: rr.Data})
	}
	return out, nil
}

// SignalName computes _dsboot.<child>._signal.<nsHost> and validates
// the length limit the paper discusses (names over 255 octets cannot be
// signalled).
func SignalName(child, nsHost string) (string, error) {
	name := "_dsboot." + dnswire.CanonicalName(child) + "_signal." + dnswire.CanonicalName(nsHost)
	name = dnswire.CanonicalName(name)
	if _, err := dnswire.NameWireLength(name); err != nil {
		return "", fmt.Errorf("zone: signal name for %s under %s: %w", child, nsHost, err)
	}
	return name, nil
}

// SignalZoneName returns the _signal zone under a nameserver hostname,
// e.g. _signal.ns1.example.net.
func SignalZoneName(nsHost string) string {
	return dnswire.Join("_signal", nsHost)
}

func dedupeSortTypes(types []dnswire.Type) []dnswire.Type {
	seen := make(map[dnswire.Type]bool, len(types))
	out := types[:0]
	for _, t := range types {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// filterCutTypes restricts an NSEC bitmap at a delegation to the types
// that are authoritative at a cut: NS, DS and NSEC itself (RFC 4035
// §2.3: the parent zone lists only NS/DS/NSEC/RRSIG at cuts).
func filterCutTypes(types []dnswire.Type, z *Zone, name string) []dnswire.Type {
	out := types[:0]
	for _, t := range types {
		switch t {
		// The NSEC at the cut is itself signed, so RRSIG always appears.
		case dnswire.TypeNS, dnswire.TypeDS, dnswire.TypeNSEC, dnswire.TypeRRSIG:
			out = append(out, t)
		}
	}
	return out
}
