package zone

import (
	"fmt"
	"strings"
	"testing"
)

// A 10 MB physical line must fail with a positional error naming the
// cap, not crash the scanner or silently truncate. Before the
// MaxLogicalLineBytes cap was introduced, Parse surfaced a bare
// bufio.Scanner: token too long with no position.
func TestParseRejectsOverlongPhysicalLine(t *testing.T) {
	input := "$ORIGIN example.com.\n" +
		"big 3600 IN TXT \"" + strings.Repeat("a", 10<<20) + "\"\n"
	_, err := ParseString(input, "")
	if err == nil {
		t.Fatal("10MB line parsed without error")
	}
	want := fmt.Sprintf("zone: line 2: line exceeds %d bytes", MaxLogicalLineBytes)
	if err.Error() != want {
		t.Fatalf("error = %q, want %q", err, want)
	}
}

// The same cap applies to a logical line assembled from many short
// physical lines inside parentheses.
func TestParseRejectsOverlongLogicalLine(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("$ORIGIN example.com.\n")
	sb.WriteString("big 3600 IN TXT (\n")
	chunk := "\"" + strings.Repeat("a", 64<<10) + "\"\n"
	for i := 0; i < 20; i++ { // 20 * 64KiB > 1MiB joined
		sb.WriteString(chunk)
	}
	sb.WriteString(")\n")
	_, err := ParseString(sb.String(), "")
	if err == nil {
		t.Fatal("over-long parenthesised record parsed without error")
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("exceeds %d bytes", MaxLogicalLineBytes)) {
		t.Fatalf("error = %q, want mention of the %d-byte cap", err, MaxLogicalLineBytes)
	}
}

// Lines under the cap but far over bufio.Scanner's 64KiB default must
// still parse: the cap raises the scanner buffer, it doesn't shrink it.
func TestParseAcceptsLargeLegalLine(t *testing.T) {
	payload := strings.Repeat("a", 128<<10)
	input := "$ORIGIN example.com.\nbig 3600 IN TXT \"" + payload + "\"\n"
	z, err := ParseString(input, "")
	if err != nil {
		t.Fatalf("128KiB line rejected: %v", err)
	}
	if got := len(z.All()); got != 1 {
		t.Fatalf("got %d records, want 1", got)
	}
}
