package zone

import (
	"strings"
	"testing"
)

func TestOriginFromFilename(t *testing.T) {
	for _, tc := range []struct {
		path, want string
	}{
		{"example.com.db", "example.com."},
		{"/srv/zones/example.com.zone", "example.com."},
		{"sub.example.org.db", "sub.example.org."},
	} {
		got, err := OriginFromFilename(tc.path)
		if err != nil {
			t.Errorf("OriginFromFilename(%q): %v", tc.path, err)
			continue
		}
		if got != tc.want {
			t.Errorf("OriginFromFilename(%q) = %q, want %q", tc.path, got, tc.want)
		}
	}
}

// Unrecognized suffixes must fail loudly with the filename, not return
// "" and let zone.Parse fail later with a line-number error that never
// mentions which file was misnamed.
func TestOriginFromFilenameRejectsUnknownSuffix(t *testing.T) {
	for _, path := range []string{"example.com.txt", "zonefile", "example.com", ".db", ".zone"} {
		got, err := OriginFromFilename(path)
		if err == nil {
			t.Errorf("OriginFromFilename(%q) = %q, want error", path, got)
			continue
		}
		if !strings.Contains(err.Error(), path) {
			t.Errorf("OriginFromFilename(%q) error %q does not name the file", path, err)
		}
	}
}
