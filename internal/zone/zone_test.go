package zone

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"dnssecboot/internal/dnssec"
	"dnssecboot/internal/dnswire"
)

var testNow = time.Date(2025, 4, 15, 12, 0, 0, 0, time.UTC)

func buildTestZone(t *testing.T) *Zone {
	t.Helper()
	z := New("example.com.")
	z.SetBasics("ns1.example.net.", []string{"ns1.example.net.", "ns2.example.org."}, 2025041501)
	z.MustAdd(dnswire.RR{Name: "example.com.", TTL: 300, Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.10")}})
	z.MustAdd(dnswire.RR{Name: "www.example.com.", TTL: 300, Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.11")}})
	z.MustAdd(dnswire.RR{Name: "mail.example.com.", TTL: 300, Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.12")}})
	z.MustAdd(dnswire.RR{Name: "example.com.", TTL: 300, Data: &dnswire.MX{Preference: 10, Host: "mail.example.com."}})
	// Delegation with in-zone glue.
	z.MustAdd(dnswire.RR{Name: "sub.example.com.", TTL: 3600, Data: dnswire.NewNS("ns.sub.example.com.")})
	z.MustAdd(dnswire.RR{Name: "ns.sub.example.com.", TTL: 3600, Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.53")}})
	return z
}

func TestAddAndLookup(t *testing.T) {
	z := buildTestZone(t)
	if got := z.RRset("example.com.", dnswire.TypeNS); len(got) != 2 {
		t.Errorf("apex NS count = %d", len(got))
	}
	if got := z.RRset("WWW.example.COM", dnswire.TypeA); len(got) != 1 {
		t.Errorf("case-insensitive lookup failed: %d", len(got))
	}
	if z.RRset("nope.example.com.", dnswire.TypeA) != nil {
		t.Error("lookup of absent name returned records")
	}
	if err := z.Add(dnswire.RR{Name: "other.org.", Data: dnswire.NewNS("x.")}); err == nil {
		t.Error("out-of-zone Add accepted")
	}
}

func TestAddDeduplicates(t *testing.T) {
	z := New("example.com.")
	rr := dnswire.RR{Name: "example.com.", TTL: 60, Data: dnswire.NewNS("ns1.example.net.")}
	z.MustAdd(rr)
	z.MustAdd(rr)
	if n := len(z.RRset("example.com.", dnswire.TypeNS)); n != 1 {
		t.Errorf("duplicate Add produced %d records", n)
	}
}

func TestDelegationDetection(t *testing.T) {
	z := buildTestZone(t)
	if !z.DelegationAt("sub.example.com.") {
		t.Error("sub.example.com. not detected as a cut")
	}
	if z.DelegationAt("example.com.") {
		t.Error("apex detected as a cut")
	}
	if !z.Occluded("ns.sub.example.com.") {
		t.Error("glue not detected as occluded")
	}
	if z.Occluded("sub.example.com.") {
		t.Error("cut name itself reported occluded")
	}
	if z.Occluded("www.example.com.") {
		t.Error("ordinary name reported occluded")
	}
	cuts := z.Delegations()
	if len(cuts) != 1 || cuts[0] != "sub.example.com." {
		t.Errorf("Delegations = %v", cuts)
	}
}

func TestNamesCanonicalOrder(t *testing.T) {
	z := buildTestZone(t)
	names := z.Names()
	if names[0] != "example.com." {
		t.Errorf("first name = %s", names[0])
	}
	for i := 0; i < len(names)-1; i++ {
		if !dnswire.CanonicalNameLess(names[i], names[i+1]) {
			t.Errorf("names out of order: %s !< %s", names[i], names[i+1])
		}
	}
}

func TestSignZone(t *testing.T) {
	z := buildTestZone(t)
	if err := z.GenerateKeys(SignConfig{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := z.Sign(SignConfig{Now: testNow}); err != nil {
		t.Fatal(err)
	}
	if !z.IsSigned() {
		t.Fatal("zone not signed")
	}
	keys := z.RRset(z.Origin, dnswire.TypeDNSKEY)
	if len(keys) != 2 {
		t.Fatalf("DNSKEY count = %d", len(keys))
	}

	// Every authoritative RRset must verify.
	for _, name := range z.Names() {
		if z.Occluded(name) {
			continue
		}
		isCut := z.DelegationAt(name)
		for _, typ := range z.TypesAt(name) {
			if typ == dnswire.TypeRRSIG || (isCut && typ == dnswire.TypeNS) {
				continue
			}
			set := z.RRset(name, typ)
			sigs := dnssec.SigsCovering(z.RRset(name, dnswire.TypeRRSIG), name, typ)
			if err := dnssec.VerifyRRset(set, sigs, keys, testNow); err != nil {
				t.Errorf("verify %s/%s: %v", name, typ, err)
			}
		}
	}

	// Glue must not be signed.
	if sigs := z.RRset("ns.sub.example.com.", dnswire.TypeRRSIG); sigs != nil {
		t.Error("glue has RRSIGs")
	}
	// Delegation NS must not be signed; its NSEC must exist.
	cutSigs := dnssec.SigsCovering(z.RRset("sub.example.com.", dnswire.TypeRRSIG), "sub.example.com.", dnswire.TypeNS)
	if len(cutSigs) != 0 {
		t.Error("delegation NS RRset is signed")
	}
	if z.RRset("sub.example.com.", dnswire.TypeNSEC) == nil {
		t.Error("no NSEC at the cut")
	}
}

func TestNSECChainClosed(t *testing.T) {
	z := buildTestZone(t)
	if err := z.GenerateKeys(SignConfig{Algorithm: dnswire.AlgEd25519}, nil); err != nil {
		t.Fatal(err)
	}
	if err := z.Sign(SignConfig{Now: testNow}); err != nil {
		t.Fatal(err)
	}
	// Walk the chain from the apex; it must visit every authoritative
	// name exactly once and return to the apex.
	var authNames []string
	for _, n := range z.Names() {
		if !z.Occluded(n) {
			authNames = append(authNames, n)
		}
	}
	visited := make(map[string]bool)
	cur := z.Origin
	for i := 0; i < len(authNames)+1; i++ {
		set := z.RRset(cur, dnswire.TypeNSEC)
		if len(set) != 1 {
			t.Fatalf("NSEC count at %s = %d", cur, len(set))
		}
		visited[cur] = true
		cur = set[0].Data.(*dnswire.NSEC).NextDomain
		if cur == z.Origin {
			break
		}
	}
	if cur != z.Origin {
		t.Error("NSEC chain does not loop back to the apex")
	}
	for _, n := range authNames {
		if !visited[n] {
			t.Errorf("NSEC chain misses %s", n)
		}
	}
}

func TestSignExpired(t *testing.T) {
	z := buildTestZone(t)
	if err := z.GenerateKeys(SignConfig{Algorithm: dnswire.AlgEd25519}, nil); err != nil {
		t.Fatal(err)
	}
	if err := z.Sign(SignConfig{Now: testNow, Expired: true}); err != nil {
		t.Fatal(err)
	}
	keys := z.RRset(z.Origin, dnswire.TypeDNSKEY)
	set := z.RRset(z.Origin, dnswire.TypeSOA)
	sigs := dnssec.SigsCovering(z.RRset(z.Origin, dnswire.TypeRRSIG), z.Origin, dnswire.TypeSOA)
	if err := dnssec.VerifyRRset(set, sigs, keys, testNow); err == nil {
		t.Error("expired-signed zone verified at now")
	}
}

func TestUnsign(t *testing.T) {
	z := buildTestZone(t)
	if err := z.GenerateKeys(SignConfig{Algorithm: dnswire.AlgEd25519}, nil); err != nil {
		t.Fatal(err)
	}
	if err := z.Sign(SignConfig{Now: testNow}); err != nil {
		t.Fatal(err)
	}
	z.Unsign()
	if z.IsSigned() {
		t.Error("zone still signed after Unsign")
	}
	for _, name := range z.Names() {
		for _, typ := range z.TypesAt(name) {
			switch typ {
			case dnswire.TypeRRSIG, dnswire.TypeNSEC, dnswire.TypeDNSKEY:
				t.Errorf("leftover %s at %s", typ, name)
			}
		}
	}
}

func TestPublishCDS(t *testing.T) {
	z := buildTestZone(t)
	if err := z.GenerateKeys(SignConfig{Algorithm: dnswire.AlgEd25519}, nil); err != nil {
		t.Fatal(err)
	}
	if err := z.Sign(SignConfig{Now: testNow}); err != nil {
		t.Fatal(err)
	}
	if err := z.PublishCDS(dnswire.DigestSHA256, dnswire.DigestSHA384); err != nil {
		t.Fatal(err)
	}
	cds := z.RRset(z.Origin, dnswire.TypeCDS)
	if len(cds) != 2 {
		t.Fatalf("CDS count = %d", len(cds))
	}
	cdnskey := z.RRset(z.Origin, dnswire.TypeCDNSKEY)
	if len(cdnskey) != 1 {
		t.Fatalf("CDNSKEY count = %d", len(cdnskey))
	}
	// CDS content must correspond to a DNSKEY in the zone.
	keys := z.RRset(z.Origin, dnswire.TypeDNSKEY)
	if _, ok := dnssec.CDSMatchesDNSKEYs(z.Origin, cds, keys); !ok {
		t.Error("published CDS does not match a zone DNSKEY")
	}
}

func TestPublishDeleteCDS(t *testing.T) {
	z := buildTestZone(t)
	z.PublishDeleteCDS()
	set := append(z.RRset(z.Origin, dnswire.TypeCDS), z.RRset(z.Origin, dnswire.TypeCDNSKEY)...)
	if !dnssec.IsDeleteSet(set) {
		t.Error("PublishDeleteCDS did not produce a delete set")
	}
}

func TestSignalNames(t *testing.T) {
	owner, err := SignalName("example.co.uk.", "ns1.example.net.")
	if err != nil {
		t.Fatal(err)
	}
	want := "_dsboot.example.co.uk._signal.ns1.example.net."
	if owner != want {
		t.Errorf("SignalName = %q, want %q", owner, want)
	}
	if got := SignalZoneName("ns1.example.net."); got != "_signal.ns1.example.net." {
		t.Errorf("SignalZoneName = %q", got)
	}
	// Over-long combinations must be rejected (paper §2, "DS
	// Bootstrapping Limitations").
	longChild := strings.Repeat("a", 63) + "." + strings.Repeat("b", 63) + "." + strings.Repeat("c", 60) + ".com."
	longNS := strings.Repeat("n", 63) + ".example.net."
	if _, err := SignalName(longChild, longNS); err == nil {
		t.Error("over-long signal name accepted")
	}
}

func TestSignalRecords(t *testing.T) {
	z := buildTestZone(t)
	if err := z.GenerateKeys(SignConfig{Algorithm: dnswire.AlgEd25519}, nil); err != nil {
		t.Fatal(err)
	}
	if err := z.Sign(SignConfig{Now: testNow}); err != nil {
		t.Fatal(err)
	}
	if err := z.PublishCDS(); err != nil {
		t.Fatal(err)
	}
	cds := append(z.RRset(z.Origin, dnswire.TypeCDS), z.RRset(z.Origin, dnswire.TypeCDNSKEY)...)
	recs, err := SignalRecords(z.Origin, "ns1.example.net.", cds)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(cds) {
		t.Fatalf("signal record count = %d, want %d", len(recs), len(cds))
	}
	for _, rr := range recs {
		if rr.Name != "_dsboot.example.com._signal.ns1.example.net." {
			t.Errorf("signal owner = %s", rr.Name)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	z := buildTestZone(t)
	c := z.Clone()
	c.MustAdd(dnswire.RR{Name: "new.example.com.", TTL: 60, Data: &dnswire.A{Addr: netip.MustParseAddr("192.0.2.99")}})
	if z.NameExists("new.example.com.") {
		t.Error("mutating clone affected original")
	}
	if c.Size() != z.Size()+1 {
		t.Errorf("clone size %d, original %d", c.Size(), z.Size())
	}
}

func TestFindCutDeep(t *testing.T) {
	z := buildTestZone(t)
	if cut := z.FindCut("a.b.ns.sub.example.com."); cut != "sub.example.com." {
		t.Errorf("FindCut deep = %q", cut)
	}
	if cut := z.FindCut("www.example.com."); cut != "" {
		t.Errorf("FindCut on plain name = %q", cut)
	}
}
