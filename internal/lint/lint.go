// Package lint is the repo's in-tree static-analysis suite. The
// paper's pipeline (§3) is only credible because every run over the
// synthetic Internet is reproducible and every nameserver response
// lands in exactly one outcome bucket; past PRs each shipped a bug that
// violated one of those invariants (map-order nondeterminism in
// ecosystem generation, outcome-switch misclassification in
// classify/report, phantom retry counters). The analyzers here turn
// those one-off fixes into machine-checked invariants that gate every
// future change:
//
//   - nondeterminism: no wall-clock or process-global randomness, and
//     no order-sensitive map iteration, in the packages whose output
//     must be byte-identical across runs.
//   - exhaustive: every switch over a marked outcome/verdict enum
//     covers all declared constants or carries an explicit default, so
//     adding a constant fails lint until every aggregation site is
//     updated.
//   - concurrency: sync/atomic fields are accessed atomically
//     everywhere, ctx parameters are threaded (never replaced with
//     context.Background) on the resolver/scan hot paths, and
//     goroutine closures do not capture loop variables implicitly.
//   - errcompare / errwrap: sentinel errors go through errors.Is, and
//     fmt.Errorf keeps error chains intact with %w.
//   - poollife / lockdiscipline / goroutinelife: the lifecycle
//     analyzers, path-sensitive over the function-local dataflow layer
//     (dataflow.go). In the lifecycle packages every pool.Get reaches
//     a Put on all paths without use-after-Put or escape, every held
//     mutex is released on every return path with nothing blocking
//     under it, and every goroutine carries join evidence.
//
// Findings print as "file:line: [check] message". A site can opt out
// with a trailing or preceding pragma comment:
//
//	//lint:allow <check> <reason>
//
// The reason is mandatory; a reasonless pragma is itself a finding and
// suppresses nothing. Enum types opt in to exhaustiveness checking with
// a "lint:exhaustive" marker in their doc comment.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Check identifiers, used in findings and in allow pragmas.
const (
	CheckNondeterminism = "nondeterminism"
	CheckExhaustive     = "exhaustive"
	CheckConcurrency    = "concurrency"
	CheckErrCompare     = "errcompare"
	CheckErrWrap        = "errwrap"
	CheckPoolLife       = "poollife"
	CheckLockDiscipline = "lockdiscipline"
	CheckGoroutineLife  = "goroutinelife"
	CheckPragma         = "pragma"
)

// KnownChecks is the set of valid check identifiers; pragmas naming
// anything else are reported rather than silently ignored.
var KnownChecks = map[string]bool{
	CheckNondeterminism: true,
	CheckExhaustive:     true,
	CheckConcurrency:    true,
	CheckErrCompare:     true,
	CheckErrWrap:        true,
	CheckPoolLife:       true,
	CheckLockDiscipline: true,
	CheckGoroutineLife:  true,
	CheckPragma:         true,
}

// Finding is one diagnostic.
type Finding struct {
	Pos   token.Position
	Check string
	Msg   string
}

// String renders the canonical "file:line: [check] message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Check, f.Msg)
}

// Config scopes the analyzers to the module's layout.
type Config struct {
	// Deterministic maps import paths to the file basenames covered by
	// the nondeterminism analyzer. A nil slice covers the whole package.
	Deterministic map[string][]string
	// HotPath lists the import paths whose ctx-threading and
	// loop-capture rules are enforced (the resolver/scan hot paths).
	HotPath map[string]bool
	// Lifecycle lists the import paths covered by the dataflow
	// analyzers (poollife, lockdiscipline, goroutinelife): everywhere
	// pooled scratch, bare mutexes, or worker goroutines live.
	Lifecycle map[string]bool
}

// DefaultConfig returns the repo's scoping: the packages whose output
// feeds the paper's deterministic artefacts, and the concurrent hot
// paths. module is the module path from go.mod.
func DefaultConfig(module string) Config {
	p := func(s string) string { return module + "/" + s }
	return Config{
		Deterministic: map[string][]string{
			p("internal/ecosystem"): nil,
			p("internal/classify"):  nil,
			p("internal/report"):    nil,
			p("internal/dnssec"):    nil,
			p("internal/zone"):      nil,
			// ingest's reduction must be a pure function of the dump
			// bytes: stats and targets feed golden fixtures.
			p("internal/ingest"): nil,
			// scan's export paths must serialise identically across
			// runs; the scanner itself is allowed wall-clock state.
			p("internal/scan"): {"export.go", "observation.go", "checkpoint.go"},
			// shard's merge and partition feed the cross-shard
			// byte-equality battery; the coordinator itself is allowed
			// wall-clock state (stall detection, progress reports).
			p("internal/shard"): {"merge.go", "partition.go"},
		},
		HotPath: map[string]bool{
			p("internal/resolver"): true,
			p("internal/scan"):     true,
			p("internal/ingest"):   true,
		},
		Lifecycle: map[string]bool{
			p("internal/resolver"):  true,
			p("internal/scan"):      true,
			p("internal/ingest"):    true,
			p("internal/dnswire"):   true,
			p("internal/transport"): true,
			p("internal/server"):    true,
			p("internal/rate"):      true,
			p("internal/shard"):     true,
		},
	}
}

// Result is one analysis run over a set of packages.
type Result struct {
	Findings []Finding
	Packages int
}

// Analyze loads patterns under the module root and runs every
// analyzer, returning the surviving findings sorted by position. A nil
// cfg uses DefaultConfig for the module named in go.mod.
func Analyze(root string, patterns []string, cfg *Config) (*Result, error) {
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	if cfg == nil {
		c := DefaultConfig(loader.Module())
		cfg = &c
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		return nil, err
	}
	return Run(loader, pkgs, *cfg), nil
}

// Run executes every analyzer over the loaded packages and applies
// pragma suppression.
func Run(loader *Loader, pkgs []*Package, cfg Config) *Result {
	fset := loader.Fset
	allows, pragmaFindings := collectPragmas(fset, pkgs)
	enums := collectEnums(pkgs)

	var raw []Finding
	for _, pkg := range pkgs {
		raw = append(raw, analyzeDeterminism(fset, pkg, cfg)...)
		raw = append(raw, analyzeExhaustive(fset, pkg, enums)...)
		raw = append(raw, analyzeConcurrency(fset, pkg, cfg)...)
		raw = append(raw, analyzeErrDiscipline(fset, pkg)...)
		raw = append(raw, analyzePoolLife(fset, pkg, cfg)...)
		raw = append(raw, analyzeLockDiscipline(fset, pkg, cfg)...)
		raw = append(raw, analyzeGoroutineLife(fset, pkg, cfg)...)
	}

	var kept []Finding
	seen := make(map[Finding]bool)
	for _, f := range raw {
		if allows.suppresses(f) || seen[f] {
			continue
		}
		seen[f] = true
		kept = append(kept, f)
	}
	kept = append(kept, pragmaFindings...)
	for i := range kept {
		kept[i].Pos.Filename = relativeTo(loader.Root(), kept[i].Pos.Filename)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Check < b.Check
	})
	return &Result{Findings: kept, Packages: len(pkgs)}
}

// relativeTo shortens name to a root-relative path when possible.
func relativeTo(root, name string) string {
	rel, err := filepath.Rel(root, name)
	if err != nil || strings.HasPrefix(rel, "..") {
		return name
	}
	return rel
}

// allowSet records every well-formed allow pragma: file -> line -> set
// of allowed check names. A pragma suppresses findings of its check on
// its own line (trailing comment) and on the line directly below it
// (standalone comment above the site).
type allowSet map[string]map[int]map[string]bool

func (a allowSet) add(file string, line int, check string) {
	byLine, ok := a[file]
	if !ok {
		byLine = make(map[int]map[string]bool)
		a[file] = byLine
	}
	checks, ok := byLine[line]
	if !ok {
		checks = make(map[string]bool)
		byLine[line] = checks
	}
	checks[check] = true
}

func (a allowSet) suppresses(f Finding) bool {
	byLine := a[f.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		if byLine[line][f.Check] {
			return true
		}
	}
	return false
}

// pragmaPrefix introduces an allow pragma inside a comment.
const pragmaPrefix = "lint:allow"

// collectPragmas scans every comment for allow pragmas. Malformed
// pragmas (no check name, or no reason) are reported and ignored: an
// unexplained suppression is exactly the kind of silent exception this
// suite exists to prevent.
func collectPragmas(fset *token.FileSet, pkgs []*Package) (allowSet, []Finding) {
	allows := make(allowSet)
	var findings []Finding
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimPrefix(text, "/*")
					text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
					rest, ok := strings.CutPrefix(text, pragmaPrefix)
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						findings = append(findings, Finding{Pos: pos, Check: CheckPragma,
							Msg: "allow pragma names no check: want //lint:allow <check> <reason>"})
						continue
					}
					if !KnownChecks[fields[0]] {
						findings = append(findings, Finding{Pos: pos, Check: CheckPragma,
							Msg: fmt.Sprintf("allow pragma names unknown check %q; the pragma is ignored", fields[0])})
						continue
					}
					if len(fields) < 2 {
						findings = append(findings, Finding{Pos: pos, Check: CheckPragma,
							Msg: fmt.Sprintf("allow pragma for %q has no reason; the reason is mandatory and the pragma is ignored", fields[0])})
						continue
					}
					allows.add(pos.Filename, pos.Line, fields[0])
				}
			}
		}
	}
	return allows, findings
}

// inspectFiles walks every file of pkg.
func inspectFiles(pkg *Package, fn func(ast.Node) bool) {
	for _, f := range pkg.Files {
		ast.Inspect(f, fn)
	}
}
