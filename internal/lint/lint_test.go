package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The golden harness: each fixture package under testdata/src carries
// `want` comments naming, as a regexp, the finding expected on that
// line. The harness runs the full analyzer stack over the fixtures and
// demands an exact bidirectional match — every finding needs a want,
// every want needs a finding. The fixtures double as the acceptance
// demonstrations: exhaust.Missing is a switch with a deleted case arm,
// determ.Anchor is a bare time.Now() in deterministic scope, and both
// must fail lint.

const fixtureRoot = "testdata/src"

var fixtures = []string{"determ", "exhaust", "conc", "errs", "poollife", "lockdisc", "goroutine"}

// fixtureConfig scopes the analyzers to the fixture packages the way
// DefaultConfig scopes them to the repo.
func fixtureConfig(module string) Config {
	p := func(name string) string {
		return module + "/internal/lint/" + fixtureRoot + "/" + name
	}
	return Config{
		Deterministic: map[string][]string{p("determ"): nil},
		HotPath:       map[string]bool{p("conc"): true},
		Lifecycle: map[string]bool{
			p("poollife"):  true,
			p("lockdisc"):  true,
			p("goroutine"): true,
		},
	}
}

// expectation is one want comment: the finding regexp and whether a
// finding matched it.
type expectation struct {
	file    string // base name
	line    int
	pattern *regexp.Regexp
	matched bool
}

// wantRe matches `// want "..."` with an optional +N line offset for
// expectations that cannot share the flagged line (pragma findings fire
// on the pragma's own comment line).
var wantRe = regexp.MustCompile("// want(\\+[0-9]+)? (`[^`]*`)")

// collectWants parses the want comments of every fixture file.
func collectWants(t *testing.T) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, name := range fixtures {
		dir := filepath.Join(fixtureRoot, name)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			for i, lineText := range strings.Split(string(data), "\n") {
				m := wantRe.FindStringSubmatch(lineText)
				if m == nil {
					continue
				}
				line := i + 1
				if m[1] != "" {
					off, err := strconv.Atoi(m[1])
					if err != nil {
						t.Fatalf("%s/%s:%d: bad want offset %q", dir, e.Name(), line, m[1])
					}
					line += off
				}
				pat, err := regexp.Compile(strings.Trim(m[2], "`"))
				if err != nil {
					t.Fatalf("%s/%s:%d: bad want pattern: %v", dir, e.Name(), line, err)
				}
				wants = append(wants, &expectation{file: e.Name(), line: line, pattern: pat})
			}
		}
	}
	return wants
}

// testLoader is the one Loader every test in this package shares: the
// source importer and the memoized module packages make the fixture
// run and the repo self-check pay for type-checking the dependency
// graph once per test binary, not once per test.
var (
	testLoader     *Loader
	testLoaderErr  error
	testLoaderOnce sync.Once
)

func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	testLoaderOnce.Do(func() {
		testLoader, testLoaderErr = NewLoader("../..")
	})
	if testLoaderErr != nil {
		t.Fatal(testLoaderErr)
	}
	return testLoader
}

// fixtureResult runs the analyzer stack over the fixture packages once
// per test binary; both fixture tests read the same result.
var fixtureResult *Result

func fixtureRun(t *testing.T) *Result {
	t.Helper()
	if fixtureResult != nil {
		return fixtureResult
	}
	loader := sharedLoader(t)
	var patterns []string
	for _, name := range fixtures {
		patterns = append(patterns, "internal/lint/"+fixtureRoot+"/"+name)
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != len(fixtures) {
		t.Fatalf("loaded %d fixture packages, want %d", len(pkgs), len(fixtures))
	}
	fixtureResult = Run(loader, pkgs, fixtureConfig(loader.Module()))
	return fixtureResult
}

// TestFixtures runs every analyzer over the fixture packages and
// matches findings against the want comments in both directions.
func TestFixtures(t *testing.T) {
	res := fixtureRun(t)
	wants := collectWants(t)
	if len(wants) == 0 {
		t.Fatal("no want comments found under testdata/src")
	}
	for _, f := range res.Findings {
		rendered := fmt.Sprintf("[%s] %s", f.Check, f.Msg)
		base := filepath.Base(f.Pos.Filename)
		matched := false
		for _, w := range wants {
			if w.matched || w.file != base || w.line != f.Pos.Line {
				continue
			}
			if w.pattern.MatchString(rendered) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// TestFixtureChecksCovered guards the harness itself: the fixture run
// must exercise every check identifier, so an analyzer that silently
// stops firing cannot hide behind a passing fixture test.
func TestFixtureChecksCovered(t *testing.T) {
	res := fixtureRun(t)
	seen := make(map[string]bool)
	for _, f := range res.Findings {
		seen[f.Check] = true
	}
	var missing []string
	for _, check := range []string{CheckNondeterminism, CheckExhaustive, CheckConcurrency, CheckErrCompare, CheckErrWrap,
		CheckPoolLife, CheckLockDiscipline, CheckGoroutineLife, CheckPragma} {
		if !seen[check] {
			missing = append(missing, check)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		t.Errorf("fixture run produced no %s findings", strings.Join(missing, ", "))
	}
}

// TestSelfCheckRepoIsClean is the CI gate's mirror image: the suite run
// over the whole repository must report nothing, so any finding a
// future change introduces fails this test as well as make lint.
func TestSelfCheckRepoIsClean(t *testing.T) {
	loader := sharedLoader(t)
	pkgs, err := loader.Load(nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(loader, pkgs, DefaultConfig(loader.Module()))
	for _, f := range res.Findings {
		t.Errorf("repo is not lint-clean: %s", f)
	}
	if res.Packages < 10 {
		t.Errorf("self-check covered only %d packages; the module walk looks broken", res.Packages)
	}
}
