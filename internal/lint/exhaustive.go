package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The exhaustive analyzer. Enum types opt in with a "lint:exhaustive"
// marker in their doc comment; every switch anywhere in the loaded
// packages whose tag has that type must then either list every declared
// constant or carry an explicit default clause. This is the
// machine-checked version of the invariant the outcome-misclassification
// PR restored by hand: adding a new outcome constant fails lint until
// every aggregation site has decided what to do with it.

// enumMarker opts a type declaration in to exhaustiveness checking.
const enumMarker = "lint:exhaustive"

// enumInfo is one registered enum: its declared constant values and a
// display name per value.
type enumInfo struct {
	display string            // e.g. "classify.Status"
	values  map[string]string // constant.Value.ExactString() -> first constant name
}

// enumKey identifies a named type across independently type-checked
// packages, where object identity does not hold.
func enumKey(obj *types.TypeName) string {
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// collectEnums registers every marked enum type and its constants.
func collectEnums(pkgs []*Package) map[string]*enumInfo {
	enums := make(map[string]*enumInfo)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !marked(gd.Doc, ts.Doc, ts.Comment) {
						continue
					}
					obj, ok := pkg.Pkg.Scope().Lookup(ts.Name.Name).(*types.TypeName)
					if !ok {
						continue
					}
					enums[enumKey(obj)] = &enumInfo{
						display: pkg.Pkg.Name() + "." + obj.Name(),
						values:  enumConstants(pkg.Pkg, obj.Type()),
					}
				}
			}
		}
	}
	return enums
}

// marked reports whether any of the doc comments carries the enum
// marker.
func marked(groups ...*ast.CommentGroup) bool {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if strings.Contains(c.Text, enumMarker) {
				return true
			}
		}
	}
	return false
}

// enumConstants collects the package-level constants of type t.
func enumConstants(pkg *types.Package, t types.Type) map[string]string {
	values := make(map[string]string)
	scope := pkg.Scope()
	names := scope.Names() // sorted, so "first name" per value is stable
	for _, name := range names {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), t) {
			continue
		}
		key := c.Val().ExactString()
		if _, seen := values[key]; !seen {
			values[key] = c.Name()
		}
	}
	return values
}

// analyzeExhaustive checks every expression switch in pkg against the
// enum registry.
func analyzeExhaustive(fset *token.FileSet, pkg *Package, enums map[string]*enumInfo) []Finding {
	if len(enums) == 0 {
		return nil
	}
	var findings []Finding
	inspectFiles(pkg, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		tagType := pkg.Info.TypeOf(sw.Tag)
		named, ok := tagType.(*types.Named)
		if !ok {
			return true
		}
		enum, registered := enums[enumKey(named.Obj())]
		if !registered {
			return true
		}
		covered := make(map[string]bool)
		hasDefault := false
		for _, stmt := range sw.Body.List {
			clause, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			if clause.List == nil {
				hasDefault = true
				continue
			}
			for _, expr := range clause.List {
				if tv, ok := pkg.Info.Types[expr]; ok && tv.Value != nil {
					covered[tv.Value.ExactString()] = true
				}
			}
		}
		if hasDefault {
			return true
		}
		var missing []string
		for val, name := range enum.values {
			if !covered[val] {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			sort.Strings(missing)
			findings = append(findings, Finding{
				Pos:   fset.Position(sw.Pos()),
				Check: CheckExhaustive,
				Msg: fmt.Sprintf("switch over %s misses %s; add the missing cases or an explicit default",
					enum.display, strings.Join(missing, ", ")),
			})
		}
		return true
	})
	return findings
}
