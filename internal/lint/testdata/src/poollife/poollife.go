// Package poollife exercises the poollife analyzer. The test harness
// registers this package for lifecycle analysis, so every pool.Get
// result must reach a Put on all paths, must not be used after Put,
// and must not escape the function that got it.
package poollife

import "sync"

type buf struct {
	b []byte
}

var scratch = sync.Pool{New: func() any { return new(buf) }}

// Clean is the intended shape: Get, defer Put, use.
func Clean() int {
	s := scratch.Get().(*buf)
	defer scratch.Put(s)
	return len(s.b)
}

// CleanBranch puts explicitly on both paths.
func CleanBranch(n int) int {
	s := scratch.Get().(*buf)
	if n > 0 {
		scratch.Put(s)
		return n
	}
	scratch.Put(s)
	return 0
}

// CleanAlias puts through an alias; alias groups share one status.
func CleanAlias() {
	s := scratch.Get().(*buf)
	t := s
	scratch.Put(t)
}

// Leak never returns its object to the pool.
func Leak() {
	s := scratch.Get().(*buf)
	s.b = s.b[:0]
} // want `pool\.Get result at line \d+ does not reach a Put on this return path`

// LeakOnBranch puts on one path only.
func LeakOnBranch(n int) int {
	s := scratch.Get().(*buf)
	if n > 0 {
		scratch.Put(s)
	}
	return n // want `pool\.Get result at line \d+ is Put on some paths but not this one`
}

// DoublePut returns the same object twice.
func DoublePut() {
	s := scratch.Get().(*buf)
	scratch.Put(s)
	scratch.Put(s) // want `double Put of pooled object already returned at line \d+`
}

// UseAfterPut reads the object after the pool may have handed it out
// again.
func UseAfterPut() int {
	s := scratch.Get().(*buf)
	scratch.Put(s)
	return cap(s.b) // want `s is used after being Put back to its pool at line \d+`
}

// Escape hands the pooled object to the caller.
func Escape() *buf {
	s := scratch.Get().(*buf)
	return s // want `pooled object "s" escapes via return`
}

// EscapeView returns a slice backed by pooled storage; the deferred
// Put makes the view dangle.
func EscapeView() []byte {
	s := scratch.Get().(*buf)
	defer scratch.Put(s)
	return s.b // want `pooled object "s" escapes via return`
}

// EscapeSend transfers the object over a channel with no ownership
// contract.
func EscapeSend(ch chan *buf) {
	s := scratch.Get().(*buf)
	ch <- s // want `pooled object "s" escapes via channel send`
}

// EscapeClosure captures the object in a closure that outlives the
// call.
func EscapeClosure() func() {
	s := scratch.Get().(*buf)
	return func() { s.b = nil } // want `pooled object "s" is captured by a closure`
}

type holder struct {
	v *buf
}

// EscapeStore parks the object in a field that outlives the call.
func EscapeStore(h *holder) {
	s := scratch.Get().(*buf)
	h.v = s // want `pooled object from pool\.Get at line \d+ is stored outside the function's locals`
}

// NewHandle transfers ownership to the caller by contract; the pragma
// records the contract, as newBuilder/newParser do in dnswire.
func NewHandle() *buf {
	s := scratch.Get().(*buf)
	//lint:allow poollife constructor hands pool ownership to the caller by contract
	return s
}
