// Package exhaust exercises the exhaustive analyzer: switches over a
// marked enum must list every constant or carry an explicit default.
package exhaust

// Color is a marked enum; deleting any arm from the Covered switch
// below reproduces the missing-case regression this analyzer catches.
//
// lint:exhaustive
type Color int

const (
	Red Color = iota
	Green
	Blue
)

// Size is unmarked: switches over it are never checked.
type Size int

const (
	Small Size = iota
	Large
)

// Missing drops Blue and has no default.
func Missing(c Color) string {
	switch c { // want `switch over exhaust\.Color misses Blue`
	case Red:
		return "red"
	case Green:
		return "green"
	}
	return ""
}

// Covered lists every constant: clean.
func Covered(c Color) string {
	switch c {
	case Red:
		return "red"
	case Green:
		return "green"
	case Blue:
		return "blue"
	}
	return ""
}

// Defaulted declares an explicit default: clean.
func Defaulted(c Color) string {
	switch c {
	case Red:
		return "red"
	default:
		return "other"
	}
}

// UnmarkedSwitch ranges an unmarked enum: never checked.
func UnmarkedSwitch(s Size) string {
	switch s {
	case Small:
		return "s"
	}
	return ""
}

// Suppressed documents a deliberate partial switch with a pragma.
func Suppressed(c Color) string {
	//lint:allow exhaustive new colors intentionally fall through
	switch c {
	case Red:
		return "red"
	}
	return ""
}
